// Package vec provides the basic vector primitives used throughout the
// library: Euclidean distances on float32 feature vectors, min/max
// normalization, and the integer-domain discretization that the paper's
// histograms operate on (Section 2.1 and footnote 7 of Section 3.5).
//
// Points are plain []float32 slices. All distance arithmetic is carried out
// in float64 to avoid accumulating single-precision rounding error across
// hundreds of dimensions.
package vec

import (
	"fmt"
	"math"
)

// SqDist returns the squared Euclidean distance between a and b.
// It panics if the dimensionalities differ; mixing dimensionalities is a
// programming error, not a runtime condition.
func SqDist(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b (Definition 2).
func Dist(a, b []float32) float64 {
	return math.Sqrt(SqDist(a, b))
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(a[i])
	}
	return math.Sqrt(s)
}

// MinMax returns the per-call minimum and maximum over all coordinates of
// all points in data, interpreted as a flat array. It returns (0, 1) for
// empty input so that a zero-value domain is still usable.
func MinMax(data []float32) (lo, hi float64) {
	if len(data) == 0 {
		return 0, 1
	}
	lo, hi = float64(data[0]), float64(data[0])
	for _, v := range data {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi
}

// Domain maps real-valued coordinates into the discrete value domain
// [0 .. Ndom-1] that histograms are built over. The paper assumes dimension
// values already live in an integer domain [0..Ndom] (Definition 6); real
// feature vectors are discretized by uniform binning, which is the
// "discretization on floating-point values" of footnote 7.
//
// The zero value is not usable; construct with NewDomain.
type Domain struct {
	Lo, Hi float64 // closed real interval covered by the domain
	Ndom   int     // number of distinct discrete values
	width  float64 // (Hi-Lo)/Ndom, cached
}

// NewDomain builds a Domain over [lo, hi] with ndom discrete values.
// It panics on ndom < 1 or hi <= lo, which indicate misconfiguration.
func NewDomain(lo, hi float64, ndom int) Domain {
	if ndom < 1 {
		panic(fmt.Sprintf("vec: Ndom must be >= 1, got %d", ndom))
	}
	if hi <= lo {
		panic(fmt.Sprintf("vec: invalid domain [%v, %v]", lo, hi))
	}
	return Domain{Lo: lo, Hi: hi, Ndom: ndom, width: (hi - lo) / float64(ndom)}
}

// Bin returns the discrete value for real coordinate v, clamped into
// [0, Ndom-1] so that out-of-domain values degrade gracefully instead of
// corrupting histogram lookups. NaN maps to bin 0: int(NaN) is
// implementation-defined in Go, so it is rejected before the conversion.
func (d Domain) Bin(v float64) int {
	if d.width <= 0 {
		panic("vec: use of zero-value Domain")
	}
	if v != v { // NaN never equals itself
		return 0
	}
	// Range-check before the int conversion: a far-out coordinate (live
	// inserts can carry anything) would overflow the conversion, which is
	// implementation-defined in Go and lands nowhere near a boundary bucket.
	if v <= d.Lo {
		return 0
	}
	if v >= d.Hi {
		return d.Ndom - 1
	}
	b := int((v - d.Lo) / d.width)
	if b < 0 {
		return 0
	}
	if b >= d.Ndom {
		return d.Ndom - 1
	}
	return b
}

// Clamp pins real coordinate v into the closed interval [Lo, Hi], with NaN
// mapping to Lo. Live inserts may carry coordinates outside the profiled
// histogram domain; clamping the stored vector guarantees Bin's boundary
// bucket actually contains the coordinate, which is what keeps the derived
// lower/upper distance bounds conservative.
func (d Domain) Clamp(v float64) float64 {
	if d.width <= 0 {
		panic("vec: use of zero-value Domain")
	}
	if !(v >= d.Lo) { // catches v < Lo and NaN
		return d.Lo
	}
	if v > d.Hi {
		return d.Hi
	}
	return v
}

// ClampPoint clamps every coordinate of p into the domain in place and
// returns whether any coordinate changed.
func (d Domain) ClampPoint(p []float32) bool {
	changed := false
	for i, v := range p {
		c := d.Clamp(float64(v))
		if float32(c) != v || v != v { // v != v: NaN never equals itself
			p[i] = float32(c)
			changed = true
		}
	}
	return changed
}

// BinLo returns the inclusive real lower edge of discrete value bin.
func (d Domain) BinLo(bin int) float64 {
	return d.Lo + float64(bin)*d.width
}

// BinHi returns the exclusive real upper edge of discrete value bin. Any
// coordinate v with Bin(v) == bin satisfies BinLo(bin) <= v <= BinHi(bin),
// which is what makes the derived distance bounds conservative.
func (d Domain) BinHi(bin int) float64 {
	return d.Lo + float64(bin+1)*d.width
}

// Width returns the real width of one discrete value bin.
func (d Domain) Width() float64 { return d.width }

// BinPoint discretizes every coordinate of p into dst (which must have the
// same length) and returns dst. A nil dst allocates.
func (d Domain) BinPoint(p []float32, dst []int) []int {
	if dst == nil {
		dst = make([]int, len(p))
	}
	if len(dst) != len(p) {
		panic("vec: BinPoint dst length mismatch")
	}
	for i, v := range p {
		dst[i] = d.Bin(float64(v))
	}
	return dst
}
