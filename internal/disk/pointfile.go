package disk

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"exploitbit/internal/dataset"
)

// PointFile is the sequential file storing the point set P (Section 2.1):
// fixed-size float32 records addressable by point identifier. It supports an
// arbitrary physical ordering (a permutation of point id → slot) so that the
// file-ordering experiment of Figure 9 (raw / clustered / sorted-key) can be
// reproduced, and charges one page read per fetched page like the paper's
// candidate refinement phase.
//
// Layout: page 0 is a header; pages [1, 1+permPages) hold the permutation
// when one is present; data pages follow. If a point is larger than a page
// (SOGOU's 3,840-byte points would fit, but arbitrary dims may not), it
// spans ceil(pointSize/pageSize) consecutive pages and a fetch costs that
// many reads.
type PointFile struct {
	dev *Device

	dim       int
	n         atomic.Int64 // point count; atomic so Append can extend the file under live readers
	pointSize int
	perPage   int // points per page (0 when multi-page points)
	pagesPer  int // pages per point (1 when perPage > 0)
	dataStart int // first data page
	perm      []int32
	inv       []int32 // slot → id inverse of perm, built lazily during writes

	bufPool sync.Pool // *[]byte transfer buffers; see getBuf
}

const pfMagic = 0x45425046 // "EBPF"

// BuildPointFile writes dataset ds to path under permutation perm
// (perm[i] = physical slot of point i; nil = identity/raw order) and returns
// an open PointFile. Writes are not counted toward read statistics.
func BuildPointFile(path string, ds *dataset.Dataset, perm []int, pageSize int, tio time.Duration) (*PointFile, error) {
	if perm != nil && len(perm) != ds.Len() {
		return nil, fmt.Errorf("disk: perm length %d != dataset size %d", len(perm), ds.Len())
	}
	dev, err := Create(path, pageSize, tio)
	if err != nil {
		return nil, err
	}
	n := ds.Len()
	pf := &PointFile{dev: dev, dim: ds.Dim, pointSize: 4 * ds.Dim}
	pf.n.Store(int64(n))
	pf.computeGeometry()

	// Header page.
	hdr := make([]byte, pageSize)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pfMagic)
	le.PutUint32(hdr[4:], uint32(pf.dim))
	le.PutUint32(hdr[8:], uint32(n))
	hasPerm := uint32(0)
	if perm != nil {
		hasPerm = 1
	}
	le.PutUint32(hdr[12:], hasPerm)
	if err := dev.WritePage(0, hdr); err != nil {
		dev.Close()
		return nil, err
	}

	// Permutation pages.
	if perm != nil {
		pf.perm = make([]int32, n)
		seen := make([]bool, n)
		for i, s := range perm {
			if s < 0 || s >= n || seen[s] {
				dev.Close()
				return nil, fmt.Errorf("disk: perm is not a permutation (slot %d at %d)", s, i)
			}
			seen[s] = true
			pf.perm[i] = int32(s)
		}
		if err := pf.writePerm(); err != nil {
			dev.Close()
			return nil, err
		}
	}
	pf.dataStart = 1 + pf.permPages()

	// Data pages: place each point at its slot.
	if pf.perPage > 0 {
		nPages := (n + pf.perPage - 1) / pf.perPage
		page := make([]byte, pageSize)
		for p := 0; p < nPages; p++ {
			for i := range page {
				page[i] = 0
			}
			for s := p * pf.perPage; s < (p+1)*pf.perPage && s < n; s++ {
				id := pf.idAtSlot(s)
				encodePoint(page[(s%pf.perPage)*pf.pointSize:], ds.Point(id))
			}
			if err := dev.WritePage(pf.dataStart+p, page); err != nil {
				dev.Close()
				return nil, err
			}
		}
	} else {
		rec := make([]byte, pf.pagesPer*pageSize)
		for s := 0; s < n; s++ {
			for i := range rec {
				rec[i] = 0
			}
			encodePoint(rec, ds.Point(pf.idAtSlot(s)))
			for q := 0; q < pf.pagesPer; q++ {
				if err := dev.WritePage(pf.dataStart+s*pf.pagesPer+q, rec[q*pageSize:(q+1)*pageSize]); err != nil {
					dev.Close()
					return nil, err
				}
			}
		}
	}
	dev.ResetStats()
	return pf, nil
}

// OpenPointFile opens a previously built point file.
func OpenPointFile(path string, pageSize int, tio time.Duration) (*PointFile, error) {
	dev, err := Open(path, pageSize, tio)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, pageSize)
	if err := dev.ReadPage(0, hdr); err != nil {
		dev.Close()
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != pfMagic {
		dev.Close()
		return nil, fmt.Errorf("disk: %s is not a point file", path)
	}
	dim := int(int32(le.Uint32(hdr[4:])))
	n := int(int32(le.Uint32(hdr[8:])))
	hasPerm := le.Uint32(hdr[12:])
	if err := validatePointHeader(dim, n, hasPerm, pageSize, dev.NumPages()); err != nil {
		dev.Close()
		return nil, fmt.Errorf("disk: %s: %w", path, err)
	}
	pf := &PointFile{dev: dev, dim: dim}
	pf.n.Store(int64(n))
	pf.pointSize = 4 * pf.dim
	pf.computeGeometry()
	if hasPerm == 1 {
		if err := pf.readPerm(); err != nil {
			dev.Close()
			return nil, err
		}
	}
	pf.dataStart = 1 + pf.permPages()
	dev.ResetStats()
	return pf, nil
}

// validatePointHeader rejects corrupt headers before any geometry or
// allocation depends on them: a non-positive dimensionality, a negative
// count, an out-of-range permutation flag, or a dim/n/perm combination whose
// page footprint exceeds what the device actually holds. Without the last
// check a corrupt n either yields zero-size point geometry or drives
// readPerm into a multi-gigabyte allocation.
func validatePointHeader(dim, n int, hasPerm uint32, pageSize, numPages int) error {
	if dim < 1 {
		return fmt.Errorf("corrupt header: dim %d < 1", dim)
	}
	if n < 0 {
		return fmt.Errorf("corrupt header: n %d < 0", n)
	}
	if hasPerm > 1 {
		return fmt.Errorf("corrupt header: perm flag %d", hasPerm)
	}
	ps := int64(pageSize)
	pointSize := 4 * int64(dim)
	var dataPages int64
	if pointSize <= ps {
		perPage := ps / pointSize
		dataPages = (int64(n) + perPage - 1) / perPage
	} else {
		dataPages = int64(n) * ((pointSize + ps - 1) / ps)
	}
	var permPages int64
	if hasPerm == 1 {
		permPages = (4*int64(n) + ps - 1) / ps
	}
	if need := 1 + permPages + dataPages; need > int64(numPages) {
		return fmt.Errorf("corrupt header: dim %d, n %d need %d pages, device has %d",
			dim, n, need, numPages)
	}
	return nil
}

func (pf *PointFile) computeGeometry() {
	ps := pf.dev.PageSize()
	if pf.pointSize <= ps {
		pf.perPage = ps / pf.pointSize
		pf.pagesPer = 1
	} else {
		pf.perPage = 0
		pf.pagesPer = (pf.pointSize + ps - 1) / ps
	}
}

func (pf *PointFile) permPages() int {
	if pf.perm == nil {
		return 0
	}
	ps := pf.dev.PageSize()
	return (4*len(pf.perm) + ps - 1) / ps
}

func (pf *PointFile) writePerm() error {
	ps := pf.dev.PageSize()
	buf := make([]byte, pf.permPages()*ps)
	for i, s := range pf.perm {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(s))
	}
	for p := 0; p < pf.permPages(); p++ {
		if err := pf.dev.WritePage(1+p, buf[p*ps:(p+1)*ps]); err != nil {
			return err
		}
	}
	return nil
}

func (pf *PointFile) readPerm() error {
	n := pf.Len()
	pf.perm = make([]int32, n)
	ps := pf.dev.PageSize()
	np := pf.permPages()
	buf := make([]byte, np*ps)
	for p := 0; p < np; p++ {
		if err := pf.dev.ReadPage(1+p, buf[p*ps:(p+1)*ps]); err != nil {
			return err
		}
	}
	for i := range pf.perm {
		s := int32(binary.LittleEndian.Uint32(buf[4*i:]))
		if s < 0 || int(s) >= n {
			return fmt.Errorf("disk: corrupt perm: slot %d out of range [0,%d) at entry %d", s, n, i)
		}
		pf.perm[i] = s
	}
	return nil
}

// idAtSlot inverts the permutation during the build scan. O(n) total via a
// lazily built inverse.
func (pf *PointFile) idAtSlot(s int) int {
	if pf.perm == nil {
		return s
	}
	if pf.inv == nil {
		pf.inv = make([]int32, len(pf.perm))
		for id, slot := range pf.perm {
			pf.inv[slot] = int32(id)
		}
	}
	return int(pf.inv[s])
}

// Dim returns the dimensionality of stored points.
func (pf *PointFile) Dim() int { return pf.dim }

// PagesPerPoint returns how many physical pages one Fetch reads — 1 when
// points fit a page, ceil(pointSize/pageSize) otherwise. Callers use it to
// attribute I/O deterministically in concurrent settings.
func (pf *PointFile) PagesPerPoint() int { return pf.pagesPer }

// PointsPerUnit returns how many points share one fetch unit of a point
// file with the given dimensionality and page size — pageSize/pointSize
// when a point fits a page, and 1 otherwise (a multi-page point owns its
// unit alone). The shard partitioner uses it to keep whole fetch units on
// one shard without building a file first.
func PointsPerUnit(dim, pageSize int) int {
	pointSize := 4 * dim
	if pointSize <= pageSize {
		return pageSize / pointSize
	}
	return 1
}

// Len returns the number of stored points.
func (pf *PointFile) Len() int { return int(pf.n.Load()) }

// Fetch reads point id from disk into dst (len Dim; nil allocates), charging
// one page read per page touched. This is the operation whose count the
// whole paper is about minimizing.
func (pf *PointFile) Fetch(id int, dst []float32) ([]float32, error) {
	return pf.FetchCtx(context.Background(), id, dst)
}

// FetchCtx is Fetch under a request context: a canceled ctx stops any
// transient-fault retry backoff immediately.
func (pf *PointFile) FetchCtx(ctx context.Context, id int, dst []float32) ([]float32, error) {
	if n := pf.Len(); id < 0 || id >= n {
		return nil, fmt.Errorf("disk: point id %d out of range [0,%d)", id, n)
	}
	if dst == nil {
		dst = make([]float32, pf.dim)
	}
	if len(dst) != pf.dim {
		return nil, fmt.Errorf("disk: dst length %d != dim %d", len(dst), pf.dim)
	}
	slot := id
	if pf.perm != nil {
		slot = int(pf.perm[id])
	}
	ps := pf.dev.PageSize()
	buf := pf.getBuf()
	defer pf.putBuf(buf)
	if pf.perPage > 0 {
		page := *buf
		if err := pf.dev.ReadPageCtx(ctx, pf.dataStart+slot/pf.perPage, page); err != nil {
			return nil, err
		}
		decodePoint(dst, page[(slot%pf.perPage)*pf.pointSize:])
		return dst, nil
	}
	rec := *buf
	for q := 0; q < pf.pagesPer; q++ {
		if err := pf.dev.ReadPageCtx(ctx, pf.dataStart+slot*pf.pagesPer+q, rec[q*ps:(q+1)*ps]); err != nil {
			return nil, err
		}
	}
	decodePoint(dst, rec)
	return dst, nil
}

// PageOf returns the physical page identifier of point id's fetch unit: the
// first data page a Fetch of id would read. Points sharing a PageOf value
// share every page of their fetch unit (a unit is one page when points fit a
// page, and pagesPer consecutive pages holding exactly one point otherwise),
// so batch refinement can group candidates by PageOf and read each unit once.
func (pf *PointFile) PageOf(id int) (int, error) {
	if n := pf.Len(); id < 0 || id >= n {
		return 0, fmt.Errorf("disk: point id %d out of range [0,%d)", id, n)
	}
	slot := id
	if pf.perm != nil {
		slot = int(pf.perm[id])
	}
	if pf.perPage > 0 {
		return pf.dataStart + slot/pf.perPage, nil
	}
	return pf.dataStart + slot*pf.pagesPer, nil
}

// FetchOnPage decodes every listed point from the single fetch unit whose
// PageOf value is page, reading that unit from disk exactly once — the
// coalesced counterpart of calling Fetch per id. out[i] receives point
// ids[i] (nil entries are allocated; non-nil entries must have length Dim).
// Every id must live on the given unit, i.e. PageOf(id) == page; an id from
// another page is an error and nothing is charged for it beyond the one read.
func (pf *PointFile) FetchOnPage(page int, ids []int, out [][]float32) error {
	return pf.FetchOnPageCtx(context.Background(), page, ids, out)
}

// FetchOnPageCtx is FetchOnPage under a request context: a canceled ctx
// stops any transient-fault retry backoff immediately.
func (pf *PointFile) FetchOnPageCtx(ctx context.Context, page int, ids []int, out [][]float32) error {
	if len(ids) != len(out) {
		return fmt.Errorf("disk: FetchOnPage ids/out length mismatch (%d != %d)", len(ids), len(out))
	}
	if len(ids) == 0 {
		return nil
	}
	for _, id := range ids {
		p, err := pf.PageOf(id)
		if err != nil {
			return err
		}
		if p != page {
			return fmt.Errorf("disk: point %d lives on page %d, not %d", id, p, page)
		}
	}
	ps := pf.dev.PageSize()
	buf := pf.getBuf()
	defer pf.putBuf(buf)
	rec := *buf
	for q := 0; q < pf.pagesPer; q++ {
		if err := pf.dev.ReadPageCtx(ctx, page+q, rec[q*ps:(q+1)*ps]); err != nil {
			return err
		}
	}
	for i, id := range ids {
		if out[i] == nil {
			out[i] = make([]float32, pf.dim)
		} else if len(out[i]) != pf.dim {
			return fmt.Errorf("disk: out[%d] length %d != dim %d", i, len(out[i]), pf.dim)
		}
		if pf.perPage > 0 {
			slot := id
			if pf.perm != nil {
				slot = int(pf.perm[id])
			}
			decodePoint(out[i], rec[(slot%pf.perPage)*pf.pointSize:])
		} else {
			decodePoint(out[i], rec)
		}
	}
	return nil
}

// Append extends the point file with pts starting at point position at,
// without rewriting existing data. at must satisfy at <= Len(); passing an
// explicit position (rather than always Len()) lets a compactor retried
// after a mid-append failure overwrite its own orphan records, preserving
// the id == slot invariant. The final count at+len(pts) must not shrink the
// file — concurrent readers hold ids below the current Len().
//
// Appending is only supported on writable (freshly built) files without a
// physical permutation: new points always land at the tail in id order.
//
// Write order is crash- and concurrency-safe with respect to readers: data
// pages are written first (a shared tail page is read-modify-written, with
// the bytes of already-visible points unchanged), the header is rewritten
// next, and the in-memory count is published last — so a reader never
// observes an id it could not fetch. The tail-page read is charged to the
// device's read counters like any other page read.
func (pf *PointFile) Append(at int, pts [][]float32) error {
	if pf.perm != nil {
		return fmt.Errorf("disk: append unsupported on permuted point file")
	}
	n := pf.Len()
	if at < 0 || at > n {
		return fmt.Errorf("disk: append position %d out of range [0,%d]", at, n)
	}
	for i, p := range pts {
		if len(p) != pf.dim {
			return fmt.Errorf("disk: append point %d has dim %d, want %d", i, len(p), pf.dim)
		}
	}
	newN := at + len(pts)
	if newN < n {
		return fmt.Errorf("disk: append would shrink file from %d to %d points", n, newN)
	}
	if newN == n && len(pts) == 0 {
		return nil
	}

	ps := pf.dev.PageSize()
	if pf.perPage > 0 {
		firstPage := at / pf.perPage
		lastPage := (newN - 1) / pf.perPage
		page := make([]byte, ps)
		for p := firstPage; p <= lastPage; p++ {
			lo := p * pf.perPage // first point slot on this page
			if p == firstPage && at%pf.perPage != 0 {
				// Shared tail page: merge behind the existing points. Their
				// bytes are rewritten identically, so a racing reader of this
				// page sees consistent data either way.
				if err := pf.dev.ReadPage(pf.dataStart+p, page); err != nil {
					return fmt.Errorf("disk: append read tail page: %w", err)
				}
			} else {
				for i := range page {
					page[i] = 0
				}
			}
			for s := max(lo, at); s < lo+pf.perPage && s < newN; s++ {
				encodePoint(page[(s%pf.perPage)*pf.pointSize:], pts[s-at])
			}
			if err := pf.dev.WritePage(pf.dataStart+p, page); err != nil {
				return fmt.Errorf("disk: append data page %d: %w", p, err)
			}
		}
	} else {
		rec := make([]byte, pf.pagesPer*ps)
		for i, p := range pts {
			for j := range rec {
				rec[j] = 0
			}
			encodePoint(rec, p)
			s := at + i
			for q := 0; q < pf.pagesPer; q++ {
				if err := pf.dev.WritePage(pf.dataStart+s*pf.pagesPer+q, rec[q*ps:(q+1)*ps]); err != nil {
					return fmt.Errorf("disk: append data page: %w", err)
				}
			}
		}
	}

	// Header after data, count after header: ordering is the publication.
	hdr := make([]byte, ps)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pfMagic)
	le.PutUint32(hdr[4:], uint32(pf.dim))
	le.PutUint32(hdr[8:], uint32(newN))
	le.PutUint32(hdr[12:], 0)
	if err := pf.dev.WritePage(0, hdr); err != nil {
		return fmt.Errorf("disk: append header: %w", err)
	}
	if err := validatePointHeader(pf.dim, newN, 0, ps, pf.dev.NumPages()); err != nil {
		return fmt.Errorf("disk: append left invalid geometry: %w", err)
	}
	pf.n.Store(int64(newN))
	return nil
}

// getBuf leases a transfer buffer (one page, or the whole multi-page record)
// from a pool so that steady-state Fetch calls allocate nothing. Pointers to
// slices are pooled to avoid boxing the header on Put.
func (pf *PointFile) getBuf() *[]byte {
	if v := pf.bufPool.Get(); v != nil {
		return v.(*[]byte)
	}
	b := make([]byte, pf.pagesPer*pf.dev.PageSize())
	return &b
}

func (pf *PointFile) putBuf(b *[]byte) { pf.bufPool.Put(b) }

// SetFaults installs (or, with nil, removes) a fault injector on the
// backing device.
func (pf *PointFile) SetFaults(in *Injector) { pf.dev.SetFaults(in) }

// SetRetry installs the transient-fault retry policy on the backing device.
func (pf *PointFile) SetRetry(rp RetryPolicy) { pf.dev.SetRetry(rp) }

// Device returns the backing device (fault/retry configuration, stats).
func (pf *PointFile) Device() *Device { return pf.dev }

// Stats exposes the underlying device counters.
func (pf *PointFile) Stats() Stats { return pf.dev.Stats() }

// ResetStats zeroes the underlying device counters.
func (pf *PointFile) ResetStats() { pf.dev.ResetStats() }

// Tio returns the simulated per-read latency of the backing device.
func (pf *PointFile) Tio() time.Duration { return pf.dev.Tio() }

// Close closes the backing device.
func (pf *PointFile) Close() error { return pf.dev.Close() }

func encodePoint(dst []byte, p []float32) {
	for i, v := range p {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

func decodePoint(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}
