package histogram

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary histogram format ("EBHG"): magic, ndom, B, bucket upper bounds.
const hgMagic = 0x45424847

// WriteTo serializes the histogram.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, v := range []uint32{hgMagic, uint32(h.Ndom()), uint32(h.B())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += 4
	}
	for i := 0; i < h.B(); i++ {
		_, u := h.Interval(i)
		if err := binary.Write(bw, binary.LittleEndian, uint32(u)); err != nil {
			return n, err
		}
		n += 4
	}
	return n, bw.Flush()
}

// Read parses a histogram serialized by WriteTo.
func Read(r io.Reader) (*Histogram, error) {
	var magic, ndom, b uint32
	for _, p := range []*uint32{&magic, &ndom, &b} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("histogram: reading header: %w", err)
		}
	}
	if magic != hgMagic {
		return nil, fmt.Errorf("histogram: bad magic %#x", magic)
	}
	// The ndom cap bounds FromUppers' lookup-table allocation (4 bytes per
	// domain value): a corrupt 12-byte header must not buy a gigabyte
	// allocation. Real domains are a few thousand values (the paper uses
	// Ndom ≈ 1024); 2^24 leaves three orders of magnitude of headroom.
	if ndom == 0 || b == 0 || b > ndom || ndom > 1<<24 {
		return nil, fmt.Errorf("histogram: implausible header ndom=%d B=%d", ndom, b)
	}
	uppers := make([]int, b)
	for i := range uppers {
		var u uint32
		if err := binary.Read(r, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("histogram: reading uppers: %w", err)
		}
		uppers[i] = int(u)
	}
	return FromUppers(int(ndom), uppers)
}

// WritePerDim serializes a per-dimension histogram set.
func (p *PerDim) WriteTo(w io.Writer) (int64, error) {
	var n int64
	if err := binary.Write(w, binary.LittleEndian, uint32(p.Dim())); err != nil {
		return n, err
	}
	n += 4
	for _, h := range p.H {
		m, err := h.WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadPerDim parses a per-dimension histogram set.
func ReadPerDim(r io.Reader) (*PerDim, error) {
	var dim uint32
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("histogram: reading dim: %w", err)
	}
	if dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("histogram: implausible dim %d", dim)
	}
	p := &PerDim{H: make([]*Histogram, dim)}
	for j := range p.H {
		h, err := Read(r)
		if err != nil {
			return nil, fmt.Errorf("histogram: dimension %d: %w", j, err)
		}
		p.H[j] = h
	}
	return p, nil
}
