// Package btree implements the B+-tree underlying iDistance (Jagadish et
// al.: "an adaptive B+-tree based indexing method"): an ordered map from
// float64 keys to int32 values with duplicate keys allowed, supporting bulk
// loading, inserts, and the bidirectional range scans that iDistance's
// radius-expansion search issues around each reference point's key.
//
// Only the in-memory structure is provided — in the paper's architecture
// (Section 3.6.1) the non-leaf levels live in RAM while the data pages the
// leaves point at are the disk-resident leafstore.
package btree

import "fmt"

// Order is the fan-out: internal nodes hold up to Order children, leaves up
// to Order entries.
const Order = 32

type leaf struct {
	keys []float64
	vals []int32
	next *leaf // right-sibling chain for range scans
	prev *leaf
}

type internalNode struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     []float64
	children []any // *internalNode or *leaf
}

// Tree is a B+-tree. The zero value is an empty tree ready for use.
type Tree struct {
	root any // *internalNode, *leaf, or nil
	size int
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// BulkLoad builds a tree from entries sorted ascending by key. It panics on
// unsorted input (a programming error). Duplicate keys are allowed.
func BulkLoad(keys []float64, vals []int32) *Tree {
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("btree: %d keys but %d values", len(keys), len(vals)))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			panic("btree: BulkLoad input not sorted")
		}
	}
	t := &Tree{size: len(keys)}
	if len(keys) == 0 {
		return t
	}
	// Build the leaf level: chunks of up to Order entries.
	var leaves []*leaf
	for start := 0; start < len(keys); start += Order {
		end := start + Order
		if end > len(keys) {
			end = len(keys)
		}
		l := &leaf{
			keys: append([]float64(nil), keys[start:end]...),
			vals: append([]int32(nil), vals[start:end]...),
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = l
			l.prev = leaves[len(leaves)-1]
		}
		leaves = append(leaves, l)
	}
	// Build internal levels bottom-up.
	level := make([]any, len(leaves))
	firstKey := make([]float64, len(leaves))
	for i, l := range leaves {
		level[i] = l
		firstKey[i] = l.keys[0]
	}
	for len(level) > 1 {
		var next []any
		var nextFirst []float64
		for start := 0; start < len(level); start += Order {
			end := start + Order
			if end > len(level) {
				end = len(level)
			}
			n := &internalNode{
				children: append([]any(nil), level[start:end]...),
				keys:     append([]float64(nil), firstKey[start+1:end]...),
			}
			next = append(next, n)
			nextFirst = append(nextFirst, firstKey[start])
		}
		level, firstKey = next, nextFirst
	}
	t.root = level[0]
	return t
}

// Insert adds one entry.
func (t *Tree) Insert(key float64, val int32) {
	t.size++
	if t.root == nil {
		t.root = &leaf{keys: []float64{key}, vals: []int32{val}}
		return
	}
	newChild, splitKey := t.insert(t.root, key, val)
	if newChild != nil {
		t.root = &internalNode{keys: []float64{splitKey}, children: []any{t.root, newChild}}
	}
}

// insert descends, returning a new right sibling and its separator key when
// the child split.
func (t *Tree) insert(node any, key float64, val int32) (any, float64) {
	switch n := node.(type) {
	case *leaf:
		i := lowerBound(n.keys, key)
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i], n.vals[i] = key, val
		if len(n.keys) <= Order {
			return nil, 0
		}
		mid := len(n.keys) / 2
		right := &leaf{
			keys: append([]float64(nil), n.keys[mid:]...),
			vals: append([]int32(nil), n.vals[mid:]...),
			next: n.next,
			prev: n,
		}
		if n.next != nil {
			n.next.prev = right
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right, right.keys[0]

	case *internalNode:
		ci := upperBound(n.keys, key)
		newChild, splitKey := t.insert(n.children[ci], key, val)
		if newChild == nil {
			return nil, 0
		}
		n.keys = append(n.keys, 0)
		n.children = append(n.children, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		copy(n.children[ci+2:], n.children[ci+1:])
		n.keys[ci] = splitKey
		n.children[ci+1] = newChild
		if len(n.children) <= Order {
			return nil, 0
		}
		mid := len(n.children) / 2
		right := &internalNode{
			keys:     append([]float64(nil), n.keys[mid:]...),
			children: append([]any(nil), n.children[mid:]...),
		}
		sep := n.keys[mid-1]
		n.keys = n.keys[:mid-1]
		n.children = n.children[:mid]
		return right, sep

	default:
		panic("btree: corrupt node")
	}
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys []float64, key float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the child index to descend for key: the number of
// separator keys <= key.
func upperBound(keys []float64, key float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends to the LEFTMOST leaf that can contain key (duplicates
// may span node boundaries), returning it and the entry index of the first
// key >= key (possibly len(keys) → continue at the next leaf).
func (t *Tree) findLeaf(key float64) (*leaf, int) {
	node := t.root
	for {
		switch n := node.(type) {
		case *leaf:
			return n, lowerBound(n.keys, key)
		case *internalNode:
			// Descend the first child whose range can hold key: separator
			// keys equal to key still allow duplicates in the child to the
			// left, so use the lower bound, not the upper.
			node = n.children[lowerBound(n.keys, key)]
		default:
			return nil, 0
		}
	}
}

// Range calls fn for every entry with lo <= key <= hi, ascending. fn
// returning false stops the scan.
func (t *Tree) Range(lo, hi float64, fn func(key float64, val int32) bool) {
	if t.root == nil {
		return
	}
	l, i := t.findLeaf(lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if l.keys[i] > hi {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// Ascend calls fn for entries with key >= from, ascending, until fn returns
// false.
func (t *Tree) Ascend(from float64, fn func(key float64, val int32) bool) {
	if t.root == nil {
		return
	}
	l, i := t.findLeaf(from)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// Descend calls fn for entries with key < from, descending, until fn
// returns false. Together with Ascend it provides iDistance's outward
// bidirectional expansion from a starting key.
func (t *Tree) Descend(from float64, fn func(key float64, val int32) bool) {
	if t.root == nil {
		return
	}
	l, i := t.findLeaf(from)
	// Step back one entry: i currently points at the first key >= from.
	i--
	for l != nil {
		if i < 0 {
			l = l.prev
			if l == nil {
				return
			}
			i = len(l.keys) - 1
		}
		for ; i >= 0; i-- {
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.prev
		if l != nil {
			i = len(l.keys) - 1
		}
	}
}
