// Package costmodel implements Section 4: estimating the refinement I/O
// cost of a histogram cache as a function of the cache size CS and the code
// length τ, and auto-tuning the optimal τ.
//
// The model combines
//
//	C_refine = (1 − ρ_hit · ρ_prune) · |C(q)|            (Eqn 1)
//
// with two estimates: the HFF hit ratio from the workload frequency
// distribution (Theorem 1's mechanism — τ trades per-item size against item
// count), and the refinement ratio upper bound of Theorems 2–3
// (ρ_refine ≤ ‖ε(b_k)‖ / Dmax, which for an equi-width histogram has the
// closed form √d·w / Dmax with bucket width w).
package costmodel

import (
	"math"
	"math/bits"

	"exploitbit/internal/encoding"
)

// Inputs bundles everything the model needs; all quantities come from the
// workload profile and the dataset geometry.
type Inputs struct {
	// AvgCandSize is the mean candidate-set size |C(q)|.
	AvgCandSize float64
	// FreqSorted is the descending candidate-frequency sequence f_1 ≥ f_2 ≥ …
	// from the workload (Profile.FreqSorted).
	FreqSorted []int
	// BudgetBytes is the cache size CS.
	BudgetBytes int64
	// Dim is the dimensionality d.
	Dim int
	// DomainWidth is the real width Hi−Lo of the value domain.
	DomainWidth float64
	// Ndom is the discrete domain size.
	Ndom int
	// Dmax is the largest candidate distance from q, calculated from the
	// index's (R,c)-guarantee (Theorem 3: Dmax = c·R for C2LSH).
	Dmax float64
	// Lvalue is the bits per raw coordinate (32 for float32 points).
	Lvalue int
}

// HitRatio estimates the HFF cache hit ratio for a given item capacity:
// the fraction of workload candidate lookups landing on the capacity most
// frequent items (the ρ_hit definition inside Theorem 1's proof).
func HitRatio(freqSorted []int, capacity int) float64 {
	var total, top int64
	for i, f := range freqSorted {
		total += int64(f)
		if i < capacity {
			top += int64(f)
		}
	}
	if total == 0 {
		return 0
	}
	if capacity >= len(freqSorted) {
		return 1
	}
	return float64(top) / float64(total)
}

// CapacityForTau returns how many τ-bit-encoded points fit the budget,
// using the word-packed item size of footnote 5. The arithmetic mirrors
// cache.CapacityForBudget's checked math: budget*8 overflows int64 for
// budgets of 2^60 bytes and beyond, and the naive expression turned such
// budgets into a negative — i.e. zero — capacity, silently predicting
// ρ_hit = 0 exactly where the model should predict ρ_hit = 1. Capacity
// saturates at math.MaxInt instead (which also guards the int narrowing on
// 32-bit platforms).
func (in Inputs) CapacityForTau(tau int) int {
	itemBits := encoding.NewCodec(in.Dim, tau).ItemBits()
	if in.BudgetBytes <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(in.BudgetBytes), 8)
	if hi >= uint64(itemBits) {
		// The quotient would not fit in 64 bits (bits.Div64 panics on
		// hi >= divisor); any such capacity saturates anyway.
		return math.MaxInt
	}
	quo, _ := bits.Div64(hi, lo, uint64(itemBits))
	if quo > uint64(math.MaxInt) {
		return math.MaxInt
	}
	return int(quo)
}

// HitRatioForTau estimates ρ_hit at code length τ.
func (in Inputs) HitRatioForTau(tau int) float64 {
	return HitRatio(in.FreqSorted, in.CapacityForTau(tau))
}

// BucketWidthForTau returns the real-valued equi-width bucket width w at
// code length τ (the paper's w = 2^(Lvalue−τ), expressed in our domain:
// B = min(2^τ, Ndom) buckets over DomainWidth).
func (in Inputs) BucketWidthForTau(tau int) float64 {
	b := 1 << tau
	if b > in.Ndom {
		b = in.Ndom
	}
	return in.DomainWidth / float64(b)
}

// RefineRatioForTau is Theorem 3's upper bound on ρ^q_refine for the
// equi-width histogram: min(√d·w / Dmax, 1).
func (in Inputs) RefineRatioForTau(tau int) float64 {
	if in.Dmax <= 0 {
		return 1
	}
	r := math.Sqrt(float64(in.Dim)) * in.BucketWidthForTau(tau) / in.Dmax
	if r > 1 {
		return 1
	}
	return r
}

// EstimatedCrefine is the model's remaining candidate count (≈ refinement
// I/O in points) at code length τ:
//
//	C_refine = (1 − ρ_hit · (1 − ρ_refine)) · |C(q)|
func (in Inputs) EstimatedCrefine(tau int) float64 {
	hit := in.HitRatioForTau(tau)
	prune := 1 - in.RefineRatioForTau(tau)
	return (1 - hit*prune) * in.AvgCandSize
}

// MaxUsefulTau is the largest code length worth sweeping: min(Lvalue,
// ⌈log₂ Ndom⌉). Past ⌈log₂ Ndom⌉ the bucket count clamps at Ndom, so
// BucketWidthForTau stops shrinking while the per-item size keeps growing —
// every such τ is dominated by the cap (same ρ_refine, no larger capacity).
func (in Inputs) MaxUsefulTau() int {
	lv := in.Lvalue
	if lv < 1 {
		lv = 32
	}
	if lv > 32 {
		lv = 32
	}
	if in.Ndom > 1 {
		// Smallest τ with 2^τ ≥ Ndom.
		if c := bits.Len(uint(in.Ndom - 1)); c < lv {
			return c
		}
	}
	return lv
}

// OptimalTau sweeps τ (Section 4.2.2) and returns the τ with the lowest
// estimated C_refine, together with the per-τ estimates for τ ∈ [1, Lvalue]
// (indexed τ−1) for Figure 12-style comparisons. The selection sweep is
// capped at MaxUsefulTau — beyond ⌈log₂ Ndom⌉ the bound quality saturates
// while the item size keeps growing, so those τ are dominated and must not
// win on float ties — and exact-cost ties break toward the smaller τ (the
// larger capacity).
func (in Inputs) OptimalTau() (int, []float64) {
	lv := in.Lvalue
	if lv < 1 {
		lv = 32
	}
	if lv > 32 {
		lv = 32
	}
	sweep := in.MaxUsefulTau()
	best, bestTau := -1.0, 1
	est := make([]float64, lv)
	for tau := 1; tau <= lv; tau++ {
		est[tau-1] = in.EstimatedCrefine(tau)
		if tau <= sweep && (best < 0 || est[tau-1] < best) {
			best, bestTau = est[tau-1], tau
		}
	}
	return bestTau, est
}
