// Group-granular multi-step refinement: the Seidl–Kriegel optimal fetch
// schedule generalized to indexes whose I/O unit is a group of points — the
// leaf nodes of the tree-based indexes of Section 3.6.1. Fetching one
// member's group yields the exact distance of every point the group holds,
// so the schedule loads each group at most once, in ascending lower-bound
// order of its members, and stops as soon as no unloaded member can improve
// the current k-th distance.
package multistep

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"exploitbit/internal/vec"
)

// GroupCandidate is a refinement candidate resolved by loading a group of
// points at once (a tree leaf). Bounds are squared, matching SearchSq.
type GroupCandidate struct {
	ID    int32
	Group int32   // fetch unit; -1 for seeds whose distance is already exact
	LBSq  float64 // squared lower bound (exact squared distance for seeds)
}

// GroupFetch loads one group, returning the identifiers and exact squared
// distances of every point it holds. One call is one unit of refinement I/O.
// The returned slices are only read until the next call, so implementations
// may reuse buffers.
type GroupFetch func(group int32) (ids []int32, sqDists []float64, err error)

func compareGroupCandidates(a, b GroupCandidate) int {
	switch {
	case a.LBSq < b.LBSq:
		return -1
	case a.LBSq > b.LBSq:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	default:
		return 0
	}
}

// SearchGroupsSq refines pending group-resident candidates to the k nearest,
// seeded with candidates whose exact squared distances are already in hand
// (seeds enter the selection at zero I/O cost before any group loads).
// Identifiers in skip are already-declared results (Algorithm 1's true hits)
// and are excluded from the selection even when their group gets loaded.
//
// Pending candidates are visited in ascending (LBSq, ID) order; a candidate
// whose group is already loaded is skipped, and the walk stops once the
// selection is full and the next lower bound cannot beat the k-th squared
// distance — the Seidl–Kriegel optimal stop, lifted to group fetches. Every
// point of a loaded group (even ones pruned earlier) feeds the selection:
// their exact distances are free once the group is in memory.
//
// Results are appended to dst in ascending distance order (square roots are
// taken only here); the int return is the number of group loads.
func (sc *Scratch) SearchGroupsSq(seeds, pending []GroupCandidate, k int, skip map[int32]bool, fetch GroupFetch, dst []Result) ([]Result, int, error) {
	if k < 1 {
		return dst, 0, nil
	}
	if sc.top == nil {
		sc.top = vec.NewTopK(k)
	} else {
		sc.top.Reset(k)
	}
	top := sc.top
	for _, s := range seeds {
		top.Push(s.LBSq, int(s.ID))
	}

	if cap(sc.gorder) < len(pending) {
		sc.gorder = make([]GroupCandidate, len(pending))
	}
	order := sc.gorder[:len(pending)]
	copy(order, pending)
	slices.SortFunc(order, compareGroupCandidates)

	if sc.loaded == nil {
		sc.loaded = make(map[int32]bool)
	} else {
		clear(sc.loaded)
	}
	loads := 0
	for _, c := range order {
		if sc.loaded[c.Group] {
			continue
		}
		// Optimal stop: order is ascending in LBSq, so no unloaded member
		// can improve the current k-th squared distance.
		if top.Full() && c.LBSq >= top.Root() {
			break
		}
		ids, sqDists, err := fetch(c.Group)
		if err != nil {
			if errors.Is(err, ErrSkipCandidate) {
				// Group dropped by the fetcher (degraded mode): every member
				// is unloadable, so remember the group to skip its other
				// members too. Not counted as a load.
				sc.loaded[c.Group] = true
				continue
			}
			return dst, loads, fmt.Errorf("multistep: loading group %d: %w", c.Group, err)
		}
		sc.loaded[c.Group] = true
		loads++
		for i, id := range ids {
			if skip[id] {
				continue
			}
			top.Push(sqDists[i], int(id))
		}
	}
	ids, sqDists := top.Drain()
	for i := range ids {
		dst = append(dst, Result{ID: ids[i], Dist: math.Sqrt(sqDists[i])})
	}
	return dst, loads, nil
}
