package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSearcher returns the first k ids and canned stats, or an error for a
// poisoned first coordinate. It counts calls and honors the request
// context, like the real engines do.
type fakeSearcher struct {
	calls atomic.Int64
}

func (s *fakeSearcher) Search(ctx context.Context, q []float32, k int) ([]int, Stats, error) {
	s.calls.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	if len(q) > 0 && q[0] == -1 {
		return nil, Stats{}, fmt.Errorf("injected failure")
	}
	ids := make([]int, k)
	for i := range ids {
		ids[i] = i
	}
	return ids, Stats{
		Candidates: 4 * k, Hits: 2 * k, Fetched: k,
		ReduceTime: 5 * time.Microsecond, RefineTime: 20 * time.Microsecond,
	}, nil
}

func newTestHandler() (*Handler, *fakeSearcher) {
	s := &fakeSearcher{}
	return New(s, Config{Dim: 3, MaxK: 50}), s
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	h, _ := newTestHandler()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getJSON(t *testing.T, srv *httptest.Server, path string) map[string]any {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSearchEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp, out := post(t, srv, `{"vector":[1,2,3],"k":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if ids := out["ids"].([]any); len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	st := out["stats"].(map[string]any)
	if st["candidates"].(float64) != 16 || st["cache_hits"].(float64) != 8 {
		t.Fatalf("stats = %v", st)
	}
}

func TestValidationAndErrors(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`{"vector":[1,2],"k":4}`, http.StatusBadRequest},             // wrong dim
		{`{"vector":[1,2,3],"k":0}`, http.StatusBadRequest},           // k too small
		{`{"vector":[1,2,3],"k":999}`, http.StatusBadRequest},         // k above cap
		{`{"vector":`, http.StatusBadRequest},                         // malformed
		{`{"vector":[-1,2,3],"k":4}`, http.StatusInternalServerError}, // engine failure
	}
	for _, c := range cases {
		resp, out := post(t, srv, c.body)
		if resp.StatusCode != c.code {
			t.Fatalf("%s: status %d, want %d (%v)", c.body, resp.StatusCode, c.code, out)
		}
		if out["error"] == "" {
			t.Fatalf("%s: missing error message", c.body)
		}
	}
}

// TestNonFiniteVectorRejected is the regression test for the NaN-pruning
// bug: a NaN compares false against every bound, silently corrupting the
// lb/ub reduction and returning wrong neighbors with 200 OK. No non-finite
// vector — however encoded — may reach Searcher.Search.
func TestNonFiniteVectorRejected(t *testing.T) {
	// The validation gate itself, on decoded vectors (the path a future
	// binary/batch transport would take).
	for i, v := range [][]float32{
		{float32(math.NaN()), 0, 0},
		{0, float32(math.Inf(1)), 0},
		{0, 0, float32(math.Inf(-1))},
	} {
		if j := firstNonFinite(v); j < 0 {
			t.Fatalf("case %d: non-finite vector passed validation", i)
		}
	}
	if firstNonFinite([]float32{1, -2, 3.5}) != -1 {
		t.Fatal("finite vector rejected")
	}

	// Every JSON encoding a client could attempt: the bare NaN/Infinity
	// literals are invalid JSON, and out-of-range numerals fail to decode —
	// each must 400 without the searcher ever being called.
	s := &fakeSearcher{}
	h := New(s, Config{Dim: 3, MaxK: 50})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, body := range []string{
		`{"vector":[NaN,0,0],"k":1}`,
		`{"vector":[Infinity,0,0],"k":1}`,
		`{"vector":[-Infinity,0,0],"k":1}`,
		`{"vector":[1e999,0,0],"k":1}`,
		`{"vector":[-1e999,0,0],"k":1}`,
		`{"vector":[1e39,0,0],"k":1}`, // overflows float32
	} {
		resp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if n := s.calls.Load(); n != 0 {
		t.Fatalf("non-finite query reached Searcher.Search %d times", n)
	}
}

// blockingSearcher parks every search until released, so tests can hold the
// admission gate full.
type blockingSearcher struct {
	started chan struct{}
	release chan struct{}
}

func (s *blockingSearcher) Search(ctx context.Context, q []float32, k int) ([]int, Stats, error) {
	s.started <- struct{}{}
	select {
	case <-s.release:
		return []int{0}, Stats{}, nil
	case <-ctx.Done():
		return nil, Stats{}, ctx.Err()
	}
}

func TestAdmissionGateSheds(t *testing.T) {
	bs := &blockingSearcher{started: make(chan struct{}, 8), release: make(chan struct{})}
	h := New(bs, Config{Dim: 1, MaxInFlight: 2})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/search", "application/json",
				bytes.NewReader([]byte(`{"vector":[1],"k":1}`)))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Wait for both to be inside the searcher (holding the two gate slots).
	<-bs.started
	<-bs.started

	// The gate is full: the third request must be shed with 503 and show up
	// in the shed counter and queue depth on /metrics.
	resp, out := post(t, srv, `{"vector":[1],"k":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status %d, want 503 (%v)", resp.StatusCode, out)
	}
	m := getJSON(t, srv, "/metrics")
	if m["shed"].(float64) != 1 {
		t.Fatalf("shed = %v, want 1", m["shed"])
	}
	if m["in_flight"].(float64) != 2 || m["admission_limit"].(float64) != 2 {
		t.Fatalf("in_flight/limit = %v/%v, want 2/2", m["in_flight"], m["admission_limit"])
	}

	close(bs.release)
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != http.StatusOK {
			t.Fatalf("admitted request finished with %d", c)
		}
	}
	m = getJSON(t, srv, "/metrics")
	if m["in_flight"].(float64) != 0 {
		t.Fatalf("in_flight after drain = %v", m["in_flight"])
	}
}

// explodingWriter fails every body write, simulating a client that
// disconnected between the status line and the body.
type explodingWriter struct {
	header       http.Header
	headerWrites int
}

func (w *explodingWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *explodingWriter) WriteHeader(int)           { w.headerWrites++ }
func (w *explodingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

func TestEncodeFailureRecordedOnce(t *testing.T) {
	h, _ := newTestHandler()
	req := httptest.NewRequest(http.MethodPost, "/search",
		bytes.NewReader([]byte(`{"vector":[1,2,3],"k":2}`)))
	ew := &explodingWriter{}
	h.ServeHTTP(ew, req)
	if got := h.encodeErrs.Load(); got != 1 {
		t.Fatalf("encodeErrs = %d, want 1", got)
	}
	if ew.headerWrites != 1 {
		t.Fatalf("WriteHeader called %d times after the failed body write, want exactly 1", ew.headerWrites)
	}

	// The failure is visible to operators on /metrics.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var m metricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.EncodeErrors != 1 {
		t.Fatalf("/metrics encode_errors = %d, want 1", m.EncodeErrors)
	}
}

func TestCanceledRequestCounted(t *testing.T) {
	h, s := newTestHandler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the search starts
	req := httptest.NewRequest(http.MethodPost, "/search",
		bytes.NewReader([]byte(`{"vector":[1,2,3],"k":2}`))).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if h.canceled.Load() != 1 {
		t.Fatalf("canceled = %d, want 1", h.canceled.Load())
	}
	if h.queries.Load() != 0 {
		t.Fatal("abandoned search counted as a completed query")
	}
	_ = s
}

func TestStatsAggregation(t *testing.T) {
	srv := newTestServer(t)
	for i := 0; i < 3; i++ {
		post(t, srv, `{"vector":[1,2,3],"k":5}`)
	}
	out := getJSON(t, srv, "/stats")
	if out["queries"].(float64) != 3 {
		t.Fatalf("stats = %v", out)
	}
	if out["hit_ratio"].(float64) != 0.5 {
		t.Fatalf("hit ratio = %v", out["hit_ratio"])
	}
	if out["avg_fetched"].(float64) != 5 {
		t.Fatalf("avg fetched = %v", out["avg_fetched"])
	}
}

func TestMetricsLatencyHistograms(t *testing.T) {
	srv := newTestServer(t)
	for i := 0; i < 4; i++ {
		post(t, srv, `{"vector":[1,2,3],"k":5}`)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Queries != 4 {
		t.Fatalf("queries = %d", m.Queries)
	}
	for name, h := range map[string]HistogramSnapshot{
		"total": m.Latency.Total, "reduce": m.Latency.Reduce, "refine_io": m.Latency.RefineIO,
	} {
		if h.Count != 4 {
			t.Fatalf("%s histogram count = %d, want 4", name, h.Count)
		}
		if len(h.Bucket) == 0 {
			t.Fatalf("%s histogram has no buckets", name)
		}
		if h.P50US <= 0 || h.P99US < h.P50US {
			t.Fatalf("%s quantiles look wrong: p50=%d p99=%d", name, h.P50US, h.P99US)
		}
	}
	// The fake reports 5µs reduce / 20µs refine: the quantile upper bounds
	// must bracket them (geometric buckets overestimate by at most 2×).
	if p := m.Latency.Reduce.P50US; p < 5 || p > 10 {
		t.Fatalf("reduce p50 = %dµs, want within [5,10]", p)
	}
	if p := m.Latency.RefineIO.P50US; p < 20 || p > 40 {
		t.Fatalf("refine p50 = %dµs, want within [20,40]", p)
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	durations := []time.Duration{
		0, 800 * time.Nanosecond, 3 * time.Microsecond, 3 * time.Microsecond,
		100 * time.Microsecond, 20 * time.Millisecond, 3 * time.Second, -time.Second,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != int64(len(durations)) {
		t.Fatalf("count = %d, want %d", s.Count, len(durations))
	}
	var n int64
	for _, b := range s.Bucket {
		n += b.N
		if b.N <= 0 {
			t.Fatalf("empty bucket emitted: %+v", b)
		}
	}
	if n != s.Count {
		t.Fatalf("bucket sum %d != count %d", n, s.Count)
	}
	if s.P50US > s.P90US || s.P90US > s.P99US {
		t.Fatalf("quantiles not monotone: %d %d %d", s.P50US, s.P90US, s.P99US)
	}
	// 3s lands in the (2^21, 2^22]µs bucket; p99 must reach it.
	if s.P99US < 3_000_000 {
		t.Fatalf("p99 = %dµs, want ≥ 3s", s.P99US)
	}
}

// fakeBatchSearcher adds the batch capability: per-query canned stats with 3
// page reads each, an injected failure for a poisoned first vector, and
// context awareness.
type fakeBatchSearcher struct {
	fakeSearcher
	batchCalls atomic.Int64
}

func (s *fakeBatchSearcher) SearchBatch(ctx context.Context, qs [][]float32, k int) ([][]int, []Stats, error) {
	s.batchCalls.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ids := make([][]int, len(qs))
	sts := make([]Stats, len(qs))
	for j, q := range qs {
		if len(q) > 0 && q[0] == -1 {
			return nil, nil, fmt.Errorf("injected batch failure")
		}
		ids[j] = make([]int, k)
		for i := range ids[j] {
			ids[j][i] = i
		}
		sts[j] = Stats{Candidates: 4 * k, Hits: 2 * k, Fetched: k, PageReads: 3}
	}
	return ids, sts, nil
}

func postBatch(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/search/batch", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestBatchSearchEndpoint(t *testing.T) {
	s := &fakeBatchSearcher{}
	srv := httptest.NewServer(New(s, Config{Dim: 3, MaxK: 50}))
	defer srv.Close()

	resp, out := postBatch(t, srv, `{"vectors":[[1,2,3],[4,5,6]],"k":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	for j, r := range results {
		rm := r.(map[string]any)
		if ids := rm["ids"].([]any); len(ids) != 4 {
			t.Fatalf("result %d ids = %v", j, ids)
		}
		if st := rm["stats"].(map[string]any); st["page_reads"].(float64) != 3 {
			t.Fatalf("result %d stats = %v", j, st)
		}
	}
	batch := out["batch"].(map[string]any)
	if batch["queries"].(float64) != 2 || batch["page_reads"].(float64) != 6 {
		t.Fatalf("batch summary = %v", batch)
	}
	if batch["wall_ns"].(float64) < 0 {
		t.Fatalf("batch wall = %v", batch["wall_ns"])
	}

	// Batch members count as queries; batch histograms observe once per
	// batch and once per member.
	var m metricsResponse
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Batches != 1 || m.Queries != 2 {
		t.Fatalf("batches/queries = %d/%d, want 1/2", m.Batches, m.Queries)
	}
	if m.Latency.Batch.Count != 1 {
		t.Fatalf("batch histogram count = %d, want 1", m.Latency.Batch.Count)
	}
	if m.Latency.BatchQuery.Count != 2 {
		t.Fatalf("batch_query histogram count = %d, want 2", m.Latency.BatchQuery.Count)
	}
	if m.Latency.Reduce.Count != 2 {
		t.Fatalf("per-stage histograms missed batch members: reduce count = %d", m.Latency.Reduce.Count)
	}
}

func TestBatchSearchValidation(t *testing.T) {
	s := &fakeBatchSearcher{}
	srv := httptest.NewServer(New(s, Config{Dim: 3, MaxK: 50, MaxBatch: 2}))
	defer srv.Close()

	cases := []struct {
		body string
		code int
	}{
		{`{"vectors":[],"k":4}`, http.StatusBadRequest},                        // empty batch
		{`{"vectors":[[1,2,3],[1,2,3],[1,2,3]],"k":4}`, http.StatusBadRequest}, // above MaxBatch
		{`{"vectors":[[1,2,3]],"k":0}`, http.StatusBadRequest},                 // k too small
		{`{"vectors":[[1,2,3]],"k":999}`, http.StatusBadRequest},               // k above cap
		{`{"vectors":[[1,2,3],[1,2]],"k":4}`, http.StatusBadRequest},           // wrong dim
		{`{"vectors":[[1,2,3],[1,1e999,3]],"k":4}`, http.StatusBadRequest},     // non-finite
		{`{"vectors":`, http.StatusBadRequest},                                 // malformed
		{`{"vectors":[[-1,2,3]],"k":4}`, http.StatusInternalServerError},       // engine failure
	}
	for _, c := range cases {
		resp, out := postBatch(t, srv, c.body)
		if resp.StatusCode != c.code {
			t.Fatalf("%s: status %d, want %d (%v)", c.body, resp.StatusCode, c.code, out)
		}
		if out["error"] == "" {
			t.Fatalf("%s: missing error message", c.body)
		}
	}
	// Only the engine-failure case may reach the searcher.
	if n := s.batchCalls.Load(); n != 1 {
		t.Fatalf("invalid batches reached SearchBatch: %d calls, want 1", n)
	}
}

// TestBatchSearchNotImplemented: a searcher without the batch capability
// serves 501 on /search/batch instead of panicking or pretending.
func TestBatchSearchNotImplemented(t *testing.T) {
	srv := newTestServer(t)
	resp, out := postBatch(t, srv, `{"vectors":[[1,2,3]],"k":4}`)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501 (%v)", resp.StatusCode, out)
	}
}

// TestBatchAdmissionAllOrNothing: a batch needing more gate slots than exist
// is shed whole — partially acquired slots are returned, so the gate drains
// back to empty and a smaller batch is admitted.
func TestBatchAdmissionAllOrNothing(t *testing.T) {
	s := &fakeBatchSearcher{}
	h := New(s, Config{Dim: 1, MaxInFlight: 1, MaxBatch: 8})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, out := postBatch(t, srv, `{"vectors":[[1],[2]],"k":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized batch: status %d, want 503 (%v)", resp.StatusCode, out)
	}
	if s.batchCalls.Load() != 0 {
		t.Fatal("shed batch reached the searcher")
	}
	m := getJSON(t, srv, "/metrics")
	if m["batch_shed"].(float64) != 1 {
		t.Fatalf("batch_shed = %v, want 1", m["batch_shed"])
	}
	if m["shed"].(float64) != 1 {
		t.Fatalf("shed = %v, want 1 (the one unacquirable slot)", m["shed"])
	}
	if m["in_flight"].(float64) != 0 {
		t.Fatalf("in_flight = %v after shed batch — partial slots leaked", m["in_flight"])
	}

	// A batch that fits the gate goes through.
	resp, out = postBatch(t, srv, `{"vectors":[[1]],"k":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fitting batch: status %d (%v)", resp.StatusCode, out)
	}
	m = getJSON(t, srv, "/metrics")
	if m["in_flight"].(float64) != 0 {
		t.Fatalf("in_flight = %v after completed batch", m["in_flight"])
	}
}

func TestBatchCanceledRequestCounted(t *testing.T) {
	s := &fakeBatchSearcher{}
	h := New(s, Config{Dim: 3, MaxK: 50})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/search/batch",
		bytes.NewReader([]byte(`{"vectors":[[1,2,3]],"k":2}`))).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if h.canceled.Load() != 1 {
		t.Fatalf("canceled = %d, want 1", h.canceled.Load())
	}
	if h.queries.Load() != 0 || h.batches.Load() != 0 {
		t.Fatal("abandoned batch counted as completed work")
	}
}

// TestStatsShardBlock wires a per-shard stats source and checks /stats and
// /metrics render one block per shard, including the nested maintain block.
func TestStatsShardBlock(t *testing.T) {
	h, _ := newTestHandler()
	h.SetShardStats(func() []ShardStat {
		return []ShardStat{
			{Shard: 0, Points: 600, CachedItems: 10, CacheCapacity: 20,
				Queries: 7, Candidates: 70, Hits: 35, HitRatio: 0.5, Fetched: 21, PageReads: 9},
			{Shard: 1, Points: 600, CachedItems: 12, CacheCapacity: 20,
				Queries: 7, Candidates: 65, Hits: 13, HitRatio: 0.2, Fetched: 30, PageReads: 14,
				Maintain: &RebuildStats{Rebuilds: 2, LastRebuildWall: 3 * time.Millisecond, LastRebuildAt: "2026-08-08T00:00:00Z"}},
		}
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	for _, path := range []string{"/stats", "/metrics"} {
		out := getJSON(t, srv, path)
		shards, ok := out["shards"].([]any)
		if !ok || len(shards) != 2 {
			t.Fatalf("%s: shards block = %v", path, out["shards"])
		}
		s0 := shards[0].(map[string]any)
		if s0["shard"].(float64) != 0 || s0["points"].(float64) != 600 || s0["cache_hits"].(float64) != 35 {
			t.Fatalf("%s: shard 0 block = %v", path, s0)
		}
		if _, has := s0["maintain"]; has {
			t.Fatalf("%s: shard 0 has a maintain block without a maintainer", path)
		}
		s1 := shards[1].(map[string]any)
		mt, ok := s1["maintain"].(map[string]any)
		if !ok {
			t.Fatalf("%s: shard 1 missing maintain block: %v", path, s1)
		}
		if mt["rebuilds"].(float64) != 2 || mt["last_rebuild_at"].(string) == "" {
			t.Fatalf("%s: shard 1 maintain block = %v", path, mt)
		}
	}
}

// TestStatsNoShardBlockUnsharded pins the unsharded response shape: no
// shards key at all rather than an empty list.
func TestStatsNoShardBlockUnsharded(t *testing.T) {
	srv := newTestServer(t)
	out := getJSON(t, srv, "/stats")
	if _, has := out["shards"]; has {
		t.Fatalf("unsharded /stats has a shards block: %v", out["shards"])
	}
}
