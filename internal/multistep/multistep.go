// Package multistep implements optimal multi-step kNN refinement
// (Seidl–Kriegel, SIGMOD 1998; generalized with upper bounds by Kriegel et
// al., SSTD 2007) — Phase 3 of the paper's Algorithm 1 and the procedure
// sketched in its Section 2.3 / Figure 4.
//
// Given candidates with conservative lower/upper distance bounds, it fetches
// exact points in ascending lower-bound order and stops as soon as the
// current k-th exact distance is below every unfetched lower bound. That
// fetch schedule is optimal: no correct algorithm restricted to the same
// bounds can fetch fewer candidates.
package multistep

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"exploitbit/internal/vec"
)

// ErrSkipCandidate is a sentinel a Fetch/GroupFetch/BatchFetch implementation
// returns (possibly wrapped) to drop the demanded candidate or unit from the
// schedule without aborting the query — the degraded-mode plumbing: a sharded
// engine serving around a quarantined shard resolves that shard's candidates
// to this error instead of failing the whole search. A skipped fetch is not
// counted as refinement I/O. Any other fetch error still aborts: silently
// continuing past an unclassified failure would surface partial results as
// complete ones.
var ErrSkipCandidate = errors.New("multistep: skip candidate")

// Candidate is a refinement candidate: a point identifier with the distance
// bounds known so far. Uncached candidates carry LB=0, UB=+Inf (Algorithm 1
// line 4).
type Candidate struct {
	ID     int
	LB, UB float64
}

// Fetch retrieves the exact vector of a point (typically disk.PointFile's
// Fetch bound to a reusable buffer); every call is one unit of refinement
// I/O.
type Fetch func(id int) ([]float32, error)

// Result is one refined neighbor.
type Result struct {
	ID   int
	Dist float64
}

// Search refines cands to the k nearest of q, returning them in ascending
// distance order along with the number of Fetch calls performed.
//
// Candidates already known to be true results (Algorithm 1's early
// detection) must NOT be passed here; reduce k instead.
func Search(q []float32, cands []Candidate, k int, fetch Fetch) ([]Result, int, error) {
	if k < 1 {
		return nil, 0, nil
	}
	order := make([]Candidate, len(cands))
	copy(order, cands)
	sort.Slice(order, func(i, j int) bool { return order[i].LB < order[j].LB })

	top := vec.NewTopK(k)
	fetched := 0
	for _, c := range order {
		// Optimal stop: every remaining candidate has LB >= this one's, so
		// none can improve the current k-th distance.
		if top.Full() && c.LB >= top.Root() {
			break
		}
		p, err := fetch(c.ID)
		if err != nil {
			if errors.Is(err, ErrSkipCandidate) {
				continue
			}
			return nil, fetched, fmt.Errorf("multistep: fetching candidate %d: %w", c.ID, err)
		}
		fetched++
		top.Push(vec.Dist(q, p), c.ID)
	}
	ids, dists := top.Results()
	out := make([]Result, len(ids))
	for i := range ids {
		out[i] = Result{ID: ids[i], Dist: dists[i]}
	}
	return out, fetched, nil
}

// Scratch holds the reusable state of SearchSq so that a pooled scratch
// makes repeated refinement calls allocation-free. The zero value is ready
// to use.
type Scratch struct {
	order []Candidate
	top   *vec.TopK

	// SearchGroupsSq state (group.go).
	gorder []GroupCandidate
	loaded map[int32]bool
}

// SearchSq is Search operating entirely in squared-distance space: cands
// carry squared bounds (as produced by bounds.(*Table).BoundsSq* and the
// query LUT), exact distances are compared squared, and the square root is
// taken only for the k results actually returned. Because x ↦ x² is
// monotone on distances, the fetch order, the optimal stop and the selected
// results are identical to Search's.
//
// Results are appended to dst (pass dst[:0] to reuse a buffer) in ascending
// distance order.
func (sc *Scratch) SearchSq(q []float32, cands []Candidate, k int, fetch Fetch, dst []Result) ([]Result, int, error) {
	if k < 1 {
		return dst, 0, nil
	}
	if cap(sc.order) < len(cands) {
		sc.order = make([]Candidate, len(cands))
	}
	order := sc.order[:len(cands)]
	copy(order, cands)
	slices.SortFunc(order, func(a, b Candidate) int {
		switch {
		case a.LB < b.LB:
			return -1
		case a.LB > b.LB:
			return 1
		default:
			return 0
		}
	})

	if sc.top == nil {
		sc.top = vec.NewTopK(k)
	} else {
		sc.top.Reset(k)
	}
	top := sc.top
	fetched := 0
	for _, c := range order {
		// Optimal stop: every remaining candidate has LB >= this one's, so
		// none can improve the current k-th squared distance.
		if top.Full() && c.LB >= top.Root() {
			break
		}
		p, err := fetch(c.ID)
		if err != nil {
			if errors.Is(err, ErrSkipCandidate) {
				continue
			}
			return dst, fetched, fmt.Errorf("multistep: fetching candidate %d: %w", c.ID, err)
		}
		fetched++
		top.Push(vec.SqDist(q, p), c.ID)
	}
	ids, sqDists := top.Drain()
	for i := range ids {
		dst = append(dst, Result{ID: ids[i], Dist: math.Sqrt(sqDists[i])})
	}
	return dst, fetched, nil
}

// KthSmallest returns the k-th smallest value of xs (1-based), or +Inf when
// fewer than k values exist. Algorithm 1 uses it for lb_k and ub_k (lines
// 7–8); it is exported here because both the engine and the cost model need
// it.
func KthSmallest(xs []float64, k int) float64 {
	if k < 1 || len(xs) < k {
		return math.Inf(1)
	}
	return KthSmallestWith(xs, k, vec.NewTopK(k))
}

// KthSmallestWith is KthSmallest reusing a caller-provided heap (which it
// Resets), so the engine's pooled scratch computes lb_k/ub_k without
// allocating.
func KthSmallestWith(xs []float64, k int, top *vec.TopK) float64 {
	if k < 1 || len(xs) < k {
		return math.Inf(1)
	}
	top.Reset(k)
	for i, x := range xs {
		top.Push(x, i)
	}
	return top.Root()
}
