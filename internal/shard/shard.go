// Package shard partitions a dataset into N shard units for the
// scatter-gather engine. The partitioner is deterministic and — crucially
// for the bit-identity guarantee — *fetch-unit granular*: points that share
// one point-file fetch unit (one page, or one multi-page record) are always
// assigned to the same shard, contiguously and in global order, so a
// shard's local point file has exactly the same page co-residency as the
// corresponding region of the unsharded file. Batch refinement therefore
// coalesces the same point sets into the same number of page reads whether
// the dataset is sharded or not.
package shard

import (
	"fmt"
	"sort"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/kmeans"
	"exploitbit/internal/vec"
)

// Layout names a deterministic partitioning strategy.
type Layout string

const (
	// RoundRobin deals fetch units to shards in turn: shard of unit u is
	// u mod N. Balanced by construction and oblivious to the data.
	RoundRobin Layout = "round-robin"
	// Clustered is the iDistance-flavored layout: fetch units are keyed by
	// their nearest reference point (k-means over unit centroids, seeded
	// deterministically), sorted by (reference, distance, unit) and split
	// into N contiguous runs — each shard holds a spatially coherent slab
	// of the dataset, the way iDistance assigns points to reference-point
	// partitions.
	Clustered Layout = "clustered"
)

// Validate rejects unknown layout names early.
func (l Layout) Validate() error {
	switch l {
	case RoundRobin, Clustered:
		return nil
	}
	return fmt.Errorf("shard: unknown layout %q (round-robin|clustered)", string(l))
}

// clusteredRefs is the reference-point count of the Clustered layout and
// clusteredIters/clusteredSeed pin its k-means run; all three are fixed so
// the same dataset always partitions the same way.
const (
	clusteredRefs  = 16
	clusteredIters = 8
	clusteredSeed  = 42
)

// Partition maps every global point id to its shard and local id, and lists
// each shard's members in local-id order.
type Partition struct {
	N        int
	Layout   Layout
	UnitSize int // points per fetch unit (see disk.PointsPerUnit)

	// Owner[g] is the shard of global id g; Local[g] its id inside that
	// shard. Shards[s][l] is the inverse: the global id of shard s's local
	// point l.
	Owner  []int32
	Local  []int32
	Shards [][]int32
}

// Build partitions ds into n shards for point files with the given page
// size. Whole fetch units are assigned to shards; a partial trailing unit
// (when the dataset size is not a multiple of the unit size) is placed last
// in its shard's local order so every full unit starts on a local unit
// boundary. Build fails when n exceeds the number of fetch units — a shard
// with no unit could never hold a point.
func Build(ds *dataset.Dataset, n int, layout Layout, pageSize int) (*Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", n)
	}
	if layout == "" {
		layout = RoundRobin
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	unitSize := disk.PointsPerUnit(ds.Dim, pageSize)
	nPts := ds.Len()
	units := (nPts + unitSize - 1) / unitSize
	if n > units {
		return nil, fmt.Errorf("shard: %d shards exceed %d fetch units (%d points, %d per unit)",
			n, units, nPts, unitSize)
	}

	// Per-shard unit lists, in local placement order.
	var unitsOf [][]int32
	switch layout {
	case RoundRobin:
		unitsOf = roundRobinUnits(units, n)
	case Clustered:
		unitsOf = clusteredUnits(ds, units, unitSize, n)
	}

	// A partial trailing unit must come last locally, or the units after it
	// would straddle local page boundaries.
	if nPts%unitSize != 0 {
		last := int32(units - 1)
		for s := range unitsOf {
			moveToEnd(unitsOf[s], last)
		}
	}

	p := &Partition{
		N: n, Layout: layout, UnitSize: unitSize,
		Owner:  make([]int32, nPts),
		Local:  make([]int32, nPts),
		Shards: make([][]int32, n),
	}
	for s, us := range unitsOf {
		var members []int32
		for _, u := range us {
			lo := int(u) * unitSize
			hi := min(lo+unitSize, nPts)
			for g := lo; g < hi; g++ {
				p.Owner[g] = int32(s)
				p.Local[g] = int32(len(members))
				members = append(members, int32(g))
			}
		}
		p.Shards[s] = members
	}
	return p, nil
}

// roundRobinUnits deals unit ids to shards in turn, ascending per shard.
func roundRobinUnits(units, n int) [][]int32 {
	out := make([][]int32, n)
	for u := 0; u < units; u++ {
		s := u % n
		out[s] = append(out[s], int32(u))
	}
	return out
}

// clusteredUnits sorts units by (nearest reference, distance, unit) and
// splits the order into n contiguous, unit-balanced runs.
func clusteredUnits(ds *dataset.Dataset, units, unitSize, n int) [][]int32 {
	// Unit centroids, as a throwaway dataset so kmeans can consume them.
	dim := ds.Dim
	cent := make([]float32, units*dim)
	for u := 0; u < units; u++ {
		lo := u * unitSize
		hi := min(lo+unitSize, ds.Len())
		c := cent[u*dim : (u+1)*dim]
		for g := lo; g < hi; g++ {
			p := ds.Point(g)
			for j := range c {
				c[j] += p[j]
			}
		}
		inv := float32(1) / float32(hi-lo)
		for j := range c {
			c[j] *= inv
		}
	}
	cds := dataset.New("centroids", dim, cent, ds.Domain)
	k := min(clusteredRefs, units)
	res := kmeans.Run(cds, k, clusteredIters, clusteredSeed)

	type key struct {
		ref  int32
		dist float64
		unit int32
	}
	keys := make([]key, units)
	for u := 0; u < units; u++ {
		ref := res.Assign[u]
		keys[u] = key{ref: ref, dist: vec.SqDist(cds.Point(u), res.Centers[ref]), unit: int32(u)}
	}
	// Deterministic total order: sort by (ref, dist, unit); the unit id
	// breaks distance ties, so equal-distance units never reorder between
	// runs.
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.ref != b.ref {
			return a.ref < b.ref
		}
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		return a.unit < b.unit
	})

	out := make([][]int32, n)
	for s := 0; s < n; s++ {
		lo, hi := s*units/n, (s+1)*units/n
		for _, kk := range keys[lo:hi] {
			out[s] = append(out[s], kk.unit)
		}
	}
	return out
}

// SubDataset materializes shard s's points, in local-id order, as a
// standalone dataset over the parent's domain.
func (p *Partition) SubDataset(ds *dataset.Dataset, s int) *dataset.Dataset {
	ids := p.Shards[s]
	dim := ds.Dim
	data := make([]float32, len(ids)*dim)
	for l, g := range ids {
		copy(data[l*dim:(l+1)*dim], ds.Point(int(g)))
	}
	return dataset.New(fmt.Sprintf("%s-shard%d", ds.Name, s), dim, data, ds.Domain)
}

// moveToEnd moves the first occurrence of v to the end of s, preserving the
// relative order of everything else. A no-op when v is absent.
func moveToEnd(s []int32, v int32) {
	for i, x := range s {
		if x == v {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = v
			return
		}
	}
}
