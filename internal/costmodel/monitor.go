package costmodel

import "sync"

// MonitorConfig tunes the drift watchdog.
type MonitorConfig struct {
	// Threshold is the minimum predicted relative C_refine improvement
	// (est(τ_now) − est(τ*)) / est(τ_now) that counts a window as drifted
	// (default 0.10).
	Threshold float64
	// Windows is the number of consecutive over-threshold windows required
	// before a retune fires (default 3). One noisy window must not churn the
	// cache; M windows in a row is a regime, not a blip.
	Windows int
	// Alpha is the EWMA smoothing factor for the observed ratios
	// (default 0.3: the last ~3 windows dominate the estimate).
	Alpha float64
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.10
	}
	if c.Windows < 1 {
		c.Windows = 3
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	return c
}

// Decision is the outcome of one window evaluation.
type Decision struct {
	// Retune is set when the predicted improvement has held above the
	// threshold for the configured number of consecutive windows. The caller
	// owns acting on it (launching a rebuild at Tau) and must report the
	// installed engine back through NoteInstall.
	Retune bool
	// Tau is the recommended code length for the evaluated window's profile.
	Tau int
	// Improvement is the predicted relative C_refine gain of moving from the
	// active τ to Tau under the window's profile.
	Improvement float64
}

// MonitorSnapshot is the watchdog's telemetry block: observed vs predicted
// ratios, the active and recommended τ, and the retune counters. All model
// quantities reflect the most recently evaluated window.
type MonitorSnapshot struct {
	Tau            int // τ the serving engine was built with
	RecommendedTau int // OptimalTau of the last evaluated window's profile

	ObservedRhoHit    float64 // EWMA of measured Hits / Candidates
	ObservedRhoRefine float64 // EWMA of measured Remaining / Candidates

	PredictedRhoHit    float64 // model's ρ_hit at the active τ, last window's profile
	PredictedRhoRefine float64 // model's ρ_refine bound at the active τ

	PredictedCrefine float64 // model's C_refine at the active τ
	BestCrefine      float64 // model's C_refine at the recommended τ
	Improvement      float64 // (PredictedCrefine − BestCrefine) / PredictedCrefine

	PendingWindows int   // consecutive over-threshold windows so far
	Windows        int64 // windows evaluated since construction
	Retunes        int64 // retune rebuilds installed
}

// Monitor is the drift watchdog closing the Section 4 loop: the offline cost
// model predicted ρ_hit/ρ_refine for the τ the cache was built with, and the
// serving stack feeds the observed ratios and a fresh window profile back in.
// When the model — evaluated on live traffic — says a different τ would cut
// C_refine by at least the threshold for M consecutive windows, Observe
// returns a retune decision; the owner rebuilds and reports the installed τ
// through NoteInstall.
//
// The monitor is deliberately pure bookkeeping: it never builds engines and
// holds no references into the serving stack, so it is trivially testable
// and shareable (one per maintained engine, one per shard slot).
type Monitor struct {
	mu  sync.Mutex
	cfg MonitorConfig

	tau    int
	seeded bool

	obsHit, obsRefine   float64
	predHit, predRefine float64
	predC, bestC        float64
	improvement         float64
	recTau              int

	pending int
	windows int64
	retunes int64
}

// NewMonitor arms a watchdog for an engine serving at code length tau.
func NewMonitor(tau int, cfg MonitorConfig) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), tau: tau, recTau: tau}
}

// Tau returns the τ the monitor believes is serving.
func (m *Monitor) Tau() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tau
}

// Observe folds one completed window into the watchdog: the observed
// candidate-weighted ρ_hit and ρ_refine of the window's queries, and the
// model inputs assembled from the window's profile. It returns the retune
// decision for this window.
func (m *Monitor) Observe(obsHit, obsRefine float64, in Inputs) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.windows++

	if !m.seeded {
		m.obsHit, m.obsRefine = obsHit, obsRefine
		m.seeded = true
	} else {
		a := m.cfg.Alpha
		m.obsHit += a * (obsHit - m.obsHit)
		m.obsRefine += a * (obsRefine - m.obsRefine)
	}

	m.predHit = in.HitRatioForTau(m.tau)
	m.predRefine = in.RefineRatioForTau(m.tau)
	m.predC = in.EstimatedCrefine(m.tau)
	rec, est := in.OptimalTau()
	m.recTau = rec
	m.bestC = est[rec-1]

	m.improvement = 0
	if m.predC > 0 && m.bestC < m.predC {
		m.improvement = (m.predC - m.bestC) / m.predC
	}

	if rec != m.tau && m.improvement >= m.cfg.Threshold {
		m.pending++
	} else {
		m.pending = 0
	}

	d := Decision{Tau: rec, Improvement: m.improvement}
	if m.pending >= m.cfg.Windows {
		// Fire once and restart the count: if the caller loses its rebuild
		// race (one already in flight) the evidence re-accumulates instead
		// of every subsequent window re-firing into a busy rebuilder.
		d.Retune = true
		m.pending = 0
	}
	return d
}

// NoteInstall records that a rebuilt engine swapped in at code length tau.
// Retuned distinguishes a watchdog-triggered rebuild (counted) from a drift
// or quarantine rebuild that kept its τ; either way the pending streak
// resets — the cache content was just refreshed, so the old evidence
// describes an engine that no longer serves.
func (m *Monitor) NoteInstall(tau int, retuned bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tau = tau
	m.pending = 0
	if retuned {
		m.retunes++
	}
}

// Snapshot returns the telemetry block for /metrics.
func (m *Monitor) Snapshot() MonitorSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorSnapshot{
		Tau:                m.tau,
		RecommendedTau:     m.recTau,
		ObservedRhoHit:     m.obsHit,
		ObservedRhoRefine:  m.obsRefine,
		PredictedRhoHit:    m.predHit,
		PredictedRhoRefine: m.predRefine,
		PredictedCrefine:   m.predC,
		BestCrefine:        m.bestC,
		Improvement:        m.improvement,
		PendingWindows:     m.pending,
		Windows:            m.windows,
		Retunes:            m.retunes,
	}
}
