// Cost-model-driven tuning (Section 4 / Figure 12): for a given cache
// budget, the model estimates the refinement cost at every code length τ and
// picks the optimum — trading cache hit ratio (few bits → many items)
// against bound tightness (many bits → strong pruning). The example prints
// the estimated and measured curves side by side and shows where the model's
// choice lands.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"exploitbit"
)

func main() {
	ds := exploitbit.NUSWideLike(8000, 31)
	qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 400, Length: 2030, ZipfS: 1.3, Perturb: 0.005, Seed: 32,
	})
	wl, qtest := qlog.Split(30)

	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	budget := int64(ds.Len()) * int64(ds.PointSize()) / 8 // a tight 12.5% budget
	in := sys.CostInputs(budget)
	bestTau, estimates := in.OptimalTau()

	fmt.Printf("budget %d KiB over a %d MB file; avg |C(q)| = %.0f; Dmax = %.3f\n\n",
		budget>>10, int64(ds.Len())*int64(ds.PointSize())>>20, in.AvgCandSize, in.Dmax)
	fmt.Printf("%-5s %10s %10s %12s %12s\n", "tau", "capacity", "hit_ratio", "est_Crefine", "meas_IO")
	for _, tau := range []int{2, 4, 6, 8, 10, 12} {
		eng, err := sys.Engine(exploitbit.HCW, budget, tau)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range qtest {
			if _, _, err := eng.Search(q, 10); err != nil {
				log.Fatal(err)
			}
		}
		mark := " "
		if tau == bestTau {
			mark = "*"
		}
		fmt.Printf("%-4d%s %10d %10.3f %12.1f %12.1f\n",
			tau, mark, in.CapacityForTau(tau), in.HitRatioForTau(tau),
			estimates[tau-1], eng.Aggregate().AvgIO())
	}
	fmt.Printf("\ncost model picks tau = %d (marked *); the measured optimum should be nearby\n", bestTau)
}
