// Package rtree provides an STR (sort-tile-recursive) bulk-loaded R-tree
// leaf partition. The paper uses it in two places: the mHC-R
// multi-dimensional histogram of Section 3.6.2 ("build an R-tree with 2^τ
// leaf nodes, then map the MBR of each leaf node to a bucket") and, via the
// LeafIndex shape, as another tree index the cache can serve.
//
// In hundreds of dimensions R-tree MBRs degenerate — Appendix B quantifies
// why — which is exactly the behaviour the mHC-R baseline must reproduce.
package rtree

import (
	"math"
	"sort"

	"exploitbit/internal/bounds"
	"exploitbit/internal/dataset"
)

// Index is a bulk-loaded leaf partition with MBRs. (No internal levels are
// materialized: the paper keeps the non-leaf structure in memory, and for
// search the flat MBR directory yields the same leaf visit order.)
type Index struct {
	leaves [][]int32
	lo, hi [][]float32
}

// BuildSTR tiles ds into approximately numLeaves leaves with sort-tile
// recursion over the first sortDims dimensions (default 2; high-dimensional
// STR cannot meaningfully tile more). The final slicing always packs
// consecutive points, so every leaf gets ceil(n/numLeaves) points.
func BuildSTR(ds *dataset.Dataset, numLeaves, sortDims int) *Index {
	n := ds.Len()
	if numLeaves < 1 {
		numLeaves = 1
	}
	if numLeaves > n {
		numLeaves = n
	}
	if sortDims < 1 {
		sortDims = 2
	}
	if sortDims > ds.Dim {
		sortDims = ds.Dim
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	// Recursive tiling: split into s groups on dimension d, recurse.
	var tile func(ids []int32, dim, leavesWanted int)
	var ordered []int32
	tile = func(ids []int32, dim, leavesWanted int) {
		if leavesWanted <= 1 || dim >= sortDims {
			ordered = append(ordered, ids...)
			return
		}
		sort.Slice(ids, func(a, b int) bool {
			va := ds.Point(int(ids[a]))[dim]
			vb := ds.Point(int(ids[b]))[dim]
			if va != vb {
				return va < vb
			}
			return ids[a] < ids[b]
		})
		// Number of slices on this dimension: the (sortDims-dim)-th root.
		s := int(math.Ceil(math.Pow(float64(leavesWanted), 1/float64(sortDims-dim))))
		if s < 1 {
			s = 1
		}
		per := (len(ids) + s - 1) / s
		for start := 0; start < len(ids); start += per {
			end := start + per
			if end > len(ids) {
				end = len(ids)
			}
			tile(ids[start:end], dim+1, (leavesWanted+s-1)/s)
		}
	}
	tile(ids, 0, numLeaves)

	ix := &Index{}
	per := (n + numLeaves - 1) / numLeaves
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		leaf := append([]int32(nil), ordered[start:end]...)
		lo := make([]float32, ds.Dim)
		hi := make([]float32, ds.Dim)
		for j := range lo {
			lo[j] = float32(math.Inf(1))
			hi[j] = float32(math.Inf(-1))
		}
		for _, id := range leaf {
			p := ds.Point(int(id))
			for j, v := range p {
				if v < lo[j] {
					lo[j] = v
				}
				if v > hi[j] {
					hi[j] = v
				}
			}
		}
		ix.leaves = append(ix.leaves, leaf)
		ix.lo = append(ix.lo, lo)
		ix.hi = append(ix.hi, hi)
	}
	return ix
}

// Leaves returns the leaf partition.
func (ix *Index) Leaves() [][]int32 { return ix.leaves }

// MBR returns leaf li's bounding rectangle (aliases internal storage).
func (ix *Index) MBR(li int) (lo, hi []float32) { return ix.lo[li], ix.hi[li] }

// MBRs returns all rectangles — the bucket list handed to histogram.NewMD
// for mHC-R.
func (ix *Index) MBRs() (lo, hi [][]float32) { return ix.lo, ix.hi }

// Assignment returns point id → leaf id for n points.
func (ix *Index) Assignment(n int) []int {
	assign := make([]int, n)
	for li, leaf := range ix.leaves {
		for _, id := range leaf {
			assign[id] = li
		}
	}
	return assign
}

// LeafLowerBounds returns MINDIST(q, MBR) per leaf.
func (ix *Index) LeafLowerBounds(q []float32) []float64 {
	return ix.LeafLowerBoundsInto(q, nil)
}

// LeafLowerBoundsInto is LeafLowerBounds writing into dst (grown only when
// undersized), so repeated queries reuse one buffer without allocating.
func (ix *Index) LeafLowerBoundsInto(q []float32, dst []float64) []float64 {
	if cap(dst) < len(ix.leaves) {
		dst = make([]float64, len(ix.leaves))
	}
	dst = dst[:len(ix.leaves)]
	for li := range ix.leaves {
		dst[li] = bounds.RectMin(q, ix.lo[li], ix.hi[li])
	}
	return dst
}
