package ingest

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func v3(a, b, c float32) []float32 { return []float32{a, b, c} }

func TestWALRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 3, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	vecs := [][]float32{v3(1, 2, 3), v3(4, 5, 6), v3(7, 8, 9), v3(-1, 0, float32(math.Inf(1)))}
	for i, v := range vecs[:3] {
		if err := w.AppendInsert(uint64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendDelete(0); err != nil {
		t.Fatal(err)
	}
	sealed, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if sealed != 1 {
		t.Fatalf("sealed seq %d, want 1", sealed)
	}
	if err := w.AppendInsert(3, vecs[3]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Points) != 4 || rec.Records != 5 || rec.TruncatedBytes != 0 {
		t.Fatalf("recover: %d points, %d records, %d truncated", len(rec.Points), rec.Records, rec.TruncatedBytes)
	}
	for i, p := range rec.Points {
		if int(p.ID) != i || !reflect.DeepEqual(p.Vec, vecs[i]) {
			t.Fatalf("point %d: id %d vec %v, want %v", i, p.ID, p.Vec, vecs[i])
		}
	}
	if _, ok := rec.Tombs[0]; !ok || len(rec.Tombs) != 1 {
		t.Fatalf("tombs %v, want {0}", rec.Tombs)
	}
	if rec.NextSeq != 3 {
		t.Fatalf("next seq %d, want 3", rec.NextSeq)
	}
}

func TestWALRemoveThrough(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 2, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(1, []float32{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, segs := w.Stats(); segs != 3 {
		t.Fatalf("segments %d, want 3", segs)
	}
	if err := w.RemoveThrough(2); err != nil {
		t.Fatal(err)
	}
	bytes, segs := w.Stats()
	if segs != 1 || bytes != walHeaderSize {
		t.Fatalf("after retire: %d segments %d bytes, want 1 segment of header only", segs, bytes)
	}
	// The active segment survives even when covered by the horizon.
	if err := w.RemoveThrough(99); err != nil {
		t.Fatal(err)
	}
	if _, segs := w.Stats(); segs != 1 {
		t.Fatalf("active segment removed")
	}
	w.Close()
}

func TestWALRejectsStaleStartSeq(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 2, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := OpenWAL(dir, 2, 1, FsyncNone); err == nil {
		t.Fatal("reopening at an existing sequence must fail")
	}
	w2, err := OpenWAL(dir, 2, 2, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
}

// TestWALTruncateEveryByte is the torn-tail property test: for every prefix
// length of a real segment, recovery must succeed, keep exactly the records
// whose bytes survived whole, truncate the rest, and be deterministic (a
// second recovery of the truncated directory reports the same state with
// nothing further to drop).
func TestWALTruncateEveryByte(t *testing.T) {
	const dim = 2
	src := t.TempDir()
	w, err := OpenWAL(src, dim, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	type op struct {
		insert bool
		id     uint64
		vec    []float32
	}
	ops := []op{
		{true, 0, []float32{0.5, -1.25}},
		{true, 1, []float32{2, 3}},
		{false, 0, nil},
		{true, 2, []float32{-7.5, 0}},
		{false, 2, nil},
	}
	// recEnds[i] = file offset after i complete records.
	recEnds := []int{walHeaderSize}
	for _, o := range ops {
		if o.insert {
			if err := w.AppendInsert(o.id, o.vec); err != nil {
				t.Fatal(err)
			}
			recEnds = append(recEnds, recEnds[len(recEnds)-1]+8+9+4*dim)
		} else {
			if err := w.AppendDelete(o.id); err != nil {
				t.Fatal(err)
			}
			recEnds = append(recEnds, recEnds[len(recEnds)-1]+8+9)
		}
	}
	w.Close()
	buf, err := os.ReadFile(filepath.Join(src, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != recEnds[len(recEnds)-1] {
		t.Fatalf("segment is %d bytes, expected %d", len(buf), recEnds[len(recEnds)-1])
	}

	for cut := 0; cut <= len(buf); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir, 0, dim)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}

		complete := 0
		for complete+1 < len(recEnds) && recEnds[complete+1] <= cut {
			complete++
		}
		truncOff := 0
		if cut >= walHeaderSize {
			truncOff = recEnds[complete]
		}
		wantPts, wantTombs := 0, map[int64]struct{}{}
		for _, o := range ops[:complete] {
			if o.insert {
				wantPts++
			} else {
				wantTombs[int64(o.id)] = struct{}{}
			}
		}
		if rec.Records != complete {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, rec.Records, complete)
		}
		if len(rec.Points) != wantPts || !reflect.DeepEqual(rec.Tombs, wantTombs) {
			t.Fatalf("cut %d: %d points tombs %v, want %d points tombs %v",
				cut, len(rec.Points), rec.Tombs, wantPts, wantTombs)
		}
		for i, p := range rec.Points {
			if int(p.ID) != i {
				t.Fatalf("cut %d: point %d has id %d", cut, i, p.ID)
			}
		}
		if rec.TruncatedBytes != int64(cut-truncOff) {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, rec.TruncatedBytes, cut-truncOff)
		}
		fi, err := os.Stat(filepath.Join(dir, segmentName(1)))
		if cut < walHeaderSize {
			// A segment torn inside its own header is a crashed creation
			// holding no records: recovery removes the file outright, so it
			// can never resurface as a non-newest unreadable segment.
			if !os.IsNotExist(err) {
				t.Fatalf("cut %d: torn-header segment still on disk (stat err %v)", cut, err)
			}
		} else {
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != int64(truncOff) {
				t.Fatalf("cut %d: file is %d bytes after recovery, want %d", cut, fi.Size(), truncOff)
			}
		}

		// Determinism: recovering the repaired directory changes nothing.
		rec2, err := Recover(dir, 0, dim)
		if err != nil {
			t.Fatalf("cut %d second recovery: %v", cut, err)
		}
		if rec2.TruncatedBytes != 0 || rec2.Records != rec.Records ||
			!reflect.DeepEqual(rec2.Points, rec.Points) || !reflect.DeepEqual(rec2.Tombs, rec.Tombs) {
			t.Fatalf("cut %d: second recovery diverged", cut)
		}
	}
}
