package ingest

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

// foldFixture builds a small folded dataset: baseN base points plus extra
// appended points, dim 2.
func foldFixture(baseN, extra int) *dataset.Dataset {
	dim := 2
	data := make([]float32, 0, (baseN+extra)*dim)
	for i := 0; i < baseN+extra; i++ {
		data = append(data, float32(i), float32(-i)/2)
	}
	return dataset.New("ckpt", dim, data, vec.NewDomain(-64, 64, 16))
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	fold := foldFixture(2, 3)
	tombs := map[int64]struct{}{1: {}, 3: {}}
	if err := writeCheckpoint(dir, fold, 2, tombs, 7); err != nil {
		t.Fatal(err)
	}
	pts, gotTombs, covered, ok := readCheckpoint(dir, 2, 2)
	if !ok {
		t.Fatal("checkpoint did not read back")
	}
	if covered != 7 {
		t.Fatalf("covered seq %d, want 7", covered)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	for i, p := range pts {
		if int(p.ID) != 2+i || !reflect.DeepEqual(p.Vec, fold.Point(2+i)) {
			t.Fatalf("point %d: id %d vec %v, want id %d vec %v", i, p.ID, p.Vec, 2+i, fold.Point(2+i))
		}
	}
	if !reflect.DeepEqual(gotTombs, tombs) {
		t.Fatalf("tombs %v, want %v", gotTombs, tombs)
	}
}

func TestCheckpointRejectsMismatchAndCorruption(t *testing.T) {
	dir := t.TempDir()
	fold := foldFixture(2, 3)
	if err := writeCheckpoint(dir, fold, 2, map[int64]struct{}{4: {}}, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := readCheckpoint(dir, 3, 2); ok {
		t.Fatal("accepted wrong baseN")
	}
	if _, _, _, ok := readCheckpoint(dir, 2, 5); ok {
		t.Fatal("accepted wrong dim")
	}
	if _, _, _, ok := readCheckpoint(t.TempDir(), 2, 2); ok {
		t.Fatal("accepted missing checkpoint")
	}

	// Every single-byte flip must invalidate the file wholesale: either the
	// CRC trailer catches it, or (for flips inside the trailer itself) the
	// trailer no longer matches the body.
	path := filepath.Join(dir, CheckpointName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, ok := readCheckpoint(dir, 2, 2); ok {
			t.Fatalf("accepted checkpoint with byte %d flipped", i)
		}
	}
	// Truncations are rejected too.
	for _, cut := range []int{0, 1, ckptHeaderSize, len(orig) - 1} {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, ok := readCheckpoint(dir, 2, 2); ok {
			t.Fatalf("accepted checkpoint truncated to %d bytes", cut)
		}
	}
}
