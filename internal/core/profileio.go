package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
)

// Profile persistence ("EBPR"): running every workload query through the
// index is the dominant offline cost, so a saved profile lets experiment
// sweeps (many methods × many budgets over one workload) and process
// restarts skip it.
const (
	profMagic   = 0x45425052 // "EBPR"
	profVersion = 1
)

// WriteTo serializes the profile (queries, candidate sets, frequencies are
// reconstructed from the candidate sets on load).
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	var n int64
	write := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, le, v); err != nil {
				return err
			}
			n += int64(binary.Size(v))
		}
		return nil
	}
	dim := 0
	if len(p.WL) > 0 {
		dim = len(p.WL[0])
	}
	if err := write(uint32(profMagic), uint32(profVersion), uint32(p.K),
		uint32(len(p.WL)), uint32(dim), p.AvgDmax); err != nil {
		return n, err
	}
	for qi, q := range p.WL {
		if len(q) != dim {
			return n, fmt.Errorf("core: ragged workload at %d", qi)
		}
		for _, v := range q {
			if err := write(math.Float32bits(v)); err != nil {
				return n, err
			}
		}
		set := p.CandSets[qi]
		if err := write(uint32(len(set))); err != nil {
			return n, err
		}
		for _, id := range set {
			if err := write(uint32(id)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadProfile parses a profile against its dataset.
func ReadProfile(ds *dataset.Dataset, r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	read := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(br, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	var magic, version, k, nwl, dim uint32
	var avgDmax float64
	if err := read(&magic, &version, &k, &nwl, &dim, &avgDmax); err != nil {
		return nil, fmt.Errorf("core: reading profile header: %w", err)
	}
	if magic != profMagic {
		return nil, fmt.Errorf("core: not a profile (magic %#x)", magic)
	}
	if version != profVersion {
		return nil, fmt.Errorf("core: unsupported profile version %d", version)
	}
	if int(dim) != ds.Dim {
		return nil, fmt.Errorf("core: profile dimensionality %d != dataset %d", dim, ds.Dim)
	}
	if k == 0 || nwl == 0 || nwl > 1<<26 {
		return nil, fmt.Errorf("core: implausible profile header k=%d |WL|=%d", k, nwl)
	}
	p := &Profile{K: int(k), DS: ds, Freq: make(map[int]int), AvgDmax: avgDmax}
	var sumCands float64
	for qi := 0; qi < int(nwl); qi++ {
		q := make([]float32, dim)
		for j := range q {
			var bits uint32
			if err := read(&bits); err != nil {
				return nil, fmt.Errorf("core: reading workload query %d: %w", qi, err)
			}
			q[j] = math.Float32frombits(bits)
		}
		p.WL = append(p.WL, q)
		var setLen uint32
		if err := read(&setLen); err != nil {
			return nil, err
		}
		if int(setLen) > ds.Len() {
			return nil, fmt.Errorf("core: candidate set %d larger than dataset", qi)
		}
		set := make([]int32, setLen)
		for i := range set {
			var id uint32
			if err := read(&id); err != nil {
				return nil, err
			}
			if int(id) >= ds.Len() {
				return nil, fmt.Errorf("core: candidate id %d beyond dataset", id)
			}
			set[i] = int32(id)
			p.Freq[int(id)]++
		}
		p.CandSets = append(p.CandSets, set)
		sumCands += float64(setLen)
	}
	p.AvgCandSize = sumCands / float64(nwl)
	p.Ranked = cache.RankByFrequency(p.Freq)
	return p, nil
}
