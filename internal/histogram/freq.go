package histogram

import (
	"exploitbit/internal/vec"
)

// DataFrequency builds the classical frequency array F over the discrete
// value domain: F[x] counts how many coordinates (over all points and all
// dimensions) discretize to value x. Equi-depth and V-optimal histograms are
// built over this array, matching their use in Section 3.3.1 where the
// "table column" holds the dimension values of the dataset.
type pointSource interface {
	Len() int
	Point(i int) []float32
}

// DataFrequency computes F for every point in src under domain dom.
func DataFrequency(src pointSource, dom vec.Domain) []float64 {
	f := make([]float64, dom.Ndom)
	for i := 0; i < src.Len(); i++ {
		for _, v := range src.Point(i) {
			f[dom.Bin(float64(v))]++
		}
	}
	return f
}

// DataFrequencyPerDim computes the per-dimension arrays F_j used by the
// individual-dimension histograms (iHC-D, iHC-V build on data distribution).
func DataFrequencyPerDim(src pointSource, dim int, dom vec.Domain) [][]float64 {
	fs := make([][]float64, dim)
	for j := range fs {
		fs[j] = make([]float64, dom.Ndom)
	}
	for i := 0; i < src.Len(); i++ {
		p := src.Point(i)
		for j, v := range p {
			fs[j][dom.Bin(float64(v))]++
		}
	}
	return fs
}

// WorkloadFrequency builds the paper's F′ array (Eqn 3): the frequency of
// each discrete value among the coordinates of the multiset QR — for each
// workload query, its k upper-bound-defining candidates b^q_1..b^q_k
// (Eqn 2). The caller supplies QR as the list of those candidate points
// (with multiplicity); typically the k nearest cached candidates of each
// workload query, computed offline.
func WorkloadFrequency(qr [][]float32, dom vec.Domain) []float64 {
	f := make([]float64, dom.Ndom)
	for _, p := range qr {
		for _, v := range p {
			f[dom.Bin(float64(v))]++
		}
	}
	return f
}

// WorkloadFrequencyPerDim decomposes F′ into per-dimension arrays F′_j
// (Section 3.6.2): F′_j[x] counts only dimension j's coordinates. The
// section shows M3 decomposes across dimensions, so each F′_j feeds an
// independent Algorithm 2 run (iHC-O).
func WorkloadFrequencyPerDim(qr [][]float32, dim int, dom vec.Domain) [][]float64 {
	fs := make([][]float64, dim)
	for j := range fs {
		fs[j] = make([]float64, dom.Ndom)
	}
	for _, p := range qr {
		for j, v := range p {
			fs[j][dom.Bin(float64(v))]++
		}
	}
	return fs
}

// Smooth adds eps times the base distribution to f (in place) and returns f.
// A pure F′ is zero wherever the workload never touched a value; smoothing
// with a sliver of the data distribution keeps buckets sane for unseen
// queries while preserving the workload-driven shape. The engine applies it
// with a small eps before running Algorithm 2.
func Smooth(f, base []float64, eps float64) []float64 {
	if len(f) != len(base) {
		panic("histogram: Smooth length mismatch")
	}
	if eps <= 0 {
		return f
	}
	var fTot, bTot float64
	for i := range f {
		fTot += f[i]
		bTot += base[i]
	}
	if bTot == 0 {
		return f
	}
	// Scale so the smoothing mass is eps of the workload mass (or, for an
	// empty workload, simply the base distribution).
	scale := eps
	if fTot > 0 {
		scale = eps * fTot / bTot
	}
	for i := range f {
		f[i] += scale * base[i]
	}
	return f
}
