package bench

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

// tiny keeps harness tests fast; shapes are asserted only where they are
// robust at this scale.
var tiny = Scale{
	NNusw: 800, NImgn: 1000, NSogou: 500,
	PoolSize: 100, WLLen: 400, QTest: 8,
	K: 5, Tau: 7, CacheFrac: 0.25,
}

var (
	tinyOnce sync.Once
	tinyEnv  *Env
)

func sharedTinyEnv(t *testing.T) *Env {
	t.Helper()
	tinyOnce.Do(func() {
		tinyEnv = NewEnv(tiny, "")
	})
	return tinyEnv
}

func TestEveryExperimentRuns(t *testing.T) {
	env := sharedTinyEnv(t)
	for _, ex := range Experiments() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			if testing.Short() && ex.ID == "tab3" {
				t.Skip("tab3 builds iHC-O (960 per-dimension DPs) — the paper's construction-cost point, but slow")
			}
			var buf bytes.Buffer
			if err := ex.Run(&buf, env); err != nil {
				t.Fatalf("%s failed: %v", ex.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", ex.ID)
			}
			// Every experiment annotates its expected shape.
			if !strings.Contains(buf.String(), "#") {
				t.Fatalf("%s lacks a shape annotation:\n%s", ex.ID, buf.String())
			}
		})
	}
}

func TestFig6ReproducesPaperExactly(t *testing.T) {
	env := sharedTinyEnv(t)
	var buf bytes.Buffer
	if err := Run(&buf, env, "fig6"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"equi-width", "equi-depth", "ideal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 output missing %q:\n%s", want, out)
		}
	}
	// The exact paper numbers: 6, 4, 4, 0 remaining.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		last := fields[len(fields)-1]
		switch {
		case strings.HasPrefix(line, "equi-width") && last != "6":
			t.Fatalf("equi-width remaining = %s, want 6", last)
		case strings.HasPrefix(line, "equi-depth") && last != "4":
			t.Fatalf("equi-depth remaining = %s, want 4", last)
		case strings.HasPrefix(line, "ideal") && last != "0":
			t.Fatalf("ideal remaining = %s, want 0", last)
		}
	}
}

func TestRegistryLookups(t *testing.T) {
	if _, ok := Find("fig11"); !ok {
		t.Fatal("fig11 not registered")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus id resolved")
	}
	if err := Run(io.Discard, sharedTinyEnv(t), "nope"); err == nil {
		t.Fatal("Run accepted bogus id")
	}
	if len(Experiments()) < 19 {
		t.Fatalf("only %d experiments registered", len(Experiments()))
	}
}

func TestLabConstruction(t *testing.T) {
	env := sharedTinyEnv(t)
	lab := env.Lab("NUS-WIDE")
	if lab.DS.Len() != tiny.NNusw || lab.DS.Dim != 150 {
		t.Fatalf("lab shape %dx%d", lab.DS.Len(), lab.DS.Dim)
	}
	if len(lab.QTest) != tiny.QTest || len(lab.WL) != tiny.WLLen {
		t.Fatalf("workload split %d/%d", len(lab.WL), len(lab.QTest))
	}
	if lab.DefaultCS <= 0 || lab.DefaultTau < 1 {
		t.Fatalf("defaults: CS=%d tau=%d", lab.DefaultCS, lab.DefaultTau)
	}
	// Same lab instance on repeat lookups.
	if env.Lab("NUS-WIDE") != lab {
		t.Fatal("lab not cached")
	}
}
