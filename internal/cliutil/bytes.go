// Package cliutil holds small helpers shared by the ebc-* command-line
// tools. It exists so every CLI parses user input the same hardened way
// instead of growing drifting private copies.
package cliutil

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// byteUnits maps size suffixes to multipliers. Only binary units: a cache
// budget is a memory figure.
var byteUnits = map[string]int64{
	"":    1,
	"B":   1,
	"KiB": 1 << 10,
	"MiB": 1 << 20,
	"GiB": 1 << 30,
	"TiB": 1 << 40,
}

// ParseBytes parses a human byte size ("16MiB", "4KiB", "512B", bare
// "4096"). The value must be a positive integer that fits in an int64 after
// scaling, and an unrecognized unit is an error — it used to be silently
// read as raw bytes, so "-cache 16MB" built a 16-byte budget.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	i := len(t)
	for i > 0 && (t[i-1] < '0' || t[i-1] > '9') {
		i--
	}
	num, unit := t[:i], strings.TrimSpace(t[i:])
	mult, ok := byteUnits[unit]
	if !ok {
		return 0, fmt.Errorf("unknown size unit %q in %q (use B, KiB, MiB, GiB, TiB)", unit, s)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("size must be positive, got %q", s)
	}
	if v > math.MaxInt64/mult {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return v * mult, nil
}
