// Package idistance implements the iDistance index (Jagadish, Ooi, Tan, Yu,
// Zhang — TODS 2005): every point is keyed by the one-dimensional value
// refID·C + dist(p, ref) of its nearest reference point, keys are kept
// sorted (the paper's B+-tree; here the in-memory directory over sorted leaf
// nodes, with leaves on disk via leafstore), and kNN search expands a radius
// around the query, visiting only leaves whose key ring can intersect the
// query ball.
//
// It exposes the LeafIndex shape the engine's tree search consumes: a leaf
// partition plus per-query leaf lower bounds (from the triangle inequality
// through each leaf's reference point).
package idistance

import (
	"math"
	"sort"

	"exploitbit/internal/dataset"
	"exploitbit/internal/kmeans"
	"exploitbit/internal/vec"
)

// Params configures index construction.
type Params struct {
	// Refs is the number of reference points (default 16), chosen by
	// k-means as the paper's "cluster-based" strategy recommends.
	Refs int
	// LeafCapacity is the number of points per leaf node (default: as many
	// 4-byte-coordinate points as fit a 4 KB page).
	LeafCapacity int
	// KMeansIters bounds Lloyd iterations (default 8).
	KMeansIters int
	Seed        int64
}

func (p Params) withDefaults(dim int) Params {
	if p.Refs < 1 {
		p.Refs = 16
	}
	if p.LeafCapacity < 1 {
		p.LeafCapacity = 4096 / (4 * dim)
		if p.LeafCapacity < 1 {
			p.LeafCapacity = 1
		}
	}
	if p.KMeansIters < 1 {
		p.KMeansIters = 8
	}
	return p
}

// Index is a built iDistance index. The leaf directory (reference, ring
// radii, point ids) is the in-memory part; leaf contents live in a
// leafstore.Store built from Leaves().
type Index struct {
	refs   [][]float32
	leaves [][]int32
	ref    []int32      // leaf → reference point
	ring   [][2]float64 // leaf → [min,max] distance to its reference
}

// Build constructs the index over ds.
func Build(ds *dataset.Dataset, p Params) *Index {
	p = p.withDefaults(ds.Dim)
	km := kmeans.Run(ds, p.Refs, p.KMeansIters, p.Seed)

	type keyed struct {
		id   int32
		ref  int32
		dist float64
	}
	pts := make([]keyed, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		c := km.Assign[i]
		pts[i] = keyed{id: int32(i), ref: c, dist: vec.Dist(ds.Point(i), km.Centers[c])}
	}
	// iDistance ordering: by reference, then by distance to reference.
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].ref != pts[b].ref {
			return pts[a].ref < pts[b].ref
		}
		if pts[a].dist != pts[b].dist {
			return pts[a].dist < pts[b].dist
		}
		return pts[a].id < pts[b].id
	})

	ix := &Index{refs: km.Centers}
	for start := 0; start < len(pts); {
		end := start + p.LeafCapacity
		if end > len(pts) {
			end = len(pts)
		}
		// Leaves never span references (a B+-tree range per reference).
		for e := start + 1; e < end; e++ {
			if pts[e].ref != pts[start].ref {
				end = e
				break
			}
		}
		ids := make([]int32, 0, end-start)
		rmin, rmax := math.Inf(1), 0.0
		for _, kp := range pts[start:end] {
			ids = append(ids, kp.id)
			if kp.dist < rmin {
				rmin = kp.dist
			}
			if kp.dist > rmax {
				rmax = kp.dist
			}
		}
		ix.leaves = append(ix.leaves, ids)
		ix.ref = append(ix.ref, pts[start].ref)
		ix.ring = append(ix.ring, [2]float64{rmin, rmax})
		start = end
	}
	return ix
}

// Leaves returns the leaf partition (point ids per leaf).
func (ix *Index) Leaves() [][]int32 { return ix.leaves }

// Ordering returns the iDistance physical ordering of all points — the
// "clustered" file layout of the Figure 9 experiment — as a permutation
// suitable for disk.BuildPointFile (perm[id] = slot).
func (ix *Index) Ordering(n int) []int {
	perm := make([]int, n)
	slot := 0
	for _, leaf := range ix.leaves {
		for _, id := range leaf {
			perm[id] = slot
			slot++
		}
	}
	return perm
}

// LeafLowerBounds returns, for each leaf, a lower bound on the distance
// from q to any point in the leaf: points in a leaf have distance to the
// leaf's reference inside [rmin, rmax], so by the triangle inequality
// dist(q,p) ≥ max(0, dist(q,ref) − rmax, rmin − dist(q,ref)).
func (ix *Index) LeafLowerBounds(q []float32) []float64 {
	return ix.LeafLowerBoundsInto(q, nil)
}

// LeafLowerBoundsInto is LeafLowerBounds writing into dst (grown only when
// undersized), so repeated queries reuse one buffer. The per-reference
// distances still use a small transient slice.
func (ix *Index) LeafLowerBoundsInto(q []float32, dst []float64) []float64 {
	dref := make([]float64, len(ix.refs))
	for c, r := range ix.refs {
		dref[c] = vec.Dist(q, r)
	}
	if cap(dst) < len(ix.leaves) {
		dst = make([]float64, len(ix.leaves))
	}
	lbs := dst[:len(ix.leaves)]
	for li := range ix.leaves {
		d := dref[ix.ref[li]]
		lb := d - ix.ring[li][1]
		if alt := ix.ring[li][0] - d; alt > lb {
			lb = alt
		}
		if lb < 0 {
			lb = 0
		}
		lbs[li] = lb
	}
	return lbs
}
