// Per-stage latency observability for the serving path. The handler keeps
// one lock-free histogram per stage (total wall clock, Phase-2 reduction,
// refinement I/O), fed from core.QueryStats via the Stats wire struct, plus
// admission counters (queue depth, shed count) — the request-level
// accounting a query-adaptive system tunes against (DB-LSH's framing), and
// what every later scaling PR (batching, sharding) will read.

package server

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of histogram buckets: bucket i counts
// observations whose microsecond value has bit length i, i.e. durations in
// (2^(i-1), 2^i] µs — geometric buckets from sub-microsecond up to
// ~2^26 µs ≈ 67 s, with the last bucket absorbing anything slower.
const histBuckets = 28

// Histogram is a lock-free latency histogram: fixed power-of-two microsecond
// buckets, each an atomic counter. Observe is wait-free (two atomic adds);
// Snapshot reads the counters individually, so under concurrent writers it
// may mix observations from in-flight requests — harmless for monitoring,
// exactly like the engine's atomicAggregate.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d.Microseconds())
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// HistogramBucket is one non-empty bucket of a snapshot: N observations at
// most LeUS microseconds (geometric upper bound).
type HistogramBucket struct {
	LeUS int64 `json:"le_us"`
	N    int64 `json:"n"`
}

// HistogramSnapshot is the wire form of a histogram: totals, bucket-resolved
// approximate quantiles (each quantile reports its bucket's upper bound, so
// it overestimates by at most 2×), and the non-empty buckets.
type HistogramSnapshot struct {
	Count  int64             `json:"count"`
	SumMS  float64           `json:"sum_ms"`
	AvgUS  float64           `json:"avg_us"`
	P50US  int64             `json:"p50_us"`
	P90US  int64             `json:"p90_us"`
	P99US  int64             `json:"p99_us"`
	Bucket []HistogramBucket `json:"buckets,omitempty"`
}

// upperBoundUS returns bucket b's inclusive upper bound in microseconds.
func upperBoundUS(b int) int64 {
	if b == 0 {
		return 1
	}
	return int64(1) << b
}

// Snapshot renders the histogram for /metrics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	sum := h.sumNS.Load()
	s.SumMS = float64(sum) / 1e6
	if s.Count > 0 {
		s.AvgUS = float64(sum) / float64(s.Count) / 1e3
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			s.Bucket = append(s.Bucket, HistogramBucket{LeUS: upperBoundUS(i), N: counts[i]})
		}
	}
	// Quantiles against the bucket totals (not h.count, which may drift from
	// the bucket sum under concurrent Observes).
	quantile := func(q float64) int64 {
		if total == 0 {
			return 0
		}
		// Nearest-rank: the smallest bucket whose cumulative count reaches
		// ⌈q·total⌉ observations.
		need := int64(math.Ceil(q * float64(total)))
		if need < 1 {
			need = 1
		}
		var cum int64
		for i, c := range counts {
			cum += c
			if cum >= need {
				return upperBoundUS(i)
			}
		}
		return upperBoundUS(histBuckets - 1)
	}
	s.P50US = quantile(0.50)
	s.P90US = quantile(0.90)
	s.P99US = quantile(0.99)
	return s
}
