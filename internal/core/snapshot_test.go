package core

import (
	"bytes"
	"testing"
)

func TestSnapshotRoundTripAllMethods(t *testing.T) {
	w := buildWorld(t, 1000, 10, 71)
	for _, m := range AllMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			orig, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
				Method: m, CacheBytes: 48 << 10, Tau: 6,
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := orig.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), &buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.CacheCapacity() != orig.CacheCapacity() || loaded.CacheLen() != orig.CacheLen() {
				t.Fatalf("cache shape changed: %d/%d vs %d/%d",
					loaded.CacheLen(), loaded.CacheCapacity(), orig.CacheLen(), orig.CacheCapacity())
			}
			// Identical behaviour on identical queries: same results, same
			// hit/prune/fetch counts.
			for _, q := range w.qtest[:5] {
				idsO, stO, err := orig.Search(q, 7)
				if err != nil {
					t.Fatal(err)
				}
				idsL, stL, err := loaded.Search(q, 7)
				if err != nil {
					t.Fatal(err)
				}
				if len(idsO) != len(idsL) {
					t.Fatalf("result sizes differ: %d vs %d", len(idsO), len(idsL))
				}
				setO := map[int]bool{}
				for _, id := range idsO {
					setO[id] = true
				}
				for _, id := range idsL {
					if !setO[id] {
						t.Fatalf("loaded engine returned %d, original did not", id)
					}
				}
				if stO.Hits != stL.Hits || stO.Pruned != stL.Pruned || stO.Fetched != stL.Fetched {
					t.Fatalf("execution diverged: orig %+v loaded %+v", stO, stL)
				}
			}
		})
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	w := buildWorld(t, 200, 6, 72)
	if _, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader([]byte("junk snapshot bytes"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if _, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
	// Truncated valid snapshot.
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 1 << 16, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	w := buildWorld(t, 600, 8, 73)
	var buf bytes.Buffer
	if _, err := w.prof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(w.ds, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != w.prof.K || len(got.WL) != len(w.prof.WL) {
		t.Fatalf("header changed: k=%d |WL|=%d", got.K, len(got.WL))
	}
	if got.AvgCandSize != w.prof.AvgCandSize || got.AvgDmax != w.prof.AvgDmax {
		t.Fatalf("averages changed: %v/%v vs %v/%v", got.AvgCandSize, got.AvgDmax, w.prof.AvgCandSize, w.prof.AvgDmax)
	}
	// Frequencies and ranking identical.
	if len(got.Ranked) != len(w.prof.Ranked) {
		t.Fatal("ranking length changed")
	}
	for i := range got.Ranked {
		if got.Ranked[i] != w.prof.Ranked[i] {
			t.Fatalf("ranking diverged at %d", i)
		}
	}
	// Engines built from the two profiles behave identically.
	a, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 32 << 10, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(w.pf, got, candFunc(w.ix), Config{Method: HCO, CacheBytes: 32 << 10, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.qtest[:5] {
		_, sa, err := a.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, sb, err := b.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Hits != sb.Hits || sa.Fetched != sb.Fetched {
			t.Fatalf("profiles diverge: %+v vs %+v", sa, sb)
		}
	}
	// Garbage rejection.
	if _, err := ReadProfile(w.ds, bytes.NewReader([]byte("garbage data"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	var buf2 bytes.Buffer
	w.prof.WriteTo(&buf2)
	if _, err := ReadProfile(w.ds, bytes.NewReader(buf2.Bytes()[:buf2.Len()/3])); err == nil {
		t.Fatal("expected error on truncation")
	}
}
