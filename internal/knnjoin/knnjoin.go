// Package knnjoin implements the cached k-nearest-neighbor join — the first
// of the "advanced operations" the paper's conclusion proposes extending the
// caching technique to. A kNN join R ⋉ S reports, for every probe point in
// R, its k nearest points of S.
//
// The join is where the histogram cache shines brightest: the probe set R
// plays the role of the query workload, it is fully known up front, so the
// offline pipeline (HFF frequencies, the F′ array, Algorithm 2) can be run
// on exactly the distribution the join will issue — the cost model's
// assumption (i) holds with equality rather than approximately.
package knnjoin

import (
	"fmt"

	"exploitbit/internal/core"
)

// Pair is one join result row: probe r's rank-i neighbor.
type Pair struct {
	ProbeIdx int // index into the probe slice R
	SID      int // point id in S
}

// Result is the join output plus aggregate execution statistics.
type Result struct {
	// Neighbors[i] lists probe i's k nearest ids of S, ascending distance.
	Neighbors [][]int
	Stats     core.Aggregate
}

// Run executes the join of probes R against the engine's dataset S.
// The engine should have been built with R (or a sample of it) as the
// workload so its cache content and histogram anticipate the probes.
func Run(eng *core.Engine, probes [][]float32, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("knnjoin: k must be >= 1, got %d", k)
	}
	eng.ResetStats()
	res := &Result{Neighbors: make([][]int, len(probes))}
	for i, r := range probes {
		ids, _, err := eng.Search(r, k)
		if err != nil {
			return nil, fmt.Errorf("knnjoin: probe %d: %w", i, err)
		}
		res.Neighbors[i] = ids
	}
	res.Stats = eng.Aggregate()
	return res, nil
}

// Pairs flattens the result into (probe, neighbor) rows.
func (r *Result) Pairs() []Pair {
	var out []Pair
	for i, ids := range r.Neighbors {
		for _, id := range ids {
			out = append(out, Pair{ProbeIdx: i, SID: id})
		}
	}
	return out
}
