package core

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/lsh"
)

// waitRebuildIdle blocks until no background rebuild is queued or running.
func waitRebuildIdle(t *testing.T, m *Maintainer) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.Stats().RebuildInFlight {
		if time.Now().After(deadline) {
			t.Fatal("background rebuild never finished")
		}
		time.Sleep(time.Millisecond)
	}
}

// driftWorld builds a dataset with two disjoint query populations: pool A
// (sampled from the first half of the points) and pool B (second half).
func driftWorld(t testing.TB) (*dataset.Dataset, *disk.PointFile, CandidateFunc, [][]float32, [][]float32) {
	t.Helper()
	ds := dataset.Generate(dataset.Config{
		Name: "drift", N: 3000, Dim: 12, Clusters: 10, Std: 0.03,
		Ndom: 256, Seed: 97, ValueCoherence: 0.7,
	})
	pf, err := disk.BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	ix := lsh.Build(ds, lsh.Params{Seed: 98, MaxM: 48})
	cands := candFunc(ix)

	mkPool := func(lo, hi int, n int) [][]float32 {
		out := make([][]float32, 0, n)
		for i := 0; len(out) < n; i++ {
			out = append(out, ds.Point(lo+(i*37)%(hi-lo)))
		}
		return out
	}
	poolA := mkPool(0, ds.Len()/2, 300)
	poolB := mkPool(ds.Len()/2, ds.Len(), 300)
	return ds, pf, cands, poolA, poolB
}

func TestMaintainerDetectsDriftAndRecovers(t *testing.T) {
	ds, pf, cands, poolA, poolB := driftWorld(t)
	m, err := NewMaintainer(pf, ds, cands, poolA, 5, Config{
		Method: Exact, CacheBytes: int64(ds.Len()) * int64(ds.PointSize()) / 5,
	}, MaintainOptions{WindowSize: 64, DegradeFactor: 0.8, MinQueriesBetweenRebuilds: 64})
	if err != nil {
		t.Fatal(err)
	}

	run := func(pool [][]float32, n int) (hits, cands int64) {
		for i := 0; i < n; i++ {
			_, st, err := m.Search(pool[i%len(pool)], 5)
			if err != nil {
				t.Fatal(err)
			}
			hits += int64(st.Hits)
			cands += int64(st.Candidates)
		}
		return
	}

	// Phase 1: the trained workload — healthy hit ratio, no rebuilds.
	h, c := run(poolA, 128)
	healthy := float64(h) / float64(c)
	if healthy < 0.3 {
		t.Fatalf("trained hit ratio only %.2f", healthy)
	}
	if m.Rebuilds() != 0 {
		t.Fatalf("rebuilt on the trained workload (%d times)", m.Rebuilds())
	}

	// Phase 2: drift to the disjoint pool; the maintainer must rebuild.
	// Rebuilds run in the background, so wait for the swap before checking.
	run(poolB, 400)
	waitRebuildIdle(t, m)
	if m.Rebuilds() == 0 {
		t.Fatal("drift never triggered a rebuild")
	}

	// Phase 3: after rebuilding from the new window, pool B is healthy.
	h, c = run(poolB, 128)
	if recovered := float64(h) / float64(c); recovered < healthy*0.6 {
		t.Fatalf("post-rebuild hit ratio %.2f did not recover (healthy was %.2f)", recovered, healthy)
	}
}

// TestMaintainerNonBlockingRebuild holds a rebuild in flight behind the test
// gate and proves searches keep completing against the old engine while it
// runs — the acceptance property of the RCU-style swap.
func TestMaintainerNonBlockingRebuild(t *testing.T) {
	ds, pf, cands, poolA, _ := driftWorld(t)
	m, err := NewMaintainer(pf, ds, cands, poolA[:50], 5, Config{
		Method: Exact, CacheBytes: 1 << 18,
	}, MaintainOptions{WindowSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := m.Search(poolA[i], 5); err != nil {
			t.Fatal(err)
		}
	}

	gate := make(chan struct{})
	m.rebuildGate = gate
	before := m.Engine()
	if !m.RebuildAsync(5) {
		t.Fatal("RebuildAsync refused with a populated window")
	}
	if !m.Stats().RebuildInFlight {
		t.Fatal("rebuild not reported in flight")
	}
	// A second launch must be rejected while one is pending.
	if m.RebuildAsync(5) {
		t.Fatal("second RebuildAsync accepted while one is in flight")
	}

	// The rebuild is parked on the gate: every search must still complete,
	// served by the old engine.
	for i := 0; i < 50; i++ {
		ids, _, err := m.Search(poolA[i%len(poolA)], 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 5 {
			t.Fatalf("search returned %d ids during rebuild", len(ids))
		}
	}
	if m.Engine() != before {
		t.Fatal("engine swapped while the rebuild was still gated")
	}

	close(gate)
	waitRebuildIdle(t, m)
	st := m.Stats()
	if st.Rebuilds != 1 || st.RebuildErrors != 0 {
		t.Fatalf("stats after rebuild: %+v", st)
	}
	if m.Engine() == before {
		t.Fatal("rebuild completed but the engine was not swapped")
	}
	if _, _, err := m.Search(poolA[0], 5); err != nil {
		t.Fatal(err)
	}
}

// TestMaintainerRebuildFailureKeepsServing injects a failing build and checks
// the failure is counted, never surfaces to searches, and leaves the old
// engine serving.
func TestMaintainerRebuildFailureKeepsServing(t *testing.T) {
	ds, pf, cands, poolA, _ := driftWorld(t)
	m, err := NewMaintainer(pf, ds, cands, poolA[:50], 5, Config{
		Method: Exact, CacheBytes: 1 << 18,
	}, MaintainOptions{WindowSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := m.Search(poolA[i], 5); err != nil {
			t.Fatal(err)
		}
	}

	m.build = func([][]float32, int, int) (*Engine, error) {
		return nil, errors.New("injected build failure")
	}
	before := m.Engine()
	if !m.RebuildAsync(5) {
		t.Fatal("RebuildAsync refused with a populated window")
	}
	waitRebuildIdle(t, m)

	st := m.Stats()
	if st.Rebuilds != 0 || st.RebuildErrors != 1 {
		t.Fatalf("stats after failed rebuild: %+v", st)
	}
	if m.Engine() != before {
		t.Fatal("failed rebuild replaced the serving engine")
	}
	for i := 0; i < 20; i++ {
		if _, _, err := m.Search(poolA[i], 5); err != nil {
			t.Fatalf("search after failed rebuild: %v", err)
		}
	}
}

func TestMaintainerForceRebuild(t *testing.T) {
	ds, pf, cands, poolA, _ := driftWorld(t)
	m, err := NewMaintainer(pf, ds, cands, poolA[:50], 5, Config{Method: HCO, CacheBytes: 1 << 18, Tau: 6}, MaintainOptions{WindowSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// No recorded queries yet.
	if err := m.ForceRebuild(5); err == nil {
		t.Fatal("expected error rebuilding from an empty window")
	}
	for i := 0; i < 20; i++ {
		if _, _, err := m.Search(poolA[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ForceRebuild(5); err != nil {
		t.Fatal(err)
	}
	if m.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d", m.Rebuilds())
	}
	if m.Engine() == nil {
		t.Fatal("no serving engine after rebuild")
	}
}

// TestMaintainerRebuildWallClockStats checks that a completed rebuild
// records its build wall-clock and installation timestamp, and that both
// stay zero until the first rebuild lands.
func TestMaintainerRebuildWallClockStats(t *testing.T) {
	ds, pf, cands, poolA, _ := driftWorld(t)
	m, err := NewMaintainer(pf, ds, cands, poolA[:50], 5, Config{
		Method: Exact, CacheBytes: 1 << 18,
	}, MaintainOptions{WindowSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.LastRebuildWall != 0 || !st.LastRebuildAt.IsZero() {
		t.Fatalf("fresh maintainer reports a rebuild: %+v", st)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := m.Search(poolA[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	before := time.Now()
	if err := m.ForceRebuild(5); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("stats after forced rebuild: %+v", st)
	}
	if st.LastRebuildWall <= 0 {
		t.Fatalf("rebuild wall-clock not recorded: %v", st.LastRebuildWall)
	}
	if st.LastRebuildAt.Before(before) || st.LastRebuildAt.After(time.Now()) {
		t.Fatalf("rebuild timestamp %v outside [%v, now]", st.LastRebuildAt, before)
	}
}
