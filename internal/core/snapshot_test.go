package core

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestSnapshotRoundTripAllMethods(t *testing.T) {
	w := buildWorld(t, 1000, 10, 71)
	for _, m := range AllMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			orig, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
				Method: m, CacheBytes: 48 << 10, Tau: 6,
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := orig.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), &buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.CacheCapacity() != orig.CacheCapacity() || loaded.CacheLen() != orig.CacheLen() {
				t.Fatalf("cache shape changed: %d/%d vs %d/%d",
					loaded.CacheLen(), loaded.CacheCapacity(), orig.CacheLen(), orig.CacheCapacity())
			}
			// Identical behaviour on identical queries: same results, same
			// hit/prune/fetch counts.
			for _, q := range w.qtest[:5] {
				idsO, stO, err := orig.Search(q, 7)
				if err != nil {
					t.Fatal(err)
				}
				idsL, stL, err := loaded.Search(q, 7)
				if err != nil {
					t.Fatal(err)
				}
				if len(idsO) != len(idsL) {
					t.Fatalf("result sizes differ: %d vs %d", len(idsO), len(idsL))
				}
				setO := map[int]bool{}
				for _, id := range idsO {
					setO[id] = true
				}
				for _, id := range idsL {
					if !setO[id] {
						t.Fatalf("loaded engine returned %d, original did not", id)
					}
				}
				if stO.Hits != stL.Hits || stO.Pruned != stL.Pruned || stO.Fetched != stL.Fetched {
					t.Fatalf("execution diverged: orig %+v loaded %+v", stO, stL)
				}
			}
		})
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	w := buildWorld(t, 200, 6, 72)
	if _, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader([]byte("junk snapshot bytes"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if _, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
	// Truncated valid snapshot.
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 1 << 16, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	w := buildWorld(t, 600, 8, 73)
	var buf bytes.Buffer
	if _, err := w.prof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(w.ds, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != w.prof.K || len(got.WL) != len(w.prof.WL) {
		t.Fatalf("header changed: k=%d |WL|=%d", got.K, len(got.WL))
	}
	if got.AvgCandSize != w.prof.AvgCandSize || got.AvgDmax != w.prof.AvgDmax {
		t.Fatalf("averages changed: %v/%v vs %v/%v", got.AvgCandSize, got.AvgDmax, w.prof.AvgCandSize, w.prof.AvgDmax)
	}
	// Frequencies and ranking identical.
	if len(got.Ranked) != len(w.prof.Ranked) {
		t.Fatal("ranking length changed")
	}
	for i := range got.Ranked {
		if got.Ranked[i] != w.prof.Ranked[i] {
			t.Fatalf("ranking diverged at %d", i)
		}
	}
	// Engines built from the two profiles behave identically.
	a, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 32 << 10, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(w.pf, got, candFunc(w.ix), Config{Method: HCO, CacheBytes: 32 << 10, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.qtest[:5] {
		_, sa, err := a.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, sb, err := b.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Hits != sb.Hits || sa.Fetched != sb.Fetched {
			t.Fatalf("profiles diverge: %+v vs %+v", sa, sb)
		}
	}
	// Garbage rejection.
	if _, err := ReadProfile(w.ds, bytes.NewReader([]byte("garbage data"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	var buf2 bytes.Buffer
	w.prof.WriteTo(&buf2)
	if _, err := ReadProfile(w.ds, bytes.NewReader(buf2.Bytes()[:buf2.Len()/3])); err == nil {
		t.Fatal("expected error on truncation")
	}
}

// snapSetup builds a world and a valid HC-O snapshot for corruption tests.
func snapSetup(t testing.TB) (*world, []byte) {
	w := buildWorld(t, 300, 8, 74)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 1 << 16, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return w, buf.Bytes()
}

// patched returns a copy of snap with len(val) bytes replaced at off.
func patched(snap []byte, off int, val []byte) []byte {
	out := append([]byte(nil), snap...)
	copy(out[off:], val)
	return out
}

// TestSnapshotRejectsCorruptFields is the regression test for snapshot
// hardening: every out-of-range configuration field must come back as a
// descriptive error — in particular a zeroed tau used to panic inside
// encoding.NewCodec instead of failing the load. Field offsets follow the
// layout: magic(4) version(4) mlen(4) method(mlen) tau(4) cacheBytes(8)
// policy(4) smoothEps(8).
func TestSnapshotRejectsCorruptFields(t *testing.T) {
	w, snap := snapSetup(t)
	le := binary.LittleEndian
	mlen := int(le.Uint32(snap[8:12]))
	base := 12 + mlen
	u32 := func(v uint32) []byte { b := make([]byte, 4); le.PutUint32(b, v); return b }
	u64 := func(v uint64) []byte { b := make([]byte, 8); le.PutUint64(b, v); return b }

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"huge method length", patched(snap, 8, u32(1<<20)), "method name length"},
		{"zero tau for a coded method", patched(snap, base, u32(0)), "tau"},
		{"negative tau", patched(snap, base, u32(^uint32(0))), "tau"},
		{"tau beyond 32", patched(snap, base, u32(33)), "tau"},
		{"negative cache budget", patched(snap, base+4, u64(^uint64(0))), "negative"},
		{"unknown policy", patched(snap, base+12, u32(99)), "policy"},
		{"NaN smoothing epsilon", patched(snap, base+16, u64(0x7ff8000000000001)), "epsilon"},
		{"negative smoothing epsilon", patched(snap, base+16, u64(0xbff0000000000000)), "epsilon"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader(c.data))
			if err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// FuzzLoadEngine drives LoadEngine with arbitrary bytes: any input may be
// rejected, none may panic, and an accepted engine must serve a query. The
// seed corpus covers valid snapshots of the three cache representations plus
// truncations and a field corruption.
func FuzzLoadEngine(f *testing.F) {
	w := buildWorld(f, 300, 8, 75)
	for _, m := range []Method{HCO, Exact, NoCache, MHCR} {
		eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: m, CacheBytes: 1 << 16, Tau: 6})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.WriteSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		snap := buf.Bytes()
		f.Add(snap)
		f.Add(snap[:len(snap)/2])
		f.Add(snap[:13])
		f.Add(patched(snap, 8, []byte{0xff, 0xff, 0xff, 0xff}))
	}
	f.Add([]byte{})
	f.Add([]byte("junk snapshot bytes"))

	q := w.qtest[0]
	f.Fuzz(func(t *testing.T, data []byte) {
		eng, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, _, err := eng.Search(q, 3); err != nil {
			t.Fatalf("loaded engine cannot search: %v", err)
		}
	})
}
