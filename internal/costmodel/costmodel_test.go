package costmodel

import (
	"math"
	"testing"
)

func zipfFreqs(n int) []int {
	f := make([]int, n)
	for i := range f {
		f[i] = 1 + 1000/(i+1)
	}
	return f
}

func TestHitRatio(t *testing.T) {
	fs := []int{10, 5, 3, 2}
	if got := HitRatio(fs, 0); got != 0 {
		t.Fatalf("capacity 0: %v", got)
	}
	if got := HitRatio(fs, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("capacity 1: %v", got)
	}
	if got := HitRatio(fs, 4); got != 1 {
		t.Fatalf("full capacity: %v", got)
	}
	if got := HitRatio(fs, 100); got != 1 {
		t.Fatalf("over capacity: %v", got)
	}
	if got := HitRatio(nil, 5); got != 0 {
		t.Fatalf("empty workload: %v", got)
	}
	// Monotone in capacity.
	prev := 0.0
	for c := 0; c <= 4; c++ {
		h := HitRatio(fs, c)
		if h < prev {
			t.Fatalf("hit ratio not monotone at %d", c)
		}
		prev = h
	}
}

func testInputs() Inputs {
	return Inputs{
		AvgCandSize: 200,
		FreqSorted:  zipfFreqs(5000),
		BudgetBytes: 64 << 10,
		Dim:         150,
		DomainWidth: 1,
		Ndom:        1024,
		Dmax:        2.5,
		Lvalue:      32,
	}
}

func TestHitRatioDecreasesWithTau(t *testing.T) {
	in := testInputs()
	prev := 1.1
	for tau := 1; tau <= 16; tau++ {
		h := in.HitRatioForTau(tau)
		if h > prev+1e-12 {
			t.Fatalf("hit ratio rose at tau=%d: %v > %v", tau, h, prev)
		}
		if h < 0 || h > 1 {
			t.Fatalf("hit ratio out of range at tau=%d: %v", tau, h)
		}
		prev = h
	}
}

func TestRefineRatioDecreasesWithTau(t *testing.T) {
	in := testInputs()
	prev := 2.0
	for tau := 1; tau <= 10; tau++ {
		r := in.RefineRatioForTau(tau)
		if r > prev+1e-12 {
			t.Fatalf("refine ratio rose at tau=%d", tau)
		}
		if r < 0 || r > 1 {
			t.Fatalf("refine ratio out of range: %v", r)
		}
		prev = r
	}
	// Beyond log2(Ndom) the bucket width bottoms out.
	if in.RefineRatioForTau(10) != in.RefineRatioForTau(12) {
		t.Fatal("refine ratio should saturate once B = Ndom")
	}
	// Degenerate Dmax.
	bad := in
	bad.Dmax = 0
	if bad.RefineRatioForTau(8) != 1 {
		t.Fatal("zero Dmax should give ratio 1")
	}
}

func TestOptimalTauIsInterior(t *testing.T) {
	// The tension of Section 1.1's challenge 2: tiny τ → high hit ratio but
	// useless bounds; huge τ → tight bounds but empty cache. The optimum
	// must be strictly between.
	in := testInputs()
	tau, est := in.OptimalTau()
	if tau <= 1 || tau >= 32 {
		t.Fatalf("optimal tau %d not interior", tau)
	}
	if len(est) != 32 {
		t.Fatalf("estimate vector length %d", len(est))
	}
	// The estimate at the optimum is no worse than the extremes.
	if est[tau-1] > est[0] || est[tau-1] > est[31] {
		t.Fatalf("optimum %d (%v) worse than extremes (%v, %v)", tau, est[tau-1], est[0], est[31])
	}
	// Every estimate lies in [0, |C(q)|].
	for i, e := range est {
		if e < 0 || e > in.AvgCandSize {
			t.Fatalf("estimate %d out of range: %v", i+1, e)
		}
	}
}

func TestEstimatedCrefineEndpoints(t *testing.T) {
	in := testInputs()
	// With zero budget nothing is cached: C_refine = |C(q)|.
	broke := in
	broke.BudgetBytes = 0
	if got := broke.EstimatedCrefine(8); got != in.AvgCandSize {
		t.Fatalf("zero budget: %v", got)
	}
	// With an enormous budget and max tau, C_refine approaches the
	// irreducible refine-ratio floor.
	rich := in
	rich.BudgetBytes = 1 << 40
	got := rich.EstimatedCrefine(10)
	want := rich.RefineRatioForTau(10) * rich.AvgCandSize
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("rich budget: %v want %v", got, want)
	}
}

func TestCapacityForTau(t *testing.T) {
	in := testInputs()
	// d=150, τ=10 → 1500 bits → 24 words → 1536 bits.
	want := int(in.BudgetBytes * 8 / 1536)
	if got := in.CapacityForTau(10); got != want {
		t.Fatalf("capacity = %d, want %d", got, want)
	}
	// Capacity shrinks as tau grows.
	if in.CapacityForTau(4) <= in.CapacityForTau(16) {
		t.Fatal("capacity not decreasing in tau")
	}
}

func TestBucketWidth(t *testing.T) {
	in := testInputs()
	if got := in.BucketWidthForTau(10); got != 1.0/1024 {
		t.Fatalf("width at tau=10: %v", got)
	}
	// Clamped at Ndom buckets.
	if in.BucketWidthForTau(11) != in.BucketWidthForTau(10) {
		t.Fatal("width should clamp at Ndom")
	}
	if got := in.BucketWidthForTau(1); got != 0.5 {
		t.Fatalf("width at tau=1: %v", got)
	}
}

func TestOptimalTauDefaultsLvalue(t *testing.T) {
	in := testInputs()
	in.Lvalue = 0
	tau, est := in.OptimalTau()
	if len(est) != 32 || tau < 1 {
		t.Fatalf("defaulted Lvalue broken: %d %d", tau, len(est))
	}
}
