package multistep

import (
	"math/rand"
	"testing"

	"exploitbit/internal/vec"
)

// BenchmarkSearchTightBounds measures the refinement scheduler when bounds
// are informative (the HC-O regime): it should fetch barely more than k.
func BenchmarkSearchTightBounds(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, dim, k = 500, 32, 10
	pts := make([][]float32, n)
	for i := range pts {
		p := make([]float32, dim)
		for j := range p {
			p[j] = rng.Float32()
		}
		pts[i] = p
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = rng.Float32()
	}
	cands := make([]Candidate, n)
	for i := range cands {
		d := vec.Dist(q, pts[i])
		cands[i] = Candidate{ID: i, LB: d * 0.95, UB: d * 1.05}
	}
	fetch := func(id int) ([]float32, error) { return pts[id], nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Search(q, cands, k, fetch); err != nil {
			b.Fatal(err)
		}
	}
}
