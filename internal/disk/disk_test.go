package disk

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"exploitbit/internal/dataset"
)

func testDataset(t *testing.T, n, dim int) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 3, Seed: 11})
}

func TestDeviceReadWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev")
	d, err := Create(path, 128, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	page := make([]byte, 128)
	for i := range page {
		page[i] = byte(i)
	}
	if err := d.WritePage(3, page); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4", d.NumPages())
	}
	got := make([]byte, 128)
	if err := d.ReadPage(3, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != page[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	st := d.Stats()
	if st.PageReads != 1 || st.PageWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SimulatedIO(d.Tio()) != time.Millisecond {
		t.Fatalf("simulated IO = %v", st.SimulatedIO(d.Tio()))
	}
	d.ResetStats()
	if d.Stats().PageReads != 0 {
		t.Fatal("ResetStats did not zero")
	}
}

func TestDeviceErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev")
	d, err := Create(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.ReadPage(0, make([]byte, 128)); err == nil {
		t.Fatal("expected out-of-range read error")
	}
	if err := d.ReadPage(-1, make([]byte, 128)); err == nil {
		t.Fatal("expected negative page error")
	}
	if err := d.WritePage(0, make([]byte, 64)); err == nil {
		t.Fatal("expected short buffer write error")
	}
	if err := d.WritePage(0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(0, make([]byte, 64)); err == nil {
		t.Fatal("expected short buffer read error")
	}
	if _, err := Create(path, 8, 0); err == nil {
		t.Fatal("expected tiny page size rejection")
	}
}

func TestPointFileRoundTrip(t *testing.T) {
	ds := testDataset(t, 100, 10) // 40-byte points, many per page
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := BuildPointFile(path, ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if pf.Len() != 100 || pf.Dim() != 10 {
		t.Fatalf("shape %dx%d", pf.Len(), pf.Dim())
	}
	for i := 0; i < ds.Len(); i++ {
		got, err := pf.Fetch(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := ds.Point(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("point %d dim %d: got %v want %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestPointFileIOAccounting(t *testing.T) {
	ds := testDataset(t, 64, 16) // 64-byte points, 4 per 256-byte page
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := BuildPointFile(path, ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if pf.Stats().PageReads != 0 {
		t.Fatal("build should not leave read counts")
	}
	if _, err := pf.Fetch(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := pf.Stats().PageReads; got != 1 {
		t.Fatalf("one fetch cost %d reads, want 1", got)
	}
	pf.ResetStats()
	for i := 0; i < 10; i++ {
		if _, err := pf.Fetch(i, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := pf.Stats().PageReads; got != 10 {
		t.Fatalf("10 fetches cost %d reads", got)
	}
}

func TestPointFileMultiPagePoints(t *testing.T) {
	// 128-dim points = 512 bytes > 256-byte pages: 2 pages per point.
	ds := testDataset(t, 20, 128)
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := BuildPointFile(path, ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	got, err := pf.Fetch(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ds.Point(7)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("dim %d mismatch", j)
		}
	}
	if reads := pf.Stats().PageReads; reads != 2 {
		t.Fatalf("multi-page fetch cost %d reads, want 2", reads)
	}
}

func TestPointFilePermutation(t *testing.T) {
	ds := testDataset(t, 50, 8)
	perm := rand.New(rand.NewSource(13)).Perm(50)
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := BuildPointFile(path, ds, perm, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	for i := 0; i < 50; i++ {
		got, err := pf.Fetch(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := ds.Point(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("permuted point %d dim %d mismatch", i, j)
			}
		}
	}
}

func TestPointFileBadPerm(t *testing.T) {
	ds := testDataset(t, 10, 4)
	dir := t.TempDir()
	if _, err := BuildPointFile(filepath.Join(dir, "a"), ds, []int{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}, 256, 0); err == nil {
		t.Fatal("expected duplicate-slot rejection")
	}
	if _, err := BuildPointFile(filepath.Join(dir, "b"), ds, []int{0, 1}, 256, 0); err == nil {
		t.Fatal("expected length mismatch rejection")
	}
}

func TestPointFileOpen(t *testing.T) {
	ds := testDataset(t, 30, 8)
	perm := rand.New(rand.NewSource(17)).Perm(30)
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := BuildPointFile(path, ds, perm, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	pf.Close()

	re, err := OpenPointFile(path, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 30 || re.Dim() != 8 {
		t.Fatalf("reopened shape %dx%d", re.Len(), re.Dim())
	}
	for i := 0; i < 30; i++ {
		got, err := re.Fetch(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := ds.Point(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("reopened point %d mismatch", i)
			}
		}
	}
}

func TestPointFilePageOfGroupsByPage(t *testing.T) {
	ds := testDataset(t, 64, 16) // 64-byte points, 4 per 256-byte page
	pf, err := BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	// Raw order: ids 0..3 share a page, 4..7 the next, and so on.
	for id := 0; id < 64; id++ {
		p, err := pf.PageOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := pf.dataStart + id/4; p != want {
			t.Fatalf("PageOf(%d) = %d, want %d", id, p, want)
		}
	}
	if _, err := pf.PageOf(-1); err == nil {
		t.Fatal("expected negative id error")
	}
	if _, err := pf.PageOf(64); err == nil {
		t.Fatal("expected out-of-range id error")
	}
}

func TestPointFileFetchOnPage(t *testing.T) {
	ds := testDataset(t, 64, 16)
	pf, err := BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	ids := []int{5, 7, 4} // all on the second data page, out of order
	page, err := pf.PageOf(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float32, len(ids))
	pf.ResetStats()
	if err := pf.FetchOnPage(page, ids, out); err != nil {
		t.Fatal(err)
	}
	if reads := pf.Stats().PageReads; reads != 1 {
		t.Fatalf("coalesced fetch of %d points cost %d reads, want 1", len(ids), reads)
	}
	for i, id := range ids {
		want := ds.Point(id)
		for j := range want {
			if out[i][j] != want[j] {
				t.Fatalf("point %d dim %d: got %v want %v", id, j, out[i][j], want[j])
			}
		}
	}

	// An id from another page must be rejected before any decode.
	if err := pf.FetchOnPage(page, []int{5, 9}, make([][]float32, 2)); err == nil {
		t.Fatal("expected wrong-page rejection")
	}
	// Length mismatch.
	if err := pf.FetchOnPage(page, []int{5}, nil); err == nil {
		t.Fatal("expected ids/out length mismatch error")
	}
	// Empty request is a no-op.
	pf.ResetStats()
	if err := pf.FetchOnPage(page, nil, nil); err != nil {
		t.Fatal(err)
	}
	if pf.Stats().PageReads != 0 {
		t.Fatal("empty FetchOnPage should not read")
	}
}

func TestPointFileFetchOnPagePermuted(t *testing.T) {
	ds := testDataset(t, 50, 8)
	perm := rand.New(rand.NewSource(29)).Perm(50)
	pf, err := BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, perm, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	// Group every id by PageOf and fetch page by page; each point must decode
	// to its dataset value regardless of physical placement.
	groups := map[int][]int{}
	for id := 0; id < 50; id++ {
		p, err := pf.PageOf(id)
		if err != nil {
			t.Fatal(err)
		}
		groups[p] = append(groups[p], id)
	}
	pf.ResetStats()
	for p, ids := range groups {
		out := make([][]float32, len(ids))
		if err := pf.FetchOnPage(p, ids, out); err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			want := ds.Point(id)
			for j := range want {
				if out[i][j] != want[j] {
					t.Fatalf("permuted point %d mismatch", id)
				}
			}
		}
	}
	if reads := pf.Stats().PageReads; reads != int64(len(groups)) {
		t.Fatalf("fetching %d pages cost %d reads", len(groups), reads)
	}
}

func TestPointFileFetchOnPageMultiPage(t *testing.T) {
	// 512-byte points on 256-byte pages: each fetch unit is 2 pages holding
	// exactly one point.
	ds := testDataset(t, 20, 128)
	pf, err := BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if pf.PagesPerPoint() != 2 {
		t.Fatalf("PagesPerPoint = %d, want 2", pf.PagesPerPoint())
	}
	page, err := pf.PageOf(7)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float32, 1)
	pf.ResetStats()
	if err := pf.FetchOnPage(page, []int{7}, out); err != nil {
		t.Fatal(err)
	}
	if reads := pf.Stats().PageReads; reads != 2 {
		t.Fatalf("multi-page unit fetch cost %d reads, want 2", reads)
	}
	want := ds.Point(7)
	for j := range want {
		if out[0][j] != want[j] {
			t.Fatalf("dim %d mismatch", j)
		}
	}
	// A different point's unit does not alias this page.
	if err := pf.FetchOnPage(page, []int{8}, make([][]float32, 1)); err == nil {
		t.Fatal("expected wrong-unit rejection")
	}
}

func TestPointFileFetchErrors(t *testing.T) {
	ds := testDataset(t, 10, 4)
	pf, err := BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := pf.Fetch(-1, nil); err == nil {
		t.Fatal("expected negative id error")
	}
	if _, err := pf.Fetch(10, nil); err == nil {
		t.Fatal("expected out-of-range id error")
	}
	if _, err := pf.Fetch(0, make([]float32, 3)); err == nil {
		t.Fatal("expected dst length error")
	}
}
