package bench

import (
	"fmt"
	"io"
	"time"

	"exploitbit"
	"exploitbit/internal/core"
	"exploitbit/internal/histogram"
)

func init() {
	register("abl-lemma3", "Ablation: Algorithm 2 construction time with/without the Lemma 3 cutoff", ablLemma3)
	register("abl-upsilon", "Ablation: prefix-sum vs naive Υ evaluation in Algorithm 2", ablUpsilon)
	register("abl-truehit", "Ablation: true-result detection on/off at query time", ablTrueHit)
	register("abl-bitpack", "Ablation: bit-packed vs byte-aligned codes (capacity and I/O)", ablBitPack)
	register("abl-eagerfetch", "Ablation: footnote 6 — eagerly fetching cache misses", ablEagerFetch)
}

// hcoFrequency builds the F′ array an HC-O engine would use on the lab.
func hcoFrequency(lab *Lab) []float64 {
	prof := lab.Sys.Profile
	dom := lab.DS.Domain
	fp := histogram.WorkloadFrequency(prof.QRPoints(nil), dom)
	histogram.Smooth(fp, histogram.DataFrequency(lab.DS, dom), 0.01)
	return fp
}

func ablLemma3(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	fp := hcoFrequency(lab)
	b := histogram.MaxBucketsForCodeLen(lab.DefaultTau, lab.DS.Domain.Ndom)

	timeIt := func(opt histogram.KNNOptimalOptions) (time.Duration, *histogram.Histogram) {
		start := time.Now()
		h := histogram.KNNOptimalWith(fp, b, opt)
		return time.Since(start), h
	}
	tOn, hOn := timeIt(histogram.KNNOptimalOptions{})
	tOff, hOff := timeIt(histogram.KNNOptimalOptions{DisableCutoff: true})

	tw := table(w)
	fmt.Fprintln(tw, "variant\tbuild(s)\tM3_metric")
	fmt.Fprintf(tw, "with Lemma 3 cutoff\t%s\t%.1f\n", secs(tOn), histogram.M3(hOn, fp))
	fmt.Fprintf(tw, "without cutoff\t%s\t%.1f\n", secs(tOff), histogram.M3(hOff, fp))
	fmt.Fprintf(tw, "# speedup %.1fx at identical metric value (the cutoff is exact)\n",
		tOff.Seconds()/maxf(tOn.Seconds(), 1e-9))
	return tw.Flush()
}

func ablUpsilon(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	fp := hcoFrequency(lab)
	b := histogram.MaxBucketsForCodeLen(lab.DefaultTau, lab.DS.Domain.Ndom)

	start := time.Now()
	histogram.KNNOptimalWith(fp, b, histogram.KNNOptimalOptions{})
	tFast := time.Since(start)
	start = time.Now()
	histogram.KNNOptimalWith(fp, b, histogram.KNNOptimalOptions{NaiveUpsilon: true})
	tNaive := time.Since(start)

	tw := table(w)
	fmt.Fprintln(tw, "variant\tbuild(s)")
	fmt.Fprintf(tw, "prefix-sum Υ (O(1)/bucket)\t%s\n", secs(tFast))
	fmt.Fprintf(tw, "naive Υ (O(width)/bucket)\t%s\n", secs(tNaive))
	fmt.Fprintf(tw, "# speedup %.1fx\n", tNaive.Seconds()/maxf(tFast.Seconds(), 1e-9))
	return tw.Flush()
}

func ablTrueHit(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	on, err := lab.Sys.EngineWith(core.Config{Method: exploitbit.HCO, CacheBytes: lab.DefaultCS, Tau: lab.DefaultTau, SmoothEps: 0.01})
	if err != nil {
		return err
	}
	off, err := lab.Sys.EngineWith(core.Config{Method: exploitbit.HCO, CacheBytes: lab.DefaultCS, Tau: lab.DefaultTau, SmoothEps: 0.01, NoTrueHitDetection: true})
	if err != nil {
		return err
	}
	aOn := lab.RunQueries(on, env.Scale.K)
	aOff := lab.RunQueries(off, env.Scale.K)
	tw := table(w)
	fmt.Fprintln(tw, "variant\tavg_IO\ttrue_hits/query\trefine(s)")
	fmt.Fprintf(tw, "detection on\t%.1f\t%.1f\t%s\n", aOn.AvgIO(), float64(aOn.TrueHits)/float64(aOn.Queries), secs(aOn.AvgRefinement()))
	fmt.Fprintf(tw, "detection off\t%.1f\t0.0\t%s\n", aOff.AvgIO(), secs(aOff.AvgRefinement()))
	fmt.Fprintln(tw, "# detection can only reduce I/O; the M2 heuristic optimizes Case (i), this measures Case (ii)'s residual value")
	return tw.Flush()
}

func ablBitPack(w io.Writer, env *Env) error {
	// "Exploit every bit": the same τ-bit codes, cached either bit-packed
	// (the paper's footnote 5 layout) or padded to whole bytes. Padding is
	// emulated by shrinking the budget by τ/8 — identical bound quality,
	// strictly fewer cached items.
	lab := env.Lab("NUS-WIDE")
	tau := 6
	padded := int64(float64(lab.DefaultCS) * float64(tau) / 8.0)
	tw := table(w)
	fmt.Fprintln(tw, "variant\ttau\tcapacity(items)\tavg_IO\trefine(s)")
	for _, v := range []struct {
		label  string
		budget int64
	}{
		{"bit-packed", lab.DefaultCS},
		{"byte-aligned (emulated)", padded},
	} {
		eng, err := lab.Sys.Engine(exploitbit.HCO, v.budget, tau)
		if err != nil {
			return err
		}
		agg := lab.RunQueries(eng, env.Scale.K)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%s\n", v.label, tau, eng.CacheCapacity(), agg.AvgIO(), secs(agg.AvgRefinement()))
	}
	fmt.Fprintln(tw, "# packing fits 8/τ more items at identical bound quality — free hit ratio")
	return tw.Flush()
}

func ablEagerFetch(w io.Writer, env *Env) error {
	lab := env.Lab("NUS-WIDE")
	lazy, err := lab.Sys.EngineWith(core.Config{Method: exploitbit.HCO, CacheBytes: lab.DefaultCS, Tau: lab.DefaultTau, SmoothEps: 0.01})
	if err != nil {
		return err
	}
	eager, err := lab.Sys.EngineWith(core.Config{Method: exploitbit.HCO, CacheBytes: lab.DefaultCS, Tau: lab.DefaultTau, SmoothEps: 0.01, EagerFetchMisses: true})
	if err != nil {
		return err
	}
	aL := lab.RunQueries(lazy, env.Scale.K)
	aE := lab.RunQueries(eager, env.Scale.K)
	tw := table(w)
	fmt.Fprintln(tw, "variant\tavg_IO\trefine(s)")
	fmt.Fprintf(tw, "lazy (paper default)\t%.1f\t%s\n", aL.AvgIO(), secs(aL.AvgRefinement()))
	fmt.Fprintf(tw, "eager miss fetch (footnote 6)\t%.1f\t%s\n", aE.AvgIO(), secs(aE.AvgRefinement()))
	fmt.Fprintln(tw, "# footnote 6's claim: eager fetching rarely pays — it front-loads I/O that pruning might have avoided")
	return tw.Flush()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
