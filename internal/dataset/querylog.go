package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// Log is a query log: a pool of distinct query points and a temporally
// ordered sequence of references into the pool. Popularity across the pool
// follows a power law, reproducing the temporal locality that caching
// exploits (Section 1, Figure 2: "a small fraction of photos receive most of
// the views").
type Log struct {
	Pool [][]float32 // distinct query points
	Seq  []int       // the log itself: indices into Pool, in arrival order
}

// LogConfig drives query-log generation.
type LogConfig struct {
	PoolSize int     // number of distinct queries
	Length   int     // total log length (with repetitions)
	ZipfS    float64 // Zipf exponent (> 1); larger = more skew
	Perturb  float64 // Gaussian noise added to the sampled data point
	Seed     int64
}

// GenLog derives a query log from a dataset. Distinct queries are data
// points plus small Gaussian perturbation — the protocol of the paper's
// footnote 9 (following C2LSH and Tao et al.: pick random points from P) —
// and the sequence is sampled with Zipf popularity over the pool.
func GenLog(ds *Dataset, cfg LogConfig) *Log {
	if cfg.PoolSize < 1 || cfg.Length < 1 {
		panic(fmt.Sprintf("dataset: invalid log config %+v", cfg))
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	pool := make([][]float32, cfg.PoolSize)
	for i := range pool {
		src := ds.Point(rng.Intn(ds.Len()))
		q := make([]float32, ds.Dim)
		for j := range q {
			v := float64(src[j]) + rng.NormFloat64()*cfg.Perturb
			if v < ds.Domain.Lo {
				v = ds.Domain.Lo
			} else if v > ds.Domain.Hi {
				v = ds.Domain.Hi
			}
			q[j] = float32(v)
		}
		pool[i] = q
	}

	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.PoolSize-1))
	// Shuffle ranks so popularity is not correlated with pool index order.
	rankOf := rng.Perm(cfg.PoolSize)
	seq := make([]int, cfg.Length)
	for i := range seq {
		seq[i] = rankOf[int(zipf.Uint64())]
	}
	return &Log{Pool: pool, Seq: seq}
}

// Queries materializes the log as query points in arrival order. Entries
// alias the pool.
func (l *Log) Queries() [][]float32 {
	out := make([][]float32, len(l.Seq))
	for i, id := range l.Seq {
		out[i] = l.Pool[id]
	}
	return out
}

// Split partitions the log into a historical workload WL (everything except
// the tail) and a test set Qtest of the last testN arrivals, mirroring the
// experimental setup of Section 5.1. Both follow the same popularity
// distribution, which is assumption (i) of the cost model (Section 4).
func (l *Log) Split(testN int) (wl, qtest [][]float32) {
	if testN < 0 || testN > len(l.Seq) {
		panic(fmt.Sprintf("dataset: bad testN %d for log of %d", testN, len(l.Seq)))
	}
	all := l.Queries()
	return all[:len(all)-testN], all[len(all)-testN:]
}

// RankFreq returns per-distinct-query frequencies sorted descending —
// the rank/frequency series plotted in Figure 2.
func (l *Log) RankFreq() []int {
	counts := make(map[int]int)
	for _, id := range l.Seq {
		counts[id]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	return freqs
}
