package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"exploitbit/internal/bounds"
	"exploitbit/internal/multistep"
	"exploitbit/internal/vec"
)

// This file is the index-agnostic core of Algorithm 1's candidate reduction
// (lines 7–13): the per-candidate squared-bound state, the lb_k/ub_k
// selection over pooled scratch, the prune / true-hit / remaining partition,
// and the goroutine fan-out used when the candidate set is large. Engine
// (flat candidate indexes: C2LSH, VA-file) and TreeEngine (leaf-node indexes:
// iDistance, VP-tree, R-tree; Section 3.6.1) both assemble their searches
// from these pieces, so every fast path — LUT scoring, squared-distance
// thresholds, pooled scratch, parallel reduction, atomic aggregates — exists
// exactly once.

// cancelCheckStride is how many candidates a Phase-2 scoring loop processes
// between context polls. Scoring a candidate is tens of nanoseconds, so a
// power-of-two stride keeps the poll (one atomic load on most contexts) off
// the per-candidate path while still bounding post-cancellation work to a
// few microseconds per worker. Must be a power of two: loops test
// i&(cancelCheckStride-1).
const cancelCheckStride = 1024

// candState is Phase 2's per-candidate bookkeeping. Bounds are kept squared
// throughout: Algorithm 1 only ever compares bounds against each other and
// against exact distances, and x ↦ x² is monotone on distances, so pruning,
// true-hit detection and the refinement fetch order are unchanged while
// every per-candidate sqrt disappears.
type candState struct {
	id   int32
	leaf int32 // owning leaf for tree candidates (-1: not leaf-resident)

	lbSq, ubSq float64
	exactPt    []float32 // non-nil for EXACT cache hits

	// known marks a candidate whose exact distance is already in hand and
	// whose I/O is already paid (tree candidates from exact-cached or
	// disk-loaded leaves). Known candidates are never declared true hits —
	// true-hit detection exists to avoid I/O that they no longer need — and
	// instead compete for result slots in refinement at zero cost.
	known bool
}

// reduceScratch is the pooled working set of the shared reduction core. Both
// engines embed it in their per-query scratch so lb_k/ub_k selection and the
// partition run without heap allocations in steady state.
type reduceScratch struct {
	cs       []candState
	lbs, ubs []float64
	top      *vec.TopK
}

func newReduceScratch() reduceScratch {
	return reduceScratch{top: vec.NewTopK(1)}
}

// kthBoundsSq computes Algorithm 1's lb_k and ub_k (lines 7–8) in squared
// space over the scored candidates, reusing the scratch's bound arrays and
// selection heap. Both are +Inf when fewer than k candidates exist, which
// makes every finite-bounded candidate a true hit — exactly the paper's
// semantics when the candidate set cannot fill the result.
func (rs *reduceScratch) kthBoundsSq(cs []candState, k int) (lbkSq, ubkSq float64) {
	rs.lbs = grow(rs.lbs, len(cs))
	rs.ubs = grow(rs.ubs, len(cs))
	for i := range cs {
		rs.lbs[i] = cs[i].lbSq
		rs.ubs[i] = cs[i].ubSq
	}
	lbkSq = multistep.KthSmallestWith(rs.lbs, k, rs.top)
	ubkSq = multistep.KthSmallestWith(rs.ubs, k, rs.top)
	return lbkSq, ubkSq
}

// partitionCandidates applies Algorithm 1 lines 9–13 to the scored
// candidates: early pruning (lb > ub_k), true-result detection (ub < lb_k,
// Case ii — skipped for known candidates and under the ablation switch), and
// pass-through of everything else to refinement. True-hit identifiers are
// appended to results; survivors are compacted in place into cs[:0] and
// returned as remaining. The caller decides what st.Remaining means for its
// index shape (the tree counts only leaf-resident survivors).
func partitionCandidates(cs []candState, lbkSq, ubkSq float64, noTrueHit bool, st *QueryStats, results []int) ([]int, []candState) {
	remaining := cs[:0]
	for _, c := range cs {
		switch {
		case c.lbSq > ubkSq:
			st.Pruned++ // early pruning: cannot be among the k nearest
		case !noTrueHit && !c.known && c.ubSq < lbkSq:
			st.TrueHits++ // must be a result; no fetch needed
			results = append(results, int(c.id))
		default:
			remaining = append(remaining, c)
		}
	}
	return results, remaining
}

// crossBound is the sharded router's bound-exchange cell: the running
// minimum of every shard worker's k-th-smallest upper bound (squared), so a
// shard can early-abandon candidates against the global threshold instead
// of only its local one. Squared distances are non-negative, and for
// non-negative IEEE-754 doubles the bit pattern orders exactly like the
// value, so the minimum is maintained with a plain CAS loop over the bits —
// no lock on the Phase-2 hot path.
//
// The exchange is strictly a threshold tightening: slabReduceRange's
// abandonment argument only requires its threshold to be ≥ the global ub_k,
// and every published value is some worker's k-th smallest upper bound over
// a *subset* of the candidates, hence ≥ ub_k. Results therefore stay
// bit-identical no matter how the shards interleave (see the proof comment
// on slabReduceRange).
//
// The zero value is NOT armed — reset must be called before a query, or
// load would return 0 and abandon everything.
type crossBound struct {
	bits atomic.Uint64
}

func (b *crossBound) reset() { b.bits.Store(math.Float64bits(math.Inf(1))) }

func (b *crossBound) load() float64 { return math.Float64frombits(b.bits.Load()) }

// publishMin lowers the shared bound to v if v is smaller.
func (b *crossBound) publishMin(v float64) {
	nb := math.Float64bits(v)
	for {
		cur := b.bits.Load()
		if nb >= cur {
			return
		}
		if b.bits.CompareAndSwap(cur, nb) {
			return
		}
	}
}

// slabBlock is the candidate block size of the fused slab kernel: slots for
// one block are resolved in a tight pass (dense int32 index, sequential ids
// array) before any bound math runs, so the slot loads pipeline ahead of the
// arena scans instead of interleaving a dependent load into every candidate.
const slabBlock = 64

// reduceSlab is Phase 2 over the slab-packed HFF arena: the fused blocked
// kernel, fanned over contiguous candidate chunks via scoreParallel when the
// candidate set clears the parallel threshold. Cache statistics are settled
// in bulk after the scan. xb, when non-nil, is the sharded router's
// cross-shard bound-exchange cell (nil for unsharded searches).
func (e *Engine) reduceSlab(ctx context.Context, q []float32, ids []int, cs []candState, lut *bounds.QueryLUT, k, workers int, sc *searchScratch, xb *crossBound) error {
	var hits int64
	if workers > 1 {
		hits = scoreParallel(len(ids), workers, func(lo, hi int) int64 {
			// Per-worker running threshold: each worker's heap sees a subset
			// of the upper bounds, so its root is ≥ the global k-th smallest
			// and the abandonment argument below still holds.
			ubTop := e.ubTopPool.Get().(*vec.TopK)
			ubTop.Reset(k)
			h := e.slabReduceRange(ctx, q, ids, cs, lut, ubTop, lo, hi, xb)
			e.ubTopPool.Put(ubTop)
			return h
		})
	} else {
		hits = e.slabReduceRange(ctx, q, ids, cs, lut, sc.ubTopFor(k), 0, len(ids), xb)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sc.st.Hits += int(hits)
	e.slab.AddStats(hits, int64(len(ids))-hits)
	return nil
}

// slabReduceRange scores candidates ids[lo:hi] into cs[lo:hi] directly from
// arena memory, one block at a time: resolve a block of slots, then compute
// bounds, maintaining the running k-th upper bound in ubTop so later
// candidates can early-abandon their upper-bound scan.
//
// Early abandonment is bit-identical to the unabandoned path. ubTop.Root()
// (thr) is either +Inf or the k-th smallest of a subset of the true upper
// bounds, so thr ≥ ub_k, the k-th smallest over ALL candidates. A candidate
// whose (possibly partial) lower bound exceeds thr therefore has
// true ub ≥ true lb ≥ recorded lb > thr ≥ ub_k: its upper bound is never
// among the k smallest, so recording +Inf instead leaves kthBoundsSq's ub_k
// unchanged; its recorded lb — even when the scan abandoned mid-sum, since
// per-dimension terms are non-negative and the partial already cleared thr —
// stays strictly above ub_k ≥ lb_k, so it is neither among the k smallest
// lower bounds (lb_k unchanged) nor ever a true hit, and partitionCandidates
// prunes it exactly as the map path does (map lb > thr ≥ ub_k too). Every
// surviving candidate gets fully-summed bounds with the reference term
// order, so the result identifiers, the partition, and every pinned
// statistic match the map-backed reduction bit for bit.
//
// The cross-shard bound xb (nil when unsharded) only ever *lowers* thr, and
// every value it carries is some worker's k-th smallest upper bound over a
// subset of the candidates, so thr ≥ ub_k still holds and the whole argument
// above goes through unchanged: which candidates abandon (and with what
// partial sum) may vary run to run, but every abandoned candidate is pruned
// in every run and every survivor carries full reference-order bounds, so
// outputs and pinned statistics never depend on the interleaving. xb is
// refreshed once per block — a stale (larger) value is still ≥ ub_k.
func (e *Engine) slabReduceRange(ctx context.Context, q []float32, ids []int, cs []candState, lut *bounds.QueryLUT, ubTop *vec.TopK, lo, hi int, xb *crossBound) (hits int64) {
	s := e.slab
	var slots [slabBlock]int32
	shared := math.Inf(1)
	for base := lo; base < hi; base += slabBlock {
		if (base-lo)&(cancelCheckStride-1) == 0 && ctx.Err() != nil {
			return hits
		}
		if xb != nil {
			shared = xb.load()
		}
		n := min(slabBlock, hi-base)
		for i := 0; i < n; i++ {
			slots[i] = s.SlotOf(ids[base+i])
		}
		for i := 0; i < n; i++ {
			c := &cs[base+i]
			c.id = int32(ids[base+i])
			c.leaf = -1
			c.exactPt = nil
			c.known = false
			slot := slots[i]
			if slot < 0 {
				// Miss: the vacuous bounds of Algorithm 1 line 4. Not pushed
				// into ubTop — an infinite bound never tightens the threshold.
				c.lbSq, c.ubSq = 0, math.Inf(1)
				continue
			}
			hits++
			words := s.Words(slot)
			thr := shared
			if ubTop.Full() {
				if r := ubTop.Root(); r < thr {
					thr = r
				}
			}
			if math.IsInf(thr, 1) {
				// Threshold not armed yet: both bounds are needed, fused in
				// one arena walk.
				if lut != nil {
					c.lbSq, c.ubSq = lut.BoundsSqPacked(words, e.codec)
				} else {
					c.lbSq, c.ubSq = e.table.BoundsSqPacked(q, words, e.codec)
				}
				ubTop.Push(c.ubSq, int(c.id))
				if xb != nil && ubTop.Full() {
					xb.publishMin(ubTop.Root())
				}
				continue
			}
			var lbSq float64
			if lut != nil {
				lbSq = lut.LowerSqPackedThresh(words, e.codec, thr)
			} else {
				lbSq = e.table.LowerSqPackedThresh(q, words, e.codec, thr)
			}
			c.lbSq = lbSq
			if lbSq > thr {
				c.ubSq = math.Inf(1) // early-abandoned; provably pruned
				continue
			}
			if lut != nil {
				c.ubSq = lut.UpperSqPacked(words, e.codec)
			} else {
				c.ubSq = e.table.UpperSqPacked(q, words, e.codec)
			}
			ubTop.Push(c.ubSq, int(c.id))
			if xb != nil && ubTop.Full() {
				xb.publishMin(ubTop.Root())
			}
		}
	}
	return hits
}

// scoreParallel fans scoring of [0,n) across workers over contiguous chunks
// and returns the summed per-chunk results (the engines count cache hits).
// Chunks touch disjoint state by construction; score must be safe for
// concurrent invocation on disjoint ranges.
func scoreParallel(n, workers int, score func(lo, hi int) int64) int64 {
	var wg sync.WaitGroup
	var total atomic.Int64
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			total.Add(score(lo, hi))
		}(lo, hi)
	}
	wg.Wait()
	return total.Load()
}
