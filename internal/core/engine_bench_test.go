package core

import (
	"testing"
)

// BenchmarkSearch measures one full Algorithm-1 query (generation +
// reduction + refinement, zero simulated latency) per caching method.
func BenchmarkSearch(b *testing.B) {
	w := buildWorld(b, 4000, 32, 201)
	for _, m := range []Method{NoCache, Exact, HCD, HCO} {
		m := m
		b.Run(string(m), func(b *testing.B) {
			eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
				Method: m, CacheBytes: 1 << 20, Tau: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Search(w.qtest[i%len(w.qtest)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineBuild measures the offline construction cost per method
// (histogram + cache fill) once the profile exists.
func BenchmarkEngineBuild(b *testing.B) {
	w := buildWorld(b, 4000, 32, 202)
	for _, m := range []Method{Exact, HCD, HCO, IHCO} {
		m := m
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
					Method: m, CacheBytes: 1 << 20, Tau: 8,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchAllHitsEngine builds an all-hits engine (C-VA covers the whole
// dataset) with a frozen candidate list, so the benchmark isolates Phases
// 2–3 of Search from index traversal.
func benchAllHitsEngine(b *testing.B, lutMin, parMin int, noSlab bool) (*Engine, []float32) {
	w := buildWorld(b, 2000, 16, 77)
	q := w.qtest[0]
	ids, dmax := candFunc(w.ix)(q, 10)
	static := func([]float32, int) ([]int, float64) { return ids, dmax }
	eng, err := NewEngine(w.pf, w.prof, static, Config{
		Method: CVA, CacheBytes: 1 << 30,
		LUTMinCandidates: lutMin, ParallelReduceThreshold: parMin,
		NoSlab: noSlab,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng, q
}

// BenchmarkEngineSearch is the steady-state serve path on the all-hits
// (fully cached) configuration: with a reused result buffer it must report
// 0 allocs/op — the pooled scratch absorbs every per-query working set.
func BenchmarkEngineSearch(b *testing.B) {
	eng, q := benchAllHitsEngine(b, 0, -1, false)
	dst := make([]int, 0, 64)
	if _, _, err := eng.SearchInto(q, 10, dst[:0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = eng.SearchInto(q, 10, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSearchNoLUT is the same path with the lookup table
// disabled, isolating what the ADC trick buys end to end.
func BenchmarkEngineSearchNoLUT(b *testing.B) {
	eng, q := benchAllHitsEngine(b, -1, -1, false)
	dst := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = eng.SearchInto(q, 10, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSearchMap is BenchmarkEngineSearch on the map-backed layout
// (Config.NoSlab) — the before/after pair that prices the slab arena and the
// fused blocked kernel. Must also stay 0 allocs/op.
func BenchmarkEngineSearchMap(b *testing.B) {
	eng, q := benchAllHitsEngine(b, 0, -1, true)
	dst := make([]int, 0, 64)
	if _, _, err := eng.SearchInto(q, 10, dst[:0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = eng.SearchInto(q, 10, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfile measures workload profiling throughput (queries/sec of
// the offline pipeline's dominant step).
func BenchmarkProfile(b *testing.B) {
	w := buildWorld(b, 4000, 32, 203)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildProfile(w.ds, candFunc(w.ix), w.wl[:100], 10)
	}
	b.ReportMetric(float64(100), "queries/op")
}
