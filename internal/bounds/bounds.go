// Package bounds derives the conservative lower and upper distance bounds of
// Section 3.2 from encoded (approximate) points: every bucket code pins the
// original coordinate inside a real interval, so the code array pins the
// point inside a bounding rectangle, and
//
//	dist⁻_q(p′) ≤ dist_q(p) ≤ dist⁺_q(p′)
//
// always holds. Those bounds power the early-pruning and true-result
// detection of Algorithm 1.
package bounds

import (
	"math"

	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/vec"
)

// Table precomputes, once per histogram, the real-valued edges of every
// bucket so per-candidate bound computation is a couple of array lookups per
// dimension. It serves both global histograms (one shared edge table) and
// per-dimension histograms (one edge table per dimension).
type Table struct {
	dim    int
	shared bool
	loEdge [][]float64 // [1][B] when shared, else [dim][B]
	hiEdge [][]float64
}

// NewTable builds the edge table for a global histogram over domain dom,
// for dim-dimensional points.
func NewTable(h *histogram.Histogram, dom vec.Domain, dim int) *Table {
	lo, hi := edges(h, dom)
	return &Table{dim: dim, shared: true, loEdge: [][]float64{lo}, hiEdge: [][]float64{hi}}
}

// NewTablePerDim builds edge tables for an individual-dimension histogram.
func NewTablePerDim(p *histogram.PerDim, dom vec.Domain) *Table {
	t := &Table{dim: p.Dim(), loEdge: make([][]float64, p.Dim()), hiEdge: make([][]float64, p.Dim())}
	for j, h := range p.H {
		t.loEdge[j], t.hiEdge[j] = edges(h, dom)
	}
	return t
}

func edges(h *histogram.Histogram, dom vec.Domain) (lo, hi []float64) {
	lo = make([]float64, h.B())
	hi = make([]float64, h.B())
	for b := 0; b < h.B(); b++ {
		l, u := h.Interval(b)
		lo[b] = dom.BinLo(l)
		hi[b] = dom.BinHi(u)
	}
	return lo, hi
}

// Dim returns the dimensionality the table serves.
func (t *Table) Dim() int { return t.dim }

func (t *Table) edgesFor(j int) (lo, hi []float64) {
	if t.shared {
		return t.loEdge[0], t.hiEdge[0]
	}
	return t.loEdge[j], t.hiEdge[j]
}

// contrib computes one dimension's squared contributions to the lower and
// upper bound: the squared distance to the nearest edge (zero when q lies
// inside the bucket interval) and to the farther corner. Every bound in this
// package — reference, packed and LUT — sums exactly these terms in
// dimension order, which is what makes the fast paths bitwise-identical to
// the reference.
func contrib(qj, l, u float64) (loSq, upSq float64) {
	return contribLo(qj, l, u), contribUp(qj, l, u)
}

// contribLo is the lower-bound half of contrib. The fused Phase-2 kernel
// computes lower bounds for every candidate but upper bounds only for the
// survivors, so the two halves are split; the arithmetic is the same terms in
// the same order, keeping the split paths bitwise-identical to contrib.
func contribLo(qj, l, u float64) (loSq float64) {
	dl, du := qj-l, u-qj // distances to the near edges (sign-aware)
	if dl < 0 { // q left of interval
		return dl * dl
	}
	if du < 0 { // q right of interval
		return du * du
	}
	return 0
}

// contribUp is the upper-bound half of contrib: squared distance to the
// farther corner of the interval.
func contribUp(qj, l, u float64) (upSq float64) {
	dl, du := qj-l, u-qj
	a, b := math.Abs(dl), math.Abs(du)
	far := a
	if b > far {
		far = b
	}
	return far * far
}

// Bounds computes (dist⁻, dist⁺) of the encoded point codes from query q.
func (t *Table) Bounds(q []float32, codes []int) (lb, ub float64) {
	sLo, sUp := t.BoundsSq(q, codes)
	return math.Sqrt(sLo), math.Sqrt(sUp)
}

// BoundsSq is Bounds without the final square roots. Algorithm 1 only
// compares bounds against each other and against exact distances, so the
// engine works in squared space throughout and defers sqrt until (and
// unless) a real distance is needed.
func (t *Table) BoundsSq(q []float32, codes []int) (lbSq, ubSq float64) {
	var sLo, sUp float64
	for j, code := range codes {
		loE, hiE := t.edgesFor(j)
		lo, up := contrib(float64(q[j]), loE[code], hiE[code])
		sLo += lo
		sUp += up
	}
	return sLo, sUp
}

// BoundsPacked computes bounds directly from a packed word array, avoiding
// an intermediate decode.
func (t *Table) BoundsPacked(q []float32, words []uint64, c encoding.Codec) (lb, ub float64) {
	sLo, sUp := t.BoundsSqPacked(q, words, c)
	return math.Sqrt(sLo), math.Sqrt(sUp)
}

// BoundsSqPacked is BoundsPacked in squared space — the reference
// implementation that QueryLUT must agree with exactly.
func (t *Table) BoundsSqPacked(q []float32, words []uint64, c encoding.Codec) (lbSq, ubSq float64) {
	var sLo, sUp float64
	for j := 0; j < t.dim; j++ {
		code := c.At(words, j)
		loE, hiE := t.edgesFor(j)
		lo, up := contrib(float64(q[j]), loE[code], hiE[code])
		sLo += lo
		sUp += up
	}
	return sLo, sUp
}

// LowerSqPacked computes only the squared lower bound of a packed point —
// the first half of the fused kernel's lower-then-maybe-upper split. It sums
// the same contribLo terms in the same dimension order as BoundsSqPacked, so
// the result is bitwise-identical to that function's lbSq.
func (t *Table) LowerSqPacked(q []float32, words []uint64, c encoding.Codec) (lbSq float64) {
	return t.LowerSqPackedThresh(q, words, c, math.Inf(1))
}

// LowerSqPackedThresh is LowerSqPacked with scan abandonment: the per-
// dimension terms are non-negative, so the partial sum only grows, and once
// it exceeds thr the caller's verdict ("this candidate prunes") is already
// sealed — the remaining dimensions are skipped and the partial sum is
// returned. Any return value v satisfies either v = the exact lower bound
// (scan completed) or thr < v ≤ the exact lower bound (abandoned); Phase 2's
// bit-identity argument (see core's slabReduceRange) covers both. The
// byte-aligned widths walk words directly like the LUT fast paths.
func (t *Table) LowerSqPackedThresh(q []float32, words []uint64, c encoding.Codec, thr float64) (lbSq float64) {
	switch c.Tau() {
	case 8:
		return t.lowerSqThresh8(q, words, thr)
	case 16:
		return t.lowerSqThresh16(q, words, thr)
	}
	var sLo float64
	for j := 0; j < t.dim; j++ {
		code := c.At(words, j)
		loE, hiE := t.edgesFor(j)
		sLo += contribLo(float64(q[j]), loE[code], hiE[code])
		if sLo > thr {
			return sLo
		}
	}
	return sLo
}

func (t *Table) lowerSqThresh8(q []float32, words []uint64, thr float64) (lbSq float64) {
	var sLo float64
	j := 0
	for _, w := range words {
		for k := 0; k < 8 && j < t.dim; k++ {
			code := int(w & 0xFF)
			w >>= 8
			loE, hiE := t.edgesFor(j)
			sLo += contribLo(float64(q[j]), loE[code], hiE[code])
			j++
			if sLo > thr {
				return sLo
			}
		}
	}
	return sLo
}

func (t *Table) lowerSqThresh16(q []float32, words []uint64, thr float64) (lbSq float64) {
	var sLo float64
	j := 0
	for _, w := range words {
		for k := 0; k < 4 && j < t.dim; k++ {
			code := int(w & 0xFFFF)
			w >>= 16
			loE, hiE := t.edgesFor(j)
			sLo += contribLo(float64(q[j]), loE[code], hiE[code])
			j++
			if sLo > thr {
				return sLo
			}
		}
	}
	return sLo
}

// UpperSqPacked computes only the squared upper bound of a packed point,
// bitwise-identical to BoundsSqPacked's ubSq.
func (t *Table) UpperSqPacked(q []float32, words []uint64, c encoding.Codec) (ubSq float64) {
	switch c.Tau() {
	case 8:
		return t.upperSq8(q, words)
	case 16:
		return t.upperSq16(q, words)
	}
	var sUp float64
	for j := 0; j < t.dim; j++ {
		code := c.At(words, j)
		loE, hiE := t.edgesFor(j)
		sUp += contribUp(float64(q[j]), loE[code], hiE[code])
	}
	return sUp
}

func (t *Table) upperSq8(q []float32, words []uint64) (ubSq float64) {
	var sUp float64
	j := 0
	for _, w := range words {
		for k := 0; k < 8 && j < t.dim; k++ {
			code := int(w & 0xFF)
			w >>= 8
			loE, hiE := t.edgesFor(j)
			sUp += contribUp(float64(q[j]), loE[code], hiE[code])
			j++
		}
	}
	return sUp
}

func (t *Table) upperSq16(q []float32, words []uint64) (ubSq float64) {
	var sUp float64
	j := 0
	for _, w := range words {
		for k := 0; k < 4 && j < t.dim; k++ {
			code := int(w & 0xFFFF)
			w >>= 16
			loE, hiE := t.edgesFor(j)
			sUp += contribUp(float64(q[j]), loE[code], hiE[code])
			j++
		}
	}
	return sUp
}

// ErrNorm returns ‖ε(c)‖, the Euclidean norm of the error vector of
// Definition 10 (per-dimension real bucket widths) for an encoded point.
// Theorem 2's refinement-ratio estimate consumes it.
func (t *Table) ErrNorm(codes []int) float64 {
	var s float64
	for j, code := range codes {
		loE, hiE := t.edgesFor(j)
		w := hiE[code] - loE[code]
		s += w * w
	}
	return math.Sqrt(s)
}

// Rect computes (dist⁻, dist⁺) between q and an explicit rectangle
// [lo, hi] — the bound computation for mHC-R buckets and R-tree MBRs.
func Rect(q, lo, hi []float32) (lb, ub float64) {
	sLo, sUp := RectSq(q, lo, hi)
	return math.Sqrt(sLo), math.Sqrt(sUp)
}

// RectSq is Rect in squared space.
func RectSq(q, lo, hi []float32) (lbSq, ubSq float64) {
	var sLo, sUp float64
	for j := range q {
		l, u := contrib(float64(q[j]), float64(lo[j]), float64(hi[j]))
		sLo += l
		sUp += u
	}
	return sLo, sUp
}

// RectMin computes only dist⁻ to a rectangle (the MINDIST used by R-tree
// and other tree traversals).
func RectMin(q, lo, hi []float32) float64 {
	var s float64
	for j := range q {
		qj := float64(q[j])
		if dl := float64(lo[j]) - qj; dl > 0 {
			s += dl * dl
		} else if du := qj - float64(hi[j]); du > 0 {
			s += du * du
		}
	}
	return math.Sqrt(s)
}
