package core

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/vec"
)

// allCandsOf returns a candidate function covering every point of an n-point
// dataset, so merged-search equivalence is not confounded by index
// construction differing between the base and the folded dataset.
func allCandsOf(ds *dataset.Dataset, n int) CandidateFunc {
	return func(q []float32, k int) ([]int, float64) {
		ids := make([]int, n)
		dmax := 0.0
		for i := 0; i < n; i++ {
			ids[i] = i
			if d := vec.Dist(q, ds.Point(i)); d > dmax {
				dmax = d
			}
		}
		return ids, dmax
	}
}

// mergeWorld is the equivalence fixture: a base engine over the first n0
// points and a reference engine rebuilt over the full folded dataset, both
// with all-covering candidates.
type mergeWorld struct {
	full   *dataset.Dataset
	n0     int
	base   *Engine
	folded *Engine
	qtest  [][]float32
	extras []MergePoint
}

func buildMergeWorld(t *testing.T, method Method, n, n0, dim int) *mergeWorld {
	t.Helper()
	full := dataset.Generate(dataset.Config{Name: "mrg", N: n, Dim: dim, Clusters: 5, Std: 0.05, Ndom: 256, Seed: 7})
	baseDS := dataset.New("mrg-base", dim, full.Data()[:n0*dim], full.Domain)
	log := dataset.GenLog(full, dataset.LogConfig{PoolSize: 40, Length: 200, ZipfS: 1.3, Perturb: 0.005, Seed: 8})
	wl, qtest := log.Split(16)

	mk := func(ds *dataset.Dataset, nPts int, name string) *Engine {
		pf, err := disk.BuildPointFile(filepath.Join(t.TempDir(), name), ds, nil, 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pf.Close() })
		cands := allCandsOf(ds, nPts)
		prof := BuildProfile(ds, cands, wl, 10)
		eng, err := NewEngine(pf, prof, cands, Config{Method: method, CacheBytes: 64 << 10, Tau: 6})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	w := &mergeWorld{full: full, n0: n0, qtest: qtest}
	w.base = mk(baseDS, n0, "base")
	w.folded = mk(full, n, "fold")
	for i := n0; i < n; i++ {
		w.extras = append(w.extras, MergePoint{ID: int32(i), Vec: full.Point(i)})
	}
	return w
}

// idsEqual compares result id lists. Exact scores every candidate, so its
// output order is fully determined and compared verbatim; the caching methods
// emit ids in refinement order, so those compare as sets.
func idsEqual(t *testing.T, method Method, ctx string, got, want []int) {
	t.Helper()
	if method != Exact {
		got = append([]int(nil), got...)
		want = append([]int(nil), want...)
		sort.Ints(got)
		sort.Ints(want)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: merged ids %v, want %v", ctx, got, want)
	}
}

// TestMergedSearchEquivalentToRebuild pins the live-ingest read invariant: a
// base engine searching with the delta folded in through a Merge overlay
// returns ids identical to an engine rebuilt over the folded dataset. With
// tombstones, the rebuilt engine keeps the tombstone mask (deleted points stay
// folded for id density), so the comparison is full overlay vs tombs-only
// overlay.
func TestMergedSearchEquivalentToRebuild(t *testing.T) {
	for _, method := range []Method{Exact, HCO} {
		t.Run(string(method), func(t *testing.T) {
			w := buildMergeWorld(t, method, 600, 400, 8)
			k := 10

			// Tombstone a mix of base and delta ids.
			tombs := map[int32]struct{}{3: {}, 57: {}, 399: {}, 401: {}, 580: {}}
			deleted := func(id int32) bool { _, ok := tombs[id]; return ok }
			fullOverlay := &Merge{Deleted: deleted, Extra: w.extras}
			tombsOnly := &Merge{Deleted: deleted}

			for _, q := range w.qtest {
				// No tombstones: base+extras vs plain folded search.
				got, _, err := w.base.SearchMerged(q, k, &Merge{Extra: w.extras})
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := w.folded.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				idsEqual(t, method, "no-tombs", got, want)

				// With tombstones.
				got, _, err = w.base.SearchMerged(q, k, fullOverlay)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err = w.folded.SearchMerged(q, k, tombsOnly)
				if err != nil {
					t.Fatal(err)
				}
				idsEqual(t, method, "tombs", got, want)
				for _, id := range got {
					if deleted(int32(id)) {
						t.Fatalf("tombstoned id %d in results", id)
					}
				}

				// Horizon skip: handing the folded engine the full overlay —
				// extras it already contains — must change nothing. This is
				// what makes the overlay safe across an RCU engine swap.
				hz, _, err := w.folded.SearchMerged(q, k, fullOverlay)
				if err != nil {
					t.Fatal(err)
				}
				idsEqual(t, method, "horizon-skip", hz, want)
			}
		})
	}
}

// TestMergedSearchRandomInterleavings drives a random insert/delete
// interleaving through the overlay and cross-checks the merged results
// against exact brute force over the surviving point set at several cuts.
func TestMergedSearchRandomInterleavings(t *testing.T) {
	const n, n0, dim, k = 700, 450, 8, 10
	w := buildMergeWorld(t, HCO, n, n0, dim)
	rng := rand.New(rand.NewSource(99))

	tombs := map[int32]struct{}{}
	inserted := 0
	check := func(step string) {
		t.Helper()
		deleted := func(id int32) bool { _, ok := tombs[id]; return ok }
		mg := &Merge{Deleted: deleted, Extra: w.extras[:inserted]}
		for _, q := range w.qtest[:6] {
			got, _, err := w.base.SearchMerged(q, k, mg)
			if err != nil {
				t.Fatal(err)
			}
			// Brute-force reference over every live id.
			type cand struct {
				id int
				d  float64
			}
			var ref []cand
			for id := 0; id < n0+inserted; id++ {
				if deleted(int32(id)) {
					continue
				}
				ref = append(ref, cand{id, vec.Dist(q, w.full.Point(id))})
			}
			sort.Slice(ref, func(i, j int) bool {
				if ref[i].d != ref[j].d {
					return ref[i].d < ref[j].d
				}
				return ref[i].id < ref[j].id
			})
			want := make([]int, 0, k)
			for i := 0; i < k && i < len(ref); i++ {
				want = append(want, ref[i].id)
			}
			gs := append([]int(nil), got...)
			sort.Ints(gs)
			ws := append([]int(nil), want...)
			sort.Ints(ws)
			if !reflect.DeepEqual(gs, ws) {
				t.Fatalf("%s: merged ids %v, brute force %v", step, gs, ws)
			}
		}
	}

	check("initial")
	for step := 0; step < 120; step++ {
		if inserted < len(w.extras) && (rng.Intn(3) != 0 || len(tombs) > (n0+inserted)/3) {
			inserted++
		} else {
			id := int32(rng.Intn(n0 + inserted))
			tombs[id] = struct{}{}
		}
		if step%40 == 39 {
			check("step")
		}
	}
	check("final")
}
