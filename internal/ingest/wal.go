// Package ingest is the live write path of the system: a durable write-ahead
// log for inserts and deletes, an in-memory delta index overlaying the
// immutable base engine through merged Algorithm 1 searches, crash recovery
// by checkpoint load plus WAL replay, and a background compactor that folds
// the delta into the on-disk point file through one ordinary RCU engine
// rebuild. See DESIGN.md §16 for the full lifecycle.
package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FsyncMode selects the WAL durability policy.
type FsyncMode string

// WAL fsync policies.
const (
	// FsyncAlways syncs the segment after every record: a crash loses at
	// most the record being written (which replay truncates).
	FsyncAlways FsyncMode = "always"
	// FsyncNone leaves syncing to the OS: cheaper, but a crash may lose
	// the segment's buffered tail.
	FsyncNone FsyncMode = "none"
)

// ParseFsyncMode validates a -wal-fsync flag value.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch FsyncMode(s) {
	case FsyncAlways, FsyncNone:
		return FsyncMode(s), nil
	}
	return "", fmt.Errorf("ingest: unknown fsync mode %q (want always or none)", s)
}

// WAL on-disk format. A log directory holds numbered segment files
// wal-%08d.log plus at most one checkpoint.ebc. Each segment starts with a
// 16-byte header:
//
//	magic   u32 "EBWL" (little-endian 'E','B','W','L' bytes)
//	version u32 = 1
//	dim     u32   dimensionality every insert payload must match
//	reserved u32 = 0
//
// followed by length-prefixed CRC-framed records:
//
//	payloadLen u32 | crc32 u32 (IEEE, over payload) | payload
//
// with payload
//
//	op u8 (1=insert, 2=delete) | id u64 LE | [insert only: dim × f32 LE]
//
// A torn tail — short read, bad CRC, or impossible length — is truncated on
// replay, but only in the newest segment; anywhere else it is corruption and
// replay fails loudly.
const (
	walMagic      = 'E' | 'B'<<8 | 'W'<<16 | 'L'<<24
	walVersion    = 1
	walHeaderSize = 16

	opInsert byte = 1
	opDelete byte = 2
)

// syncDir fsyncs a directory so the metadata changes inside it — file
// creation, rename, unlink — survive a power loss. Without it a crash can
// persist a segment's records but not the segment's directory entry, or
// persist retired-segment unlinks while an earlier checkpoint rename is
// still unpublished, breaking the checkpoint-before-retirement ordering.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ingest: open wal dir for sync: %w", err)
	}
	err = d.Sync()
	if cErr := d.Close(); err == nil {
		err = cErr
	}
	if err != nil {
		return fmt.Errorf("ingest: sync wal dir: %w", err)
	}
	return nil
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segment sequence numbers in ascending
// order.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: list wal dir: %w", err)
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// WAL is an append-only write-ahead log over numbered segment files. Appends
// are serialized internally; Rotate seals the active segment (so a checkpoint
// can cover it) and starts the next one.
type WAL struct {
	dir  string
	dim  int
	mode FsyncMode

	mu        sync.Mutex
	f         *os.File
	seq       uint64 // active segment
	liveBytes int64  // bytes across every retained segment, active included
	segments  int
	buf       []byte
}

// OpenWAL opens the log directory for appending, creating it if needed, and
// starts a fresh segment numbered startSeq (pass RecoverResult.NextSeq so the
// new segment sorts after everything replay consumed). Existing segments are
// left in place; their bytes count toward Stats until RemoveThrough retires
// them.
func OpenWAL(dir string, dim int, startSeq uint64, mode FsyncMode) (*WAL, error) {
	if dim < 1 {
		return nil, fmt.Errorf("ingest: wal dim %d < 1", dim)
	}
	if mode != FsyncAlways && mode != FsyncNone {
		return nil, fmt.Errorf("ingest: unknown fsync mode %q", mode)
	}
	if startSeq == 0 {
		startSeq = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: create wal dir: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, dim: dim, mode: mode}
	for _, seq := range seqs {
		if seq >= startSeq {
			return nil, fmt.Errorf("ingest: segment %s already exists at or past start sequence %d", segmentName(seq), startSeq)
		}
		fi, err := os.Stat(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return nil, fmt.Errorf("ingest: stat segment: %w", err)
		}
		w.liveBytes += fi.Size()
		w.segments++
	}
	if err := w.openSegment(startSeq); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegment creates and activates segment seq. Caller holds w.mu or has
// exclusive access.
func (w *WAL) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: create segment: %w", err)
	}
	hdr := make([]byte, walHeaderSize)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], walMagic)
	le.PutUint32(hdr[4:], walVersion)
	le.PutUint32(hdr[8:], uint32(w.dim))
	le.PutUint32(hdr[12:], 0)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("ingest: write segment header: %w", err)
	}
	if w.mode == FsyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("ingest: sync segment header: %w", err)
		}
		// Make the segment's directory entry durable too: record fsyncs are
		// worthless if a power loss forgets the file ever existed.
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return err
		}
	}
	w.f = f
	w.seq = seq
	w.liveBytes += walHeaderSize
	w.segments++
	return nil
}

// AppendInsert logs the insertion of point id with the given (already
// clamped) vector.
func (w *WAL) AppendInsert(id uint64, vec []float32) error {
	if len(vec) != w.dim {
		return fmt.Errorf("ingest: insert dim %d, wal dim %d", len(vec), w.dim)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	payload := w.payloadBuf(9 + 4*w.dim)
	payload[0] = opInsert
	le := binary.LittleEndian
	le.PutUint64(payload[1:], id)
	for i, v := range vec {
		le.PutUint32(payload[9+4*i:], math.Float32bits(v))
	}
	return w.appendLocked(payload)
}

// AppendDelete logs the deletion of point id.
func (w *WAL) AppendDelete(id uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	payload := w.payloadBuf(9)
	payload[0] = opDelete
	binary.LittleEndian.PutUint64(payload[1:], id)
	return w.appendLocked(payload)
}

// payloadBuf returns a reused n-byte payload slice with 8 framing bytes of
// headroom in front (w.buf[:8+n] is the full record).
func (w *WAL) payloadBuf(n int) []byte {
	if cap(w.buf) < 8+n {
		w.buf = make([]byte, 8+n)
	}
	w.buf = w.buf[:8+n]
	return w.buf[8:]
}

// appendLocked frames payload (which must alias w.buf[8:]) and writes the
// record to the active segment. Caller holds w.mu.
func (w *WAL) appendLocked(payload []byte) error {
	if w.f == nil {
		return fmt.Errorf("ingest: wal is closed")
	}
	rec := w.buf
	le := binary.LittleEndian
	le.PutUint32(rec[0:], uint32(len(payload)))
	le.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("ingest: append wal record: %w", err)
	}
	if w.mode == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("ingest: sync wal record: %w", err)
		}
	}
	w.liveBytes += int64(len(rec))
	return nil
}

// Rotate seals the active segment and starts the next one, returning the
// sealed segment's sequence number — the coverage horizon a checkpoint taken
// now can claim: every record in segments ≤ the returned sequence is visible
// to the caller, and records appended after Rotate land strictly later.
func (w *WAL) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("ingest: wal is closed")
	}
	if err := w.f.Sync(); err != nil {
		return 0, fmt.Errorf("ingest: sync on rotate: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return 0, fmt.Errorf("ingest: close on rotate: %w", err)
	}
	sealed := w.seq
	w.f = nil
	if err := w.openSegment(sealed + 1); err != nil {
		return 0, err
	}
	return sealed, nil
}

// RemoveThrough deletes every segment with sequence ≤ seq. Call it only with
// a horizon covered by a durable checkpoint; the active segment is never ≤ a
// sealed horizon, so it is never removed.
func (w *WAL) RemoveThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seqs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, s := range seqs {
		if s > seq || s == w.seq {
			continue
		}
		path := filepath.Join(w.dir, segmentName(s))
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("ingest: stat retired segment: %w", err)
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("ingest: remove retired segment: %w", err)
		}
		w.liveBytes -= fi.Size()
		w.segments--
		removed = true
	}
	if removed {
		return syncDir(w.dir)
	}
	return nil
}

// Stats reports the retained log size in bytes and the number of retained
// segments (the active one included).
func (w *WAL) Stats() (bytes int64, segments int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.liveBytes, w.segments
}

// Close syncs and closes the active segment. The WAL rejects appends
// afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cErr := w.f.Close(); err == nil {
		err = cErr
	}
	w.f = nil
	return err
}
