package cache

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestCapacityForBudget(t *testing.T) {
	// 150-d points, τ=10 → 24 words = 1536 bits per item (paper footnote 5).
	if got := CapacityForBudget(40<<20, 1536); got != 40<<20*8/1536 {
		t.Fatalf("got %d", got)
	}
	if got := CapacityForBudget(0, 64); got != 0 {
		t.Fatalf("zero budget capacity %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero item bits")
		}
	}()
	CapacityForBudget(1, 0)
}

// TestCapacityForBudgetBoundaries is the regression test for the overflow
// bug: budgetBytes*8 wraps int64 at budgets of 2^60 bytes, which the naive
// expression turned into a negative quotient and then a zero capacity — a
// maximal budget built the NO-CACHE engine. The checked version is exact up
// to the saturation point and clamps to math.MaxInt beyond it.
func TestCapacityForBudgetBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		budget   int64
		itemBits int
		want     int
	}{
		{"negative budget", -1, 64, 0},
		{"one byte, one bit", 1, 1, 8},
		{"one byte, nine bits", 1, 9, 0},
		{"largest pre-overflow budget", 1<<60 - 1, 8, 1<<60 - 1},
		{"2^60 overflows the naive product", 1 << 60, 8, 1 << 60},
		{"max budget, large items", math.MaxInt64, 1 << 20, 1<<46 - 1}, // (2^66-8)/2^20
		{"max budget, tiny items saturates", math.MaxInt64, 1, math.MaxInt},
		{"max budget, 8 bits saturates", math.MaxInt64, 8, math.MaxInt},
	}
	for _, c := range cases {
		if got := CapacityForBudget(c.budget, c.itemBits); got != c.want {
			t.Errorf("%s: CapacityForBudget(%d, %d) = %d, want %d",
				c.name, c.budget, c.itemBits, got, c.want)
		}
	}
	// Monotone in the budget across the overflow boundary: more budget can
	// never mean fewer items.
	prev := 0
	for _, b := range []int64{1 << 59, 1<<60 - 1, 1 << 60, 1 << 62, math.MaxInt64} {
		got := CapacityForBudget(b, 1536)
		if got < prev {
			t.Fatalf("capacity not monotone: budget %d → %d items, smaller budget gave %d", b, got, prev)
		}
		prev = got
	}
}

// TestNewSaturatedCapacity: a saturated capacity must construct instantly
// (the map hint is clamped) and still behave as an unbounded cache.
func TestNewSaturatedCapacity(t *testing.T) {
	c := New[int](math.MaxInt, LRU)
	for i := 0; i < 100; i++ {
		c.Put(i, i)
	}
	if c.Len() != 100 {
		t.Fatalf("len = %d, want 100", c.Len())
	}
	if v, ok := c.Get(0); !ok || v != 0 {
		t.Fatal("entry 0 missing — saturated capacity evicted")
	}
}

func TestHFFStaticBehaviour(t *testing.T) {
	c := New[string](2, HFF)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(3, "c") // beyond capacity: ignored under HFF
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("HFF admitted item beyond capacity")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatal("lost item 1")
	}
	// Updating an existing key is allowed.
	c.Put(1, "a2")
	if v, _ := c.Get(1); v != "a2" {
		t.Fatal("update failed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio = %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](3, LRU)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(3, 30)
	c.Get(1) // 1 becomes most recent; LRU order now 1,3,2
	c.Put(4, 40)
	if c.Contains(2) {
		t.Fatal("LRU should have evicted 2")
	}
	for _, id := range []int{1, 3, 4} {
		if !c.Contains(id) {
			t.Fatalf("item %d missing", id)
		}
	}
	// Touch 3, insert 5: should evict 1.
	c.Get(3)
	c.Put(5, 50)
	if c.Contains(1) {
		t.Fatal("LRU should have evicted 1")
	}
}

func TestLRUPutRefreshesRecency(t *testing.T) {
	c := New[int](2, LRU)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(1, 11) // refresh
	c.Put(3, 3)  // evicts 2, not 1
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("Put did not refresh recency")
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatal("Put did not update value")
	}
}

func TestZeroCapacityIsNoCache(t *testing.T) {
	c := New[int](0, LRU)
	c.Put(1, 1)
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache stored an item")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("zero-capacity cache hit")
	}
	if c.Stats().Misses != 1 {
		t.Fatal("miss not counted")
	}
}

func TestContainsDoesNotCount(t *testing.T) {
	c := New[int](1, HFF)
	c.Put(1, 1)
	c.Contains(1)
	c.Contains(2)
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Contains affected stats: %+v", st)
	}
}

func TestResetStats(t *testing.T) {
	c := New[int](1, HFF)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.ResetStats()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	if st := (Stats{}); st.HitRatio() != 0 {
		t.Fatal("idle hit ratio should be 0")
	}
}

func TestRankByFrequency(t *testing.T) {
	freq := map[int]int{5: 10, 2: 30, 9: 30, 1: 5}
	got := RankByFrequency(freq)
	want := []int{2, 9, 5, 1} // ties broken by ascending id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
}

func TestFillHFF(t *testing.T) {
	c := New[int](3, HFF)
	ranked := []int{7, 3, 9, 4, 5}
	n := c.FillHFF(ranked, func(id int) int { return id * 10 })
	if n != 3 || c.Len() != 3 {
		t.Fatalf("admitted %d, len %d", n, c.Len())
	}
	for _, id := range ranked[:3] {
		v, ok := c.Get(id)
		if !ok || v != id*10 {
			t.Fatalf("item %d wrong: %v %v", id, v, ok)
		}
	}
	if c.Contains(4) {
		t.Fatal("over-capacity item admitted")
	}
	// Duplicate ids in ranking are skipped, not double-counted.
	c2 := New[int](2, HFF)
	if n := c2.FillHFF([]int{1, 1, 2}, func(id int) int { return id }); n != 2 {
		t.Fatalf("dup fill admitted %d", n)
	}
}

func TestLRUStress(t *testing.T) {
	// Randomized consistency check against a reference implementation.
	rng := rand.New(rand.NewSource(11))
	c := New[int](8, LRU)
	type refEntry struct {
		id, seq int
	}
	ref := map[int]refEntry{}
	seq := 0
	for op := 0; op < 5000; op++ {
		id := rng.Intn(32)
		seq++
		if rng.Intn(2) == 0 {
			c.Put(id, id)
			if _, ok := ref[id]; !ok && len(ref) == 8 {
				// evict oldest
				oldest, oldestSeq := -1, 1<<62
				for k, e := range ref {
					if e.seq < oldestSeq {
						oldest, oldestSeq = k, e.seq
					}
				}
				delete(ref, oldest)
			}
			ref[id] = refEntry{id, seq}
		} else {
			_, got := c.Get(id)
			_, want := ref[id]
			if got != want {
				t.Fatalf("op %d: Get(%d) = %v, want %v", op, id, got, want)
			}
			if want {
				ref[id] = refEntry{id, seq}
			}
		}
		if c.Len() != len(ref) {
			t.Fatalf("op %d: len %d vs ref %d", op, c.Len(), len(ref))
		}
	}
}

func TestPolicyString(t *testing.T) {
	if HFF.String() != "HFF" || LRU.String() != "LRU" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should still print")
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](-1, HFF)
}

// TestLRUConcurrentAccess hammers an LRU cache from concurrent readers and a
// writer (races surface under -race in CI), then verifies the structure is
// intact: size within capacity, map and recency list in exact agreement.
func TestLRUConcurrentAccess(t *testing.T) {
	c := New[int](512, LRU)
	for i := 0; i < 512; i++ {
		c.Put(i, i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				if v, ok := c.Get((i * (g + 1)) % 1024); ok && v != (i*(g+1))%1024 {
					t.Error("payload mismatch")
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			c.Put(i%2048, i%2048)
		}
	}()
	wg.Wait()

	if c.Len() > 512 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
	// Force a final drain, then walk the list and compare with the map.
	c.Put(9999, 9999)
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[int32]bool{}
	for e := c.sentinel.next; e != &c.sentinel; e = e.next {
		if seen[e.id] {
			t.Fatalf("id %d appears twice in the recency list", e.id)
		}
		seen[e.id] = true
		if c.m[e.id] != e {
			t.Fatalf("list entry %d not the map's entry", e.id)
		}
	}
	if len(seen) != len(c.m) {
		t.Fatalf("list has %d entries, map %d", len(seen), len(c.m))
	}
}
