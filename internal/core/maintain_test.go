package core

import (
	"path/filepath"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/lsh"
)

// driftWorld builds a dataset with two disjoint query populations: pool A
// (sampled from the first half of the points) and pool B (second half).
func driftWorld(t testing.TB) (*dataset.Dataset, *disk.PointFile, CandidateFunc, [][]float32, [][]float32) {
	t.Helper()
	ds := dataset.Generate(dataset.Config{
		Name: "drift", N: 3000, Dim: 12, Clusters: 10, Std: 0.03,
		Ndom: 256, Seed: 97, ValueCoherence: 0.7,
	})
	pf, err := disk.BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	ix := lsh.Build(ds, lsh.Params{Seed: 98, MaxM: 48})
	cands := candFunc(ix)

	mkPool := func(lo, hi int, n int) [][]float32 {
		out := make([][]float32, 0, n)
		for i := 0; len(out) < n; i++ {
			out = append(out, ds.Point(lo+(i*37)%(hi-lo)))
		}
		return out
	}
	poolA := mkPool(0, ds.Len()/2, 300)
	poolB := mkPool(ds.Len()/2, ds.Len(), 300)
	return ds, pf, cands, poolA, poolB
}

func TestMaintainerDetectsDriftAndRecovers(t *testing.T) {
	ds, pf, cands, poolA, poolB := driftWorld(t)
	m, err := NewMaintainer(pf, ds, cands, poolA, 5, Config{
		Method: Exact, CacheBytes: int64(ds.Len()) * int64(ds.PointSize()) / 5,
	}, MaintainOptions{WindowSize: 64, DegradeFactor: 0.8, MinQueriesBetweenRebuilds: 64})
	if err != nil {
		t.Fatal(err)
	}

	run := func(pool [][]float32, n int) (hits, cands int64) {
		for i := 0; i < n; i++ {
			_, st, err := m.Search(pool[i%len(pool)], 5)
			if err != nil {
				t.Fatal(err)
			}
			hits += int64(st.Hits)
			cands += int64(st.Candidates)
		}
		return
	}

	// Phase 1: the trained workload — healthy hit ratio, no rebuilds.
	h, c := run(poolA, 128)
	healthy := float64(h) / float64(c)
	if healthy < 0.3 {
		t.Fatalf("trained hit ratio only %.2f", healthy)
	}
	if m.Rebuilds() != 0 {
		t.Fatalf("rebuilt on the trained workload (%d times)", m.Rebuilds())
	}

	// Phase 2: drift to the disjoint pool; the maintainer must rebuild.
	run(poolB, 400)
	if m.Rebuilds() == 0 {
		t.Fatal("drift never triggered a rebuild")
	}

	// Phase 3: after rebuilding from the new window, pool B is healthy.
	h, c = run(poolB, 128)
	if recovered := float64(h) / float64(c); recovered < healthy*0.6 {
		t.Fatalf("post-rebuild hit ratio %.2f did not recover (healthy was %.2f)", recovered, healthy)
	}
}

func TestMaintainerForceRebuild(t *testing.T) {
	ds, pf, cands, poolA, _ := driftWorld(t)
	m, err := NewMaintainer(pf, ds, cands, poolA[:50], 5, Config{Method: HCO, CacheBytes: 1 << 18, Tau: 6}, MaintainOptions{WindowSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// No recorded queries yet.
	if err := m.ForceRebuild(5); err == nil {
		t.Fatal("expected error rebuilding from an empty window")
	}
	for i := 0; i < 20; i++ {
		if _, _, err := m.Search(poolA[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ForceRebuild(5); err != nil {
		t.Fatal(err)
	}
	if m.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d", m.Rebuilds())
	}
	if m.Engine() == nil {
		t.Fatal("no serving engine after rebuild")
	}
}
