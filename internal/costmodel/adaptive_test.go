package costmodel

import (
	"math"
	"testing"
)

// TestCapacitySaturationInvariance pins the overflow fix: budgets at and past
// 2^60 bytes used to overflow budget*8 negative and clamp capacity to zero,
// so the model predicted ρ_hit = 0 exactly where it should predict ρ_hit = 1.
// With the checked math, every such budget yields a huge positive capacity
// (monotone in the budget), a hit ratio of exactly 1, and therefore the same
// C_refine estimate — invariant under the budget.
func TestCapacitySaturationInvariance(t *testing.T) {
	in := testInputs()
	budgets := []int64{1 << 60, 1 << 62, math.MaxInt64}
	for tau := 1; tau <= 32; tau++ {
		var ref float64
		prevCap := 0
		for bi, b := range budgets {
			huge := in
			huge.BudgetBytes = b
			c := huge.CapacityForTau(tau)
			if c <= 0 {
				t.Fatalf("budget %d, tau %d: capacity %d — the pre-fix overflow is back", b, tau, c)
			}
			if c < prevCap {
				t.Fatalf("budget %d, tau %d: capacity %d shrank below %d", b, tau, c, prevCap)
			}
			prevCap = c
			if c < len(huge.FreqSorted) {
				t.Fatalf("budget %d, tau %d: capacity %d below the workload's %d items", b, tau, c, len(huge.FreqSorted))
			}
			if h := huge.HitRatioForTau(tau); h != 1 {
				t.Fatalf("budget %d, tau %d: hit ratio %v, want 1", b, tau, h)
			}
			est := huge.EstimatedCrefine(tau)
			// With ρ_hit = 1 the estimate collapses to the refine-ratio floor.
			want := huge.RefineRatioForTau(tau) * huge.AvgCandSize
			if math.Abs(est-want) > 1e-9 {
				t.Fatalf("budget %d, tau %d: C_refine %v, want floor %v", b, tau, est, want)
			}
			if bi == 0 {
				ref = est
			} else if est != ref {
				t.Fatalf("tau %d: C_refine varies across saturating budgets: %v vs %v", tau, est, ref)
			}
		}
	}
}

// TestCapacityForTauBoundaries covers the non-saturating edges of the checked
// arithmetic.
func TestCapacityForTauBoundaries(t *testing.T) {
	in := testInputs()
	in.BudgetBytes = 0
	if c := in.CapacityForTau(8); c != 0 {
		t.Fatalf("zero budget: capacity %d", c)
	}
	in.BudgetBytes = -5
	if c := in.CapacityForTau(8); c != 0 {
		t.Fatalf("negative budget: capacity %d", c)
	}
	// Just below the old overflow cliff the exact quotient must survive.
	in.BudgetBytes = (1 << 60) - 1
	itemBits := int64(1536) // d=150, τ=10 → word-packed 1536 bits
	want := ((1<<60 - 1) * 8) / itemBits
	if int64(in.CapacityForTau(10)) != want && in.CapacityForTau(10) != math.MaxInt {
		t.Fatalf("pre-cliff budget: capacity %d, want %d", in.CapacityForTau(10), want)
	}
}

// TestOptimalTauNeverDominated is the regression pin for the sweep-cap fix:
// the returned τ* must never have its estimate matched or beaten by a smaller
// τ (ties break toward the smaller τ, which buys strictly more capacity), and
// must never exceed MaxUsefulTau (past ⌈log₂ Ndom⌉ the bound quality is flat
// while items keep growing — every such τ is dominated).
func TestOptimalTauNeverDominated(t *testing.T) {
	base := testInputs()
	for _, budget := range []int64{0, 1 << 10, 64 << 10, 1 << 20, 1 << 40, 1 << 60, math.MaxInt64} {
		for _, ndom := range []int{2, 16, 256, 1024, 1 << 20} {
			for _, dmax := range []float64{0, 0.01, 2.5, 1e6} {
				in := base
				in.BudgetBytes = budget
				in.Ndom = ndom
				in.Dmax = dmax
				tauStar, est := in.OptimalTau()
				if max := in.MaxUsefulTau(); tauStar > max {
					t.Fatalf("budget=%d ndom=%d dmax=%v: τ*=%d beyond MaxUsefulTau %d",
						budget, ndom, dmax, tauStar, max)
				}
				for tau := 1; tau < tauStar; tau++ {
					if est[tau-1] <= est[tauStar-1] {
						t.Fatalf("budget=%d ndom=%d dmax=%v: τ*=%d (C=%v) dominated by τ=%d (C=%v)",
							budget, ndom, dmax, tauStar, est[tauStar-1], tau, est[tau-1])
					}
				}
			}
		}
	}
}

// TestOptimalTauSweepCapTies: with a saturating budget the capacity term is
// flat, so every τ past ⌈log₂ Ndom⌉ ties the cap exactly — the old unbounded
// sweep could hand the win to a dominated τ on such ties. The estimates slice
// keeps its full Lvalue length for Figure 12-style consumers.
func TestOptimalTauSweepCapTies(t *testing.T) {
	in := testInputs()
	in.BudgetBytes = 1 << 61 // saturates: ρ_hit = 1 at every τ
	in.Ndom = 16             // MaxUsefulTau = 4
	tauStar, est := in.OptimalTau()
	if len(est) != 32 {
		t.Fatalf("estimates length %d, want 32", len(est))
	}
	if want := in.MaxUsefulTau(); want != 4 {
		t.Fatalf("MaxUsefulTau = %d, want 4", want)
	}
	if tauStar != 4 {
		t.Fatalf("τ* = %d, want the cap 4 (smallest of the tied minima)", tauStar)
	}
	for tau := 5; tau <= 32; tau++ {
		if est[tau-1] != est[3] {
			t.Fatalf("τ=%d estimate %v differs from the saturated floor %v", tau, est[tau-1], est[3])
		}
	}
}

func TestMaxUsefulTau(t *testing.T) {
	in := testInputs()
	cases := []struct{ ndom, lvalue, want int }{
		{1024, 32, 10},
		{1023, 32, 10},
		{1025, 32, 11},
		{2, 32, 1},
		{1 << 30, 32, 30},
		{0, 32, 32},  // degenerate domain: fall back to Lvalue
		{1024, 8, 8}, // Lvalue smaller than log2(Ndom)
		{1024, 0, 10},
	}
	for _, c := range cases {
		in.Ndom = c.ndom
		in.Lvalue = c.lvalue
		if got := in.MaxUsefulTau(); got != c.want {
			t.Fatalf("ndom=%d lvalue=%d: MaxUsefulTau = %d, want %d", c.ndom, c.lvalue, got, c.want)
		}
	}
}

// retuneInputs yields a model state whose optimum (τ = 10 under a saturating
// budget) is far from the given active τ, with a large predicted improvement.
func retuneInputs() Inputs {
	in := testInputs()
	in.BudgetBytes = 1 << 40 // ρ_hit ≈ 1 everywhere: estimate follows the bound
	return in
}

func TestMonitorFiresAfterConsecutiveWindows(t *testing.T) {
	in := retuneInputs()
	m := NewMonitor(2, MonitorConfig{Threshold: 0.10, Windows: 3})
	for i := 1; i <= 2; i++ {
		d := m.Observe(0.9, 0.5, in)
		if d.Retune {
			t.Fatalf("window %d: fired before %d windows accumulated", i, 3)
		}
		if d.Improvement < 0.10 {
			t.Fatalf("window %d: improvement %v below threshold — fixture broken", i, d.Improvement)
		}
		if snap := m.Snapshot(); snap.PendingWindows != i {
			t.Fatalf("window %d: pending = %d", i, snap.PendingWindows)
		}
	}
	d := m.Observe(0.9, 0.5, in)
	if !d.Retune {
		t.Fatal("third consecutive over-threshold window did not fire")
	}
	if d.Tau == 2 {
		t.Fatal("retune decision recommends the active τ")
	}
	// Firing resets the streak: the next window starts from scratch instead of
	// re-firing into a busy rebuilder.
	if snap := m.Snapshot(); snap.PendingWindows != 0 {
		t.Fatalf("pending = %d after firing, want 0", snap.PendingWindows)
	}
	if d2 := m.Observe(0.9, 0.5, in); d2.Retune {
		t.Fatal("fired again immediately after firing")
	}
}

func TestMonitorNoFireWhenRecommendedEqualsActive(t *testing.T) {
	in := retuneInputs()
	rec, _ := in.OptimalTau()
	m := NewMonitor(rec, MonitorConfig{Threshold: 0.10, Windows: 1})
	for i := 0; i < 5; i++ {
		if d := m.Observe(0.9, 0.5, in); d.Retune {
			t.Fatal("fired while serving the recommended τ")
		}
	}
	if snap := m.Snapshot(); snap.PendingWindows != 0 || snap.Windows != 5 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

func TestMonitorNoteInstallResetsStreakAndCounts(t *testing.T) {
	in := retuneInputs()
	m := NewMonitor(2, MonitorConfig{Threshold: 0.10, Windows: 3})
	m.Observe(0.9, 0.5, in)
	m.Observe(0.9, 0.5, in)
	if snap := m.Snapshot(); snap.PendingWindows != 2 {
		t.Fatalf("pending = %d, want 2", snap.PendingWindows)
	}

	// A drift rebuild (same τ) resets the streak but is not a retune.
	m.NoteInstall(2, false)
	snap := m.Snapshot()
	if snap.PendingWindows != 0 || snap.Retunes != 0 || snap.Tau != 2 {
		t.Fatalf("after drift install: %+v", snap)
	}

	// A retune install moves τ and is counted.
	m.NoteInstall(10, true)
	snap = m.Snapshot()
	if snap.Tau != 10 || snap.Retunes != 1 {
		t.Fatalf("after retune install: %+v", snap)
	}
	if m.Tau() != 10 {
		t.Fatalf("Tau() = %d", m.Tau())
	}
	// Serving the optimum now: the monitor must go quiet.
	for i := 0; i < 4; i++ {
		if d := m.Observe(0.9, 0.5, in); d.Retune {
			t.Fatal("fired after installing the recommended τ")
		}
	}
}

func TestMonitorObservedEWMA(t *testing.T) {
	in := retuneInputs()
	m := NewMonitor(2, MonitorConfig{Alpha: 0.5, Windows: 100})
	m.Observe(0.4, 0.8, in) // seeds
	m.Observe(0.8, 0.4, in) // folds at α=0.5
	snap := m.Snapshot()
	if math.Abs(snap.ObservedRhoHit-0.6) > 1e-12 || math.Abs(snap.ObservedRhoRefine-0.6) > 1e-12 {
		t.Fatalf("EWMA: hit %v refine %v, want 0.6 0.6", snap.ObservedRhoHit, snap.ObservedRhoRefine)
	}
	if snap.PredictedRhoHit != in.HitRatioForTau(2) ||
		snap.PredictedRhoRefine != in.RefineRatioForTau(2) ||
		snap.PredictedCrefine != in.EstimatedCrefine(2) {
		t.Fatalf("predictions not published: %+v", snap)
	}
	rec, est := in.OptimalTau()
	if snap.RecommendedTau != rec || snap.BestCrefine != est[rec-1] {
		t.Fatalf("recommendation not published: %+v", snap)
	}
	wantImp := (snap.PredictedCrefine - snap.BestCrefine) / snap.PredictedCrefine
	if math.Abs(snap.Improvement-wantImp) > 1e-12 {
		t.Fatalf("improvement %v, want %v", snap.Improvement, wantImp)
	}
}
