package exploitbit

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"exploitbit/internal/core"
)

func liveFixture(t *testing.T, walDir string, lopt LiveOptions) (*LiveSystem, *Dataset, [][]float32) {
	t.Helper()
	ds := Generate(DatasetConfig{Name: "live", N: 900, Dim: 8, Clusters: 5, Std: 0.05, Ndom: 256, Seed: 41})
	log := GenLog(ds, LogConfig{PoolSize: 50, Length: 250, ZipfS: 1.3, Perturb: 0.005, Seed: 42})
	wl, qtest := log.Split(10)
	lopt.WalDir = walDir
	ls, err := OpenLive(ds, wl,
		Options{Tio: 0},
		core.Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6},
		MaintainOptions{WindowSize: 1 << 20},
		lopt)
	if err != nil {
		t.Fatal(err)
	}
	return ls, ds, qtest
}

// copyDir clones a WAL directory — the crash image a restart recovers from.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func searchAll(t *testing.T, ls *LiveSystem, qs [][]float32, k int) [][]int {
	t.Helper()
	out := make([][]int, len(qs))
	for i, q := range qs {
		ids, _, err := ls.Search(context.Background(), q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ids
	}
	return out
}

func TestLiveInsertVisibleDeleteMasked(t *testing.T) {
	ls, ds, _ := liveFixture(t, t.TempDir(), LiveOptions{Fsync: FsyncNone, CompactThreshold: 1 << 20})
	defer ls.Close()
	ctx := context.Background()

	// Insert the query vector itself: distance zero, so it must appear in
	// any top-k (result order is refinement order, not rank).
	q := append([]float32(nil), ds.Point(7)...)
	q[0] += 0.001
	id, err := ls.Insert(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if id != ds.Len() {
		t.Fatalf("first insert got id %d, want %d", id, ds.Len())
	}
	ids, _, err := ls.Search(ctx, q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !containsID(ids, id) {
		t.Fatalf("inserted point %d missing from %v", id, ids)
	}

	if err := ls.Delete(ctx, id); err != nil {
		t.Fatal(err)
	}
	ids, _, err = ls.Search(ctx, q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range ids {
		if got == id {
			t.Fatalf("deleted id %d still in results %v", id, ids)
		}
	}
	// Idempotent delete; unknown id errors.
	if err := ls.Delete(ctx, id); err != nil {
		t.Fatalf("re-delete: %v", err)
	}
	if err := ls.Delete(ctx, 1_000_000); err == nil {
		t.Fatal("unknown id accepted")
	}
	st := ls.Stats()
	if st.Inserts != 1 || st.Deletes != 1 || st.DeltaPoints != 1 || st.Tombstones != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got, want := ls.Live.NumPoints(), ds.Len(); got != want {
		t.Fatalf("NumPoints %d, want %d", got, want)
	}
}

// TestLiveKillAndRestart is the crash-recovery integration test: write with
// FsyncAlways, clone the WAL directory without closing (the crash image), and
// recover it twice — both recoveries must agree bit-for-bit with each other
// and with the durable write history.
func TestLiveKillAndRestart(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	ls, ds, qtest := liveFixture(t, walDir, LiveOptions{Fsync: FsyncAlways, CompactThreshold: 1 << 20})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))

	var insertedIDs []int
	var deletedIDs []int
	for i := 0; i < 40; i++ {
		v := append([]float32(nil), ds.Point(rng.Intn(ds.Len()))...)
		v[i%ds.Dim] += float32(rng.NormFloat64()) * 0.01
		id, err := ls.Insert(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		insertedIDs = append(insertedIDs, id)
		if i%5 == 4 {
			victim := insertedIDs[rng.Intn(len(insertedIDs))]
			if err := ls.Delete(ctx, victim); err != nil {
				t.Fatal(err)
			}
			deletedIDs = append(deletedIDs, victim)
		}
	}

	// Crash: clone the durable state while the system is still running.
	crashA := copyDir(t, walDir)
	crashB := copyDir(t, walDir)
	wantStats := ls.Stats()
	ls.Close()

	lsA, _, _ := liveFixture(t, crashA, LiveOptions{Fsync: FsyncAlways, CompactThreshold: 1 << 20})
	defer lsA.Close()
	lsB, _, _ := liveFixture(t, crashB, LiveOptions{Fsync: FsyncAlways, CompactThreshold: 1 << 20})
	defer lsB.Close()

	rec := lsA.Recovery
	if rec.Records != int(wantStats.Inserts+wantStats.Deletes) {
		t.Fatalf("replayed %d records, want %d", rec.Records, wantStats.Inserts+wantStats.Deletes)
	}
	if len(rec.Points) != 40 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovered %d points (%d torn bytes), want 40 clean", len(rec.Points), rec.TruncatedBytes)
	}
	for _, id := range deletedIDs {
		if _, ok := rec.Tombs[int64(id)]; !ok {
			t.Fatalf("tombstone %d lost in recovery", id)
		}
	}
	if got, want := lsA.Live.NumPoints(), ds.Len()+40-len(rec.Tombs); got != want {
		t.Fatalf("NumPoints %d after recovery, want %d", got, want)
	}

	// Bit-for-bit: two independent recoveries of the same crash image serve
	// identical results.
	gotA := searchAll(t, lsA, qtest, 10)
	gotB := searchAll(t, lsB, qtest, 10)
	if !reflect.DeepEqual(gotA, gotB) {
		t.Fatalf("recoveries diverged:\n%v\n%v", gotA, gotB)
	}
	// Deleted ids never resurface.
	dead := map[int]bool{}
	for _, id := range deletedIDs {
		dead[id] = true
	}
	for _, ids := range gotA {
		for _, id := range ids {
			if dead[id] {
				t.Fatalf("deleted id %d served after recovery", id)
			}
		}
	}
}

// TestLiveCompactionAndRestart drives the full fold loop: enough inserts to
// trigger background compaction, then a restart over the compacted directory
// (checkpoint + retired segments) must reproduce the same live state.
func TestLiveCompactionAndRestart(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	ls, ds, qtest := liveFixture(t, walDir, LiveOptions{Fsync: FsyncNone, CompactThreshold: 24})
	ctx := context.Background()

	n0 := ds.Len()
	for i := 0; i < 60; i++ {
		v := append([]float32(nil), ds.Point(i)...)
		v[0] += 0.002
		if _, err := ls.Insert(ctx, v); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := ls.Delete(ctx, n0+i-3); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for ls.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no compaction: %+v", ls.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for ls.Stats().CompactInFlight {
		time.Sleep(time.Millisecond)
	}
	st := ls.Stats()
	if st.CompactionErrors != 0 {
		t.Fatalf("compaction errors: %+v", st)
	}
	// Searches after the fold still mask tombstones and serve all points.
	ids, _, err := ls.Search(ctx, ds.Point(6), 5, nil)
	if err != nil || len(ids) != 5 {
		t.Fatalf("post-compaction search: %v %v", ids, err)
	}
	wantPoints := ls.Live.NumPoints()

	crash := copyDir(t, walDir)
	ls.Close()

	re, _, _ := liveFixture(t, crash, LiveOptions{Fsync: FsyncNone, CompactThreshold: 1 << 20})
	defer re.Close()
	if re.Recovery.CheckpointPoints == 0 {
		t.Fatal("restart did not load the checkpoint")
	}
	if got := re.Live.NumPoints(); got != wantPoints {
		t.Fatalf("NumPoints %d after restart, want %d", got, wantPoints)
	}
	if len(re.Recovery.Points) != 60 {
		t.Fatalf("restart folded %d points, want 60", len(re.Recovery.Points))
	}
	if got := searchAll(t, re, qtest, 10); len(got) != len(qtest) {
		t.Fatal("restart searches failed")
	}
	for _, idlist := range searchAll(t, re, qtest, 10) {
		for _, id := range idlist {
			if _, dead := re.Recovery.Tombs[int64(id)]; dead {
				t.Fatalf("tombstoned id %d served after compacted restart", id)
			}
		}
	}
}

// TestLiveConcurrentHammer races inserts, deletes, searches and background
// compactions; run under -race it is the non-blocking-compaction check.
func TestLiveConcurrentHammer(t *testing.T) {
	ls, ds, qtest := liveFixture(t, t.TempDir(), LiveOptions{Fsync: FsyncNone, CompactThreshold: 32})
	defer ls.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []int
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := append([]float32(nil), ds.Point(rng.Intn(ds.Len()))...)
				v[0] += float32(rng.NormFloat64()) * 0.01
				id, err := ls.Insert(ctx, v)
				if err != nil {
					errs <- err
					return
				}
				mine = append(mine, id)
				if i%7 == 6 {
					if err := ls.Delete(ctx, mine[rng.Intn(len(mine))]); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(100 + g))
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := qtest[rng.Intn(len(qtest))]
				if _, _, err := ls.Search(ctx, q, 10, nil); err != nil {
					errs <- err
					return
				}
			}
		}(int64(200 + g))
	}

	deadline := time.Now().Add(4 * time.Second)
	for ls.Stats().Compactions < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := ls.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction under load: %+v", st)
	}
	if st.CompactionErrors != 0 {
		t.Fatalf("compaction errors under load: %+v", st)
	}
}

// TestServeLiveEndpoints exercises the HTTP write path: insert, search sees
// the point, delete, 404 on unknown id, 400 on malformed input, and the
// ingest telemetry block on /stats and /metrics.
func TestServeLiveEndpoints(t *testing.T) {
	ls, ds, _ := liveFixture(t, t.TempDir(), LiveOptions{Fsync: FsyncNone, CompactThreshold: 1 << 20})
	defer ls.Close()
	srv := httptest.NewServer(ServeLive(ls, ServeOptions{}))
	defer srv.Close()

	post := func(path string, body any) (*http.Response, map[string]any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	vec := append([]float32(nil), ds.Point(3)...)
	vec[0] += 0.001
	resp, out := post("/insert", map[string]any{"vector": vec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %v", resp.StatusCode, out)
	}
	id := int(out["id"].(float64))
	if id != ds.Len() {
		t.Fatalf("insert id %d, want %d", id, ds.Len())
	}

	resp, out = post("/search", map[string]any{"vector": vec, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %v", resp.StatusCode, out)
	}
	found := false
	for _, v := range out["ids"].([]any) {
		if int(v.(float64)) == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted point %d missing over HTTP: %v", id, out["ids"])
	}

	resp, out = post("/delete", map[string]any{"id": id})
	if resp.StatusCode != http.StatusOK || int(out["deleted"].(float64)) != id {
		t.Fatalf("delete status %d: %v", resp.StatusCode, out)
	}
	resp, _ = post("/delete", map[string]any{"id": 999999})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-id delete status %d, want 404", resp.StatusCode)
	}
	resp, _ = post("/delete", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-id delete status %d, want 400", resp.StatusCode)
	}
	for _, bad := range []any{
		map[string]any{"vector": []float32{1, 2}},                                      // wrong dim
		map[string]any{"vector": []any{"a", "b", "c", "d", "e", "f", "g", "h"}},        // not numbers
		map[string]any{"vector": []any{1, 2, 3, 4, 5, 6, 7, json.RawMessage("1e999")}}, // non-finite
	} {
		resp, _ = post("/insert", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad insert %v: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Telemetry: ingest block present with the request history.
	for _, path := range []string{"/stats", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var payload map[string]any
		json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		ing, ok := payload["ingest"].(map[string]any)
		if !ok {
			t.Fatalf("%s has no ingest block: %v", path, payload)
		}
		if ing["inserts"].(float64) != 1 || ing["deletes"].(float64) != 1 {
			t.Fatalf("%s ingest block %v", path, ing)
		}
	}
}

// TestLiveSharded covers the sharded write path: durable writes, merged
// searches, per-shard routing tallies, and compaction disabled.
func TestLiveSharded(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	ds := Generate(DatasetConfig{Name: "live-sh", N: 900, Dim: 8, Clusters: 5, Std: 0.05, Ndom: 256, Seed: 51})
	log := GenLog(ds, LogConfig{PoolSize: 40, Length: 200, ZipfS: 1.3, Perturb: 0.005, Seed: 52})
	wl, qtest := log.Split(8)
	ls, err := OpenLive(ds, wl,
		Options{Tio: 0, Shards: 3},
		core.Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6},
		MaintainOptions{WindowSize: 1 << 20},
		LiveOptions{WalDir: walDir, Fsync: FsyncNone, CompactThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	ctx := context.Background()

	q := append([]float32(nil), ds.Point(11)...)
	q[1] += 0.001
	id, err := ls.Insert(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := ls.Insert(ctx, ds.Point(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Delete(ctx, 5); err != nil { // a base id, owned by some shard
		t.Fatal(err)
	}

	ids, _, err := ls.Search(ctx, q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !containsID(ids, id) {
		t.Fatalf("sharded merged search missed inserted point %d: %v", id, ids)
	}

	// Compaction never runs sharded, even far past the threshold.
	time.Sleep(50 * time.Millisecond)
	st := ls.Stats()
	if st.Compactions != 0 || st.CompactInFlight {
		t.Fatalf("sharded deployment compacted: %+v", st)
	}
	if st.DeltaPoints != 13 {
		t.Fatalf("delta %d, want 13", st.DeltaPoints)
	}

	// Routing tallies cover every write.
	stats := wireIngestStats(ls)()
	var ins, del int64
	for _, sw := range stats.ShardWrites {
		ins += sw.Inserts
		del += sw.Deletes
	}
	if ins != 13 || del != 1 {
		t.Fatalf("shard writes %v: %d inserts %d deletes, want 13 and 1", stats.ShardWrites, ins, del)
	}
	_ = qtest
}
