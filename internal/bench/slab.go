package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"exploitbit"
	"exploitbit/internal/core"
)

// SlabReport records the slab-vs-map Phase-2 comparison (BENCH_4.json): the
// same engines, the same queries, the same bit-identical results, with the
// cached codes held either in the slab-packed arena scanned by the fused
// blocked kernel or in the per-entry map-backed Cache. NO-CACHE and EXACT do
// not store packed codes, so their two columns are a control pair — any
// spread there is benchmark noise, not a slab effect.
type SlabReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	K           int    `json:"k"`

	// Reduction is single-threaded in both columns so the figures compare
	// the kernels, not the goroutine fan-out.
	Rows []SlabRow `json:"rows"`
}

// SlabRow is one method's wall-clock pair.
type SlabRow struct {
	Method    string  `json:"method"`
	MapNsOp   float64 `json:"map_ns_op"`
	SlabNsOp  float64 `json:"slab_ns_op"`
	Speedup   float64 `json:"speedup"`
	SlabCells int     `json:"cached_items"` // cached items (slab arena for HC-*, map cache otherwise)
}

// RunSlab measures end-to-end SearchInto wall-clock on the all-cached
// NUS-WIDE lab for NO-CACHE, EXACT and HC-O, with the slab layout on and off,
// and writes the report as indented JSON to jsonPath (skipped when empty),
// echoing a summary to w.
func RunSlab(w io.Writer, env *Env, jsonPath string) (*SlabReport, error) {
	lab := env.Lab("NUS-WIDE")
	k := env.Scale.K
	rep := &SlabReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		K:           k,
	}

	measure := func(m exploitbit.Method, noSlab bool) (nsOp float64, cached int, err error) {
		eng, err := lab.Sys.EngineWith(core.Config{
			Method:                  m,
			CacheBytes:              1 << 30, // covering budget: the all-cached steady state
			ParallelReduceThreshold: -1,
			NoSlab:                  noSlab,
		})
		if err != nil {
			return 0, 0, err
		}
		dst := make([]int, 0, k)
		// Warm the scratch pool and any lazy state before timing.
		for _, q := range lab.QTest {
			if _, _, err = eng.SearchInto(q, k, dst[:0]); err != nil {
				return 0, 0, err
			}
		}
		// Best of three: end-to-end wall-clock is noisy on shared runners, and
		// the minimum is the run least disturbed by unrelated load.
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, serr := eng.SearchInto(lab.QTest[i%len(lab.QTest)], k, dst[:0]); serr != nil {
						b.Fatal(serr)
					}
				}
			})
			if ns := nsPerOp(r); rep == 0 || ns < nsOp {
				nsOp = ns
			}
		}
		if !noSlab {
			cached = eng.CacheLen()
		}
		return nsOp, cached, nil
	}

	for _, m := range []exploitbit.Method{exploitbit.NoCache, exploitbit.Exact, exploitbit.HCO} {
		mapNs, _, err := measure(m, true)
		if err != nil {
			return nil, err
		}
		slabNs, cached, err := measure(m, false)
		if err != nil {
			return nil, err
		}
		row := SlabRow{Method: string(m), MapNsOp: mapNs, SlabNsOp: slabNs, SlabCells: cached}
		if slabNs > 0 {
			row.Speedup = mapNs / slabNs
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(w, "slab: %-8s map %8.0f ns/op  slab %8.0f ns/op  %.2fx  (%d cached items)\n",
			row.Method, row.MapNsOp, row.SlabNsOp, row.Speedup, row.SlabCells)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return nil, err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "slab: report written to %s\n", jsonPath)
	}
	return rep, nil
}
