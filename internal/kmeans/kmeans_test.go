package kmeans

import (
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

func TestRunBasics(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Name: "t", N: 300, Dim: 8, Clusters: 4, Std: 0.02, Seed: 1})
	res := Run(ds, 4, 10, 2)
	if len(res.Centers) != 4 || len(res.Assign) != 300 {
		t.Fatalf("shape: %d centers, %d assigns", len(res.Centers), len(res.Assign))
	}
	// Every point must be assigned to its nearest center.
	for i := 0; i < ds.Len(); i++ {
		c := res.Assign[i]
		d := vec.SqDist(ds.Point(i), res.Centers[c])
		for j := range res.Centers {
			if vec.SqDist(ds.Point(i), res.Centers[j]) < d-1e-9 {
				t.Fatalf("point %d assigned to %d but %d is closer", i, c, j)
			}
		}
	}
}

func TestRunReducesWithinClusterVariance(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Name: "t", N: 400, Dim: 6, Clusters: 5, Std: 0.02, Seed: 3})
	res := Run(ds, 5, 12, 4)
	// Mean distance to assigned center must be far below mean pairwise-ish
	// distance (use distance to a fixed point as a cheap proxy for scale).
	var within, scale float64
	ref := ds.Point(0)
	for i := 0; i < ds.Len(); i++ {
		within += vec.Dist(ds.Point(i), res.Centers[res.Assign[i]])
		scale += vec.Dist(ds.Point(i), ref)
	}
	if within > scale/3 {
		t.Fatalf("clustering weak: within=%v scale=%v", within, scale)
	}
}

func TestRunEdgeCases(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Name: "t", N: 5, Dim: 3, Seed: 5})
	// k > n clamps.
	res := Run(ds, 10, 3, 6)
	if len(res.Centers) != 5 {
		t.Fatalf("k not clamped: %d", len(res.Centers))
	}
	// k < 1 clamps to 1.
	res = Run(ds, 0, 3, 7)
	if len(res.Centers) != 1 {
		t.Fatalf("k floor: %d", len(res.Centers))
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("single-cluster assignment broken")
		}
	}
	// Deterministic under a fixed seed.
	a := Run(ds, 2, 5, 8)
	b := Run(ds, 2, 5, 8)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("nondeterministic")
		}
	}
}

type emptySource struct{}

func (emptySource) Len() int            { return 0 }
func (emptySource) Point(int) []float32 { return nil }

func TestRunEmpty(t *testing.T) {
	res := Run(emptySource{}, 3, 3, 1)
	if res.Centers != nil || res.Assign != nil {
		t.Fatal("empty input should produce empty result")
	}
}
