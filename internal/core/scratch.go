package core

import (
	"context"

	"exploitbit/internal/bounds"
	"exploitbit/internal/cache"
	"exploitbit/internal/multistep"
	"exploitbit/internal/vec"
)

// searchScratch is the per-query working set of Search, pooled on the engine
// so the steady-state cache-hit path performs zero heap allocations: the
// candidate states, bound arrays, query LUT, refinement buffers, fetch
// buffer and the exact-hit map all survive between queries and are resized
// only when a query is larger than any seen before.
type searchScratch struct {
	eng *Engine
	st  QueryStats
	ctx context.Context // request context of the query in flight

	reduceScratch

	// ubTop is the serial slab kernel's running-threshold heap (distinct from
	// reduceScratch.top, which kthBoundsSq scrambles during selection).
	ubTop *vec.TopK

	lut      *bounds.QueryLUT
	fetchBuf []float32
	codes    []int

	// mergeIDs holds the tombstone-filtered Phase-1 ids of a merged search;
	// candidate funcs may return shared slices, so filtering never happens in
	// place.
	mergeIDs []int

	mcands    []multistep.Candidate
	rbuf      []multistep.Result
	msc       multistep.Scratch
	exactByID map[int32][]float32

	// fetch is the Phase 3 fetch function, bound once per scratch so that
	// per-query calls do not allocate a closure.
	fetch multistep.Fetch
}

func newSearchScratch(e *Engine) *searchScratch {
	sc := &searchScratch{
		eng:           e,
		reduceScratch: newReduceScratch(),
		fetchBuf:      make([]float32, e.ds.Dim),
		codes:         make([]int, e.ds.Dim),
		exactByID:     make(map[int32][]float32),
	}
	sc.fetch = sc.fetchPoint
	return sc
}

// fetchPoint is Phase 3's fetch: exact cache hits come from RAM, everything
// else from the point file, charging I/O statistics and feeding the LRU
// admission path.
func (sc *searchScratch) fetchPoint(id int) ([]float32, error) {
	if len(sc.exactByID) > 0 {
		if p, ok := sc.exactByID[int32(id)]; ok {
			return p, nil // EXACT cache hit: RAM, no I/O
		}
	}
	// Every fetch is a disk page read: an abandoned request stops paying
	// I/O here, mid-refinement, not just before Phase 3 starts.
	if err := sc.ctx.Err(); err != nil {
		return nil, err
	}
	e := sc.eng
	p, err := e.pf.FetchCtx(sc.ctx, id, sc.fetchBuf)
	if err != nil {
		return nil, err
	}
	sc.st.Fetched++
	sc.st.PageReads += int64(e.pf.PagesPerPoint())
	if e.cfg.Policy == cache.LRU {
		e.admitLRU(id, p, sc.codes)
	}
	return p, nil
}

// ubTopFor returns the scratch's running-threshold heap re-armed for k.
func (sc *searchScratch) ubTopFor(k int) *vec.TopK {
	if sc.ubTop == nil {
		sc.ubTop = vec.NewTopK(k)
	} else {
		sc.ubTop.Reset(k)
	}
	return sc.ubTop
}

// grow returns s resized to n, reallocating only on growth beyond capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func (e *Engine) getScratch() *searchScratch {
	return e.scratch.Get().(*searchScratch)
}

func (e *Engine) putScratch(sc *searchScratch) {
	sc.ctx = nil // do not retain request-scoped values past the query
	e.scratch.Put(sc)
}
