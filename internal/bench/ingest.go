package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"exploitbit"
	"exploitbit/internal/core"
)

// IngestReport records the mixed read/write scenario (BENCH_7.json): a live
// system serves a steady search workload while points stream in and out
// through the WAL-backed write path, crossing at least one background
// compaction. The rows measure search cost before ingest (clean base),
// during ingest (delta overlay live, compaction racing the reads), and after
// the writes drain (delta folded) — steady search latency across the three
// phases is the scenario's claim.
type IngestReport struct {
	GeneratedAt string `json:"generated_at"`
	K           int    `json:"k"`
	BaseN       int    `json:"base_points"`

	Inserts     int64 `json:"inserts"`
	Deletes     int64 `json:"deletes"`
	Compactions int64 `json:"compactions"`
	WalBytes    int64 `json:"final_wal_bytes"`
	DeltaLeft   int   `json:"final_delta_points"`

	Rows []IngestRow `json:"rows"`
}

// IngestRow is one phase's measured search cost.
type IngestRow struct {
	Phase        string  `json:"phase"`
	Queries      int     `json:"queries"`
	AvgWallUs    float64 `json:"avg_wall_us"`
	AvgPageReads float64 `json:"avg_page_reads"`
	AvgRemaining float64 `json:"avg_remaining"`
}

// RunIngest measures search cost through a burst of live writes and writes
// the report as indented JSON to jsonPath (skipped when empty), echoing a
// summary to w.
func RunIngest(w io.Writer, env *Env, jsonPath string) (*IngestReport, error) {
	const k = 5
	const budget = int64(8 << 10)
	const nInsert = 600
	const nDelete = 120

	ds := exploitbit.Generate(exploitbit.DatasetConfig{
		Name: "ingest-mix", N: 3000, Dim: 12, Clusters: 10, Std: 0.03,
		Ndom: 256, Seed: 31, ValueCoherence: 0.7,
	})
	qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 200, Length: 800, ZipfS: 1.2, Perturb: 0.005, Seed: 32,
	})
	wl := qlog.Queries()
	pool := qlog.Pool

	walRoot, err := os.MkdirTemp(env.Dir, "ingest-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walRoot)

	ls, err := exploitbit.OpenLive(ds, wl,
		exploitbit.Options{Dir: env.Dir, Tio: env.Tio, WorkloadK: k},
		core.Config{Method: exploitbit.HCO, CacheBytes: budget},
		exploitbit.MaintainOptions{WindowSize: 1 << 20}, // no drift rebuilds: isolate compaction
		exploitbit.LiveOptions{
			WalDir:           filepath.Join(walRoot, "wal"),
			Fsync:            exploitbit.FsyncNone,
			CompactThreshold: nInsert / 2, // cross the threshold mid-burst
		})
	if err != nil {
		return nil, err
	}
	defer ls.Close()
	ctx := context.Background()

	measure := func(phase string, n int) (IngestRow, error) {
		var agg core.Aggregate
		start := time.Now()
		for i := 0; i < n; i++ {
			_, st, err := ls.Search(ctx, pool[i%len(pool)], k, nil)
			if err != nil {
				return IngestRow{}, err
			}
			agg.Add(st)
		}
		wall := time.Since(start)
		return IngestRow{
			Phase:        phase,
			Queries:      n,
			AvgWallUs:    float64(wall.Microseconds()) / float64(n),
			AvgPageReads: agg.AvgPageReads(),
			AvgRemaining: agg.AvgRemaining(),
		}, nil
	}

	rep := &IngestReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		K:           k,
		BaseN:       ds.Len(),
	}
	row, err := measure("before", 64)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row)

	// Mixed phase: writes interleave with searches. Every 8th write is a
	// delete of an earlier point; every 4th operation runs a search between
	// writes so the overlay and compaction race live reads.
	var agg core.Aggregate
	searches := 0
	wallDuring := time.Duration(0)
	deleted := 0
	for i := 0; i < nInsert; i++ {
		v := ds.Point(i % ds.Len())
		id, err := ls.Insert(ctx, v)
		if err != nil {
			return nil, err
		}
		if deleted < nDelete && i%8 == 7 {
			if err := ls.Delete(ctx, id); err != nil {
				return nil, err
			}
			deleted++
		}
		if i%4 == 3 {
			t := time.Now()
			_, st, err := ls.Search(ctx, pool[i%len(pool)], k, nil)
			if err != nil {
				return nil, err
			}
			wallDuring += time.Since(t)
			agg.Add(st)
			searches++
		}
	}
	rep.Rows = append(rep.Rows, IngestRow{
		Phase:        "during",
		Queries:      searches,
		AvgWallUs:    float64(wallDuring.Microseconds()) / float64(searches),
		AvgPageReads: agg.AvgPageReads(),
		AvgRemaining: agg.AvgRemaining(),
	})

	// Drain: the threshold fired mid-burst; wait for the compaction to land.
	deadline := time.Now().Add(60 * time.Second)
	for ls.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: no compaction landed (stats %+v)", ls.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for ls.Stats().CompactInFlight {
		time.Sleep(time.Millisecond)
	}

	row, err = measure("after", 64)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row)

	st := ls.Stats()
	rep.Inserts = st.Inserts
	rep.Deletes = st.Deletes
	rep.Compactions = st.Compactions
	rep.WalBytes = st.WalBytes
	rep.DeltaLeft = st.DeltaPoints

	for _, r := range rep.Rows {
		fmt.Fprintf(w, "ingest: %-7s %3d queries  %8.1f µs/q  %6.1f pages/q  %6.1f C_refine\n",
			r.Phase, r.Queries, r.AvgWallUs, r.AvgPageReads, r.AvgRemaining)
	}
	fmt.Fprintf(w, "ingest: %d inserts, %d deletes, %d compaction(s), %d delta points left, %d WAL bytes retained\n",
		st.Inserts, st.Deletes, st.Compactions, st.DeltaPoints, st.WalBytes)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return nil, err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "ingest: report written to %s\n", jsonPath)
	}
	return rep, nil
}
