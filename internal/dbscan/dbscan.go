// Package dbscan implements density-based clustering on top of the cached
// kNN engine — the second "advanced operation" of the paper's conclusion.
//
// The variant implemented is the standard kNN-graph approximation of DBSCAN:
// a point is a core point if its minPts-th nearest neighbor lies within eps
// (exactly DBSCAN's core test), and clusters are the connected components of
// core points linked through their kNN edges of length <= eps, with border
// points attached to a neighboring core. Every kNN probe runs through
// Algorithm 1, so the histogram cache absorbs the otherwise crushing I/O of
// n kNN queries (the engine's dataset points themselves are the "workload",
// making HFF and F′ construction exact).
//
// With minPts <= k and an exact candidate index, the result equals classic
// DBSCAN whenever each core point's eps-neighborhood holds at most k points;
// denser neighborhoods may split clusters that only connect through edges
// beyond the k nearest — the usual, documented kNN-DBSCAN approximation.
package dbscan

import (
	"fmt"

	"exploitbit/internal/core"
	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

// Noise is the label of unclustered points.
const Noise = -1

// Result holds cluster labels and execution statistics.
type Result struct {
	// Labels[i] is point i's cluster id (0-based) or Noise.
	Labels []int
	// Clusters is the number of clusters found.
	Clusters int
	// Cores counts core points.
	Cores int
	Stats core.Aggregate
}

// Run clusters the engine's dataset with parameters eps and minPts, probing
// k >= minPts neighbors per point (larger k tightens the approximation).
func Run(eng *core.Engine, ds *dataset.Dataset, eps float64, minPts, k int) (*Result, error) {
	if minPts < 2 {
		return nil, fmt.Errorf("dbscan: minPts must be >= 2, got %d", minPts)
	}
	if k < minPts {
		k = minPts
	}
	if eps <= 0 {
		return nil, fmt.Errorf("dbscan: eps must be positive, got %v", eps)
	}
	n := ds.Len()
	eng.ResetStats()

	// Pass 1: kNN probe per point; record core flags and in-eps edges.
	isCore := make([]bool, n)
	edges := make([][]int32, n)
	for i := 0; i < n; i++ {
		p := ds.Point(i)
		ids, _, err := eng.Search(p, k)
		if err != nil {
			return nil, fmt.Errorf("dbscan: probing point %d: %w", i, err)
		}
		within := 1 // the point itself counts toward density (classic definition)
		for _, id := range ids {
			if id == i {
				continue
			}
			if vec.Dist(p, ds.Point(id)) <= eps {
				within++
				edges[i] = append(edges[i], int32(id))
			}
		}
		isCore[i] = within >= minPts
	}

	// Pass 2: union-find over core-core edges.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < n; i++ {
		if !isCore[i] {
			continue
		}
		for _, j := range edges[i] {
			if isCore[j] {
				union(int32(i), j)
			}
		}
	}

	// Pass 3: label clusters; attach borders to any adjacent core.
	res := &Result{Labels: make([]int, n)}
	clusterOf := make(map[int32]int)
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	for i := 0; i < n; i++ {
		if !isCore[i] {
			continue
		}
		res.Cores++
		root := find(int32(i))
		c, ok := clusterOf[root]
		if !ok {
			c = len(clusterOf)
			clusterOf[root] = c
		}
		res.Labels[i] = c
	}
	res.Clusters = len(clusterOf)
	for i := 0; i < n; i++ {
		if isCore[i] || res.Labels[i] != Noise {
			continue
		}
		for _, j := range edges[i] {
			if isCore[j] {
				res.Labels[i] = res.Labels[j]
				break
			}
		}
	}
	res.Stats = eng.Aggregate()
	return res, nil
}
