// Package bounds derives the conservative lower and upper distance bounds of
// Section 3.2 from encoded (approximate) points: every bucket code pins the
// original coordinate inside a real interval, so the code array pins the
// point inside a bounding rectangle, and
//
//	dist⁻_q(p′) ≤ dist_q(p) ≤ dist⁺_q(p′)
//
// always holds. Those bounds power the early-pruning and true-result
// detection of Algorithm 1.
package bounds

import (
	"math"

	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/vec"
)

// Table precomputes, once per histogram, the real-valued edges of every
// bucket so per-candidate bound computation is a couple of array lookups per
// dimension. It serves both global histograms (one shared edge table) and
// per-dimension histograms (one edge table per dimension).
type Table struct {
	dim    int
	shared bool
	loEdge [][]float64 // [1][B] when shared, else [dim][B]
	hiEdge [][]float64
}

// NewTable builds the edge table for a global histogram over domain dom,
// for dim-dimensional points.
func NewTable(h *histogram.Histogram, dom vec.Domain, dim int) *Table {
	lo, hi := edges(h, dom)
	return &Table{dim: dim, shared: true, loEdge: [][]float64{lo}, hiEdge: [][]float64{hi}}
}

// NewTablePerDim builds edge tables for an individual-dimension histogram.
func NewTablePerDim(p *histogram.PerDim, dom vec.Domain) *Table {
	t := &Table{dim: p.Dim(), loEdge: make([][]float64, p.Dim()), hiEdge: make([][]float64, p.Dim())}
	for j, h := range p.H {
		t.loEdge[j], t.hiEdge[j] = edges(h, dom)
	}
	return t
}

func edges(h *histogram.Histogram, dom vec.Domain) (lo, hi []float64) {
	lo = make([]float64, h.B())
	hi = make([]float64, h.B())
	for b := 0; b < h.B(); b++ {
		l, u := h.Interval(b)
		lo[b] = dom.BinLo(l)
		hi[b] = dom.BinHi(u)
	}
	return lo, hi
}

// Dim returns the dimensionality the table serves.
func (t *Table) Dim() int { return t.dim }

func (t *Table) edgesFor(j int) (lo, hi []float64) {
	if t.shared {
		return t.loEdge[0], t.hiEdge[0]
	}
	return t.loEdge[j], t.hiEdge[j]
}

// contrib computes one dimension's squared contributions to the lower and
// upper bound: the squared distance to the nearest edge (zero when q lies
// inside the bucket interval) and to the farther corner. Every bound in this
// package — reference, packed and LUT — sums exactly these terms in
// dimension order, which is what makes the fast paths bitwise-identical to
// the reference.
func contrib(qj, l, u float64) (loSq, upSq float64) {
	dl, du := qj-l, u-qj // distances to the near edges (sign-aware)
	a, b := math.Abs(dl), math.Abs(du)
	far := a
	if b > far {
		far = b
	}
	upSq = far * far
	if dl < 0 { // q left of interval
		loSq = dl * dl
	} else if du < 0 { // q right of interval
		loSq = du * du
	}
	return loSq, upSq
}

// Bounds computes (dist⁻, dist⁺) of the encoded point codes from query q.
func (t *Table) Bounds(q []float32, codes []int) (lb, ub float64) {
	sLo, sUp := t.BoundsSq(q, codes)
	return math.Sqrt(sLo), math.Sqrt(sUp)
}

// BoundsSq is Bounds without the final square roots. Algorithm 1 only
// compares bounds against each other and against exact distances, so the
// engine works in squared space throughout and defers sqrt until (and
// unless) a real distance is needed.
func (t *Table) BoundsSq(q []float32, codes []int) (lbSq, ubSq float64) {
	var sLo, sUp float64
	for j, code := range codes {
		loE, hiE := t.edgesFor(j)
		lo, up := contrib(float64(q[j]), loE[code], hiE[code])
		sLo += lo
		sUp += up
	}
	return sLo, sUp
}

// BoundsPacked computes bounds directly from a packed word array, avoiding
// an intermediate decode.
func (t *Table) BoundsPacked(q []float32, words []uint64, c encoding.Codec) (lb, ub float64) {
	sLo, sUp := t.BoundsSqPacked(q, words, c)
	return math.Sqrt(sLo), math.Sqrt(sUp)
}

// BoundsSqPacked is BoundsPacked in squared space — the reference
// implementation that QueryLUT must agree with exactly.
func (t *Table) BoundsSqPacked(q []float32, words []uint64, c encoding.Codec) (lbSq, ubSq float64) {
	var sLo, sUp float64
	for j := 0; j < t.dim; j++ {
		code := c.At(words, j)
		loE, hiE := t.edgesFor(j)
		lo, up := contrib(float64(q[j]), loE[code], hiE[code])
		sLo += lo
		sUp += up
	}
	return sLo, sUp
}

// ErrNorm returns ‖ε(c)‖, the Euclidean norm of the error vector of
// Definition 10 (per-dimension real bucket widths) for an encoded point.
// Theorem 2's refinement-ratio estimate consumes it.
func (t *Table) ErrNorm(codes []int) float64 {
	var s float64
	for j, code := range codes {
		loE, hiE := t.edgesFor(j)
		w := hiE[code] - loE[code]
		s += w * w
	}
	return math.Sqrt(s)
}

// Rect computes (dist⁻, dist⁺) between q and an explicit rectangle
// [lo, hi] — the bound computation for mHC-R buckets and R-tree MBRs.
func Rect(q, lo, hi []float32) (lb, ub float64) {
	sLo, sUp := RectSq(q, lo, hi)
	return math.Sqrt(sLo), math.Sqrt(sUp)
}

// RectSq is Rect in squared space.
func RectSq(q, lo, hi []float32) (lbSq, ubSq float64) {
	var sLo, sUp float64
	for j := range q {
		l, u := contrib(float64(q[j]), float64(lo[j]), float64(hi[j]))
		sLo += l
		sUp += u
	}
	return sLo, sUp
}

// RectMin computes only dist⁻ to a rectangle (the MINDIST used by R-tree
// and other tree traversals).
func RectMin(q, lo, hi []float32) float64 {
	var s float64
	for j := range q {
		qj := float64(q[j])
		if dl := float64(lo[j]) - qj; dl > 0 {
			s += dl * dl
		} else if du := qj - float64(hi[j]); du > 0 {
			s += du * du
		}
	}
	return math.Sqrt(s)
}
