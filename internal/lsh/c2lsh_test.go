package lsh

import (
	"math"
	"math/rand"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

func testDS(n, dim int, seed int64) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 5, Std: 0.05, Seed: seed})
}

func bruteKNN(ds *dataset.Dataset, q []float32, k int) []int {
	top := vec.NewTopK(k)
	for i := 0; i < ds.Len(); i++ {
		top.Push(vec.Dist(q, ds.Point(i)), i)
	}
	ids, _ := top.Results()
	return ids
}

func TestCollisionProb(t *testing.T) {
	// p is a decreasing function of distance with p(0)=1.
	if got := collisionProb(0); got != 1 {
		t.Fatalf("p(0) = %v", got)
	}
	prev := 1.0
	for _, r := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		p := collisionProb(r)
		if p <= 0 || p >= prev {
			t.Fatalf("p(%v) = %v not strictly decreasing below %v", r, p, prev)
		}
		prev = p
	}
	// Known anchor: p(1) ≈ 0.6827 - 2/sqrt(2π)(1-e^{-1/2}) ≈ 0.3695...
	// (exact value of the 2-stable collision probability at s=w).
	if p := collisionProb(1); math.Abs(p-0.3694) > 0.01 {
		t.Fatalf("p(1) = %v, expected ≈ 0.369", p)
	}
}

func TestBuildParameters(t *testing.T) {
	ds := testDS(2000, 16, 1)
	ix := Build(ds, Params{Seed: 2})
	if ix.M() < 8 || ix.M() > 96 {
		t.Fatalf("m = %d outside [8,96]", ix.M())
	}
	if ix.L() < 1 || ix.L() > ix.M() {
		t.Fatalf("l = %d outside [1,%d]", ix.L(), ix.M())
	}
	if ix.W() <= 0 {
		t.Fatalf("w = %v", ix.W())
	}
	// Threshold must sit strictly between p2·m and p1·m for the collision
	// counting to separate near from far points.
	p1, p2 := collisionProb(1), collisionProb(2)
	if f := float64(ix.L()) / float64(ix.M()); f <= p2 || f >= p1 {
		t.Fatalf("alpha = %v not in (p2=%v, p1=%v)", f, p2, p1)
	}
}

func TestCandidatesAreCApproximate(t *testing.T) {
	// C2LSH guarantees c-approximate kNN (here c=2): the k-th best distance
	// reachable within the candidate set must be at most c times the true
	// k-th distance, with high probability. Most true neighbors should also
	// appear directly.
	ds := testDS(3000, 24, 3)
	ix := Build(ds, Params{Seed: 4})
	rng := rand.New(rand.NewSource(5))
	k := 10
	hit, total, ratioOK := 0, 0, 0
	trials := 20
	for trial := 0; trial < trials; trial++ {
		q := ds.Point(rng.Intn(ds.Len()))
		res := ix.Candidates(q, k)
		if len(res.IDs) < k {
			t.Fatalf("trial %d: only %d candidates", trial, len(res.IDs))
		}
		in := make(map[int]bool, len(res.IDs))
		for _, id := range res.IDs {
			in[id] = true
		}
		trueNN := bruteKNN(ds, q, k)
		for _, id := range trueNN {
			total++
			if in[id] {
				hit++
			}
		}
		// k-th best candidate distance vs true k-th distance.
		top := vec.NewTopK(k)
		for _, id := range res.IDs {
			top.Push(vec.Dist(q, ds.Point(id)), id)
		}
		trueKth := vec.Dist(q, ds.Point(trueNN[k-1]))
		if top.Root() <= 2*trueKth+1e-12 {
			ratioOK++
		}
		if res.Radius < 1 || res.Dmax <= 0 {
			t.Fatalf("trial %d: radius %d dmax %v", trial, res.Radius, res.Dmax)
		}
	}
	if recall := float64(hit) / float64(total); recall < 0.75 {
		t.Fatalf("candidate recall %.2f < 0.75", recall)
	}
	// The 2-approximate guarantee holds with probability >= 1-δ = 0.9;
	// require at least 90% of trials to satisfy it.
	if ratioOK < trials*9/10 {
		t.Fatalf("c-approximate guarantee held in only %d/%d trials", ratioOK, trials)
	}
}

func TestCandidateSetSizeRespectsBeta(t *testing.T) {
	ds := testDS(2000, 16, 6)
	ix := Build(ds, Params{Beta: 0.05, Seed: 7})
	res := ix.Candidates(ds.Point(0), 10)
	// Collection stops once k + β·n found; one level's worth of overshoot
	// is possible (candidates arrive in batches per radius).
	if len(res.IDs) < 10 {
		t.Fatalf("too few candidates: %d", len(res.IDs))
	}
	if len(res.IDs) > 2000 {
		t.Fatalf("candidate set exceeds dataset")
	}
}

func TestCandidatesDeterministic(t *testing.T) {
	ds := testDS(1000, 8, 8)
	ix := Build(ds, Params{Seed: 9})
	q := ds.Point(42)
	a := ix.Candidates(q, 5)
	b := ix.Candidates(q, 5)
	if len(a.IDs) != len(b.IDs) || a.Radius != b.Radius {
		t.Fatal("same query produced different results")
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatal("candidate order differs between runs")
		}
	}
}

func TestCandidatesNoDuplicates(t *testing.T) {
	ds := testDS(1500, 12, 10)
	ix := Build(ds, Params{Seed: 11})
	res := ix.Candidates(ds.Point(3), 10)
	seen := make(map[int]bool)
	for _, id := range res.IDs {
		if seen[id] {
			t.Fatalf("duplicate candidate %d", id)
		}
		seen[id] = true
		if id < 0 || id >= ds.Len() {
			t.Fatalf("candidate %d out of range", id)
		}
	}
}

func TestFallbackOnTinyDataset(t *testing.T) {
	ds := testDS(20, 4, 12)
	ix := Build(ds, Params{Seed: 13})
	res := ix.Candidates(ds.Point(0), 15)
	if len(res.IDs) < 15 {
		t.Fatalf("fallback did not pad: %d candidates", len(res.IDs))
	}
}

func TestQueryDimMismatchPanics(t *testing.T) {
	ds := testDS(100, 4, 14)
	ix := Build(ds, Params{Seed: 15})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Candidates([]float32{1, 2}, 1)
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-4, 2, -2}, {0, 5, 0}, {4, 4, 1}, {-1, 4, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestVirtualRehashingWindowsGrow(t *testing.T) {
	// Radius growth must be geometric in C and candidates monotone: querying
	// with larger k cannot shrink the discovered radius.
	ds := testDS(2000, 16, 16)
	ix := Build(ds, Params{Seed: 17})
	q := ds.Point(1)
	small := ix.Candidates(q, 1)
	large := ix.Candidates(q, 50)
	if large.Radius < small.Radius {
		t.Fatalf("radius shrank with larger k: %d vs %d", large.Radius, small.Radius)
	}
	// Radii are powers of C (=2).
	for _, r := range []int{small.Radius, large.Radius} {
		if r&(r-1) != 0 {
			t.Fatalf("radius %d is not a power of 2", r)
		}
	}
}
