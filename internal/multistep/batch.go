// Cross-query coalesced multi-step refinement: the Seidl–Kriegel schedule
// lifted to a batch of queries sharing one disk. Queries in a burst tend to
// have surviving candidates on overlapping data-file pages (qwLSH's
// observation for LSH workloads); refining them independently reads those
// pages once per query. SearchBatchSq instead drives every query's own
// optimal schedule against a shared unit cache: a fetch unit (data page or
// tree leaf) is read from disk the first time any query's schedule demands
// it and served from memory for every later demand, so the batch's total
// refinement I/O is the union — not the sum — of the per-query fetch sets.
//
// Correctness: each query processes its own candidates in ascending
// (LBSq, ID) order under its own stop rule, and a unit's contents are
// distributed to a query only when that query's cursor reaches one of its
// members — exactly when the per-query SearchGroupsSq would have loaded it.
// Every query therefore pushes exactly the distances it would push when
// searched alone, in the same order, and terminates independently at the
// same point; only the number of physical reads changes. The global
// schedule fetches the unit whose best unprocessed member has the smallest
// (LBSq, ID) among all still-running queries, so a page is fetched exactly
// when its best member's lower bound beats some query's current k-th
// distance — per-query optimality is preserved, never weakened, by sharing.
package multistep

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"exploitbit/internal/vec"
)

// BatchQuery is one query of a coalesced refinement batch, carrying the
// survivors of its own Phase-2 reduction.
type BatchQuery struct {
	// Q is the query vector.
	Q []float32
	// Seeds are candidates whose exact squared distance is already known
	// (LBSq holds it; Group is ignored). They enter the selection before any
	// unit loads, at zero I/O cost.
	Seeds []GroupCandidate
	// Pending are candidates to be resolved by loading their fetch unit
	// (Group: a data-file page for the flat engine, a leaf for the tree).
	Pending []GroupCandidate
	// K is how many neighbors this query still needs (k minus true hits).
	K int
	// Skip are identifiers already declared results (true hits): excluded
	// from the selection even when a loaded unit contains them.
	Skip map[int32]bool
	// OwnOnly restricts distribution to the query's own Pending identifiers.
	// The flat engine sets it: a page holds arbitrary points, and only this
	// query's candidates carry bounds for it. The tree engine leaves it
	// false: every resident of a visited leaf is a candidate, so the whole
	// leaf feeds the selection, exactly as in SearchGroupsSq.
	OwnOnly bool
}

// BatchFetch reads one fetch unit from disk, returning the identifiers and
// exact vectors of the points it holds. item is the index of the BatchQuery
// whose schedule demanded the unit, so implementations can attribute the
// I/O to that query's statistics. The returned slices are retained for the
// rest of the batch — implementations must not reuse their backing arrays.
type BatchFetch func(unit int32, item int) (ids []int32, pts [][]float32, err error)

// batchItem is the per-query scheduler state of one SearchBatchSq call.
type batchItem struct {
	order     []GroupCandidate // own candidates, ascending (LBSq, ID)
	cur       int              // next unprocessed candidate in order
	top       *vec.TopK
	own       map[int32]bool // Pending ids, when OwnOnly
	processed map[int32]bool // units already distributed to this query
	done      bool
}

// peek advances the item past candidates whose unit it has already consumed
// and reports the next candidate demanding a unit, marking the item done at
// its optimal stop (selection full and no unprocessed lower bound can beat
// the k-th squared distance).
func (it *batchItem) peek() (GroupCandidate, bool) {
	for it.cur < len(it.order) && it.processed[it.order[it.cur].Group] {
		it.cur++
	}
	if it.cur >= len(it.order) {
		it.done = true
		return GroupCandidate{}, false
	}
	c := it.order[it.cur]
	if it.top.Full() && c.LBSq >= it.top.Root() {
		it.done = true
		return GroupCandidate{}, false
	}
	return c, true
}

// cachedUnit is one fetch unit held in memory for the duration of the batch.
// failed marks a unit the fetcher dropped with ErrSkipCandidate (degraded
// mode): every query that demands it skips it without distribution, and the
// failure is remembered so the unit is attempted only once per batch.
type cachedUnit struct {
	ids    []int32
	pts    [][]float32
	failed bool
}

// SearchBatchSq refines a batch of queries to their k nearest, reading each
// fetch unit at most once. It returns one ascending-distance result slice
// per query (square roots taken only here) and the number of unit loads.
// Each query's results are identical to what SearchGroupsSq (or SearchSq
// with page-granular units) would return for it alone; see the package
// comment for the argument.
func SearchBatchSq(items []BatchQuery, fetch BatchFetch) ([][]Result, int, error) {
	states := make([]batchItem, len(items))
	for j := range items {
		it := &states[j]
		q := &items[j]
		if q.K < 1 {
			it.done = true
			continue
		}
		it.top = vec.NewTopK(q.K)
		for _, s := range q.Seeds {
			it.top.Push(s.LBSq, int(s.ID))
		}
		it.order = make([]GroupCandidate, len(q.Pending))
		copy(it.order, q.Pending)
		slices.SortFunc(it.order, compareGroupCandidates)
		it.processed = make(map[int32]bool)
		if q.OwnOnly {
			it.own = make(map[int32]bool, len(q.Pending))
			for _, c := range q.Pending {
				it.own[c.ID] = true
			}
		}
	}

	units := make(map[int32]*cachedUnit)
	loads := 0
	for {
		// Globally smallest (LBSq, ID) demand among still-running queries.
		best := -1
		var bestC GroupCandidate
		for j := range states {
			if states[j].done {
				continue
			}
			c, ok := states[j].peek()
			if !ok {
				continue
			}
			if best < 0 || compareGroupCandidates(c, bestC) < 0 {
				best, bestC = j, c
			}
		}
		if best < 0 {
			break
		}
		u := units[bestC.Group]
		if u == nil {
			ids, pts, err := fetch(bestC.Group, best)
			if err != nil {
				if errors.Is(err, ErrSkipCandidate) {
					units[bestC.Group] = &cachedUnit{failed: true}
					states[best].processed[bestC.Group] = true
					continue
				}
				return nil, loads, fmt.Errorf("multistep: loading unit %d: %w", bestC.Group, err)
			}
			u = &cachedUnit{ids: ids, pts: pts}
			units[bestC.Group] = u
			loads++
		}
		it := &states[best]
		it.processed[bestC.Group] = true
		if u.failed {
			continue
		}
		q := &items[best]
		for i, id := range u.ids {
			if q.Skip[id] {
				continue
			}
			if it.own != nil && !it.own[id] {
				continue
			}
			it.top.Push(vec.SqDist(q.Q, u.pts[i]), int(id))
		}
	}

	out := make([][]Result, len(items))
	for j := range states {
		if states[j].top == nil {
			continue
		}
		ids, sqDists := states[j].top.Drain()
		rs := make([]Result, len(ids))
		for i := range ids {
			rs[i] = Result{ID: ids[i], Dist: math.Sqrt(sqDists[i])}
		}
		out[j] = rs
	}
	return out, loads, nil
}
