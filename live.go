// Live-ingest facade: recovery-aware construction of a system that accepts
// inserts and deletes while serving, and the HTTP wiring that exposes the
// write path. The lifecycle is
//
//	fold, rec, _ := exploitbit.RecoverFold(ds, walDir)   // replay WAL
//	ls, _ := exploitbit.OpenLive(ds, wl, opt, cfg, mopt, lopt)
//	h := exploitbit.ServeLive(ls, exploitbit.ServeOptions{})
//
// (OpenLive performs the RecoverFold itself; the standalone helper exists for
// tests and tooling that inspect recovery without serving.)
//
// Unsharded deployments get the full loop: WAL-durable writes, merged
// searches, and background compaction folding the delta into the point file
// through the maintainer's ordinary RCU rebuild. Sharded deployments get
// durable writes and merged searches with writes routed to owning shards for
// accounting, but compaction stays disabled — the physical fold would have to
// re-partition every shard file; restart recovery folds the WAL instead. See
// DESIGN.md §16.

package exploitbit

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"exploitbit/internal/core"
	"exploitbit/internal/dataset"
	"exploitbit/internal/ingest"
	"exploitbit/internal/server"
)

// Live-ingest types re-exported through the facade vocabulary.
type (
	// LiveStats snapshots the write path (WAL, delta, compactions, replay).
	LiveStats = ingest.Stats
	// RecoverResult is the durable state replayed from a WAL directory.
	RecoverResult = ingest.RecoverResult
	// FsyncMode selects the WAL durability policy.
	FsyncMode = ingest.FsyncMode
)

// WAL fsync policies for LiveOptions.Fsync.
const (
	FsyncAlways = ingest.FsyncAlways
	FsyncNone   = ingest.FsyncNone
)

// ParseFsyncMode validates a -wal-fsync flag value.
var ParseFsyncMode = ingest.ParseFsyncMode

// ErrUnknownID marks a delete of an identifier no insert ever produced.
var ErrUnknownID = ingest.ErrUnknownID

// LiveOptions configures the live write path.
type LiveOptions struct {
	// WalDir is the write-ahead log directory (segments + checkpoint).
	// Required.
	WalDir string
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncMode
	// CompactThreshold is the delta point count that triggers background
	// compaction (default 4096; compaction only runs unsharded).
	CompactThreshold int
	// TombstoneRatio triggers compaction when tombstones taken since the
	// last one exceed this fraction of the fold (default 0.25).
	TombstoneRatio float64
}

// RecoverFold replays the WAL directory against the base dataset and returns
// the folded dataset (base plus every recovered point, identifiers dense in
// insertion order) together with the recovery record. A fresh directory folds
// to the base dataset itself.
func RecoverFold(ds *Dataset, walDir string) (*Dataset, *RecoverResult, error) {
	rec, err := ingest.Recover(walDir, ds.Len(), ds.Dim)
	if err != nil {
		return nil, nil, err
	}
	if len(rec.Points) == 0 {
		return ds, rec, nil
	}
	data := make([]float32, 0, (ds.Len()+len(rec.Points))*ds.Dim)
	data = append(data, ds.Data()...)
	for _, p := range rec.Points {
		data = append(data, p.Vec...)
	}
	return dataset.New(ds.Name, ds.Dim, data, ds.Domain), rec, nil
}

// shardWrites tallies write routing on sharded deployments.
type shardWrites struct {
	inserts []atomic.Int64
	deletes []atomic.Int64
}

// LiveSystem is a System serving reads and writes: the searcher (maintained,
// sharded or both), the ingest write path, and the recovery record of the
// startup replay.
type LiveSystem struct {
	Sys  *System
	Live *ingest.Live
	// Maintainer is the serving maintainer on unsharded deployments (also
	// the compactor), nil when sharded.
	Maintainer *Maintainer
	// ShardedMaintainer is the serving maintainer on sharded deployments,
	// nil when unsharded.
	ShardedMaintainer *ShardedMaintainer
	// Recovery records what startup replay found.
	Recovery *RecoverResult

	baseN  int
	writes *shardWrites // nil when unsharded
}

// OpenLive recovers the WAL directory, opens the system over the folded
// dataset, builds the maintained engine (sharded when opt.Shards > 1), and
// wires the live write path over it. cfg and mopt configure the maintainer
// exactly as Maintained/MaintainedSharded would.
func OpenLive(ds *Dataset, wl [][]float32, opt Options, cfg core.Config, mopt MaintainOptions, lopt LiveOptions) (*LiveSystem, error) {
	if lopt.WalDir == "" {
		return nil, fmt.Errorf("exploitbit: LiveOptions.WalDir is required")
	}
	fold, rec, err := RecoverFold(ds, lopt.WalDir)
	if err != nil {
		return nil, err
	}
	sys, err := Open(fold, wl, opt)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*LiveSystem, error) {
		sys.Close()
		return nil, err
	}
	if cfg.Tau == 0 && cfg.CacheBytes > 0 {
		// Auto-tune the code length over the folded dataset, exactly as the
		// non-live serving path does over the base.
		cfg.Tau = sys.OptimalTau(cfg.CacheBytes)
	}
	ls := &LiveSystem{Sys: sys, Recovery: rec, baseN: ds.Len()}
	icfg := ingest.Config{
		Dir:              lopt.WalDir,
		Fsync:            lopt.Fsync,
		Fold:             fold,
		BaseN:            ds.Len(),
		K:                sys.Profile.K,
		CompactThreshold: lopt.CompactThreshold,
		TombstoneRatio:   lopt.TombstoneRatio,
	}
	if opt.Shards > 1 {
		sm, err := sys.MaintainedSharded(cfg, mopt)
		if err != nil {
			return fail(err)
		}
		ls.ShardedMaintainer = sm
		ls.writes = &shardWrites{
			inserts: make([]atomic.Int64, sys.Shards()),
			deletes: make([]atomic.Int64, sys.Shards()),
		}
		icfg.Searcher = sm
		// Compaction stays off: folding the delta would re-partition every
		// shard file. Recovery folds the WAL at the next restart instead.
	} else {
		m, err := sys.Maintained(cfg, mopt)
		if err != nil {
			return fail(err)
		}
		ls.Maintainer = m
		icfg.Searcher = m
		icfg.Compactor = m
		icfg.PF = sys.PF
		icfg.BuildCands = func(fds *dataset.Dataset) core.CandidateFunc {
			cands, err := buildCandidates(fds, sys.opt)
			if err != nil {
				// Construction already validated Options.Index; only an
				// index-build failure over the fold lands here, and a nil
				// CandidateFunc fails the rebuild cleanly.
				return nil
			}
			return cands
		}
		icfg.Encode = func(p []float32) []uint64 { return m.Engine().EncodePoint(p) }
	}
	live, err := ingest.Open(icfg, rec)
	if err != nil {
		ls.closeSearcher()
		return fail(err)
	}
	ls.Live = live
	return ls, nil
}

// Insert admits one point through the live write path, attributing it to its
// home shard on sharded deployments.
func (ls *LiveSystem) Insert(ctx context.Context, vec []float32) (int, error) {
	id, err := ls.Live.Insert(ctx, vec)
	if err == nil && ls.writes != nil {
		ls.writes.inserts[ls.homeShard(id)].Add(1)
	}
	return id, err
}

// Delete tombstones one point, attributing the write to the shard that owns
// it on sharded deployments.
func (ls *LiveSystem) Delete(ctx context.Context, id int) error {
	err := ls.Live.Delete(ctx, id)
	if err == nil && ls.writes != nil {
		ls.writes.deletes[ls.homeShard(id)].Add(1)
	}
	return err
}

// homeShard routes an identifier to its owning shard: base points belong to
// the shard holding their slot, delta points to the shard that will receive
// them round-robin when a future fold re-partitions.
func (ls *LiveSystem) homeShard(id int) int {
	p := ls.Sys.partition
	if p == nil {
		return 0
	}
	if id >= 0 && id < len(p.Owner) {
		return int(p.Owner[id])
	}
	return id % p.N
}

// Search serves one merged query through the live overlay.
func (ls *LiveSystem) Search(ctx context.Context, q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return ls.Live.Search(ctx, q, k, dst)
}

// Stats snapshots the write path, with per-shard routing tallies on sharded
// deployments.
func (ls *LiveSystem) Stats() LiveStats { return ls.Live.Stats() }

// closeSearcher drains whichever maintainer is serving.
func (ls *LiveSystem) closeSearcher() {
	if ls.Maintainer != nil {
		ls.Maintainer.Close()
	}
	if ls.ShardedMaintainer != nil {
		ls.ShardedMaintainer.Close()
	}
}

// Close shuts the write path, drains the maintainer (any in-flight compaction
// completes or aborts with it), and releases the system.
func (ls *LiveSystem) Close() error {
	var err error
	if ls.Live != nil {
		err = ls.Live.Close()
	}
	ls.closeSearcher()
	if cErr := ls.Sys.Close(); err == nil {
		err = cErr
	}
	return err
}

// liveIngestor adapts LiveSystem to the HTTP handler's write interface,
// translating the ingest sentinel to the server's 404.
type liveIngestor struct{ ls *LiveSystem }

func (li liveIngestor) Insert(ctx context.Context, vec []float32) (int, error) {
	return li.ls.Insert(ctx, vec)
}

func (li liveIngestor) Delete(ctx context.Context, id int) error {
	if err := li.ls.Delete(ctx, id); err != nil {
		if errors.Is(err, ingest.ErrUnknownID) {
			return fmt.Errorf("%w (id %d)", server.ErrUnknownID, id)
		}
		return err
	}
	return nil
}

// wireIngestStats adapts the write-path snapshot (plus shard routing tallies)
// to the handler's ingest block.
func wireIngestStats(ls *LiveSystem) func() server.IngestStats {
	return func() server.IngestStats {
		s := ls.Live.Stats()
		out := server.IngestStats{
			WalBytes:             s.WalBytes,
			WalSegments:          s.WalSegments,
			DeltaPoints:          s.DeltaPoints,
			Tombstones:           s.Tombstones,
			Points:               s.Points,
			Inserts:              s.Inserts,
			Deletes:              s.Deletes,
			Compactions:          s.Compactions,
			CompactionErrors:     s.CompactionErrors,
			CompactInFlight:      s.CompactInFlight,
			ReplayedRecords:      s.ReplayedRecords,
			ReplayTruncatedBytes: s.ReplayTruncatedBytes,
		}
		if w := ls.writes; w != nil {
			out.ShardWrites = make([]server.ShardWriteStat, len(w.inserts))
			for i := range w.inserts {
				out.ShardWrites[i] = server.ShardWriteStat{
					Shard:   i,
					Inserts: w.inserts[i].Load(),
					Deletes: w.deletes[i].Load(),
				}
			}
		}
		return out
	}
}

// ServeLive exposes a live system over HTTP: everything the maintained (or
// sharded-maintained) handler serves, plus POST /insert and POST /delete and
// the ingest telemetry block on /stats and /metrics. Searches go through the
// merged overlay, so freshly inserted points are visible and deleted points
// masked immediately.
func ServeLive(ls *LiveSystem, opt ServeOptions) http.Handler {
	dim := ls.Sys.DS.Dim
	var h *server.Handler
	if ls.ShardedMaintainer != nil {
		sm := ls.ShardedMaintainer
		h = server.New(engineSearcher{search: ls.searchCtx, batch: ls.batchCtx(sm.SearchBatchCtx)}, opt.config(dim))
		h.SetRebuildStats(func() server.RebuildStats { return wireRebuildStats(sm.Stats()) })
		h.SetShardStats(wireShardStats(sm.Sharded(), sm.ShardStats, sm.CostModels))
		h.SetIOStats(wireIOStats(sm.DiskStats))
		if adaptive := sm.CostModels(); len(adaptive) > 0 && adaptive[0] != nil {
			h.SetCostModelStats(func() server.CostModelStats {
				return mergeShardCostModels(sm.CostModels())
			})
		}
	} else {
		m := ls.Maintainer
		h = server.New(engineSearcher{search: ls.searchCtx, batch: ls.batchCtx(m.SearchBatchCtx)}, opt.config(dim))
		h.SetRebuildStats(func() server.RebuildStats { return wireRebuildStats(m.Stats()) })
		h.SetIOStats(wireIOStats(m.DiskStats))
		if _, ok := m.CostModel(); ok {
			h.SetCostModelStats(func() server.CostModelStats {
				snap, _ := m.CostModel()
				return wireCostModel(snap)
			})
		}
	}
	h.SetIngestor(liveIngestor{ls})
	h.SetIngestStats(wireIngestStats(ls))
	return h
}

// searchCtx is the engineSearcher-shaped merged search.
func (ls *LiveSystem) searchCtx(ctx context.Context, q []float32, k int) ([]int, QueryStats, error) {
	return ls.Live.Search(ctx, q, k, nil)
}

// batchCtx wraps the underlying coalesced batch search with overlay
// awareness: with an empty overlay the coalesced path runs untouched; with
// live delta points or tombstones the batch degrades to per-query merged
// searches, trading coalesced refinement I/O for correct merged results.
func (ls *LiveSystem) batchCtx(coalesced func(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error)) func(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error) {
	return func(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error) {
		s := ls.Live.Stats()
		if s.DeltaPoints == 0 && s.Tombstones == 0 {
			return coalesced(ctx, qs, k)
		}
		ids := make([][]int, len(qs))
		sts := make([]QueryStats, len(qs))
		for i, q := range qs {
			var err error
			ids[i], sts[i], err = ls.Live.Search(ctx, q, k, nil)
			if err != nil {
				return nil, nil, err
			}
		}
		return ids, sts, nil
	}
}
