package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refEntries builds sorted reference entries.
type refEntry struct {
	k float64
	v int32
}

func buildBoth(t *testing.T, rng *rand.Rand, n int, bulk bool) (*Tree, []refEntry) {
	t.Helper()
	ref := make([]refEntry, n)
	for i := range ref {
		ref[i] = refEntry{k: float64(rng.Intn(n)) + rng.Float64(), v: int32(i)}
	}
	var tr *Tree
	if bulk {
		sorted := append([]refEntry(nil), ref...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].k < sorted[b].k })
		keys := make([]float64, n)
		vals := make([]int32, n)
		for i, e := range sorted {
			keys[i], vals[i] = e.k, e.v
		}
		tr = BulkLoad(keys, vals)
	} else {
		tr = &Tree{}
		for _, e := range ref {
			tr.Insert(e.k, e.v)
		}
	}
	sort.Slice(ref, func(a, b int) bool { return ref[a].k < ref[b].k })
	return tr, ref
}

func collectRange(tr *Tree, lo, hi float64) []refEntry {
	var out []refEntry
	tr.Range(lo, hi, func(k float64, v int32) bool {
		out = append(out, refEntry{k, v})
		return true
	})
	return out
}

func TestRangeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bulk := range []bool{true, false} {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(2000)
			tr, ref := buildBoth(t, rng, n, bulk)
			if tr.Len() != n {
				t.Fatalf("Len = %d, want %d", tr.Len(), n)
			}
			for rep := 0; rep < 10; rep++ {
				lo := rng.Float64() * float64(n)
				hi := lo + rng.Float64()*float64(n)/4
				got := collectRange(tr, lo, hi)
				var want []refEntry
				for _, e := range ref {
					if e.k >= lo && e.k <= hi {
						want = append(want, e)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("bulk=%v n=%d [%v,%v]: %d entries, want %d", bulk, n, lo, hi, len(got), len(want))
				}
				for i := range want {
					if got[i].k != want[i].k {
						t.Fatalf("range keys diverge at %d", i)
					}
				}
			}
		}
	}
}

func TestAscendDescendCoverEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, ref := buildBoth(t, rng, 1500, false)
	from := ref[len(ref)/2].k

	var up []float64
	tr.Ascend(from, func(k float64, v int32) bool {
		up = append(up, k)
		return true
	})
	var down []float64
	tr.Descend(from, func(k float64, v int32) bool {
		down = append(down, k)
		return true
	})
	if len(up)+len(down) != len(ref) {
		t.Fatalf("ascend %d + descend %d != %d", len(up), len(down), len(ref))
	}
	if !sort.Float64sAreSorted(up) {
		t.Fatal("ascend not ascending")
	}
	for i := 1; i < len(down); i++ {
		if down[i] > down[i-1] {
			t.Fatal("descend not descending")
		}
	}
	for _, k := range up {
		if k < from {
			t.Fatal("ascend returned key below from")
		}
	}
	for _, k := range down {
		if k >= from {
			t.Fatal("descend returned key >= from")
		}
	}
}

func TestEarlyTermination(t *testing.T) {
	tr, _ := buildBoth(t, rand.New(rand.NewSource(3)), 500, true)
	count := 0
	tr.Ascend(0, func(k float64, v int32) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("ascend visited %d, want 7", count)
	}
	count = 0
	tr.Range(0, 1e18, func(k float64, v int32) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("range visited %d, want 3", count)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	var tr Tree
	tr.Range(0, 100, func(float64, int32) bool { t.Fatal("empty range yielded"); return false })
	tr.Ascend(0, func(float64, int32) bool { t.Fatal("empty ascend yielded"); return false })
	tr.Descend(0, func(float64, int32) bool { t.Fatal("empty descend yielded"); return false })
	tr.Insert(5, 1)
	if got := collectRange(&tr, 0, 10); len(got) != 1 || got[0].v != 1 {
		t.Fatalf("singleton range = %v", got)
	}
	empty := BulkLoad(nil, nil)
	if empty.Len() != 0 {
		t.Fatal("empty bulk load non-empty")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := &Tree{}
	for i := 0; i < 300; i++ {
		tr.Insert(42, int32(i))
	}
	got := collectRange(tr, 42, 42)
	if len(got) != 300 {
		t.Fatalf("%d duplicates stored, want 300", len(got))
	}
}

func TestBulkLoadPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BulkLoad([]float64{2, 1}, []int32{0, 1})
}

func TestQuickInsertEqualsBulk(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%800
		a, _ := buildBoth(t, rng, n, true)
		rng = rand.New(rand.NewSource(seed))
		b, _ := buildBoth(t, rng, n, false)
		ga := collectRange(a, -1e18, 1e18)
		gb := collectRange(b, -1e18, 1e18)
		if len(ga) != len(gb) {
			return false
		}
		for i := range ga {
			if ga[i].k != gb[i].k {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
