// Package cache implements the in-memory candidate cache of Section 2.2:
// a byte-budgeted store mapping point (or leaf-node) identifiers to cached
// payloads — bit-packed approximate points for the HC-* methods, raw vectors
// for the EXACT baseline, whole leaf nodes for the tree-index adaptation of
// Section 3.6.1.
//
// Two replacement policies are provided, matching the paper: HFF
// (highest-frequency-first), a static policy that fixes the cache content
// offline from the query workload, and LRU, a dynamic policy updated at
// query time. Figure 8 shows HFF dominating LRU on skewed logs, so HFF is
// the default everywhere else.
//
// Concurrency: an HFF cache is immutable after its FillHFF build, so lookups
// from many goroutines are safe (statistics are atomic). An LRU cache
// serves Gets under a read lock — recency updates are journaled to a small
// buffer instead of mutating the list on the read path — and takes the write
// lock only for Puts and journal drains. Every Put drains the journal before
// deciding an eviction, so for a single-threaded caller the observable
// semantics are exactly classic LRU; under concurrent readers a recency
// update may be applied late (bounded by the journal size), which can only
// reorder accesses that were racing anyway.
package cache

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Policy selects the replacement behaviour.
type Policy int

const (
	// HFF is the static highest-frequency-first policy (Section 4): content
	// chosen offline by descending workload frequency, never replaced.
	HFF Policy = iota
	// LRU is the dynamic least-recently-used policy.
	LRU
)

func (p Policy) String() string {
	switch p {
	case HFF:
		return "HFF"
	case LRU:
		return "LRU"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats counts cache traffic.
type Stats struct {
	Hits, Misses int64
}

// HitRatio returns hits/(hits+misses), the ρ_hit of Eqn 1, or 0 when idle.
func (s Stats) HitRatio() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// CapacityForBudget converts a byte budget and per-item bit cost into an
// item capacity — how Theorem 1 relates N_item to N*_item via τ/Lvalue.
// The arithmetic is checked: budgetBytes*8 overflows int64 for budgets of
// 2^60 bytes and beyond (the naive expression turned such budgets into a
// negative — i.e. zero — capacity), and the final narrowing saturates at
// math.MaxInt instead of truncating on 32-bit platforms.
func CapacityForBudget(budgetBytes int64, itemBits int) int {
	if itemBits <= 0 {
		panic("cache: item bits must be positive")
	}
	if budgetBytes <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(budgetBytes), 8)
	if hi >= uint64(itemBits) {
		// The quotient would not fit in 64 bits (bits.Div64 panics on
		// hi >= divisor); any such capacity saturates anyway.
		return math.MaxInt
	}
	quo, _ := bits.Div64(hi, lo, uint64(itemBits))
	if quo > uint64(math.MaxInt) {
		return math.MaxInt
	}
	return int(quo)
}

type entry[V any] struct {
	id         int32
	dead       bool // set under mu when evicted; lets the journal drain skip stale touches without a map lookup
	val        V
	prev, next *entry[V]
}

// pendCap bounds the LRU recency journal: once this many Gets are buffered,
// the reader that overflows the ring drains synchronously. Small enough to
// keep recency nearly fresh, large enough to amortize a write-lock
// acquisition over hundreds of read-locked Gets.
const pendCap = 256

// Cache is a fixed-capacity id→payload store.
type Cache[V any] struct {
	policy   Policy
	capacity int
	mu       sync.RWMutex // guards m and the list under LRU; unused under HFF
	m        map[int32]*entry[V]
	// Doubly linked LRU list with sentinel; unused under HFF.
	sentinel entry[V]

	// Recency journal (LRU only): a Get claims the next ring slot with one
	// atomic add and stores the touched entry with one atomic store — no
	// lock on the read path. The list is reordered in batch under mu, by Put
	// before it makes any eviction decision or by the Get that overflows the
	// ring. Slot order is claim order, so a single-threaded caller's drains
	// replay its accesses exactly; racing readers may have a touch applied
	// one drain late (claimed slot not yet stored, or stored into a slot the
	// drain already swept) — those touches were unordered to begin with.
	pendHead atomic.Int64
	pend     [pendCap]atomic.Pointer[entry[V]]

	hits, misses atomic.Int64
}

// New creates a cache holding at most capacity items under the given policy.
// A zero capacity is legal and behaves as an always-miss cache (the NO-CACHE
// baseline).
func New[V any](capacity int, policy Policy) *Cache[V] {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: negative capacity %d", capacity))
	}
	// The capacity is only a ceiling (a saturated CapacityForBudget yields
	// math.MaxInt); cap the map pre-size hint so construction stays cheap.
	hint := min(capacity, 1<<20)
	c := &Cache[V]{policy: policy, capacity: capacity, m: make(map[int32]*entry[V], hint)}
	c.sentinel.prev = &c.sentinel
	c.sentinel.next = &c.sentinel
	return c
}

// Capacity returns the maximum number of items.
func (c *Cache[V]) Capacity() int { return c.capacity }

// Len returns the current number of items.
func (c *Cache[V]) Len() int {
	if c.policy == LRU {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	return len(c.m)
}

// Policy returns the replacement policy.
func (c *Cache[V]) Policy() Policy { return c.policy }

// Get looks up id, updating hit/miss statistics and (under LRU) recency.
// Safe for concurrent use (HFF content must be fixed via FillHFF first).
// LRU hits journal their recency update instead of reordering the list, so
// concurrent warm-cache readers share a read lock instead of serializing.
func (c *Cache[V]) Get(id int) (V, bool) {
	if c.policy != LRU {
		e, ok := c.m[int32(id)]
		if !ok {
			c.misses.Add(1)
			var zero V
			return zero, false
		}
		c.hits.Add(1)
		return e.val, true
	}
	c.mu.RLock()
	e, ok := c.m[int32(id)]
	if !ok {
		c.mu.RUnlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	v := e.val
	c.mu.RUnlock()
	c.hits.Add(1)
	c.recordUse(e)
	return v, true
}

// recordUse journals an LRU touch into the ring, draining when it overflows.
func (c *Cache[V]) recordUse(e *entry[V]) {
	i := c.pendHead.Add(1) - 1
	if i >= pendCap {
		c.mu.Lock()
		c.drainPendingLocked()
		c.mu.Unlock()
		i = c.pendHead.Add(1) - 1
		if i >= pendCap {
			// Racing readers refilled the fresh ring before our claim; drop
			// the touch rather than spin — it was concurrent with a full
			// ring's worth of accesses, so its position was arbitrary anyway.
			return
		}
	}
	c.pend[i].Store(e)
}

// drainPendingLocked applies the journaled recency updates in claim order.
// Caller holds mu; drains are serialized by it. Each slot is swapped to nil
// as it is applied, so a racing reader that stores into a swept slot simply
// has its touch applied by the next drain. Entries evicted since being
// journaled carry the dead mark and are skipped (a re-admitted id is a fresh
// allocation, so a stale pointer can never resurrect it).
func (c *Cache[V]) drainPendingLocked() {
	n := c.pendHead.Load()
	if n == 0 {
		return
	}
	if n > pendCap {
		n = pendCap
	}
	for i := int64(0); i < n; i++ {
		e := c.pend[i].Swap(nil)
		if e == nil || e.dead {
			continue // in-flight claim, or evicted while journaled
		}
		c.unlink(e)
		c.pushFront(e)
	}
	c.pendHead.Store(0)
}

// Contains reports membership without touching statistics or recency.
func (c *Cache[V]) Contains(id int) bool {
	if c.policy == LRU {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	_, ok := c.m[int32(id)]
	return ok
}

// Put inserts or updates id. Under HFF, inserts beyond capacity are silently
// ignored (content is fixed by the offline build); under LRU the
// least-recently-used item is evicted. HFF Puts are NOT safe concurrently
// with Gets — fill the cache before serving.
func (c *Cache[V]) Put(id int, v V) {
	if c.policy == LRU {
		c.mu.Lock()
		defer c.mu.Unlock()
		// Apply journaled recency before any eviction decision so the victim
		// is the true least-recently-used entry of the access sequence.
		c.drainPendingLocked()
	}
	if c.capacity == 0 {
		return
	}
	if e, ok := c.m[int32(id)]; ok {
		e.val = v
		if c.policy == LRU {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.m) >= c.capacity {
		if c.policy == HFF {
			return
		}
		lru := c.sentinel.prev
		lru.dead = true
		c.unlink(lru)
		delete(c.m, lru.id)
	}
	e := &entry[V]{id: int32(id), val: v}
	c.m[int32(id)] = e
	c.pushFront(e)
}

func (c *Cache[V]) unlink(e *entry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache[V]) pushFront(e *entry[V]) {
	e.next = c.sentinel.next
	e.prev = &c.sentinel
	e.next.prev = e
	c.sentinel.next = e
}

// Keys returns the cached item ids in ascending order (for snapshots and
// diagnostics).
func (c *Cache[V]) Keys() []int {
	if c.policy == LRU {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	keys := make([]int, 0, len(c.m))
	for id := range c.m {
		keys = append(keys, int(id))
	}
	sort.Ints(keys)
	return keys
}

// Stats returns a snapshot of hit/miss counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// ResetStats zeroes the counters.
func (c *Cache[V]) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
}

// FillHFF populates a (typically HFF) cache with ids in priority order —
// descending workload frequency, as computed by RankByFrequency — stopping
// at capacity. It returns the number of items admitted.
func (c *Cache[V]) FillHFF(ids []int, value func(id int) V) int {
	n := 0
	for _, id := range ids {
		if c.Len() >= c.capacity {
			break
		}
		if c.Contains(id) {
			continue
		}
		c.Put(id, value(id))
		n++
	}
	return n
}

// RankByFrequency sorts item ids by descending frequency, breaking ties by
// ascending id for determinism. freq maps id → workload frequency
// (freq(p) = |{q ∈ WL : p ∈ C(q)}|, Section 4).
func RankByFrequency(freq map[int]int) []int {
	ids := make([]int, 0, len(freq))
	for id := range freq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		fa, fb := freq[a], freq[b]
		if fa != fb {
			return fa > fb
		}
		return a < b
	})
	return ids
}
