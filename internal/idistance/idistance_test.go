package idistance

import (
	"math"
	"math/rand"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

func testDS(n, dim int, seed int64) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 6, Std: 0.04, Seed: seed})
}

func TestBuildPartition(t *testing.T) {
	ds := testDS(500, 12, 1)
	ix := Build(ds, Params{Refs: 8, LeafCapacity: 10, Seed: 2})
	seen := make([]bool, ds.Len())
	for li, leaf := range ix.Leaves() {
		if len(leaf) == 0 || len(leaf) > 10 {
			t.Fatalf("leaf %d size %d", li, len(leaf))
		}
		for _, id := range leaf {
			if seen[id] {
				t.Fatalf("point %d in two leaves", id)
			}
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("point %d missing from partition", id)
		}
	}
}

func TestLeafLowerBoundsAreValid(t *testing.T) {
	ds := testDS(400, 10, 3)
	ix := Build(ds, Params{Refs: 8, LeafCapacity: 16, Seed: 4})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		q := ds.Point(rng.Intn(ds.Len()))
		lbs := ix.LeafLowerBounds(q)
		if len(lbs) != len(ix.Leaves()) {
			t.Fatal("lbs length mismatch")
		}
		for li, leaf := range ix.Leaves() {
			for _, id := range leaf {
				if d := vec.Dist(q, ds.Point(int(id))); d < lbs[li]-1e-9 {
					t.Fatalf("leaf %d lb %v exceeds true dist %v of member %d", li, lbs[li], d, id)
				}
			}
		}
	}
}

// exactViaLeaves runs the plain leaf-at-a-time exact kNN over the index (no
// cache), which must return the true kNN.
func exactViaLeaves(ds *dataset.Dataset, ix *Index, q []float32, k int) []int {
	lbs := ix.LeafLowerBounds(q)
	order := make([]int, len(lbs))
	for i := range order {
		order[i] = i
	}
	// Selection sort by lb (few leaves).
	for i := range order {
		m := i
		for j := i + 1; j < len(order); j++ {
			if lbs[order[j]] < lbs[order[m]] {
				m = j
			}
		}
		order[i], order[m] = order[m], order[i]
	}
	top := vec.NewTopK(k)
	for _, li := range order {
		if top.Full() && lbs[li] >= top.Root() {
			break
		}
		for _, id := range ix.Leaves()[li] {
			top.Push(vec.Dist(q, ds.Point(int(id))), int(id))
		}
	}
	ids, _ := top.Results()
	return ids
}

func TestExactKNNThroughIndex(t *testing.T) {
	ds := testDS(600, 8, 6)
	ix := Build(ds, Params{Refs: 10, LeafCapacity: 12, Seed: 7})
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		q := ds.Point(rng.Intn(ds.Len()))
		got := exactViaLeaves(ds, ix, q, 5)
		want := bruteKNN(ds, q, 5)
		for i := range want {
			dg := vec.Dist(q, ds.Point(got[i]))
			dw := vec.Dist(q, ds.Point(want[i]))
			if math.Abs(dg-dw) > 1e-9 {
				t.Fatalf("trial %d: rank %d dist %v, want %v", trial, i, dg, dw)
			}
		}
	}
}

func bruteKNN(ds *dataset.Dataset, q []float32, k int) []int {
	top := vec.NewTopK(k)
	for i := 0; i < ds.Len(); i++ {
		top.Push(vec.Dist(q, ds.Point(i)), i)
	}
	ids, _ := top.Results()
	return ids
}

func TestOrderingIsPermutation(t *testing.T) {
	ds := testDS(200, 6, 9)
	ix := Build(ds, Params{Refs: 4, Seed: 10})
	perm := ix.Ordering(ds.Len())
	seen := make([]bool, len(perm))
	for _, s := range perm {
		if s < 0 || s >= len(perm) || seen[s] {
			t.Fatalf("bad slot %d", s)
		}
		seen[s] = true
	}
	// Points of the same leaf occupy consecutive slots.
	leaf0 := ix.Leaves()[0]
	base := perm[leaf0[0]]
	for i, id := range leaf0 {
		if perm[id] != base+i {
			t.Fatal("leaf not contiguous in ordering")
		}
	}
}

func TestLeavesDoNotSpanReferences(t *testing.T) {
	ds := testDS(300, 6, 11)
	ix := Build(ds, Params{Refs: 5, LeafCapacity: 7, Seed: 12})
	if len(ix.ref) != len(ix.leaves) {
		t.Fatal("metadata length mismatch")
	}
	for li := range ix.leaves {
		if ix.ring[li][0] > ix.ring[li][1] {
			t.Fatalf("leaf %d ring inverted", li)
		}
	}
}

func TestDefaultLeafCapacityFromPage(t *testing.T) {
	ds := testDS(100, 150, 13) // 600-byte points → 6 per 4 KB page
	ix := Build(ds, Params{Refs: 2, Seed: 14})
	for li, leaf := range ix.Leaves() {
		if len(leaf) > 6 {
			t.Fatalf("leaf %d has %d points, page fits 6", li, len(leaf))
		}
	}
}

func TestPointIndexExactKNN(t *testing.T) {
	ds := testDS(1200, 10, 15)
	ix := BuildPointIndex(ds, Params{Refs: 12, Seed: 16})
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		var q []float32
		if trial%2 == 0 {
			q = ds.Point(rng.Intn(ds.Len()))
		} else {
			q = make([]float32, 10)
			for j := range q {
				q[j] = rng.Float32()
			}
		}
		k := 1 + rng.Intn(15)
		got := ix.Search(q, k)
		want := bruteKNN(ds, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			dg := vec.Dist(q, ds.Point(got[i]))
			dw := vec.Dist(q, ds.Point(want[i]))
			if math.Abs(dg-dw) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v want %v", trial, i, dg, dw)
			}
		}
	}
}

func TestPointIndexEdgeCases(t *testing.T) {
	ds := testDS(50, 4, 18)
	ix := BuildPointIndex(ds, Params{Refs: 4, Seed: 19})
	if got := ix.Search(ds.Point(0), 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	// k larger than the dataset returns everything.
	got := ix.Search(ds.Point(0), 100)
	if len(got) != 50 {
		t.Fatalf("k>n returned %d of 50", len(got))
	}
	seen := map[int]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}
