// Slab-packed cache storage. The map-backed Cache[V] stores every payload as
// an individually heap-allocated value behind a map[int32]*entry lookup —
// fine for LRU (which mutates on every access) and for the EXACT baseline,
// but a cache-line disaster for Phase 2 of Algorithm 1, where millions of
// candidates per second resolve an id and scan a few dozen packed code words.
// The slab types below trade mutability for layout: all payload words live in
// ONE contiguous arena at a fixed (Slab) or prefix-indexed (VarSlab) stride,
// and the id→slot map is a dense int32 array indexed by id, so a lookup is
// one bounds-checked load and the payload bytes of consecutive slots are
// consecutive in memory. Content is fixed at build time, exactly like an HFF
// cache after FillHFF — which is the only policy the slabs serve.
package cache

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// admitKeys replays FillHFF's admission semantics over a priority-ordered key
// list: keys are admitted in order, duplicates are skipped (first occurrence
// wins), keys outside [0, universe) are skipped (a dense index cannot address
// them — the map cache tolerates them, but no engine produces any), and
// admission stops at capacity. It returns the dense key→slot index (len
// universe, -1 for absent) and the admitted keys in admission order.
func admitKeys(universe, capacity int, keys []int) (slots []int32, admitted []int32) {
	slots = make([]int32, universe)
	for i := range slots {
		slots[i] = -1
	}
	if capacity < 0 {
		capacity = 0
	}
	for _, k := range keys {
		if len(admitted) >= capacity {
			break
		}
		if k < 0 || k >= universe {
			continue
		}
		if slots[k] >= 0 {
			continue
		}
		slots[k] = int32(len(admitted))
		admitted = append(admitted, int32(k))
	}
	return slots, admitted
}

// Slab is a fixed-stride, scan-friendly HFF store: one contiguous []uint64
// arena holding every cached item's packed code words back to back, plus a
// dense id→slot index. It is immutable after Build, so concurrent lookups
// and arena scans are safe without any locking (statistics are atomic).
type Slab struct {
	stride   int // words per item
	capacity int // admission ceiling, for reporting parity with Cache
	arena    []uint64
	slots    []int32 // id → slot, -1 when absent; len = universe
	ids      []int32 // slot → id

	hits, misses atomic.Int64
}

// BuildSlab packs the first capacity unique in-range ids (priority order, as
// produced by RankByFrequency/HFFContent) into a slab of stride words per
// item. fill encodes one item into its stride-sized arena window.
func BuildSlab(universe, stride, capacity int, ids []int, fill func(id int, dst []uint64)) *Slab {
	if universe < 0 {
		panic(fmt.Sprintf("cache: negative slab universe %d", universe))
	}
	if stride < 1 {
		panic(fmt.Sprintf("cache: slab stride %d < 1", stride))
	}
	slots, admitted := admitKeys(universe, capacity, ids)
	s := &Slab{
		stride:   stride,
		capacity: capacity,
		arena:    make([]uint64, len(admitted)*stride),
		slots:    slots,
		ids:      admitted,
	}
	for slot, id := range admitted {
		fill(int(id), s.arena[slot*stride:(slot+1)*stride])
	}
	return s
}

// Stride returns the words per item.
func (s *Slab) Stride() int { return s.stride }

// Len returns the number of cached items.
func (s *Slab) Len() int { return len(s.ids) }

// Capacity returns the admission ceiling the slab was built with.
func (s *Slab) Capacity() int { return s.capacity }

// SlotOf resolves an id to its arena slot, or -1 on a miss. It does not
// touch statistics: Phase 2 resolves ids in blocks and charges hit/miss
// counts in bulk via AddStats.
func (s *Slab) SlotOf(id int) int32 {
	if id < 0 || id >= len(s.slots) {
		return -1
	}
	return s.slots[id]
}

// Contains reports membership without touching statistics.
func (s *Slab) Contains(id int) bool { return s.SlotOf(id) >= 0 }

// Words returns the packed code words of a slot.
func (s *Slab) Words(slot int32) []uint64 {
	off := int(slot) * s.stride
	return s.arena[off : off+s.stride]
}

// Arena exposes the backing word array for fused kernels: slot i occupies
// arena[i*Stride() : (i+1)*Stride()]. The arena is immutable.
func (s *Slab) Arena() []uint64 { return s.arena }

// Keys returns the cached ids in ascending order (snapshot/diagnostic parity
// with Cache.Keys).
func (s *Slab) Keys() []int {
	keys := make([]int, len(s.ids))
	for i, id := range s.ids {
		keys[i] = int(id)
	}
	sort.Ints(keys)
	return keys
}

// AddStats charges a bulk of hits and misses (Phase 2 resolves candidates in
// blocks and settles the counters once per scan).
func (s *Slab) AddStats(hits, misses int64) {
	if hits != 0 {
		s.hits.Add(hits)
	}
	if misses != 0 {
		s.misses.Add(misses)
	}
}

// Stats returns a snapshot of hit/miss counters.
func (s *Slab) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load()}
}

// ResetStats zeroes the counters.
func (s *Slab) ResetStats() {
	s.hits.Store(0)
	s.misses.Store(0)
}

// VarSlab is the variable-stride sibling of Slab for leaf-granular caches
// (Section 3.6.1): item k occupies arena[offs[slot]:offs[slot+1]], so leaves
// of different populations pack back to back with no per-leaf allocation.
// Like Slab it is immutable after Build.
type VarSlab struct {
	capacity int
	arena    []uint64
	offs     []int64 // len = Len()+1 prefix offsets into arena
	slots    []int32 // key → slot, -1 when absent
	ids      []int32 // slot → key

	hits, misses atomic.Int64
}

// BuildVarSlab packs the first capacity unique in-range keys (priority
// order) into one arena. size reports the word count of one item; fill
// encodes it into its window.
func BuildVarSlab(universe, capacity int, keys []int, size func(key int) int, fill func(key int, dst []uint64)) *VarSlab {
	if universe < 0 {
		panic(fmt.Sprintf("cache: negative slab universe %d", universe))
	}
	slots, admitted := admitKeys(universe, capacity, keys)
	v := &VarSlab{capacity: capacity, slots: slots, ids: admitted}
	v.offs = make([]int64, len(admitted)+1)
	total := int64(0)
	for i, key := range admitted {
		n := size(int(key))
		if n < 0 {
			panic(fmt.Sprintf("cache: negative item size %d for key %d", n, key))
		}
		total += int64(n)
		v.offs[i+1] = total
	}
	v.arena = make([]uint64, total)
	for i, key := range admitted {
		fill(int(key), v.arena[v.offs[i]:v.offs[i+1]])
	}
	return v
}

// Len returns the number of cached items.
func (v *VarSlab) Len() int { return len(v.ids) }

// Capacity returns the admission ceiling the slab was built with.
func (v *VarSlab) Capacity() int { return v.capacity }

// Contains reports membership without touching statistics.
func (v *VarSlab) Contains(key int) bool {
	return key >= 0 && key < len(v.slots) && v.slots[key] >= 0
}

// Lookup resolves a key to its packed words, updating hit/miss statistics —
// the Get of the leaf-cache serve path.
func (v *VarSlab) Lookup(key int) ([]uint64, bool) {
	w, ok := v.Peek(key)
	if ok {
		v.hits.Add(1)
	} else {
		v.misses.Add(1)
	}
	return w, ok
}

// Peek is Lookup without statistics (diagnostics and test oracles).
func (v *VarSlab) Peek(key int) ([]uint64, bool) {
	if key < 0 || key >= len(v.slots) {
		return nil, false
	}
	slot := v.slots[key]
	if slot < 0 {
		return nil, false
	}
	return v.arena[v.offs[slot]:v.offs[slot+1]], true
}

// Keys returns the cached keys in ascending order.
func (v *VarSlab) Keys() []int {
	keys := make([]int, len(v.ids))
	for i, id := range v.ids {
		keys[i] = int(id)
	}
	sort.Ints(keys)
	return keys
}

// Stats returns a snapshot of hit/miss counters.
func (v *VarSlab) Stats() Stats {
	return Stats{Hits: v.hits.Load(), Misses: v.misses.Load()}
}

// ResetStats zeroes the counters.
func (v *VarSlab) ResetStats() {
	v.hits.Store(0)
	v.misses.Store(0)
}
