// ebc-query answers kNN queries over an EBDS dataset through the cached
// three-phase engine, printing per-query statistics. Queries are sampled
// from a generated Zipf workload so that the cache has realistic locality.
// Example:
//
//	ebc-gen -preset nuswide -n 20000 -o nw.ebds
//	ebc-query -data nw.ebds -method HC-O -cache 16MiB -k 10 -queries 20
package main

import (
	"flag"
	"fmt"
	"os"

	"exploitbit"
	"exploitbit/internal/cliutil"
)

func main() {
	var (
		data    = flag.String("data", "", "EBDS dataset file (required)")
		method  = flag.String("method", "HC-O", "caching method (NO-CACHE, EXACT, HC-W, HC-V, HC-D, HC-O, iHC-*, mHC-R, C-VA)")
		cacheSz = flag.String("cache", "16MiB", "cache size (supports KiB/MiB/GiB suffixes)")
		k       = flag.Int("k", 10, "result size")
		queries = flag.Int("queries", 20, "number of test queries")
		wlLen   = flag.Int("wl", 2000, "workload length for profiling")
		pool    = flag.Int("pool", 500, "distinct queries in the workload")
		tau     = flag.Int("tau", 0, "code length (0 = auto-tune via the cost model)")
		seed    = flag.Int64("seed", 7, "query-log seed")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "ebc-query: -data is required")
		os.Exit(2)
	}

	ds, err := exploitbit.LoadDataset(*data)
	if err != nil {
		fail(err)
	}
	cs, err := cliutil.ParseBytes(*cacheSz)
	if err != nil {
		fail(fmt.Errorf("bad -cache: %w", err))
	}

	log := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: *pool, Length: *wlLen + *queries, ZipfS: 1.3, Perturb: 0.005, Seed: *seed,
	})
	wl, qtest := log.Split(*queries)

	fmt.Printf("dataset %q: %d points x %d dims; building index + workload profile…\n", ds.Name, ds.Len(), ds.Dim)
	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{WorkloadK: *k})
	if err != nil {
		fail(err)
	}
	defer sys.Close()

	if *tau == 0 {
		*tau = sys.OptimalTau(cs)
		fmt.Printf("cost model selected tau = %d for %s cache\n", *tau, *cacheSz)
	}
	eng, err := sys.Engine(exploitbit.Method(*method), cs, *tau)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%-6s %-10s %-6s %-7s %-7s %-9s %-12s\n",
		"query", "cands", "hits", "pruned", "truehit", "IO(pts)", "response")
	for i, q := range qtest {
		ids, st, err := eng.Search(q, *k)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6d %-10d %-6d %-7d %-7d %-9d %-12v  top: %v\n",
			i, st.Candidates, st.Hits, st.Pruned, st.TrueHits, st.Fetched,
			st.ResponseTime().Round(100_000), ids[:min(3, len(ids))])
	}
	agg := eng.Aggregate()
	fmt.Printf("\navg: candidates %.1f  hit ratio %.2f  C_refine %.1f  IO %.1f pts  response %v\n",
		agg.AvgCandidates(), agg.HitRatio(), agg.AvgRemaining(), agg.AvgIO(), agg.AvgResponse().Round(100_000))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ebc-query:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
