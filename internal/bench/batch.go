package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"exploitbit"
	"exploitbit/internal/core"
)

// BatchReport is the machine-readable record of the batch-search scenario
// (BENCH_3.json): for a correlated burst of queries, the refinement I/O of
// per-query searches vs one coalesced batch, per caching method. Coalescing
// reads each data-file page at most once for the whole batch, so
// batch_page_reads ≤ solo_page_reads always, with the gap widening as the
// burst's candidates overlap — exactly the qwLSH-style locality a cached
// deployment sees.
type BatchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Lab         string `json:"lab"`
	BatchSize   int    `json:"batch_size"`
	K           int    `json:"k"`

	Rows []BatchRow `json:"rows"`
}

// BatchRow compares one method's per-query and batched executions of the
// same burst. ResultsIdentical asserts the batch's contract: every query's
// identifiers match a standalone search.
type BatchRow struct {
	Method           string  `json:"method"`
	SoloPageReads    int64   `json:"solo_page_reads"`
	BatchPageReads   int64   `json:"batch_page_reads"`
	IOSavedPct       float64 `json:"io_saved_pct"`
	SoloWallNs       int64   `json:"solo_wall_ns"`
	BatchWallNs      int64   `json:"batch_wall_ns"`
	ResultsIdentical bool    `json:"results_identical"`
}

// correlatedBurst builds a batch with deliberate candidate overlap: each
// test query appears twice in a row, the extreme of the bursty locality that
// Zipf-distributed logs produce.
func correlatedBurst(qtest [][]float32, n int) [][]float32 {
	var batch [][]float32
	for _, q := range qtest {
		batch = append(batch, q, q)
		if len(batch) >= n {
			return batch[:n]
		}
	}
	return batch
}

// RunBatch measures the cross-query I/O coalescing of SearchBatch on the
// NUS-WIDE lab and writes the report as indented JSON to jsonPath (skipped
// when empty), echoing a summary table to w.
func RunBatch(w io.Writer, env *Env, jsonPath string) (*BatchReport, error) {
	lab := env.Lab("NUS-WIDE")
	k := env.Scale.K
	batch := correlatedBurst(lab.QTest, 16)
	rep := &BatchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Lab:         lab.Name,
		BatchSize:   len(batch),
		K:           k,
	}

	// NO-CACHE refines every candidate (maximum I/O, maximum overlap to
	// coalesce); the cached methods prune most of it in Phase 2 first, so
	// their rows show coalescing on the residue the cache cannot answer.
	type cfg struct {
		name string
		conf core.Config
	}
	cfgs := []cfg{
		{"NO-CACHE", core.Config{Method: exploitbit.NoCache}},
		{"EXACT", core.Config{Method: exploitbit.Exact, CacheBytes: lab.DefaultCS}},
		{"HC-O", core.Config{Method: exploitbit.HCO, CacheBytes: lab.DefaultCS, Tau: lab.DefaultTau}},
		{"IHC-O", core.Config{Method: exploitbit.IHCO, CacheBytes: lab.DefaultCS, Tau: lab.DefaultTau}},
	}

	tw := table(w)
	fmt.Fprintln(tw, "method\tsolo_reads\tbatch_reads\tsaved%\tidentical")
	for _, c := range cfgs {
		eng, err := lab.Sys.EngineWith(c.conf)
		if err != nil {
			return nil, err
		}
		row := BatchRow{Method: c.name, ResultsIdentical: true}

		soloIDs := make([][]int, len(batch))
		t0 := time.Now()
		for j, q := range batch {
			ids, st, err := eng.Search(q, k)
			if err != nil {
				return nil, err
			}
			soloIDs[j] = ids
			row.SoloPageReads += st.PageReads
		}
		row.SoloWallNs = time.Since(t0).Nanoseconds()

		t1 := time.Now()
		gotIDs, sts, err := eng.SearchBatch(batch, k)
		if err != nil {
			return nil, err
		}
		row.BatchWallNs = time.Since(t1).Nanoseconds()
		for _, st := range sts {
			row.BatchPageReads += st.PageReads
		}
		for j := range batch {
			if len(gotIDs[j]) != len(soloIDs[j]) {
				row.ResultsIdentical = false
				break
			}
			for i := range soloIDs[j] {
				if gotIDs[j][i] != soloIDs[j][i] {
					row.ResultsIdentical = false
					break
				}
			}
		}
		if row.SoloPageReads > 0 {
			row.IOSavedPct = 100 * (1 - float64(row.BatchPageReads)/float64(row.SoloPageReads))
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%v\n",
			row.Method, row.SoloPageReads, row.BatchPageReads, row.IOSavedPct, row.ResultsIdentical)
	}
	tw.Flush()

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return nil, err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "batch: report written to %s\n", jsonPath)
	}
	return rep, nil
}
