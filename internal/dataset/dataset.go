// Package dataset provides the data substrate for the reproduction: synthetic
// high-dimensional feature datasets standing in for the paper's NUS-WIDE,
// IMGNET and SOGOU image collections, Zipf-skewed query logs standing in for
// the Sogou search log (the temporal locality of Figure 2), and a binary
// on-disk format.
//
// The paper's datasets are proprietary feature files (150-d color histograms,
// 960-d GIST descriptors). What the algorithms actually consume is (a)
// clustered, skewed per-dimension value distributions, (b) the dimensionality
// and (c) a query workload with power-law popularity. The generators here
// reproduce those three properties at configurable scale; see DESIGN.md §3.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"exploitbit/internal/vec"
)

// Dataset is an in-memory point set P (Definition 3) plus the value-domain
// discretization used by histograms. Points are stored flat for locality.
type Dataset struct {
	Name   string
	Dim    int
	Domain vec.Domain

	data []float32 // len = n*Dim
	n    int
}

// New wraps a flat coordinate array (len must be a multiple of dim) into a
// Dataset over the given domain.
func New(name string, dim int, data []float32, dom vec.Domain) *Dataset {
	if dim < 1 {
		panic("dataset: dim must be >= 1")
	}
	if len(data)%dim != 0 {
		panic(fmt.Sprintf("dataset: %d coords not a multiple of dim %d", len(data), dim))
	}
	return &Dataset{Name: name, Dim: dim, Domain: dom, data: data, n: len(data) / dim}
}

// Len returns the number of points |P|.
func (ds *Dataset) Len() int { return ds.n }

// Point returns point i as a slice aliasing the dataset's storage.
// Callers must not modify it.
func (ds *Dataset) Point(i int) []float32 {
	return ds.data[i*ds.Dim : (i+1)*ds.Dim : (i+1)*ds.Dim]
}

// Data returns the flat backing array (n*Dim coordinates). Read-only.
func (ds *Dataset) Data() []float32 { return ds.data }

// PointSize returns the on-disk size of one point in bytes (4 bytes per
// coordinate, as in the paper's Table 2: 150-d points occupy 600 bytes and
// 960-d points occupy 3,840 bytes).
func (ds *Dataset) PointSize() int { return 4 * ds.Dim }

// Config drives the synthetic generator. Points are drawn from a Gaussian
// mixture in [0,1]^Dim, then each coordinate is raised to Skew to emulate the
// heavy-toward-zero marginals of real image features (sparse color
// histograms, GIST energies).
type Config struct {
	Name     string
	N        int     // number of points
	Dim      int     // dimensionality d
	Clusters int     // number of mixture components
	Std      float64 // within-cluster standard deviation
	Skew     float64 // marginal skew exponent (1 = none; >1 pushes mass to 0)
	Ndom     int     // discrete value-domain size for histograms
	Seed     int64
	// ValueCoherence in [0,1] ties a cluster's coordinates to a per-cluster
	// base level: 0 = cluster centers are independent uniform coordinates
	// (cluster identity invisible in the value marginals), 1 = every
	// coordinate of a cluster sits at its base level. Real image features
	// behave coherently (a dark image has low energies in most GIST cells),
	// which is what makes workload-aware histograms (HC-O) beat
	// data-distribution histograms (HC-D) in the paper: a skewed query log
	// concentrates F′ on the popular clusters' value ranges.
	ValueCoherence float64
}

// Generate builds a synthetic dataset according to cfg.
func Generate(cfg Config) *Dataset {
	if cfg.N < 1 || cfg.Dim < 1 {
		panic(fmt.Sprintf("dataset: invalid size %dx%d", cfg.N, cfg.Dim))
	}
	if cfg.Clusters < 1 {
		cfg.Clusters = 1
	}
	if cfg.Std <= 0 {
		cfg.Std = 0.05
	}
	if cfg.Skew <= 0 {
		cfg.Skew = 1
	}
	if cfg.Ndom < 2 {
		cfg.Ndom = 1024
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	if cfg.ValueCoherence < 0 {
		cfg.ValueCoherence = 0
	} else if cfg.ValueCoherence > 1 {
		cfg.ValueCoherence = 1
	}
	centers := make([]float64, cfg.Clusters*cfg.Dim)
	for c := 0; c < cfg.Clusters; c++ {
		base := 0.15 + 0.7*rng.Float64()
		for j := 0; j < cfg.Dim; j++ {
			centers[c*cfg.Dim+j] = cfg.ValueCoherence*base + (1-cfg.ValueCoherence)*(0.15+0.7*rng.Float64())
		}
	}

	data := make([]float32, cfg.N*cfg.Dim)
	for i := 0; i < cfg.N; i++ {
		c := rng.Intn(cfg.Clusters)
		base := centers[c*cfg.Dim : (c+1)*cfg.Dim]
		row := data[i*cfg.Dim : (i+1)*cfg.Dim]
		for j := range row {
			v := base[j] + rng.NormFloat64()*cfg.Std
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[j] = float32(math.Pow(v, cfg.Skew))
		}
	}
	dom := vec.NewDomain(0, 1, cfg.Ndom)
	return New(cfg.Name, cfg.Dim, data, dom)
}

// The three preset generators mirror the paper's Table 2 datasets at reduced
// cardinality. Dimensionalities are kept exactly (150, 150, 960).

// NUSWideLike emulates NUS-WIDE: 150-d color histograms extracted from
// Flickr images — sparse, strongly skewed marginals, moderate clustering.
func NUSWideLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "NUS-WIDE", N: n, Dim: 150, Clusters: 30,
		Std: 0.06, Skew: 2.2, Ndom: 1024, Seed: seed, ValueCoherence: 0.65})
}

// ImgNetLike emulates IMGNET: 150-d color histograms from a larger online
// image database — more clusters, slightly tighter.
func ImgNetLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "IMGNET", N: n, Dim: 150, Clusters: 50,
		Std: 0.05, Skew: 2.0, Ndom: 1024, Seed: seed, ValueCoherence: 0.65})
}

// SogouLike emulates SOGOU: 960-d GIST descriptors of web images — smoother
// marginals, high dimensionality.
func SogouLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "SOGOU", N: n, Dim: 960, Clusters: 40,
		Std: 0.04, Skew: 1.5, Ndom: 1024, Seed: seed, ValueCoherence: 0.65})
}
