// Exact kNN indexes with leaf-node caching (Section 3.6.1 / Figure 16):
// the same histogram cache accelerates iDistance, a VP-tree and an R-tree
// without giving up exactness. For each index the example compares EXACT
// leaf caching against HC-O approximate leaf caching at the same budget,
// and verifies both return the true nearest neighbors.
//
//	go run ./examples/exactindex
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"exploitbit"
)

func main() {
	ds := exploitbit.ImgNetLike(6000, 21)
	qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 300, Length: 1530, ZipfS: 1.3, Perturb: 0.004, Seed: 22,
	})
	wl, qtest := qlog.Split(30)
	budget := int64(ds.Len()) * int64(ds.PointSize()) / 4

	fmt.Printf("dataset: %d x %d-d, cache budget %d KiB\n\n", ds.Len(), ds.Dim, budget>>10)
	fmt.Printf("%-10s %-8s %14s %14s %6s %10s\n", "index", "method", "pages/query", "response(s)", "lut", "exact?")

	dst := make([]int, 0, 16)
	for _, kind := range []exploitbit.TreeKind{exploitbit.IDistance, exploitbit.VPTree, exploitbit.RTree} {
		ts, err := exploitbit.OpenTree(ds, kind, wl, exploitbit.TreeOptions{Seed: 23})
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range []exploitbit.Method{exploitbit.Exact, exploitbit.HCO} {
			eng, err := ts.Engine(m, budget, 8)
			if err != nil {
				log.Fatal(err)
			}
			exact := true
			for _, q := range qtest {
				// SearchInto reuses the result buffer: with every visited
				// leaf cached the serve path is allocation-free.
				dst, _, err = eng.SearchInto(q, 10, dst[:0])
				if err != nil {
					log.Fatal(err)
				}
				if !matchesBruteForce(ds, q, dst, 10) {
					exact = false
				}
			}
			agg := eng.Aggregate()
			fmt.Printf("%-10s %-8s %14.1f %14.4f %6d %10v\n",
				kind, m, agg.AvgPageReads(), agg.AvgResponse().Seconds(), agg.LUTQueries, exact)
		}
		ts.Close()
	}
	fmt.Println("\nboth methods return exact kNN; HC-O does it with less I/O at equal budget")
	fmt.Println("(lut = queries scoring cached leaves through the per-query ADC lookup table)")
}

// matchesBruteForce checks the returned ids have the same distance profile
// as the true k nearest neighbors.
func matchesBruteForce(ds *exploitbit.Dataset, q []float32, ids []int, k int) bool {
	got := make([]float64, len(ids))
	for i, id := range ids {
		got[i] = dist(q, ds.Point(id))
	}
	sort.Float64s(got)
	all := make([]float64, ds.Len())
	for i := range all {
		all[i] = dist(q, ds.Point(i))
	}
	sort.Float64s(all)
	if len(got) != k {
		return false
	}
	for i := 0; i < k; i++ {
		if math.Abs(got[i]-all[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func dist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}
