package bounds

import (
	"math/rand"
	"testing"

	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/vec"
)

func benchSetup(dim, tau int) (*Table, []float32, []uint64, encoding.Codec) {
	rng := rand.New(rand.NewSource(1))
	dom := vec.NewDomain(0, 1, 1024)
	h := histogram.EquiWidth(1024, 1<<tau)
	tab := NewTable(h, dom, dim)
	codec := encoding.NewCodec(dim, tau)
	q := make([]float32, dim)
	codes := make([]int, dim)
	for j := range q {
		q[j] = rng.Float32()
		codes[j] = rng.Intn(1 << tau)
	}
	return tab, q, codec.Encode(codes, nil), codec
}

// BenchmarkBoundsPacked150d is the per-candidate cost of Phase 2: one
// lower/upper bound pair from a packed 150-d code array.
func BenchmarkBoundsPacked150d(b *testing.B) {
	tab, q, words, codec := benchSetup(150, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.BoundsPacked(q, words, codec)
	}
}

func BenchmarkBoundsPacked960d(b *testing.B) {
	tab, q, words, codec := benchSetup(960, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.BoundsPacked(q, words, codec)
	}
}

func BenchmarkRect960d(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dim := 960
	q := make([]float32, dim)
	lo := make([]float32, dim)
	hi := make([]float32, dim)
	for j := 0; j < dim; j++ {
		q[j] = rng.Float32()
		a, c := rng.Float32(), rng.Float32()
		if a > c {
			a, c = c, a
		}
		lo[j], hi[j] = a, c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rect(q, lo, hi)
	}
}
