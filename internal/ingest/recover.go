// Crash recovery. Recover reconstructs the durable write state of a log
// directory: the checkpoint's cumulative fold image plus a strict in-order
// replay of every WAL segment past the checkpoint's coverage horizon. The
// result is deterministic — two recoveries of the same directory produce the
// same fold, bit for bit — because identifiers are assigned densely at insert
// time and validated densely at replay time.

package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"exploitbit/internal/core"
)

// RecoverResult is the durable state replayed from a WAL directory.
type RecoverResult struct {
	// Points holds every point beyond the base dataset, in identifier order
	// (Points[i].ID == BaseN+i), tombstoned points included: fold them all so
	// identifiers keep matching point-file slots.
	Points []core.MergePoint
	// Tombs is the cumulative tombstone set.
	Tombs map[int64]struct{}
	// NextSeq is the segment sequence a reopened WAL must start at.
	NextSeq uint64
	// Records is the number of WAL records replayed (checkpoint excluded).
	Records int
	// TruncatedBytes is the size of the torn tail dropped from the newest
	// segment, 0 for a clean shutdown.
	TruncatedBytes int64
	// CheckpointSeq is the WAL horizon the loaded checkpoint covered (0 when
	// no valid checkpoint was found).
	CheckpointSeq uint64
	// CheckpointPoints is how many points came from the checkpoint rather
	// than replay.
	CheckpointPoints int
	// BaseN is the base dataset length recovery was run against.
	BaseN int
}

// Recover loads the checkpoint (if valid) and replays the WAL segments it
// does not cover. baseN and dim describe the immutable base dataset file.
// A missing or empty directory recovers to the empty state. Corruption in the
// newest segment's tail is truncated in place; corruption anywhere else is an
// error.
func Recover(dir string, baseN, dim int) (*RecoverResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: create wal dir: %w", err)
	}
	res := &RecoverResult{Tombs: map[int64]struct{}{}, NextSeq: 1, BaseN: baseN}
	if pts, tombs, covered, ok := readCheckpoint(dir, baseN, dim); ok {
		res.Points = pts
		res.Tombs = tombs
		res.CheckpointSeq = covered
		res.CheckpointPoints = len(pts)
		res.NextSeq = covered + 1
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, seq := range seqs {
		if seq >= res.NextSeq {
			res.NextSeq = seq + 1
		}
		if seq <= res.CheckpointSeq {
			// Covered by the checkpoint (crash landed between checkpoint
			// install and segment retirement). Skip; the next compaction's
			// RemoveThrough retires it.
			continue
		}
		if err := res.replaySegment(dir, seq, dim, i == len(seqs)-1); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// replaySegment applies one segment's records to res. last marks the newest
// segment, the only one whose torn tail is forgiven (and truncated away).
func (res *RecoverResult) replaySegment(dir string, seq uint64, dim int, last bool) error {
	name := segmentName(seq)
	path := filepath.Join(dir, name)
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ingest: read segment %s: %w", name, err)
	}
	le := binary.LittleEndian
	torn := func(off int) error {
		if !last {
			return fmt.Errorf("ingest: segment %s corrupt at offset %d (not the newest segment; refusing to truncate)", name, off)
		}
		res.TruncatedBytes += int64(len(buf) - off)
		if err := os.Truncate(path, int64(off)); err != nil {
			return fmt.Errorf("ingest: truncate torn tail of %s: %w", name, err)
		}
		return nil
	}
	if len(buf) < walHeaderSize {
		// A crash during openSegment's header write (likely with -wal-fsync
		// none) leaves a segment shorter than its own header. No record was
		// ever appended to it, so it is valid-empty regardless of position —
		// a restart after the crash may already have opened a higher-numbered
		// segment, making this one no longer the newest. Remove the file so
		// it never resurfaces (a truncated-to-zero leftover would otherwise
		// fail every future recovery once it stops being the newest segment).
		res.TruncatedBytes += int64(len(buf))
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("ingest: remove torn segment %s: %w", name, err)
		}
		return nil
	}
	if le.Uint32(buf[0:]) != walMagic || le.Uint32(buf[4:]) != walVersion {
		return fmt.Errorf("ingest: segment %s has bad header", name)
	}
	if int(le.Uint32(buf[8:])) != dim {
		return fmt.Errorf("ingest: segment %s has dim %d, want %d", name, le.Uint32(buf[8:]), dim)
	}
	maxPayload := 9 + 4*dim
	off := walHeaderSize
	for off < len(buf) {
		if off+8 > len(buf) {
			return torn(off)
		}
		n := int(le.Uint32(buf[off:]))
		sum := le.Uint32(buf[off+4:])
		if n < 9 || n > maxPayload || off+8+n > len(buf) {
			return torn(off)
		}
		payload := buf[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return torn(off)
		}
		if err := res.apply(payload, dim, name, off); err != nil {
			return err
		}
		res.Records++
		off += 8 + n
	}
	return nil
}

// apply folds one validated record into the result, enforcing dense
// identifier assignment.
func (res *RecoverResult) apply(payload []byte, dim int, name string, off int) error {
	le := binary.LittleEndian
	id := le.Uint64(payload[1:])
	next := uint64(res.BaseN + len(res.Points))
	switch payload[0] {
	case opInsert:
		if len(payload) != 9+4*dim {
			return fmt.Errorf("ingest: segment %s insert record at %d has %d payload bytes, want %d", name, off, len(payload), 9+4*dim)
		}
		if id != next {
			return fmt.Errorf("ingest: segment %s insert id %d at %d, expected %d (identifier gap)", name, id, off, next)
		}
		if id > math.MaxInt32 {
			return fmt.Errorf("ingest: segment %s insert id %d at %d exceeds the id space (max %d)", name, id, off, math.MaxInt32)
		}
		vec := make([]float32, dim)
		for j := range vec {
			vec[j] = math.Float32frombits(le.Uint32(payload[9+4*j:]))
		}
		res.Points = append(res.Points, core.MergePoint{ID: int32(id), Vec: vec})
	case opDelete:
		if len(payload) != 9 {
			return fmt.Errorf("ingest: segment %s delete record at %d has %d payload bytes, want 9", name, off, len(payload))
		}
		if id >= next {
			return fmt.Errorf("ingest: segment %s deletes unknown id %d at %d (only %d points exist)", name, id, off, next)
		}
		res.Tombs[int64(id)] = struct{}{}
	default:
		return fmt.Errorf("ingest: segment %s has unknown op %d at %d", name, payload[0], off)
	}
	return nil
}
