package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"exploitbit"
	"exploitbit/internal/bounds"
	"exploitbit/internal/core"
	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/vec"
)

// PerfReport is the machine-readable record of the fast-path benchmarks,
// written as JSON so successive PRs can diff regressions (BENCH_*.json at the
// repo root). All wall-clock figures come from testing.Benchmark, so they are
// calibrated the same way `go test -bench` output is.
type PerfReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	// Per-candidate bound computation at the paper's common configuration
	// (d=128, τ=8): the reference packed path vs the ADC-style query LUT.
	BoundsDim        int     `json:"bounds_dim"`
	BoundsTau        int     `json:"bounds_tau"`
	BoundsPackedNsOp float64 `json:"bounds_packed_ns_op"`
	BoundsLUTNsOp    float64 `json:"bounds_lut_ns_op"`
	BuildLUTNsOp     float64 `json:"build_lut_ns_op"`
	LUTSpeedup       float64 `json:"lut_speedup"`

	// Phase-2 throughput: candidates scored per second over the NUS-WIDE-like
	// lab's test queries with a fully covering cache, serial vs parallel
	// reduction (identical work, different fan-out).
	Phase2SerialCandPerSec   float64 `json:"phase2_serial_candidates_per_sec"`
	Phase2ParallelCandPerSec float64 `json:"phase2_parallel_candidates_per_sec"`

	// End-to-end SearchInto with a fully covering cache. These figures
	// include Phase-1 C2LSH candidate generation, which allocates its result
	// slices; the engine's own reduction/refinement phases are
	// allocation-free (pinned by BenchmarkEngineSearch in internal/core).
	SearchNsOp     float64 `json:"search_ns_op"`
	SearchAllocsOp int64   `json:"search_allocs_op"`
	SearchBytesOp  int64   `json:"search_bytes_op"`
	SearchNote     string  `json:"search_note"`

	// Tree-engine serve path (Section 3.6.1 on the shared reduction core):
	// Phase-2 candidate throughput over all-cached HC-O leaves with the
	// per-query LUT on vs off, plus the allocation audit of the EXACT
	// all-cached steady state (pinned at 0 allocs/op by
	// BenchmarkTreeEngineSearch in internal/core).
	TreeCandPerSec      float64 `json:"tree_hco_candidates_per_sec"`
	TreeCandPerSecNoLUT float64 `json:"tree_hco_candidates_per_sec_no_lut"`
	TreeSearchNsOp      float64 `json:"tree_search_ns_op"`
	TreeSearchAllocsOp  int64   `json:"tree_search_allocs_op"`
	TreeSearchBytesOp   int64   `json:"tree_search_bytes_op"`
}

// perfBoundsFixture mirrors the bounds package's benchmark setup: an
// equi-width table over the unit domain with 2^τ buckets per dimension.
func perfBoundsFixture(dim, tau int) (*bounds.Table, []float32, []uint64, encoding.Codec) {
	rng := rand.New(rand.NewSource(1))
	dom := vec.NewDomain(0, 1, 1024)
	h := histogram.EquiWidth(1024, 1<<tau)
	tab := bounds.NewTable(h, dom, dim)
	codec := encoding.NewCodec(dim, tau)
	q := make([]float32, dim)
	codes := make([]int, dim)
	for j := range q {
		q[j] = rng.Float32()
		codes[j] = rng.Intn(1 << tau)
	}
	return tab, q, codec.Encode(codes, nil), codec
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// RunPerf measures the fast paths of this revision and writes the report as
// indented JSON to jsonPath (skipped when empty), echoing a summary to w.
func RunPerf(w io.Writer, env *Env, jsonPath string) (*PerfReport, error) {
	rep := &PerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		BoundsDim:   128,
		BoundsTau:   8,
	}

	// Micro: per-candidate bound cost, reference vs LUT.
	tab, q, words, codec := perfBoundsFixture(rep.BoundsDim, rep.BoundsTau)
	lut := tab.BuildLUT(q, nil)
	rep.BoundsPackedNsOp = nsPerOp(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.BoundsPacked(q, words, codec)
		}
	}))
	rep.BoundsLUTNsOp = nsPerOp(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lut.BoundsSqPacked(words, codec)
		}
	}))
	rep.BuildLUTNsOp = nsPerOp(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.BuildLUT(q, lut)
		}
	}))
	if rep.BoundsLUTNsOp > 0 {
		rep.LUTSpeedup = rep.BoundsPackedNsOp / rep.BoundsLUTNsOp
	}

	// Macro: Phase-2 throughput and end-to-end Search on a covering cache.
	lab := env.Lab("NUS-WIDE")
	mkEngine := func(parallel int) (*exploitbit.Engine, error) {
		return lab.Sys.EngineWith(core.Config{
			Method:                  exploitbit.CVA,
			CacheBytes:              1 << 30,
			ParallelReduceThreshold: parallel,
		})
	}
	k := env.Scale.K
	measure := func(eng *exploitbit.Engine) (candPerSec float64, err error) {
		dst := make([]int, 0, k)
		var cands int64
		// Warm the scratch pool and any lazy state before timing.
		for _, q := range lab.QTest {
			if _, _, err = eng.SearchInto(q, k, dst[:0]); err != nil {
				return 0, err
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			cands = 0
			for i := 0; i < b.N; i++ {
				qv := lab.QTest[i%len(lab.QTest)]
				_, st, serr := eng.SearchInto(qv, k, dst[:0])
				if serr != nil {
					b.Fatal(serr)
				}
				cands += int64(st.Candidates)
			}
		})
		if sec := r.T.Seconds(); sec > 0 {
			candPerSec = float64(cands) / sec
		}
		return candPerSec, nil
	}

	serial, err := mkEngine(-1)
	if err != nil {
		return nil, err
	}
	if rep.Phase2SerialCandPerSec, err = measure(serial); err != nil {
		return nil, err
	}
	par, err := mkEngine(1)
	if err != nil {
		return nil, err
	}
	if rep.Phase2ParallelCandPerSec, err = measure(par); err != nil {
		return nil, err
	}

	// Allocation audit on the serial engine (the steady-state serving shape).
	dst := make([]int, 0, k)
	qv := lab.QTest[0]
	if _, _, err := serial.SearchInto(qv, k, dst[:0]); err != nil {
		return nil, err
	}
	sr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := serial.SearchInto(qv, k, dst[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.SearchNsOp = nsPerOp(sr)
	rep.SearchAllocsOp = sr.AllocsPerOp()
	rep.SearchBytesOp = sr.AllocedBytesPerOp()
	rep.SearchNote = "includes Phase-1 C2LSH candidate generation (allocates result slices); " +
		"engine phases 2-3 are allocation-free, see BenchmarkEngineSearch"

	// Tree-engine scenario: R-tree leaves on disk, every leaf cached, so the
	// figures isolate the in-RAM serve path of the unified reduction core.
	ts, err := exploitbit.OpenTree(lab.DS, exploitbit.RTree, lab.WL, exploitbit.TreeOptions{WorkloadK: k})
	if err != nil {
		return nil, err
	}
	defer ts.Close()
	measureTree := func(eng *exploitbit.TreeEngine) (candPerSec float64, err error) {
		tdst := make([]int, 0, k)
		var cands int64
		for _, q := range lab.QTest {
			if _, _, err = eng.SearchInto(q, k, tdst[:0]); err != nil {
				return 0, err
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			cands = 0
			for i := 0; i < b.N; i++ {
				qv := lab.QTest[i%len(lab.QTest)]
				_, st, serr := eng.SearchInto(qv, k, tdst[:0])
				if serr != nil {
					b.Fatal(serr)
				}
				cands += int64(st.Candidates)
			}
		})
		if sec := r.T.Seconds(); sec > 0 {
			candPerSec = float64(cands) / sec
		}
		return candPerSec, nil
	}
	hcoLUT, err := ts.EngineWith(core.TreeConfig{
		Method: exploitbit.HCO, CacheBytes: 1 << 30, Tau: env.Scale.Tau, LUTMinCachedPoints: 1,
	})
	if err != nil {
		return nil, err
	}
	if rep.TreeCandPerSec, err = measureTree(hcoLUT); err != nil {
		return nil, err
	}
	hcoNoLUT, err := ts.EngineWith(core.TreeConfig{
		Method: exploitbit.HCO, CacheBytes: 1 << 30, Tau: env.Scale.Tau, LUTMinCachedPoints: -1,
	})
	if err != nil {
		return nil, err
	}
	if rep.TreeCandPerSecNoLUT, err = measureTree(hcoNoLUT); err != nil {
		return nil, err
	}
	treeExact, err := ts.EngineWith(core.TreeConfig{Method: exploitbit.Exact, CacheBytes: 1 << 30})
	if err != nil {
		return nil, err
	}
	tdst := make([]int, 0, k)
	if _, _, err := treeExact.SearchInto(qv, k, tdst[:0]); err != nil {
		return nil, err
	}
	tr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := treeExact.SearchInto(qv, k, tdst[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.TreeSearchNsOp = nsPerOp(tr)
	rep.TreeSearchAllocsOp = tr.AllocsPerOp()
	rep.TreeSearchBytesOp = tr.AllocedBytesPerOp()

	fmt.Fprintf(w, "perf: bounds d=%d τ=%d  packed %.1f ns/op  lut %.1f ns/op  (%.1fx)  build %.1f ns\n",
		rep.BoundsDim, rep.BoundsTau, rep.BoundsPackedNsOp, rep.BoundsLUTNsOp, rep.LUTSpeedup, rep.BuildLUTNsOp)
	fmt.Fprintf(w, "perf: phase2 serial %.0f cand/s  parallel %.0f cand/s  (GOMAXPROCS=%d)\n",
		rep.Phase2SerialCandPerSec, rep.Phase2ParallelCandPerSec, rep.GoMaxProcs)
	fmt.Fprintf(w, "perf: search %.0f ns/op  %d allocs/op  %d B/op\n",
		rep.SearchNsOp, rep.SearchAllocsOp, rep.SearchBytesOp)
	treeSpeedup := 0.0
	if rep.TreeCandPerSecNoLUT > 0 {
		treeSpeedup = rep.TreeCandPerSec / rep.TreeCandPerSecNoLUT
	}
	fmt.Fprintf(w, "perf: tree hco %.0f cand/s (lut) vs %.0f cand/s (no lut)  %.1fx\n",
		rep.TreeCandPerSec, rep.TreeCandPerSecNoLUT, treeSpeedup)
	fmt.Fprintf(w, "perf: tree exact search %.0f ns/op  %d allocs/op  %d B/op\n",
		rep.TreeSearchNsOp, rep.TreeSearchAllocsOp, rep.TreeSearchBytesOp)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return nil, err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "perf: report written to %s\n", jsonPath)
	}
	return rep, nil
}
