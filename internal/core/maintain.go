package core

import (
	"fmt"
	"sync"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
)

// Maintainer implements Section 3.5's histogram maintenance: "we expect that
// the distribution of queries in the workload does not change rapidly …
// perform updates and rebuild the cache periodically". It serves queries
// through a current engine, remembers a sliding window of recent queries,
// and rebuilds the cache (HFF content, F′, Algorithm 2) from that window
// when the observed hit ratio degrades against the post-build baseline —
// the signature of workload drift.
type Maintainer struct {
	pf    *disk.PointFile
	ds    *dataset.Dataset
	cands CandidateFunc
	cfg   Config
	opt   MaintainOptions

	mu       sync.Mutex
	eng      *Engine
	window   [][]float32 // ring of recent queries
	nextW    int
	filled   bool
	rebuilds int

	// Hit-ratio bookkeeping (candidate-weighted, like ρ_hit).
	baseHits, baseCands     int64 // first window after a rebuild
	recentHits, recentCands int64 // sliding estimate since baseline froze
	sinceRebuild            int
}

// MaintainOptions tunes the drift detector.
type MaintainOptions struct {
	// WindowSize is the number of recent queries kept for rebuilds and used
	// as the baseline/measurement period (default 256).
	WindowSize int
	// DegradeFactor triggers a rebuild when the recent hit ratio falls
	// below DegradeFactor × the post-build baseline (default 0.8).
	DegradeFactor float64
	// MinQueriesBetweenRebuilds prevents thrashing (default WindowSize).
	MinQueriesBetweenRebuilds int
}

func (o MaintainOptions) withDefaults() MaintainOptions {
	if o.WindowSize < 8 {
		o.WindowSize = 256
	}
	if o.DegradeFactor <= 0 || o.DegradeFactor >= 1 {
		o.DegradeFactor = 0.8
	}
	if o.MinQueriesBetweenRebuilds < 1 {
		o.MinQueriesBetweenRebuilds = o.WindowSize
	}
	return o
}

// NewMaintainer wraps an initial workload into a self-maintaining engine.
func NewMaintainer(pf *disk.PointFile, ds *dataset.Dataset, cands CandidateFunc, initialWL [][]float32, k int, cfg Config, opt MaintainOptions) (*Maintainer, error) {
	opt = opt.withDefaults()
	prof := BuildProfile(ds, cands, initialWL, k)
	eng, err := NewEngine(pf, prof, cands, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: initial maintained engine: %w", err)
	}
	return &Maintainer{
		pf: pf, ds: ds, cands: cands, cfg: cfg, opt: opt,
		eng:    eng,
		window: make([][]float32, opt.WindowSize),
	}, nil
}

// Engine returns the currently serving engine (for inspection).
func (m *Maintainer) Engine() *Engine {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng
}

// Rebuilds reports how many automatic rebuilds have occurred.
func (m *Maintainer) Rebuilds() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rebuilds
}

// Search serves one query, records it in the drift window, and rebuilds the
// cache when drift is detected. Safe for concurrent use (queries serialize
// only around the bookkeeping, not the engine search itself).
func (m *Maintainer) Search(q []float32, k int) ([]int, QueryStats, error) {
	return m.SearchInto(q, k, nil)
}

// SearchInto is Search appending result identifiers to dst, mirroring
// Engine.SearchInto for allocation-conscious callers.
func (m *Maintainer) SearchInto(q []float32, k int, dst []int) ([]int, QueryStats, error) {
	m.mu.Lock()
	eng := m.eng
	m.mu.Unlock()

	ids, st, err := eng.SearchInto(q, k, dst)
	if err != nil {
		return nil, st, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Record the query (copying: callers may reuse buffers).
	m.window[m.nextW] = append([]float32(nil), q...)
	m.nextW = (m.nextW + 1) % len(m.window)
	if m.nextW == 0 {
		m.filled = true
	}
	m.sinceRebuild++

	// Baseline: the first window after a (re)build defines "healthy".
	if m.sinceRebuild <= m.opt.WindowSize {
		m.baseHits += int64(st.Hits)
		m.baseCands += int64(st.Candidates)
		return ids, st, nil
	}
	// Exponentially decayed recent window keeps the estimate moving.
	m.recentHits += int64(st.Hits)
	m.recentCands += int64(st.Candidates)
	if m.recentCands > m.baseCands && m.baseCands > 0 {
		m.recentHits /= 2
		m.recentCands /= 2
	}

	if m.sinceRebuild >= m.opt.MinQueriesBetweenRebuilds+m.opt.WindowSize &&
		m.baseCands > 0 && m.recentCands > 0 {
		base := float64(m.baseHits) / float64(m.baseCands)
		recent := float64(m.recentHits) / float64(m.recentCands)
		if recent < base*m.opt.DegradeFactor {
			if err := m.rebuildLocked(k); err != nil {
				return ids, st, fmt.Errorf("core: cache rebuild failed: %w", err)
			}
		}
	}
	return ids, st, nil
}

// ForceRebuild rebuilds immediately from the current window (the paper's
// "e.g., daily" scheduled variant; call it from a timer if preferred).
func (m *Maintainer) ForceRebuild(k int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rebuildLocked(k)
}

func (m *Maintainer) rebuildLocked(k int) error {
	wl := m.windowQueriesLocked()
	if len(wl) == 0 {
		return fmt.Errorf("core: no recorded queries to rebuild from")
	}
	prof := BuildProfile(m.ds, m.cands, wl, k)
	eng, err := NewEngine(m.pf, prof, m.cands, m.cfg)
	if err != nil {
		return err
	}
	m.eng = eng
	m.rebuilds++
	m.sinceRebuild = 0
	m.baseHits, m.baseCands = 0, 0
	m.recentHits, m.recentCands = 0, 0
	return nil
}

func (m *Maintainer) windowQueriesLocked() [][]float32 {
	if m.filled {
		out := make([][]float32, 0, len(m.window))
		for _, q := range m.window {
			if q != nil {
				out = append(out, q)
			}
		}
		return out
	}
	out := make([][]float32, 0, m.nextW)
	for _, q := range m.window[:m.nextW] {
		if q != nil {
			out = append(out, q)
		}
	}
	return out
}
