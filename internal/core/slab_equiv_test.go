package core

import (
	"fmt"
	"testing"
)

// TestSlabEquivalence pins the slab-packed reduction against the map-backed
// path (Config.NoSlab) bit for bit: identical result identifiers in identical
// order and identical per-query statistics — Candidates, Hits, Pruned,
// TrueHits, Remaining, Fetched, PageReads — across methods, LUT gating,
// serial vs parallel reduction, the eager-fetch ablation and several k. The
// early-abandon threshold of the blocked kernel must be invisible here; see
// slabReduceRange for the argument why.
func TestSlabEquivalence(t *testing.T) {
	w := buildWorld(t, 1500, 12, 77)
	type variant struct {
		name string
		cfg  Config
		ks   []int
	}
	variants := []variant{
		{"hco-lut", Config{Method: HCO, CacheBytes: 64 << 10, Tau: 7, LUTMinCandidates: 1}, []int{1, 5, 10}},
		{"hco-nolut", Config{Method: HCO, CacheBytes: 64 << 10, Tau: 7, LUTMinCandidates: -1}, []int{5}},
		{"hco-parallel", Config{Method: HCO, CacheBytes: 64 << 10, Tau: 7, LUTMinCandidates: 1, ParallelReduceThreshold: 1}, []int{5}},
		{"hcd-tau8", Config{Method: HCD, CacheBytes: 96 << 10, Tau: 8}, []int{5}},
		{"ihco", Config{Method: IHCO, CacheBytes: 64 << 10, Tau: 6}, []int{5}},
		{"cva", Config{Method: CVA, CacheBytes: 32 << 10}, []int{5}},
		{"hco-eager", Config{Method: HCO, CacheBytes: 64 << 10, Tau: 7, EagerFetchMisses: true}, []int{5}},
		{"hco-notruehit", Config{Method: HCO, CacheBytes: 64 << 10, Tau: 7, NoTrueHitDetection: true}, []int{5}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			slabEng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if slabEng.slab == nil {
				t.Fatal("expected the slab layout for an HFF engine")
			}
			mapCfg := v.cfg
			mapCfg.NoSlab = true
			mapEng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), mapCfg)
			if err != nil {
				t.Fatal(err)
			}
			if mapEng.approx == nil {
				t.Fatal("expected the map layout under NoSlab")
			}
			if got, want := slabEng.CacheLen(), mapEng.CacheLen(); got != want {
				t.Fatalf("slab caches %d items, map %d", got, want)
			}
			for _, k := range v.ks {
				for qi, q := range w.qtest {
					wantIDs, wantSt, err := mapEng.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					gotIDs, gotSt, err := slabEng.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
						t.Fatalf("k=%d query %d: slab ids %v, map ids %v", k, qi, gotIDs, wantIDs)
					}
					if gotSt.Candidates != wantSt.Candidates || gotSt.Hits != wantSt.Hits ||
						gotSt.Pruned != wantSt.Pruned || gotSt.TrueHits != wantSt.TrueHits ||
						gotSt.Remaining != wantSt.Remaining || gotSt.Fetched != wantSt.Fetched ||
						gotSt.PageReads != wantSt.PageReads || gotSt.UsedLUT != wantSt.UsedLUT {
						t.Fatalf("k=%d query %d: slab stats %+v, map stats %+v", k, qi, gotSt, wantSt)
					}
				}
			}
		})
	}
}

// TestSlabKeysMatchMap pins the admitted cache content itself: the slab must
// hold exactly the ids the map-backed FillHFF admits, in the same Keys()
// order (ascending), so snapshots written from either layout are identical.
func TestSlabKeysMatchMap(t *testing.T) {
	w := buildWorld(t, 1000, 10, 78)
	cfg := Config{Method: HCO, CacheBytes: 48 << 10, Tau: 7}
	slabEng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoSlab = true
	mapEng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, want := slabEng.slab.Keys(), mapEng.approx.Keys()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("slab keys %v, map keys %v", got, want)
	}
	// The packed words must match the map payloads verbatim.
	for _, id := range want {
		words, _ := mapEng.approx.Get(id)
		slot := slabEng.slab.SlotOf(id)
		if slot < 0 {
			t.Fatalf("id %d missing from slab", id)
		}
		if fmt.Sprint(slabEng.slab.Words(slot)) != fmt.Sprint(words) {
			t.Fatalf("id %d: slab words differ from map words", id)
		}
	}
}
