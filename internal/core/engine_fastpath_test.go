package core

import (
	"runtime"
	"sort"
	"testing"
)

// forceParallelism raises GOMAXPROCS so reduceWorkers fans out even on a
// single-CPU CI box (concurrency, not parallelism, is what the equivalence
// and race checks need).
func forceParallelism(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// fastPathConfigs pairs a forced-reference engine against engines with the
// LUT and the parallel reduction forced on, so the equivalence check runs
// regardless of candidate-set sizes.
func fastPathConfigs(base Config) (ref Config, variants map[string]Config) {
	ref = base
	ref.LUTMinCandidates = -1
	ref.ParallelReduceThreshold = -1
	variants = map[string]Config{
		"lut":          {},
		"parallel":     {},
		"lut+parallel": {},
	}
	lut := base
	lut.LUTMinCandidates = 1
	lut.ParallelReduceThreshold = -1
	par := base
	par.LUTMinCandidates = -1
	par.ParallelReduceThreshold = 1
	both := base
	both.LUTMinCandidates = 1
	both.ParallelReduceThreshold = 1
	variants["lut"] = lut
	variants["parallel"] = par
	variants["lut+parallel"] = both
	return ref, variants
}

// TestFastPathsMatchReference is the acceptance invariant of the fast paths:
// for every caching method, the LUT and the parallel reduction (alone and
// combined) must return the same result ids and the same prune/true-hit/hit
// counters as the reference serial path.
func TestFastPathsMatchReference(t *testing.T) {
	forceParallelism(t)
	w := buildWorld(t, 1500, 12, 21)
	k := 10
	for _, m := range AllMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			base := Config{Method: m, CacheBytes: 64 << 10, Tau: 6}
			refCfg, variants := fastPathConfigs(base)
			ref, err := NewEngine(w.pf, w.prof, candFunc(w.ix), refCfg)
			if err != nil {
				t.Fatal(err)
			}
			for name, cfg := range variants {
				eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for qi, q := range w.qtest {
					want, wst, err := ref.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, gst, err := eng.Search(q, k)
					if err != nil {
						t.Fatalf("%s query %d: %v", name, qi, err)
					}
					sort.Ints(want)
					sort.Ints(got)
					if len(got) != len(want) {
						t.Fatalf("%s query %d: %d ids, want %d", name, qi, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s query %d: ids %v, want %v", name, qi, got, want)
						}
					}
					if gst.Hits != wst.Hits || gst.Pruned != wst.Pruned ||
						gst.TrueHits != wst.TrueHits || gst.Remaining != wst.Remaining ||
						gst.Fetched != wst.Fetched {
						t.Fatalf("%s query %d: stats %+v, want %+v", name, qi, gst, wst)
					}
					if wst.UsedLUT {
						t.Fatalf("reference engine used the LUT")
					}
					if wst.ReduceWorkers > 1 {
						t.Fatalf("reference engine went parallel")
					}
				}
				// The forced variants must actually exercise their path on
				// methods that support it.
				agg := eng.Aggregate()
				if (name == "parallel" || name == "lut+parallel") && agg.ParallelQueries == 0 {
					t.Fatalf("%s: no query fanned out", name)
				}
				if m != NoCache && m != Exact && m != MHCR &&
					(name == "lut" || name == "lut+parallel") && agg.LUTQueries == 0 {
					t.Fatalf("%s: no query used the LUT", name)
				}
			}
		})
	}
}

// TestSearchIntoReusesBuffer pins the SearchInto contract: results are
// appended to dst and agree with Search.
func TestSearchIntoReusesBuffer(t *testing.T) {
	w := buildWorld(t, 800, 8, 22)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCD, CacheBytes: 1 << 18, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int, 0, 16)
	for _, q := range w.qtest {
		want, _, err := eng.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.SearchInto(q, 5, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(want)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("SearchInto %d ids, Search %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("SearchInto %v, Search %v", got, want)
			}
		}
		if cap(dst) >= len(got) {
			dst = got // buffer was reused or grown; keep it for the next query
		}
	}
}

// TestConcurrentFastPathSearches drives one engine from many goroutines
// (the serve path) with LUT and parallel reduction forced on, so the race
// detector can audit the pooled scratch and the worker fan-out together.
func TestConcurrentFastPathSearches(t *testing.T) {
	forceParallelism(t)
	w := buildWorld(t, 1200, 12, 23)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
		Method: HCO, CacheBytes: 64 << 10, Tau: 6,
		LUTMinCandidates: 1, ParallelReduceThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 10; i++ {
				q := w.qtest[(g*7+i)%len(w.qtest)]
				if _, _, err := eng.Search(q, 10); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if agg := eng.Aggregate(); agg.Queries != 40 {
		t.Fatalf("aggregate recorded %d queries, want 40", agg.Queries)
	}
}
