package core

import "context"

// MergePoint is one delta-index point folded into a merged search: a point
// inserted after the engine was built, carried with its exact vector. ID is
// the dataset-global identifier the point will keep after compaction, so
// merged results are id-identical to an engine rebuilt over the folded
// dataset.
type MergePoint struct {
	ID  int32
	Vec []float32
}

// Merge is the live-ingest overlay of a merged search: a tombstone mask over
// base ids and the delta points to fold into the reduction. The engine
// applies it inside Algorithm 1 — tombstoned base candidates are masked
// before Phase 2, delta points are scored exactly (lb = ub = d², zero I/O)
// and compete in the same k-th-bound selection, pruning and refinement as
// the base candidates.
//
// Extras whose ID is below the engine's point horizon are skipped: after a
// compaction the freshly built engine already contains those points, and the
// skip makes the overlay safe to use across an RCU engine swap without any
// coordination beyond reading the new engine's length.
//
// Deleted must be safe for concurrent use and stable for the duration of one
// search; Extra and the vectors it references must not be mutated while a
// search using them is in flight.
type Merge struct {
	Deleted func(id int32) bool
	Extra   []MergePoint
}

// extraLive reports whether extra ex survives the overlay's own masking for
// an engine holding horizon base points.
func (mg *Merge) extraLive(ex *MergePoint, horizon int32) bool {
	if ex.ID < horizon {
		return false
	}
	return mg.Deleted == nil || !mg.Deleted(ex.ID)
}

// SearchMerged is SearchMergedIntoCtx with a background context and a fresh
// result slice.
func (e *Engine) SearchMerged(q []float32, k int, mg *Merge) ([]int, QueryStats, error) {
	return e.SearchMergedIntoCtx(context.Background(), q, k, nil, mg)
}

// SearchMergedIntoCtx runs Algorithm 1 over the base candidates with the
// live-ingest overlay folded in; a nil mg degenerates to SearchIntoCtx. See
// Merge for the exact masking and scoring semantics.
func (e *Engine) SearchMergedIntoCtx(ctx context.Context, q []float32, k int, dst []int, mg *Merge) ([]int, QueryStats, error) {
	return e.searchIntoCtx(ctx, q, k, dst, mg)
}

// NumPoints returns the number of base points the engine was built over —
// the horizon below which merged-search extras are treated as already
// compacted.
func (e *Engine) NumPoints() int { return e.ds.Len() }

// EncodePoint quantizes p through the engine's live histogram into a packed
// HFF code, or returns nil when the method keeps no per-point codes
// (NoCache, Exact, mHC-R). The delta index records these codes so that a
// freshly ingested point carries the same representation a cached base point
// would.
func (e *Engine) EncodePoint(p []float32) []uint64 {
	if e.codec.Dim() == 0 { // zero-value codec: method keeps no codes
		return nil
	}
	codes := make([]int, e.ds.Dim)
	return e.encodeVector(p, codes, nil)
}
