package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"exploitbit/internal/costmodel"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
)

// Maintainer implements Section 3.5's histogram maintenance: "we expect that
// the distribution of queries in the workload does not change rapidly …
// perform updates and rebuild the cache periodically". It serves queries
// through a current engine, remembers a sliding window of recent queries,
// and rebuilds the cache (HFF content, F′, Algorithm 2) from that window
// when the observed hit ratio degrades against the post-build baseline —
// the signature of workload drift.
//
// Rebuilds are non-blocking: the serving engine lives in an atomic pointer,
// drift detection only *launches* a rebuild, and the rebuild runs in a
// background goroutine that swaps the new engine in when done (RCU-style:
// readers never wait for writers). Searches in flight during a rebuild keep
// using the old engine; a failed rebuild is recorded and the old engine
// keeps serving.
type Maintainer struct {
	pf  *disk.PointFile
	cfg Config
	opt MaintainOptions

	// fold is the dataset + Phase-1 candidate generator the maintainer
	// profiles and builds engines from. It lives behind an atomic pointer
	// because a live-ingest compaction (CompactRebuild) swaps both together
	// after folding delta points into the base, while buildEngine and the
	// watchdog's evaluation goroutine read them outside any rebuild lock.
	fold atomic.Pointer[foldState]

	// initialWL is the workload the maintainer was constructed from, retained
	// as the profiling fallback for a compaction that lands before the drift
	// window has recorded anything.
	initialWL [][]float32

	// eng is the serving engine. Loaded lock-free on every search; stored
	// under mu when a rebuild completes.
	eng atomic.Pointer[Engine]

	// build constructs a replacement engine from a window of queries at a
	// code length. It is a field so tests can inject failures; the default
	// is buildEngine.
	build func(wl [][]float32, k, tau int) (*Engine, error)

	// tau is the code length of the serving engine. Drift and quarantine
	// rebuilds preserve it; only a watchdog retune moves it.
	tau     atomic.Int64
	retunes atomic.Int64

	// monitor is the Section 4 drift watchdog; nil unless AdaptiveTau. One
	// background window evaluation runs at a time (evaluating CAS) — a slow
	// re-profile simply skips windows instead of piling up goroutines.
	monitor    *costmodel.Monitor
	evaluating atomic.Bool

	// rebuildMu serializes rebuild *execution* (profile + engine build),
	// never searches. rebuilding is the launch guard: only one background
	// rebuild may be queued or running at a time.
	rebuildMu   sync.Mutex
	rebuilding  atomic.Bool
	rebuilds    atomic.Int64
	rebuildErrs atomic.Int64

	// rebuildGate, when non-nil, is received from by the background rebuild
	// before it starts building — a test seam to hold a rebuild in flight
	// (settable from outside the package via MaintainOptions.RebuildGate).
	rebuildGate chan struct{}

	// lifeMu guards closed and the wg.Add/Wait ordering: a rebuild launch
	// must either be observed by Close's Wait or be refused, never race it.
	lifeMu sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// lastWallNs / lastAtNs record the most recent successful rebuild's
	// build wall-clock and completion time (UnixNano); zero until the first
	// rebuild lands.
	lastWallNs atomic.Int64
	lastAtNs   atomic.Int64

	// mu guards the drift window and hit-ratio bookkeeping only; it is held
	// for a few counter updates per query, never across a search or a build.
	mu    sync.Mutex
	drift driftState
	adapt adaptWindow
}

// adaptWindow accumulates one watchdog window's candidate-weighted observed
// ratios. The owner provides the locking.
type adaptWindow struct {
	hits, cands, remaining int64
	n, size                int
}

// add folds one served query. When the window completes it returns the
// observed (ρ_hit, ρ_refine) and resets; a window that saw no candidates is
// discarded (nothing to compare the model against).
func (w *adaptWindow) add(st QueryStats) (float64, float64, bool) {
	if w.size <= 0 {
		return 0, 0, false
	}
	w.hits += int64(st.Hits)
	w.cands += int64(st.Candidates)
	w.remaining += int64(st.Remaining)
	w.n++
	if w.n < w.size {
		return 0, 0, false
	}
	hits, cands, rem := w.hits, w.cands, w.remaining
	w.reset()
	if cands == 0 {
		return 0, 0, false
	}
	return float64(hits) / float64(cands), float64(rem) / float64(cands), true
}

func (w *adaptWindow) reset() {
	w.hits, w.cands, w.remaining = 0, 0, 0
	w.n = 0
}

// maintSignal is what one recorded query asks the maintainer to launch:
// a drift rebuild (the one-window countdown expired), an adaptive window
// evaluation, or neither.
type maintSignal struct {
	rebuildWL [][]float32 // non-nil: launch a drift rebuild from this window
	evalWL    [][]float32 // non-nil: evaluate this window against the model

	obsHit, obsRefine float64 // observed ratios of the completed window
}

// adaptInputs assembles the Section 4 model inputs from a freshly profiled
// window and the engine's geometry, mirroring System.CostInputs.
func adaptInputs(prof *Profile, ds *dataset.Dataset, budget int64) costmodel.Inputs {
	return costmodel.Inputs{
		AvgCandSize: prof.AvgCandSize,
		FreqSorted:  prof.FreqSorted(),
		BudgetBytes: budget,
		Dim:         ds.Dim,
		DomainWidth: ds.Domain.Hi - ds.Domain.Lo,
		Ndom:        ds.Domain.Ndom,
		Dmax:        prof.AvgDmax,
		Lvalue:      32,
	}
}

// driftState is the drift detector of one maintained engine: the sliding
// query window and the candidate-weighted hit-ratio bookkeeping. It is
// extracted from Maintainer so the sharded maintainer can run one
// independent detector per shard. The owner provides the locking (all
// methods assume the caller holds its mutex).
type driftState struct {
	opt MaintainOptions

	window [][]float32 // ring of recent queries
	nextW  int
	filled bool

	// Hit-ratio bookkeeping (candidate-weighted, like ρ_hit).
	baseHits, baseCands     int64 // first window after a rebuild
	recentHits, recentCands int64 // sliding estimate since baseline froze
	sinceRebuild            int

	// pendingRebuild counts down after drift detection. Detection fires
	// while the window is still dominated by pre-drift queries (the recent
	// estimate degrades within a fraction of a window), so snapshotting
	// immediately would profile the *old* regime. Waiting one full window
	// guarantees the rebuild sees pure post-drift traffic — one rebuild then
	// lands on the new regime instead of converging over several.
	pendingRebuild int
}

func newDriftState(opt MaintainOptions) driftState {
	return driftState{opt: opt, window: make([][]float32, opt.WindowSize)}
}

// record folds one served query into the window. When drift is detected it
// calls tryArm (the owner's rebuild-launch CAS) and, one full window later,
// returns the rebuild workload snapshot; otherwise it returns nil.
func (d *driftState) record(q []float32, st QueryStats, tryArm func() bool) [][]float32 {
	// Record the query (copying: callers may reuse buffers).
	d.window[d.nextW] = append([]float32(nil), q...)
	d.nextW = (d.nextW + 1) % len(d.window)
	if d.nextW == 0 {
		d.filled = true
	}
	d.sinceRebuild++

	// A detected drift waits out one window before snapshotting, so the
	// rebuild profiles only queries issued after the regime change.
	if d.pendingRebuild > 0 {
		d.pendingRebuild--
		if d.pendingRebuild == 0 {
			return d.snapshot()
		}
		return nil
	}

	// Baseline: the first window after a (re)build defines "healthy".
	if d.sinceRebuild <= d.opt.WindowSize {
		d.baseHits += int64(st.Hits)
		d.baseCands += int64(st.Candidates)
		return nil
	}
	// Exponentially decayed recent window keeps the estimate moving.
	d.recentHits += int64(st.Hits)
	d.recentCands += int64(st.Candidates)
	if d.recentCands > d.baseCands && d.baseCands > 0 {
		d.recentHits /= 2
		d.recentCands /= 2
	}

	if d.sinceRebuild >= d.opt.MinQueriesBetweenRebuilds+d.opt.WindowSize &&
		d.baseCands > 0 && d.recentCands > 0 {
		base := float64(d.baseHits) / float64(d.baseCands)
		recent := float64(d.recentHits) / float64(d.recentCands)
		if recent < base*d.opt.DegradeFactor && tryArm() {
			d.pendingRebuild = len(d.window)
		}
	}
	return nil
}

// resetAfterInstall restarts the baseline after a rebuild swaps in.
func (d *driftState) resetAfterInstall() {
	d.sinceRebuild = 0
	d.pendingRebuild = 0
	d.baseHits, d.baseCands = 0, 0
	d.recentHits, d.recentCands = 0, 0
}

// snapshot copies out the recorded window, oldest-first fill order.
func (d *driftState) snapshot() [][]float32 {
	src := d.window[:d.nextW]
	if d.filled {
		src = d.window
	}
	out := make([][]float32, 0, len(src))
	for _, q := range src {
		if q != nil {
			out = append(out, q)
		}
	}
	return out
}

// MaintainOptions tunes the drift detector.
type MaintainOptions struct {
	// WindowSize is the number of recent queries kept for rebuilds and used
	// as the baseline/measurement period (default 256).
	WindowSize int
	// DegradeFactor triggers a rebuild when the recent hit ratio falls
	// below DegradeFactor × the post-build baseline (default 0.8).
	DegradeFactor float64
	// MinQueriesBetweenRebuilds prevents thrashing (default WindowSize).
	MinQueriesBetweenRebuilds int
	// RebuildGate, when non-nil, parks every background rebuild on a
	// channel receive before it starts building — a test seam for holding a
	// rebuild in flight while exercising searches, shutdown and /stats
	// against it. Production configurations leave it nil.
	RebuildGate chan struct{}

	// AdaptiveTau arms the Section 4 drift watchdog: every WindowSize served
	// queries the maintainer re-profiles the window off the search path,
	// feeds the observed ρ_hit/ρ_refine and the model's predictions for the
	// serving τ into a costmodel.Monitor, and — when the predicted C_refine
	// improvement of the recommended τ stays above RetuneThreshold for
	// RetuneWindows consecutive windows — launches a retune rebuild at that
	// τ through the same RCU machinery as drift rebuilds. Off by default:
	// the engine then behaves bit-identically to a non-adaptive one.
	AdaptiveTau bool
	// RetuneThreshold is the minimum predicted relative C_refine improvement
	// that counts a window as drifted (default 0.10).
	RetuneThreshold float64
	// RetuneWindows is how many consecutive over-threshold windows must
	// accumulate before a retune fires (default 3).
	RetuneWindows int
}

func (o MaintainOptions) withDefaults() MaintainOptions {
	if o.WindowSize < 8 {
		o.WindowSize = 256
	}
	if o.DegradeFactor <= 0 || o.DegradeFactor >= 1 {
		o.DegradeFactor = 0.8
	}
	if o.MinQueriesBetweenRebuilds < 1 {
		o.MinQueriesBetweenRebuilds = o.WindowSize
	}
	return o
}

// MaintainStats is a snapshot of the maintainer's rebuild activity.
type MaintainStats struct {
	Rebuilds        int  // completed rebuilds that swapped an engine in
	RebuildErrors   int  // rebuild attempts that failed (old engine kept)
	RebuildInFlight bool // a background rebuild is queued or running

	// LastRebuildWall is the build wall-clock of the most recent successful
	// rebuild (profile + engine construction, excluding any gate wait);
	// LastRebuildAt is when it swapped in. Both are zero until the first
	// rebuild lands.
	LastRebuildWall time.Duration
	LastRebuildAt   time.Time

	// Quarantines counts the quarantine-triggered rebuilds launched for the
	// shard (sharded maintainer only); Quarantined is the shard's current
	// fault state.
	Quarantines int
	Quarantined bool

	// Retunes counts watchdog-triggered τ retune rebuilds that swapped in;
	// Tau is the serving engine's code length (for a sharded aggregate, the
	// shards' τ when they all agree and 0 when they have diverged).
	Retunes int
	Tau     int
}

// foldState pairs the dataset with its Phase-1 candidate generator; see
// Maintainer.fold.
type foldState struct {
	ds    *dataset.Dataset
	cands CandidateFunc
}

// NewMaintainer wraps an initial workload into a self-maintaining engine.
func NewMaintainer(pf *disk.PointFile, ds *dataset.Dataset, cands CandidateFunc, initialWL [][]float32, k int, cfg Config, opt MaintainOptions) (*Maintainer, error) {
	opt = opt.withDefaults()
	m := &Maintainer{
		pf: pf, cfg: cfg, opt: opt,
		initialWL:   initialWL,
		drift:       newDriftState(opt),
		rebuildGate: opt.RebuildGate,
	}
	m.fold.Store(&foldState{ds: ds, cands: cands})
	m.build = m.buildEngine
	tau := cfg.withDefaults().Tau
	m.tau.Store(int64(tau))
	if opt.AdaptiveTau {
		m.adapt.size = opt.WindowSize
		m.monitor = costmodel.NewMonitor(tau, costmodel.MonitorConfig{
			Threshold: opt.RetuneThreshold,
			Windows:   opt.RetuneWindows,
		})
	}
	eng, err := m.buildEngine(initialWL, k, tau)
	if err != nil {
		return nil, fmt.Errorf("core: initial maintained engine: %w", err)
	}
	m.eng.Store(eng)
	return m, nil
}

// buildEngine is the default build: profile the window, construct the engine
// at the requested code length, both over the current fold (which a
// compaction may have extended since the last rebuild).
func (m *Maintainer) buildEngine(wl [][]float32, k, tau int) (*Engine, error) {
	fs := m.fold.Load()
	prof := BuildProfile(fs.ds, fs.cands, wl, k)
	cfg := m.cfg
	cfg.Tau = tau
	return NewEngine(m.pf, prof, fs.cands, cfg)
}

// curTau returns the serving engine's code length.
func (m *Maintainer) curTau() int { return int(m.tau.Load()) }

// Engine returns the currently serving engine (for inspection).
func (m *Maintainer) Engine() *Engine { return m.eng.Load() }

// DiskStats snapshots the backing point file's device counters, including
// fault-handling activity.
func (m *Maintainer) DiskStats() disk.Stats { return m.pf.Stats() }

// Rebuilds reports how many automatic rebuilds have completed.
func (m *Maintainer) Rebuilds() int { return int(m.rebuilds.Load()) }

// Stats snapshots the rebuild counters.
func (m *Maintainer) Stats() MaintainStats {
	st := MaintainStats{
		Rebuilds:        int(m.rebuilds.Load()),
		RebuildErrors:   int(m.rebuildErrs.Load()),
		RebuildInFlight: m.rebuilding.Load(),
		Retunes:         int(m.retunes.Load()),
		Tau:             m.curTau(),
	}
	if ns := m.lastWallNs.Load(); ns > 0 {
		st.LastRebuildWall = time.Duration(ns)
	}
	if at := m.lastAtNs.Load(); at > 0 {
		st.LastRebuildAt = time.Unix(0, at)
	}
	return st
}

// Search serves one query, records it in the drift window, and launches a
// background rebuild when drift is detected. Safe for concurrent use:
// searches read the engine through an atomic pointer and never wait on a
// rebuild.
func (m *Maintainer) Search(q []float32, k int) ([]int, QueryStats, error) {
	return m.SearchIntoCtx(context.Background(), q, k, nil)
}

// SearchCtx is Search under a request context, forwarding cancellation to
// the serving engine (see Engine.SearchCtx). Abandoned queries never enter
// the drift window: a burst of cancellations must not masquerade as a
// workload shift and trigger a rebuild.
func (m *Maintainer) SearchCtx(ctx context.Context, q []float32, k int) ([]int, QueryStats, error) {
	return m.SearchIntoCtx(ctx, q, k, nil)
}

// SearchInto is Search appending result identifiers to dst, mirroring
// Engine.SearchInto for allocation-conscious callers.
func (m *Maintainer) SearchInto(q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return m.SearchIntoCtx(context.Background(), q, k, dst)
}

// SearchIntoCtx is SearchInto under a request context; see SearchCtx.
func (m *Maintainer) SearchIntoCtx(ctx context.Context, q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return m.SearchMergedIntoCtx(ctx, q, k, dst, nil)
}

// SearchMergedIntoCtx is SearchIntoCtx with the live-ingest overlay folded
// into the serving engine's search (see Merge). Merged queries enter the
// drift window like plain ones: the delta's contribution to hit ratios is
// what the rebuilt cache will actually serve.
func (m *Maintainer) SearchMergedIntoCtx(ctx context.Context, q []float32, k int, dst []int, mg *Merge) ([]int, QueryStats, error) {
	ids, st, err := m.eng.Load().SearchMergedIntoCtx(ctx, q, k, dst, mg)
	if err != nil {
		return nil, st, err
	}

	sig := m.recordQuery(q, st)
	if sig.rebuildWL != nil {
		m.launchRebuild(sig.rebuildWL, k, m.curTau(), false)
	}
	if sig.evalWL != nil {
		m.launchEvaluate(sig.obsHit, sig.obsRefine, sig.evalWL, k)
	}
	return ids, st, nil
}

// recordQuery folds one served query into the drift window and, when
// adaptive, the watchdog window. When drift is detected (and no rebuild is
// already in flight) it arms a one-window countdown; once the window holds
// only post-detection queries it snapshots and returns the rebuild workload.
// A completed watchdog window returns its observed ratios and a snapshot to
// evaluate.
func (m *Maintainer) recordQuery(q []float32, st QueryStats) maintSignal {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sig maintSignal
	sig.rebuildWL = m.drift.record(q, st, func() bool { return m.rebuilding.CompareAndSwap(false, true) })
	if m.monitor != nil {
		if hit, ref, done := m.adapt.add(st); done {
			sig.obsHit, sig.obsRefine = hit, ref
			sig.evalWL = m.drift.snapshot()
		}
	}
	return sig
}

// launchEvaluate runs one watchdog window evaluation in the background: it
// re-profiles the window (Phase 1 only — the serving engine and its stats
// are untouched, so a never-retuning adaptive engine stays bit-identical to
// a non-adaptive one), asks the monitor to compare observed ratios against
// the model, and on a retune decision launches a rebuild at the recommended
// τ through the ordinary rebuild CAS. At most one evaluation runs at a time;
// windows that complete while one is in flight are skipped, not queued.
func (m *Maintainer) launchEvaluate(obsHit, obsRefine float64, wl [][]float32, k int) {
	if !m.evaluating.CompareAndSwap(false, true) {
		return
	}
	m.lifeMu.Lock()
	if m.closed {
		m.lifeMu.Unlock()
		m.evaluating.Store(false)
		return
	}
	m.wg.Add(1)
	m.lifeMu.Unlock()
	go func() {
		defer m.wg.Done()
		defer m.evaluating.Store(false)
		fs := m.fold.Load()
		prof := BuildProfile(fs.ds, fs.cands, wl, k)
		in := adaptInputs(prof, fs.ds, m.cfg.CacheBytes)
		d := m.monitor.Observe(obsHit, obsRefine, in)
		if d.Retune && m.rebuilding.CompareAndSwap(false, true) {
			m.launchRebuild(wl, k, d.Tau, true)
		}
	}()
}

// CostModel snapshots the drift watchdog's telemetry; ok is false when the
// maintainer is not adaptive.
func (m *Maintainer) CostModel() (costmodel.MonitorSnapshot, bool) {
	if m.monitor == nil {
		return costmodel.MonitorSnapshot{}, false
	}
	return m.monitor.Snapshot(), true
}

// launchRebuild starts the background rebuild for a window snapshot at code
// length tau (retuned marks a watchdog-triggered retune). The caller must
// have won the m.rebuilding CAS. After Close the launch is refused
// (releasing the CAS) instead of racing the shutdown.
func (m *Maintainer) launchRebuild(wl [][]float32, k, tau int, retuned bool) {
	m.lifeMu.Lock()
	if m.closed {
		m.lifeMu.Unlock()
		m.rebuilding.Store(false)
		return
	}
	m.wg.Add(1)
	m.lifeMu.Unlock()
	go func() {
		defer m.wg.Done()
		m.backgroundRebuild(wl, k, tau, retuned)
	}()
}

// Close stops the maintainer's background activity: no further rebuilds
// launch, and any rebuild already in flight is waited for (its swap still
// lands — the work is done, discarding it buys nothing). Searches through a
// closed Maintainer still work; they just serve the frozen engine. Close is
// idempotent and is the graceful-shutdown hook the HTTP server calls after
// draining requests.
func (m *Maintainer) Close() {
	m.lifeMu.Lock()
	m.closed = true
	m.lifeMu.Unlock()
	m.wg.Wait()
}

// RebuildAsync launches a background rebuild from the current window,
// returning false when one is already queued or running, the window is
// empty, or the maintainer is closed. Unlike ForceRebuild it never blocks
// the caller on the build.
func (m *Maintainer) RebuildAsync(k int) bool {
	m.lifeMu.Lock()
	closed := m.closed
	m.lifeMu.Unlock()
	if closed {
		return false
	}
	if !m.rebuilding.CompareAndSwap(false, true) {
		return false
	}
	m.mu.Lock()
	wl := m.drift.snapshot()
	m.mu.Unlock()
	if len(wl) == 0 {
		m.rebuilding.Store(false)
		return false
	}
	m.launchRebuild(wl, k, m.curTau(), false)
	return true
}

// CompactRebuild folds a live-ingest delta into the base through one
// ordinary non-blocking RCU rebuild. prepare runs inside the background
// rebuild goroutine — under rebuildMu, off the search path — and performs
// the compactor's heavy lifting: extending the point file, building the
// folded dataset and its Phase-1 candidate generator. On success the fold is
// swapped, a fresh engine is profiled from the current drift window (or the
// initial workload when the window is empty) at the serving τ, and the
// engine is installed like any drift rebuild. onDone (optional) reports
// whether an engine was installed, after the swap is visible.
//
// CompactRebuild contends on the same launch CAS as drift, retune and
// quarantine rebuilds — one rebuild queue. It returns false without calling
// prepare when another rebuild is queued or running (the compactor simply
// retries on a later trigger) or when the maintainer is closed. The CAS is
// won before prepare runs, so a compaction never mutates the point file
// concurrently with another rebuild's profile or build.
func (m *Maintainer) CompactRebuild(k int, prepare func() (*dataset.Dataset, CandidateFunc, error), onDone func(installed bool)) bool {
	if !m.rebuilding.CompareAndSwap(false, true) {
		return false
	}
	m.lifeMu.Lock()
	if m.closed {
		m.lifeMu.Unlock()
		m.rebuilding.Store(false)
		return false
	}
	m.wg.Add(1)
	m.lifeMu.Unlock()

	m.mu.Lock()
	wl := m.drift.snapshot()
	m.mu.Unlock()
	if len(wl) == 0 {
		wl = m.initialWL
	}
	tau := m.curTau()

	go func() {
		defer m.wg.Done()
		defer m.rebuilding.Store(false)
		m.rebuildMu.Lock()
		defer m.rebuildMu.Unlock()
		if m.rebuildGate != nil {
			<-m.rebuildGate
		}
		fail := func() {
			m.rebuildErrs.Add(1)
			if onDone != nil {
				onDone(false)
			}
		}
		start := time.Now()
		ds, cands, err := prepare()
		if err != nil {
			fail()
			return
		}
		prof := BuildProfile(ds, cands, wl, k)
		cfg := m.cfg
		cfg.Tau = tau
		eng, err := NewEngine(m.pf, prof, cands, cfg)
		if err != nil {
			fail()
			return
		}
		m.fold.Store(&foldState{ds: ds, cands: cands})
		m.install(eng, time.Since(start), tau, false)
		if onDone != nil {
			onDone(true)
		}
	}()
	return true
}

// backgroundRebuild builds a replacement engine off the search path and
// swaps it in. A failed build only bumps RebuildErrors: the previous engine
// keeps serving and in-flight searches never observe the failure.
func (m *Maintainer) backgroundRebuild(wl [][]float32, k, tau int, retuned bool) {
	defer m.rebuilding.Store(false)
	m.rebuildMu.Lock()
	defer m.rebuildMu.Unlock()
	if m.rebuildGate != nil {
		<-m.rebuildGate
	}
	start := time.Now()
	eng, err := m.build(wl, k, tau)
	if err != nil {
		m.rebuildErrs.Add(1)
		return
	}
	m.install(eng, time.Since(start), tau, retuned)
}

// install publishes a freshly built engine, records the rebuild timing and
// resets the drift baseline and the watchdog window — the fresh cache's
// behavior is what both detectors must judge from now on.
func (m *Maintainer) install(eng *Engine, wall time.Duration, tau int, retuned bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.eng.Store(eng)
	m.rebuilds.Add(1)
	m.tau.Store(int64(tau))
	if retuned {
		m.retunes.Add(1)
	}
	m.lastWallNs.Store(int64(wall))
	m.lastAtNs.Store(time.Now().UnixNano())
	m.drift.resetAfterInstall()
	m.adapt.reset()
	if m.monitor != nil {
		m.monitor.NoteInstall(tau, retuned)
	}
}

// ForceRebuild rebuilds synchronously from the current window (the paper's
// "e.g., daily" scheduled variant; call it from a timer if preferred) and
// reports any build error to the caller.
func (m *Maintainer) ForceRebuild(k int) error {
	m.mu.Lock()
	wl := m.drift.snapshot()
	m.mu.Unlock()
	if len(wl) == 0 {
		return fmt.Errorf("core: no recorded queries to rebuild from")
	}
	m.rebuildMu.Lock()
	defer m.rebuildMu.Unlock()
	start := time.Now()
	eng, err := m.build(wl, k, m.curTau())
	if err != nil {
		m.rebuildErrs.Add(1)
		return err
	}
	m.install(eng, time.Since(start), m.curTau(), false)
	return nil
}
