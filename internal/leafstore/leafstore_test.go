package leafstore

import (
	"path/filepath"
	"testing"

	"exploitbit/internal/dataset"
)

func TestBuildAndLoad(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Name: "t", N: 50, Dim: 10, Seed: 1})
	leaves := [][]int32{
		{0, 5, 10, 15},
		{1, 2, 3},
		{49},
	}
	s, err := Build(filepath.Join(t.TempDir(), "leaves"), ds, leaves, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.NumLeaves() != 3 || s.Dim() != 10 {
		t.Fatalf("shape: %d leaves dim %d", s.NumLeaves(), s.Dim())
	}
	for li, want := range leaves {
		ids, pts, err := s.Load(li)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(want) {
			t.Fatalf("leaf %d: %d ids, want %d", li, len(ids), len(want))
		}
		for i, id := range ids {
			if id != want[i] {
				t.Fatalf("leaf %d id %d: got %d want %d", li, i, id, want[i])
			}
			orig := ds.Point(int(id))
			for j := range orig {
				if pts[i][j] != orig[j] {
					t.Fatalf("leaf %d point %d dim %d mismatch", li, i, j)
				}
			}
		}
		// Directory access without I/O.
		dir := s.LeafIDs(li)
		for i := range want {
			if dir[i] != want[i] {
				t.Fatal("directory mismatch")
			}
		}
	}
}

func TestLoadChargesPages(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Name: "t", N: 40, Dim: 10, Seed: 2})
	// One point = 44 bytes; 20 points + 4-byte header = 884 bytes → 4 pages
	// of 256 bytes.
	big := make([]int32, 20)
	for i := range big {
		big[i] = int32(i)
	}
	s, err := Build(filepath.Join(t.TempDir(), "leaves"), ds, [][]int32{big, {30}}, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Stats().PageReads != 0 {
		t.Fatal("build leaked reads")
	}
	if got := s.LeafPages(0); got != 4 {
		t.Fatalf("big leaf pages = %d, want 4", got)
	}
	if got := s.LeafPages(1); got != 1 {
		t.Fatalf("small leaf pages = %d, want 1", got)
	}
	if _, _, err := s.Load(0); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PageReads; got != 4 {
		t.Fatalf("big leaf load cost %d reads, want 4", got)
	}
	s.ResetStats()
	if _, _, err := s.Load(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PageReads; got != 1 {
		t.Fatalf("small leaf load cost %d reads", got)
	}
}

func TestLoadOutOfRange(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Name: "t", N: 4, Dim: 2, Seed: 3})
	s, err := Build(filepath.Join(t.TempDir(), "leaves"), ds, [][]int32{{0, 1}}, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Load(-1); err == nil {
		t.Fatal("expected error for leaf -1")
	}
	if _, _, err := s.Load(1); err == nil {
		t.Fatal("expected error for leaf 1")
	}
}
