package encoding

import (
	"math/rand"
	"testing"
)

// TestRoundTripAllTau is the satellite property test: Encode → Decode and
// Encode → At round-trip for every τ in [1,32] and dimensionalities chosen
// to land codes on, before and after word boundaries (cross-word offsets
// occur whenever 64 mod τ != 0).
func TestRoundTripAllTau(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for tau := 1; tau <= 32; tau++ {
		for _, dim := range []int{1, 2, 63, 64, 65, 127, 128, 129, 200} {
			c := NewCodec(dim, tau)
			codes := make([]int, dim)
			for trial := 0; trial < 5; trial++ {
				for j := range codes {
					codes[j] = rng.Intn(c.MaxCode() + 1)
				}
				// Exercise the extremes explicitly: max code forces every
				// bit of the field high, catching off-by-one masks.
				if trial == 0 {
					for j := range codes {
						codes[j] = c.MaxCode()
					}
				}
				words := c.Encode(codes, nil)
				if len(words) != c.Words() {
					t.Fatalf("tau=%d dim=%d: %d words, want %d", tau, dim, len(words), c.Words())
				}
				decoded := c.Decode(words, nil)
				for j := range codes {
					if decoded[j] != codes[j] {
						t.Fatalf("tau=%d dim=%d: Decode[%d]=%d, want %d", tau, dim, j, decoded[j], codes[j])
					}
					if got := c.At(words, j); got != codes[j] {
						t.Fatalf("tau=%d dim=%d: At(%d)=%d, want %d", tau, dim, j, got, codes[j])
					}
				}
			}
		}
	}
}

// TestDecodeSpecializationsMatchAt pins the τ=8/τ=16 fast loops against the
// general extractor on dimensions that do not fill the last word.
func TestDecodeSpecializationsMatchAt(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tau := range []int{8, 16} {
		for _, dim := range []int{1, 3, 7, 8, 9, 15, 16, 17, 100} {
			c := NewCodec(dim, tau)
			codes := make([]int, dim)
			for j := range codes {
				codes[j] = rng.Intn(c.MaxCode() + 1)
			}
			words := c.Encode(codes, nil)
			decoded := c.Decode(words, make([]int, dim))
			for j := range codes {
				if decoded[j] != c.At(words, j) {
					t.Fatalf("tau=%d dim=%d: specialized Decode[%d]=%d, At=%d",
						tau, dim, j, decoded[j], c.At(words, j))
				}
			}
		}
	}
}

// FuzzCodecRoundTrip lets the fuzzer pick τ, dim and raw code bytes; any
// mismatch between Encode and Decode/At is a packing bug.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(16), []byte{1, 2, 3, 4, 255, 0, 7, 9})
	f.Add(uint8(10), uint8(7), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(uint8(1), uint8(65), []byte{1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, tauRaw, dimRaw uint8, raw []byte) {
		tau := 1 + int(tauRaw)%32
		dim := 1 + int(dimRaw)%130
		c := NewCodec(dim, tau)
		codes := make([]int, dim)
		for j := range codes {
			var v int
			if len(raw) > 0 {
				v = int(raw[j%len(raw)])
			}
			codes[j] = v % (c.MaxCode() + 1)
		}
		words := c.Encode(codes, nil)
		decoded := c.Decode(words, nil)
		for j := range codes {
			if decoded[j] != codes[j] {
				t.Fatalf("tau=%d dim=%d: Decode[%d]=%d, want %d", tau, dim, j, decoded[j], codes[j])
			}
			if got := c.At(words, j); got != codes[j] {
				t.Fatalf("tau=%d dim=%d: At(%d)=%d, want %d", tau, dim, j, got, codes[j])
			}
		}
	})
}
