// Package kmeans provides the small Lloyd's-iteration clustering used to
// pick iDistance reference points and to produce the "clustered" dataset
// file ordering of the Figure 9 experiment.
package kmeans

import (
	"math"
	"math/rand"

	"exploitbit/internal/vec"
)

// source abstracts point access so both datasets and samples work.
type source interface {
	Len() int
	Point(i int) []float32
}

// Result holds cluster centers and per-point assignments.
type Result struct {
	Centers [][]float32
	Assign  []int32
}

// Run clusters src into k clusters with at most iters Lloyd iterations,
// seeded deterministically. k is clamped to the number of points.
func Run(src source, k, iters int, seed int64) Result {
	n := src.Len()
	if n == 0 {
		return Result{}
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	if iters < 1 {
		iters = 1
	}
	rng := rand.New(rand.NewSource(seed))
	dim := len(src.Point(0))

	// k-means++ style seeding, capped probe count for speed.
	centers := make([][]float32, k)
	first := rng.Intn(n)
	centers[0] = append([]float32(nil), src.Point(first)...)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = vec.SqDist(src.Point(i), centers[0])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i, d := range minDist {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		centers[c] = append([]float32(nil), src.Point(pick)...)
		for i := range minDist {
			if d := vec.SqDist(src.Point(i), centers[c]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int32, n)
	sums := make([][]float64, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := int32(0), math.Inf(1)
			p := src.Point(i)
			for c := 0; c < k; c++ {
				if d := vec.SqDist(p, centers[c]); d < bestD {
					best, bestD = int32(c), d
				}
			}
			if assign[i] != best {
				changed = true
			}
			assign[i] = best
		}
		if !changed && it > 0 {
			break
		}
		for c := range sums {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			p := src.Point(i)
			for j := range p {
				sums[c][j] += float64(p[j])
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centers[c] = append(centers[c][:0], src.Point(rng.Intn(n))...)
				continue
			}
			for j := 0; j < dim; j++ {
				centers[c][j] = float32(sums[c][j] / float64(counts[c]))
			}
		}
	}
	// Final assignment against the last centers.
	for i := 0; i < n; i++ {
		best, bestD := int32(0), math.Inf(1)
		p := src.Point(i)
		for c := 0; c < k; c++ {
			if d := vec.SqDist(p, centers[c]); d < bestD {
				best, bestD = int32(c), d
			}
		}
		assign[i] = best
	}
	return Result{Centers: centers, Assign: assign}
}
