package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"exploitbit/internal/bounds"
	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
)

// Engine snapshots persist everything the offline pipeline produced — the
// histogram(s), the HFF cache content, the configuration — so a restarted
// process can serve queries immediately without re-profiling the workload or
// re-running Algorithm 2 (Section 3.5's "rebuild the cache periodically"
// maintenance model: build once per period, reload everywhere else).
//
// The snapshot stores point identifiers, not vectors: the dataset file is
// the source of truth and cached representations are re-encoded on load.
// A version-2 snapshot holds a sharded engine: the same magic, version 2, a
// shard count, then one version-1 body per shard in shard order. Each body
// is written against the shard's local id space (the MD bucket assignment is
// localized through the shard's id map), so every shard body round-trips
// like a standalone engine snapshot.
const (
	snapMagic          = 0x4542534e // "EBSN"
	snapVersion        = 1
	snapVersionSharded = 2

	histNone   = 0
	histGlobal = 1
	histPerDim = 2
	histMD     = 3
)

// WriteSnapshot serializes the engine's cache state.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	if err := binary.Write(bw, le, uint32(snapMagic)); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(snapVersion)); err != nil {
		return err
	}
	if err := e.writeSnapshotBody(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSnapshot serializes every shard's cache state as one version-2
// snapshot. Load it back with LoadShardedEngine over the same shard layout.
func (se *ShardedEngine) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	for _, v := range []uint32{snapMagic, snapVersionSharded, uint32(len(se.units))} {
		if err := binary.Write(bw, le, v); err != nil {
			return err
		}
	}
	for s := range se.units {
		if err := se.Engine(s).writeSnapshotBody(bw); err != nil {
			return fmt.Errorf("core: writing shard %d snapshot body: %w", s, err)
		}
	}
	return bw.Flush()
}

// writeSnapshotBody writes the version-1 payload: method, configuration,
// histogram and cache content. Ids are written in the engine's own (local)
// id space; the MD bucket assignment is localized via globalID so a shared
// global MD histogram round-trips as a correct shard-local one.
func (e *Engine) writeSnapshotBody(bw *bufio.Writer) error {
	le := binary.LittleEndian
	write := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	method := []byte(string(e.cfg.Method))
	if err := write(uint32(len(method))); err != nil {
		return err
	}
	if _, err := bw.Write(method); err != nil {
		return err
	}
	if err := write(int32(e.cfg.Tau), e.cfg.CacheBytes, int32(e.cfg.Policy), e.cfg.SmoothEps); err != nil {
		return err
	}

	// Histogram payload.
	switch {
	case e.ghist != nil:
		if err := write(uint8(histGlobal)); err != nil {
			return err
		}
		if _, err := e.ghist.WriteTo(bw); err != nil {
			return err
		}
	case e.phist != nil:
		if err := write(uint8(histPerDim)); err != nil {
			return err
		}
		if _, err := e.phist.WriteTo(bw); err != nil {
			return err
		}
	case e.md != nil:
		if err := write(uint8(histMD), uint32(e.md.B()), uint32(e.md.Dim())); err != nil {
			return err
		}
		for b := 0; b < e.md.B(); b++ {
			lo, hi := e.md.Rect(b)
			for _, v := range lo {
				if err := write(math.Float32bits(v)); err != nil {
					return err
				}
			}
			for _, v := range hi {
				if err := write(math.Float32bits(v)); err != nil {
					return err
				}
			}
		}
		if err := write(uint32(e.ds.Len())); err != nil {
			return err
		}
		for id := 0; id < e.ds.Len(); id++ {
			if err := write(uint32(e.md.BucketOf(e.globalID(id)))); err != nil {
				return err
			}
		}
	default:
		if err := write(uint8(histNone)); err != nil {
			return err
		}
	}

	// Cache content: capacity + ids.
	var keys []int
	capacity := 0
	switch {
	case e.slab != nil:
		keys, capacity = e.slab.Keys(), e.slab.Capacity()
	case e.approx != nil:
		keys, capacity = e.approx.Keys(), e.approx.Capacity()
	case e.exact != nil:
		keys, capacity = e.exact.Keys(), e.exact.Capacity()
	case e.mdCache != nil:
		keys, capacity = e.mdCache.Keys(), e.mdCache.Capacity()
	}
	if err := write(uint32(capacity), uint32(len(keys))); err != nil {
		return err
	}
	for _, id := range keys {
		if err := write(uint32(id)); err != nil {
			return err
		}
	}
	return nil
}

// readSnapshotHeader consumes and validates the magic + version pair.
func readSnapshotHeader(br *bufio.Reader) (uint32, error) {
	var magic, version uint32
	le := binary.LittleEndian
	if err := binary.Read(br, le, &magic); err != nil {
		return 0, fmt.Errorf("core: reading snapshot header: %w", err)
	}
	if err := binary.Read(br, le, &version); err != nil {
		return 0, fmt.Errorf("core: reading snapshot header: %w", err)
	}
	if magic != snapMagic {
		return 0, fmt.Errorf("core: not an engine snapshot (magic %#x)", magic)
	}
	return version, nil
}

// LoadEngine reconstructs an engine from a snapshot, the dataset, its point
// file and a candidate index — no workload needed.
func LoadEngine(pf *disk.PointFile, ds *dataset.Dataset, cands CandidateFunc, r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	version, err := readSnapshotHeader(br)
	if err != nil {
		return nil, err
	}
	if version == snapVersionSharded {
		return nil, fmt.Errorf("core: snapshot holds a sharded engine; load it with LoadShardedEngine")
	}
	if version != snapVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", version)
	}
	return readSnapshotBody(br, pf, ds, cands)
}

// LoadShardedEngine reconstructs a sharded engine from a version-2 snapshot
// over the same shard layout it was written with: specs, owner and local
// must come from the identical partition (same shard count and membership).
func LoadShardedEngine(specs []ShardSpec, owner, local []int32, cands CandidateFunc, r io.Reader) (*ShardedEngine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: sharded engine needs at least one shard")
	}
	total := 0
	for s, spec := range specs {
		if spec.PF == nil || spec.DS == nil {
			return nil, fmt.Errorf("core: shard %d is missing its point file or dataset", s)
		}
		if len(spec.GlobalIDs) != spec.DS.Len() {
			return nil, fmt.Errorf("core: shard %d id map covers %d of %d points", s, len(spec.GlobalIDs), spec.DS.Len())
		}
		total += spec.DS.Len()
	}
	if len(owner) != total || len(local) != total {
		return nil, fmt.Errorf("core: owner/local maps cover %d/%d ids, shards hold %d points", len(owner), len(local), total)
	}

	br := bufio.NewReader(r)
	version, err := readSnapshotHeader(br)
	if err != nil {
		return nil, err
	}
	if version == snapVersion {
		return nil, fmt.Errorf("core: snapshot holds a single engine; load it with LoadEngine")
	}
	if version != snapVersionSharded {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", version)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("core: reading snapshot shard count: %w", err)
	}
	if int(count) != len(specs) {
		return nil, fmt.Errorf("core: snapshot holds %d shards, layout has %d", count, len(specs))
	}

	se := &ShardedEngine{
		cands:    cands,
		owner:    owner,
		local:    local,
		pagesPer: specs[0].PF.PagesPerPoint(),
		tio:      specs[0].PF.Tio(),
	}
	for s, spec := range specs {
		e, err := readSnapshotBody(br, spec.PF, spec.DS, se.ShardCandidates(s))
		if err != nil {
			return nil, fmt.Errorf("core: reading shard %d snapshot body: %w", s, err)
		}
		// The body was written in local id space with a localized MD
		// assignment, so the loaded engine's model is shard-local and needs
		// no id translation (globalIDs stays nil).
		u := &shardUnit{pf: spec.PF, globalIDs: spec.GlobalIDs}
		u.eng.Store(e)
		se.units = append(se.units, u)
	}
	se.cfg = se.Engine(0).cfg

	se.unitBase = make([]int32, len(specs)+1)
	for s, spec := range specs {
		maxPage, err := spec.PF.PageOf(spec.DS.Len() - 1)
		if err != nil {
			return nil, err
		}
		se.unitBase[s+1] = se.unitBase[s] + int32(maxPage) + 1
	}
	se.scratch.New = func() any { return newRouterScratch(se) }
	return se, nil
}

// readSnapshotBody reconstructs one engine from a version-1 payload.
func readSnapshotBody(br *bufio.Reader, pf *disk.PointFile, ds *dataset.Dataset, cands CandidateFunc) (*Engine, error) {
	le := binary.LittleEndian
	read := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(br, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	var mlen uint32
	if err := read(&mlen); err != nil {
		return nil, fmt.Errorf("core: reading snapshot method: %w", err)
	}
	if mlen > 64 {
		return nil, fmt.Errorf("core: implausible method name length %d", mlen)
	}
	mbytes := make([]byte, mlen)
	if _, err := io.ReadFull(br, mbytes); err != nil {
		return nil, err
	}
	var tau, policy int32
	var cacheBytes int64
	var smooth float64
	if err := read(&tau, &cacheBytes, &policy, &smooth); err != nil {
		return nil, fmt.Errorf("core: reading snapshot config: %w", err)
	}
	cfg := Config{
		Method: Method(mbytes), Tau: int(tau), CacheBytes: cacheBytes,
		Policy: cache.Policy(policy), SmoothEps: smooth,
	}
	if err := cfg.Method.Validate(); err != nil {
		return nil, err
	}
	// Range-check every configuration field before it reaches a constructor:
	// a corrupt or truncated snapshot must come back as a descriptive error,
	// not a panic deep in encoding.NewCodec or a negative-capacity cache.
	if tau < 0 || tau > 32 {
		return nil, fmt.Errorf("core: snapshot tau %d outside [0,32]", tau)
	}
	if cacheBytes < 0 {
		return nil, fmt.Errorf("core: snapshot cache budget %d is negative", cacheBytes)
	}
	if cfg.Policy != cache.HFF && cfg.Policy != cache.LRU {
		return nil, fmt.Errorf("core: snapshot cache policy %d unknown", policy)
	}
	if math.IsNaN(smooth) || math.IsInf(smooth, 0) || smooth < 0 {
		return nil, fmt.Errorf("core: snapshot smoothing epsilon %v is not a finite non-negative number", smooth)
	}

	e := &Engine{ds: ds, pf: pf, cands: cands, cfg: cfg}

	var kind uint8
	if err := read(&kind); err != nil {
		return nil, fmt.Errorf("core: reading histogram kind: %w", err)
	}
	switch kind {
	case histNone:
	case histGlobal:
		h, err := histogram.Read(br)
		if err != nil {
			return nil, err
		}
		if h.Ndom() != ds.Domain.Ndom {
			return nil, fmt.Errorf("core: snapshot histogram covers domain of %d values, dataset has %d", h.Ndom(), ds.Domain.Ndom)
		}
		e.ghist = h
		e.histSpaceBytes = h.SpaceBytes()
		e.table = bounds.NewTable(h, ds.Domain, ds.Dim)
	case histPerDim:
		p, err := histogram.ReadPerDim(br)
		if err != nil {
			return nil, err
		}
		if p.Dim() != ds.Dim {
			return nil, fmt.Errorf("core: snapshot has %d dimensions, dataset %d", p.Dim(), ds.Dim)
		}
		for j, h := range p.H {
			if h.Ndom() != ds.Domain.Ndom {
				return nil, fmt.Errorf("core: snapshot histogram for dimension %d covers domain of %d values, dataset has %d", j, h.Ndom(), ds.Domain.Ndom)
			}
		}
		e.phist = p
		e.histSpaceBytes = p.SpaceBytes()
		e.table = bounds.NewTablePerDim(p, ds.Domain)
	case histMD:
		var b, dim uint32
		if err := read(&b, &dim); err != nil {
			return nil, err
		}
		if int(dim) != ds.Dim || b == 0 || b > uint32(ds.Len()) {
			return nil, fmt.Errorf("core: implausible MD snapshot (B=%d dim=%d)", b, dim)
		}
		lo := make([][]float32, b)
		hi := make([][]float32, b)
		for i := range lo {
			lo[i] = make([]float32, dim)
			hi[i] = make([]float32, dim)
			for j := range lo[i] {
				var bits uint32
				if err := read(&bits); err != nil {
					return nil, err
				}
				lo[i][j] = math.Float32frombits(bits)
			}
			for j := range hi[i] {
				var bits uint32
				if err := read(&bits); err != nil {
					return nil, err
				}
				hi[i][j] = math.Float32frombits(bits)
			}
		}
		var n uint32
		if err := read(&n); err != nil {
			return nil, err
		}
		if int(n) != ds.Len() {
			return nil, fmt.Errorf("core: snapshot assignment covers %d points, dataset has %d", n, ds.Len())
		}
		assign := make([]int, n)
		for i := range assign {
			var a uint32
			if err := read(&a); err != nil {
				return nil, err
			}
			assign[i] = int(a)
		}
		md, err := histogram.NewMD(lo, hi, assign)
		if err != nil {
			return nil, err
		}
		e.md = md
		e.histSpaceBytes = md.SpaceBytes()
	default:
		return nil, fmt.Errorf("core: unknown histogram kind %d", kind)
	}

	var capacity, nkeys uint32
	if err := read(&capacity, &nkeys); err != nil {
		return nil, fmt.Errorf("core: reading cache content header: %w", err)
	}
	if nkeys > capacity || int(capacity) > 1<<30 {
		return nil, fmt.Errorf("core: implausible cache content (%d keys, capacity %d)", nkeys, capacity)
	}
	// Cached ids are distinct points of the dataset, so a key count beyond
	// ds.Len() is corruption — and bounding it here keeps the allocation
	// below proportional to the dataset instead of the (attacker-controlled)
	// count field.
	if int(nkeys) > ds.Len() {
		return nil, fmt.Errorf("core: snapshot caches %d ids, dataset has only %d points", nkeys, ds.Len())
	}
	keys := make([]int, nkeys)
	for i := range keys {
		var id uint32
		if err := read(&id); err != nil {
			return nil, err
		}
		if int(id) >= ds.Len() {
			return nil, fmt.Errorf("core: cached id %d beyond dataset", id)
		}
		keys[i] = int(id)
	}

	switch {
	case e.md != nil:
		e.mdCache = cache.New[int32](int(capacity), cfg.Policy)
		e.mdCache.FillHFF(keys, func(id int) int32 { return int32(e.md.BucketOf(id)) })
	case cfg.Method == Exact:
		e.exact = cache.New[[]float32](int(capacity), cfg.Policy)
		e.exact.FillHFF(keys, func(id int) []float32 {
			return append([]float32(nil), ds.Point(id)...)
		})
	case cfg.Method == NoCache:
	default:
		if e.table == nil {
			return nil, fmt.Errorf("core: snapshot for %s lacks a histogram", cfg.Method)
		}
		if cfg.Tau < 1 {
			return nil, fmt.Errorf("core: snapshot for %s has code length tau %d, need at least 1", cfg.Method, cfg.Tau)
		}
		e.codec = encoding.NewCodec(ds.Dim, cfg.Tau)
		if cfg.Policy == cache.HFF {
			// Loaded HFF content goes straight into the production slab
			// layout (snapshots predate the NoSlab ablation switch and never
			// record it; results are bit-identical either way).
			e.slab = cache.BuildSlab(ds.Len(), e.codec.Words(), int(capacity), keys, e.slabFiller())
		} else {
			e.approx = cache.New[[]uint64](int(capacity), cfg.Policy)
			e.approx.FillHFF(keys, e.pointEncoder())
		}
	}
	e.finalize()
	return e, nil
}
