package disk

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// faultDevice builds a small device with nPages pages of recognizable bytes.
func faultDevice(t *testing.T, nPages int) *Device {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dev")
	d, err := Create(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	page := make([]byte, 128)
	for p := 0; p < nPages; p++ {
		for i := range page {
			page[i] = byte(p + i)
		}
		if err := d.WritePage(p, page); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	return d
}

func TestFaultInjectError(t *testing.T) {
	d := faultDevice(t, 4)
	d.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: 2, LastPage: 2, Transient: false},
	}}))

	buf := make([]byte, 128)
	if err := d.ReadPage(1, buf); err != nil {
		t.Fatalf("clean page: %v", err)
	}
	err := d.ReadPage(2, buf)
	if err == nil {
		t.Fatal("expected injected error")
	}
	var pe *PageError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PageError", err)
	}
	if pe.Page != 2 || pe.Op != "read" || pe.Transient {
		t.Fatalf("PageError = %+v", pe)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v does not wrap ErrInjected", err)
	}
	if !IsPermanent(err) || IsTransient(err) {
		t.Fatalf("classification wrong for %v", err)
	}
	st := d.Stats()
	if st.PageReads != 2 || st.PermanentErrors != 1 || st.TransientErrors != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTornReadPropagates is the regression test for the zero-pad bug: a
// mid-file partial read must surface as an error, never as silently padded
// data.
func TestTornReadPropagates(t *testing.T) {
	d := faultDevice(t, 4)
	d.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultTorn, FirstPage: 1, LastPage: 1, TornBytes: 32},
	}}))

	buf := make([]byte, 128)
	err := d.ReadPage(1, buf)
	if err == nil {
		t.Fatal("torn read must propagate, not zero-pad")
	}
	if !errors.Is(err, ErrTornRead) {
		t.Fatalf("error %v does not wrap ErrTornRead", err)
	}
	if !IsPermanent(err) {
		t.Fatalf("default torn read should be permanent: %v", err)
	}
	// The scribbled tail proves the buffer cannot be mistaken for valid data.
	if buf[127] != 0xEB {
		t.Fatalf("tail byte = %#x, want scribble 0xEB", buf[127])
	}
}

// TestEOFTailZeroPad pins the one legitimate short read: the tail page of a
// file whose size is not a page multiple is zero-padded and succeeds.
func TestEOFTailZeroPad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short")
	// 1.5 pages of 0xAA: page 1 exists but is only half there.
	if err := os.WriteFile(path, make128x(0xAA, 192), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", d.NumPages())
	}
	buf := make([]byte, 128)
	if err := d.ReadPage(1, buf); err != nil {
		t.Fatalf("tail page read: %v", err)
	}
	for i := 0; i < 64; i++ {
		if buf[i] != 0xAA {
			t.Fatalf("byte %d = %#x, want 0xAA", i, buf[i])
		}
	}
	for i := 64; i < 128; i++ {
		if buf[i] != 0 {
			t.Fatalf("pad byte %d = %#x, want 0", i, buf[i])
		}
	}
}

func make128x(b byte, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return s
}

func TestRetryRecoversTransient(t *testing.T) {
	d := faultDevice(t, 4)
	// Fail page 2 twice, transiently; the third attempt succeeds.
	d.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: 2, LastPage: 2, Count: 2, Transient: true},
	}}))
	d.SetRetry(RetryPolicy{MaxRetries: 3, Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})

	buf := make([]byte, 128)
	if err := d.ReadPage(2, buf); err != nil {
		t.Fatalf("retry should have recovered: %v", err)
	}
	if buf[0] != byte(2) {
		t.Fatalf("recovered data wrong: %#x", buf[0])
	}
	st := d.Stats()
	// One logical read, two failed attempts, two retries.
	if st.PageReads != 1 {
		t.Fatalf("PageReads = %d, want 1 (logical reads must not count retries)", st.PageReads)
	}
	if st.Retries != 2 || st.TransientErrors != 2 || st.PermanentErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPermanentFaultNotRetried(t *testing.T) {
	d := faultDevice(t, 4)
	d.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: 0, LastPage: -1, Transient: false},
	}}))
	d.SetRetry(RetryPolicy{MaxRetries: 5, Backoff: time.Microsecond})

	err := d.ReadPage(1, make([]byte, 128))
	if !IsPermanent(err) {
		t.Fatalf("want permanent error, got %v", err)
	}
	st := d.Stats()
	if st.Retries != 0 || st.PermanentErrors != 1 {
		t.Fatalf("permanent faults must not be retried: %+v", st)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	d := faultDevice(t, 4)
	d.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: 1, LastPage: 1, Transient: true},
	}}))
	d.SetRetry(RetryPolicy{MaxRetries: 2, Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})

	err := d.ReadPage(1, make([]byte, 128))
	if !IsTransient(err) {
		t.Fatalf("exhausted retries should surface the transient error, got %v", err)
	}
	st := d.Stats()
	// 1 + MaxRetries attempts, all failed; MaxRetries retries.
	if st.PageReads != 1 || st.Retries != 2 || st.TransientErrors != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryStopsOnCancel(t *testing.T) {
	d := faultDevice(t, 4)
	d.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: 1, LastPage: 1, Transient: true},
	}}))
	d.SetRetry(RetryPolicy{MaxRetries: 1000, Backoff: time.Hour, MaxBackoff: time.Hour})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := d.ReadPageCtx(ctx, 1, make([]byte, 128))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled retry took %v — backoff did not honor ctx", elapsed)
	}
}

func TestFaultDeterministicWithSeed(t *testing.T) {
	run := func() []int {
		d := faultDevice(t, 8)
		d.SetFaults(NewInjector(FaultPolicy{Seed: 42, Rules: []FaultRule{
			{Kind: FaultError, FirstPage: 0, LastPage: -1, Probability: 0.4, Transient: true},
		}}))
		var failed []int
		buf := make([]byte, 128)
		for p := 0; p < 8; p++ {
			if err := d.ReadPage(p, buf); err != nil {
				failed = append(failed, p)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("p=0.4 over 8 pages should fail at least once with seed 42")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic fault sequence: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic fault sequence: %v vs %v", a, b)
		}
	}
}

func TestFaultCountBudget(t *testing.T) {
	d := faultDevice(t, 4)
	in := NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: 1, LastPage: 1, Count: 2, Transient: true},
	}})
	d.SetFaults(in)
	buf := make([]byte, 128)
	for i := 0; i < 2; i++ {
		if err := d.ReadPage(1, buf); err == nil {
			t.Fatalf("attempt %d: expected injected fault", i)
		}
	}
	if err := d.ReadPage(1, buf); err != nil {
		t.Fatalf("budget exhausted, read should succeed: %v", err)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", in.Injected())
	}
}

func TestFaultPageRange(t *testing.T) {
	d := faultDevice(t, 6)
	d.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: 2, LastPage: 3, Transient: true},
	}}))
	buf := make([]byte, 128)
	for p := 0; p < 6; p++ {
		err := d.ReadPage(p, buf)
		inRange := p >= 2 && p <= 3
		if inRange && err == nil {
			t.Fatalf("page %d in fault range should fail", p)
		}
		if !inRange && err != nil {
			t.Fatalf("page %d outside fault range failed: %v", p, err)
		}
	}
}

func TestFaultLatency(t *testing.T) {
	d := faultDevice(t, 2)
	d.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultLatency, FirstPage: 0, LastPage: -1, Latency: 20 * time.Millisecond},
	}}))
	start := time.Now()
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("latency fault did not delay: %v", elapsed)
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	rp := RetryPolicy{MaxRetries: 8, Backoff: time.Millisecond, MaxBackoff: 16 * time.Millisecond}.withDefaults()
	for attempt := 0; attempt < 8; attempt++ {
		d1 := rp.delay(7, attempt)
		d2 := rp.delay(7, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 <= 0 || d1 > rp.MaxBackoff+rp.MaxBackoff/2 {
			t.Fatalf("attempt %d: delay %v outside (0, 1.5*MaxBackoff]", attempt, d1)
		}
	}
	if rp.delay(3, 1) == rp.delay(4, 1) && rp.delay(3, 2) == rp.delay(4, 2) {
		t.Fatal("jitter should vary across pages")
	}
}

// TestPointFileFetchWithFaults checks the typed errors and retry policy flow
// through PointFile.Fetch, and that SetFaults(nil) restores clean reads.
func TestPointFileFetchWithFaults(t *testing.T) {
	ds := testDataset(t, 64, 16)
	pf, err := BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	page, err := pf.PageOf(0)
	if err != nil {
		t.Fatal(err)
	}
	pf.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: page, LastPage: page, Transient: false},
	}}))
	if _, err := pf.Fetch(0, nil); !IsPermanent(err) {
		t.Fatalf("want permanent PageError through Fetch, got %v", err)
	}

	pf.SetFaults(nil)
	got, err := pf.Fetch(0, nil)
	if err != nil {
		t.Fatalf("after clearing faults: %v", err)
	}
	want := ds.Point(0)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("dim %d: got %v want %v", j, got[j], want[j])
		}
	}

	// Transient fault + retry: Fetch succeeds and data is intact.
	pf.ResetStats()
	pf.SetFaults(NewInjector(FaultPolicy{Rules: []FaultRule{
		{Kind: FaultError, FirstPage: page, LastPage: page, Count: 1, Transient: true},
	}}))
	pf.SetRetry(RetryPolicy{MaxRetries: 2, Backoff: time.Microsecond})
	got, err = pf.Fetch(0, nil)
	if err != nil {
		t.Fatalf("retry through Fetch: %v", err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("post-retry dim %d: got %v want %v", j, got[j], want[j])
		}
	}
	st := pf.Stats()
	if st.PageReads != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
