package disk

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

// appendFile builds a fresh point file over n generated points.
func appendFile(t *testing.T, n, dim, pageSize int, perm []int) *PointFile {
	t.Helper()
	ds := testDataset(t, n, dim)
	pf, err := BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, perm, pageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func mkPts(base float32, count, dim int) [][]float32 {
	pts := make([][]float32, count)
	for i := range pts {
		pts[i] = make([]float32, dim)
		for j := range pts[i] {
			pts[i][j] = base + float32(i*dim+j)
		}
	}
	return pts
}

func TestAppendPointFile(t *testing.T) {
	cases := []struct {
		name     string
		dim      int
		pageSize int
	}{
		{"packed-pages", 4, 4096},     // many points share a page: tail-page merge path
		{"multi-page-points", 20, 64}, // one point spans several pages: record path
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dim := tc.dim
			pf := appendFile(t, 10, dim, tc.pageSize, nil)
			before := make([][]float32, 10)
			for i := range before {
				v, err := pf.Fetch(i, nil)
				if err != nil {
					t.Fatal(err)
				}
				before[i] = append([]float32(nil), v...)
			}

			// Append at the tail: the normal compaction path.
			pts := mkPts(100, 3, dim)
			if err := pf.Append(10, pts); err != nil {
				t.Fatal(err)
			}
			if pf.Len() != 13 {
				t.Fatalf("Len %d, want 13", pf.Len())
			}
			// Retry at the same position with different vectors: the orphan
			// overwrite a failed compaction's rerun performs.
			pts2 := mkPts(200, 4, dim)
			if err := pf.Append(10, pts2); err != nil {
				t.Fatal(err)
			}
			if pf.Len() != 14 {
				t.Fatalf("Len %d after retry, want 14", pf.Len())
			}
			for i, p := range pts2 {
				got, err := pf.Fetch(10+i, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, p) {
					t.Fatalf("slot %d: %v, want %v", 10+i, got, p)
				}
			}
			// Pre-existing points are untouched, shared tail page included.
			for i, want := range before {
				got, err := pf.Fetch(i, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("base slot %d changed: %v, want %v", i, got, want)
				}
			}

			// Geometry violations are rejected without changing the file.
			rejects := []struct {
				name string
				at   int
				pts  [][]float32
			}{
				{"dim-mismatch", 14, [][]float32{make([]float32, dim+1)}},
				{"negative-position", -1, mkPts(0, 1, dim)},
				{"past-end-position", 15, mkPts(0, 1, dim)},
				{"shrink", 2, mkPts(0, 1, dim)},
			}
			for _, rj := range rejects {
				if err := pf.Append(rj.at, rj.pts); err == nil {
					t.Fatalf("%s: append accepted", rj.name)
				}
				if pf.Len() != 14 {
					t.Fatalf("%s: Len changed to %d", rj.name, pf.Len())
				}
			}
			// Empty append at the tail is a no-op.
			if err := pf.Append(14, nil); err != nil {
				t.Fatal(err)
			}
			if pf.Len() != 14 {
				t.Fatalf("Len %d after empty append", pf.Len())
			}
		})
	}
}

func TestAppendRejectsPermutedFile(t *testing.T) {
	perm := []int{4, 3, 2, 1, 0}
	pf := appendFile(t, 5, 3, 4096, perm)
	if err := pf.Append(5, mkPts(0, 1, 3)); err == nil {
		t.Fatal("append accepted on a permuted point file")
	}
}

// TestAppendSurvivesReopen: appended points are durable — a fresh open of the
// same file sees the grown count and the appended vectors.
func TestAppendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t, 6, 3)
	path := filepath.Join(dir, "pf")
	pf, err := BuildPointFile(path, ds, nil, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := mkPts(50, 2, 3)
	if err := pf.Append(6, pts); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	re, err := OpenPointFile(path, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 8 {
		t.Fatalf("reopened Len %d, want 8", re.Len())
	}
	for i, p := range pts {
		got, err := re.Fetch(6+i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("slot %d: %v, want %v", 6+i, got, p)
		}
	}
}

// FuzzAppendPointFile drives Append with arbitrary positions, counts and
// values: every call either succeeds and publishes exactly at+count points
// whose tail reads back bit-for-bit, or fails and leaves the count unchanged.
func FuzzAppendPointFile(f *testing.F) {
	f.Add(5, 2, float32(1.5))
	f.Add(0, 3, float32(-7))
	f.Add(6, 0, float32(0))
	f.Add(-1, 1, float32(2))
	f.Add(3, 1, float32(math.MaxFloat32))
	f.Fuzz(func(t *testing.T, at, count int, val float32) {
		if count < 0 || count > 64 {
			return
		}
		const dim = 3
		ds := testDataset(t, 5, dim)
		pf, err := BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer pf.Close()
		if val != val { // NaN defeats the readback comparison below
			val = 0
		}
		pts := make([][]float32, count)
		for i := range pts {
			pts[i] = []float32{val + float32(i), val - float32(i), float32(at)}
		}
		n := pf.Len()
		err = pf.Append(at, pts)
		if at < 0 || at > n || at+count < n {
			if err == nil {
				t.Fatalf("append(at=%d,count=%d) over %d points accepted", at, count, n)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		want := n
		if at+count > n {
			want = at + count
		}
		if pf.Len() != want {
			t.Fatalf("Len %d, want %d", pf.Len(), want)
		}
		for i := range pts {
			got, err := pf.Fetch(at+i, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, pts[i]) {
				t.Fatalf("slot %d: %v, want %v", at+i, got, pts[i])
			}
		}
	})
}
