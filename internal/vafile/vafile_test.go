package vafile

import (
	"math/rand"
	"sort"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

func testDS(n, dim int, seed int64) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 5, Std: 0.05, Seed: seed})
}

func TestCandidatesAlwaysContainTrueKNN(t *testing.T) {
	// VA-file filtering is lossless: bounds are conservative, so the true
	// kNN can never be filtered out. This must hold deterministically.
	ds := testDS(800, 12, 1)
	ix := Build(ds, Params{BitsPerDim: 5})
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		q := ds.Point(rng.Intn(ds.Len()))
		k := 1 + rng.Intn(10)
		res := ix.Candidates(q, k)
		in := make(map[int]bool, len(res.IDs))
		for _, id := range res.IDs {
			in[id] = true
		}
		top := vec.NewTopK(k)
		for i := 0; i < ds.Len(); i++ {
			top.Push(vec.Dist(q, ds.Point(i)), i)
		}
		ids, dists := top.Results()
		for r, id := range ids {
			if !in[id] {
				// A tie at the boundary may legitimately swap equal-distance
				// points; accept if some candidate has the same distance.
				ok := false
				for _, cid := range res.IDs {
					if vec.Dist(q, ds.Point(cid)) <= dists[r]+1e-9 {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: true neighbor %d missing from %d candidates", trial, id, len(res.IDs))
				}
			}
		}
	}
}

func TestCandidatesSortedAndBounded(t *testing.T) {
	ds := testDS(500, 10, 3)
	ix := Build(ds, Params{BitsPerDim: 6})
	q := ds.Point(7)
	res := ix.Candidates(q, 5)
	if len(res.IDs) < 5 {
		t.Fatalf("only %d candidates", len(res.IDs))
	}
	if !sort.Float64sAreSorted(res.LBs) {
		t.Fatal("candidates not sorted by lower bound")
	}
	for i, id := range res.IDs {
		d := vec.Dist(q, ds.Point(id))
		if res.LBs[i] > d+1e-9 || res.UBs[i] < d-1e-9 {
			t.Fatalf("candidate %d bounds [%v,%v] miss dist %v", id, res.LBs[i], res.UBs[i], d)
		}
		if res.LBs[i] > res.Dmax+1e-9 {
			t.Fatalf("candidate %d lb %v beyond Dmax %v", id, res.LBs[i], res.Dmax)
		}
	}
}

func TestMoreBitsFilterMore(t *testing.T) {
	ds := testDS(1000, 16, 4)
	coarse := Build(ds, Params{BitsPerDim: 2})
	fine := Build(ds, Params{BitsPerDim: 8})
	var nc, nf int
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		q := ds.Point(rng.Intn(ds.Len()))
		nc += len(coarse.Candidates(q, 10).IDs)
		nf += len(fine.Candidates(q, 10).IDs)
	}
	if nf >= nc {
		t.Fatalf("finer grid kept more candidates: %d vs %d", nf, nc)
	}
}

func TestApproxBytes(t *testing.T) {
	ds := testDS(100, 10, 6)
	ix := Build(ds, Params{BitsPerDim: 6})
	// 10 dims × 6 bits = 60 bits → 1 word = 8 bytes per point.
	if got := ix.ApproxBytes(); got != 100*8 {
		t.Fatalf("ApproxBytes = %d", got)
	}
	if ix.BitsPerDim() != 6 {
		t.Fatalf("BitsPerDim = %d", ix.BitsPerDim())
	}
}

func TestDefaultsAndClamps(t *testing.T) {
	ds := testDS(50, 4, 7)
	if got := Build(ds, Params{}).BitsPerDim(); got != 6 {
		t.Fatalf("default bits = %d", got)
	}
	if got := Build(ds, Params{BitsPerDim: 99}).BitsPerDim(); got != 16 {
		t.Fatalf("clamped bits = %d", got)
	}
}

func TestQueryDimMismatchPanics(t *testing.T) {
	ds := testDS(50, 4, 8)
	ix := Build(ds, Params{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Candidates([]float32{1}, 1)
}

func TestKMinTracksKthSmallest(t *testing.T) {
	// Regression: the sift-down of the bounded heap failed to descend,
	// under-reporting the k-th smallest and silently dropping candidates.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		n := k + rng.Intn(50)
		m := newKMin(k)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
			m.push(vals[i])
		}
		sort.Float64s(vals)
		if got := m.kth(); got != vals[k-1] {
			t.Fatalf("trial %d: kth = %v, want %v (k=%d n=%d)", trial, got, vals[k-1], k, n)
		}
	}
	if newKMin(3).kth() != 0 {
		t.Fatal("empty kMin should report 0")
	}
}

func TestPlusCandidatesContainTrueKNN(t *testing.T) {
	ds := testDS(700, 16, 31)
	ix, err := BuildPlus(ds, PlusParams{TotalBits: 96})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		q := ds.Point(rng.Intn(ds.Len()))
		k := 1 + rng.Intn(8)
		res := ix.Candidates(q, k)
		in := make(map[int]bool, len(res.IDs))
		for _, id := range res.IDs {
			in[id] = true
		}
		top := vec.NewTopK(k)
		for i := 0; i < ds.Len(); i++ {
			top.Push(vec.Dist(q, ds.Point(i)), i)
		}
		ids, dists := top.Results()
		for r, id := range ids {
			if !in[id] {
				ok := false
				for _, cid := range res.IDs {
					if vec.Dist(q, ds.Point(cid)) <= dists[r]+1e-5 {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: true neighbor %d missing", trial, id)
				}
			}
		}
		if !sort.Float64sAreSorted(res.LBs) {
			t.Fatal("candidates not sorted by lb")
		}
	}
}

func TestPlusBitAllocationFollowsVariance(t *testing.T) {
	// Anisotropic data: after KLT the leading dimensions carry the variance
	// and must receive (weakly) more bits.
	rng := rand.New(rand.NewSource(33))
	n, d := 600, 10
	data := make([]float32, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			scale := 0.01 * float32(1+j%2)
			if j < 2 {
				scale = 0.5
			}
			data[i*d+j] = 0.5 + float32(rng.NormFloat64())*scale
		}
	}
	ds := dataset.New("aniso", d, data, vecDomainFor())
	ix, err := BuildPlus(ds, PlusParams{TotalBits: 40})
	if err != nil {
		t.Fatal(err)
	}
	bits := ix.Bits()
	total := 0
	for j := 1; j < d; j++ {
		if bits[j] > bits[j-1] {
			t.Fatalf("bit allocation not descending with eigen-variance: %v", bits)
		}
		total += bits[j]
	}
	total += bits[0]
	if total != 40 {
		t.Fatalf("allocated %d bits, want 40", total)
	}
	if bits[0] < 4 {
		t.Fatalf("leading dimension got only %d bits: %v", bits[0], bits)
	}
}

func TestPlusBeatsPlainVAFileAtEqualBits(t *testing.T) {
	// On anisotropic data VA+ should filter more aggressively than the
	// plain equi-bit VA-file at the same total budget.
	rng := rand.New(rand.NewSource(34))
	n, d := 900, 12
	data := make([]float32, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			scale := float32(0.02)
			if j < 3 {
				scale = 0.4
			}
			data[i*d+j] = 0.5 + float32(rng.NormFloat64())*scale
		}
	}
	ds := dataset.New("aniso", d, data, vecDomainFor())
	plain := Build(ds, Params{BitsPerDim: 4}) // 48 bits/point
	plus, err := BuildPlus(ds, PlusParams{TotalBits: 4 * d})
	if err != nil {
		t.Fatal(err)
	}
	var nPlain, nPlus int
	for trial := 0; trial < 15; trial++ {
		q := ds.Point(rng.Intn(ds.Len()))
		nPlain += len(plain.Candidates(q, 10).IDs)
		nPlus += len(plus.Candidates(q, 10).IDs)
	}
	if nPlus >= nPlain {
		t.Fatalf("VA+ kept %d candidates vs plain %d at equal bits", nPlus, nPlain)
	}
}

func vecDomainFor() (dom vecDom) { return vec.NewDomain(-5, 5, 256) }

type vecDom = vec.Domain
