package core

import (
	"sync"
	"testing"
	"time"

	"exploitbit/internal/cache"
)

// TestConcurrentSearches runs many goroutines through one engine and checks
// (under -race in CI) that results match the sequential run and statistics
// add up.
func TestConcurrentSearches(t *testing.T) {
	w := buildWorld(t, 1200, 10, 95)
	for _, cfg := range []Config{
		{Method: HCO, CacheBytes: 64 << 10, Tau: 7},
		{Method: Exact, CacheBytes: 64 << 10},
		{Method: Exact, CacheBytes: 64 << 10, Policy: cache.LRU},
		{Method: NoCache},
	} {
		cfg := cfg
		t.Run(string(cfg.Method)+"/"+cfg.Policy.String(), func(t *testing.T) {
			eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Sequential reference (skip for LRU whose state evolves).
			ref := make([][]int, len(w.qtest))
			if cfg.Policy == cache.HFF {
				for i, q := range w.qtest {
					ids, _, err := eng.Search(q, 5)
					if err != nil {
						t.Fatal(err)
					}
					ref[i] = ids
				}
				eng.ResetStats()
			}

			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i, q := range w.qtest {
						ids, _, err := eng.Search(q, 5)
						if err != nil {
							errs <- err
							return
						}
						if cfg.Policy == cache.HFF {
							if len(ids) != len(ref[i]) {
								errs <- errMismatch
								return
							}
							want := map[int]bool{}
							for _, id := range ref[i] {
								want[id] = true
							}
							for _, id := range ids {
								if !want[id] {
									errs <- errMismatch
									return
								}
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			agg := eng.Aggregate()
			if cfg.Policy == cache.HFF && agg.Queries != workers*len(w.qtest) {
				t.Fatalf("aggregate recorded %d queries, want %d", agg.Queries, workers*len(w.qtest))
			}
		})
	}
}

// TestTreeEngineConcurrentSearches is the tree-engine counterpart: the HFF
// leaf caches are immutable after construction and the aggregate is atomic,
// so concurrent searches must return the sequential results exactly and the
// query count must add up (data races surface under -race in CI).
func TestTreeEngineConcurrentSearches(t *testing.T) {
	w := buildTreeWorld(t, "rtree", 1200, 10, 96)
	for _, cfg := range []TreeConfig{
		{Method: Exact, CacheBytes: 128 << 10},
		{Method: HCO, CacheBytes: 96 << 10, Tau: 7},
		{Method: NoCache},
	} {
		cfg := cfg
		t.Run(string(cfg.Method), func(t *testing.T) {
			eng, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 10, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := make([][]int, len(w.qtest))
			for i, q := range w.qtest {
				ids, _, err := eng.Search(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				ref[i] = ids
			}
			eng.ResetStats()

			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var dst []int
					for i, q := range w.qtest {
						var err error
						dst, _, err = eng.SearchInto(q, 5, dst[:0])
						if err != nil {
							errs <- err
							return
						}
						if len(dst) != len(ref[i]) {
							errs <- errMismatch
							return
						}
						for j, id := range dst {
							if id != ref[i][j] {
								errs <- errMismatch
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if agg := eng.Aggregate(); agg.Queries != workers*len(w.qtest) {
				t.Fatalf("aggregate recorded %d queries, want %d", agg.Queries, workers*len(w.qtest))
			}
		})
	}
}

// TestConcurrentSlabScanDuringRebuild hammers a slab-backed HC-O engine with
// concurrent searches while the Maintainer rebuilds and RCU-swaps the engine
// underneath them — the scenario the slab's immutability contract exists for.
// Scans of the old slab must keep completing (and returning k results) while
// the new slab is built and published; -race in CI verifies no scan ever
// observes a slab under mutation. The rebuild gate holds each swap until
// searchers are mid-flight, so scans genuinely span the publish.
func TestConcurrentSlabScanDuringRebuild(t *testing.T) {
	ds, pf, cands, poolA, poolB := driftWorld(t)
	m, err := NewMaintainer(pf, ds, cands, poolA, 5, Config{
		Method:     HCO,
		CacheBytes: 1 << 30, // covering: every candidate scores through the slab
		Tau:        8,
		// Fan Phase 2 out aggressively so slab blocks are scanned from many
		// goroutines at once, not just many queries.
		ParallelReduceThreshold: 1,
	}, MaintainOptions{WindowSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Engine().slab == nil {
		t.Fatal("HC-O maintainer engine did not build a slab")
	}
	// Populate the sliding window so every RebuildAsync below has a workload.
	for i := 0; i < 40; i++ {
		if _, _, err := m.Search(poolA[i%len(poolA)], 5); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pools := [2][][]float32{poolA, poolB}
			var dst []int
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := pools[i%2][(i*7+g*13)%len(poolA)]
				var err error
				dst, _, err = m.SearchInto(q, 5, dst[:0])
				if err != nil {
					errs <- err
					return
				}
				if len(dst) != 5 {
					errs <- errMismatch
					return
				}
			}
		}(g)
	}

	// Drive several full rebuild/swap cycles under load, each parked on the
	// gate long enough for in-flight scans to straddle the publish.
	for cycle := 0; cycle < 4; cycle++ {
		gate := make(chan struct{})
		m.rebuildGate = gate
		if !m.RebuildAsync(5) {
			t.Fatalf("cycle %d: RebuildAsync refused", cycle)
		}
		before := m.Engine()
		time.Sleep(2 * time.Millisecond) // searchers mid-flight on the old slab
		close(gate)
		waitRebuildIdle(t, m)
		if m.Engine() == before {
			t.Fatalf("cycle %d: engine not swapped", cycle)
		}
		if m.Engine().slab == nil {
			t.Fatalf("cycle %d: rebuilt engine lost its slab", cycle)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Rebuilds != 4 || st.RebuildErrors != 0 {
		t.Fatalf("rebuild stats after cycles: %+v", st)
	}
}

var errMismatch = errConst("concurrent result mismatch")

type errConst string

func (e errConst) Error() string { return string(e) }
