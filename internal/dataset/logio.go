package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary query-log format ("EBQL"): the pool of distinct query points and
// the arrival sequence. Persisting logs lets experiments run against the
// exact same workload across processes — the role the real SOGOU query log
// plays in the paper.
const (
	logMagic   = "EBQL"
	logVersion = 1
)

// WriteTo serializes the log.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if _, err := bw.WriteString(logMagic); err != nil {
		return n, err
	}
	n += 4
	dim := 0
	if len(l.Pool) > 0 {
		dim = len(l.Pool[0])
	}
	for _, v := range []uint32{logVersion, uint32(len(l.Pool)), uint32(dim), uint32(len(l.Seq))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += 4
	}
	buf := make([]byte, 4)
	for _, q := range l.Pool {
		if len(q) != dim {
			return n, fmt.Errorf("dataset: ragged query pool (%d vs %d dims)", len(q), dim)
		}
		for _, v := range q {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := bw.Write(buf); err != nil {
				return n, err
			}
			n += 4
		}
	}
	for _, id := range l.Seq {
		binary.LittleEndian.PutUint32(buf, uint32(id))
		if _, err := bw.Write(buf); err != nil {
			return n, err
		}
		n += 4
	}
	return n, bw.Flush()
}

// ReadLog parses a log serialized by WriteTo.
func ReadLog(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	m := make([]byte, 4)
	if _, err := io.ReadFull(br, m); err != nil {
		return nil, fmt.Errorf("dataset: reading log magic: %w", err)
	}
	if string(m) != logMagic {
		return nil, fmt.Errorf("dataset: bad log magic %q", m)
	}
	var ver, pool, dim, seqLen uint32
	for _, p := range []*uint32{&ver, &pool, &dim, &seqLen} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("dataset: reading log header: %w", err)
		}
	}
	if ver != logVersion {
		return nil, fmt.Errorf("dataset: unsupported log version %d", ver)
	}
	if pool == 0 || dim == 0 || pool > 1<<26 || dim > 1<<20 {
		return nil, fmt.Errorf("dataset: implausible log header pool=%d dim=%d", pool, dim)
	}
	l := &Log{Pool: make([][]float32, pool), Seq: make([]int, seqLen)}
	raw := make([]byte, 4)
	for i := range l.Pool {
		q := make([]float32, dim)
		for j := range q {
			if _, err := io.ReadFull(br, raw); err != nil {
				return nil, fmt.Errorf("dataset: reading pool: %w", err)
			}
			q[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw))
		}
		l.Pool[i] = q
	}
	for i := range l.Seq {
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("dataset: reading sequence: %w", err)
		}
		id := binary.LittleEndian.Uint32(raw)
		if id >= pool {
			return nil, fmt.Errorf("dataset: sequence entry %d beyond pool %d", id, pool)
		}
		l.Seq[i] = int(id)
	}
	return l, nil
}

// SaveLog writes the log to path.
func (l *Log) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := l.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadLog reads an EBQL log from path.
func LoadLog(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLog(f)
}
