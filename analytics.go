package exploitbit

import (
	"exploitbit/internal/dbscan"
	"exploitbit/internal/knnjoin"
)

// The advanced operations of the paper's conclusion ("we plan to extend our
// caching techniques for advanced operations (e.g., kNN join, density-based
// clustering)"), built on the cached engine.
type (
	// JoinResult is a kNN join's output (per-probe neighbor lists + stats).
	JoinResult = knnjoin.Result
	// ClusterResult is a density clustering's output (labels + stats).
	ClusterResult = dbscan.Result
)

// NoiseLabel marks unclustered points in ClusterResult.Labels.
const NoiseLabel = dbscan.Noise

// KNNJoin reports, for every probe, its k nearest points of the engine's
// dataset. Build the engine with the probe set as the workload so the cache
// anticipates exactly the distribution the join issues.
func KNNJoin(eng *Engine, probes [][]float32, k int) (*JoinResult, error) {
	return knnjoin.Run(eng, probes, k)
}

// DBSCAN density-clusters the engine's dataset (kNN-graph DBSCAN: core test
// via the minPts-th neighbor, clusters as core components over ≤eps edges).
// kProbe >= minPts controls the approximation tightness.
func DBSCAN(eng *Engine, ds *Dataset, eps float64, minPts, kProbe int) (*ClusterResult, error) {
	return dbscan.Run(eng, ds, eps, minPts, kProbe)
}
