package bench

import (
	"fmt"
	"io"

	"exploitbit"
	"exploitbit/internal/cache"
	"exploitbit/internal/core"
	"exploitbit/internal/dataset"
	"exploitbit/internal/histogram"
	"exploitbit/internal/idistance"
	"exploitbit/internal/lsh"
)

func init() {
	register("fig1", "C2LSH response time: candidate generation vs refinement (refinement dominates)", fig1)
	register("fig2", "Query-log temporal locality: rank vs frequency power law", fig2)
	register("fig6", "Worked 1-d example: histogram effectiveness on 2NN at q=17", fig6)
	register("fig8", "Caching policy: HFF vs LRU under EXACT caching", fig8)
	register("fig9", "Dataset file ordering: raw vs clustered vs sorted-key", fig9)
	register("tab3", "Histogram categories: space, construction time, refinement time", tab3)
	register("fig10", "C-VA vs HC-D across cache sizes", fig10)
	register("fig11", "Early-pruning power: remaining candidates and I/O per method", fig11)
}

var labNames = []string{"NUS-WIDE", "IMGNET", "SOGOU"}

func fig1(w io.Writer, env *Env) error {
	tw := table(w)
	fmt.Fprintln(tw, "dataset\tgen(s)\trefine(s)\trefine_share")
	for _, name := range labNames {
		lab := env.Lab(name)
		eng, err := lab.Sys.Engine(exploitbit.NoCache, 0, 0)
		if err != nil {
			return err
		}
		agg := lab.RunQueries(eng, env.Scale.K)
		gen, ref := agg.AvgGeneration(), agg.AvgRefinement()
		share := 0.0
		if tot := gen + ref; tot > 0 {
			share = ref.Seconds() / tot.Seconds()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\n", name, secs(gen), secs(ref), share)
	}
	fmt.Fprintln(tw, "# expected shape: refinement dominates (share near 1) on every dataset")
	return tw.Flush()
}

func fig2(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	// Rebuild the lab's log distribution for reporting (same parameters).
	log := dataset.GenLog(lab.DS, dataset.LogConfig{
		PoolSize: env.Scale.PoolSize, Length: env.Scale.WLLen + env.Scale.QTest,
		ZipfS: 1.3, Perturb: 0.005, Seed: 104,
	})
	freqs := log.RankFreq()
	tw := table(w)
	fmt.Fprintln(tw, "rank\tfrequency")
	for r := 1; r <= len(freqs); r *= 2 {
		fmt.Fprintf(tw, "%d\t%d\n", r, freqs[r-1])
	}
	top := 0
	cut := len(freqs) / 10
	if cut < 1 {
		cut = 1
	}
	for _, f := range freqs[:cut] {
		top += f
	}
	fmt.Fprintf(tw, "# top 10%% of distinct queries carry %.0f%% of the log (power law as in Fig 2)\n",
		100*float64(top)/float64(len(log.Seq)))
	return tw.Flush()
}

// fig6 reproduces the paper's worked example exactly, using its integer
// closed-interval bound convention: dataset {3,4,10,12,22,24,30,31}, query
// q=17, k=2, τ=2 (B=4 buckets over [0..31]). Expected remaining candidates:
// equi-width 6, equi-depth 4 (V-optimal likewise), ideal 0.
func fig6(w io.Writer, env *Env) error {
	values := []int{3, 4, 10, 12, 22, 24, 30, 31}
	const q, k, ndom = 17, 2, 32

	remaining := func(uppers []int) int {
		lb := make([]float64, len(values))
		ub := make([]float64, len(values))
		bounds1D := func(v, blo, bhi int) (float64, float64) {
			l := 0.0
			if blo > q {
				l = float64(blo - q)
			} else if q > bhi {
				l = float64(q - bhi)
			}
			u := float64(q - blo)
			if float64(bhi-q) > u {
				u = float64(bhi - q)
			}
			return l, u
		}
		for i, v := range values {
			blo, bhi := 0, ndom-1
			prev := -1
			for _, up := range uppers {
				if v <= up {
					blo, bhi = prev+1, up
					break
				}
				prev = up
			}
			lb[i], ub[i] = bounds1D(v, blo, bhi)
		}
		lbk := kth(lb, k)
		ubk := kth(ub, k)
		rem := 0
		for i := range values {
			switch {
			case lb[i] > ubk: // early pruning (Algorithm 1 line 10)
			case ub[i] <= lbk: // true result detection (Section 3.4.1, case i: non-strict)
			default:
				rem++
			}
		}
		return rem
	}

	// The paper's histograms.
	equiWidth := []int{7, 15, 23, 31}
	freq := make([]float64, ndom)
	for _, v := range values {
		freq[v]++
	}
	hd := histogramUppers("equi-depth", freq, 4)
	hv := histogramUppers("v-optimal", freq, 4)

	// Ideal: brute-force minimization of the remaining count — the metric M1
	// optimum of Definition 9 (feasible here: C(31,3) partitions).
	best, bestRem := []int(nil), 1<<30
	for u1 := 0; u1 < ndom-3; u1++ {
		for u2 := u1 + 1; u2 < ndom-2; u2++ {
			for u3 := u2 + 1; u3 < ndom-1; u3++ {
				up := []int{u1, u2, u3, ndom - 1}
				if r := remaining(up); r < bestRem {
					bestRem, best = r, append([]int(nil), up...)
				}
			}
		}
	}

	tw := table(w)
	fmt.Fprintln(tw, "histogram\tbucket_uppers\tremaining")
	fmt.Fprintf(tw, "equi-width\t%v\t%d\n", equiWidth, remaining(equiWidth))
	fmt.Fprintf(tw, "equi-depth\t%v\t%d\n", hd, remaining(hd))
	fmt.Fprintf(tw, "v-optimal\t%v\t%d\n", hv, remaining(hv))
	fmt.Fprintf(tw, "ideal (M1 optimum)\t%v\t%d\n", best, bestRem)
	fmt.Fprintln(tw, "# paper: equi-width 6, equi-depth/V-optimal 4, ideal 0")
	return tw.Flush()
}

// histogramUppers builds a histogram of the given kind over freq and
// returns its bucket upper bounds.
func histogramUppers(kind string, freq []float64, b int) []int {
	var h *histogram.Histogram
	switch kind {
	case "equi-depth":
		h = histogram.EquiDepth(freq, b)
	case "v-optimal":
		h = histogram.VOptimal(freq, b)
	default:
		panic("bench: unknown histogram kind " + kind)
	}
	return h.Uppers()
}

func kth(xs []float64, k int) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	return s[k-1]
}

func fig8(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	tw := table(w)
	fmt.Fprintln(tw, "k\tHFF_refine(s)\tLRU_refine(s)")
	hff, err := lab.Sys.EngineWith(core.Config{Method: exploitbit.Exact, CacheBytes: lab.DefaultCS, Policy: cache.HFF})
	if err != nil {
		return err
	}
	lru, err := lab.Sys.EngineWith(core.Config{Method: exploitbit.Exact, CacheBytes: lab.DefaultCS, Policy: cache.LRU})
	if err != nil {
		return err
	}
	// Warm the dynamic cache by replaying (a slice of) the workload.
	warm := lab.WL
	if len(warm) > 400 {
		warm = warm[len(warm)-400:]
	}
	for _, q := range warm {
		if _, _, err := lru.Search(q, env.Scale.K); err != nil {
			return err
		}
	}
	for _, k := range []int{10, 40, 70, 100} {
		aggH := lab.RunQueries(hff, k)
		aggL := lab.RunQueries(lru, k)
		fmt.Fprintf(tw, "%d\t%s\t%s\n", k, secs(aggH.AvgRefinement()), secs(aggL.AvgRefinement()))
	}
	fmt.Fprintln(tw, "# expected shape: HFF at or below LRU for every k (Fig 8)")
	return tw.Flush()
}

func fig9(w io.Writer, env *Env) error {
	s := env.Scale
	ds := exploitbit.SogouLike(s.NSogou, 103)
	log := dataset.GenLog(ds, dataset.LogConfig{
		PoolSize: s.PoolSize, Length: s.WLLen + s.QTest, ZipfS: 1.3, Perturb: 0.005, Seed: 104,
	})
	wl, qtest := log.Split(s.QTest)

	clustered := idistance.Build(ds, idistance.Params{Refs: 8, Seed: 9}).Ordering(ds.Len())
	sorted := lsh.Build(ds, lsh.Params{MaxM: 8, Seed: 9}).SortedKeyOrdering()

	orderings := []struct {
		name string
		perm []int
	}{{"Raw", nil}, {"Clustered", clustered}, {"SortedKey", sorted}}

	tw := table(w)
	fmt.Fprintln(tw, "ordering\tk=10 refine(s)\tk=100 refine(s)")
	for _, o := range orderings {
		sys, err := exploitbit.Open(ds, wl, exploitbit.Options{Tio: env.Tio, WorkloadK: s.K, Ordering: o.perm})
		if err != nil {
			return err
		}
		eng, err := sys.Engine(exploitbit.Exact, int64(float64(ds.Len()*ds.PointSize())*s.CacheFrac), 0)
		if err != nil {
			sys.Close()
			return err
		}
		var r10, r100 string
		for _, k := range []int{10, 100} {
			eng.ResetStats()
			for _, q := range qtest {
				if _, _, err := eng.Search(q, k); err != nil {
					sys.Close()
					return err
				}
			}
			if k == 10 {
				r10 = secs(eng.Aggregate().AvgRefinement())
			} else {
				r100 = secs(eng.Aggregate().AvgRefinement())
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", o.name, r10, r100)
		sys.Close()
	}
	fmt.Fprintln(tw, "# expected shape: all three orderings within noise of each other under HFF (Fig 9)")
	return tw.Flush()
}

func tab3(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	methods := []exploitbit.Method{
		exploitbit.HCW, exploitbit.IHCW, exploitbit.HCD, exploitbit.IHCD,
		exploitbit.HCO, exploitbit.IHCO, exploitbit.MHCR,
	}
	tw := table(w)
	fmt.Fprintln(tw, "method\tspace(KB)\tconstruction(s)\tavg_Trefine(s)")
	for _, m := range methods {
		eng, err := lab.Sys.Engine(m, lab.DefaultCS, lab.DefaultTau)
		if err != nil {
			return err
		}
		agg := lab.RunQueries(eng, env.Scale.K)
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%s\n", m,
			float64(eng.HistogramSpaceBytes())/1024,
			secs(eng.HistogramBuildTime()),
			secs(agg.AvgRefinement()))
	}
	fmt.Fprintln(tw, "# expected shape: iHC-* ≈ HC-* quality at d× the space and far higher build time; mHC-R badly worse (Table 3)")
	return tw.Flush()
}

func fig10(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	fileBytes := int64(lab.DS.Len()) * int64(lab.DS.PointSize())
	tw := table(w)
	fmt.Fprintln(tw, "cache_MB\tcache_frac\tC-VA_resp(s)\tHC-D_resp(s)")
	for _, frac := range []float64{0.034, 0.07, 0.12, 0.20} {
		cs := int64(float64(fileBytes) * frac)
		cva, err := lab.Sys.Engine(exploitbit.CVA, cs, 0)
		if err != nil {
			return err
		}
		hcd, err := lab.Sys.Engine(exploitbit.HCD, cs, lab.Sys.OptimalTau(cs))
		if err != nil {
			return err
		}
		aggC := lab.RunQueries(cva, env.Scale.K)
		aggD := lab.RunQueries(hcd, env.Scale.K)
		fmt.Fprintf(tw, "%s\t%.3f\t%s\t%s\n", mb(cs), frac, secs(aggC.AvgResponse()), secs(aggD.AvgResponse()))
	}
	fmt.Fprintln(tw, "# expected shape: C-VA worse at small caches (too few bits/point), converging at large caches (Fig 10)")
	return tw.Flush()
}

func fig11(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	methods := []exploitbit.Method{
		exploitbit.Exact, exploitbit.MHCR, exploitbit.HCW,
		exploitbit.HCV, exploitbit.HCD, exploitbit.HCO,
	}
	tw := table(w)
	fmt.Fprintln(tw, "method\tavg_query_IO\tremaining_candidates")
	for _, m := range methods {
		eng, err := lab.Sys.Engine(m, lab.DefaultCS, lab.DefaultTau)
		if err != nil {
			return err
		}
		agg := lab.RunQueries(eng, env.Scale.K)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\n", m, agg.AvgIO(), agg.AvgRemaining())
	}
	fmt.Fprintln(tw, "# expected shape: HC-O lowest I/O; HC-O below HC-D by ~50%; mHC-R worst (Fig 11)")
	return tw.Flush()
}
