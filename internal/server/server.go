// Package server exposes a cached kNN engine over HTTP — the shape a
// multimedia-retrieval deployment of the paper's system takes: the engine
// (with its histogram cache) lives in one process, front-ends POST feature
// vectors and get back neighbor identifiers plus the cache telemetry that
// Section 5 reports.
//
// Endpoints:
//
//	POST /search  {"vector": [...], "k": 10} → {"ids": [...], "stats": {...}}
//	GET  /stats   aggregate statistics since startup
//	GET  /metrics per-stage latency histograms + admission counters
//	GET  /healthz liveness
//
// The handler owns the request lifecycle around the engine: the request
// context flows into the search (a disconnected client abandons Phase 2/3
// work instead of burning a worker), a bounded-concurrency admission gate
// sheds load with 503 once the configured number of searches is in flight,
// and /metrics exposes lock-free per-stage latency histograms so operators
// see where queries spend their time.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"exploitbit/internal/disk"
)

// Searcher is the engine-shaped dependency (core.Engine and core.Maintainer
// both satisfy it via small adapters; the facade wires them). The context
// is the request's: implementations abandon work when it is done and return
// its error (possibly wrapped).
type Searcher interface {
	Search(ctx context.Context, q []float32, k int) ([]int, Stats, error)
}

// BatchSearcher is the optional batch capability: engines that coalesce
// refinement I/O across a burst of queries implement it, and New detects it
// on the Searcher to enable POST /search/batch. Results and stats are
// positional with qs.
type BatchSearcher interface {
	SearchBatch(ctx context.Context, qs [][]float32, k int) ([][]int, []Stats, error)
}

// Stats is the per-query statistics subset exposed over the wire.
type Stats struct {
	Candidates  int           `json:"candidates"`
	Hits        int           `json:"cache_hits"`
	Pruned      int           `json:"pruned"`
	TrueHits    int           `json:"true_hits"`
	Remaining   int           `json:"remaining"`
	Fetched     int           `json:"fetched"`
	PageReads   int64         `json:"page_reads"`
	SimulatedIO time.Duration `json:"simulated_io_ns"`

	// Per-stage CPU timings (Algorithm 1's phases), feeding /metrics.
	GenTime    time.Duration `json:"gen_ns"`
	ReduceTime time.Duration `json:"reduce_ns"`
	RefineTime time.Duration `json:"refine_ns"`

	// Degraded marks a query answered without one or more quarantined
	// shards (see FailedShards): the results are correct over the surviving
	// shards but may miss neighbors stored on the failed ones. Only set on
	// sharded deployments serving with -degraded-ok.
	Degraded     bool  `json:"degraded,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
}

// Config sizes and guards the handler.
type Config struct {
	// Dim validates request vectors.
	Dim int
	// MaxK caps k (default 1000).
	MaxK int
	// MaxInFlight is the admission limit: searches beyond this many in
	// flight are shed with 503 instead of queueing behind a saturated
	// worker pool (default 256). /stats and /healthz are never gated.
	MaxInFlight int
	// MaxBatch caps the number of vectors accepted by one /search/batch
	// request (default 64). A batch charges the admission gate one slot per
	// vector, so MaxBatch also bounds how much of MaxInFlight one request
	// can claim.
	MaxBatch int
}

func (c Config) withDefaults() Config {
	if c.MaxK < 1 {
		c.MaxK = 1000
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 256
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 64
	}
	return c
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the search was abandoned because the client went away, which is
// neither the client's request being bad nor the server failing.
const statusClientClosedRequest = 499

// Handler serves the HTTP API. All counters are lock-free atomics: under
// concurrent load every request used to serialize on one mutex just to bump
// four integers, which is exactly the kind of contention the
// allocation-free engine path removes elsewhere.
type Handler struct {
	mux      *http.ServeMux
	searcher Searcher
	batch    BatchSearcher // nil when the searcher has no batch capability
	cfg      Config

	// gate is the admission semaphore: buffered to MaxInFlight, one slot
	// held per in-flight search (a batch holds one per vector). len(gate)
	// is the live queue depth.
	gate chan struct{}

	queries   atomic.Int64
	fetched   atomic.Int64
	hits      atomic.Int64
	cands     atomic.Int64
	remaining atomic.Int64

	shed       atomic.Int64 // searches refused by the admission gate
	canceled   atomic.Int64 // searches abandoned by client disconnect/deadline
	encodeErrs atomic.Int64 // response bodies that failed to write (client gone)

	degraded  atomic.Int64 // searches answered without a quarantined shard
	transient atomic.Int64 // searches failed (then 503'd) on transient I/O errors

	batches   atomic.Int64 // /search/batch requests served
	batchShed atomic.Int64 // batches refused because the gate lacked slots

	latTotal      Histogram // wall clock of the whole search request
	latReduce     Histogram // Phase-2 candidate reduction CPU
	latRefine     Histogram // Phase-3 refinement CPU + simulated I/O
	latBatch      Histogram // wall clock of one whole batch request
	latBatchQuery Histogram // batch wall clock amortized per member query

	rebuildStats   func() RebuildStats
	shardStats     func() []ShardStat
	ioStats        func() IOStats
	costModelStats func() CostModelStats

	// ingest is the live write path (endpoints + telemetry), nil until
	// SetIngestor or SetIngestStats wires it.
	ingest *ingestState
}

// RebuildStats reports the maintainer's background cache-rebuild activity
// over /stats, so operators can watch non-blocking rebuilds (and their
// failures) without scraping logs.
type RebuildStats struct {
	Rebuilds        int  `json:"rebuilds"`
	RebuildErrors   int  `json:"rebuild_errors"`
	RebuildInFlight bool `json:"rebuild_in_flight"`

	// LastRebuildWall is how long the most recent background build took
	// (nanoseconds); LastRebuildAt is its completion time in RFC 3339. Both
	// are absent until the first rebuild lands.
	LastRebuildWall time.Duration `json:"last_rebuild_wall_ns,omitempty"`
	LastRebuildAt   string        `json:"last_rebuild_at,omitempty"`

	// Retunes counts adaptive-τ retune rebuilds (a subset of Rebuilds); Tau
	// is the serving engine's code length. Tau is 0 on a sharded aggregate
	// whose shards have retuned to different code lengths.
	Retunes int `json:"retunes"`
	Tau     int `json:"tau,omitempty"`
}

// SetRebuildStats registers a snapshot source for maintainer rebuild
// telemetry; /stats then carries a "maintain" object. Call before serving.
func (h *Handler) SetRebuildStats(fn func() RebuildStats) { h.rebuildStats = fn }

// ShardStat is one shard's statistics block for /stats and /metrics on a
// sharded deployment: how the shard's points, cache and query load are
// distributed, so a hot or cold shard is visible at a glance.
type ShardStat struct {
	Shard         int     `json:"shard"`
	Points        int     `json:"points"`
	CachedItems   int     `json:"cached_items"`
	CacheCapacity int     `json:"cache_capacity"`
	Queries       int64   `json:"queries"`
	Candidates    int64   `json:"candidates"`
	Hits          int64   `json:"cache_hits"`
	HitRatio      float64 `json:"hit_ratio"`
	Remaining     int64   `json:"remaining"`
	RefineRatio   float64 `json:"refine_ratio"`
	Fetched       int64   `json:"fetched"`
	PageReads     int64   `json:"page_reads"`

	// RhoHitEwma / RhoRefineEwma are the shard's exponentially weighted
	// observed ratios — where the shard's traffic is *now*, versus the
	// since-startup HitRatio/RefineRatio means above.
	RhoHitEwma    float64 `json:"rho_hit_ewma"`
	RhoRefineEwma float64 `json:"rho_refine_ewma"`

	// Quarantined marks a shard currently served around after a permanent
	// storage failure; FetchFailures counts the failures that put it there.
	Quarantined   bool  `json:"quarantined,omitempty"`
	FetchFailures int64 `json:"fetch_failures,omitempty"`

	// Maintain carries the shard's own rebuild activity when the sharded
	// maintainer is running (each shard rebuilds independently).
	Maintain *RebuildStats `json:"maintain,omitempty"`

	// CostModel carries the shard's drift-watchdog telemetry when adaptive
	// τ re-tuning is armed (each shard retunes independently).
	CostModel *CostModelStats `json:"costmodel,omitempty"`
}

// SetShardStats registers a snapshot source for per-shard telemetry; /stats
// and /metrics then carry a "shards" array. Call before serving.
func (h *Handler) SetShardStats(fn func() []ShardStat) { h.shardStats = fn }

// IOStats is the storage-layer fault/retry telemetry for /metrics: retries
// that recovered transient faults, and the error counts by classification.
// These are device-level counters — retries do not inflate the logical
// page_reads the cache model is judged on.
type IOStats struct {
	Retries         int64 `json:"io_retries"`
	TransientErrors int64 `json:"io_errors_transient"`
	PermanentErrors int64 `json:"io_errors_permanent"`
}

// SetIOStats registers a snapshot source for storage fault telemetry; /metrics
// then carries an "io" object. Call before serving.
func (h *Handler) SetIOStats(fn func() IOStats) { h.ioStats = fn }

// CostModelStats is the drift watchdog's telemetry block for /metrics:
// observed vs model-predicted ρ_hit/ρ_refine, the serving and recommended
// code lengths, and the retune counters. All model quantities reflect the
// most recently evaluated drift window.
type CostModelStats struct {
	Tau            int `json:"tau"`
	RecommendedTau int `json:"recommended_tau"`

	ObservedRhoHit    float64 `json:"observed_rho_hit"`
	ObservedRhoRefine float64 `json:"observed_rho_refine"`

	PredictedRhoHit    float64 `json:"predicted_rho_hit"`
	PredictedRhoRefine float64 `json:"predicted_rho_refine"`

	PredictedCrefine float64 `json:"predicted_crefine"`
	BestCrefine      float64 `json:"best_crefine"`
	Improvement      float64 `json:"improvement"`

	PendingWindows int   `json:"pending_windows"`
	Windows        int64 `json:"windows"`
	Retunes        int64 `json:"retunes"`
}

// SetCostModelStats registers a snapshot source for the adaptive-τ watchdog;
// /metrics then carries a "costmodel" object. Call before serving.
func (h *Handler) SetCostModelStats(fn func() CostModelStats) { h.costModelStats = fn }

// New builds the handler.
func New(s Searcher, cfg Config) *Handler {
	cfg = cfg.withDefaults()
	h := &Handler{
		mux:      http.NewServeMux(),
		searcher: s,
		cfg:      cfg,
		gate:     make(chan struct{}, cfg.MaxInFlight),
	}
	h.batch, _ = s.(BatchSearcher)
	h.mux.HandleFunc("POST /search", h.handleSearch)
	h.mux.HandleFunc("POST /search/batch", h.handleSearchBatch)
	h.mux.HandleFunc("GET /stats", h.handleStats)
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

type searchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
}

type searchResponse struct {
	IDs   []int `json:"ids"`
	Stats Stats `json:"stats"`

	// Degraded mirrors Stats.Degraded at the top level so clients that only
	// look at ids cannot miss that the answer may be partial.
	Degraded bool `json:"degraded,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON is the single place a response body is produced. The status
// line goes out before the body, so a failed encode means the client
// disconnected mid-response (or the body was half-written): it is recorded
// in encodeErrs and nothing further is written — a second WriteHeader after
// a partial body would corrupt the keep-alive connection for the next
// request.
func (h *Handler) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		h.encodeErrs.Add(1)
	}
}

func (h *Handler) fail(w http.ResponseWriter, code int, format string, args ...any) {
	h.writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// firstNonFinite returns the index of the first NaN or ±Inf component, or
// -1 when the vector is finite. NaN compares false against every bound, so
// letting one into the reduction core silently corrupts the lb/ub pruning
// and returns wrong neighbors with 200 OK — it must die here with 400.
func firstNonFinite(v []float32) int {
	for i, x := range v {
		f := float64(x)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return i
		}
	}
	return -1
}

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	// Admission: take a semaphore slot or shed. Shedding with 503 keeps
	// tail latency bounded for admitted requests instead of queueing
	// everyone behind a saturated worker pool.
	select {
	case h.gate <- struct{}{}:
		defer func() { <-h.gate }()
	default:
		h.shed.Add(1)
		h.fail(w, http.StatusServiceUnavailable,
			"saturated: %d searches in flight; retry with backoff", cap(h.gate))
		return
	}

	var req searchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&req); err != nil {
		h.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Vector) != h.cfg.Dim {
		h.fail(w, http.StatusBadRequest, "vector has %d dimensions, engine serves %d", len(req.Vector), h.cfg.Dim)
		return
	}
	if req.K < 1 || req.K > h.cfg.MaxK {
		h.fail(w, http.StatusBadRequest, "k must be in [1, %d], got %d", h.cfg.MaxK, req.K)
		return
	}
	if j := firstNonFinite(req.Vector); j >= 0 {
		h.fail(w, http.StatusBadRequest, "vector[%d] is not finite", j)
		return
	}

	start := time.Now()
	ids, st, err := h.searcher.Search(r.Context(), req.Vector, req.K)
	if err != nil {
		if r.Context().Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone (or its deadline passed): the engine
			// abandoned the search before refinement I/O. The response is
			// best-effort — usually nobody is listening.
			h.canceled.Add(1)
			h.fail(w, statusClientClosedRequest, "search abandoned: %v", err)
			return
		}
		if disk.IsTransient(err) {
			// A transient storage fault exhausted the retry budget. The
			// condition is expected to clear, so tell the client to retry
			// rather than reporting a server fault.
			h.transient.Add(1)
			w.Header().Set("Retry-After", "1")
			h.fail(w, http.StatusServiceUnavailable, "transient storage error, retry: %v", err)
			return
		}
		h.fail(w, http.StatusInternalServerError, "search failed: %v", err)
		return
	}
	if st.Degraded {
		h.degraded.Add(1)
	}
	h.queries.Add(1)
	h.fetched.Add(int64(st.Fetched))
	h.hits.Add(int64(st.Hits))
	h.cands.Add(int64(st.Candidates))
	h.remaining.Add(int64(st.Remaining))
	h.latTotal.Observe(time.Since(start))
	h.latReduce.Observe(st.ReduceTime)
	h.latRefine.Observe(st.RefineTime + st.SimulatedIO)

	h.writeJSON(w, http.StatusOK, searchResponse{IDs: ids, Stats: st, Degraded: st.Degraded})
}

type batchSearchRequest struct {
	Vectors [][]float32 `json:"vectors"`
	K       int         `json:"k"`
}

// batchSummary is the request-level accounting of one coalesced batch: how
// much refinement I/O the whole batch paid (the sum of the per-query
// attributions — coalescing means this is at most, usually well below, what
// the same queries cost one at a time).
type batchSummary struct {
	Queries   int           `json:"queries"`
	PageReads int64         `json:"page_reads"`
	Wall      time.Duration `json:"wall_ns"`
}

type batchSearchResponse struct {
	Results []searchResponse `json:"results"`
	Batch   batchSummary     `json:"batch"`
}

// handleSearchBatch serves POST /search/batch: one request, many vectors,
// one coalesced refinement pass. The admission gate is charged one slot per
// vector — a batch is that much work — and the whole batch is shed with 503
// when the gate cannot seat all of it (partial admission would let batches
// starve single queries while still doing a batch's work).
func (h *Handler) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if h.batch == nil {
		h.fail(w, http.StatusNotImplemented, "engine does not support batch search")
		return
	}
	var req batchSearchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<24))
	if err := dec.Decode(&req); err != nil {
		h.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	n := len(req.Vectors)
	if n < 1 {
		h.fail(w, http.StatusBadRequest, "batch needs at least one vector")
		return
	}
	if n > h.cfg.MaxBatch {
		h.fail(w, http.StatusBadRequest, "batch has %d vectors, limit is %d", n, h.cfg.MaxBatch)
		return
	}
	if req.K < 1 || req.K > h.cfg.MaxK {
		h.fail(w, http.StatusBadRequest, "k must be in [1, %d], got %d", h.cfg.MaxK, req.K)
		return
	}
	for i, v := range req.Vectors {
		if len(v) != h.cfg.Dim {
			h.fail(w, http.StatusBadRequest, "vectors[%d] has %d dimensions, engine serves %d", i, len(v), h.cfg.Dim)
			return
		}
		if j := firstNonFinite(v); j >= 0 {
			h.fail(w, http.StatusBadRequest, "vectors[%d][%d] is not finite", i, j)
			return
		}
	}

	// Admission: the batch needs n slots, all or nothing.
	acquired := 0
	defer func() {
		for ; acquired > 0; acquired-- {
			<-h.gate
		}
	}()
	for acquired < n {
		select {
		case h.gate <- struct{}{}:
			acquired++
		default:
			h.batchShed.Add(1)
			h.shed.Add(int64(n - acquired))
			h.fail(w, http.StatusServiceUnavailable,
				"saturated: batch of %d needs %d more slots of %d; retry with backoff",
				n, n-acquired, cap(h.gate))
			return
		}
	}

	start := time.Now()
	ids, sts, err := h.batch.SearchBatch(r.Context(), req.Vectors, req.K)
	if err != nil {
		if r.Context().Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			h.canceled.Add(1)
			h.fail(w, statusClientClosedRequest, "batch abandoned: %v", err)
			return
		}
		if disk.IsTransient(err) {
			h.transient.Add(1)
			w.Header().Set("Retry-After", "1")
			h.fail(w, http.StatusServiceUnavailable, "transient storage error, retry: %v", err)
			return
		}
		h.fail(w, http.StatusInternalServerError, "batch search failed: %v", err)
		return
	}
	wall := time.Since(start)
	h.batches.Add(1)
	h.latBatch.Observe(wall)
	perQuery := wall / time.Duration(n)
	resp := batchSearchResponse{
		Results: make([]searchResponse, n),
		Batch:   batchSummary{Queries: n, Wall: wall},
	}
	for i := range ids {
		st := sts[i]
		resp.Results[i] = searchResponse{IDs: ids[i], Stats: st, Degraded: st.Degraded}
		if st.Degraded {
			h.degraded.Add(1)
		}
		resp.Batch.PageReads += st.PageReads
		h.queries.Add(1)
		h.fetched.Add(int64(st.Fetched))
		h.hits.Add(int64(st.Hits))
		h.cands.Add(int64(st.Candidates))
		h.remaining.Add(int64(st.Remaining))
		h.latBatchQuery.Observe(perQuery)
		h.latReduce.Observe(st.ReduceTime)
		h.latRefine.Observe(st.RefineTime + st.SimulatedIO)
	}
	h.writeJSON(w, http.StatusOK, resp)
}

type statsResponse struct {
	Queries     int64         `json:"queries"`
	AvgFetched  float64       `json:"avg_fetched"`
	HitRatio    float64       `json:"hit_ratio"`
	RefineRatio float64       `json:"refine_ratio"`
	AvgCandSize float64       `json:"avg_candidates"`
	Maintain    *RebuildStats `json:"maintain,omitempty"`
	Ingest      *IngestStats  `json:"ingest,omitempty"`
	Shards      []ShardStat   `json:"shards,omitempty"`
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	queries := h.queries.Load()
	fetched := h.fetched.Load()
	hits := h.hits.Load()
	cands := h.cands.Load()
	remaining := h.remaining.Load()
	resp := statsResponse{Queries: queries}
	if queries > 0 {
		resp.AvgFetched = float64(fetched) / float64(queries)
		resp.AvgCandSize = float64(cands) / float64(queries)
	}
	if cands > 0 {
		resp.HitRatio = float64(hits) / float64(cands)
		resp.RefineRatio = float64(remaining) / float64(cands)
	}
	if h.rebuildStats != nil {
		rs := h.rebuildStats()
		resp.Maintain = &rs
	}
	resp.Ingest = h.ingestStatsBlock()
	if h.shardStats != nil {
		resp.Shards = h.shardStats()
	}
	h.writeJSON(w, http.StatusOK, resp)
}

type latencyMetrics struct {
	Total      HistogramSnapshot `json:"total"`
	Reduce     HistogramSnapshot `json:"phase2_reduce"`
	RefineIO   HistogramSnapshot `json:"refine_io"`
	Batch      HistogramSnapshot `json:"batch"`
	BatchQuery HistogramSnapshot `json:"batch_query"`
}

type metricsResponse struct {
	Queries        int64 `json:"queries"`
	Batches        int64 `json:"batches"`
	InFlight       int   `json:"in_flight"`
	AdmissionLimit int   `json:"admission_limit"`
	Shed           int64 `json:"shed"`
	BatchShed      int64 `json:"batch_shed"`
	Canceled       int64 `json:"canceled"`
	EncodeErrors   int64 `json:"encode_errors"`

	// Fault-tolerance counters: searches answered around a quarantined shard,
	// searches 503'd on an unrecovered transient fault, and (when an IOStats
	// source is registered) the storage layer's retry/error totals.
	DegradedSearches  int64    `json:"degraded_searches"`
	TransientFailures int64    `json:"transient_failures"`
	IO                *IOStats `json:"io,omitempty"`

	// CostModel is the adaptive-τ watchdog block (observed vs predicted
	// ratios, recommended τ, retune counts), present when a source is
	// registered; on sharded deployments each shards[] entry additionally
	// carries its own block.
	CostModel *CostModelStats `json:"costmodel,omitempty"`

	// Ingest is the live write-path block (WAL, delta, compactions, request
	// counters), present when an ingestor or its stats source is registered.
	Ingest *ingestMetrics `json:"ingest,omitempty"`

	Latency latencyMetrics `json:"latency"`
	Shards  []ShardStat    `json:"shards,omitempty"`
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var shards []ShardStat
	if h.shardStats != nil {
		shards = h.shardStats()
	}
	var io *IOStats
	if h.ioStats != nil {
		s := h.ioStats()
		io = &s
	}
	var cm *CostModelStats
	if h.costModelStats != nil {
		s := h.costModelStats()
		cm = &s
	}
	h.writeJSON(w, http.StatusOK, metricsResponse{
		Queries:           h.queries.Load(),
		Batches:           h.batches.Load(),
		InFlight:          len(h.gate),
		AdmissionLimit:    cap(h.gate),
		Shed:              h.shed.Load(),
		BatchShed:         h.batchShed.Load(),
		Canceled:          h.canceled.Load(),
		EncodeErrors:      h.encodeErrs.Load(),
		DegradedSearches:  h.degraded.Load(),
		TransientFailures: h.transient.Load(),
		IO:                io,
		CostModel:         cm,
		Ingest:            h.ingestMetricsBlock(),
		Latency: latencyMetrics{
			Total:      h.latTotal.Snapshot(),
			Reduce:     h.latReduce.Snapshot(),
			RefineIO:   h.latRefine.Snapshot(),
			Batch:      h.latBatch.Snapshot(),
			BatchQuery: h.latBatchQuery.Snapshot(),
		},
		Shards: shards,
	})
}
