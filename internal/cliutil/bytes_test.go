package cliutil

import "testing"

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"4096", 4096, false},
		{"512B", 512, false},
		{"4KiB", 4 << 10, false},
		{"16MiB", 16 << 20, false},
		{"1GiB", 1 << 30, false},
		{"2TiB", 2 << 40, false},
		{" 16MiB ", 16 << 20, false},
		{"16 MiB", 16 << 20, false},

		// Zero and negative budgets built nonsense caches before the fix.
		{"0", 0, true},
		{"0MiB", 0, true},
		{"-5MiB", 0, true},
		{"-1", 0, true},

		// Unknown units used to be silently read as raw bytes.
		{"16MB", 0, true},
		{"16mb", 0, true},
		{"16kib", 0, true},
		{"16M", 0, true},
		{"16MiBs", 0, true},

		// Garbage.
		{"", 0, true},
		{"MiB", 0, true},
		{"1e5", 0, true},
		{"1.5MiB", 0, true},
		{"9999999999TiB", 0, true}, // overflows int64 after scaling
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseBytes(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
