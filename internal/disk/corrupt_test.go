package disk

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// writeHeaderFile writes a file whose page 0 is a point-file header with the
// given fields, followed by extraPages zero pages.
func writeHeaderFile(t *testing.T, magic, dim, n, hasPerm uint32, pageSize, extraPages int) string {
	t.Helper()
	buf := make([]byte, pageSize*(1+extraPages))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], magic)
	le.PutUint32(buf[4:], dim)
	le.PutUint32(buf[8:], n)
	le.PutUint32(buf[12:], hasPerm)
	path := filepath.Join(t.TempDir(), "pf")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenPointFileCorruptHeader is the regression suite for satellite 2:
// corrupt headers must be rejected before computeGeometry/readPerm, not
// turned into zero-size geometry or multi-GB allocations.
func TestOpenPointFileCorruptHeader(t *testing.T) {
	const ps = 256
	cases := []struct {
		name          string
		magic, dim, n uint32
		hasPerm       uint32
		extraPages    int
	}{
		{name: "dim zero", magic: pfMagic, dim: 0, n: 10, extraPages: 4},
		{name: "dim negative", magic: pfMagic, dim: ^uint32(0), n: 10, extraPages: 4},
		{name: "n negative", magic: pfMagic, dim: 4, n: 1 << 31, extraPages: 4},
		{name: "n beyond device", magic: pfMagic, dim: 4, n: 1 << 20, extraPages: 4},
		{name: "huge n perm alloc", magic: pfMagic, dim: 4, n: 1<<31 - 1, hasPerm: 1, extraPages: 4},
		{name: "perm pages beyond device", magic: pfMagic, dim: 4, n: 64, hasPerm: 1, extraPages: 1},
		{name: "perm flag garbage", magic: pfMagic, dim: 4, n: 8, hasPerm: 7, extraPages: 4},
		{name: "huge dim", magic: pfMagic, dim: 1 << 30, n: 1, extraPages: 4},
		{name: "bad magic", magic: 0xDEADBEEF, dim: 4, n: 8, extraPages: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeHeaderFile(t, tc.magic, tc.dim, tc.n, tc.hasPerm, ps, tc.extraPages)
			pf, err := OpenPointFile(path, ps, 0)
			if err == nil {
				pf.Close()
				t.Fatalf("OpenPointFile accepted corrupt header (dim=%#x n=%#x perm=%d)",
					tc.dim, tc.n, tc.hasPerm)
			}
		})
	}
}

// TestOpenPointFileCorruptPerm: a structurally valid header whose permutation
// pages contain out-of-range slots must be rejected, not dereferenced later.
func TestOpenPointFileCorruptPerm(t *testing.T) {
	const ps = 256
	// dim=4 (16-byte points, 16/page), n=8, hasPerm=1: 1 header + 1 perm +
	// 1 data page.
	path := writeHeaderFile(t, pfMagic, 4, 8, 1, ps, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Perm page is page 1; poison entry 3 with an out-of-range slot.
	binary.LittleEndian.PutUint32(raw[ps+4*3:], 99)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if pf, err := OpenPointFile(path, ps, 0); err == nil {
		pf.Close()
		t.Fatal("OpenPointFile accepted out-of-range perm entry")
	}
}

// TestOpenPointFileValidRoundTrip guards against over-tightening: a correct
// header written by BuildPointFile must still open.
func TestOpenPointFileValidRoundTrip(t *testing.T) {
	ds := testDataset(t, 32, 8)
	path := filepath.Join(t.TempDir(), "pf")
	pf, err := BuildPointFile(path, ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	pf.Close()
	pf2, err := OpenPointFile(path, 256, 0)
	if err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	defer pf2.Close()
	if pf2.Len() != 32 || pf2.Dim() != 8 {
		t.Fatalf("shape %dx%d", pf2.Len(), pf2.Dim())
	}
}

// FuzzOpenPointFile feeds arbitrary bytes as a point-file image. The open
// path must reject or accept cleanly — no panics, no runaway allocations
// (huge-n inputs are bounded by the device page count check).
func FuzzOpenPointFile(f *testing.F) {
	const ps = 256
	le := binary.LittleEndian
	seed := make([]byte, ps*3)
	le.PutUint32(seed[0:], pfMagic)
	le.PutUint32(seed[4:], 4)
	le.PutUint32(seed[8:], 8)
	le.PutUint32(seed[12:], 0)
	f.Add(seed)
	hostile := make([]byte, ps)
	le.PutUint32(hostile[0:], pfMagic)
	le.PutUint32(hostile[4:], 1)
	le.PutUint32(hostile[8:], 1<<31-1)
	le.PutUint32(hostile[12:], 1)
	f.Add(hostile)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64*ps {
			return // keep the corpus small; geometry bugs show up well below this
		}
		path := filepath.Join(t.TempDir(), "fuzz")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		pf, err := OpenPointFile(path, ps, 0)
		if err != nil {
			return
		}
		defer pf.Close()
		// An accepted file must be internally consistent enough to fetch.
		if pf.Len() > 0 {
			if _, err := pf.Fetch(0, nil); err != nil {
				t.Fatalf("accepted file failed Fetch(0): %v", err)
			}
			if _, err := pf.PageOf(pf.Len() - 1); err != nil {
				t.Fatalf("accepted file failed PageOf(last): %v", err)
			}
		}
	})
}
