package exploitbit

import (
	"context"
	"net/http"

	"exploitbit/internal/server"
)

// ServeOptions tunes the HTTP handler's request lifecycle. Zero values
// select the documented defaults.
type ServeOptions struct {
	// MaxK caps the k accepted by /search (default 1000).
	MaxK int
	// MaxInFlight is the admission limit: concurrent searches beyond it are
	// shed with 503 and counted on /metrics (default 256).
	MaxInFlight int
}

// engineSearcher adapts an Engine (or Maintainer) to the HTTP handler.
type engineSearcher struct {
	search func(ctx context.Context, q []float32, k int) ([]int, QueryStats, error)
}

func (s engineSearcher) Search(ctx context.Context, q []float32, k int) ([]int, server.Stats, error) {
	ids, st, err := s.search(ctx, q, k)
	return ids, server.Stats{
		Candidates:  st.Candidates,
		Hits:        st.Hits,
		Pruned:      st.Pruned,
		TrueHits:    st.TrueHits,
		Fetched:     st.Fetched,
		PageReads:   st.PageReads,
		SimulatedIO: st.SimulatedIO,
		GenTime:     st.GenTime,
		ReduceTime:  st.ReduceTime,
		RefineTime:  st.RefineTime,
	}, err
}

// Serve returns an http.Handler exposing the engine with default lifecycle
// options: POST /search, GET /stats, GET /metrics, GET /healthz. Safe for
// concurrent requests; the request context is plumbed into the search, so a
// disconnected client abandons its query before refinement I/O.
func Serve(eng *Engine, dim int) http.Handler {
	return ServeWith(eng, dim, ServeOptions{})
}

// ServeWith is Serve with explicit lifecycle options.
func ServeWith(eng *Engine, dim int, opt ServeOptions) http.Handler {
	return server.New(engineSearcher{search: eng.SearchCtx},
		server.Config{Dim: dim, MaxK: opt.MaxK, MaxInFlight: opt.MaxInFlight})
}

// ServeMaintained is Serve over a self-maintaining engine: the cache
// rebuilds itself in the background under workload drift while requests
// flow, and /stats carries a "maintain" object with rebuild counters.
func ServeMaintained(m *Maintainer, dim int) http.Handler {
	return ServeMaintainedWith(m, dim, ServeOptions{})
}

// ServeMaintainedWith is ServeMaintained with explicit lifecycle options.
func ServeMaintainedWith(m *Maintainer, dim int, opt ServeOptions) http.Handler {
	h := server.New(engineSearcher{search: m.SearchCtx},
		server.Config{Dim: dim, MaxK: opt.MaxK, MaxInFlight: opt.MaxInFlight})
	h.SetRebuildStats(func() server.RebuildStats {
		st := m.Stats()
		return server.RebuildStats{
			Rebuilds:        st.Rebuilds,
			RebuildErrors:   st.RebuildErrors,
			RebuildInFlight: st.RebuildInFlight,
		}
	})
	return h
}
