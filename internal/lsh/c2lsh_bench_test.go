package lsh

import (
	"testing"

	"exploitbit/internal/dataset"
)

func BenchmarkBuild5000x150(b *testing.B) {
	ds := dataset.Generate(dataset.Config{Name: "b", N: 5000, Dim: 150, Clusters: 20, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(ds, Params{Seed: 2})
	}
}

// BenchmarkCandidates measures Phase 1 cost per query (collision counting
// with virtual rehashing).
func BenchmarkCandidates5000x150(b *testing.B) {
	ds := dataset.Generate(dataset.Config{Name: "b", N: 5000, Dim: 150, Clusters: 20, Seed: 1})
	ix := Build(ds, Params{Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Candidates(ds.Point(i%ds.Len()), 10)
	}
}
