// ebc-serve runs the cached kNN engine as an HTTP service over an EBDS
// dataset, with optional self-maintenance (automatic cache rebuilds under
// workload drift). Example:
//
//	ebc-gen -preset nuswide -n 20000 -o nw.ebds
//	ebc-serve -data nw.ebds -method HC-O -cache 16MiB -addr :8080
//	curl -s localhost:8080/search -d '{"vector":[...150 floats...],"k":10}'
//	curl -s localhost:8080/metrics
//
// The server is production-shaped: read/write/idle timeouts and a header
// cap guard the listener, an admission gate sheds load with 503 once
// -max-inflight searches are in flight, and SIGINT/SIGTERM drain in-flight
// requests (bounded by -drain-timeout) before exiting 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"exploitbit"
	"exploitbit/internal/cliutil"
	"exploitbit/internal/core"
)

func main() {
	var (
		data     = flag.String("data", "", "EBDS dataset file (required)")
		logFile  = flag.String("log", "", "EBQL query log for cache construction (default: generated)")
		method   = flag.String("method", "HC-O", "caching method")
		cacheSz  = flag.String("cache", "16MiB", "cache size")
		k        = flag.Int("k", 10, "profiling k")
		addr     = flag.String("addr", ":8080", "listen address")
		maintain = flag.Bool("maintain", false, "enable automatic cache rebuilds under workload drift")

		adaptiveTau     = flag.Bool("adaptive-tau", false, "with -maintain: arm the cost-model drift watchdog, re-tuning tau when the model predicts a cheaper code length for the live workload")
		retuneThreshold = flag.Float64("retune-threshold", 0.10, "minimum predicted relative C_refine improvement before a window counts toward a retune")
		retuneWindows   = flag.Int("retune-windows", 3, "consecutive over-threshold windows required before a retune rebuild fires")

		shards      = flag.Int("shards", 1, "serve through this many scatter-gather shard units (1 = unsharded)")
		shardLayout = flag.String("shard-layout", string(exploitbit.RoundRobin), "shard partitioning: round-robin or clustered")

		ioRetries      = flag.Int("io-retries", 3, "transient storage read failures retried per page before the error surfaces (0 = no retry)")
		ioRetryBackoff = flag.Duration("io-retry-backoff", time.Millisecond, "initial retry backoff, doubled per attempt (jittered, capped at 100x)")
		degradedOK     = flag.Bool("degraded-ok", false, "sharded only: serve around a permanently failed shard (responses flagged degraded) instead of failing queries that need it")

		maxInFlight  = flag.Int("max-inflight", 64, "admission limit: concurrent searches before 503")
		maxK         = flag.Int("max-k", 1000, "largest k accepted by /search")
		maxBatch     = flag.Int("max-batch", 64, "largest vector count accepted by /search/batch")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "http.Server ReadTimeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
		maxHeader    = flag.Int("max-header-bytes", 64<<10, "http.Server MaxHeaderBytes")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
		pprofAddr    = flag.String("pprof-addr", "", "listen address for net/http/pprof (e.g. localhost:6060); disabled when empty")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "ebc-serve: -data is required")
		os.Exit(2)
	}

	ds, err := exploitbit.LoadDataset(*data)
	if err != nil {
		log.Fatal("ebc-serve: ", err)
	}
	cs, err := cliutil.ParseBytes(*cacheSz)
	if err != nil {
		log.Fatal("ebc-serve: bad -cache: ", err)
	}

	var wl [][]float32
	if *logFile != "" {
		qlog, err := exploitbit.LoadLog(*logFile)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		wl = qlog.Queries()
	} else {
		qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
			PoolSize: 500, Length: 2000, ZipfS: 1.3, Perturb: 0.005, Seed: 7,
		})
		wl = qlog.Queries()
	}

	log.Printf("ebc-serve: dataset %q (%d x %d-d); building index and profiling %d workload queries…",
		ds.Name, ds.Len(), ds.Dim, len(wl))
	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{
		WorkloadK: *k, Shards: *shards, ShardLayout: exploitbit.ShardLayout(*shardLayout),
	})
	if err != nil {
		log.Fatal("ebc-serve: ", err)
	}
	defer sys.Close()

	if *ioRetries > 0 {
		sys.SetRetry(exploitbit.RetryPolicy{
			MaxRetries: *ioRetries,
			Backoff:    *ioRetryBackoff,
			MaxBackoff: 100 * *ioRetryBackoff,
		})
	}
	if *degradedOK && *shards <= 1 {
		log.Printf("ebc-serve: -degraded-ok has no effect without -shards > 1")
	}

	tau := sys.OptimalTau(cs)
	cfg := core.Config{Method: exploitbit.Method(*method), CacheBytes: cs, Tau: tau, SmoothEps: 0.01}
	sopt := exploitbit.ServeOptions{MaxK: *maxK, MaxInFlight: *maxInFlight, MaxBatch: *maxBatch}
	if *adaptiveTau && !*maintain {
		log.Printf("ebc-serve: -adaptive-tau has no effect without -maintain")
	}
	mopt := exploitbit.MaintainOptions{
		AdaptiveTau:     *adaptiveTau,
		RetuneThreshold: *retuneThreshold,
		RetuneWindows:   *retuneWindows,
	}
	var handler http.Handler
	var drainMaintainer func() // set when a maintainer needs closing after drain
	switch {
	case *shards > 1 && *maintain:
		m, err := sys.MaintainedSharded(cfg, mopt)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		m.Sharded().SetDegradedOK(*degradedOK)
		drainMaintainer = m.Close
		handler = exploitbit.ServeShardedMaintainedWith(m, ds.Dim, sopt)
	case *shards > 1:
		se, err := sys.ShardedEngineWith(cfg)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		se.SetDegradedOK(*degradedOK)
		handler = exploitbit.ServeShardedWith(se, ds.Dim, sopt)
	case *maintain:
		m, err := sys.Maintained(cfg, mopt)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		drainMaintainer = m.Close
		handler = exploitbit.ServeMaintainedWith(m, ds.Dim, sopt)
	default:
		eng, err := sys.Engine(exploitbit.Method(*method), cs, tau)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		handler = exploitbit.ServeWith(eng, ds.Dim, sopt)
	}

	srv := &http.Server{
		Addr:           *addr,
		Handler:        handler,
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,
		IdleTimeout:    *idleTimeout,
		MaxHeaderBytes: *maxHeader,
	}

	if *pprofAddr != "" {
		// Profiling stays off the serving listener: its own mux on its own
		// port, opt-in only, so the debug surface is never exposed by default.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("ebc-serve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("ebc-serve: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("ebc-serve: %s cache, %s budget, tau=%d, %d shard(s); listening on %s (max %d in-flight searches)",
		*method, *cacheSz, tau, sys.Shards(), *addr, *maxInFlight)

	select {
	case err := <-errc:
		// The listener died on its own (port in use, …): nothing to drain.
		log.Fatal("ebc-serve: ", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills us
		log.Printf("ebc-serve: signal received; draining in-flight requests (budget %s)", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("ebc-serve: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("ebc-serve: serve: %v", err)
		}
		if drainMaintainer != nil {
			// After the listener has drained: no new searches can arrive, so
			// no new rebuild can launch, and Close waits out any in flight.
			drainMaintainer()
		}
		log.Printf("ebc-serve: drained; exiting")
	}
}
