package cache

import (
	"math/rand"
	"testing"
)

func BenchmarkHFFGet(b *testing.B) {
	c := New[[]uint64](10000, HFF)
	payload := make([]uint64, 24)
	for i := 0; i < 10000; i++ {
		c.Put(i, payload)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(i % 20000) // ~50% hits
	}
}

func BenchmarkLRUMixed(b *testing.B) {
	c := New[[]uint64](4096, LRU)
	payload := make([]uint64, 24)
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, 1<<16)
	for i := range keys {
		keys[i] = rng.Intn(16384)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, payload)
		}
	}
}
