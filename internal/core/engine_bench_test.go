package core

import (
	"testing"
)

// BenchmarkSearch measures one full Algorithm-1 query (generation +
// reduction + refinement, zero simulated latency) per caching method.
func BenchmarkSearch(b *testing.B) {
	w := buildWorld(b, 4000, 32, 201)
	for _, m := range []Method{NoCache, Exact, HCD, HCO} {
		m := m
		b.Run(string(m), func(b *testing.B) {
			eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
				Method: m, CacheBytes: 1 << 20, Tau: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Search(w.qtest[i%len(w.qtest)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineBuild measures the offline construction cost per method
// (histogram + cache fill) once the profile exists.
func BenchmarkEngineBuild(b *testing.B) {
	w := buildWorld(b, 4000, 32, 202)
	for _, m := range []Method{Exact, HCD, HCO, IHCO} {
		m := m
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
					Method: m, CacheBytes: 1 << 20, Tau: 8,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProfile measures workload profiling throughput (queries/sec of
// the offline pipeline's dominant step).
func BenchmarkProfile(b *testing.B) {
	w := buildWorld(b, 4000, 32, 203)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildProfile(w.ds, candFunc(w.ix), w.wl[:100], 10)
	}
	b.ReportMetric(float64(100), "queries/op")
}
