package histogram

import (
	"math"
)

// intervalCost is the contribution of one bucket [lo..hi] (0-based discrete
// values) to a histogram metric. Both supported costs are monotone
// non-increasing in lo for fixed hi (Lemma 3 for Υ; a standard property for
// SSE), which is what justifies the DP cutoff.
type intervalCost func(lo, hi int) float64

// dpResult carries the optimal partition and its metric value.
type dpResult struct {
	uppers []int
	value  float64
}

// optimalPartition is the dynamic program of Algorithm 2 (Build-kNN-Histogram)
// generalized over the bucket-cost function: it finds the partition of
// [0..ndom-1] into at most b buckets minimizing the sum of bucket costs,
// using Eqn 5:
//
//	OPT(n,m) = min_t { OPT(t,m-1) + cost([t+1, n]) }
//
// When cutoff is true the inner loop terminates once cost([t+1,n]) alone
// already exceeds the best OPT(n,m) found — valid because cost is monotone
// in the bucket width (Lemma 3) and OPT(t,m-1) >= 0. This is the paper's key
// construction-time optimization; the ablation bench toggles it.
func optimalPartition(ndom, b int, cost intervalCost, cutoff bool) dpResult {
	if b > ndom {
		b = ndom
	}
	if b < 1 {
		b = 1
	}
	// opt[m][n] = minimal metric covering the first n values (0..n-1) with
	// at most m buckets; pos[m][n] = best split t (prefix length of the
	// sub-problem), or 0 when the whole prefix is one bucket.
	opt := make([][]float64, b+1)
	pos := make([][]int32, b+1)
	for m := 1; m <= b; m++ {
		opt[m] = make([]float64, ndom+1)
		pos[m] = make([]int32, ndom+1)
	}
	for n := 1; n <= ndom; n++ {
		opt[1][n] = cost(0, n-1)
	}
	for m := 2; m <= b; m++ {
		for n := 1; n <= ndom; n++ {
			if n <= m {
				// Enough buckets for singletons: metric contribution is
				// width 0 per bucket for Υ, and 0 deviation for SSE only if
				// singleton; cost(l,l) handles both.
				var v float64
				for t := 0; t < n; t++ {
					v += cost(t, t)
				}
				opt[m][n] = v
				pos[m][n] = int32(n - 1)
				continue
			}
			best := math.Inf(1)
			bestT := int32(0)
			for t := n - 1; t >= m-1; t-- {
				c := cost(t, n-1)
				if cutoff && c >= best {
					break // Lemma 3: widening only increases cost
				}
				if v := opt[m-1][t] + c; v < best {
					best = v
					bestT = int32(t)
				}
			}
			opt[m][n] = best
			pos[m][n] = bestT
		}
	}
	// Recover bucket uppers.
	uppers := make([]int, 0, b)
	n := ndom
	for m := b; m >= 1 && n > 0; m-- {
		uppers = append(uppers, n-1)
		if m == 1 {
			n = 0
		} else {
			n = int(pos[m][n])
		}
	}
	// uppers collected back-to-front.
	for i, j := 0, len(uppers)-1; i < j; i, j = i+1, j-1 {
		uppers[i], uppers[j] = uppers[j], uppers[i]
	}
	return dpResult{uppers: uppers, value: opt[b][ndom]}
}

// prefixSums returns S with S[i] = Σ_{x<i} f[x].
func prefixSums(f []float64) []float64 {
	s := make([]float64, len(f)+1)
	for i, v := range f {
		s[i+1] = s[i] + v
	}
	return s
}

// KNNOptimalOptions tunes Algorithm 2.
type KNNOptimalOptions struct {
	// DisableCutoff turns off the Lemma 3 early termination (ablation).
	DisableCutoff bool
	// NaiveUpsilon evaluates Υ([l,u]) by direct summation instead of via
	// prefix sums (ablation for construction-time comparisons).
	NaiveUpsilon bool
}

// KNNOptimal builds the paper's optimal kNN histogram HC-O (Algorithm 2):
// the partition into at most b buckets minimizing metric M3,
// Σ_i Υ([l_i,u_i]) with Υ([l,u]) = (Σ_{x∈[l,u]} F′[x]) · (u−l)²  (Eqn 4),
// where fprime is the workload frequency array F′ of Eqn 3.
func KNNOptimal(fprime []float64, b int) *Histogram {
	return KNNOptimalWith(fprime, b, KNNOptimalOptions{})
}

// KNNOptimalWith is KNNOptimal with explicit options.
func KNNOptimalWith(fprime []float64, b int, opt KNNOptimalOptions) *Histogram {
	ndom := len(fprime)
	var cost intervalCost
	if opt.NaiveUpsilon {
		cost = func(lo, hi int) float64 {
			var sum float64
			for v := lo; v <= hi; v++ {
				sum += fprime[v]
			}
			w := float64(hi - lo)
			return sum * w * w
		}
	} else {
		s := prefixSums(fprime)
		cost = func(lo, hi int) float64 {
			w := float64(hi - lo)
			return (s[hi+1] - s[lo]) * w * w
		}
	}
	res := optimalPartition(ndom, b, cost, !opt.DisableCutoff)
	h, err := FromUppers(ndom, res.uppers)
	if err != nil {
		panic("histogram: internal kNN-optimal error: " + err.Error())
	}
	return h
}

// VOptimal builds the classical V-optimal histogram (HC-V) minimizing the
// SSE metric of Jagadish et al. over the data frequency array freq.
func VOptimal(freq []float64, b int) *Histogram {
	ndom := len(freq)
	s := prefixSums(freq)
	sq := make([]float64, ndom)
	for i, v := range freq {
		sq[i] = v * v
	}
	s2 := prefixSums(sq)
	cost := func(lo, hi int) float64 {
		n := float64(hi - lo + 1)
		sum := s[hi+1] - s[lo]
		sumSq := s2[hi+1] - s2[lo]
		sse := sumSq - sum*sum/n
		if sse < 0 { // numerical guard
			return 0
		}
		return sse
	}
	res := optimalPartition(ndom, b, cost, true)
	h, err := FromUppers(ndom, res.uppers)
	if err != nil {
		panic("histogram: internal V-optimal error: " + err.Error())
	}
	return h
}
