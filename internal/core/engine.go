package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"exploitbit/internal/bounds"
	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/multistep"
	"exploitbit/internal/rtree"
	"exploitbit/internal/vec"
)

// Config selects a caching method and its knobs.
type Config struct {
	Method Method
	// CacheBytes is the cache size CS.
	CacheBytes int64
	// Tau is the code length τ (bits per dimension). Ignored by NoCache and
	// Exact. Default 8. Use costmodel.OptimalTau to auto-tune (Section 4.2).
	Tau int
	// Policy is the replacement policy (default HFF; Figure 8).
	Policy cache.Policy
	// SmoothEps blends a sliver of the data distribution into F′ before
	// Algorithm 2 so buckets stay sane where the workload is silent
	// (default 0.01; 0 disables).
	SmoothEps float64
	// STRSortDims controls mHC-R's R-tree tiling depth (default 2).
	STRSortDims int
	// NoTrueHitDetection disables Algorithm 1's true-result detection
	// (Case ii), for the ablation bench.
	NoTrueHitDetection bool
	// EagerFetchMisses implements footnote 6: fetch cache misses from disk
	// immediately during candidate reduction so they tighten lb_k and ub_k.
	// The paper argues this rarely pays off; the ablation bench measures it.
	EagerFetchMisses bool
	// LUTMinCandidates gates the per-query ADC lookup table: the LUT costs
	// O(d·B) to build, so it is only built when |C(q)| reaches this many
	// candidates. 0 selects the default (2·B, which amortizes the build);
	// negative disables the LUT entirely (reference bound path).
	LUTMinCandidates int
	// ParallelReduceThreshold fans Phase 2 across GOMAXPROCS-bounded workers
	// over contiguous candidate chunks when |C(q)| reaches it. 0 selects the
	// default (4096); negative keeps reduction single-threaded.
	ParallelReduceThreshold int
	// NoSlab keeps approximate HFF content in the map-backed Cache instead of
	// the slab-packed arena. The slab is the production layout; this switch
	// exists for ablation benchmarks and the slab-vs-map equivalence tests
	// (results are bit-identical either way).
	NoSlab bool
}

// defaultParallelReduceThreshold is the |C(q)| above which goroutine fan-out
// beats a single-core scan of the candidate states.
const defaultParallelReduceThreshold = 4096

func (c Config) withDefaults() Config {
	if c.Tau < 1 {
		c.Tau = 8
	}
	if c.SmoothEps < 0 {
		c.SmoothEps = 0
	}
	if c.STRSortDims < 1 {
		c.STRSortDims = 2
	}
	return c
}

// Engine executes Algorithm 1 over one dataset, point file, candidate index
// and cache configuration.
type Engine struct {
	ds    *dataset.Dataset
	pf    *disk.PointFile
	cands CandidateFunc
	cfg   Config

	// Approximate-point machinery (HC-*, iHC-*, C-VA). HFF content lives in
	// the slab-packed arena (slab); the map-backed cache (approx) serves the
	// LRU policy and the NoSlab ablation path. Exactly one of the two is
	// non-nil for an approximate-point method.
	codec  encoding.Codec
	table  *bounds.Table
	approx *cache.Cache[[]uint64]
	slab   *cache.Slab
	ghist  *histogram.Histogram
	phist  *histogram.PerDim

	// EXACT baseline.
	exact *cache.Cache[[]float32]

	// mHC-R.
	md      *histogram.MD
	mdCache *cache.Cache[int32]

	// Table 3 bookkeeping.
	histSpaceBytes int
	histBuildTime  time.Duration

	// globalIDs maps this engine's local ids back to dataset-global ids.
	// Nil for an unsharded engine (identity); set on shard engines, whose
	// ds/pf/cache all live in a compacted local id space while the shared
	// mHC-R histogram is indexed by global id.
	globalIDs []int32

	// lutBuckets is the LUT row stride (max bucket count of the active
	// table), cached for the per-query build-vs-scan gate.
	lutBuckets int

	// scratch pools per-query working sets; see searchScratch.
	scratch sync.Pool

	// ubTopPool pools the per-worker running-threshold heaps of the parallel
	// slab kernel (serial reduction uses the scratch's heap instead).
	ubTopPool sync.Pool

	agg atomicAggregate
}

// NewEngine builds an engine: it selects HFF cache content from the profile,
// constructs the method's histogram, and encodes the cached points.
func NewEngine(pf *disk.PointFile, prof *Profile, cands CandidateFunc, cfg Config) (*Engine, error) {
	e, content, capacity, err := newModel(prof, cfg)
	if err != nil {
		return nil, err
	}
	e.pf = pf
	e.cands = cands
	e.fillCache(content, capacity)
	e.finalize()
	return e, nil
}

// newModel runs the offline model construction of NewEngine — method
// validation, histogram build, bounds table, codec — and selects the HFF
// cache content and item capacity, without touching a point file or filling
// a cache. The sharded constructor builds the model once over the full
// profile and shares it by pointer across every shard engine, so all shards
// quantize and bound candidates through identical structures.
func newModel(prof *Profile, cfg Config) (e *Engine, content []int, capacity int, err error) {
	cfg = cfg.withDefaults()
	if err := cfg.Method.Validate(); err != nil {
		return nil, nil, 0, err
	}
	ds := prof.DS
	e = &Engine{ds: ds, cfg: cfg}
	dom := ds.Domain

	switch cfg.Method {
	case NoCache:
		// Nothing to build.

	case Exact:
		itemBits := 32 * ds.Dim
		capacity = cache.CapacityForBudget(cfg.CacheBytes, itemBits)
		content = prof.HFFContent(capacity)

	case MHCR:
		numLeaves := 1 << cfg.Tau
		if numLeaves > ds.Len() {
			numLeaves = ds.Len()
		}
		start := time.Now()
		rt := rtree.BuildSTR(ds, numLeaves, cfg.STRSortDims)
		lo, hi := rt.MBRs()
		md, err := histogram.NewMD(lo, hi, rt.Assignment(ds.Len()))
		if err != nil {
			return nil, nil, 0, fmt.Errorf("core: building mHC-R: %w", err)
		}
		e.histBuildTime = time.Since(start)
		e.md = md
		e.histSpaceBytes = md.SpaceBytes()
		capacity = cache.CapacityForBudget(cfg.CacheBytes, md.CodeLen())
		content = prof.HFFContent(capacity)

	case CVA:
		// Fit the whole dataset: largest τ whose total footprint fits the
		// budget; fall back to τ=1 with partial coverage if even that is
		// too large.
		tau := 0
		for t := 16; t >= 1; t-- {
			total := int64(ds.Len()) * int64(encoding.NewCodec(ds.Dim, t).ItemBits()) / 8
			if total <= cfg.CacheBytes {
				tau = t
				break
			}
		}
		partial := tau == 0
		if partial {
			tau = 1
		}
		e.cfg.Tau = tau // record the budget-derived τ (snapshots rely on it)
		e.codec = encoding.NewCodec(ds.Dim, tau)
		b := histogram.MaxBucketsForCodeLen(tau, dom.Ndom)
		start := time.Now()
		freqs := histogram.DataFrequencyPerDim(ds, ds.Dim, dom)
		e.phist = histogram.BuildPerDim(freqs, b, func(f []float64, b int) *histogram.Histogram {
			return histogram.EquiDepth(f, b)
		})
		e.histBuildTime = time.Since(start)
		e.histSpaceBytes = e.phist.SpaceBytes()
		e.table = bounds.NewTablePerDim(e.phist, dom)
		capacity = ds.Len()
		if partial {
			capacity = cache.CapacityForBudget(cfg.CacheBytes, e.codec.ItemBits())
		}
		content = prof.HFFContent(capacity)
		if !partial {
			content = allIDs(ds.Len())
		}

	default:
		// The HC-* and iHC-* family.
		e.codec = encoding.NewCodec(ds.Dim, cfg.Tau)
		capacity = cache.CapacityForBudget(cfg.CacheBytes, e.codec.ItemBits())
		content = prof.HFFContent(capacity)
		b := histogram.MaxBucketsForCodeLen(cfg.Tau, dom.Ndom)

		start := time.Now()
		switch cfg.Method {
		case HCW:
			e.ghist = histogram.EquiWidth(dom.Ndom, b)
		case HCD:
			e.ghist = histogram.EquiDepth(histogram.DataFrequency(ds, dom), b)
		case HCV:
			e.ghist = histogram.VOptimal(histogram.DataFrequency(ds, dom), b)
		case HCO:
			fp := histogram.WorkloadFrequency(prof.QRPoints(CachedSet(content)), dom)
			histogram.Smooth(fp, histogram.DataFrequency(ds, dom), cfg.SmoothEps)
			e.ghist = histogram.KNNOptimal(fp, b)
		case IHCW:
			freqs := make([][]float64, ds.Dim)
			for j := range freqs {
				freqs[j] = make([]float64, dom.Ndom)
			}
			e.phist = histogram.BuildPerDim(freqs, b, histogram.EquiWidthBuilder)
		case IHCD:
			e.phist = histogram.BuildPerDim(histogram.DataFrequencyPerDim(ds, ds.Dim, dom), b,
				func(f []float64, b int) *histogram.Histogram { return histogram.EquiDepth(f, b) })
		case IHCO:
			fps := histogram.WorkloadFrequencyPerDim(prof.QRPoints(CachedSet(content)), ds.Dim, dom)
			base := histogram.DataFrequencyPerDim(ds, ds.Dim, dom)
			for j := range fps {
				histogram.Smooth(fps[j], base[j], cfg.SmoothEps)
			}
			e.phist = histogram.BuildPerDim(fps, b,
				func(f []float64, b int) *histogram.Histogram { return histogram.KNNOptimal(f, b) })
		}
		e.histBuildTime = time.Since(start)

		if e.ghist != nil {
			e.histSpaceBytes = e.ghist.SpaceBytes()
			e.table = bounds.NewTable(e.ghist, dom, ds.Dim)
		} else {
			e.histSpaceBytes = e.phist.SpaceBytes()
			e.table = bounds.NewTablePerDim(e.phist, dom)
		}
	}
	return e, content, capacity, nil
}

// fillCache populates the method's cache with content (ids in e.ds's id
// space), admitting at most capacity items. Content arrives in the global
// HFF rank order; shard engines pass the shard-local slice of that ranking,
// so the union over all shards equals the unsharded cache content exactly.
func (e *Engine) fillCache(content []int, capacity int) {
	cfg := e.cfg
	switch {
	case cfg.Method == NoCache:

	case cfg.Method == Exact:
		e.exact = cache.New[[]float32](capacity, cfg.Policy)
		if cfg.Policy == cache.HFF {
			e.exact.FillHFF(content, func(id int) []float32 {
				return append([]float32(nil), e.ds.Point(id)...)
			})
		}

	case e.md != nil:
		e.mdCache = cache.New[int32](capacity, cfg.Policy)
		if cfg.Policy == cache.HFF {
			e.mdCache.FillHFF(content, func(id int) int32 {
				return int32(e.md.BucketOf(e.globalID(id)))
			})
		}

	case cfg.Method == CVA:
		if cfg.Policy == cache.HFF && !cfg.NoSlab {
			e.slab = cache.BuildSlab(e.ds.Len(), e.codec.Words(), capacity, content, e.slabFiller())
		} else {
			// LRU (and the NoSlab ablation) keeps the mutable map cache;
			// FillHFF still warm-starts LRU with the profile's ranking.
			e.approx = cache.New[[]uint64](capacity, cfg.Policy)
			e.approx.FillHFF(content, e.pointEncoder())
		}

	default:
		if cfg.Policy == cache.HFF && !cfg.NoSlab {
			e.slab = cache.BuildSlab(e.ds.Len(), e.codec.Words(), capacity, content, e.slabFiller())
		} else {
			e.approx = cache.New[[]uint64](capacity, cfg.Policy)
			if cfg.Policy == cache.HFF {
				e.approx.FillHFF(content, e.pointEncoder())
			}
		}
	}
}

// finalize installs the derived fast-path state and scratch pools. Every
// construction path — NewEngine, shard engines, snapshot load — ends here.
func (e *Engine) finalize() {
	if e.table != nil {
		e.lutBuckets = e.table.Buckets()
	}
	e.scratch.New = func() any { return newSearchScratch(e) }
	e.ubTopPool.New = func() any { return vec.NewTopK(1) }
}

// globalID maps a local id back to its dataset-global id (identity when
// unsharded).
func (e *Engine) globalID(id int) int {
	if e.globalIDs != nil {
		return int(e.globalIDs[id])
	}
	return id
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// pointEncoder returns a sequential-use encoder for FillHFF that reuses one
// codes scratch across calls — the offline build encodes up to the whole
// dataset, so a per-point allocation is pure garbage-collector churn.
func (e *Engine) pointEncoder() func(id int) []uint64 {
	codes := make([]int, e.ds.Dim)
	return func(id int) []uint64 {
		return e.encodeVector(e.ds.Point(id), codes, nil)
	}
}

// slabFiller is pointEncoder's slab counterpart: it encodes a point straight
// into its arena window, so the whole HFF content packs with zero per-point
// allocations.
func (e *Engine) slabFiller() func(id int, dst []uint64) {
	codes := make([]int, e.ds.Dim)
	return func(id int, dst []uint64) {
		e.encodeVector(e.ds.Point(id), codes, dst)
	}
}

// encodeVector quantizes p through the histogram(s) into codes (scratch,
// len Dim) and packs it into dst (nil allocates).
func (e *Engine) encodeVector(p []float32, codes []int, dst []uint64) []uint64 {
	dom := e.ds.Domain
	for j, v := range p {
		bin := dom.Bin(float64(v))
		if e.ghist != nil {
			codes[j] = e.ghist.Bucket(bin)
		} else {
			codes[j] = e.phist.H[j].Bucket(bin)
		}
	}
	return e.codec.Encode(codes, dst)
}

// HistogramSpaceBytes reports the histogram footprint (Table 3).
func (e *Engine) HistogramSpaceBytes() int { return e.histSpaceBytes }

// HistogramBuildTime reports the histogram construction time (Table 3).
func (e *Engine) HistogramBuildTime() time.Duration { return e.histBuildTime }

// CacheCapacity returns the item capacity of the active cache.
func (e *Engine) CacheCapacity() int {
	switch {
	case e.slab != nil:
		return e.slab.Capacity()
	case e.approx != nil:
		return e.approx.Capacity()
	case e.exact != nil:
		return e.exact.Capacity()
	case e.mdCache != nil:
		return e.mdCache.Capacity()
	}
	return 0
}

// CacheLen returns the number of cached items.
func (e *Engine) CacheLen() int {
	switch {
	case e.slab != nil:
		return e.slab.Len()
	case e.approx != nil:
		return e.approx.Len()
	case e.exact != nil:
		return e.exact.Len()
	case e.mdCache != nil:
		return e.mdCache.Len()
	}
	return 0
}

// DiskStats snapshots the backing point file's device counters, including
// the fault-handling activity (retries, transient/permanent errors).
func (e *Engine) DiskStats() disk.Stats { return e.pf.Stats() }

// Aggregate returns the accumulated statistics since the last Reset.
func (e *Engine) Aggregate() Aggregate { return e.agg.Load() }

// ResetStats clears accumulated statistics.
func (e *Engine) ResetStats() { e.agg.Reset() }

// Search runs Algorithm 1 and returns the identifiers of the k nearest
// candidates of q (the paper returns identifiers, not vectors) plus the
// query statistics.
//
// Search is safe for concurrent use: the HFF cache is immutable after
// construction, the LRU cache locks internally, disk counters are atomic,
// and all per-query scratch comes from a pool. Reported per-phase timings
// are CPU time of this goroutine's query only.
func (e *Engine) Search(q []float32, k int) ([]int, QueryStats, error) {
	return e.SearchIntoCtx(context.Background(), q, k, nil)
}

// SearchCtx is Search under a request context: a canceled or expired ctx
// abandons the query at the next check point — between candidate scoring
// strides, before Phase 3's refinement I/O starts, and before every point
// fetch — returning ctx.Err() (possibly wrapped) instead of burning the
// worker pool on an answer nobody is waiting for.
func (e *Engine) SearchCtx(ctx context.Context, q []float32, k int) ([]int, QueryStats, error) {
	return e.SearchIntoCtx(ctx, q, k, nil)
}

// SearchInto is Search appending result identifiers to dst (pass dst[:0] to
// reuse a buffer across queries). With a reused dst, the steady-state
// cache-hit path performs zero heap allocations.
func (e *Engine) SearchInto(q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return e.SearchIntoCtx(context.Background(), q, k, dst)
}

// phase12 runs Phase 1 (candidate generation) and Phase 2 (cache-based
// candidate reduction: scoring, lb_k/ub_k selection, prune / true-hit
// partition) for one query on scratch sc. True-hit identifiers are appended
// to dst; the surviving candidate states are compacted into sc.cs and
// returned. Both the single-query search and the batch pipeline start here.
//
// A non-nil mg folds the live-ingest overlay in: tombstoned base candidates
// are masked before scoring, and surviving delta points are scored exactly
// and enter the same k-th-bound selection. Masking only shrinks the
// candidate set and extras only lower ub_k, so the slab kernel's
// early-abandonment argument (thr ≥ ub_k) is untouched.
func (e *Engine) phase12(ctx context.Context, sc *searchScratch, q []float32, k int, dst []int, mg *Merge) ([]int, []candState, error) {
	st := &sc.st

	// Phase 1: candidate generation.
	t0 := time.Now()
	ids, dmax := e.cands(q, k)
	st.GenTime = time.Since(t0)
	st.Dmax = dmax

	nExtra := 0
	if mg != nil {
		if mg.Deleted != nil {
			// Filter into dedicated scratch: candidate funcs may return
			// shared slices, so the returned ids are never edited in place.
			sc.mergeIDs = sc.mergeIDs[:0]
			for _, id := range ids {
				if !mg.Deleted(int32(id)) {
					sc.mergeIDs = append(sc.mergeIDs, id)
				}
			}
			ids = sc.mergeIDs
		}
		horizon := int32(e.ds.Len())
		for i := range mg.Extra {
			if mg.extraLive(&mg.Extra[i], horizon) {
				nExtra++
			}
		}
	}
	st.Candidates = len(ids) + nExtra

	// Phase 2: candidate reduction — no I/O by construction (unless
	// EagerFetchMisses). The ADC lookup table replaces per-candidate edge
	// math when the candidate set amortizes its build; above the parallel
	// threshold the scan fans out over contiguous chunks.
	t1 := time.Now()
	sc.cs = grow(sc.cs, len(ids)+nExtra)
	cs := sc.cs[:len(ids)]
	lut := e.queryLUT(q, len(ids), sc)
	st.UsedLUT = lut != nil
	workers := e.reduceWorkers(len(ids))
	st.ReduceWorkers = workers
	switch {
	case e.slab != nil && !e.cfg.EagerFetchMisses:
		// Fused blocked kernel straight off the slab arena; blocks are the
		// unit of parallelism above the threshold.
		if err := e.reduceSlab(ctx, q, ids, cs, lut, k, workers, sc, nil); err != nil {
			return nil, nil, err
		}
	case workers > 1:
		if err := e.reduceParallel(ctx, q, ids, cs, lut, workers, st); err != nil {
			return nil, nil, err
		}
	default:
		if err := e.reduceSerial(ctx, q, ids, cs, lut, sc); err != nil {
			return nil, nil, err
		}
	}
	cs = sc.cs[:len(ids)+nExtra]
	if nExtra > 0 {
		// Delta points: exact distance in RAM, lb = ub = d², no I/O. Each is
		// a candidate and a cache hit — exactly what the point would cost in
		// an engine rebuilt over the folded dataset with the point resident
		// in an exact cache.
		horizon := int32(e.ds.Len())
		j := len(ids)
		for i := range mg.Extra {
			ex := &mg.Extra[i]
			if !mg.extraLive(ex, horizon) {
				continue
			}
			d2 := vec.SqDist(q, ex.Vec)
			cs[j] = candState{id: ex.ID, leaf: -1, lbSq: d2, ubSq: d2, exactPt: ex.Vec}
			j++
		}
		st.Hits += nExtra
	}
	lbkSq, ubkSq := sc.kthBoundsSq(cs, k)

	// true results detected without I/O come first
	results, remaining := partitionCandidates(cs, lbkSq, ubkSq, e.cfg.NoTrueHitDetection, st, dst)
	st.Remaining = len(remaining)
	st.ReduceTime = time.Since(t1)
	return results, remaining, nil
}

// SearchIntoCtx is SearchInto under a request context; see SearchCtx for
// the cancellation semantics.
func (e *Engine) SearchIntoCtx(ctx context.Context, q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return e.searchIntoCtx(ctx, q, k, dst, nil)
}

// searchIntoCtx is the full Algorithm 1 pipeline with an optional
// live-ingest overlay (nil mg = plain search); see SearchMergedIntoCtx.
func (e *Engine) searchIntoCtx(ctx context.Context, q []float32, k int, dst []int, mg *Merge) ([]int, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	sc := e.getScratch()
	defer e.putScratch(sc)
	sc.ctx = ctx
	sc.st = QueryStats{}
	st := &sc.st

	results, remaining, err := e.phase12(ctx, sc, q, k, dst, mg)
	if err != nil {
		return nil, sc.st, err
	}

	// Phase 3: multi-step refinement of the remaining candidates, in squared
	// space — sqrt is deferred to the final k results inside SearchSq. An
	// abandoned request is dropped here, before the first refinement fetch:
	// Phase 3 is where disk I/O happens, so this check is what keeps a
	// disconnected client from charging page reads to the device.
	if err := ctx.Err(); err != nil {
		return nil, sc.st, err
	}
	t2 := time.Now()
	kNeed := k - st.TrueHits
	if kNeed > 0 && len(remaining) > 0 {
		sc.mcands = grow(sc.mcands, len(remaining))
		clear(sc.exactByID)
		for i, c := range remaining {
			sc.mcands[i] = multistep.Candidate{ID: int(c.id), LB: c.lbSq, UB: c.ubSq}
			if c.exactPt != nil {
				sc.exactByID[c.id] = c.exactPt
			}
		}
		refined, _, err := sc.msc.SearchSq(q, sc.mcands, kNeed, sc.fetch, sc.rbuf[:0])
		if err != nil {
			return nil, sc.st, err
		}
		sc.rbuf = refined[:0]
		for _, r := range refined {
			results = append(results, r.ID)
		}
	}
	st.RefineTime = time.Since(t2)
	st.SimulatedIO = time.Duration(st.PageReads) * e.pf.Tio()

	e.agg.Add(sc.st)
	return results, sc.st, nil
}

// queryLUT builds (or skips) the per-query ADC lookup table. Building costs
// O(d·B); it pays off once the candidate set is a small multiple of B, so
// small queries keep the direct bound path.
func (e *Engine) queryLUT(q []float32, n int, sc *searchScratch) *bounds.QueryLUT {
	if (e.approx == nil && e.slab == nil) || e.table == nil {
		return nil
	}
	th := e.cfg.LUTMinCandidates
	if th < 0 {
		return nil
	}
	if th == 0 {
		th = 2 * e.lutBuckets
	}
	if n < th {
		return nil
	}
	sc.lut = e.table.BuildLUT(q, sc.lut)
	return sc.lut
}

// reduceWorkers decides Phase 2's fan-out. Eager fetching stays serial (it
// does disk I/O with error handling); otherwise candidate scoring is pure
// CPU over immutable state and parallelizes trivially.
func (e *Engine) reduceWorkers(n int) int {
	if e.cfg.EagerFetchMisses {
		return 1
	}
	th := e.cfg.ParallelReduceThreshold
	if th < 0 {
		return 1
	}
	if th == 0 {
		th = defaultParallelReduceThreshold
	}
	if n < th {
		return 1
	}
	// Keep chunks big enough to amortize goroutine startup.
	minChunk := th / 8
	if minChunk < 1 {
		minChunk = 1
	}
	if minChunk > 512 {
		minChunk = 512
	}
	workers := min(runtime.GOMAXPROCS(0), (n+minChunk-1)/minChunk)
	if workers < 2 {
		return 1
	}
	return workers
}

// scoreCandidate fills c with the cache-derived squared bounds of candidate
// id and reports whether the cache hit. Misses keep the vacuous bounds
// (0, +Inf) of Algorithm 1 line 4.
func (e *Engine) scoreCandidate(q []float32, id int, c *candState, lut *bounds.QueryLUT) bool {
	c.id = int32(id)
	c.leaf = -1
	c.lbSq, c.ubSq = 0, math.Inf(1)
	c.exactPt = nil
	c.known = false
	switch {
	case e.slab != nil:
		// The blocked kernel is the fast path; this per-candidate form serves
		// the eager-fetch ablation, which stays serial.
		if slot := e.slab.SlotOf(id); slot >= 0 {
			words := e.slab.Words(slot)
			if lut != nil {
				c.lbSq, c.ubSq = lut.BoundsSqPacked(words, e.codec)
			} else {
				c.lbSq, c.ubSq = e.table.BoundsSqPacked(q, words, e.codec)
			}
			e.slab.AddStats(1, 0)
			return true
		}
		e.slab.AddStats(0, 1)
	case e.approx != nil:
		if words, ok := e.approx.Get(id); ok {
			if lut != nil {
				c.lbSq, c.ubSq = lut.BoundsSqPacked(words, e.codec)
			} else {
				c.lbSq, c.ubSq = e.table.BoundsSqPacked(q, words, e.codec)
			}
			return true
		}
	case e.exact != nil:
		if p, ok := e.exact.Get(id); ok {
			d2 := vec.SqDist(q, p)
			c.lbSq, c.ubSq = d2, d2
			c.exactPt = p
			return true
		}
	case e.mdCache != nil:
		if b, ok := e.mdCache.Get(id); ok {
			lo, hi := e.md.Rect(int(b))
			c.lbSq, c.ubSq = bounds.RectSq(q, lo, hi)
			return true
		}
	}
	return false
}

// reduceSerial scores every candidate on the calling goroutine, handling
// the eager-fetch ablation path. The context is polled every
// cancelCheckStride candidates so giant candidate sets cannot pin a worker
// past the client's deadline.
func (e *Engine) reduceSerial(ctx context.Context, q []float32, ids []int, cs []candState, lut *bounds.QueryLUT, sc *searchScratch) error {
	st := &sc.st
	for i, id := range ids {
		if i&(cancelCheckStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if e.scoreCandidate(q, id, &cs[i], lut) {
			st.Hits++
		} else if e.cfg.EagerFetchMisses {
			p, err := e.pf.FetchCtx(ctx, id, sc.fetchBuf)
			if err != nil {
				return err
			}
			st.Fetched++
			st.PageReads += int64(e.pf.PagesPerPoint())
			d2 := vec.SqDist(q, p)
			cs[i].lbSq, cs[i].ubSq = d2, d2
			cs[i].exactPt = append([]float32(nil), p...)
		}
	}
	return nil
}

// reduceParallel fans candidate scoring across workers over contiguous
// chunks via the shared reduction core. Workers touch disjoint cs slots; the
// caches are concurrency-safe (HFF immutable, LRU internally locked) and the
// LUT is read-only. Each worker polls the context every cancelCheckStride
// candidates and abandons its chunk when the request is gone; the partially
// scored states are discarded by the caller's error return.
func (e *Engine) reduceParallel(ctx context.Context, q []float32, ids []int, cs []candState, lut *bounds.QueryLUT, workers int, st *QueryStats) error {
	hits := scoreParallel(len(ids), workers, func(lo, hi int) int64 {
		var h int64
		for i := lo; i < hi; i++ {
			if (i-lo)&(cancelCheckStride-1) == 0 && ctx.Err() != nil {
				return h
			}
			if e.scoreCandidate(q, ids[i], &cs[i], lut) {
				h++
			}
		}
		return h
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	st.Hits += int(hits)
	return nil
}

// admitLRU inserts a freshly fetched point into a dynamic cache, quantizing
// through the caller's codes scratch.
func (e *Engine) admitLRU(id int, p []float32, codes []int) {
	switch {
	case e.approx != nil:
		e.approx.Put(id, e.encodeVector(p, codes, nil))
	case e.exact != nil:
		e.exact.Put(id, append([]float32(nil), p...))
	case e.mdCache != nil:
		e.mdCache.Put(id, int32(e.md.BucketOf(e.globalID(id))))
	}
}
