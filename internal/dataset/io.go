package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"exploitbit/internal/vec"
)

// Binary dataset file format ("EBDS"):
//
//	magic   [4]byte  "EBDS"
//	version uint32   (1)
//	dim     uint32
//	n       uint32
//	ndom    uint32
//	lo, hi  float64
//	nameLen uint32, name bytes
//	data    n*dim float32, little endian
const (
	magic   = "EBDS"
	version = 1
)

// WriteTo serializes the dataset in EBDS format.
func (ds *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return n, err
	}
	n += 4
	hdr := []any{
		uint32(version), uint32(ds.Dim), uint32(ds.n),
		uint32(ds.Domain.Ndom), ds.Domain.Lo, ds.Domain.Hi,
		uint32(len(ds.Name)),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return n, err
		}
	}
	if _, err := bw.WriteString(ds.Name); err != nil {
		return n, err
	}
	n += int64(len(ds.Name))
	buf := make([]byte, 4)
	for _, f := range ds.data {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(f))
		if _, err := bw.Write(buf); err != nil {
			return n, err
		}
		n += 4
	}
	return n, bw.Flush()
}

// ReadFrom parses an EBDS stream into a fresh Dataset.
func ReadFrom(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	m := make([]byte, 4)
	if _, err := io.ReadFull(br, m); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(m) != magic {
		return nil, fmt.Errorf("dataset: bad magic %q", m)
	}
	var ver, dim, n, ndom, nameLen uint32
	var lo, hi float64
	for _, p := range []any{&ver, &dim, &n, &ndom, &lo, &hi, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("dataset: reading header: %w", err)
		}
	}
	if ver != version {
		return nil, fmt.Errorf("dataset: unsupported version %d", ver)
	}
	if dim == 0 || n == 0 || ndom < 2 || nameLen > 1<<20 {
		return nil, fmt.Errorf("dataset: implausible header dim=%d n=%d ndom=%d", dim, n, ndom)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("dataset: reading name: %w", err)
	}
	data := make([]float32, int(n)*int(dim))
	raw := make([]byte, 4)
	for i := range data {
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("dataset: reading point data: %w", err)
		}
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw))
	}
	return New(string(name), int(dim), data, vec.NewDomain(lo, hi, int(ndom))), nil
}

// Save writes the dataset to path in EBDS format.
func (ds *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ds.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an EBDS dataset from path.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
