// Package histogram implements every histogram the paper builds caches from
// (Sections 3.3–3.6): the heuristic equi-width and equi-depth histograms, the
// V-optimal histogram of Jagadish et al. (SSE metric), and the paper's
// contribution — the optimal kNN histogram constructed by the dynamic program
// of Algorithm 2 under the workload-aware metric M3, with the Lemma 3
// monotonicity cutoff. It also provides the per-dimension (iHC-*)
// decomposition of Section 3.6.2 and the R-tree-leaf multi-dimensional
// histogram (mHC-R) used as a strawman.
//
// A histogram partitions the discrete value domain [0 .. Ndom-1] (produced by
// vec.Domain) into B contiguous buckets. Each bucket position is a code of
// τ = ceil(log2 B) bits; encoding a d-dimensional point therefore costs d·τ
// bits in the cache (Definition 8).
package histogram

import (
	"fmt"
	"math/bits"
)

// Histogram is Definition 6: an ordered array of B buckets with intervals
// [Lo[i] .. Hi[i]] that partition [0 .. Ndom-1]. Frequencies are not stored;
// as Section 3.1 notes, only positions and intervals matter for kNN caching.
type Histogram struct {
	lo, hi []int32
	lookup []int32 // value -> bucket position, len Ndom
}

// FromUppers builds a histogram over [0..ndom-1] from ascending bucket upper
// bounds; uppers[len-1] must equal ndom-1. It returns an error on malformed
// input rather than panicking since uppers often come from files or DPs.
func FromUppers(ndom int, uppers []int) (*Histogram, error) {
	if ndom < 1 {
		return nil, fmt.Errorf("histogram: ndom %d < 1", ndom)
	}
	if len(uppers) == 0 {
		return nil, fmt.Errorf("histogram: no buckets")
	}
	if uppers[len(uppers)-1] != ndom-1 {
		return nil, fmt.Errorf("histogram: last upper %d != ndom-1 %d", uppers[len(uppers)-1], ndom-1)
	}
	h := &Histogram{
		lo:     make([]int32, len(uppers)),
		hi:     make([]int32, len(uppers)),
		lookup: make([]int32, ndom),
	}
	prev := -1
	for i, u := range uppers {
		if u <= prev {
			return nil, fmt.Errorf("histogram: uppers not strictly ascending at %d", i)
		}
		h.lo[i], h.hi[i] = int32(prev+1), int32(u)
		for v := prev + 1; v <= u; v++ {
			h.lookup[v] = int32(i)
		}
		prev = u
	}
	return h, nil
}

// B returns the number of buckets.
func (h *Histogram) B() int { return len(h.lo) }

// Ndom returns the domain size the histogram covers.
func (h *Histogram) Ndom() int { return len(h.lookup) }

// CodeLen returns τ = ceil(log2 B), the bits needed per bucket position.
func (h *Histogram) CodeLen() int {
	if h.B() <= 1 {
		return 1
	}
	return bits.Len(uint(h.B() - 1))
}

// Bucket is Definition 7: the position of the bucket whose interval covers
// discrete value v. Values are clamped to the domain.
func (h *Histogram) Bucket(v int) int {
	if v < 0 {
		v = 0
	} else if v >= len(h.lookup) {
		v = len(h.lookup) - 1
	}
	return int(h.lookup[v])
}

// Interval returns the discrete interval [lo..hi] of bucket i.
func (h *Histogram) Interval(i int) (lo, hi int) {
	return int(h.lo[i]), int(h.hi[i])
}

// Uppers returns the bucket upper bounds (useful for serialization).
func (h *Histogram) Uppers() []int {
	out := make([]int, len(h.hi))
	for i, u := range h.hi {
		out[i] = int(u)
	}
	return out
}

// SpaceBytes returns the in-memory footprint of the bucket table — the
// "Space (KB)" column of Table 3. Each bucket needs one boundary value.
func (h *Histogram) SpaceBytes() int { return 8 * h.B() }

// EquiWidth builds the equi-width histogram: all buckets as equal in width
// as the domain allows (HC-W).
func EquiWidth(ndom, b int) *Histogram {
	if b > ndom {
		b = ndom
	}
	if b < 1 {
		b = 1
	}
	uppers := make([]int, b)
	for i := 0; i < b; i++ {
		uppers[i] = (i+1)*ndom/b - 1
	}
	uppers[b-1] = ndom - 1
	h, err := FromUppers(ndom, uppers)
	if err != nil {
		panic("histogram: internal equi-width error: " + err.Error())
	}
	return h
}

// EquiDepth builds the equi-depth histogram over frequency array freq
// (len Ndom): buckets with approximately equal total frequency (HC-D). The
// VA-file's per-dimension grid uses the same scheme (Section 5.1, method
// C-VA: "the encoding scheme of VA-file is the same as Equi-Depth").
func EquiDepth(freq []float64, b int) *Histogram {
	ndom := len(freq)
	if b > ndom {
		b = ndom
	}
	if b < 1 {
		b = 1
	}
	var total float64
	for _, f := range freq {
		total += f
	}
	uppers := make([]int, 0, b)
	var cum float64
	bucket := 1
	for v := 0; v < ndom; v++ {
		cum += freq[v]
		// Close the bucket once we pass its share of the mass, but keep
		// enough values for the remaining buckets.
		remainingValues := ndom - v - 1
		remainingBuckets := b - bucket
		if bucket < b && (cum >= total*float64(bucket)/float64(b) || remainingValues == remainingBuckets) {
			uppers = append(uppers, v)
			bucket++
		}
	}
	uppers = append(uppers, ndom-1)
	h, err := FromUppers(ndom, uppers)
	if err != nil {
		panic("histogram: internal equi-depth error: " + err.Error())
	}
	return h
}

// widthOf returns hi-lo (the ui−li of the paper's metric; note the metric
// uses bucket width, not value count).
func widthOf(lo, hi int) float64 { return float64(hi - lo) }

// MSSE is the traditional V-optimal histogram metric (Section 3.3.1):
// the sum over buckets of squared deviation of per-value frequencies from
// the bucket average.
func MSSE(h *Histogram, freq []float64) float64 {
	var total float64
	for i := 0; i < h.B(); i++ {
		lo, hi := h.Interval(i)
		var sum float64
		for v := lo; v <= hi; v++ {
			sum += freq[v]
		}
		avg := sum / float64(hi-lo+1)
		for v := lo; v <= hi; v++ {
			d := freq[v] - avg
			total += d * d
		}
	}
	return total
}

// M3 is the paper's simplified kNN histogram metric (Metric M3 / Lemma 2):
// Σ_buckets Σ_{x∈bucket} F′[x] · (u−l)², where F′ is the workload frequency
// array of Eqn 3.
func M3(h *Histogram, fprime []float64) float64 {
	var total float64
	for i := 0; i < h.B(); i++ {
		lo, hi := h.Interval(i)
		w2 := widthOf(lo, hi) * widthOf(lo, hi)
		for v := lo; v <= hi; v++ {
			total += fprime[v] * w2
		}
	}
	return total
}

// MaxBucketsForCodeLen returns B = 2^τ, clamped to the domain size.
func MaxBucketsForCodeLen(tau, ndom int) int {
	if tau < 1 {
		tau = 1
	}
	if tau > 30 {
		tau = 30
	}
	b := 1 << tau
	if b > ndom {
		b = ndom
	}
	return b
}

// Validate checks the structural invariants (contiguous cover of the domain)
// and is used by property tests.
func (h *Histogram) Validate() error {
	if h.B() == 0 {
		return fmt.Errorf("histogram: empty")
	}
	if h.lo[0] != 0 {
		return fmt.Errorf("histogram: first bucket starts at %d", h.lo[0])
	}
	for i := 0; i < h.B(); i++ {
		if h.lo[i] > h.hi[i] {
			return fmt.Errorf("histogram: bucket %d inverted [%d,%d]", i, h.lo[i], h.hi[i])
		}
		if i > 0 && h.lo[i] != h.hi[i-1]+1 {
			return fmt.Errorf("histogram: gap before bucket %d", i)
		}
	}
	if int(h.hi[h.B()-1]) != h.Ndom()-1 {
		return fmt.Errorf("histogram: last bucket ends at %d, domain is %d", h.hi[h.B()-1], h.Ndom())
	}
	for v := 0; v < h.Ndom(); v++ {
		i := h.Bucket(v)
		if int(h.lo[i]) > v || v > int(h.hi[i]) {
			return fmt.Errorf("histogram: lookup of %d inconsistent", v)
		}
	}
	return nil
}
