// Advanced operations over the cached engine (the paper's future-work
// section, implemented): a kNN self-join for near-duplicate detection and
// density-based clustering of an image-feature collection, both accelerated
// by the histogram cache without changing their outputs.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"exploitbit"
)

func main() {
	ds := exploitbit.Generate(exploitbit.DatasetConfig{
		Name: "photos", N: 6000, Dim: 32, Clusters: 12,
		Std: 0.035, Skew: 1.6, Ndom: 1024, Seed: 61, ValueCoherence: 0.6,
	})

	// The probe workload for both operations is the dataset itself — known
	// completely up front, so the offline cache construction is exact.
	probes := make([][]float32, ds.Len())
	for i := range probes {
		probes[i] = ds.Point(i)
	}
	sys, err := exploitbit.Open(ds, probes[:2000], exploitbit.Options{WorkloadK: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	budget := int64(ds.Len()) * int64(ds.PointSize()) / 3

	fmt.Println("== kNN self-join (near-duplicate detection) ==")
	for _, m := range []exploitbit.Method{exploitbit.NoCache, exploitbit.HCO} {
		eng, err := sys.Engine(m, budget, sys.OptimalTau(budget))
		if err != nil {
			log.Fatal(err)
		}
		join, err := exploitbit.KNNJoin(eng, probes[:500], 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %d probes -> %d pairs, %d point fetches, %v total simulated+CPU\n",
			m, 500, len(join.Pairs()), join.Stats.Fetched,
			(join.Stats.SimulatedIO + join.Stats.GenTime + join.Stats.ReduceTime + join.Stats.RefineTime).Round(1e6))
	}

	fmt.Println("\n== density-based clustering (kNN-graph DBSCAN) ==")
	eng, err := sys.Engine(exploitbit.HCO, budget, sys.OptimalTau(budget))
	if err != nil {
		log.Fatal(err)
	}
	res, err := exploitbit.DBSCAN(eng, ds, 0.3, 5, 8)
	if err != nil {
		log.Fatal(err)
	}
	noise := 0
	for _, l := range res.Labels {
		if l == exploitbit.NoiseLabel {
			noise++
		}
	}
	fmt.Printf("clusters: %d   core points: %d   noise: %d/%d   point fetches: %d (over %d kNN probes)\n",
		res.Clusters, res.Cores, noise, ds.Len(), res.Stats.Fetched, res.Stats.Queries)
}
