package vptree

import (
	"math"
	"math/rand"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

func testDS(n, dim int, seed int64) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 5, Std: 0.05, Seed: seed})
}

func TestBuildPartition(t *testing.T) {
	ds := testDS(500, 10, 1)
	ix := Build(ds, Params{LeafCapacity: 8, Seed: 2})
	seen := make([]bool, ds.Len())
	for li, leaf := range ix.Leaves() {
		if len(leaf) == 0 || len(leaf) > 8 {
			t.Fatalf("leaf %d size %d", li, len(leaf))
		}
		for _, id := range leaf {
			if seen[id] {
				t.Fatalf("point %d duplicated", id)
			}
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("point %d lost", id)
		}
	}
}

func TestLeafLowerBoundsValid(t *testing.T) {
	ds := testDS(400, 8, 3)
	ix := Build(ds, Params{LeafCapacity: 10, Seed: 4})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 8)
		for j := range q {
			q[j] = rng.Float32()
		}
		lbs := ix.LeafLowerBounds(q)
		for li, leaf := range ix.Leaves() {
			for _, id := range leaf {
				if d := vec.Dist(q, ds.Point(int(id))); d < lbs[li]-1e-6 {
					t.Fatalf("leaf %d lb %v > member dist %v", li, lbs[li], d)
				}
			}
		}
	}
}

func TestExactKNNThroughTree(t *testing.T) {
	ds := testDS(600, 8, 6)
	ix := Build(ds, Params{LeafCapacity: 12, Seed: 7})
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		q := ds.Point(rng.Intn(ds.Len()))
		lbs := ix.LeafLowerBounds(q)
		order := rankByLB(lbs)
		top := vec.NewTopK(5)
		visited := 0
		for _, li := range order {
			if top.Full() && lbs[li] >= top.Root() {
				break
			}
			visited++
			for _, id := range ix.Leaves()[li] {
				top.Push(vec.Dist(q, ds.Point(int(id))), int(id))
			}
		}
		ids, dists := top.Results()
		want := bruteKNN(ds, q, 5)
		for i := range want {
			dw := vec.Dist(q, ds.Point(want[i]))
			if math.Abs(dists[i]-dw) > 1e-9 {
				t.Fatalf("trial %d: rank %d got %v want %v (ids %v)", trial, i, dists[i], dw, ids)
			}
		}
		// Pruning must actually skip leaves on clustered data.
		if visited == len(ix.Leaves()) {
			t.Logf("trial %d: no pruning (visited all %d leaves)", trial, visited)
		}
	}
}

func rankByLB(lbs []float64) []int {
	order := make([]int, len(lbs))
	for i := range order {
		order[i] = i
	}
	for i := range order {
		m := i
		for j := i + 1; j < len(order); j++ {
			if lbs[order[j]] < lbs[order[m]] {
				m = j
			}
		}
		order[i], order[m] = order[m], order[i]
	}
	return order
}

func bruteKNN(ds *dataset.Dataset, q []float32, k int) []int {
	top := vec.NewTopK(k)
	for i := 0; i < ds.Len(); i++ {
		top.Push(vec.Dist(q, ds.Point(i)), i)
	}
	ids, _ := top.Results()
	return ids
}

func TestTinyDataset(t *testing.T) {
	ds := testDS(3, 4, 9)
	ix := Build(ds, Params{LeafCapacity: 8, Seed: 10})
	if len(ix.Leaves()) != 1 {
		t.Fatalf("%d leaves for 3 points with capacity 8", len(ix.Leaves()))
	}
	lbs := ix.LeafLowerBounds(ds.Point(0))
	if lbs[0] != 0 {
		t.Fatalf("root leaf lb = %v", lbs[0])
	}
}
