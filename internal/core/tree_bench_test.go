package core

import (
	"testing"
)

// benchAllCachedTree builds a tree engine whose budget caches every leaf, on
// the R-tree (whose leaf bounds are computed allocation-free), so the
// benchmark isolates the steady-state serve path of Section 3.6.1.
func benchAllCachedTree(b *testing.B, method Method, lutMin int) (*TreeEngine, []float32) {
	w := buildTreeWorld(b, "rtree", 2000, 16, 205)
	eng, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 10, TreeConfig{
		Method: method, CacheBytes: 1 << 30, Tau: 8, LUTMinCachedPoints: lutMin,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng, w.qtest[0]
}

// BenchmarkTreeEngineSearch is the all-cached-leaves steady state on the
// EXACT leaf cache: with a reused result buffer it must report 0 allocs/op —
// the pooled tree scratch (shared reduction core, group refinement buffers,
// leaf sorter) absorbs every per-query working set.
func BenchmarkTreeEngineSearch(b *testing.B) {
	eng, q := benchAllCachedTree(b, Exact, 0)
	dst := make([]int, 0, 64)
	if _, _, err := eng.SearchInto(q, 10, dst[:0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = eng.SearchInto(q, 10, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeEngineSearchHCO is the same steady state on the approximate
// leaf cache with the per-query LUT, exercising the batch bound scoring.
func BenchmarkTreeEngineSearchHCO(b *testing.B) {
	eng, q := benchAllCachedTree(b, HCO, 1)
	dst := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = eng.SearchInto(q, 10, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeEngineSearchHCONoLUT disables the LUT on the same workload,
// isolating what batch ADC scoring buys the tree path.
func BenchmarkTreeEngineSearchHCONoLUT(b *testing.B) {
	eng, q := benchAllCachedTree(b, HCO, -1)
	dst := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = eng.SearchInto(q, 10, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
