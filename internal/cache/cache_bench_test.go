package cache

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func BenchmarkHFFGet(b *testing.B) {
	c := New[[]uint64](10000, HFF)
	payload := make([]uint64, 24)
	for i := 0; i < 10000; i++ {
		c.Put(i, payload)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(i % 20000) // ~50% hits
	}
}

// benchParallelGet hammers an n-entry warm LRU cache with all-hit Gets from
// every worker concurrently — the serving-path contention the journaled read
// lock exists to relieve. Before the journal, every hit serialized on one
// mutex to reorder the list, so aggregate throughput was bounded by one
// core's map-lookup rate; now hits share a read lock and lookups overlap.
func benchParallelGet(b *testing.B, n int) {
	c := New[[]uint64](n, LRU)
	payload := make([]uint64, 24)
	for i := 0; i < n; i++ {
		c.Put(i, payload)
	}
	var offset atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger workers so they walk disjoint key regions instead of the
		// same cache lines in lockstep.
		i := int(offset.Add(1)) * (n / 8)
		for pb.Next() {
			c.Get(i & (n - 1)) // all hits: the contended path
			i++
		}
	})
}

// BenchmarkLRUGetParallel uses a small (toy-sized) cache where the map lookup
// is nearly free; it mostly measures fixed per-Get overhead.
func BenchmarkLRUGetParallel(b *testing.B) { benchParallelGet(b, 8192) }

// BenchmarkLRUGetParallelLarge uses a cache at the paper's realistic scale
// (hundreds of thousands of cached points), where the map lookup dominates —
// the regime in which serializing lookups behind a global mutex hurts most.
func BenchmarkLRUGetParallelLarge(b *testing.B) { benchParallelGet(b, 1<<19) }

// BenchmarkLRUGetParallelMixed adds a write every 64 reads, checking that
// occasional Puts (journal drains + evictions) do not collapse read scaling.
func BenchmarkLRUGetParallelMixed(b *testing.B) {
	c := New[[]uint64](4096, LRU)
	payload := make([]uint64, 24)
	for i := 0; i < 4096; i++ {
		c.Put(i, payload)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i&63 == 0 {
				c.Put(4096+i&8191, payload)
			} else {
				c.Get(i & 4095)
			}
			i++
		}
	})
}

func BenchmarkLRUMixed(b *testing.B) {
	c := New[[]uint64](4096, LRU)
	payload := make([]uint64, 24)
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, 1<<16)
	for i := range keys {
		keys[i] = rng.Intn(16384)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, payload)
		}
	}
}
