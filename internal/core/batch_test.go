package core

import (
	"context"
	"testing"
)

// overlappingBatch builds a batch with deliberate candidate overlap: each
// test query appears twice (a duplicated burst is the extreme of qwLSH-style
// workload locality), so per-query refinement pays for the same pages twice
// while the coalesced batch pays once.
func overlappingBatch(qs [][]float32, n int) [][]float32 {
	var batch [][]float32
	for _, q := range qs {
		batch = append(batch, q, q)
		if len(batch) >= n {
			break
		}
	}
	return batch
}

// TestSearchBatchCoalescesAndMatchesPerQuery is the acceptance criterion: on
// an overlapping-candidate workload the coalesced batch performs strictly
// fewer page reads than the summed per-query searches, while returning
// identifier-for-identifier the same results as per-query SearchCtx. NoCache
// makes the I/O deterministic: every candidate carries vacuous bounds, so
// per-query refinement fetches every candidate individually.
func TestSearchBatchCoalescesAndMatchesPerQuery(t *testing.T) {
	w := buildWorld(t, 1500, 12, 31)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: NoCache})
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	batch := overlappingBatch(w.qtest, 8)

	// Per-query baseline first (NoCache holds no mutable state, so the order
	// of the two runs cannot influence results).
	soloIDs := make([][]int, len(batch))
	var soloReads int64
	for j, q := range batch {
		ids, st, err := eng.SearchCtx(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		soloIDs[j] = ids
		soloReads += st.PageReads
	}

	gotIDs, sts, err := eng.SearchBatchCtx(context.Background(), batch, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != len(batch) || len(sts) != len(batch) {
		t.Fatalf("batch returned %d results / %d stats for %d queries", len(gotIDs), len(sts), len(batch))
	}
	var batchReads int64
	for _, st := range sts {
		batchReads += st.PageReads
	}
	if soloReads == 0 {
		t.Fatal("degenerate workload: per-query searches performed no reads")
	}
	if batchReads >= soloReads {
		t.Fatalf("coalesced batch read %d pages, per-query sum is %d — want strictly fewer", batchReads, soloReads)
	}
	for j := range batch {
		if len(gotIDs[j]) != len(soloIDs[j]) {
			t.Fatalf("query %d: batch returned %d ids, per-query %d", j, len(gotIDs[j]), len(soloIDs[j]))
		}
		for i := range soloIDs[j] {
			if gotIDs[j][i] != soloIDs[j][i] {
				t.Fatalf("query %d rank %d: batch id %d, per-query id %d", j, i, gotIDs[j][i], soloIDs[j][i])
			}
		}
	}
	t.Logf("coalesced batch: %d page reads vs %d per-query (%.1f%% saved)",
		batchReads, soloReads, 100*(1-float64(batchReads)/float64(soloReads)))
}

// TestSearchBatchMatchesPerQueryCachedMethods checks identifier identity for
// the cached methods, where Phase 2 prunes and declares true hits before
// refinement ever runs.
func TestSearchBatchMatchesPerQueryCachedMethods(t *testing.T) {
	w := buildWorld(t, 1500, 12, 32)
	k := 10
	for _, m := range []Method{HCO, Exact, IHCO, MHCR} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
				Method: m, CacheBytes: 64 << 10, Tau: 6,
			})
			if err != nil {
				t.Fatal(err)
			}
			batch := overlappingBatch(w.qtest, 10)
			soloIDs := make([][]int, len(batch))
			var soloReads int64
			for j, q := range batch {
				ids, st, err := eng.SearchCtx(context.Background(), q, k)
				if err != nil {
					t.Fatal(err)
				}
				soloIDs[j] = ids
				soloReads += st.PageReads
			}
			gotIDs, sts, err := eng.SearchBatchCtx(context.Background(), batch, k)
			if err != nil {
				t.Fatal(err)
			}
			var batchReads int64
			for _, st := range sts {
				batchReads += st.PageReads
			}
			if batchReads > soloReads {
				t.Fatalf("batch read %d pages, per-query sum is %d", batchReads, soloReads)
			}
			for j := range batch {
				if len(gotIDs[j]) != len(soloIDs[j]) {
					t.Fatalf("query %d: %d ids, per-query %d", j, len(gotIDs[j]), len(soloIDs[j]))
				}
				for i := range soloIDs[j] {
					if gotIDs[j][i] != soloIDs[j][i] {
						t.Fatalf("query %d rank %d: batch id %d, per-query id %d", j, i, gotIDs[j][i], soloIDs[j][i])
					}
				}
			}
		})
	}
}

// TestTreeSearchBatchCoalescesAndMatchesPerQuery is the tree-engine variant
// of the acceptance criterion: leaf loads of Phase 3 coalesce across the
// batch; results are identical to per-query SearchCtx (the batch scheduler
// replays each query's exact per-query schedule against a shared leaf
// cache, so identity holds even under distance ties).
func TestTreeSearchBatchCoalescesAndMatchesPerQuery(t *testing.T) {
	w := buildTreeWorld(t, "idistance", 1200, 10, 33)
	eng, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 10, TreeConfig{
		Method: HCO, CacheBytes: 256 << 10, Tau: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	batch := overlappingBatch(w.qtest, 8)

	soloIDs := make([][]int, len(batch))
	var soloReads int64
	for j, q := range batch {
		ids, st, err := eng.SearchCtx(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		soloIDs[j] = ids
		soloReads += st.PageReads
	}
	gotIDs, sts, err := eng.SearchBatchCtx(context.Background(), batch, k)
	if err != nil {
		t.Fatal(err)
	}
	var batchReads int64
	for _, st := range sts {
		batchReads += st.PageReads
	}
	if soloReads == 0 {
		t.Fatal("degenerate workload: per-query tree searches performed no reads")
	}
	if batchReads >= soloReads {
		t.Fatalf("coalesced tree batch read %d pages, per-query sum is %d — want strictly fewer", batchReads, soloReads)
	}
	for j := range batch {
		if len(gotIDs[j]) != len(soloIDs[j]) {
			t.Fatalf("query %d: batch returned %d ids, per-query %d", j, len(gotIDs[j]), len(soloIDs[j]))
		}
		for i := range soloIDs[j] {
			if gotIDs[j][i] != soloIDs[j][i] {
				t.Fatalf("query %d rank %d: batch id %d, per-query id %d", j, i, gotIDs[j][i], soloIDs[j][i])
			}
		}
	}
}

// TestMaintainerSearchBatch smoke-tests the maintained path: batch answers
// match the underlying engine and every query is folded into the drift
// window.
func TestMaintainerSearchBatch(t *testing.T) {
	w := buildWorld(t, 1000, 10, 34)
	m, err := NewMaintainer(w.pf, w.ds, candFunc(w.ix), w.wl, 10, Config{
		Method: HCO, CacheBytes: 64 << 10, Tau: 6,
	}, MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	batch := overlappingBatch(w.qtest, 6)
	gotIDs, sts, err := m.SearchBatch(batch, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != len(batch) || len(sts) != len(batch) {
		t.Fatalf("batch shape: %d results / %d stats for %d queries", len(gotIDs), len(sts), len(batch))
	}
	for j, q := range batch {
		want, _, err := m.Engine().SearchCtx(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotIDs[j]) != len(want) {
			t.Fatalf("query %d: %d ids, want %d", j, len(gotIDs[j]), len(want))
		}
		for i := range want {
			if gotIDs[j][i] != want[i] {
				t.Fatalf("query %d rank %d: id %d, want %d", j, i, gotIDs[j][i], want[i])
			}
		}
	}
}

// TestSearchBatchEdgeCases: empty batches are free; a canceled context
// aborts before any work.
func TestSearchBatchEdgeCases(t *testing.T) {
	w := buildWorld(t, 800, 8, 35)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 32 << 10, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	if ids, sts, err := eng.SearchBatch(nil, 5); err != nil || ids != nil || sts != nil {
		t.Fatalf("empty batch: %v %v %v", ids, sts, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.SearchBatchCtx(ctx, w.qtest[:2], 5); err == nil {
		t.Fatal("canceled context not surfaced")
	}
	tw := buildTreeWorld(t, "vptree", 600, 8, 36)
	te, err := NewTreeEngine(tw.ds, tw.ix, tw.store, tw.wl, 10, TreeConfig{Method: HCO, CacheBytes: 128 << 10, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	if ids, sts, err := te.SearchBatch(nil, 5); err != nil || ids != nil || sts != nil {
		t.Fatalf("empty tree batch: %v %v %v", ids, sts, err)
	}
	if _, _, err := te.SearchBatchCtx(ctx, tw.qtest[:2], 5); err == nil {
		t.Fatal("canceled context not surfaced by tree batch")
	}
}
