package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecoverRejectsIdentifierGap pins the dense-id invariant: replay fails
// loudly on an insert whose id is not exactly baseN + points replayed so far.
func TestRecoverRejectsIdentifierGap(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 2, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(2, []float32{3, 4}); err != nil { // gap: want 1
		t.Fatal(err)
	}
	w.Close()
	if _, err := Recover(dir, 0, 2); err == nil || !strings.Contains(err.Error(), "identifier gap") {
		t.Fatalf("expected identifier-gap error, got %v", err)
	}
}

func TestRecoverRejectsUnknownDelete(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 2, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDelete(9); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Recover(dir, 3, 2); err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Fatalf("expected unknown-id error, got %v", err)
	}
	// With a big enough base the same record is legal.
	if _, err := Recover(dir, 10, 2); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRefusesCorruptionInOlderSegment: torn-tail forgiveness applies
// only to the newest segment; damage anywhere else is corruption, not a
// crash artifact, and replay must fail rather than silently drop records.
func TestRecoverRefusesCorruptionInOlderSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 2, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(1, []float32{3, 4}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	path := filepath.Join(dir, segmentName(1))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff // corrupt the sealed segment's record payload
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, 0, 2); err == nil || !strings.Contains(err.Error(), "refusing to truncate") {
		t.Fatalf("expected corruption error, got %v", err)
	}
}

// TestRecoverTornSegmentHeaderSurvivesRestarts simulates a crash during
// segment creation (torn header, likely with -wal-fsync none): recovery must
// treat the sub-header segment as valid-empty and remove it, so that after
// the restart opens a higher-numbered segment a second recovery — where the
// torn segment would no longer be the newest — still succeeds.
func TestRecoverTornSegmentHeaderSurvivesRestarts(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 2, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	tornPath := filepath.Join(dir, segmentName(2))
	if err := os.WriteFile(tornPath, []byte("EBW"), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Points) != 1 || rec.TruncatedBytes != 3 || rec.NextSeq != 3 {
		t.Fatalf("recovery %+v, want 1 point, 3 truncated bytes, next seq 3", rec)
	}
	if _, err := os.Stat(tornPath); !os.IsNotExist(err) {
		t.Fatalf("torn segment still on disk (stat err %v); it must be removed", err)
	}

	// Restart: open past the torn segment, write, crash, recover again.
	w2, err := OpenWAL(dir, 2, rec.NextSeq, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendInsert(1, []float32{3, 4}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	rec2, err := Recover(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Points) != 2 || rec2.TruncatedBytes != 0 {
		t.Fatalf("second recovery %+v, want 2 points and no truncation", rec2)
	}
}

// TestRecoverTornSegmentHeaderNotNewest pins the regression directly: a
// sub-header segment sandwiched between valid ones (the state the old
// truncate-to-zero behavior left behind) must not fail recovery.
func TestRecoverTornSegmentHeaderNotNewest(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 2, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(dir, 2, 3, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w3.AppendInsert(1, []float32{3, 4}); err != nil {
		t.Fatal(err)
	}
	w3.Close()

	rec, err := Recover(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Points) != 2 || rec.Records != 2 || rec.NextSeq != 4 {
		t.Fatalf("recovery %+v, want 2 points from 2 records, next seq 4", rec)
	}
}

func TestRecoverRejectsDimMismatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 3, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, []float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Recover(dir, 0, 4); err == nil {
		t.Fatal("expected dim-mismatch error")
	}
}

// TestRecoverSkipsCheckpointCoveredSegments simulates a crash between
// checkpoint install and segment retirement: the covered segment is still on
// disk, its records already live in the checkpoint, and replaying it would
// violate the dense-id invariant — so recovery must skip it wholesale.
func TestRecoverSkipsCheckpointCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 2, 1, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(1, []float32{3, 4}); err != nil {
		t.Fatal(err)
	}
	covered, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(2, []float32{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDelete(0); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Checkpoint covering segment 1 (points 0 and 1 folded), but segment 1
	// was never retired.
	fold := foldFixture(0, 2)
	if err := writeCheckpoint(dir, fold, 0, map[int64]struct{}{}, covered); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointSeq != covered || rec.CheckpointPoints != 2 {
		t.Fatalf("checkpoint seq %d points %d, want %d and 2", rec.CheckpointSeq, rec.CheckpointPoints, covered)
	}
	if len(rec.Points) != 3 || rec.Records != 2 {
		t.Fatalf("%d points %d replayed records, want 3 points from 2 records", len(rec.Points), rec.Records)
	}
	for i, p := range rec.Points {
		if int(p.ID) != i {
			t.Fatalf("point %d has id %d", i, p.ID)
		}
	}
	if _, ok := rec.Tombs[0]; !ok || len(rec.Tombs) != 1 {
		t.Fatalf("tombs %v, want {0}", rec.Tombs)
	}
	if rec.NextSeq != 3 {
		t.Fatalf("next seq %d, want 3", rec.NextSeq)
	}
}

// FuzzRecoverSegment feeds arbitrary bytes as the newest WAL segment: recovery
// must never panic, and on success must hold the dense-id and known-delete
// invariants.
func FuzzRecoverSegment(f *testing.F) {
	// Seed with a valid two-record segment produced by the real writer.
	seedDir := f.TempDir()
	w, err := OpenWAL(seedDir, 2, 1, FsyncNone)
	if err != nil {
		f.Fatal(err)
	}
	w.AppendInsert(0, []float32{1, 2})
	w.AppendDelete(0)
	w.Close()
	seed, err := os.ReadFile(filepath.Join(seedDir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir, 0, 2)
		if err != nil {
			return
		}
		for i, p := range rec.Points {
			if int(p.ID) != i {
				t.Fatalf("non-dense id %d at %d", p.ID, i)
			}
		}
		for id := range rec.Tombs {
			if id < 0 || id >= int64(len(rec.Points)) {
				t.Fatalf("tombstone %d outside [0,%d)", id, len(rec.Points))
			}
		}
		// Recovery truncated the torn tail (if any); a second pass must agree.
		rec2, err := Recover(dir, 0, 2)
		if err != nil || rec2.Records != rec.Records || rec2.TruncatedBytes != 0 {
			t.Fatalf("second recovery diverged: %v %+v", err, rec2)
		}
	})
}
