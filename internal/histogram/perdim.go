package histogram

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PerDim is the individual-dimension histogram of Section 3.6.2 (iHC-*):
// one histogram per dimension, all with the same bucket count so that every
// dimension's code is the same τ bits wide.
type PerDim struct {
	H []*Histogram
}

// Builder constructs a histogram from a frequency array; EquiDepth,
// VOptimal and KNNOptimal (curried over options) all fit. EquiWidth ignores
// the frequencies.
type Builder func(freq []float64, b int) *Histogram

// EquiWidthBuilder adapts EquiWidth to the Builder signature.
func EquiWidthBuilder(freq []float64, b int) *Histogram {
	return EquiWidth(len(freq), b)
}

// BuildPerDim builds one histogram per dimension from per-dimension
// frequency arrays. All arrays must share a domain size. Dimensions are
// independent, so construction fans out across CPUs — the result is
// deterministic regardless.
func BuildPerDim(freqs [][]float64, b int, build Builder) *PerDim {
	if len(freqs) == 0 {
		panic("histogram: BuildPerDim with no dimensions")
	}
	for j, f := range freqs {
		if len(f) != len(freqs[0]) {
			panic(fmt.Sprintf("histogram: dimension %d domain size %d != %d", j, len(f), len(freqs[0])))
		}
	}
	hs := make([]*Histogram, len(freqs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(freqs) {
		workers = len(freqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(freqs) {
					return
				}
				hs[j] = build(freqs[j], b)
			}
		}()
	}
	wg.Wait()
	return &PerDim{H: hs}
}

// Dim returns the number of per-dimension histograms.
func (p *PerDim) Dim() int { return len(p.H) }

// CodeLen returns the (common) per-dimension code length.
func (p *PerDim) CodeLen() int {
	max := 1
	for _, h := range p.H {
		if c := h.CodeLen(); c > max {
			max = c
		}
	}
	return max
}

// SpaceBytes sums the bucket tables of all dimensions — why Table 3 reports
// iHC-* space as d times larger than the global histograms.
func (p *PerDim) SpaceBytes() int {
	total := 0
	for _, h := range p.H {
		total += h.SpaceBytes()
	}
	return total
}
