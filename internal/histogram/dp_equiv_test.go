package histogram

import (
	"math"
	"math/rand"
	"testing"
)

// bruteMin exhaustively minimizes the summed bucket cost over every
// partition of [0..ndom-1] into at most b contiguous buckets — the
// specification optimalPartition's DP (and its Lemma-3 cutoff) must match.
func bruteMin(ndom, b int, cost intervalCost) float64 {
	var rec func(start, m int) float64
	rec = func(start, m int) float64 {
		if start == ndom {
			return 0
		}
		if m == 0 {
			return math.Inf(1)
		}
		best := math.Inf(1)
		for end := start; end < ndom; end++ {
			if v := cost(start, end) + rec(end+1, m-1); v < best {
				best = v
			}
		}
		return best
	}
	return rec(0, b)
}

// partitionCost sums the cost of the partition described by bucket uppers,
// checking it is well formed (strictly ascending, covering [0, ndom-1]).
func partitionCost(t *testing.T, ndom int, uppers []int, cost intervalCost) float64 {
	t.Helper()
	if len(uppers) == 0 || uppers[len(uppers)-1] != ndom-1 {
		t.Fatalf("partition %v does not cover [0,%d]", uppers, ndom-1)
	}
	var sum float64
	lo := 0
	for _, u := range uppers {
		if u < lo {
			t.Fatalf("partition %v is not strictly ascending", uppers)
		}
		sum += cost(lo, u)
		lo = u + 1
	}
	return sum
}

func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestOptimalPartitionMatchesBruteForce sweeps small domains against the
// exhaustive optimum for both cost families the package ships (the paper's
// Υ metric of Eqn 4 and V-optimal SSE), with the Lemma-3 cutoff on and off.
// Sweeping b past ndom exercises the singleton branch (n <= m) and the
// b-clamping; the returned partition must itself achieve the claimed value.
func TestOptimalPartitionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	costFamilies := []struct {
		name string
		mk   func(f []float64) intervalCost
	}{
		{"upsilon", func(f []float64) intervalCost {
			s := prefixSums(f)
			return func(lo, hi int) float64 {
				w := float64(hi - lo)
				return (s[hi+1] - s[lo]) * w * w
			}
		}},
		{"sse", func(f []float64) intervalCost {
			s := prefixSums(f)
			sq := make([]float64, len(f))
			for i, v := range f {
				sq[i] = v * v
			}
			s2 := prefixSums(sq)
			return func(lo, hi int) float64 {
				n := float64(hi - lo + 1)
				sum := s[hi+1] - s[lo]
				sse := s2[hi+1] - s2[lo] - sum*sum/n
				if sse < 0 {
					return 0
				}
				return sse
			}
		}},
	}
	for _, fam := range costFamilies {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				for ndom := 1; ndom <= 8; ndom++ {
					f := make([]float64, ndom)
					for i := range f {
						f[i] = float64(rng.Intn(50)) // zeros included: flat regions stress the cutoff
					}
					cost := fam.mk(f)
					for b := 1; b <= ndom+2; b++ {
						want := bruteMin(ndom, b, cost)
						for _, cutoff := range []bool{false, true} {
							res := optimalPartition(ndom, b, cost, cutoff)
							if !closeEnough(res.value, want) {
								t.Fatalf("ndom=%d b=%d cutoff=%v f=%v: dp value %g, brute force %g",
									ndom, b, cutoff, f, res.value, want)
							}
							if got := partitionCost(t, ndom, res.uppers, cost); !closeEnough(got, res.value) {
								t.Fatalf("ndom=%d b=%d cutoff=%v f=%v: partition %v costs %g, dp claims %g",
									ndom, b, cutoff, f, res.uppers, got, res.value)
							}
							if len(res.uppers) > b {
								t.Fatalf("ndom=%d b=%d: partition %v uses more than b buckets", ndom, b, res.uppers)
							}
						}
					}
				}
			}
		})
	}
}

// TestKNNOptimalCutoffExact pins the ablation claim at a realistic size: the
// cutoff changes construction work only, never the metric value (HC-O built
// with and without it selects equally optimal partitions).
func TestKNNOptimalCutoffExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := make([]float64, 200)
	for i := range f {
		f[i] = rng.Float64() * float64(rng.Intn(30))
	}
	s := prefixSums(f)
	cost := func(lo, hi int) float64 {
		w := float64(hi - lo)
		return (s[hi+1] - s[lo]) * w * w
	}
	for _, b := range []int{1, 2, 7, 32, 200} {
		with := optimalPartition(len(f), b, cost, true)
		without := optimalPartition(len(f), b, cost, false)
		if !closeEnough(with.value, without.value) {
			t.Fatalf("b=%d: cutoff changed the optimum: %g vs %g", b, with.value, without.value)
		}
	}
}
