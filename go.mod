module exploitbit

go 1.22
