// Package core is the paper's primary contribution: the three-phase kNN
// search of Algorithm 1 (candidate generation → cache-based candidate
// reduction → multi-step refinement) over a histogram cache of compact
// approximate points, together with the offline construction pipeline
// (workload profiling, HFF content selection, F′ extraction, histogram
// building) and the leaf-node adaptation for tree-based indexes of
// Section 3.6.1.
package core

import (
	"math"
	"sync/atomic"
	"time"
)

// QueryStats records one query's execution, in the vocabulary of Section 2.2.
type QueryStats struct {
	Candidates int // |C(q)| from Phase 1
	Hits       int // cache hits during reduction (ρ_hit numerator)
	Pruned     int // candidates removed by early pruning (lb > ub_k)
	TrueHits   int // candidates detected as results without I/O (ub < lb_k)
	Remaining  int // C_refine: candidates entering Phase 3
	Fetched    int // points actually fetched by multi-step refinement

	PageReads   int64         // physical page reads charged during Phase 3
	SimulatedIO time.Duration // PageReads × Tio

	GenTime    time.Duration // Phase 1 CPU
	ReduceTime time.Duration // Phase 2 CPU (never any I/O)
	RefineTime time.Duration // Phase 3 CPU (excluding SimulatedIO)

	Dmax float64 // index's distance guarantee for this query (c·R·w for C2LSH)

	UsedLUT       bool // Phase 2 went through the per-query ADC lookup table
	ReduceWorkers int  // goroutines used by Phase 2 (1 = serial)

	// Degraded marks a sharded query answered without one or more shards
	// (permanent storage failure under degraded-mode serving); FailedShards
	// lists them. A degraded result is correct over the surviving shards but
	// may miss true neighbors owned by the failed ones.
	Degraded     bool
	FailedShards []int
}

// RhoHit is this query's observed cache-hit ratio — the live counterpart of
// the cost model's ρ_hit (Theorem 1). Zero-candidate queries report 0.
func (s QueryStats) RhoHit() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Candidates)
}

// RhoRefine is this query's observed refinement ratio — candidates that
// survived Phase 2 into refinement, the live counterpart of the model's
// ρ_refine bound (Theorems 2–3). Zero-candidate queries report 0.
func (s QueryStats) RhoRefine() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.Remaining) / float64(s.Candidates)
}

// ResponseTime is the modeled wall-clock of the query: measured CPU plus
// simulated I/O latency.
func (s QueryStats) ResponseTime() time.Duration {
	return s.GenTime + s.ReduceTime + s.RefineTime + s.SimulatedIO
}

// RefinementTime is the paper's T_refine: everything after candidate
// generation that involves the candidate fetch path.
func (s QueryStats) RefinementTime() time.Duration {
	return s.ReduceTime + s.RefineTime + s.SimulatedIO
}

// Aggregate accumulates per-query statistics across a test query set.
type Aggregate struct {
	Queries     int
	Candidates  int64
	Hits        int64
	Pruned      int64
	TrueHits    int64
	Remaining   int64
	Fetched     int64
	PageReads   int64
	SimulatedIO time.Duration
	GenTime     time.Duration
	ReduceTime  time.Duration
	RefineTime  time.Duration

	LUTQueries      int64 // queries whose Phase 2 used the ADC lookup table
	ParallelQueries int64 // queries whose Phase 2 fanned out over workers
	DegradedQueries int64 // queries answered without one or more failed shards

	// EwmaRhoHit / EwmaRhoRefine are exponentially weighted moving averages
	// of the per-query observed ρ_hit and ρ_refine (ratioEWMAAlpha), so the
	// drift watchdog and /metrics see where the ratios are *now* rather than
	// a since-startup mean that old traffic anchors forever. Zero until the
	// first query with candidates lands.
	EwmaRhoHit    float64
	EwmaRhoRefine float64
}

// ratioEWMAAlpha weights the per-query ratio EWMAs: the most recent ~20
// queries dominate, which tracks a shifting hot set within a drift window
// without jittering on a single unlucky query.
const ratioEWMAAlpha = 0.05

// ewmaFold advances an EWMA that uses "exactly 0" as its unseeded state (a
// genuine first sample of 0 seeds to 0, which is the same value).
func ewmaFold(prev, x float64) float64 {
	if prev == 0 {
		return x
	}
	return prev + ratioEWMAAlpha*(x-prev)
}

// Add folds one query's stats into the aggregate.
func (a *Aggregate) Add(s QueryStats) {
	a.Queries++
	a.Candidates += int64(s.Candidates)
	a.Hits += int64(s.Hits)
	a.Pruned += int64(s.Pruned)
	a.TrueHits += int64(s.TrueHits)
	a.Remaining += int64(s.Remaining)
	a.Fetched += int64(s.Fetched)
	a.PageReads += s.PageReads
	a.SimulatedIO += s.SimulatedIO
	a.GenTime += s.GenTime
	a.ReduceTime += s.ReduceTime
	a.RefineTime += s.RefineTime
	if s.UsedLUT {
		a.LUTQueries++
	}
	if s.ReduceWorkers > 1 {
		a.ParallelQueries++
	}
	if s.Degraded {
		a.DegradedQueries++
	}
	if s.Candidates > 0 {
		a.EwmaRhoHit = ewmaFold(a.EwmaRhoHit, s.RhoHit())
		a.EwmaRhoRefine = ewmaFold(a.EwmaRhoRefine, s.RhoRefine())
	}
}

// atomicAggregate accumulates Aggregate counters with lock-free atomics, so
// concurrent searches never serialize on a stats mutex just to record their
// telemetry. Load takes each counter independently; under concurrent
// writers the snapshot may mix counters from in-flight queries, which is
// harmless for the ratios and averages Aggregate reports.
type atomicAggregate struct {
	queries, candidates, hits, pruned, trueHits, remaining, fetched,
	pageReads, simulatedIO, genTime, reduceTime, refineTime,
	lutQueries, parallelQueries, degradedQueries atomic.Int64

	// ewmaRhoHit / ewmaRhoRefine hold math.Float64bits of the ratio EWMAs
	// (0 = unseeded), folded with a CAS loop. Under concurrent writers the
	// fold order is scheduler-dependent, which perturbs only the smoothing —
	// acceptable for telemetry, and deterministic for serial replays.
	ewmaRhoHit, ewmaRhoRefine atomic.Uint64
}

// foldRatio CAS-advances one packed EWMA cell.
func foldRatio(cell *atomic.Uint64, x float64) {
	for {
		old := cell.Load()
		var next float64
		if old == 0 {
			next = x
		} else {
			prev := math.Float64frombits(old)
			next = prev + ratioEWMAAlpha*(x-prev)
		}
		if cell.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Add folds one query's stats into the aggregate without locking.
func (a *atomicAggregate) Add(s QueryStats) {
	a.queries.Add(1)
	a.candidates.Add(int64(s.Candidates))
	a.hits.Add(int64(s.Hits))
	a.pruned.Add(int64(s.Pruned))
	a.trueHits.Add(int64(s.TrueHits))
	a.remaining.Add(int64(s.Remaining))
	a.fetched.Add(int64(s.Fetched))
	a.pageReads.Add(s.PageReads)
	a.simulatedIO.Add(int64(s.SimulatedIO))
	a.genTime.Add(int64(s.GenTime))
	a.reduceTime.Add(int64(s.ReduceTime))
	a.refineTime.Add(int64(s.RefineTime))
	if s.UsedLUT {
		a.lutQueries.Add(1)
	}
	if s.ReduceWorkers > 1 {
		a.parallelQueries.Add(1)
	}
	if s.Degraded {
		a.degradedQueries.Add(1)
	}
	if s.Candidates > 0 {
		foldRatio(&a.ewmaRhoHit, s.RhoHit())
		foldRatio(&a.ewmaRhoRefine, s.RhoRefine())
	}
}

// Load snapshots the counters into the exported Aggregate form.
func (a *atomicAggregate) Load() Aggregate {
	return Aggregate{
		Queries:         int(a.queries.Load()),
		Candidates:      a.candidates.Load(),
		Hits:            a.hits.Load(),
		Pruned:          a.pruned.Load(),
		TrueHits:        a.trueHits.Load(),
		Remaining:       a.remaining.Load(),
		Fetched:         a.fetched.Load(),
		PageReads:       a.pageReads.Load(),
		SimulatedIO:     time.Duration(a.simulatedIO.Load()),
		GenTime:         time.Duration(a.genTime.Load()),
		ReduceTime:      time.Duration(a.reduceTime.Load()),
		RefineTime:      time.Duration(a.refineTime.Load()),
		LUTQueries:      a.lutQueries.Load(),
		ParallelQueries: a.parallelQueries.Load(),
		DegradedQueries: a.degradedQueries.Load(),
		EwmaRhoHit:      math.Float64frombits(a.ewmaRhoHit.Load()),
		EwmaRhoRefine:   math.Float64frombits(a.ewmaRhoRefine.Load()),
	}
}

// Reset zeroes every counter.
func (a *atomicAggregate) Reset() {
	a.queries.Store(0)
	a.candidates.Store(0)
	a.hits.Store(0)
	a.pruned.Store(0)
	a.trueHits.Store(0)
	a.remaining.Store(0)
	a.fetched.Store(0)
	a.pageReads.Store(0)
	a.simulatedIO.Store(0)
	a.genTime.Store(0)
	a.reduceTime.Store(0)
	a.refineTime.Store(0)
	a.lutQueries.Store(0)
	a.parallelQueries.Store(0)
	a.degradedQueries.Store(0)
	a.ewmaRhoHit.Store(0)
	a.ewmaRhoRefine.Store(0)
}

func (a Aggregate) per(v int64) float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(v) / float64(a.Queries)
}

// AvgCandidates returns the mean |C(q)|.
func (a Aggregate) AvgCandidates() float64 { return a.per(a.Candidates) }

// AvgRemaining returns the mean C_refine (the paper's key cost driver).
func (a Aggregate) AvgRemaining() float64 { return a.per(a.Remaining) }

// AvgIO returns the mean refinement I/O in fetched points per query.
func (a Aggregate) AvgIO() float64 { return a.per(a.Fetched) }

// AvgPageReads returns the mean physical page reads per query.
func (a Aggregate) AvgPageReads() float64 { return a.per(a.PageReads) }

// HitRatio returns ρ_hit over the whole run.
func (a Aggregate) HitRatio() float64 {
	if a.Candidates == 0 {
		return 0
	}
	return float64(a.Hits) / float64(a.Candidates)
}

// PruneRatio returns ρ_prune: pruned or detected candidates per cache hit
// (Eqn 1's "ratio of pruned candidates to cache hits").
func (a Aggregate) PruneRatio() float64 {
	if a.Hits == 0 {
		return 0
	}
	return float64(a.Pruned+a.TrueHits) / float64(a.Hits)
}

// AvgResponse returns the mean modeled response time per query.
func (a Aggregate) AvgResponse() time.Duration {
	if a.Queries == 0 {
		return 0
	}
	return (a.GenTime + a.ReduceTime + a.RefineTime + a.SimulatedIO) / time.Duration(a.Queries)
}

// AvgRefinement returns the mean T_refine per query.
func (a Aggregate) AvgRefinement() time.Duration {
	if a.Queries == 0 {
		return 0
	}
	return (a.ReduceTime + a.RefineTime + a.SimulatedIO) / time.Duration(a.Queries)
}

// AvgGeneration returns the mean T_gen per query.
func (a Aggregate) AvgGeneration() time.Duration {
	if a.Queries == 0 {
		return 0
	}
	return a.GenTime / time.Duration(a.Queries)
}
