// Package encoding packs per-dimension bucket codes into machine words —
// the "exploit every bit" of the title. Per Section 3.1 (footnote 5), an
// approximate point with d dimensions and code length τ occupies
// ceil(d·τ / Lword) consecutive words in the cache, and codes are extracted
// with bitwise operations during search.
package encoding

import "fmt"

// WordBits is Lword, the memory word size in bits.
const WordBits = 64

// Codec packs and unpacks fixed-width code arrays.
type Codec struct {
	dim int
	tau int
}

// NewCodec returns a codec for d-dimensional points with τ-bit codes.
func NewCodec(dim, tau int) Codec {
	if dim < 1 {
		panic(fmt.Sprintf("encoding: dim %d < 1", dim))
	}
	if tau < 1 || tau > 32 {
		panic(fmt.Sprintf("encoding: tau %d outside [1,32]", tau))
	}
	return Codec{dim: dim, tau: tau}
}

// Dim returns the number of codes per point.
func (c Codec) Dim() int { return c.dim }

// Tau returns the per-code bit width.
func (c Codec) Tau() int { return c.tau }

// Words returns the number of 64-bit words per encoded point,
// ceil(d·τ / Lword) — footnote 5's cache item size.
func (c Codec) Words() int {
	return (c.dim*c.tau + WordBits - 1) / WordBits
}

// ItemBits returns the cache footprint of one encoded point in bits. Whole
// words are charged, matching the paper's packing model.
func (c Codec) ItemBits() int { return c.Words() * WordBits }

// MaxCode returns the largest encodable code value, 2^τ - 1.
func (c Codec) MaxCode() int { return (1 << c.tau) - 1 }

// Encode packs codes (len Dim, each in [0, MaxCode]) into dst
// (len >= Words; nil allocates) and returns dst.
func (c Codec) Encode(codes []int, dst []uint64) []uint64 {
	if len(codes) != c.dim {
		panic(fmt.Sprintf("encoding: %d codes for dim %d", len(codes), c.dim))
	}
	if dst == nil {
		dst = make([]uint64, c.Words())
	}
	if len(dst) < c.Words() {
		panic("encoding: dst too short")
	}
	for i := range dst[:c.Words()] {
		dst[i] = 0
	}
	maxCode := uint64(c.MaxCode())
	for j, code := range codes {
		v := uint64(code)
		if v > maxCode {
			panic(fmt.Sprintf("encoding: code %d exceeds %d bits", code, c.tau))
		}
		bit := j * c.tau
		w, off := bit/WordBits, uint(bit%WordBits)
		dst[w] |= v << off
		if off+uint(c.tau) > WordBits {
			dst[w+1] |= v >> (WordBits - off)
		}
	}
	return dst
}

// Decode unpacks an encoded point into dst (len >= Dim; nil allocates).
// The byte-aligned widths (τ=8, τ=16) take specialized loops that walk the
// words directly — codes never straddle a word boundary, so the cross-word
// shift logic of At disappears from the hot path.
func (c Codec) Decode(src []uint64, dst []int) []int {
	if dst == nil {
		dst = make([]int, c.dim)
	}
	if len(dst) < c.dim {
		panic("encoding: decode dst too short")
	}
	switch c.tau {
	case 8:
		c.decode8(src, dst)
	case 16:
		c.decode16(src, dst)
	default:
		for j := 0; j < c.dim; j++ {
			dst[j] = c.At(src, j)
		}
	}
	return dst[:c.dim]
}

// decode8 unpacks τ=8 codes: eight per word, one byte each.
func (c Codec) decode8(src []uint64, dst []int) {
	j := 0
	for _, w := range src {
		for k := 0; k < 8 && j < c.dim; k++ {
			dst[j] = int(w & 0xFF)
			w >>= 8
			j++
		}
		if j >= c.dim {
			return
		}
	}
}

// decode16 unpacks τ=16 codes: four per word.
func (c Codec) decode16(src []uint64, dst []int) {
	j := 0
	for _, w := range src {
		for k := 0; k < 4 && j < c.dim; k++ {
			dst[j] = int(w & 0xFFFF)
			w >>= 16
			j++
		}
		if j >= c.dim {
			return
		}
	}
}

// At extracts the code of dimension j without unpacking the whole point.
func (c Codec) At(src []uint64, j int) int {
	bit := j * c.tau
	w, off := bit/WordBits, uint(bit%WordBits)
	mask := uint64(c.MaxCode())
	v := src[w] >> off
	if off+uint(c.tau) > WordBits {
		v |= src[w+1] << (WordBits - off)
	}
	return int(v & mask)
}
