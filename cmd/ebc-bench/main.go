// ebc-bench regenerates the paper's tables and figures (and the ablation
// studies) on the scaled synthetic fixtures. Examples:
//
//	ebc-bench -list
//	ebc-bench -exp fig11
//	ebc-bench -all -scale full -out results.txt
//	ebc-bench -perf BENCH_1.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exploitbit/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (fig1..fig16, tab3, tab4, abl-*)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiments and exit")
		scale = flag.String("scale", "quick", "fixture scale: quick | full")
		out   = flag.String("out", "", "write output to file instead of stdout")
		dir   = flag.String("dir", "", "directory for disk files (default: temp)")
		perf  = flag.String("perf", "", "run the fast-path perf suite and write the JSON report to this path")
		batch = flag.String("batch", "", "run the batch-search coalescing scenario and write the JSON report to this path")
	)
	flag.Parse()

	if *list {
		for _, ex := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", ex.ID, ex.Title)
		}
		return
	}

	var sc bench.Scale
	switch *scale {
	case "quick":
		sc = bench.Quick
	case "full":
		sc = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "ebc-bench: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebc-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	env := bench.NewEnv(sc, *dir)
	defer env.Close()

	var err error
	switch {
	case *perf != "":
		_, err = bench.RunPerf(w, env, *perf)
	case *batch != "":
		_, err = bench.RunBatch(w, env, *batch)
	case *all:
		err = bench.RunAll(w, env)
	case *exp != "":
		err = bench.Run(w, env, *exp)
	default:
		fmt.Fprintln(os.Stderr, "ebc-bench: pass -exp <id>, -all, -perf <path>, -batch <path>, or -list")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebc-bench:", err)
		os.Exit(1)
	}
}
