// Package vptree implements a vantage-point tree (the metric-space exact
// index of Boytsov & Naidan used in the paper's Figure 16c): internal nodes
// hold a vantage point and the median distance µ of their subset to it;
// points closer than µ go inside, the rest outside. Leaf nodes hold point
// ids and are stored on disk via leafstore; the in-memory tree yields
// triangle-inequality lower bounds per leaf.
package vptree

import (
	"math/rand"
	"sort"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

// Params configures construction.
type Params struct {
	// LeafCapacity is the maximum points per leaf (default: one 4 KB page
	// worth of points).
	LeafCapacity int
	Seed         int64
}

func (p Params) withDefaults(dim int) Params {
	if p.LeafCapacity < 1 {
		p.LeafCapacity = 4096 / (4 * dim)
		if p.LeafCapacity < 1 {
			p.LeafCapacity = 1
		}
	}
	return p
}

type node struct {
	vantage []float32 // copy of the vantage point's vector
	mu      float64
	inside  *node
	outside *node
	leaf    int32 // leaf id when >= 0 (then other fields are unset)
}

// Index is a built VP-tree.
type Index struct {
	root   *node
	leaves [][]int32
}

// Build constructs the tree over ds.
func Build(ds *dataset.Dataset, p Params) *Index {
	p = p.withDefaults(ds.Dim)
	rng := rand.New(rand.NewSource(p.Seed))
	ids := make([]int32, ds.Len())
	for i := range ids {
		ids[i] = int32(i)
	}
	ix := &Index{}
	ix.root = ix.build(ds, ids, p.LeafCapacity, rng)
	return ix
}

func (ix *Index) build(ds *dataset.Dataset, ids []int32, leafCap int, rng *rand.Rand) *node {
	if len(ids) <= leafCap {
		leaf := int32(len(ix.leaves))
		ix.leaves = append(ix.leaves, append([]int32(nil), ids...))
		return &node{leaf: leaf}
	}
	v := ids[rng.Intn(len(ids))]
	vp := ds.Point(int(v))
	type dd struct {
		id int32
		d  float64
	}
	ds2 := make([]dd, len(ids))
	for i, id := range ids {
		ds2[i] = dd{id, vec.Dist(ds.Point(int(id)), vp)}
	}
	sort.Slice(ds2, func(a, b int) bool {
		if ds2[a].d != ds2[b].d {
			return ds2[a].d < ds2[b].d
		}
		return ds2[a].id < ds2[b].id
	})
	mid := len(ds2) / 2
	mu := ds2[mid].d
	in := make([]int32, 0, mid)
	out := make([]int32, 0, len(ds2)-mid)
	for i, e := range ds2 {
		if i < mid {
			in = append(in, e.id)
		} else {
			out = append(out, e.id)
		}
	}
	n := &node{vantage: append([]float32(nil), vp...), mu: mu, leaf: -1}
	n.inside = ix.build(ds, in, leafCap, rng)
	n.outside = ix.build(ds, out, leafCap, rng)
	return n
}

// Leaves returns the leaf partition.
func (ix *Index) Leaves() [][]int32 { return ix.leaves }

// LeafLowerBounds returns a triangle-inequality lower bound per leaf: the
// maximum over the leaf's ancestor constraints of dist(q,vantage)−µ (inside
// branches) and µ−dist(q,vantage) (outside branches), floored at zero.
func (ix *Index) LeafLowerBounds(q []float32) []float64 {
	return ix.LeafLowerBoundsInto(q, nil)
}

// LeafLowerBoundsInto is LeafLowerBounds writing into dst (grown only when
// undersized), so repeated queries reuse one buffer. The tree walk itself
// still allocates its recursive closure; only the bound slice is reused.
func (ix *Index) LeafLowerBoundsInto(q []float32, dst []float64) []float64 {
	if cap(dst) < len(ix.leaves) {
		dst = make([]float64, len(ix.leaves))
	}
	lbs := dst[:len(ix.leaves)]
	var walk func(n *node, lb float64)
	walk = func(n *node, lb float64) {
		if n.leaf >= 0 {
			lbs[n.leaf] = lb
			return
		}
		d := vec.Dist(q, n.vantage)
		inLB, outLB := lb, lb
		if c := d - n.mu; c > inLB {
			inLB = c
		}
		if c := n.mu - d; c > outLB {
			outLB = c
		}
		walk(n.inside, inLB)
		walk(n.outside, outLB)
	}
	walk(ix.root, 0)
	return lbs
}
