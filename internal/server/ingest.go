// Live-ingest endpoints. When an Ingestor is registered the handler
// additionally serves:
//
//	POST /insert  {"vector": [...]}  → {"id": 123}
//	POST /delete  {"id": 123}        → {"deleted": 123}
//
// Writes pass the same admission gate as searches (a write is work too) and
// the same vector validation as /search — dimensionality and finiteness are
// checked before anything reaches the write-ahead log. With an IngestStats
// source registered, /stats and /metrics carry an "ingest" block: WAL size,
// delta and tombstone counts, compaction and replay telemetry.

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"time"
)

// ErrUnknownID marks a delete of an identifier that no insert ever produced;
// the handler answers 404. Implementations wrap or translate their own
// sentinel to this one (errors.Is).
var ErrUnknownID = errors.New("server: unknown point id")

// Ingestor is the write-path dependency: durable insert and delete against
// the live system. Insert returns the point's permanent identifier.
type Ingestor interface {
	Insert(ctx context.Context, vec []float32) (int, error)
	Delete(ctx context.Context, id int) error
}

// IngestStats is the live write path telemetry block for /stats and /metrics.
type IngestStats struct {
	WalBytes             int64 `json:"wal_bytes"`
	WalSegments          int   `json:"wal_segments"`
	DeltaPoints          int   `json:"delta_points"`
	Tombstones           int   `json:"tombstones"`
	Points               int   `json:"points"`
	Inserts              int64 `json:"inserts"`
	Deletes              int64 `json:"deletes"`
	Compactions          int64 `json:"compactions"`
	CompactionErrors     int64 `json:"compaction_errors"`
	CompactInFlight      bool  `json:"compact_in_flight"`
	ReplayedRecords      int   `json:"replayed_records"`
	ReplayTruncatedBytes int64 `json:"replay_truncated_bytes"`

	// ShardWrites breaks writes down by owning shard on sharded deployments
	// (deletes go to the shard that owns the base point; inserts to the delta
	// point's future home), absent when unsharded.
	ShardWrites []ShardWriteStat `json:"shard_writes,omitempty"`
}

// ShardWriteStat is one shard's write-routing tally.
type ShardWriteStat struct {
	Shard   int   `json:"shard"`
	Inserts int64 `json:"inserts"`
	Deletes int64 `json:"deletes"`
}

// ingestState is the handler's write-path wiring, nil until SetIngestor.
type ingestState struct {
	ingestor Ingestor
	stats    func() IngestStats

	inserts   atomic.Int64 // /insert requests answered 200
	deletes   atomic.Int64 // /delete requests answered 200
	writeErrs atomic.Int64 // write requests failed 5xx
	writeShed atomic.Int64 // write requests shed by the admission gate
	latInsert Histogram
	latDelete Histogram
}

// SetIngestor registers the write path; POST /insert and POST /delete are
// routed from then on. Call before serving.
func (h *Handler) SetIngestor(ing Ingestor) {
	if h.ingest == nil {
		h.ingest = &ingestState{}
	}
	h.ingest.ingestor = ing
	h.mux.HandleFunc("POST /insert", h.handleInsert)
	h.mux.HandleFunc("POST /delete", h.handleDelete)
}

// SetIngestStats registers a snapshot source for write-path telemetry;
// /stats and /metrics then carry an "ingest" object. Call before serving.
func (h *Handler) SetIngestStats(fn func() IngestStats) {
	if h.ingest == nil {
		h.ingest = &ingestState{}
	}
	h.ingest.stats = fn
}

type insertRequest struct {
	Vector []float32 `json:"vector"`
}

type insertResponse struct {
	ID int `json:"id"`
}

type deleteRequest struct {
	ID *int `json:"id"`
}

type deleteResponse struct {
	Deleted int `json:"deleted"`
}

func (h *Handler) handleInsert(w http.ResponseWriter, r *http.Request) {
	ig := h.ingest
	select {
	case h.gate <- struct{}{}:
		defer func() { <-h.gate }()
	default:
		ig.writeShed.Add(1)
		h.shed.Add(1)
		h.fail(w, http.StatusServiceUnavailable,
			"saturated: %d requests in flight; retry with backoff", cap(h.gate))
		return
	}
	var req insertRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&req); err != nil {
		h.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Vector) != h.cfg.Dim {
		h.fail(w, http.StatusBadRequest, "vector has %d dimensions, engine serves %d", len(req.Vector), h.cfg.Dim)
		return
	}
	if j := firstNonFinite(req.Vector); j >= 0 {
		h.fail(w, http.StatusBadRequest, "vector[%d] is not finite", j)
		return
	}
	start := time.Now()
	id, err := ig.ingestor.Insert(r.Context(), req.Vector)
	if err != nil {
		ig.writeErrs.Add(1)
		h.fail(w, http.StatusInternalServerError, "insert failed: %v", err)
		return
	}
	ig.inserts.Add(1)
	ig.latInsert.Observe(time.Since(start))
	h.writeJSON(w, http.StatusOK, insertResponse{ID: id})
}

func (h *Handler) handleDelete(w http.ResponseWriter, r *http.Request) {
	ig := h.ingest
	select {
	case h.gate <- struct{}{}:
		defer func() { <-h.gate }()
	default:
		ig.writeShed.Add(1)
		h.shed.Add(1)
		h.fail(w, http.StatusServiceUnavailable,
			"saturated: %d requests in flight; retry with backoff", cap(h.gate))
		return
	}
	var req deleteRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil {
		h.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.ID == nil {
		h.fail(w, http.StatusBadRequest, "missing id")
		return
	}
	start := time.Now()
	if err := ig.ingestor.Delete(r.Context(), *req.ID); err != nil {
		if errors.Is(err, ErrUnknownID) {
			h.fail(w, http.StatusNotFound, "unknown id %d", *req.ID)
			return
		}
		ig.writeErrs.Add(1)
		h.fail(w, http.StatusInternalServerError, "delete failed: %v", err)
		return
	}
	ig.deletes.Add(1)
	ig.latDelete.Observe(time.Since(start))
	h.writeJSON(w, http.StatusOK, deleteResponse{Deleted: *req.ID})
}

// ingestMetrics is the /metrics write-path block.
type ingestMetrics struct {
	IngestStats
	InsertRequests int64             `json:"insert_requests"`
	DeleteRequests int64             `json:"delete_requests"`
	WriteErrors    int64             `json:"write_errors"`
	WriteShed      int64             `json:"write_shed"`
	LatInsert      HistogramSnapshot `json:"latency_insert"`
	LatDelete      HistogramSnapshot `json:"latency_delete"`
}

// ingestStatsBlock assembles the /stats ingest object, nil when no write
// path is wired.
func (h *Handler) ingestStatsBlock() *IngestStats {
	if h.ingest == nil || h.ingest.stats == nil {
		return nil
	}
	s := h.ingest.stats()
	return &s
}

// ingestMetricsBlock assembles the /metrics ingest object, nil when no write
// path is wired.
func (h *Handler) ingestMetricsBlock() *ingestMetrics {
	ig := h.ingest
	if ig == nil {
		return nil
	}
	m := &ingestMetrics{
		InsertRequests: ig.inserts.Load(),
		DeleteRequests: ig.deletes.Load(),
		WriteErrors:    ig.writeErrs.Load(),
		WriteShed:      ig.writeShed.Load(),
		LatInsert:      ig.latInsert.Snapshot(),
		LatDelete:      ig.latDelete.Snapshot(),
	}
	if ig.stats != nil {
		m.IngestStats = ig.stats()
	}
	return m
}
