package multistep

import (
	"math"
	"math/rand"
	"testing"
)

// groupWorld synthesizes points partitioned into groups with conservative
// squared lower bounds, mimicking tree leaves.
type groupWorld struct {
	dist  map[int32]float64 // exact squared distance per id
	group map[int32]int32   // owning group per id
	ids   map[int32][]int32 // members per group
}

func makeGroupWorld(rng *rand.Rand, nGroups, perGroup int) *groupWorld {
	w := &groupWorld{
		dist:  map[int32]float64{},
		group: map[int32]int32{},
		ids:   map[int32][]int32{},
	}
	id := int32(0)
	for g := int32(0); g < int32(nGroups); g++ {
		for i := 0; i < perGroup; i++ {
			w.dist[id] = rng.Float64() * 100
			w.group[id] = g
			w.ids[g] = append(w.ids[g], id)
			id++
		}
	}
	return w
}

func (w *groupWorld) fetchCounting(loads *int, loadedGroups *[]int32) GroupFetch {
	return func(g int32) ([]int32, []float64, error) {
		*loads++
		if loadedGroups != nil {
			*loadedGroups = append(*loadedGroups, g)
		}
		ids := w.ids[g]
		sq := make([]float64, len(ids))
		for i, id := range ids {
			sq[i] = w.dist[id]
		}
		return ids, sq, nil
	}
}

// pendingOf builds a GroupCandidate with a conservative squared lower bound
// (a random fraction of the true squared distance).
func (w *groupWorld) pendingOf(rng *rand.Rand, id int32) GroupCandidate {
	return GroupCandidate{ID: id, Group: w.group[id], LBSq: w.dist[id] * rng.Float64()}
}

func TestSearchGroupsSqMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		w := makeGroupWorld(rng, 2+rng.Intn(8), 1+rng.Intn(10))
		k := 1 + rng.Intn(8)

		// Partition ids into pending and skipped, plus group-less seeds.
		// Seeds get their own id space: in the tree engine a seed comes from
		// an exact-cached or disk-loaded leaf, which is never pending, so a
		// seed's group is never loaded again (no double membership).
		var seeds, pending []GroupCandidate
		skip := map[int32]bool{}
		inPlay := map[int32]float64{}
		nextSeed := int32(100000)
		for id := range w.dist {
			switch rng.Intn(4) {
			case 0:
				d := rng.Float64() * 100
				seeds = append(seeds, GroupCandidate{ID: nextSeed, Group: -1, LBSq: d})
				inPlay[nextSeed] = d
				nextSeed++
			case 1, 2:
				pending = append(pending, w.pendingOf(rng, id))
				inPlay[id] = w.dist[id]
			default:
				if rng.Intn(5) == 0 {
					skip[id] = true // a declared true hit: excluded even if its group loads
				}
			}
		}

		var sc Scratch
		loads := 0
		var loadedGroups []int32
		got, reported, err := sc.SearchGroupsSq(seeds, pending, k, skip, w.fetchCounting(&loads, &loadedGroups), nil)
		if err != nil {
			t.Fatal(err)
		}
		if reported != loads {
			t.Fatalf("reported %d loads, fetch saw %d", reported, loads)
		}

		// Brute force: seeds and pending members, plus every non-skipped point
		// of any group SearchGroupsSq loaded (their distances are free once
		// the group is in memory). Unloaded pending members cannot place: by
		// the optimal stop their lower bounds are at or above the k-th
		// distance.
		elig := map[int32]float64{}
		for id, d := range inPlay {
			elig[id] = d
		}
		for _, g := range loadedGroups {
			for _, id := range w.ids[g] {
				if !skip[id] {
					elig[id] = w.dist[id]
				}
			}
		}
		want := bruteTopK(elig, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i, r := range got {
			if math.Abs(r.Dist-math.Sqrt(want[i])) > 1e-12 {
				t.Fatalf("trial %d rank %d: dist %v want %v", trial, i, r.Dist, math.Sqrt(want[i]))
			}
			if skip[int32(r.ID)] {
				t.Fatalf("trial %d: skipped id %d surfaced as a result", trial, r.ID)
			}
		}
	}
}

// bruteTopK returns the k smallest squared distances in ascending order.
func bruteTopK(elig map[int32]float64, k int) []float64 {
	var all []float64
	for _, d := range elig {
		all = append(all, d)
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j] < all[j-1]; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestSearchGroupsSqLoadsEachGroupOnce floods one group with pending
// candidates and checks memoization: the group is fetched exactly once.
func TestSearchGroupsSqLoadsEachGroupOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := makeGroupWorld(rng, 3, 12)
	var pending []GroupCandidate
	for id := range w.dist {
		pending = append(pending, GroupCandidate{ID: id, Group: w.group[id], LBSq: 0})
	}
	var sc Scratch
	loads := 0
	_, reported, err := sc.SearchGroupsSq(nil, pending, len(w.dist), nil, w.fetchCounting(&loads, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if loads != 3 || reported != 3 {
		t.Fatalf("loaded %d times (reported %d), want once per group (3)", loads, reported)
	}
}

// TestSearchGroupsSqOptimalStop gives k seeds at distance 0 and distant
// pending candidates: no group may be loaded at all.
func TestSearchGroupsSqOptimalStop(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w := makeGroupWorld(rng, 4, 8)
	seeds := []GroupCandidate{{ID: 1000, Group: -1, LBSq: 0}, {ID: 1001, Group: -1, LBSq: 0}}
	var pending []GroupCandidate
	for id := range w.dist {
		pending = append(pending, GroupCandidate{ID: id, Group: w.group[id], LBSq: w.dist[id] + 1000})
	}
	var sc Scratch
	loads := 0
	got, _, err := sc.SearchGroupsSq(seeds, pending, 2, nil, w.fetchCounting(&loads, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if loads != 0 {
		t.Fatalf("loaded %d groups despite full seed coverage", loads)
	}
	if len(got) != 2 || got[0].ID != 1000 && got[0].ID != 1001 {
		t.Fatalf("unexpected results %v", got)
	}
}
