// Package vafile implements the VA-file (Weber & Blott): a per-dimension
// b-bit grid approximation of every point, scanned sequentially to filter
// candidates before exact refinement. Per the paper's Section 5.1, the grid
// partitions each dimension equi-depth. The VA-file plays two roles in the
// reproduction: an exact kNN index for Figure 16b, and (cached wholesale)
// the C-VA baseline of Figure 10.
package vafile

import (
	"fmt"
	"sort"

	"exploitbit/internal/bounds"
	"exploitbit/internal/dataset"
	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
)

// Params configures the approximation grid.
type Params struct {
	// BitsPerDim is b, the bits per dimension of the approximation
	// (default 6).
	BitsPerDim int
}

// Index is a built VA-file: the grid plus the packed approximation of every
// point, held in memory (its sequential scan is cheap relative to the random
// point fetches of refinement, which is where the paper's caching applies).
type Index struct {
	n, dim int
	codec  encoding.Codec
	grid   *histogram.PerDim
	table  *bounds.Table
	approx []uint64 // n × codec.Words() packed approximations
}

// Build constructs the VA-file over ds with per-dimension equi-depth grids.
func Build(ds *dataset.Dataset, p Params) *Index {
	if p.BitsPerDim < 1 {
		p.BitsPerDim = 6
	}
	if p.BitsPerDim > 16 {
		p.BitsPerDim = 16
	}
	b := histogram.MaxBucketsForCodeLen(p.BitsPerDim, ds.Domain.Ndom)
	freqs := histogram.DataFrequencyPerDim(ds, ds.Dim, ds.Domain)
	grid := histogram.BuildPerDim(freqs, b, func(f []float64, b int) *histogram.Histogram {
		return histogram.EquiDepth(f, b)
	})
	codec := encoding.NewCodec(ds.Dim, p.BitsPerDim)

	ix := &Index{
		n: ds.Len(), dim: ds.Dim,
		codec: codec,
		grid:  grid,
		table: bounds.NewTablePerDim(grid, ds.Domain),
	}
	words := codec.Words()
	ix.approx = make([]uint64, ds.Len()*words)
	codes := make([]int, ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		pt := ds.Point(i)
		for j, v := range pt {
			codes[j] = grid.H[j].Bucket(ds.Domain.Bin(float64(v)))
		}
		codec.Encode(codes, ix.approx[i*words:(i+1)*words])
	}
	return ix
}

// ApproxBytes returns the size of the approximation array — what the C-VA
// baseline must fit into the cache budget.
func (ix *Index) ApproxBytes() int { return len(ix.approx) * 8 }

// BitsPerDim returns the grid resolution.
func (ix *Index) BitsPerDim() int { return ix.codec.Tau() }

// Result of the filtering scan for one query.
type Result struct {
	IDs  []int // candidates in ascending lower-bound order
	LBs  []float64
	UBs  []float64
	Dmax float64 // the k-th smallest upper bound (= ub_k of the scan)
}

// Candidates performs the VA-SSA filtering scan (phase 1 of VA-file search):
// it computes distance bounds for every point from the in-memory
// approximations, keeps those whose lower bound does not exceed the k-th
// smallest upper bound, and returns them sorted by lower bound. No disk I/O
// is charged — the approximation array is memory-resident.
func (ix *Index) Candidates(q []float32, k int) Result {
	if len(q) != ix.dim {
		panic(fmt.Sprintf("vafile: query dim %d != %d", len(q), ix.dim))
	}
	if k < 1 {
		k = 1
	}
	words := ix.codec.Words()
	lbs := make([]float64, ix.n)
	ubs := make([]float64, ix.n)
	// Track the k-th smallest upper bound online.
	ubk := newKMin(k)
	for i := 0; i < ix.n; i++ {
		lb, ub := ix.table.BoundsPacked(q, ix.approx[i*words:(i+1)*words], ix.codec)
		lbs[i], ubs[i] = lb, ub
		ubk.push(ub)
	}
	bound := ubk.kth()
	var res Result
	for i := 0; i < ix.n; i++ {
		if lbs[i] <= bound {
			res.IDs = append(res.IDs, i)
			res.LBs = append(res.LBs, lbs[i])
			res.UBs = append(res.UBs, ubs[i])
		}
	}
	sort.Sort(&res)
	res.Dmax = bound
	return res
}

// sort.Interface over the parallel candidate slices, by ascending LB.
func (r *Result) Len() int { return len(r.IDs) }
func (r *Result) Less(i, j int) bool {
	if r.LBs[i] != r.LBs[j] {
		return r.LBs[i] < r.LBs[j]
	}
	return r.IDs[i] < r.IDs[j]
}
func (r *Result) Swap(i, j int) {
	r.IDs[i], r.IDs[j] = r.IDs[j], r.IDs[i]
	r.LBs[i], r.LBs[j] = r.LBs[j], r.LBs[i]
	r.UBs[i], r.UBs[j] = r.UBs[j], r.UBs[i]
}

// kMin tracks the k-th smallest value seen (a bounded max-heap).
type kMin struct {
	k  int
	hs []float64
}

func newKMin(k int) *kMin { return &kMin{k: k} }

func (m *kMin) push(v float64) {
	if len(m.hs) < m.k {
		m.hs = append(m.hs, v)
		for i := len(m.hs) - 1; i > 0; {
			p := (i - 1) / 2
			if m.hs[p] >= m.hs[i] {
				break
			}
			m.hs[p], m.hs[i] = m.hs[i], m.hs[p]
			i = p
		}
		return
	}
	if v >= m.hs[0] {
		return
	}
	m.hs[0] = v
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		mx := i
		if l < len(m.hs) && m.hs[l] > m.hs[mx] {
			mx = l
		}
		if r < len(m.hs) && m.hs[r] > m.hs[mx] {
			mx = r
		}
		if mx == i {
			break
		}
		m.hs[i], m.hs[mx] = m.hs[mx], m.hs[i]
		i = mx
	}
}

func (m *kMin) kth() float64 {
	if len(m.hs) == 0 {
		return 0
	}
	return m.hs[0]
}
