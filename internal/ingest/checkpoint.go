// Compaction checkpoints. A checkpoint is the cumulative durable image of
// everything the live system has folded beyond the base dataset file: every
// point appended since the base (tombstoned ones included, so identifiers
// stay dense and equal to point-file slots), every tombstone ever taken, and
// the WAL sequence horizon the image covers. Recovery loads the checkpoint,
// replays only the segments past its horizon, and arrives at exactly the
// pre-crash fold.
//
// The file is written whole to a temp name and renamed into place, with a
// CRC32 trailer over the full contents; a missing or invalid checkpoint is
// ignored (replay then starts from the oldest retained segment), never
// trusted partially.

package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"exploitbit/internal/core"
	"exploitbit/internal/dataset"
)

// CheckpointName is the checkpoint's file name inside the WAL directory.
const CheckpointName = "checkpoint.ebc"

const (
	ckptMagic      = 'E' | 'B'<<8 | 'C'<<16 | 'K'<<24
	ckptVersion    = 1
	ckptHeaderSize = 48
)

// writeCheckpoint persists the cumulative fold image: points are rows
// [baseN, fold.Len()) of the folded dataset, tombs is the full tombstone set,
// and coveredSeq is the sealed WAL horizon the image includes.
func writeCheckpoint(dir string, fold *dataset.Dataset, baseN int, tombs map[int64]struct{}, coveredSeq uint64) error {
	n := fold.Len()
	dim := fold.Dim
	if baseN < 0 || baseN > n {
		return fmt.Errorf("ingest: checkpoint baseN %d out of range [0,%d]", baseN, n)
	}
	extra := n - baseN
	buf := make([]byte, 0, ckptHeaderSize+extra*(8+4*dim)+8*len(tombs)+4)
	var scratch [8]byte
	le := binary.LittleEndian
	u32 := func(v uint32) {
		le.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	u64 := func(v uint64) {
		le.PutUint64(scratch[:8], v)
		buf = append(buf, scratch[:8]...)
	}
	u32(ckptMagic)
	u32(ckptVersion)
	u32(uint32(dim))
	u32(0) // reserved
	u64(coveredSeq)
	u64(uint64(baseN))
	u64(uint64(extra))
	u64(uint64(len(tombs)))
	for i := baseN; i < n; i++ {
		u64(uint64(i))
		for _, v := range fold.Point(i) {
			u32(math.Float32bits(v))
		}
	}
	ids := make([]int64, 0, len(tombs))
	for id := range tombs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		u64(uint64(id))
	}
	u32(crc32.ChecksumIEEE(buf))

	tmp := filepath.Join(dir, CheckpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: create checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ingest: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ingest: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ingest: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, CheckpointName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ingest: install checkpoint: %w", err)
	}
	// The rename itself must be durable before the caller may retire the WAL
	// segments this checkpoint covers; otherwise a power loss can persist the
	// segment unlinks while the rename is still unpublished, losing the fold.
	return syncDir(dir)
}

// readCheckpoint loads and validates the directory's checkpoint. ok is false
// — with everything else zero — when the file is missing or fails any
// validation; recovery then replays all retained segments instead.
func readCheckpoint(dir string, baseN, dim int) (pts []core.MergePoint, tombs map[int64]struct{}, coveredSeq uint64, ok bool) {
	buf, err := os.ReadFile(filepath.Join(dir, CheckpointName))
	if err != nil || len(buf) < ckptHeaderSize+4 {
		return nil, nil, 0, false
	}
	le := binary.LittleEndian
	body, trailer := buf[:len(buf)-4], le.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != trailer {
		return nil, nil, 0, false
	}
	if le.Uint32(body[0:]) != ckptMagic || le.Uint32(body[4:]) != ckptVersion || int(le.Uint32(body[8:])) != dim {
		return nil, nil, 0, false
	}
	coveredSeq = le.Uint64(body[16:])
	ckBase := le.Uint64(body[24:])
	extra := le.Uint64(body[32:])
	nTombs := le.Uint64(body[40:])
	if int(ckBase) != baseN {
		return nil, nil, 0, false
	}
	want := ckptHeaderSize + int(extra)*(8+4*dim) + 8*int(nTombs)
	if len(body) != want {
		return nil, nil, 0, false
	}
	// Every recovered id must fit the engine's int32 id space.
	if uint64(baseN)+extra > uint64(math.MaxInt32)+1 {
		return nil, nil, 0, false
	}
	off := ckptHeaderSize
	pts = make([]core.MergePoint, 0, extra)
	for i := 0; i < int(extra); i++ {
		id := le.Uint64(body[off:])
		off += 8
		// Identifiers must be dense from the base: id == slot, always.
		if id != uint64(baseN+i) {
			return nil, nil, 0, false
		}
		vec := make([]float32, dim)
		for j := range vec {
			vec[j] = math.Float32frombits(le.Uint32(body[off:]))
			off += 4
		}
		pts = append(pts, core.MergePoint{ID: int32(id), Vec: vec})
	}
	tombs = make(map[int64]struct{}, nTombs)
	for i := 0; i < int(nTombs); i++ {
		id := le.Uint64(body[off:])
		off += 8
		if id >= uint64(baseN)+extra {
			return nil, nil, 0, false
		}
		tombs[int64(id)] = struct{}{}
	}
	return pts, tombs, coveredSeq, true
}
