package histogram

import (
	"math/rand"
	"testing"
)

func benchFreq(ndom int, hot float64) []float64 {
	rng := rand.New(rand.NewSource(1))
	f := make([]float64, ndom)
	for i := range f {
		f[i] = rng.Float64()
		// Concentrate some mass to resemble a workload F'.
		if rng.Float64() < 0.05 {
			f[i] += hot * rng.Float64()
		}
	}
	return f
}

// BenchmarkKNNOptimal is the full Algorithm 2 run at the library defaults
// (Ndom=1024, B=256) — the offline cost that Table 3 reports.
func BenchmarkKNNOptimal1024x256(b *testing.B) {
	f := benchFreq(1024, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KNNOptimal(f, 256)
	}
}

func BenchmarkKNNOptimalNoCutoff1024x256(b *testing.B) {
	f := benchFreq(1024, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KNNOptimalWith(f, 256, KNNOptimalOptions{DisableCutoff: true})
	}
}

func BenchmarkVOptimal1024x256(b *testing.B) {
	f := benchFreq(1024, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VOptimal(f, 256)
	}
}

func BenchmarkEquiDepth1024x256(b *testing.B) {
	f := benchFreq(1024, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EquiDepth(f, 256)
	}
}

func BenchmarkBucketLookup(b *testing.B) {
	h := EquiDepth(benchFreq(1024, 100), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Bucket(i & 1023)
	}
}
