// ebc-serve runs the cached kNN engine as an HTTP service over an EBDS
// dataset, with optional self-maintenance (automatic cache rebuilds under
// workload drift). Example:
//
//	ebc-gen -preset nuswide -n 20000 -o nw.ebds
//	ebc-serve -data nw.ebds -method HC-O -cache 16MiB -addr :8080
//	curl -s localhost:8080/search -d '{"vector":[...150 floats...],"k":10}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"exploitbit"
	"exploitbit/internal/core"
)

func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	return v * mult, err
}

func main() {
	var (
		data     = flag.String("data", "", "EBDS dataset file (required)")
		logFile  = flag.String("log", "", "EBQL query log for cache construction (default: generated)")
		method   = flag.String("method", "HC-O", "caching method")
		cacheSz  = flag.String("cache", "16MiB", "cache size")
		k        = flag.Int("k", 10, "profiling k")
		addr     = flag.String("addr", ":8080", "listen address")
		maintain = flag.Bool("maintain", false, "enable automatic cache rebuilds under workload drift")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "ebc-serve: -data is required")
		os.Exit(2)
	}

	ds, err := exploitbit.LoadDataset(*data)
	if err != nil {
		log.Fatal("ebc-serve: ", err)
	}
	cs, err := parseBytes(*cacheSz)
	if err != nil {
		log.Fatal("ebc-serve: bad -cache: ", err)
	}

	var wl [][]float32
	if *logFile != "" {
		qlog, err := exploitbit.LoadLog(*logFile)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		wl = qlog.Queries()
	} else {
		qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
			PoolSize: 500, Length: 2000, ZipfS: 1.3, Perturb: 0.005, Seed: 7,
		})
		wl = qlog.Queries()
	}

	log.Printf("ebc-serve: dataset %q (%d x %d-d); building index and profiling %d workload queries…",
		ds.Name, ds.Len(), ds.Dim, len(wl))
	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{WorkloadK: *k})
	if err != nil {
		log.Fatal("ebc-serve: ", err)
	}
	defer sys.Close()

	tau := sys.OptimalTau(cs)
	var handler http.Handler
	if *maintain {
		m, err := sys.Maintained(core.Config{Method: exploitbit.Method(*method), CacheBytes: cs, Tau: tau, SmoothEps: 0.01},
			exploitbit.MaintainOptions{})
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		handler = exploitbit.ServeMaintained(m, ds.Dim)
	} else {
		eng, err := sys.Engine(exploitbit.Method(*method), cs, tau)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		handler = exploitbit.Serve(eng, ds.Dim)
	}

	log.Printf("ebc-serve: %s cache, %s budget, tau=%d; listening on %s", *method, *cacheSz, tau, *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}
