package core

import (
	"context"
	"errors"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"exploitbit/internal/disk"
	"exploitbit/internal/shard"
	"exploitbit/internal/vec"
)

// failAllReads installs a permanent fault on every page of a shard's file.
func failAllReads(pf *disk.PointFile) {
	pf.SetFaults(disk.NewInjector(disk.FaultPolicy{Rules: []disk.FaultRule{
		{Kind: disk.FaultError, FirstPage: 0, LastPage: -1, Transient: false},
	}}))
}

// checkDegradedKNN asserts ids are exactly the k nearest of q among the
// candidates NOT owned by the failed shards.
func checkDegradedKNN(t *testing.T, w *world, owner []int32, failed map[int]bool, q []float32, ids []int, k int) {
	t.Helper()
	cids, _ := candFunc(w.ix)(q, k)
	var surv []int
	for _, id := range cids {
		if !failed[int(owner[id])] {
			surv = append(surv, id)
		}
	}
	want := knnOfCandidates(w.ds, q, surv, k)
	if len(ids) != len(want) {
		t.Fatalf("%d results, want %d (over %d surviving candidates)", len(ids), len(want), len(surv))
	}
	got := make([]float64, len(ids))
	for i, id := range ids {
		if failed[int(owner[id])] {
			t.Fatalf("result %d is owned by a failed shard", id)
		}
		got[i] = vec.Dist(q, w.ds.Point(id))
	}
	sort.Float64s(got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d: dist %v, want %v", i, got[i], want[i])
		}
	}
}

// TestDegradedShardServing is the tentpole acceptance path: one shard's
// storage fails permanently; without -degraded-ok queries touching it fail
// with a typed ShardError, with it they complete over the surviving shards,
// flagged, and the broken device is never touched again once quarantined.
func TestDegradedShardServing(t *testing.T) {
	w := buildTieWorld(t, 1203, 16, 5)
	cfg := Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6}
	specs, owner, local := buildShardSpecs(t, w, 3, shard.RoundRobin)
	se, err := NewShardedEngine(specs, owner, local, w.prof, candFunc(w.ix), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 1
	const k = 10

	// Degraded serving off: the failure is a typed, shard-attributed error.
	failAllReads(specs[bad].PF)
	sawErr := false
	for _, q := range w.qtest {
		_, _, err := se.SearchCtx(context.Background(), q, k)
		if err != nil {
			sawErr = true
			var serr *ShardError
			if !errors.As(err, &serr) {
				t.Fatalf("error is not a *ShardError: %v", err)
			}
			if serr.Shard != bad {
				t.Fatalf("failure attributed to shard %d, want %d", serr.Shard, bad)
			}
			if !disk.IsPermanent(err) {
				t.Fatalf("disk classification lost through the stack: %v", err)
			}
			break
		}
	}
	if !sawErr {
		t.Fatal("no query ever fetched from the failed shard — test world too small")
	}
	if se.Quarantined(bad) {
		t.Fatal("shard must not be quarantined while degraded serving is off")
	}

	// Degraded serving on: every query completes; queries that needed the
	// failed shard come back flagged with exactly the surviving-shard kNN.
	se.SetDegradedOK(true)
	failedSet := map[int]bool{bad: true}
	degraded := 0
	for qi, q := range w.qtest {
		wasQuarantined := se.Quarantined(bad)
		ids, st, err := se.SearchCtx(context.Background(), q, k)
		if err != nil {
			t.Fatalf("q%d: degraded serving must not fail: %v", qi, err)
		}
		if !wasQuarantined {
			// Pre-quarantine (or quarantining) query: the failure may hit
			// mid-search, after the bad shard already contributed cache-based
			// true hits. Best-effort results are legal there; the strict
			// surviving-shard contract starts once the quarantine is up.
			continue
		}
		if st.Degraded {
			degraded++
			if len(st.FailedShards) != 1 || st.FailedShards[0] != bad {
				t.Fatalf("q%d: FailedShards = %v, want [%d]", qi, st.FailedShards, bad)
			}
			checkDegradedKNN(t, w, owner, failedSet, q, ids, k)
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded query observed")
	}
	if !se.Quarantined(bad) {
		t.Fatal("failed shard was never quarantined")
	}
	if se.Aggregate().DegradedQueries < int64(degraded) {
		t.Fatalf("aggregate DegradedQueries = %d, want >= %d", se.Aggregate().DegradedQueries, degraded)
	}
	sa := se.ShardAggregates()
	if !sa[bad].Quarantined || sa[bad].FetchFailures < 1 {
		t.Fatalf("shard aggregate = %+v, want quarantined with failures", sa[bad])
	}

	// Once quarantined, the broken device is never touched again.
	before := specs[bad].PF.Stats()
	for _, q := range w.qtest[:4] {
		if _, _, err := se.SearchCtx(context.Background(), q, k); err != nil {
			t.Fatal(err)
		}
	}
	after := specs[bad].PF.Stats()
	if after.PageReads != before.PageReads {
		t.Fatalf("quarantined shard was read (%d → %d page reads)", before.PageReads, after.PageReads)
	}
}

// TestDegradedBatchServing pins the batch path: a quarantined shard degrades
// every batch member that needed it, with surviving-shard results.
func TestDegradedBatchServing(t *testing.T) {
	w := buildTieWorld(t, 1203, 16, 6)
	cfg := Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6}
	specs, owner, local := buildShardSpecs(t, w, 3, shard.RoundRobin)
	se, err := NewShardedEngine(specs, owner, local, w.prof, candFunc(w.ix), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 2
	const k = 10
	failAllReads(specs[bad].PF)
	se.Quarantine(bad)
	se.SetDegradedOK(true)

	ids, sts, err := se.SearchBatchCtx(context.Background(), w.qtest, k)
	if err != nil {
		t.Fatalf("degraded batch must not fail: %v", err)
	}
	failedSet := map[int]bool{bad: true}
	degraded := 0
	for j, q := range w.qtest {
		if !sts[j].Degraded {
			// Not degraded ⇒ the query had no candidates on the failed shard.
			cids, _ := candFunc(w.ix)(q, k)
			for _, id := range cids {
				if int(owner[id]) == bad {
					t.Fatalf("q%d not flagged despite candidate on failed shard", j)
				}
			}
			continue
		}
		degraded++
		checkDegradedKNN(t, w, owner, failedSet, q, ids[j], k)
	}
	if degraded == 0 {
		t.Fatal("no degraded batch member observed")
	}
}

// TestQuarantineRefusedWithoutDegradedOK: touching a quarantined shard while
// degraded serving is off is a typed refusal, not a silent partial answer.
func TestQuarantineRefusedWithoutDegradedOK(t *testing.T) {
	w := buildTieWorld(t, 1203, 16, 7)
	cfg := Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6}
	specs, owner, local := buildShardSpecs(t, w, 3, shard.RoundRobin)
	se, err := NewShardedEngine(specs, owner, local, w.prof, candFunc(w.ix), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 0
	se.Quarantine(bad)
	refused := false
	for _, q := range w.qtest {
		_, _, err := se.SearchCtx(context.Background(), q, 10)
		if err == nil {
			// Legal only if no candidate was owned by the quarantined shard.
			cids, _ := candFunc(w.ix)(q, 10)
			for _, id := range cids {
				if int(owner[id]) == bad {
					t.Fatal("query touched quarantined shard without error")
				}
			}
			continue
		}
		if !errors.Is(err, ErrShardQuarantined) {
			t.Fatalf("want ErrShardQuarantined, got %v", err)
		}
		var serr *ShardError
		if !errors.As(err, &serr) || serr.Shard != bad {
			t.Fatalf("refusal not attributed to shard %d: %v", bad, err)
		}
		refused = true
	}
	if !refused {
		t.Fatal("no query was refused")
	}
}

// TestShardedMaintainerQuarantineRebuild: a permanently failed shard is
// quarantined, served around, RCU-rebuilt in the background, and returned to
// service — while the other shards keep answering.
func TestShardedMaintainerQuarantineRebuild(t *testing.T) {
	w := buildTieWorld(t, 1203, 16, 8)
	cfg := Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6}
	specs, owner, local := buildShardSpecs(t, w, 3, shard.RoundRobin)
	m, err := NewShardedMaintainer(specs, owner, local, w.prof, candFunc(w.ix), 10, cfg, MaintainOptions{WindowSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Sharded().SetDegradedOK(true)
	const bad = 1
	const k = 10

	// Warm the drift windows so the quarantine rebuild has a workload.
	for _, q := range w.qtest {
		if _, _, err := m.SearchCtx(context.Background(), q, k); err != nil {
			t.Fatal(err)
		}
	}

	failAllReads(specs[bad].PF)
	sawDegraded := false
	for _, q := range w.qtest {
		_, st, err := m.SearchCtx(context.Background(), q, k)
		if err != nil {
			t.Fatalf("degraded maintained serving must not fail: %v", err)
		}
		if st.Degraded {
			sawDegraded = true
			break
		}
	}
	if !sawDegraded {
		t.Fatal("no query ever hit the failed shard")
	}
	// The storage "recovers" (e.g. the operator replaced the disk); the
	// quarantine rebuild brings the shard back.
	specs[bad].PF.SetFaults(nil)

	deadline := time.Now().Add(5 * time.Second)
	for m.Sharded().Quarantined(bad) {
		if time.Now().After(deadline) {
			t.Fatal("quarantine rebuild never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := m.Stats(); st.Quarantines < 1 {
		t.Fatalf("Stats().Quarantines = %d, want >= 1", st.Quarantines)
	}
	if per := m.ShardStats(); per[bad].Quarantines < 1 {
		t.Fatalf("shard %d Quarantines = %d, want >= 1", bad, per[bad].Quarantines)
	}

	// Back in service: full-results, unflagged queries again.
	for qi, q := range w.qtest[:8] {
		ids, st, err := m.SearchCtx(context.Background(), q, k)
		if err != nil {
			t.Fatalf("q%d after rebuild: %v", qi, err)
		}
		if st.Degraded {
			t.Fatalf("q%d still degraded after rebuild", qi)
		}
		checkKNN(t, w, q, ids, k)
	}
}

// TestDegradedShardServingRace hammers concurrent degraded searches against
// fault toggling and quarantine rebuilds; run under -race in CI.
func TestDegradedShardServingRace(t *testing.T) {
	w := buildTieWorld(t, 1203, 16, 9)
	cfg := Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6}
	specs, owner, local := buildShardSpecs(t, w, 3, shard.RoundRobin)
	m, err := NewShardedMaintainer(specs, owner, local, w.prof, candFunc(w.ix), 10, cfg, MaintainOptions{WindowSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	m.Sharded().SetDegradedOK(true)
	const bad = 1

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := w.qtest[(g*7+i)%len(w.qtest)]
				if i%3 == 0 {
					if _, _, err := m.SearchBatchCtx(context.Background(), w.qtest[:2], 5); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					continue
				}
				if _, _, err := m.SearchCtx(context.Background(), q, 10); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(g)
	}
	// Fault toggler: break and repair the shard's storage repeatedly while
	// searches and quarantine rebuilds are in flight.
	for i := 0; i < 10; i++ {
		failAllReads(specs[bad].PF)
		time.Sleep(10 * time.Millisecond)
		specs[bad].PF.SetFaults(nil)
		m.Sharded().ClearQuarantine(bad) // repair may race a rebuild: both legal
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	m.Close()
	_ = owner
}

// TestChaosDegradedServing is the CI chaos-matrix entry point: transient
// faults at CHAOS_FAULT_P across CHAOS_SHARDS shards, retry enabled — every
// query must succeed with results identical to the fault-free run.
func TestChaosDegradedServing(t *testing.T) {
	p := 0.03
	if v := os.Getenv("CHAOS_FAULT_P"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("CHAOS_FAULT_P: %v", err)
		}
		p = f
	}
	shards := 3
	if v := os.Getenv("CHAOS_SHARDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CHAOS_SHARDS: %v", err)
		}
		shards = n
	}
	if p > 0.05 {
		t.Fatalf("CHAOS_FAULT_P %v exceeds the acceptance bound 0.05", p)
	}

	w := buildTieWorld(t, 1203, 16, 10)
	cfg := Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6}
	specs, owner, local := buildShardSpecs(t, w, shards, shard.RoundRobin)
	se, err := NewShardedEngine(specs, owner, local, w.prof, candFunc(w.ix), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10

	// Fault-free baseline.
	type baseline struct {
		ids []int
		st  QueryStats
	}
	base := make([]baseline, len(w.qtest))
	for qi, q := range w.qtest {
		ids, st, err := se.SearchCtx(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		base[qi] = baseline{ids: ids, st: st}
	}

	se.SetRetry(disk.RetryPolicy{MaxRetries: 30, Backoff: 10 * time.Microsecond, MaxBackoff: 200 * time.Microsecond})
	for s, spec := range specs {
		spec.PF.SetFaults(disk.NewInjector(disk.FaultPolicy{Seed: int64(100 + s), Rules: []disk.FaultRule{
			{Kind: disk.FaultError, FirstPage: 0, LastPage: -1, Probability: p, Transient: true},
		}}))
	}
	for qi, q := range w.qtest {
		ids, st, err := se.SearchCtx(context.Background(), q, k)
		if err != nil {
			t.Fatalf("q%d: transient chaos at p=%v must not fail: %v", qi, p, err)
		}
		if st.Degraded {
			t.Fatalf("q%d: transient faults must never degrade", qi)
		}
		if !sameIDs(ids, base[qi].ids) {
			t.Fatalf("q%d: ids diverged under chaos: %v != %v", qi, ids, base[qi].ids)
		}
		if st.PageReads != base[qi].st.PageReads {
			t.Fatalf("q%d: PageReads %d != clean %d (retries must stay out of logical I/O)",
				qi, st.PageReads, base[qi].st.PageReads)
		}
	}
	ds := se.DiskStats()
	if p > 0 && ds.Retries == 0 {
		t.Logf("chaos run injected no faults (p=%v) — harmless but uninformative", p)
	}
	if ds.PermanentErrors != 0 {
		t.Fatalf("chaos run produced %d permanent errors, injected only transient", ds.PermanentErrors)
	}
}
