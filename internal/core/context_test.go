package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// fuseCtx is a context whose Err trips after a fixed number of polls — a
// deterministic stand-in for "the client disconnected mid-search" that lets
// the tests walk the cancellation point through every stage of Algorithm 1
// without sleeping.
type fuseCtx struct {
	context.Context
	polls atomic.Int64
	fuse  int64
}

func newFuseCtx(fuse int64) *fuseCtx {
	return &fuseCtx{Context: context.Background(), fuse: fuse}
}

func (c *fuseCtx) Err() error {
	if c.polls.Add(1) > c.fuse {
		return context.Canceled
	}
	return nil
}

// TestEngineCanceledContextAbandonsSearch is the acceptance test for the
// request-lifecycle tentpole: a canceled context abandons the search before
// refinement I/O. It walks the fuse through every context poll of one
// query; at each trip point the search must fail with context.Canceled, and
// whenever the engine has not yet entered Phase 3 it must not have charged
// a single fetch or page read.
func TestEngineCanceledContextAbandonsSearch(t *testing.T) {
	w := buildWorld(t, 1500, 12, 7)
	// NoCache: every surviving candidate goes to refinement, so the
	// before-Phase-3 cancellation point is always load-bearing.
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: NoCache})
	if err != nil {
		t.Fatal(err)
	}
	q := w.qtest[0]

	// Pre-canceled context: rejected before any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, st, err := eng.SearchCtx(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	} else if st.Candidates != 0 || st.Fetched != 0 {
		t.Fatalf("pre-canceled ctx did work: %+v", st)
	}

	// Reference run: how much refinement I/O a complete query pays.
	_, ref, err := eng.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Fetched == 0 {
		t.Fatal("reference query fetched nothing; fixture cannot exercise refinement")
	}

	sawPreRefinementCancel := false
	for fuse := int64(1); ; fuse++ {
		ctx := newFuseCtx(fuse)
		_, st, err := eng.SearchCtx(ctx, q, 5)
		if err == nil {
			if st.Fetched != ref.Fetched {
				t.Fatalf("fuse %d: completed search fetched %d, reference %d", fuse, st.Fetched, ref.Fetched)
			}
			break // fuse outlived the query: cancellation never fired
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fuse %d: err = %v, want context.Canceled", fuse, err)
		}
		// Once candidates were reduced but nothing was fetched, the search
		// died between Phase 2 and the first refinement fetch — the
		// disconnected client paid no I/O.
		if st.Remaining > 0 && st.Fetched == 0 {
			sawPreRefinementCancel = true
		}
		if st.Fetched > ref.Fetched {
			t.Fatalf("fuse %d: canceled search fetched %d > reference %d", fuse, st.Fetched, ref.Fetched)
		}
		if fuse > 1_000_000 {
			t.Fatal("fuse never outlived the query")
		}
	}
	if !sawPreRefinementCancel {
		t.Fatal("no fuse position abandoned the search after reduction but before refinement I/O")
	}

	// The engine must be unharmed by abandoned queries (pooled scratch not
	// poisoned): a normal search still returns k results.
	ids, _, err := eng.Search(q, 5)
	if err != nil || len(ids) != 5 {
		t.Fatalf("post-cancel search: ids=%v err=%v", ids, err)
	}
}

// TestEngineParallelReduceCanceled drives the fan-out Phase 2 with a
// pre-tripped context and checks the parallel path also reports the
// cancellation instead of swallowing it.
func TestEngineParallelReduceCanceled(t *testing.T) {
	w := buildWorld(t, 1500, 12, 11)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
		Method: HCO, CacheBytes: 64 << 10, Tau: 6,
		ParallelReduceThreshold: 1, // force fan-out regardless of |C(q)|
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fuse of 2: the entry check and one more poll pass, then every worker
	// sees a dead context.
	_, _, err = eng.SearchCtx(newFuseCtx(2), w.qtest[0], 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel reduce: err = %v, want context.Canceled", err)
	}
}

func TestTreeEngineCanceledContext(t *testing.T) {
	w := buildTreeWorld(t, "idistance", 1200, 10, 23)
	eng, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 10, TreeConfig{
		Method: NoCache, // every visited leaf is a disk load
	})
	if err != nil {
		t.Fatal(err)
	}
	q := w.qtest[0]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, st, err := eng.SearchCtx(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	} else if st.Fetched != 0 || st.PageReads != 0 {
		t.Fatalf("pre-canceled ctx charged I/O: %+v", st)
	}

	_, ref, err := eng.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ref.PageReads == 0 {
		t.Fatal("reference tree query read no pages; fixture cannot exercise I/O abandonment")
	}
	for fuse := int64(1); ; fuse++ {
		_, st, err := eng.SearchCtx(newFuseCtx(fuse), q, 5)
		if err == nil {
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fuse %d: err = %v, want context.Canceled", fuse, err)
		}
		if st.PageReads > ref.PageReads {
			t.Fatalf("fuse %d: canceled search read %d pages > reference %d", fuse, st.PageReads, ref.PageReads)
		}
		if fuse > 1_000_000 {
			t.Fatal("fuse never outlived the query")
		}
	}

	ids, _, err := eng.Search(q, 5)
	if err != nil || len(ids) != 5 {
		t.Fatalf("post-cancel search: ids=%v err=%v", ids, err)
	}
}

func TestMaintainerContextPassThroughAndClose(t *testing.T) {
	ds, pf, cands, poolA, _ := driftWorld(t)
	gate := make(chan struct{})
	m, err := NewMaintainer(pf, ds, cands, poolA[:50], 5, Config{
		Method: Exact, CacheBytes: 1 << 18,
	}, MaintainOptions{WindowSize: 16, RebuildGate: gate})
	if err != nil {
		t.Fatal(err)
	}

	// Cancellation flows through to the serving engine.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := m.SearchCtx(ctx, poolA[0], 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("maintainer ctx pass-through: err = %v", err)
	}

	// Seed the window and park a rebuild on the gate (the MaintainOptions
	// seam, usable from outside the package).
	for i := 0; i < 20; i++ {
		if _, _, err := m.Search(poolA[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	if !m.RebuildAsync(5) {
		t.Fatal("RebuildAsync refused with a populated window")
	}

	// Close must wait for the gated rebuild, not abandon it.
	done := make(chan struct{})
	go func() {
		m.Close()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Close returned while a rebuild was still parked on the gate")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned after the rebuild was released")
	}
	if st := m.Stats(); st.Rebuilds != 1 || st.RebuildInFlight {
		t.Fatalf("stats after Close: %+v", st)
	}

	// A closed maintainer refuses new rebuilds but still serves.
	if m.RebuildAsync(5) {
		t.Fatal("RebuildAsync accepted after Close")
	}
	if _, _, err := m.Search(poolA[0], 5); err != nil {
		t.Fatal(err)
	}
	m.Close() // idempotent
}
