// ebc-gen generates synthetic datasets (EBDS files) and query logs.
// Examples:
//
//	ebc-gen -preset sogou -n 8000 -o sogou.ebds
//	ebc-gen -n 50000 -dim 64 -clusters 20 -skew 2 -o custom.ebds
package main

import (
	"flag"
	"fmt"
	"os"

	"exploitbit"
	"exploitbit/internal/cliutil"
)

// presetDim mirrors the preset generators' dimensionalities so -size can be
// translated to a point count before generating.
var presetDim = map[string]int{"nuswide": 150, "imgnet": 150, "sogou": 960}

func main() {
	var (
		preset    = flag.String("preset", "", "dataset preset: nuswide | imgnet | sogou (overrides shape flags)")
		n         = flag.Int("n", 10000, "number of points")
		size      = flag.String("size", "", "target raw dataset size (e.g. 64MiB); overrides -n")
		dim       = flag.Int("dim", 32, "dimensionality")
		clusters  = flag.Int("clusters", 16, "mixture components")
		std       = flag.Float64("std", 0.05, "within-cluster stddev")
		skew      = flag.Float64("skew", 1.5, "marginal skew exponent")
		coherence = flag.Float64("coherence", 0.5, "per-cluster value coherence [0,1]")
		ndom      = flag.Int("ndom", 1024, "discrete value-domain size")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("o", "dataset.ebds", "output file")
	)
	flag.Parse()

	if *size != "" {
		bytes, err := cliutil.ParseBytes(*size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebc-gen: bad -size:", err)
			os.Exit(2)
		}
		d := *dim
		if pd, ok := presetDim[*preset]; ok {
			d = pd
		}
		*n = max(1, int(bytes/int64(4*d)))
	}

	var ds *exploitbit.Dataset
	switch *preset {
	case "nuswide":
		ds = exploitbit.NUSWideLike(*n, *seed)
	case "imgnet":
		ds = exploitbit.ImgNetLike(*n, *seed)
	case "sogou":
		ds = exploitbit.SogouLike(*n, *seed)
	case "":
		ds = exploitbit.Generate(exploitbit.DatasetConfig{
			Name: "custom", N: *n, Dim: *dim, Clusters: *clusters,
			Std: *std, Skew: *skew, Ndom: *ndom, Seed: *seed, ValueCoherence: *coherence,
		})
	default:
		fmt.Fprintf(os.Stderr, "ebc-gen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if err := ds.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "ebc-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %q, %d points x %d dims (%d MB raw)\n",
		*out, ds.Name, ds.Len(), ds.Dim, int64(ds.Len())*int64(ds.PointSize())>>20)
}
