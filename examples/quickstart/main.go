// Quickstart: generate a dataset and a skewed query log, build the cached
// kNN engine, and compare NO-CACHE vs HC-O on the same queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"exploitbit"
)

func main() {
	// A 10K x 64-d clustered dataset standing in for image features.
	ds := exploitbit.Generate(exploitbit.DatasetConfig{
		Name: "demo", N: 10000, Dim: 64, Clusters: 20,
		Std: 0.05, Skew: 1.8, Ndom: 1024, Seed: 1, ValueCoherence: 0.6,
	})

	// A query log with Zipf temporal locality: 500 distinct queries, 3000
	// arrivals; the last 20 arrivals are the test set.
	qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 500, Length: 3020, ZipfS: 1.3, Perturb: 0.005, Seed: 2,
	})
	wl, qtest := qlog.Split(20)

	// Open a system: writes the point file, builds the C2LSH index, and
	// profiles the workload.
	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Cache budget: 25% of the data file. The cost model picks τ.
	budget := int64(ds.Len()) * int64(ds.PointSize()) / 4
	tau := sys.OptimalTau(budget)
	fmt.Printf("dataset: %d x %d-d, cache %d KiB, auto-tuned tau = %d\n\n",
		ds.Len(), ds.Dim, budget>>10, tau)

	for _, method := range []exploitbit.Method{exploitbit.NoCache, exploitbit.Exact, exploitbit.HCO} {
		eng, err := sys.Engine(method, budget, tau)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range qtest {
			if _, _, err := eng.Search(q, 10); err != nil {
				log.Fatal(err)
			}
		}
		agg := eng.Aggregate()
		fmt.Printf("%-8s  refinement I/O %6.1f points/query   response %v/query\n",
			method, agg.AvgIO(), agg.AvgResponse().Round(100_000))
	}

	// Same results, radically less I/O — that is the paper's whole claim.
	eng, _ := sys.Engine(exploitbit.HCO, budget, tau)
	ids, st, err := eng.Search(qtest[0], 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-NN of the first test query: %v  (candidates %d, fetched %d)\n",
		ids, st.Candidates, st.Fetched)
}
