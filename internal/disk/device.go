// Package disk is the storage substrate. It models the paper's experimental
// setup — datasets and index leaf pages resident on a hard disk with the OS
// cache disabled, 4 KB blocks — while remaining deterministic on any machine:
// every physical page read is counted and charged a configurable simulated
// seek latency Tio, so the paper's refinement-cost model
// Trefine ≈ Tio · Crefine (Section 2.2) can be reported exactly, alongside
// real wall-clock time.
package disk

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// DefaultPageSize matches the paper's 4 KB block size.
const DefaultPageSize = 4096

// DefaultTio is the simulated cost of one random page read. 5 ms is a
// conventional HDD seek+rotational latency; with candidate sets of ~100
// points it reproduces the paper's ~0.5 s EXACT refinement times.
const DefaultTio = 5 * time.Millisecond

// Stats is a snapshot of a device's I/O counters. PageReads counts logical
// page reads (one per ReadPage call, however many physical attempts it
// took), so per-query I/O accounting stays exact under retries; Retries and
// the error counters expose the fault-handling activity separately.
type Stats struct {
	PageReads  int64
	PageWrites int64

	// Retries counts extra physical attempts spent recovering transient
	// faults; TransientErrors/PermanentErrors count failed attempts by class.
	Retries         int64
	TransientErrors int64
	PermanentErrors int64
}

// SimulatedIO returns the simulated I/O time for s under latency tio.
func (s Stats) SimulatedIO(tio time.Duration) time.Duration {
	return time.Duration(s.PageReads) * tio
}

// Device is a page-granular file. All reads go through ReadPage so that the
// I/O accounting is airtight. A Device is safe for concurrent use.
type Device struct {
	f        *os.File
	pageSize int
	tio      time.Duration

	reads  atomic.Int64
	writes atomic.Int64
	pages  atomic.Int64 // high-water page count

	retries       atomic.Int64
	transientErrs atomic.Int64
	permanentErrs atomic.Int64

	faults atomic.Pointer[Injector]    // nil: no fault injection
	retry  atomic.Pointer[RetryPolicy] // nil: fail on first error
}

// Create creates (truncating) a page device at path.
func Create(path string, pageSize int, tio time.Duration) (*Device, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("disk: page size %d too small", pageSize)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	return &Device{f: f, pageSize: pageSize, tio: tio}, nil
}

// Open opens an existing device created with the same page size.
func Open(path string, pageSize int, tio time.Duration) (*Device, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("disk: page size %d too small", pageSize)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %w", err)
	}
	d := &Device{f: f, pageSize: pageSize, tio: tio}
	d.pages.Store((st.Size() + int64(pageSize) - 1) / int64(pageSize))
	return d, nil
}

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// Tio returns the simulated per-read latency.
func (d *Device) Tio() time.Duration { return d.tio }

// NumPages returns the number of pages ever written.
func (d *Device) NumPages() int { return int(d.pages.Load()) }

// SetFaults installs (or, with nil, removes) a fault injector on the
// device's physical read path.
func (d *Device) SetFaults(in *Injector) { d.faults.Store(in) }

// SetRetry installs the transient-fault retry policy. MaxRetries < 1
// disables retrying.
func (d *Device) SetRetry(rp RetryPolicy) {
	if rp.MaxRetries < 1 {
		d.retry.Store(nil)
		return
	}
	rp = rp.withDefaults()
	d.retry.Store(&rp)
}

// RetryPolicy returns the installed retry policy (zero value when none).
func (d *Device) RetryPolicy() RetryPolicy {
	if rp := d.retry.Load(); rp != nil {
		return *rp
	}
	return RetryPolicy{}
}

// ReadPage reads page n into buf (len >= PageSize) and counts one logical
// read; see ReadPageCtx.
func (d *Device) ReadPage(n int, buf []byte) error {
	return d.ReadPageCtx(context.Background(), n, buf)
}

// ReadPageCtx is ReadPage under a request context. A short read at the end
// of the file (io.EOF with a partial count) is a legitimate tail page and is
// zero-padded; any other partial or failed read surfaces as a *PageError —
// never as silently zero-filled data. Transient faults are retried per the
// installed RetryPolicy with exponential backoff; a canceled ctx stops
// retrying immediately and returns its error.
func (d *Device) ReadPageCtx(ctx context.Context, n int, buf []byte) error {
	if len(buf) < d.pageSize {
		return fmt.Errorf("disk: buffer %d smaller than page %d", len(buf), d.pageSize)
	}
	if n < 0 || n >= d.NumPages() {
		return fmt.Errorf("disk: page %d out of range [0,%d)", n, d.NumPages())
	}
	d.reads.Add(1)
	rp := d.retry.Load()
	for attempt := 0; ; attempt++ {
		err := d.readPageOnce(n, buf)
		if err == nil {
			return nil
		}
		var pe *PageError
		if !errors.As(err, &pe) {
			pe = &PageError{Page: n, Op: "read", Err: err}
			err = pe
		}
		if pe.Transient {
			d.transientErrs.Add(1)
		} else {
			d.permanentErrs.Add(1)
		}
		if !pe.Transient || rp == nil || attempt >= rp.MaxRetries {
			return err
		}
		if cerr := sleepCtx(ctx, rp.delay(n, attempt)); cerr != nil {
			return cerr
		}
		d.retries.Add(1)
	}
}

// readPageOnce is one physical read attempt: fault injection first, then the
// real ReadAt, with the EOF-only zero-pad rule applied to the outcome.
func (d *Device) readPageOnce(n int, buf []byte) error {
	off := int64(n) * int64(d.pageSize)
	if in := d.faults.Load(); in != nil {
		if r := in.match(n); r != nil {
			switch r.Kind {
			case FaultError:
				return &PageError{Page: n, Op: "read", Transient: r.Transient, Err: ErrInjected}
			case FaultTorn:
				// Deliver a prefix of the page, scribble the rest, and fail
				// with a non-EOF error: the classic mid-file partial read.
				torn := r.TornBytes
				if torn <= 0 || torn >= d.pageSize {
					torn = d.pageSize / 2
				}
				d.f.ReadAt(buf[:torn], off)
				for i := torn; i < d.pageSize; i++ {
					buf[i] = 0xEB
				}
				return &PageError{Page: n, Op: "read", Transient: r.Transient, Err: ErrTornRead}
			case FaultLatency:
				time.Sleep(r.Latency)
			}
		}
	}
	got, err := d.f.ReadAt(buf[:d.pageSize], off)
	if err != nil {
		if errors.Is(err, io.EOF) && got > 0 {
			// Tail page shorter than pageSize: pad with zeros. Only an EOF
			// partial read is a legitimate short page — any other mid-file
			// short read means lost data and must propagate.
			for i := got; i < d.pageSize; i++ {
				buf[i] = 0
			}
			return nil
		}
		return &PageError{Page: n, Op: "read", Err: err}
	}
	return nil
}

// WritePage writes buf (exactly PageSize bytes) as page n.
func (d *Device) WritePage(n int, buf []byte) error {
	if len(buf) != d.pageSize {
		return fmt.Errorf("disk: write buffer %d != page size %d", len(buf), d.pageSize)
	}
	if n < 0 {
		return fmt.Errorf("disk: negative page %d", n)
	}
	d.writes.Add(1)
	if _, err := d.f.WriteAt(buf, int64(n)*int64(d.pageSize)); err != nil {
		d.permanentErrs.Add(1)
		return &PageError{Page: n, Op: "write", Err: err}
	}
	for {
		cur := d.pages.Load()
		if int64(n) < cur {
			return nil
		}
		if d.pages.CompareAndSwap(cur, int64(n)+1) {
			return nil
		}
	}
}

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats {
	return Stats{
		PageReads:       d.reads.Load(),
		PageWrites:      d.writes.Load(),
		Retries:         d.retries.Load(),
		TransientErrors: d.transientErrs.Load(),
		PermanentErrors: d.permanentErrs.Load(),
	}
}

// ResetStats zeroes the counters (typically between queries or experiments).
func (d *Device) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.retries.Store(0)
	d.transientErrs.Store(0)
	d.permanentErrs.Store(0)
}

// Close closes the underlying file.
func (d *Device) Close() error { return d.f.Close() }
