package multistep

import (
	"math"
	"math/rand"
	"testing"
)

// sqCands squares the bounds of cands — how the engine hands squared-space
// candidates to SearchSq.
func sqCands(cands []Candidate) []Candidate {
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = Candidate{ID: c.ID, LB: c.LB * c.LB, UB: c.UB * c.UB}
	}
	return out
}

// TestSearchSqMatchesSearch is the squared-space equivalence property: the
// same candidates with squared bounds must yield the same result ids, the
// same distances (within sqrt rounding) and the same fetch count as the
// reference Search.
func TestSearchSqMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var sc Scratch
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(120)
		k := 1 + rng.Intn(12)
		pts, fetch, fetches := testWorld(rng, n, 8)
		q := make([]float32, 8)
		for j := range q {
			q[j] = rng.Float32()
		}
		ids := rng.Perm(n)[:1+rng.Intn(n)]
		cands := looseBounds(rng, q, pts, ids)

		want, wantFetched, err := Search(q, cands, k, fetch)
		if err != nil {
			t.Fatal(err)
		}
		*fetches = 0
		got, gotFetched, err := sc.SearchSq(q, sqCands(cands), k, fetch, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotFetched != wantFetched {
			t.Fatalf("trial %d: SearchSq fetched %d, Search fetched %d", trial, gotFetched, wantFetched)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d rank %d: id %d, want %d", trial, i, got[i].ID, want[i].ID)
			}
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
				t.Fatalf("trial %d rank %d: dist %v, want %v", trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// TestSearchSqAllocationFree verifies the pooled-scratch contract: with a
// warm Scratch and a reused dst buffer, SearchSq performs zero allocations.
func TestSearchSqAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts, fetch, _ := testWorld(rng, 80, 8)
	q := make([]float32, 8)
	for j := range q {
		q[j] = rng.Float32()
	}
	ids := rng.Perm(80)[:50]
	cands := sqCands(looseBounds(rng, q, pts, ids))

	var sc Scratch
	dst := make([]Result, 0, 10)
	if _, _, err := sc.SearchSq(q, cands, 10, fetch, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := sc.SearchSq(q, cands, 10, fetch, dst[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm SearchSq allocated %v/op", allocs)
	}
}

func TestSearchSqZeroK(t *testing.T) {
	var sc Scratch
	got, fetched, err := sc.SearchSq(nil, nil, 0, nil, nil)
	if err != nil || fetched != 0 || len(got) != 0 {
		t.Fatalf("k=0: got %v, fetched %d, err %v", got, fetched, err)
	}
}
