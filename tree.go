package exploitbit

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"exploitbit/internal/core"
	"exploitbit/internal/disk"
	"exploitbit/internal/idistance"
	"exploitbit/internal/leafstore"
	"exploitbit/internal/rtree"
	"exploitbit/internal/vptree"
)

// TreeKind selects an exact tree-based index for the Section 3.6.1
// adaptation (Figure 16).
type TreeKind string

// Available tree indexes.
const (
	IDistance TreeKind = "idistance"
	VPTree    TreeKind = "vptree"
	RTree     TreeKind = "rtree"
)

// TreeOptions configures OpenTree.
type TreeOptions struct {
	// Dir for the leaf file (default: fresh temp dir, removed on Close).
	Dir string
	// PageSize in bytes (default 4096).
	PageSize int
	// Tio simulated latency per page read (default 5 ms).
	Tio time.Duration
	// LeafCapacity bounds points per leaf (default: one page's worth).
	LeafCapacity int
	// Refs is iDistance's reference-point count (default 16).
	Refs int
	// WorkloadK profiles the workload (default 10).
	WorkloadK int
	// Seed drives index construction.
	Seed int64
}

// TreeSystem owns a tree index, its disk-resident leaves, and the workload,
// and builds cached tree engines over them.
type TreeSystem struct {
	DS    *Dataset
	Index core.LeafIndex
	Store *leafstore.Store

	wl      [][]float32
	k       int
	dir     string
	ownsDir bool
}

// OpenTree builds a tree index of the given kind over ds, serializes its
// leaf nodes to disk, and remembers the workload for cache construction.
func OpenTree(ds *Dataset, kind TreeKind, wl [][]float32, opt TreeOptions) (*TreeSystem, error) {
	if opt.PageSize == 0 {
		opt.PageSize = disk.DefaultPageSize
	}
	if opt.Tio == 0 {
		opt.Tio = disk.DefaultTio
	}
	if opt.WorkloadK == 0 {
		opt.WorkloadK = 10
	}
	ts := &TreeSystem{DS: ds, wl: wl, k: opt.WorkloadK, dir: opt.Dir}
	if ts.dir == "" {
		dir, err := os.MkdirTemp("", "exploitbit-tree-*")
		if err != nil {
			return nil, fmt.Errorf("exploitbit: %w", err)
		}
		ts.dir = dir
		ts.ownsDir = true
	}

	switch kind {
	case IDistance:
		ts.Index = idistance.Build(ds, idistance.Params{
			Refs: opt.Refs, LeafCapacity: opt.LeafCapacity, Seed: opt.Seed,
		})
	case VPTree:
		ts.Index = vptree.Build(ds, vptree.Params{LeafCapacity: opt.LeafCapacity, Seed: opt.Seed})
	case RTree:
		leafCap := opt.LeafCapacity
		if leafCap < 1 {
			leafCap = opt.PageSize / (4 * ds.Dim)
			if leafCap < 1 {
				leafCap = 1
			}
		}
		ts.Index = rtree.BuildSTR(ds, (ds.Len()+leafCap-1)/leafCap, 2)
	default:
		if ts.ownsDir {
			os.RemoveAll(ts.dir)
		}
		return nil, fmt.Errorf("exploitbit: unknown tree kind %q", kind)
	}

	store, err := leafstore.Build(filepath.Join(ts.dir, string(kind)+".leaves"), ds, ts.Index.Leaves(), opt.PageSize, opt.Tio)
	if err != nil {
		if ts.ownsDir {
			os.RemoveAll(ts.dir)
		}
		return nil, err
	}
	ts.Store = store
	return ts, nil
}

// Engine builds a cached tree engine. Method must be NoCache, Exact, or one
// of the global HC-* histogram methods.
func (ts *TreeSystem) Engine(method Method, cacheBytes int64, tau int) (*TreeEngine, error) {
	return ts.EngineWith(core.TreeConfig{Method: method, CacheBytes: cacheBytes, Tau: tau})
}

// EngineWith builds a cached tree engine from a full TreeConfig, exposing the
// knobs Engine defaults (LUT gating, smoothing).
func (ts *TreeSystem) EngineWith(cfg core.TreeConfig) (*TreeEngine, error) {
	return core.NewTreeEngine(ts.DS, ts.Index, ts.Store, ts.wl, ts.k, cfg)
}

// Close releases the leaf store (and the temp dir when OpenTree created one).
func (ts *TreeSystem) Close() error {
	err := ts.Store.Close()
	if ts.ownsDir {
		if rmErr := os.RemoveAll(ts.dir); err == nil {
			err = rmErr
		}
	}
	return err
}
