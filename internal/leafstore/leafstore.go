// Package leafstore stores the leaf nodes of tree-based indexes on disk.
// Section 3.6.1 splits a tree into in-memory non-leaf structure (the index
// I) and disk-resident leaf nodes (the dataset P); fetching a leaf node by
// block identifier is the I/O unit of tree-based kNN search, and the paper's
// cache intercepts exactly those fetches.
package leafstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
)

// Store is a disk file of serialized leaf nodes. Each leaf occupies whole
// pages; loading a leaf charges its page count.
type Store struct {
	dev *disk.Device
	dim int

	startPage []int32   // first page of each leaf
	numPages  []int32   // pages per leaf
	leafIDs   [][]int32 // point ids per leaf (in-memory directory)
}

// Build serializes leaves (point-id lists into ds) to path. Leaf record
// layout: count uint32, then count × (id uint32, dim float32 coordinates).
func Build(path string, ds *dataset.Dataset, leaves [][]int32, pageSize int, tio time.Duration) (*Store, error) {
	dev, err := disk.Create(path, pageSize, tio)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dev:       dev,
		dim:       ds.Dim,
		startPage: make([]int32, len(leaves)),
		numPages:  make([]int32, len(leaves)),
		leafIDs:   make([][]int32, len(leaves)),
	}
	rec := 4 + 4*ds.Dim // per-point bytes
	page := 0
	for li, ids := range leaves {
		s.leafIDs[li] = append([]int32(nil), ids...)
		bytes := 4 + rec*len(ids)
		np := (bytes + pageSize - 1) / pageSize
		buf := make([]byte, np*pageSize)
		le := binary.LittleEndian
		le.PutUint32(buf, uint32(len(ids)))
		off := 4
		for _, id := range ids {
			le.PutUint32(buf[off:], uint32(id))
			off += 4
			for _, v := range ds.Point(int(id)) {
				le.PutUint32(buf[off:], math.Float32bits(v))
				off += 4
			}
		}
		for p := 0; p < np; p++ {
			if err := dev.WritePage(page+p, buf[p*pageSize:(p+1)*pageSize]); err != nil {
				dev.Close()
				return nil, err
			}
		}
		s.startPage[li] = int32(page)
		s.numPages[li] = int32(np)
		page += np
	}
	dev.ResetStats()
	return s, nil
}

// NumLeaves returns the number of stored leaf nodes.
func (s *Store) NumLeaves() int { return len(s.startPage) }

// Dim returns the point dimensionality.
func (s *Store) Dim() int { return s.dim }

// LeafIDs returns the point identifiers of leaf li from the in-memory
// directory (no I/O). The slice must not be modified.
func (s *Store) LeafIDs(li int) []int32 { return s.leafIDs[li] }

// LeafPages returns how many disk pages leaf li occupies (its fetch cost).
func (s *Store) LeafPages(li int) int { return int(s.numPages[li]) }

// Load reads leaf li from disk, charging its pages, and returns the point
// ids and vectors.
func (s *Store) Load(li int) (ids []int32, pts [][]float32, err error) {
	if li < 0 || li >= len(s.startPage) {
		return nil, nil, fmt.Errorf("leafstore: leaf %d out of range [0,%d)", li, len(s.startPage))
	}
	ps := s.dev.PageSize()
	np := int(s.numPages[li])
	buf := make([]byte, np*ps)
	for p := 0; p < np; p++ {
		if err := s.dev.ReadPage(int(s.startPage[li])+p, buf[p*ps:(p+1)*ps]); err != nil {
			return nil, nil, err
		}
	}
	le := binary.LittleEndian
	count := int(le.Uint32(buf))
	ids = make([]int32, count)
	pts = make([][]float32, count)
	off := 4
	for i := 0; i < count; i++ {
		ids[i] = int32(le.Uint32(buf[off:]))
		off += 4
		p := make([]float32, s.dim)
		for j := range p {
			p[j] = math.Float32frombits(le.Uint32(buf[off:]))
			off += 4
		}
		pts[i] = p
	}
	return ids, pts, nil
}

// Stats exposes the device counters.
func (s *Store) Stats() disk.Stats { return s.dev.Stats() }

// ResetStats zeroes the device counters.
func (s *Store) ResetStats() { s.dev.ResetStats() }

// Tio returns the simulated per-page latency.
func (s *Store) Tio() time.Duration { return s.dev.Tio() }

// Close closes the backing device.
func (s *Store) Close() error { return s.dev.Close() }
