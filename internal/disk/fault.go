// Storage fault tolerance: typed page errors with a transient/permanent
// classification, deterministic fault injection, and bounded retry with
// exponential backoff. The whole refinement path of the paper lives on
// Trefine ≈ Tio·Crefine (Section 2.2), so this file is where a single flaky
// sector stops meaning a failed query: transient faults are retried with
// backoff, permanent ones surface as typed errors the engine and server can
// classify (retry vs. degrade vs. fail), and the injector makes every policy
// decision testable end-to-end without real broken hardware.
package disk

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// PageError is the typed error of every failed page operation: which page,
// which operation, and whether the failure is transient (worth retrying) or
// permanent (the page is gone until the file is rebuilt).
type PageError struct {
	Page      int
	Op        string // "read" or "write"
	Transient bool
	Err       error
}

func (e *PageError) Error() string {
	class := "permanent"
	if e.Transient {
		class = "transient"
	}
	return fmt.Sprintf("disk: %s page %d: %s (%s)", e.Op, e.Page, e.Err, class)
}

func (e *PageError) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) a transient PageError —
// the class worth retrying or answering with 503 + Retry-After.
func IsTransient(err error) bool {
	var pe *PageError
	return errors.As(err, &pe) && pe.Transient
}

// IsPermanent reports whether err is (or wraps) a permanent PageError —
// the class that justifies skipping a shard or quarantining a file.
func IsPermanent(err error) bool {
	var pe *PageError
	return errors.As(err, &pe) && !pe.Transient
}

// ErrInjected marks faults produced by an Injector; real device errors never
// wrap it, so tests can assert a failure came from the policy under test.
var ErrInjected = errors.New("injected fault")

// ErrTornRead marks an injected mid-file partial read: the device delivered
// a prefix of the page and then failed, leaving the tail of the buffer
// scribbled. ReadPage must propagate it — zero-padding here would silently
// corrupt refinement distances.
var ErrTornRead = fmt.Errorf("torn read: %w", ErrInjected)

// FaultKind selects what an injection rule does to a matching page read.
type FaultKind uint8

const (
	// FaultError fails the read outright (no bytes delivered).
	FaultError FaultKind = iota
	// FaultTorn delivers a prefix of the page, scribbles the rest, and fails
	// with a non-EOF error — the mid-file partial read a real disk produces.
	FaultTorn
	// FaultLatency delays the read by Latency, then lets it proceed.
	FaultLatency
)

// FaultRule is one injection rule. Rules are evaluated in order on every
// physical read attempt; the first rule that matches the page, passes its
// probability draw and has budget left fires.
type FaultRule struct {
	Kind FaultKind
	// FirstPage..LastPage is the inclusive page range the rule covers.
	// LastPage < 0 means "to the end of the device".
	FirstPage, LastPage int
	// Probability in (0,1) trips the rule on a seeded PRNG draw; 0 or ≥1
	// means "always".
	Probability float64
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
	// Transient classifies the injected error (FaultError/FaultTorn).
	Transient bool
	// Latency is the added delay (FaultLatency).
	Latency time.Duration
	// TornBytes is how many bytes a FaultTorn delivers before failing
	// (default: half a page).
	TornBytes int
}

// FaultPolicy is a seeded set of injection rules. The same policy and seed
// reproduce the same fault sequence for the same read sequence.
type FaultPolicy struct {
	Seed  int64
	Rules []FaultRule
}

// Injector applies a FaultPolicy to a device's physical reads. Safe for
// concurrent use; the PRNG and per-rule budgets are mutex-guarded.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []FaultRule
	fired []int

	injected atomic.Int64
}

// NewInjector compiles a policy into an injector.
func NewInjector(p FaultPolicy) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(p.Seed)),
		rules: append([]FaultRule(nil), p.Rules...),
		fired: make([]int, len(p.Rules)),
	}
}

// Injected returns how many faults have fired so far.
func (in *Injector) Injected() int64 { return in.injected.Load() }

// match returns the first rule armed for page n, consuming one unit of its
// budget, or nil.
func (in *Injector) match(n int) *FaultRule {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.rules {
		r := &in.rules[i]
		if n < r.FirstPage || (r.LastPage >= 0 && n > r.LastPage) {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && in.rng.Float64() >= r.Probability {
			continue
		}
		in.fired[i]++
		in.injected.Add(1)
		return r
	}
	return nil
}

// RetryPolicy bounds how a device retries transient page faults:
// MaxRetries extra attempts with exponential backoff from Backoff (default
// 1ms) capped at MaxBackoff (default 100ms), plus deterministic jitter up to
// +50% derived from the page and attempt — no shared PRNG on the read path.
type RetryPolicy struct {
	MaxRetries int
	Backoff    time.Duration
	MaxBackoff time.Duration
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Backoff <= 0 {
		rp.Backoff = time.Millisecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = 100 * time.Millisecond
	}
	return rp
}

// delay returns the backoff before retry attempt (0-based), with the
// deterministic jitter mixed in.
func (rp RetryPolicy) delay(page, attempt int) time.Duration {
	d := rp.Backoff << uint(attempt)
	if d > rp.MaxBackoff || d <= 0 {
		d = rp.MaxBackoff
	}
	// splitmix-style hash of (page, attempt) → jitter in [0, d/2).
	z := uint64(page)*0x9e3779b97f4a7c15 + uint64(attempt) + 0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0x94d049bb133111eb
	z ^= z >> 27
	return d + time.Duration(z%uint64(d/2+1))
}

// sleepCtx sleeps for d or until ctx is done, returning ctx.Err() in the
// latter case — a canceled query stops retrying immediately.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
