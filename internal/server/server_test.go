package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// fakeSearcher returns the first k ids and canned stats, or an error for a
// poisoned first coordinate.
type fakeSearcher struct{}

func (fakeSearcher) Search(q []float32, k int) ([]int, Stats, error) {
	if len(q) > 0 && q[0] == -1 {
		return nil, Stats{}, fmt.Errorf("injected failure")
	}
	ids := make([]int, k)
	for i := range ids {
		ids[i] = i
	}
	return ids, Stats{Candidates: 4 * k, Hits: 2 * k, Fetched: k}, nil
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(fakeSearcher{}, 3, 50))
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestSearchEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp, out := post(t, srv, `{"vector":[1,2,3],"k":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if ids := out["ids"].([]any); len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	st := out["stats"].(map[string]any)
	if st["candidates"].(float64) != 16 || st["cache_hits"].(float64) != 8 {
		t.Fatalf("stats = %v", st)
	}
}

func TestValidationAndErrors(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`{"vector":[1,2],"k":4}`, http.StatusBadRequest},             // wrong dim
		{`{"vector":[1,2,3],"k":0}`, http.StatusBadRequest},           // k too small
		{`{"vector":[1,2,3],"k":999}`, http.StatusBadRequest},         // k above cap
		{`{"vector":`, http.StatusBadRequest},                         // malformed
		{`{"vector":[-1,2,3],"k":4}`, http.StatusInternalServerError}, // engine failure
	}
	for _, c := range cases {
		resp, out := post(t, srv, c.body)
		if resp.StatusCode != c.code {
			t.Fatalf("%s: status %d, want %d (%v)", c.body, resp.StatusCode, c.code, out)
		}
		if out["error"] == "" {
			t.Fatalf("%s: missing error message", c.body)
		}
	}
}

func TestStatsAggregation(t *testing.T) {
	srv := newTestServer(t)
	for i := 0; i < 3; i++ {
		post(t, srv, `{"vector":[1,2,3],"k":5}`)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["queries"].(float64) != 3 {
		t.Fatalf("stats = %v", out)
	}
	if out["hit_ratio"].(float64) != 0.5 {
		t.Fatalf("hit ratio = %v", out["hit_ratio"])
	}
	if out["avg_fetched"].(float64) != 5 {
		t.Fatalf("avg fetched = %v", out["avg_fetched"])
	}
}
