package dbscan

import (
	"math/rand"
	"path/filepath"
	"testing"

	"exploitbit/internal/core"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/vafile"
	"exploitbit/internal/vec"
)

// blobs builds a dataset of well-separated Gaussian blobs and returns it
// with the ground-truth blob assignment.
func blobs(t testing.TB, perBlob, nBlobs, dim int, seed int64) (*dataset.Dataset, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := perBlob * nBlobs
	data := make([]float32, 0, n*dim)
	truth := make([]int, 0, n)
	for b := 0; b < nBlobs; b++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = float64(b)/float64(nBlobs) + 0.05
		}
		for i := 0; i < perBlob; i++ {
			for j := 0; j < dim; j++ {
				v := center[j] + rng.NormFloat64()*0.01
				data = append(data, float32(v))
			}
			truth = append(truth, b)
		}
	}
	ds := dataset.New("blobs", dim, data, vec.NewDomain(0, 1.2, 256))
	return ds, truth
}

func engineOver(t testing.TB, ds *dataset.Dataset, method core.Method) *core.Engine {
	t.Helper()
	pf, err := disk.BuildPointFile(filepath.Join(t.TempDir(), "pts"), ds, nil, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	ix := vafile.Build(ds, vafile.Params{BitsPerDim: 6})
	cands := func(q []float32, k int) ([]int, float64) {
		r := ix.Candidates(q, k)
		return r.IDs, r.Dmax
	}
	// The dataset itself is the probe workload.
	wl := make([][]float32, ds.Len())
	for i := range wl {
		wl[i] = ds.Point(i)
	}
	prof := core.BuildProfile(ds, cands, wl, 8)
	eng, err := core.NewEngine(pf, prof, cands, core.Config{Method: method, CacheBytes: 1 << 22, Tau: 7})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRecoversBlobs(t *testing.T) {
	ds, truth := blobs(t, 60, 4, 6, 51)
	eng := engineOver(t, ds, core.HCO)
	res, err := Run(eng, ds, 0.08, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 4 {
		t.Fatalf("found %d clusters, want 4", res.Clusters)
	}
	// Every blob must map to exactly one cluster label and vice versa.
	blobToCluster := map[int]int{}
	for i, lbl := range res.Labels {
		if lbl == Noise {
			continue
		}
		if prev, ok := blobToCluster[truth[i]]; ok && prev != lbl {
			t.Fatalf("blob %d split across clusters %d and %d", truth[i], prev, lbl)
		}
		blobToCluster[truth[i]] = lbl
	}
	if len(blobToCluster) != 4 {
		t.Fatalf("only %d blobs labeled", len(blobToCluster))
	}
	// Almost no noise on clean blobs.
	noise := 0
	for _, lbl := range res.Labels {
		if lbl == Noise {
			noise++
		}
	}
	if noise > ds.Len()/20 {
		t.Fatalf("%d/%d points labeled noise", noise, ds.Len())
	}
	if res.Cores == 0 {
		t.Fatal("no core points")
	}
}

func TestOutliersAreNoise(t *testing.T) {
	ds, _ := blobs(t, 50, 2, 4, 52)
	// Append far-away singletons.
	data := append([]float32(nil), ds.Data()...)
	outliers := [][]float32{{1.1, 1.1, 1.1, 1.1}, {1.15, 0.0, 1.15, 0.0}}
	for _, o := range outliers {
		data = append(data, o...)
	}
	ds2 := dataset.New("blobs+outliers", 4, data, ds.Domain)
	eng := engineOver(t, ds2, core.HCD)
	res, err := Run(eng, ds2, 0.08, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := ds2.Len() - 2; i < ds2.Len(); i++ {
		if res.Labels[i] != Noise {
			t.Fatalf("outlier %d labeled %d, want noise", i, res.Labels[i])
		}
	}
	if res.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.Clusters)
	}
}

func TestParameterValidation(t *testing.T) {
	ds, _ := blobs(t, 10, 1, 3, 53)
	eng := engineOver(t, ds, core.NoCache)
	if _, err := Run(eng, ds, 0, 4, 8); err == nil {
		t.Fatal("expected eps validation error")
	}
	if _, err := Run(eng, ds, 0.1, 1, 8); err == nil {
		t.Fatal("expected minPts validation error")
	}
}

func TestCacheReducesJoinIO(t *testing.T) {
	ds, _ := blobs(t, 80, 3, 8, 54)
	cold := engineOver(t, ds, core.NoCache)
	warm := engineOver(t, ds, core.HCO)
	rc, err := Run(cold, ds, 0.08, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(warm, ds, 0.08, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Same clustering either way.
	if rc.Clusters != rw.Clusters {
		t.Fatalf("cache changed clustering: %d vs %d", rc.Clusters, rw.Clusters)
	}
	for i := range rc.Labels {
		if (rc.Labels[i] == Noise) != (rw.Labels[i] == Noise) {
			t.Fatalf("cache changed noise status of %d", i)
		}
	}
	if rw.Stats.Fetched >= rc.Stats.Fetched {
		t.Fatalf("cached clustering fetched %d >= uncached %d", rw.Stats.Fetched, rc.Stats.Fetched)
	}
}
