package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"exploitbit/internal/vec"
)

func TestGenerateShape(t *testing.T) {
	ds := Generate(Config{Name: "t", N: 100, Dim: 8, Clusters: 4, Std: 0.05, Skew: 2, Ndom: 64, Seed: 1})
	if ds.Len() != 100 || ds.Dim != 8 {
		t.Fatalf("shape = %dx%d", ds.Len(), ds.Dim)
	}
	for i := 0; i < ds.Len(); i++ {
		p := ds.Point(i)
		if len(p) != 8 {
			t.Fatalf("point %d has %d dims", i, len(p))
		}
		for j, v := range p {
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				t.Fatalf("point %d dim %d out of range: %v", i, j, v)
			}
		}
	}
	if ds.PointSize() != 32 {
		t.Fatalf("PointSize = %d, want 32", ds.PointSize())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", N: 50, Dim: 4, Clusters: 3, Seed: 42}
	a, b := Generate(cfg), Generate(cfg)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed produced different data")
		}
	}
	cfg.Seed = 43
	c := Generate(cfg)
	same := true
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateIsClustered(t *testing.T) {
	// Points from the generator should be far closer to their nearest
	// neighbor than uniform random points would be; verify clustering by
	// comparing mean NN distance to mean pairwise distance.
	ds := Generate(Config{Name: "t", N: 200, Dim: 16, Clusters: 5, Std: 0.02, Seed: 3})
	var nnSum, pairSum float64
	var pairs int
	for i := 0; i < ds.Len(); i++ {
		best := math.Inf(1)
		for j := 0; j < ds.Len(); j++ {
			if i == j {
				continue
			}
			d := vec.Dist(ds.Point(i), ds.Point(j))
			if d < best {
				best = d
			}
			pairSum += d
			pairs++
		}
		nnSum += best
	}
	meanNN := nnSum / float64(ds.Len())
	meanPair := pairSum / float64(pairs)
	if meanNN > meanPair/3 {
		t.Fatalf("data does not look clustered: meanNN=%v meanPair=%v", meanNN, meanPair)
	}
}

func TestPresets(t *testing.T) {
	for _, tc := range []struct {
		ds   *Dataset
		dim  int
		name string
	}{
		{NUSWideLike(20, 1), 150, "NUS-WIDE"},
		{ImgNetLike(20, 1), 150, "IMGNET"},
		{SogouLike(5, 1), 960, "SOGOU"},
	} {
		if tc.ds.Dim != tc.dim || tc.ds.Name != tc.name {
			t.Errorf("preset %s: dim=%d name=%q", tc.name, tc.ds.Dim, tc.ds.Name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	dom := vec.NewDomain(0, 1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-multiple data length")
		}
	}()
	New("bad", 3, make([]float32, 4), dom)
}

func TestGenLogSkewAndSplit(t *testing.T) {
	ds := Generate(Config{Name: "t", N: 500, Dim: 8, Clusters: 4, Seed: 5})
	log := GenLog(ds, LogConfig{PoolSize: 100, Length: 5000, ZipfS: 1.5, Perturb: 0.01, Seed: 6})
	if len(log.Pool) != 100 || len(log.Seq) != 5000 {
		t.Fatalf("log shape %d/%d", len(log.Pool), len(log.Seq))
	}
	freqs := log.RankFreq()
	if len(freqs) == 0 {
		t.Fatal("no frequencies")
	}
	// Power-law check: top 10% of distinct queries should carry well over
	// half the log (Figure 2's temporal locality).
	top := 0
	cut := len(freqs) / 10
	if cut == 0 {
		cut = 1
	}
	for _, f := range freqs[:cut] {
		top += f
	}
	if float64(top) < 0.5*float64(len(log.Seq)) {
		t.Fatalf("log not skewed enough: top 10%% carries %d of %d", top, len(log.Seq))
	}
	// Frequencies must be sorted descending and sum to the log length.
	sum := 0
	for i, f := range freqs {
		sum += f
		if i > 0 && freqs[i-1] < f {
			t.Fatal("RankFreq not descending")
		}
	}
	if sum != len(log.Seq) {
		t.Fatalf("freq sum %d != log length %d", sum, len(log.Seq))
	}

	wl, qt := log.Split(50)
	if len(wl) != 4950 || len(qt) != 50 {
		t.Fatalf("split = %d/%d", len(wl), len(qt))
	}
}

func TestGenLogQueriesInDomain(t *testing.T) {
	ds := Generate(Config{Name: "t", N: 100, Dim: 6, Seed: 7})
	log := GenLog(ds, LogConfig{PoolSize: 20, Length: 100, Perturb: 0.5, Seed: 8})
	for _, q := range log.Pool {
		for _, v := range q {
			if float64(v) < ds.Domain.Lo || float64(v) > ds.Domain.Hi {
				t.Fatalf("query coordinate %v escapes domain", v)
			}
		}
	}
}

func TestRoundTripIO(t *testing.T) {
	ds := Generate(Config{Name: "roundtrip", N: 37, Dim: 5, Seed: 9, Ndom: 128})
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.Dim != ds.Dim || got.Len() != ds.Len() {
		t.Fatalf("header mismatch: %q %d %d", got.Name, got.Dim, got.Len())
	}
	if got.Domain != ds.Domain {
		t.Fatalf("domain mismatch: %+v vs %+v", got.Domain, ds.Domain)
	}
	for i := range ds.Data() {
		if got.Data()[i] != ds.Data()[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	ds := Generate(Config{Name: "file", N: 10, Dim: 3, Seed: 10})
	path := filepath.Join(t.TempDir(), "ds.ebds")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 || got.Dim != 3 {
		t.Fatalf("loaded shape %dx%d", got.Len(), got.Dim)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a dataset file"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
	// Truncated data section.
	ds := Generate(Config{Name: "x", N: 4, Dim: 2, Seed: 1})
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated input")
	}
}

func TestLogRoundTrip(t *testing.T) {
	ds := Generate(Config{Name: "t", N: 200, Dim: 6, Seed: 21})
	log := GenLog(ds, LogConfig{PoolSize: 30, Length: 150, ZipfS: 1.4, Perturb: 0.01, Seed: 22})
	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pool) != len(log.Pool) || len(got.Seq) != len(log.Seq) {
		t.Fatalf("shape changed: %d/%d", len(got.Pool), len(got.Seq))
	}
	for i := range log.Seq {
		if got.Seq[i] != log.Seq[i] {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
	for i := range log.Pool {
		for j := range log.Pool[i] {
			if got.Pool[i][j] != log.Pool[i][j] {
				t.Fatalf("pool point %d diverged", i)
			}
		}
	}
	// File round trip.
	path := filepath.Join(t.TempDir(), "log.ebql")
	if err := log.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLog(path); err != nil {
		t.Fatal(err)
	}
	// Garbage rejection.
	if _, err := ReadLog(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	trunc := buf.Bytes() // buf already drained; rebuild
	var buf2 bytes.Buffer
	log.WriteTo(&buf2)
	trunc = buf2.Bytes()[:buf2.Len()-5]
	if _, err := ReadLog(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncation")
	}
}
