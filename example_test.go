package exploitbit_test

import (
	"fmt"

	"exploitbit"
)

// Example demonstrates the full pipeline: dataset, workload, system, cached
// engine, query. Uses a tiny deterministic dataset so the output is stable.
func Example() {
	ds := exploitbit.Generate(exploitbit.DatasetConfig{
		Name: "demo", N: 2000, Dim: 16, Clusters: 4,
		Std: 0.04, Ndom: 256, Seed: 7, ValueCoherence: 0.5,
	})
	qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 100, Length: 510, ZipfS: 1.3, Perturb: 0.004, Seed: 8,
	})
	wl, qtest := qlog.Split(10)

	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{Tio: 0})
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	eng, err := sys.Engine(exploitbit.HCO, 64<<10, 6)
	if err != nil {
		panic(err)
	}
	ids, stats, err := eng.Search(qtest[0], 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("results: %d neighbors from %d candidates, fetched %d points\n",
		len(ids), stats.Candidates, stats.Fetched)
	// Output:
	// results: 5 neighbors from 105 candidates, fetched 7 points
}

// ExampleSystem_OptimalTau shows the Section-4 cost model choosing a code
// length for a budget.
func ExampleSystem_OptimalTau() {
	ds := exploitbit.Generate(exploitbit.DatasetConfig{
		Name: "demo", N: 1000, Dim: 8, Clusters: 4, Ndom: 256, Seed: 9,
	})
	qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 50, Length: 200, Seed: 10, Perturb: 0.01,
	})
	wl, _ := qlog.Split(0)
	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{Tio: 0})
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	tau := sys.OptimalTau(8 << 10)
	fmt.Println(tau >= 1 && tau <= 32)
	// Output:
	// true
}
