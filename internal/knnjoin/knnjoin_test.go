package knnjoin

import (
	"path/filepath"
	"sort"
	"testing"

	"exploitbit/internal/core"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/vafile"
	"exploitbit/internal/vec"
)

// joinWorld builds an engine over S with probe set R as the workload,
// backed by the VA-file index so join results are exact.
func joinWorld(t testing.TB, nS, nR, dim int, method core.Method) (*core.Engine, *dataset.Dataset, [][]float32) {
	t.Helper()
	s := dataset.Generate(dataset.Config{Name: "S", N: nS, Dim: dim, Clusters: 6, Std: 0.05, Ndom: 256, Seed: 41})
	rds := dataset.Generate(dataset.Config{Name: "R", N: nR, Dim: dim, Clusters: 6, Std: 0.05, Ndom: 256, Seed: 42})
	probes := make([][]float32, nR)
	for i := range probes {
		probes[i] = rds.Point(i)
	}
	pf, err := disk.BuildPointFile(filepath.Join(t.TempDir(), "s.points"), s, nil, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	ix := vafile.Build(s, vafile.Params{BitsPerDim: 6})
	cands := func(q []float32, k int) ([]int, float64) {
		r := ix.Candidates(q, k)
		return r.IDs, r.Dmax
	}
	prof := core.BuildProfile(s, cands, probes, 5)
	eng, err := core.NewEngine(pf, prof, cands, core.Config{Method: method, CacheBytes: 1 << 20, Tau: 7})
	if err != nil {
		t.Fatal(err)
	}
	return eng, s, probes
}

func TestJoinMatchesBruteForce(t *testing.T) {
	eng, s, probes := joinWorld(t, 800, 60, 8, core.HCO)
	res, err := Run(eng, probes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != len(probes) {
		t.Fatalf("%d result rows", len(res.Neighbors))
	}
	for i, r := range probes {
		got := make([]float64, len(res.Neighbors[i]))
		for j, id := range res.Neighbors[i] {
			got[j] = vec.Dist(r, s.Point(id))
		}
		sort.Float64s(got)
		top := vec.NewTopK(5)
		for j := 0; j < s.Len(); j++ {
			top.Push(vec.Dist(r, s.Point(j)), j)
		}
		_, want := top.Results()
		for j := range want {
			if diff := got[j] - want[j]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("probe %d rank %d: %v want %v", i, j, got[j], want[j])
			}
		}
	}
	if res.Stats.Queries != len(probes) {
		t.Fatalf("stats recorded %d queries", res.Stats.Queries)
	}
}

func TestJoinCacheReducesIO(t *testing.T) {
	cold, _, probes := joinWorld(t, 1500, 80, 12, core.NoCache)
	warm, _, _ := joinWorld(t, 1500, 80, 12, core.HCO)
	rc, err := Run(cold, probes, 5)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(warm, probes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Stats.Fetched >= rc.Stats.Fetched {
		t.Fatalf("cached join fetched %d >= uncached %d", rw.Stats.Fetched, rc.Stats.Fetched)
	}
	if rw.Stats.Fetched*3 > rc.Stats.Fetched {
		t.Fatalf("expected >=3x I/O reduction: %d vs %d", rw.Stats.Fetched, rc.Stats.Fetched)
	}
}

func TestJoinPairs(t *testing.T) {
	res := &Result{Neighbors: [][]int{{3, 1}, {2}}}
	pairs := res.Pairs()
	want := []Pair{{0, 3}, {0, 1}, {1, 2}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestJoinRejectsBadK(t *testing.T) {
	eng, _, probes := joinWorld(t, 100, 5, 4, core.NoCache)
	if _, err := Run(eng, probes, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}
