package histogram

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestHistogramIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		ndom := 8 + rng.Intn(200)
		b := 1 + rng.Intn(16)
		f := make([]float64, ndom)
		for i := range f {
			f[i] = rng.Float64()
		}
		h := KNNOptimal(f, b)
		var buf bytes.Buffer
		if _, err := h.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.B() != h.B() || got.Ndom() != h.Ndom() {
			t.Fatalf("shape changed: %d/%d vs %d/%d", got.B(), got.Ndom(), h.B(), h.Ndom())
		}
		for i := 0; i < h.B(); i++ {
			gl, gu := got.Interval(i)
			wl, wu := h.Interval(i)
			if gl != wl || gu != wu {
				t.Fatalf("bucket %d changed: [%d,%d] vs [%d,%d]", i, gl, gu, wl, wu)
			}
		}
	}
}

func TestPerDimIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	freqs := make([][]float64, 5)
	for j := range freqs {
		freqs[j] = make([]float64, 64)
		for i := range freqs[j] {
			freqs[j][i] = rng.Float64()
		}
	}
	p := BuildPerDim(freqs, 8, func(f []float64, b int) *Histogram { return EquiDepth(f, b) })
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerDim(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != 5 {
		t.Fatalf("Dim = %d", got.Dim())
	}
	for j := range got.H {
		for v := 0; v < 64; v++ {
			if got.H[j].Bucket(v) != p.H[j].Bucket(v) {
				t.Fatalf("dim %d value %d bucket changed", j, v)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected error on short input")
	}
	if _, err := Read(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected error on zero magic")
	}
	// Truncated uppers.
	h := EquiWidth(64, 8)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncation")
	}
	if _, err := ReadPerDim(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected per-dim error on empty input")
	}
}
