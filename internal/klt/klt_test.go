package klt

import (
	"math"
	"math/rand"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

func TestJacobiKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs, err := Jacobi(a, 32)
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{vals[0], vals[1]}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-1) > 1e-10 || math.Abs(got[1]-3) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [1 3]", got)
	}
	// Eigenvector columns must be orthonormal.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var dot float64
			for r := 0; r < 2; r++ {
				dot += vecs[r][i] * vecs[r][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Fatalf("columns %d,%d dot = %v", i, j, dot)
			}
		}
	}
}

func TestJacobiReconstruction(t *testing.T) {
	// A = V Λ Vᵀ must reconstruct the original matrix.
	rng := rand.New(rand.NewSource(1))
	d := 12
	orig := make([][]float64, d)
	work := make([][]float64, d)
	for i := range orig {
		orig[i] = make([]float64, d)
		work[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := rng.NormFloat64()
			orig[i][j], orig[j][i] = v, v
		}
	}
	for i := range orig {
		copy(work[i], orig[i])
	}
	vals, vecs, err := Jacobi(work, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var s float64
			for r := 0; r < d; r++ {
				s += vecs[i][r] * vals[r] * vecs[j][r]
			}
			if math.Abs(s-orig[i][j]) > 1e-8 {
				t.Fatalf("reconstruction (%d,%d): %v vs %v", i, j, s, orig[i][j])
			}
		}
	}
}

func TestFitPreservesDistances(t *testing.T) {
	// KLT is a rigid rotation (+ translation): pairwise distances must be
	// preserved exactly (up to float rounding).
	ds := dataset.Generate(dataset.Config{Name: "t", N: 300, Dim: 20, Clusters: 5, Std: 0.05, Seed: 2})
	tr, err := Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a := ds.Point(rng.Intn(ds.Len()))
		b := ds.Point(rng.Intn(ds.Len()))
		ra := tr.Apply(a, nil)
		rb := tr.Apply(b, nil)
		dOrig := vec.Dist(a, b)
		dRot := vec.Dist(ra, rb)
		if math.Abs(dOrig-dRot) > 1e-4*(1+dOrig) {
			t.Fatalf("distance changed: %v vs %v", dOrig, dRot)
		}
	}
}

func TestFitConcentratesVariance(t *testing.T) {
	// Build strongly anisotropic data: dim 0 has 100x the spread. After
	// KLT the first eigen-dimension must carry the bulk of the variance.
	rng := rand.New(rand.NewSource(4))
	n, d := 500, 8
	data := make([]float32, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			scale := 0.01
			if j == 0 {
				scale = 1.0
			}
			data[i*d+j] = float32(0.5 + rng.NormFloat64()*scale)
		}
	}
	ds := dataset.New("aniso", d, data, vec.NewDomain(-10, 10, 256))
	tr, err := Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, l := range tr.Lambda {
		total += l
	}
	if tr.Lambda[0]/total < 0.95 {
		t.Fatalf("leading eigenvalue carries only %.2f of variance", tr.Lambda[0]/total)
	}
	// Eigenvalues descending.
	for i := 1; i < d; i++ {
		if tr.Lambda[i] > tr.Lambda[i-1]+1e-12 {
			t.Fatal("eigenvalues not descending")
		}
	}
}
