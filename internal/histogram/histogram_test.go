package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"exploitbit/internal/vec"
)

func TestFromUppersValidation(t *testing.T) {
	if _, err := FromUppers(8, []int{3, 7}); err != nil {
		t.Fatal(err)
	}
	bad := [][]int{
		nil,       // empty
		{3, 6},    // last != ndom-1
		{3, 3, 7}, // not ascending
		{7, 3},    // descending
		{-1, 7},   // negative width start handled via prev
	}
	for i, uppers := range bad {
		if _, err := FromUppers(8, uppers); err == nil {
			t.Errorf("case %d: expected error for %v", i, uppers)
		}
	}
}

func TestEquiWidthMatchesPaperExample(t *testing.T) {
	// Figure 5b: domain [0..31], τ=2 → B=4 buckets [0..7][8..15][16..23][24..31].
	h := EquiWidth(32, 4)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 7}, {8, 15}, {16, 23}, {24, 31}}
	for i, w := range want {
		lo, hi := h.Interval(i)
		if lo != w[0] || hi != w[1] {
			t.Fatalf("bucket %d = [%d,%d], want %v", i, lo, hi, w)
		}
	}
	if h.CodeLen() != 2 {
		t.Fatalf("CodeLen = %d, want 2", h.CodeLen())
	}
	// The paper's encodings: value 2 → 00, 20 → 10 (Figure 5).
	if h.Bucket(2) != 0 || h.Bucket(20) != 2 {
		t.Fatalf("Bucket(2)=%d Bucket(20)=%d", h.Bucket(2), h.Bucket(20))
	}
}

func TestEquiWidthOddDivision(t *testing.T) {
	h := EquiWidth(10, 3)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.B() != 3 {
		t.Fatalf("B = %d", h.B())
	}
	// Widths must differ by at most 1 value.
	minW, maxW := 1<<30, 0
	for i := 0; i < h.B(); i++ {
		lo, hi := h.Interval(i)
		w := hi - lo + 1
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW-minW > 1 {
		t.Fatalf("widths spread %d..%d", minW, maxW)
	}
}

func TestEquiDepthBalancesMass(t *testing.T) {
	freq := make([]float64, 100)
	rng := rand.New(rand.NewSource(3))
	var total float64
	for i := range freq {
		freq[i] = float64(rng.Intn(20))
		total += freq[i]
	}
	h := EquiDepth(freq, 8)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.B() != 8 {
		t.Fatalf("B = %d, want 8", h.B())
	}
	// No bucket should hold more than ~2.5x its fair share of mass
	// (equi-depth is approximate; it cannot split a single heavy value).
	fair := total / 8
	for i := 0; i < h.B(); i++ {
		lo, hi := h.Interval(i)
		var sum float64
		for v := lo; v <= hi; v++ {
			sum += freq[v]
		}
		if sum > 2.5*fair+20 {
			t.Fatalf("bucket %d mass %v vs fair %v", i, sum, fair)
		}
	}
}

func TestEquiDepthDegenerate(t *testing.T) {
	// All mass on one value: must still produce a valid cover.
	freq := make([]float64, 16)
	freq[7] = 100
	h := EquiDepth(freq, 4)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero frequencies entirely.
	h = EquiDepth(make([]float64, 16), 4)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// More buckets than values.
	h = EquiDepth(make([]float64, 3), 8)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.B() != 3 {
		t.Fatalf("B = %d, want clamp to 3", h.B())
	}
}

// bruteForceBest enumerates every partition of [0..ndom-1] into exactly <= b
// buckets and returns the minimal total cost. Exponential; small inputs only.
func bruteForceBest(ndom, b int, cost intervalCost) float64 {
	best := math.Inf(1)
	var rec func(start, used int, acc float64)
	rec = func(start, used int, acc float64) {
		if acc >= best {
			return
		}
		if start == ndom {
			if acc < best {
				best = acc
			}
			return
		}
		if used == b {
			return
		}
		for end := start; end < ndom; end++ {
			rec(end+1, used+1, acc+cost(start, end))
		}
	}
	rec(0, 0, 0)
	return best
}

func TestKNNOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		ndom := 4 + rng.Intn(8)
		b := 1 + rng.Intn(4)
		f := make([]float64, ndom)
		for i := range f {
			f[i] = float64(rng.Intn(5))
		}
		h := KNNOptimal(f, b)
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
		if h.B() > b {
			t.Fatalf("trial %d: B=%d > budget %d", trial, h.B(), b)
		}
		got := M3(h, f)
		s := prefixSums(f)
		want := bruteForceBest(ndom, b, func(lo, hi int) float64 {
			w := float64(hi - lo)
			return (s[hi+1] - s[lo]) * w * w
		})
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (ndom=%d b=%d f=%v): DP=%v brute=%v", trial, ndom, b, f, got, want)
		}
	}
}

func TestVOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		ndom := 4 + rng.Intn(7)
		b := 1 + rng.Intn(3)
		f := make([]float64, ndom)
		for i := range f {
			f[i] = float64(rng.Intn(10))
		}
		h := VOptimal(f, b)
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
		got := MSSE(h, f)
		sseCost := func(lo, hi int) float64 {
			var sum float64
			for v := lo; v <= hi; v++ {
				sum += f[v]
			}
			avg := sum / float64(hi-lo+1)
			var sse float64
			for v := lo; v <= hi; v++ {
				d := f[v] - avg
				sse += d * d
			}
			return sse
		}
		want := bruteForceBest(ndom, b, sseCost)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: DP=%v brute=%v f=%v b=%d", trial, got, want, f, b)
		}
	}
}

func TestCutoffDoesNotChangeResult(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ndom := 10 + rng.Intn(40)
		b := 2 + rng.Intn(6)
		f := make([]float64, ndom)
		for i := range f {
			f[i] = rng.Float64() * 10
		}
		with := KNNOptimalWith(f, b, KNNOptimalOptions{})
		without := KNNOptimalWith(f, b, KNNOptimalOptions{DisableCutoff: true})
		if gv, wv := M3(with, f), M3(without, f); math.Abs(gv-wv) > 1e-9*(1+wv) {
			t.Fatalf("trial %d: cutoff changed metric %v vs %v", trial, gv, wv)
		}
	}
}

func TestNaiveUpsilonAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := make([]float64, 30)
	for i := range f {
		f[i] = rng.Float64()
	}
	a := KNNOptimalWith(f, 5, KNNOptimalOptions{})
	b := KNNOptimalWith(f, 5, KNNOptimalOptions{NaiveUpsilon: true})
	if M3(a, f) != M3(b, f) {
		t.Fatalf("naive Υ disagrees: %v vs %v", M3(a, f), M3(b, f))
	}
}

func TestKNNOptimalBeatsHeuristicsOnSkewedWorkload(t *testing.T) {
	// Workload mass concentrated in a narrow region: HC-O should carve tight
	// buckets there and leave the rest loose, beating equi-width and
	// equi-depth (the Figure 6 story) on the M3 metric.
	ndom := 256
	f := make([]float64, ndom)
	for v := 100; v < 110; v++ {
		f[v] = 50
	}
	for v := 0; v < ndom; v++ {
		f[v] += 0.1
	}
	b := 16
	hO := KNNOptimal(f, b)
	hW := EquiWidth(ndom, b)
	hD := EquiDepth(f, b)
	mO, mW, mD := M3(hO, f), M3(hW, f), M3(hD, f)
	if mO > mD || mO > mW {
		t.Fatalf("HC-O M3=%v not best (W=%v D=%v)", mO, mW, mD)
	}
	if mO >= mW/2 {
		t.Fatalf("expected HC-O to clearly beat equi-width: %v vs %v", mO, mW)
	}
}

func TestKNNOptimalTightensAroundWorkload(t *testing.T) {
	// Buckets covering the high-F′ region must be narrower than the average
	// bucket elsewhere.
	ndom := 128
	f := make([]float64, ndom)
	for v := 60; v < 68; v++ {
		f[v] = 10
	}
	h := KNNOptimal(f, 8)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	hot := h.Bucket(63)
	lo, hi := h.Interval(hot)
	if hi-lo > 16 {
		t.Fatalf("hot bucket [%d,%d] too wide", lo, hi)
	}
}

func TestMetricLemma2Identity(t *testing.T) {
	// Lemma 2: Σ_q Σ_r ||ε(b)||² computed pointwise equals M3 computed
	// bucketwise. Build random points and verify both sides.
	rng := rand.New(rand.NewSource(9))
	dom := vec.NewDomain(0, 1, 64)
	h := EquiDepthFromRandom(rng, 64, 8)
	var qr [][]float32
	for i := 0; i < 40; i++ {
		p := make([]float32, 5)
		for j := range p {
			p[j] = rng.Float32()
		}
		qr = append(qr, p)
	}
	// Left side: sum of squared error-vector norms (Def 10).
	var left float64
	for _, p := range qr {
		for _, v := range p {
			b := h.Bucket(dom.Bin(float64(v)))
			lo, hi := h.Interval(b)
			w := float64(hi - lo)
			left += w * w
		}
	}
	// Right side: M3 over F′.
	f := WorkloadFrequency(qr, dom)
	right := M3(h, f)
	if math.Abs(left-right) > 1e-6*(1+right) {
		t.Fatalf("Lemma 2 identity broken: %v vs %v", left, right)
	}
}

// EquiDepthFromRandom builds an arbitrary valid histogram for identity tests.
func EquiDepthFromRandom(rng *rand.Rand, ndom, b int) *Histogram {
	f := make([]float64, ndom)
	for i := range f {
		f[i] = rng.Float64()
	}
	return EquiDepth(f, b)
}

func TestHistogramPropertyAllValuesCovered(t *testing.T) {
	check := func(seed int64, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ndom := 8 + rng.Intn(100)
		b := 1 + int(bRaw)%16
		f := make([]float64, ndom)
		for i := range f {
			f[i] = rng.Float64() * float64(rng.Intn(3))
		}
		for _, h := range []*Histogram{
			EquiWidth(ndom, b), EquiDepth(f, b), VOptimal(f, b), KNNOptimal(f, b),
		} {
			if h.Validate() != nil {
				return false
			}
			if h.CodeLen() > 5 && b <= 16 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCodeLen(t *testing.T) {
	cases := []struct{ b, want int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}}
	for _, c := range cases {
		h := EquiWidth(2048, c.b)
		if got := h.CodeLen(); got != c.want {
			t.Errorf("B=%d CodeLen=%d, want %d", c.b, got, c.want)
		}
	}
}

func TestMaxBucketsForCodeLen(t *testing.T) {
	if got := MaxBucketsForCodeLen(10, 4096); got != 1024 {
		t.Fatalf("got %d, want 1024", got)
	}
	if got := MaxBucketsForCodeLen(10, 100); got != 100 {
		t.Fatalf("clamped got %d, want 100", got)
	}
	if got := MaxBucketsForCodeLen(0, 100); got != 2 {
		t.Fatalf("floor got %d, want 2", got)
	}
}

func TestSmooth(t *testing.T) {
	f := []float64{0, 10, 0, 0}
	base := []float64{1, 1, 1, 1}
	out := Smooth(append([]float64(nil), f...), base, 0.04)
	if out[0] == 0 {
		t.Fatal("smoothing did not lift zero cells")
	}
	// Workload mass must still dominate.
	if out[1] < 100*out[0] {
		t.Fatalf("smoothing overwhelmed workload: %v", out)
	}
	// eps=0 is a no-op.
	same := Smooth(append([]float64(nil), f...), base, 0)
	for i := range f {
		if same[i] != f[i] {
			t.Fatal("eps=0 changed values")
		}
	}
	// Empty workload adopts base shape.
	empty := Smooth(make([]float64, 4), base, 1)
	if empty[0] != 1 {
		t.Fatalf("empty workload smoothing = %v", empty)
	}
}

func TestFrequencyArrays(t *testing.T) {
	dom := vec.NewDomain(0, 1, 4)
	pts := [][]float32{{0.1, 0.9}, {0.3, 0.6}}
	f := WorkloadFrequency(pts, dom)
	// bins: 0.1→0, 0.9→3, 0.3→1, 0.6→2
	want := []float64{1, 1, 1, 1}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("F' = %v", f)
		}
	}
	fd := WorkloadFrequencyPerDim(pts, 2, dom)
	if fd[0][0] != 1 || fd[0][1] != 1 || fd[1][3] != 1 || fd[1][2] != 1 {
		t.Fatalf("per-dim F' = %v", fd)
	}
}

func TestPerDim(t *testing.T) {
	freqs := [][]float64{
		{5, 0, 0, 0, 0, 0, 0, 1},
		{1, 0, 0, 0, 0, 0, 0, 5},
	}
	p := BuildPerDim(freqs, 2, func(f []float64, b int) *Histogram { return KNNOptimal(f, b) })
	if p.Dim() != 2 || p.CodeLen() != 1 {
		t.Fatalf("Dim=%d CodeLen=%d", p.Dim(), p.CodeLen())
	}
	if p.SpaceBytes() != 2*p.H[0].SpaceBytes() {
		t.Fatal("SpaceBytes should sum dimensions")
	}
	// Each dimension should adapt to its own mass: dim 0 splits near 0,
	// dim 1 near the top.
	lo0, hi0 := p.H[0].Interval(p.H[0].Bucket(0))
	if hi0-lo0 > 3 {
		t.Fatalf("dim0 hot bucket [%d,%d]", lo0, hi0)
	}
	lo1, hi1 := p.H[1].Interval(p.H[1].Bucket(7))
	if hi1-lo1 > 3 {
		t.Fatalf("dim1 hot bucket [%d,%d]", lo1, hi1)
	}
}

func TestMD(t *testing.T) {
	lo := [][]float32{{0, 0}, {0.5, 0.5}}
	hi := [][]float32{{0.5, 0.5}, {1, 1}}
	m, err := NewMD(lo, hi, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.B() != 2 || m.Dim() != 2 || m.CodeLen() != 1 {
		t.Fatalf("B=%d Dim=%d CodeLen=%d", m.B(), m.Dim(), m.CodeLen())
	}
	if m.BucketOf(0) != 0 || m.BucketOf(2) != 1 {
		t.Fatal("assignment broken")
	}
	rlo, rhi := m.Rect(1)
	if rlo[0] != 0.5 || rhi[1] != 1 {
		t.Fatal("Rect broken")
	}
	if m.SpaceBytes() != 2*2*8 {
		t.Fatalf("SpaceBytes = %d", m.SpaceBytes())
	}
	// Validation failures.
	if _, err := NewMD(nil, nil, nil); err == nil {
		t.Fatal("expected empty rejection")
	}
	if _, err := NewMD(lo, hi, []int{0, 5}); err == nil {
		t.Fatal("expected out-of-range assignment rejection")
	}
	if _, err := NewMD([][]float32{{1, 1}}, [][]float32{{0, 0}}, nil); err == nil {
		t.Fatal("expected inverted rectangle rejection")
	}
}
