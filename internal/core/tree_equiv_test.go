package core

import (
	"fmt"
	"sort"
	"testing"

	"exploitbit/internal/multistep"
	"exploitbit/internal/vec"
)

// This file pins the tree engine's refactor onto the shared reduction core:
// referenceTreeSearch is a verbatim port of the pre-refactor
// TreeEngine.Search (sqrt-space bounds, ad-hoc reduction, map-based
// refinement), and the equivalence test asserts the rebuilt SearchInto
// returns identical result identifiers in identical order with identical
// per-query statistics across indexes, methods and k.

// refPending is the pre-refactor pendingCand.
type refPending struct {
	id     int32
	leaf   int32
	lb, ub float64
}

// refKnown is the pre-refactor knownCand.
type refKnown struct {
	id int32
	d  float64
}

// referenceTreeSearch is the pre-refactor TreeEngine.Search, kept verbatim
// (modulo the removed struct fields it re-derives locally) as the behavioral
// oracle.
func referenceTreeSearch(e *TreeEngine, q []float32, k int) ([]int, QueryStats, error) {
	var st QueryStats
	lbs := e.ix.LeafLowerBounds(q)
	order := argsortByValue(lbs)

	io0 := e.store.Stats().PageReads
	ubTop := vec.NewTopK(k)  // k-th smallest known upper bound, for node cutoff
	var known []refKnown     // candidates with exact distances
	var pending []refPending // cached points deferred on bounds
	leaves := e.ix.Leaves()

	loadLeaf := func(li int) ([]int32, [][]float32, error) {
		ids, pts, err := e.store.Load(li)
		if err != nil {
			return nil, nil, err
		}
		st.Fetched += len(ids)
		return ids, pts, nil
	}

	for _, li := range order {
		if ubTop.Full() && lbs[li] >= ubTop.Root() {
			break
		}
		st.Candidates += len(leaves[li])
		examined := false
		if e.exactC != nil {
			if leafPts, ok := e.exactC.Get(li); ok {
				st.Hits += len(leafPts.pts)
				for i, id := range leaves[li] {
					d := vec.Dist(q, leafPts.pts[i])
					known = append(known, refKnown{id: id, d: d})
					ubTop.Push(d, int(id))
				}
				examined = true
			}
		} else if e.leafSlab != nil {
			if words, ok := e.leafSlab.Peek(li); ok {
				st.Hits += len(leaves[li])
				w := e.codec.Words()
				for i, id := range leaves[li] {
					lb, ub := e.table.BoundsPacked(q, words[i*w:(i+1)*w], e.codec)
					if lb < lbs[li] {
						lb = lbs[li] // node bound can be tighter
					}
					ubTop.Push(ub, int(id))
					pending = append(pending, refPending{id: id, leaf: int32(li), lb: lb, ub: ub})
				}
				examined = true
			}
		}
		if !examined {
			ids, pts, err := loadLeaf(li)
			if err != nil {
				return nil, st, err
			}
			for i, id := range ids {
				d := vec.Dist(q, pts[i])
				known = append(known, refKnown{id: id, d: d})
				ubTop.Push(d, int(id))
			}
		}
	}

	allLB := make([]float64, 0, len(known)+len(pending))
	allUB := make([]float64, 0, len(known)+len(pending))
	for _, c := range known {
		allLB = append(allLB, c.d)
		allUB = append(allUB, c.d)
	}
	for _, c := range pending {
		allLB = append(allLB, c.lb)
		allUB = append(allUB, c.ub)
	}
	lbk := multistep.KthSmallest(allLB, k)
	ubk := multistep.KthSmallest(allUB, k)

	var results []int
	resultSet := make(map[int32]bool)
	liveKnown := known[:0]
	for _, c := range known {
		if c.d > ubk {
			st.Pruned++
		} else {
			liveKnown = append(liveKnown, c)
		}
	}
	livePending := pending[:0]
	for _, c := range pending {
		switch {
		case c.lb > ubk:
			st.Pruned++
		case c.ub < lbk:
			st.TrueHits++
			results = append(results, int(c.id))
			resultSet[c.id] = true
		default:
			livePending = append(livePending, c)
		}
	}
	st.Remaining = len(livePending)

	kNeed := k - len(results)
	if kNeed > 0 {
		top := vec.NewTopK(kNeed)
		for _, c := range liveKnown {
			top.Push(c.d, int(c.id))
		}
		sort.Slice(livePending, func(a, b int) bool {
			if livePending[a].lb != livePending[b].lb {
				return livePending[a].lb < livePending[b].lb
			}
			return livePending[a].id < livePending[b].id
		})
		loaded := make(map[int32]bool)
		for _, pc := range livePending {
			if loaded[pc.leaf] {
				continue
			}
			if top.Full() && pc.lb >= top.Root() {
				break
			}
			ids, pts, err := loadLeaf(int(pc.leaf))
			if err != nil {
				return nil, st, err
			}
			loaded[pc.leaf] = true
			for i, id := range ids {
				if !resultSet[id] {
					top.Push(vec.Dist(q, pts[i]), int(id))
				}
			}
		}
		ids, _ := top.Results()
		results = append(results, ids...)
	}
	st.PageReads = e.store.Stats().PageReads - io0
	return results, st, nil
}

func TestTreeSearchEquivalence(t *testing.T) {
	for _, kind := range []string{"idistance", "vptree", "rtree"} {
		for seed := int64(31); seed <= 33; seed++ {
			w := buildTreeWorld(t, kind, 1000, 10, seed)
			for _, tc := range []struct {
				name string
				cfg  TreeConfig
			}{
				{"nocache", TreeConfig{Method: NoCache}},
				{"exact", TreeConfig{Method: Exact, CacheBytes: 128 << 10}},
				{"hcw", TreeConfig{Method: HCW, CacheBytes: 96 << 10, Tau: 7, LUTMinCachedPoints: -1}},
				{"hco", TreeConfig{Method: HCO, CacheBytes: 96 << 10, Tau: 7, LUTMinCachedPoints: -1}},
				{"hco-lut", TreeConfig{Method: HCO, CacheBytes: 96 << 10, Tau: 7, LUTMinCachedPoints: 1}},
			} {
				t.Run(fmt.Sprintf("%s/%d/%s", kind, seed, tc.name), func(t *testing.T) {
					eng, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 10, tc.cfg)
					if err != nil {
						t.Fatal(err)
					}
					if tc.name == "hco-lut" && !eng.buildLUT {
						t.Fatal("LUT gate did not open with LUTMinCachedPoints=1")
					}
					var dst []int
					for _, k := range []int{1, 5, 10} {
						for qi, q := range w.qtest {
							wantIDs, wantSt, err := referenceTreeSearch(eng, q, k)
							if err != nil {
								t.Fatal(err)
							}
							var gotSt QueryStats
							dst, gotSt, err = eng.SearchInto(q, k, dst[:0])
							if err != nil {
								t.Fatal(err)
							}
							if len(dst) != len(wantIDs) {
								t.Fatalf("k=%d query %d: %d ids, reference %d", k, qi, len(dst), len(wantIDs))
							}
							for i := range dst {
								if dst[i] != wantIDs[i] {
									t.Fatalf("k=%d query %d rank %d: id %d, reference %d\ngot  %v\nwant %v",
										k, qi, i, dst[i], wantIDs[i], dst, wantIDs)
								}
							}
							if gotSt.Candidates != wantSt.Candidates || gotSt.Hits != wantSt.Hits ||
								gotSt.Pruned != wantSt.Pruned || gotSt.TrueHits != wantSt.TrueHits ||
								gotSt.Remaining != wantSt.Remaining || gotSt.Fetched != wantSt.Fetched ||
								gotSt.PageReads != wantSt.PageReads {
								t.Fatalf("k=%d query %d stats diverged:\ngot  %+v\nwant %+v", k, qi, gotSt, wantSt)
							}
						}
					}
				})
			}
		}
	}
}
