// Package lsh implements C2LSH (Gan, Feng, Fang, Ng — SIGMOD 2012), the
// state-of-the-art disk-based LSH method the paper uses as its candidate
// generation index I. C2LSH hashes points with 2-stable (Gaussian)
// projections, then answers a c-approximate kNN query by dynamic collision
// counting: a point becomes a candidate once it collides with the query in
// at least l of the m hash functions at the current search radius, and the
// radius grows geometrically via virtual rehashing (bucket coalescing) until
// enough candidates are found.
//
// The index structure (hash tables of point identifiers) lives in memory;
// candidate points themselves are fetched from the dataset file only during
// refinement, which is precisely the phase the paper's cache attacks.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

// Params configures the index. Zero values select the defaults documented
// on each field.
type Params struct {
	// C is the approximation ratio (integer >= 2; default 2). The virtual
	// rehashing radius sequence is 1, C, C², …
	C int
	// Delta is the error probability δ (default 0.1).
	Delta float64
	// Beta is the allowed false-positive fraction β: candidate collection
	// stops once k + β·n candidates are found (default 100/n, per C2LSH).
	Beta float64
	// W is the projection quantization width w. Default: auto-tuned to the
	// mean nearest-neighbor distance of a data sample, so that radius R=1
	// roughly covers nearest neighbors.
	W float64
	// MaxM caps the number of hash functions (default 96). The Chernoff
	// bound of C2LSH may ask for more on easy parameter settings; capping
	// trades a little result quality for index size, which the paper's
	// relative comparisons are insensitive to.
	MaxM int
	// Seed drives projection sampling.
	Seed int64
}

func (p Params) withDefaults(n int) Params {
	if p.C < 2 {
		p.C = 2
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		p.Delta = 0.1
	}
	if p.Beta <= 0 {
		p.Beta = 100 / float64(n)
	}
	if p.MaxM <= 0 {
		p.MaxM = 96
	}
	return p
}

// Index is a built C2LSH index.
type Index struct {
	params Params
	n, dim int
	m, l   int // hash count and collision threshold α·m
	w      float64

	proj []float64 // m×dim projection vectors
	bias []float64 // m offsets in [0, w)

	// Per hash function: point hash values sorted ascending, with ids.
	vals [][]int64
	ids  [][]int32

	// Per-query scratch (collision counters, version-stamped to avoid O(n)
	// clears), pooled so concurrent queries never share state.
	scratch sync.Pool
}

// queryScratch is one query's collision-counting state.
type queryScratch struct {
	counts []int32
	stamp  []int32
	qid    int32
}

// collisionProb is the 2-stable LSH collision probability p(r) for two
// points at distance s = r·w (Datar et al. 2004):
//
//	p(r) = 1 − 2Φ(−1/r) − (2r/√(2π)) (1 − e^{−1/(2r²)})
func collisionProb(r float64) float64 {
	if r <= 0 {
		return 1
	}
	return 1 - 2*normCDF(-1/r) - (2*r/math.Sqrt(2*math.Pi))*(1-math.Exp(-1/(2*r*r)))
}

func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Build constructs the index over ds.
func Build(ds *dataset.Dataset, p Params) *Index {
	n, dim := ds.Len(), ds.Dim
	p = p.withDefaults(n)
	rng := rand.New(rand.NewSource(p.Seed))

	w := p.W
	if w <= 0 {
		w = meanNNDistance(ds, rng)
	}

	// C2LSH parameter setting: with p1 = p(1), p2 = p(c),
	//   m = ⌈(√ln(2/β) + √ln(1/δ))² / (2(p1−p2)²)⌉,
	//   α = (√ln(2/β)·p1 + √ln(1/δ)·p2) / (√ln(2/β) + √ln(1/δ)).
	p1 := collisionProb(1)
	p2 := collisionProb(float64(p.C))
	zb := math.Sqrt(math.Log(2 / p.Beta))
	zd := math.Sqrt(math.Log(1 / p.Delta))
	m := int(math.Ceil((zb + zd) * (zb + zd) / (2 * (p1 - p2) * (p1 - p2))))
	if m < 8 {
		m = 8
	}
	if m > p.MaxM {
		m = p.MaxM
	}
	alpha := (zb*p1 + zd*p2) / (zb + zd)
	l := int(math.Ceil(alpha * float64(m)))
	if l < 1 {
		l = 1
	}
	if l > m {
		l = m
	}

	ix := &Index{
		params: p, n: n, dim: dim, m: m, l: l, w: w,
		proj: make([]float64, m*dim),
		bias: make([]float64, m),
		vals: make([][]int64, m),
		ids:  make([][]int32, m),
	}
	ix.scratch.New = func() any {
		return &queryScratch{counts: make([]int32, n), stamp: make([]int32, n)}
	}
	for i := range ix.proj {
		ix.proj[i] = rng.NormFloat64()
	}
	for i := range ix.bias {
		ix.bias[i] = rng.Float64() * w
	}

	// Hash every point under every function; sort per function.
	type vi struct {
		v  int64
		id int32
	}
	buf := make([]vi, n)
	for h := 0; h < m; h++ {
		a := ix.proj[h*dim : (h+1)*dim]
		for i := 0; i < n; i++ {
			buf[i] = vi{v: ix.hashWith(a, ix.bias[h], ds.Point(i)), id: int32(i)}
		}
		sort.Slice(buf, func(x, y int) bool { return buf[x].v < buf[y].v })
		vs := make([]int64, n)
		is := make([]int32, n)
		for i, e := range buf {
			vs[i], is[i] = e.v, e.id
		}
		ix.vals[h], ix.ids[h] = vs, is
	}
	return ix
}

func meanNNDistance(ds *dataset.Dataset, rng *rand.Rand) float64 {
	sample := 64
	if ds.Len() < sample {
		sample = ds.Len()
	}
	pool := 256
	if ds.Len() < pool {
		pool = ds.Len()
	}
	var sum float64
	cnt := 0
	for s := 0; s < sample; s++ {
		i := rng.Intn(ds.Len())
		best := math.Inf(1)
		for t := 0; t < pool; t++ {
			j := rng.Intn(ds.Len())
			if i == j {
				continue
			}
			if d := vec.Dist(ds.Point(i), ds.Point(j)); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			sum += best
			cnt++
		}
	}
	if cnt == 0 || sum == 0 {
		return 1
	}
	return sum / float64(cnt)
}

func (ix *Index) hashWith(a []float64, b float64, p []float32) int64 {
	var dot float64
	for j, v := range p {
		dot += a[j] * float64(v)
	}
	return int64(math.Floor((dot + b) / ix.w))
}

// M returns the number of hash functions in use.
func (ix *Index) M() int { return ix.m }

// L returns the collision-count threshold l = α·m.
func (ix *Index) L() int { return ix.l }

// W returns the projection quantization width.
func (ix *Index) W() float64 { return ix.w }

// SortedKeyOrdering returns the SK-LSH-style physical ordering of the
// dataset file (the "SortedKey" layout of the paper's Figure 9 experiment):
// points arranged by their compound hash key, here the first hash function's
// value, so that LSH-similar points land on nearby pages. The returned
// permutation maps point id → file slot (disk.BuildPointFile's format).
func (ix *Index) SortedKeyOrdering() []int {
	perm := make([]int, ix.n)
	for slot, id := range ix.ids[0] {
		perm[id] = slot
	}
	return perm
}

// Result of candidate generation for one query.
type Result struct {
	IDs    []int   // candidate identifiers, in discovery order
	Radius int     // final virtual-rehashing radius R
	Dmax   float64 // c·R·w, the (R,c)-guarantee distance bound of Theorem 3
}

// Candidates runs C2LSH candidate generation (Phase 1 of Algorithm 1) for
// query q: collision counting with virtual rehashing until k + β·n
// candidates are found or the radius exhausts the hash-value range.
// Safe for concurrent use: counting state is pooled per query.
func (ix *Index) Candidates(q []float32, k int) Result {
	if len(q) != ix.dim {
		panic(fmt.Sprintf("lsh: query dim %d != index dim %d", len(q), ix.dim))
	}
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)
	sc.qid++
	if sc.qid == 0 { // stamp wrapped: reset to keep correctness
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.qid = 1
	}
	qid := sc.qid

	required := k + int(math.Ceil(ix.params.Beta*float64(ix.n)))
	if required > ix.n {
		required = ix.n
	}

	qv := make([]int64, ix.m)
	for h := 0; h < ix.m; h++ {
		qv[h] = ix.hashWith(ix.proj[h*ix.dim:(h+1)*ix.dim], ix.bias[h], q)
	}

	// Window state per hash function: [lo, hi) index range currently
	// counted, empty at start.
	lo := make([]int, ix.m)
	hi := make([]int, ix.m)
	for h := range lo {
		// Position of the R=1 window start.
		lo[h] = sort.Search(ix.n, func(i int) bool { return ix.vals[h][i] >= qv[h] })
		hi[h] = lo[h]
	}

	var cands []int
	count := func(h, idx int) {
		id := ix.ids[h][idx]
		if sc.stamp[id] != qid {
			sc.stamp[id] = qid
			sc.counts[id] = 0
		}
		sc.counts[id]++
		// Terminating condition T1 of C2LSH: once k + β·n candidates have
		// been collected the query stops, so later threshold-crossers are
		// not admitted even within the same virtual-rehashing level. This
		// keeps |C(q)| at the scale the paper reports (hundreds) instead of
		// ballooning on coarse radius doublings over small datasets.
		if int(sc.counts[id]) == ix.l && len(cands) < required {
			cands = append(cands, int(id))
		}
	}

	R := int64(1)
	c := int64(ix.params.C)
	for {
		exhausted := true
		for h := 0; h < ix.m; h++ {
			// Bucket window of q at radius R in hash-value space.
			wlo := floorDiv(qv[h], R) * R
			whi := wlo + R
			vs := ix.vals[h]
			for lo[h] > 0 && vs[lo[h]-1] >= wlo {
				lo[h]--
				count(h, lo[h])
			}
			for hi[h] < ix.n && vs[hi[h]] < whi {
				count(h, hi[h])
				hi[h]++
			}
			if lo[h] > 0 || hi[h] < ix.n {
				exhausted = false
			}
		}
		if len(cands) >= required || exhausted {
			if len(cands) >= k || exhausted {
				if len(cands) < k {
					ix.fallback(&cands, sc, qid, k)
				}
				return Result{IDs: cands, Radius: int(R), Dmax: float64(c) * float64(R) * ix.w}
			}
		}
		R *= c
	}
}

// fallback pads the candidate set up to k ids when collision counting alone
// cannot reach the threshold (tiny datasets, extreme parameters): points
// with the highest partial collision counts first, then arbitrary ids.
func (ix *Index) fallback(cands *[]int, sc *queryScratch, qid int32, k int) {
	in := make(map[int]bool, len(*cands))
	for _, id := range *cands {
		in[id] = true
	}
	type pc struct {
		id int
		c  int32
	}
	var rest []pc
	for id := 0; id < ix.n; id++ {
		if in[id] {
			continue
		}
		var cnt int32
		if sc.stamp[id] == qid {
			cnt = sc.counts[id]
		}
		rest = append(rest, pc{id, cnt})
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].c != rest[j].c {
			return rest[i].c > rest[j].c
		}
		return rest[i].id < rest[j].id
	})
	for _, e := range rest {
		if len(*cands) >= k {
			break
		}
		*cands = append(*cands, e.id)
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
