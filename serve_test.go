package exploitbit

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func serveFixture(t *testing.T) (http.Handler, *System, [][]float32) {
	t.Helper()
	sys, qtest := smallSystem(t, C2LSH)
	eng, err := sys.Engine(HCO, 64<<10, 6)
	if err != nil {
		t.Fatal(err)
	}
	return Serve(eng, sys.DS.Dim), sys, qtest
}

func postSearch(t *testing.T, srv *httptest.Server, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServeSearch(t *testing.T) {
	h, sys, qtest := serveFixture(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, out := postSearch(t, srv, map[string]any{"vector": qtest[0], "k": 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	ids, ok := out["ids"].([]any)
	if !ok || len(ids) != 5 {
		t.Fatalf("ids = %v", out["ids"])
	}
	stats, ok := out["stats"].(map[string]any)
	if !ok || stats["candidates"].(float64) < 5 {
		t.Fatalf("stats = %v", out["stats"])
	}
	_ = sys

	// Aggregate stats endpoint.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var agg map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if agg["queries"].(float64) != 1 {
		t.Fatalf("stats = %v", agg)
	}

	// Health.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}
}

func TestServeValidation(t *testing.T) {
	h, _, qtest := serveFixture(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Wrong dimensionality.
	resp, out := postSearch(t, srv, map[string]any{"vector": []float32{1, 2}, "k": 5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dim mismatch accepted: %d %v", resp.StatusCode, out)
	}
	// Bad k.
	resp, _ = postSearch(t, srv, map[string]any{"vector": qtest[0], "k": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 accepted: %d", resp.StatusCode)
	}
	// Malformed JSON.
	mresp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON accepted: %d", mresp.StatusCode)
	}
	// Wrong method.
	gresp, err := http.Get(srv.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed && gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /search = %d", gresp.StatusCode)
	}
}

func TestServeConcurrentRequests(t *testing.T) {
	h, _, qtest := serveFixture(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, out := postSearch(t, srv, map[string]any{"vector": qtest[(g+i)%len(qtest)], "k": 3})
				if resp.StatusCode != http.StatusOK {
					errs <- out["error"].(string)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
