package exploitbit

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exploitbit/internal/core"
)

// TestServeMaintainedLifecycleRace is the serving-path stress test of the
// request-lifecycle work: a real http.Server over ServeMaintained, a rebuild
// parked in flight on the MaintainOptions.RebuildGate seam, goroutines
// hammering /search, /stats and /metrics, and a graceful Shutdown racing all
// of it. Run under -race it proves the admission gate, the lock-free
// metrics, the RCU engine swap and the drain sequence share no unguarded
// state; functionally it proves shutdown drains cleanly, the gated rebuild
// still lands, and no request ever sees a 5xx other than admission's 503.
func TestServeMaintainedLifecycleRace(t *testing.T) {
	sys, qtest := smallSystem(t, C2LSH)
	gate := make(chan struct{})
	m, err := sys.Maintained(core.Config{
		Method: HCO, CacheBytes: 64 << 10, Tau: 6, SmoothEps: 0.01,
	}, MaintainOptions{WindowSize: 16, RebuildGate: gate})
	if err != nil {
		t.Fatal(err)
	}
	handler := ServeMaintainedWith(m, sys.DS.Dim, ServeOptions{MaxInFlight: 4})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler, ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Seed the drift window, then park a rebuild on the gate so the whole
	// hammer phase runs with a rebuild in flight.
	client := &http.Client{Timeout: 5 * time.Second}
	searchOnce := func() (int, error) {
		body, _ := json.Marshal(map[string]any{"vector": qtest[rand.Intn(len(qtest))], "k": 3})
		resp, err := client.Post(base+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	for i := 0; i < 20; i++ {
		if code, err := searchOnce(); err != nil || code != http.StatusOK {
			t.Fatalf("seeding search %d: code=%d err=%v", i, code, err)
		}
	}
	if !m.RebuildAsync(3) {
		t.Fatal("RebuildAsync refused")
	}
	if !m.Stats().RebuildInFlight {
		t.Fatal("rebuild not in flight")
	}

	// Hammer. After shutdown starts, transport errors and refused
	// connections are expected; 5xx other than 503 never is.
	var (
		wg           sync.WaitGroup
		shuttingDown atomic.Bool
		ok2xx        atomic.Int64
		failures     = make(chan string, 64)
	)
	endpoints := []string{"/stats", "/metrics", "/healthz"}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				var code int
				var err error
				if g%2 == 0 {
					code, err = searchOnce()
				} else {
					var resp *http.Response
					resp, err = client.Get(base + endpoints[i%len(endpoints)])
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						code = resp.StatusCode
						resp.Body.Close()
					}
				}
				if err != nil {
					if !shuttingDown.Load() {
						select {
						case failures <- fmt.Sprintf("goroutine %d: %v", g, err):
						default:
						}
					}
					continue
				}
				switch {
				case code == http.StatusOK:
					ok2xx.Add(1)
				case code == http.StatusServiceUnavailable: // admission shed: fine
				default:
					select {
					case failures <- fmt.Sprintf("goroutine %d: status %d", g, code):
					default:
					}
				}
			}
		}(g)
	}

	// Let the hammer run, then drain while requests are still in flight.
	time.Sleep(30 * time.Millisecond)
	shuttingDown.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown did not drain: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
	if ok2xx.Load() == 0 {
		t.Fatal("no request succeeded before shutdown")
	}

	// Release the parked rebuild and stop the maintainer: Close must wait
	// for it, and the swap still lands.
	close(gate)
	m.Close()
	if st := m.Stats(); st.Rebuilds != 1 || st.RebuildInFlight {
		t.Fatalf("maintainer stats after drain: %+v", st)
	}
}

// TestServeMetricsEndToEnd sanity-checks the /metrics schema over a real
// engine: latency histograms populated per stage, admission figures
// present.
func TestServeMetricsEndToEnd(t *testing.T) {
	h, _, qtest := serveFixture(t)
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 5; i++ {
		resp, out := postSearch(t, srv, map[string]any{"vector": qtest[i%len(qtest)], "k": 5})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d: %d %v", i, resp.StatusCode, out)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr struct {
		Queries        int64 `json:"queries"`
		AdmissionLimit int   `json:"admission_limit"`
		Shed           int64 `json:"shed"`
		Latency        struct {
			Total    struct{ Count int64 } `json:"total"`
			Reduce   struct{ Count int64 } `json:"phase2_reduce"`
			RefineIO struct{ Count int64 } `json:"refine_io"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Queries != 5 || mr.Latency.Total.Count != 5 || mr.Latency.Reduce.Count != 5 || mr.Latency.RefineIO.Count != 5 {
		t.Fatalf("metrics = %+v", mr)
	}
	if mr.AdmissionLimit < 1 {
		t.Fatalf("admission limit missing: %+v", mr)
	}
}
