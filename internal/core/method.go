package core

import "fmt"

// Method names a caching method from the experimental study (Section 5.1).
type Method string

// The baselines and HC-* family evaluated in the paper.
const (
	// NoCache is the no-caching baseline: every candidate is fetched.
	NoCache Method = "NO-CACHE"
	// Exact caches raw points (the EXACT baseline).
	Exact Method = "EXACT"
	// HCW / HCV / HCD / HCO are global histograms: equi-width, V-optimal,
	// equi-depth and the paper's optimal kNN histogram (Algorithm 2).
	HCW Method = "HC-W"
	HCV Method = "HC-V"
	HCD Method = "HC-D"
	HCO Method = "HC-O"
	// IHCW / IHCD / IHCO are the individual-dimension variants.
	IHCW Method = "iHC-W"
	IHCD Method = "iHC-D"
	IHCO Method = "iHC-O"
	// MHCR is the R-tree multi-dimensional histogram.
	MHCR Method = "mHC-R"
	// CVA caches the whole VA-file: every point approximated with however
	// few bits fit the budget, per-dimension equi-depth grid.
	CVA Method = "C-VA"
)

// usesGlobalHistogram reports whether the method encodes points through one
// shared histogram.
func (m Method) usesGlobalHistogram() bool {
	switch m {
	case HCW, HCV, HCD, HCO:
		return true
	}
	return false
}

// usesPerDimHistogram reports whether the method encodes through
// per-dimension histograms.
func (m Method) usesPerDimHistogram() bool {
	switch m {
	case IHCW, IHCD, IHCO, CVA:
		return true
	}
	return false
}

// Validate rejects unknown method names early.
func (m Method) Validate() error {
	switch m {
	case NoCache, Exact, HCW, HCV, HCD, HCO, IHCW, IHCD, IHCO, MHCR, CVA:
		return nil
	}
	return fmt.Errorf("core: unknown method %q", string(m))
}

// AllMethods lists every method, in the paper's presentation order.
func AllMethods() []Method {
	return []Method{NoCache, Exact, CVA, MHCR, HCW, HCV, HCD, HCO, IHCW, IHCD, IHCO}
}
