package multistep

import (
	"errors"
	"math"
	"sort"
	"testing"
	"time"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/vec"
)

// diskWorld is a real point file on a fault-injectable device, the substrate
// for the fault-injection sweep of the refinement paths.
type diskWorld struct {
	ds *dataset.Dataset
	pf *disk.PointFile
}

func buildDiskWorld(t *testing.T, n, dim int) *diskWorld {
	t.Helper()
	ds := dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 3, Seed: 7})
	pf, err := disk.BuildPointFile(t.TempDir()+"/pf", ds, nil, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return &diskWorld{ds: ds, pf: pf}
}

func (w *diskWorld) fetch() Fetch {
	buf := make([]float32, w.ds.Dim)
	return func(id int) ([]float32, error) { return w.pf.Fetch(id, buf) }
}

func (w *diskWorld) query() []float32 {
	q := make([]float32, w.ds.Dim)
	copy(q, w.ds.Point(0))
	q[0] += 0.01
	return q
}

func (w *diskWorld) allCandidates() []Candidate {
	cands := make([]Candidate, w.ds.Len())
	for i := range cands {
		cands[i] = Candidate{ID: i, LB: 0, UB: math.Inf(1)}
	}
	return cands
}

func (w *diskWorld) bruteKNN(q []float32, k int, exclude func(id int) bool) []Result {
	var rs []Result
	for i := 0; i < w.ds.Len(); i++ {
		if exclude != nil && exclude(i) {
			continue
		}
		rs = append(rs, Result{ID: i, Dist: vec.Dist(q, w.ds.Point(i))})
	}
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Dist != rs[b].Dist {
			return rs[a].Dist < rs[b].Dist
		}
		return rs[a].ID < rs[b].ID
	})
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs
}

func sameResults(t *testing.T, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-6 {
			t.Fatalf("result %d: got {%d %.6f}, want {%d %.6f}",
				i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// TestSearchFaultSweepTransient: with transient faults injected at p=0.05 and
// retry enabled, every refinement succeeds with results identical to the
// clean run and PageReads accounting that stays exact (logical reads only).
func TestSearchFaultSweepTransient(t *testing.T) {
	w := buildDiskWorld(t, 96, 16)
	q := w.query()
	const k = 5

	var sc Scratch
	clean, cleanFetched, err := sc.SearchSq(q, w.allCandidates(), k, w.fetch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanStats := w.pf.Stats()
	if cleanStats.PageReads != int64(cleanFetched*w.pf.PagesPerPoint()) {
		t.Fatalf("clean accounting: fetched %d, PageReads %d", cleanFetched, cleanStats.PageReads)
	}

	w.pf.SetRetry(disk.RetryPolicy{MaxRetries: 20, Backoff: time.Microsecond, MaxBackoff: 50 * time.Microsecond})
	defer w.pf.SetRetry(disk.RetryPolicy{})
	sawRetry := false
	for seed := int64(1); seed <= 8; seed++ {
		w.pf.ResetStats()
		w.pf.SetFaults(disk.NewInjector(disk.FaultPolicy{Seed: seed, Rules: []disk.FaultRule{
			{Kind: disk.FaultError, FirstPage: 0, LastPage: -1, Probability: 0.05, Transient: true},
			{Kind: disk.FaultTorn, FirstPage: 0, LastPage: -1, Probability: 0.02, Transient: true},
		}}))
		got, fetched, err := sc.SearchSq(q, w.allCandidates(), k, w.fetch(), nil)
		if err != nil {
			t.Fatalf("seed %d: transient faults with retry must not fail: %v", seed, err)
		}
		sameResults(t, got, clean)
		st := w.pf.Stats()
		if fetched != cleanFetched {
			t.Fatalf("seed %d: fetched %d != clean %d", seed, fetched, cleanFetched)
		}
		if st.PageReads != cleanStats.PageReads {
			t.Fatalf("seed %d: PageReads %d != clean %d (retries must not inflate logical reads)",
				seed, st.PageReads, cleanStats.PageReads)
		}
		if st.Retries > 0 {
			sawRetry = true
			if st.TransientErrors < st.Retries {
				t.Fatalf("seed %d: %d retries but only %d transient errors", seed, st.Retries, st.TransientErrors)
			}
		}
	}
	w.pf.SetFaults(nil)
	if !sawRetry {
		t.Fatal("sweep never exercised a retry — injection rate too low for the test to mean anything")
	}
}

// TestSearchPermanentFaultAborts: an unretryable fault must abort the search
// with a typed error — never surface a partial result set as complete.
func TestSearchPermanentFaultAborts(t *testing.T) {
	w := buildDiskWorld(t, 96, 16)
	q := w.query()

	// Fail the page of the true nearest neighbor permanently.
	want := w.bruteKNN(q, 1, nil)
	page, err := w.pf.PageOf(want[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	w.pf.SetFaults(disk.NewInjector(disk.FaultPolicy{Rules: []disk.FaultRule{
		{Kind: disk.FaultError, FirstPage: page, LastPage: page, Transient: false},
	}}))
	w.pf.SetRetry(disk.RetryPolicy{MaxRetries: 5, Backoff: time.Microsecond})

	var sc Scratch
	got, _, err := sc.SearchSq(q, w.allCandidates(), 3, w.fetch(), nil)
	if err == nil {
		t.Fatalf("permanent fault must abort, got results %v", got)
	}
	if !disk.IsPermanent(err) {
		t.Fatalf("error should stay typed through the refinement path: %v", err)
	}
	if w.pf.Stats().Retries != 0 {
		t.Fatal("permanent faults must not be retried")
	}
	if len(got) != 0 {
		t.Fatalf("aborted search leaked %d results", len(got))
	}
}

// TestSearchSkipCandidate: a fetcher dropping candidates with
// ErrSkipCandidate (degraded mode) yields exactly the kNN over the remaining
// points, with skipped fetches not counted as refinement I/O.
func TestSearchSkipCandidate(t *testing.T) {
	w := buildDiskWorld(t, 96, 16)
	q := w.query()
	const k = 5

	// Drop every point whose id is ≡ 0 (mod 3) — including the seed point 0,
	// so the skip path is exercised on the best candidate.
	skipped := func(id int) bool { return id%3 == 0 }
	inner := w.fetch()
	skips := 0
	fetch := func(id int) ([]float32, error) {
		if skipped(id) {
			skips++
			return nil, ErrSkipCandidate
		}
		return inner(id)
	}

	var sc Scratch
	got, fetched, err := sc.SearchSq(q, w.allCandidates(), k, fetch, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, w.bruteKNN(q, k, skipped))
	if skips == 0 {
		t.Fatal("skip path not exercised")
	}
	st := w.pf.Stats()
	if st.PageReads != int64(fetched*w.pf.PagesPerPoint()) {
		t.Fatalf("fetched %d but PageReads %d — skipped candidates must not be charged",
			fetched, st.PageReads)
	}

	// Wrapped sentinel must behave identically.
	wrapped := func(id int) ([]float32, error) {
		if skipped(id) {
			return nil, errors.Join(errors.New("shard 2 quarantined"), ErrSkipCandidate)
		}
		return inner(id)
	}
	got2, _, err := sc.SearchSq(q, w.allCandidates(), k, wrapped, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got2, got)
}

// groupWorld maps the disk world onto group-granular fetching: each data page
// is a group.
func (w *diskWorld) groupFetch(t *testing.T, failPages map[int32]bool) (GroupFetch, *int) {
	q := w.query()
	loads := 0
	fetch := func(group int32) ([]int32, []float64, error) {
		if failPages[group] {
			return nil, nil, ErrSkipCandidate
		}
		loads++
		var ids []int32
		var sq []float64
		for i := 0; i < w.ds.Len(); i++ {
			p, err := w.pf.PageOf(i)
			if err != nil {
				return nil, nil, err
			}
			if int32(p) == group {
				ids = append(ids, int32(i))
				sq = append(sq, vec.SqDist(q, w.ds.Point(i)))
			}
		}
		return ids, sq, nil
	}
	return fetch, &loads
}

func (w *diskWorld) groupPending(t *testing.T) []GroupCandidate {
	t.Helper()
	pending := make([]GroupCandidate, w.ds.Len())
	for i := range pending {
		p, err := w.pf.PageOf(i)
		if err != nil {
			t.Fatal(err)
		}
		pending[i] = GroupCandidate{ID: int32(i), Group: int32(p), LBSq: 0}
	}
	return pending
}

// TestSearchGroupsSqSkipGroup: a dropped group excludes exactly its members
// and is attempted only once; loads count only successful reads.
func TestSearchGroupsSqSkipGroup(t *testing.T) {
	w := buildDiskWorld(t, 96, 16)
	q := w.query()
	const k = 5
	pending := w.groupPending(t)

	badPage, err := w.pf.PageOf(0)
	if err != nil {
		t.Fatal(err)
	}
	fail := map[int32]bool{int32(badPage): true}
	fetch, loads := w.groupFetch(t, fail)

	var sc Scratch
	got, gotLoads, err := sc.SearchGroupsSq(nil, pending, k, nil, fetch, nil)
	if err != nil {
		t.Fatal(err)
	}
	exclude := func(id int) bool {
		p, _ := w.pf.PageOf(id)
		return int32(p) == int32(badPage)
	}
	sameResults(t, got, w.bruteKNN(q, k, exclude))
	if gotLoads != *loads {
		t.Fatalf("reported loads %d != actual %d — skipped groups must not count", gotLoads, *loads)
	}
}

// TestSearchBatchSqSkipUnit: a failed unit is skipped by every query that
// demands it, attempted once, and excluded from the load count; surviving
// units still coalesce.
func TestSearchBatchSqSkipUnit(t *testing.T) {
	w := buildDiskWorld(t, 96, 16)
	const k = 5
	q1 := w.query()
	q2 := make([]float32, w.ds.Dim)
	copy(q2, w.ds.Point(1))
	q2[0] -= 0.01

	badPage, err := w.pf.PageOf(0)
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	loads := 0
	fetch := func(unit int32, item int) ([]int32, [][]float32, error) {
		if unit == int32(badPage) {
			attempts++
			return nil, nil, ErrSkipCandidate
		}
		loads++
		var ids []int32
		var pts [][]float32
		for i := 0; i < w.ds.Len(); i++ {
			p, err := w.pf.PageOf(i)
			if err != nil {
				return nil, nil, err
			}
			if int32(p) == unit {
				ids = append(ids, int32(i))
				pt := make([]float32, w.ds.Dim)
				copy(pt, w.ds.Point(i))
				pts = append(pts, pt)
			}
		}
		return ids, pts, nil
	}

	pending := w.groupPending(t)
	items := []BatchQuery{
		{Q: q1, Pending: pending, K: k},
		{Q: q2, Pending: pending, K: k},
	}
	out, gotLoads, err := SearchBatchSq(items, fetch)
	if err != nil {
		t.Fatal(err)
	}
	exclude := func(id int) bool {
		p, _ := w.pf.PageOf(id)
		return int32(p) == int32(badPage)
	}
	sameResults(t, out[0], w.bruteKNN(q1, k, exclude))
	sameResults(t, out[1], w.bruteKNN(q2, k, exclude))
	if attempts != 1 {
		t.Fatalf("failed unit attempted %d times, want 1 (failure must be cached)", attempts)
	}
	if gotLoads != loads {
		t.Fatalf("reported loads %d != actual %d", gotLoads, loads)
	}
}

// TestSearchBatchSqPermanentAborts: a non-skip fetch error aborts the whole
// batch rather than returning partial result sets.
func TestSearchBatchSqPermanentAborts(t *testing.T) {
	w := buildDiskWorld(t, 48, 16)
	boom := errors.New("boom")
	fetch := func(unit int32, item int) ([]int32, [][]float32, error) {
		return nil, nil, boom
	}
	items := []BatchQuery{{Q: w.query(), Pending: w.groupPending(t), K: 3}}
	out, _, err := SearchBatchSq(items, fetch)
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped fetch error, got %v", err)
	}
	if out != nil {
		t.Fatal("aborted batch leaked results")
	}
}
