package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecGeometry(t *testing.T) {
	cases := []struct {
		dim, tau, words, itemBits int
	}{
		{2, 2, 1, 64},       // Figure 5: 4-bit point fits one word
		{150, 10, 24, 1536}, // NUS-WIDE default: 1500 bits → 24 words
		{960, 8, 120, 7680},
		{64, 1, 1, 64},
		{65, 1, 2, 128},
	}
	for _, c := range cases {
		cd := NewCodec(c.dim, c.tau)
		if cd.Words() != c.words || cd.ItemBits() != c.itemBits {
			t.Errorf("dim=%d tau=%d: Words=%d ItemBits=%d, want %d/%d",
				c.dim, c.tau, cd.Words(), cd.ItemBits(), c.words, c.itemBits)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(50)
		tau := 1 + rng.Intn(32)
		c := NewCodec(dim, tau)
		codes := make([]int, dim)
		for i := range codes {
			codes[i] = rng.Intn(c.MaxCode() + 1)
		}
		words := c.Encode(codes, nil)
		if len(words) != c.Words() {
			t.Fatalf("encoded length %d != %d", len(words), c.Words())
		}
		back := c.Decode(words, nil)
		for i := range codes {
			if back[i] != codes[i] {
				t.Fatalf("dim=%d tau=%d: code %d roundtripped %d→%d", dim, tau, i, codes[i], back[i])
			}
			if got := c.At(words, i); got != codes[i] {
				t.Fatalf("At(%d) = %d, want %d", i, got, codes[i])
			}
		}
	}
}

func TestEncodeRoundTripQuick(t *testing.T) {
	c := NewCodec(13, 7) // straddles word boundaries often
	f := func(raw [13]uint16) bool {
		codes := make([]int, 13)
		for i, v := range raw {
			codes[i] = int(v) % (c.MaxCode() + 1)
		}
		back := c.Decode(c.Encode(codes, nil), nil)
		for i := range codes {
			if back[i] != codes[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPaperExampleEncoding(t *testing.T) {
	// Figure 5c: p1=(2,20) with the equi-width histogram over [0..31], τ=2
	// becomes codes (0, 2) = bit-string 00|10.
	c := NewCodec(2, 2)
	words := c.Encode([]int{0, 2}, nil)
	if c.At(words, 0) != 0 || c.At(words, 1) != 2 {
		t.Fatalf("p1 encoding wrong: %v", words)
	}
	// Both codes fit in the low 4 bits of one word: 0b1000 = 8.
	if words[0] != 8 {
		t.Fatalf("packed word = %d, want 8", words[0])
	}
}

func TestEncodeReuseBuffers(t *testing.T) {
	c := NewCodec(4, 5)
	buf := make([]uint64, c.Words())
	codes := []int{1, 2, 3, 4}
	out := c.Encode(codes, buf)
	if &out[0] != &buf[0] {
		t.Fatal("Encode did not reuse dst")
	}
	// Re-encode different codes into a dirty buffer: stale bits must clear.
	out = c.Encode([]int{31, 31, 31, 31}, buf)
	out = c.Encode([]int{0, 0, 0, 0}, buf)
	for _, w := range out {
		if w != 0 {
			t.Fatalf("stale bits survived: %x", w)
		}
	}
	dst := make([]int, 4)
	got := c.Decode(out, dst)
	if &got[0] != &dst[0] {
		t.Fatal("Decode did not reuse dst")
	}
}

func TestCodecPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dim0":     func() { NewCodec(0, 4) },
		"tau0":     func() { NewCodec(4, 0) },
		"tau33":    func() { NewCodec(4, 33) },
		"badLen":   func() { NewCodec(3, 4).Encode([]int{1}, nil) },
		"overflow": func() { NewCodec(2, 2).Encode([]int{5, 0}, nil) },
		"shortDst": func() { NewCodec(64, 8).Encode(make([]int, 64), make([]uint64, 1)) },
		"shortDec": func() { c := NewCodec(4, 4); c.Decode(c.Encode(make([]int, 4), nil), make([]int, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
