package core

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/lsh"
	"exploitbit/internal/shard"
	"exploitbit/internal/vec"
)

// checkKNN asserts ids are exactly the k nearest candidates of q by
// distance (the Algorithm 1 contract, indifferent to tie order).
func checkKNN(t *testing.T, w *world, q []float32, ids []int, k int) {
	t.Helper()
	cids, _ := candFunc(w.ix)(q, k)
	want := knnOfCandidates(w.ds, q, cids, k)
	if len(ids) != len(want) {
		t.Fatalf("%d results, want %d", len(ids), len(want))
	}
	got := make([]float64, len(ids))
	for i, id := range ids {
		got[i] = vec.Dist(q, w.ds.Point(id))
	}
	sort.Float64s(got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d: dist %v, want %v", i, got[i], want[i])
		}
	}
}

// buildTieWorld is buildWorld over a dataset whose last eighth duplicates
// early points, so k-th-distance ties — the case where candidate *order*
// decides the result set — are common.
func buildTieWorld(t testing.TB, n, dim int, seed int64) *world {
	t.Helper()
	base := dataset.Generate(dataset.Config{Name: "tie", N: n, Dim: dim, Clusters: 5, Std: 0.05, Ndom: 256, Seed: seed})
	data := make([]float32, 0, n*dim)
	for i := 0; i < n; i++ {
		src := i
		if i >= n-n/8 {
			src = i % (n / 8)
		}
		data = append(data, base.Point(src)...)
	}
	ds := dataset.New("tie", dim, data, base.Domain)
	pf, err := disk.BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	ix := lsh.Build(ds, lsh.Params{Seed: seed + 1, MaxM: 48})
	log := dataset.GenLog(ds, dataset.LogConfig{PoolSize: 60, Length: 400, ZipfS: 1.4, Perturb: 0.005, Seed: seed + 2})
	wl, qtest := log.Split(16)
	prof := BuildProfile(ds, candFunc(ix), wl, 10)
	return &world{ds: ds, pf: pf, ix: ix, prof: prof, wl: wl, qtest: qtest}
}

// buildShardSpecs partitions the world's dataset and materializes one point
// file per shard (same page size and Tio as the world's file).
func buildShardSpecs(t testing.TB, w *world, n int, layout shard.Layout) ([]ShardSpec, []int32, []int32) {
	t.Helper()
	p, err := shard.Build(w.ds, n, layout, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specs := make([]ShardSpec, 0, p.N)
	for s := 0; s < p.N; s++ {
		sds := p.SubDataset(w.ds, s)
		pf, err := disk.BuildPointFile(filepath.Join(dir, fmt.Sprintf("pf%d", s)), sds, nil, 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pf.Close() })
		specs = append(specs, ShardSpec{PF: pf, DS: sds, GlobalIDs: p.Shards[s]})
	}
	return specs, p.Owner, p.Local
}

// diffStats reports the first mismatching field between the unsharded and
// sharded execution of one query, or "".
func diffStats(a, b QueryStats) string {
	switch {
	case a.Candidates != b.Candidates:
		return fmt.Sprintf("Candidates %d != %d", a.Candidates, b.Candidates)
	case a.Hits != b.Hits:
		return fmt.Sprintf("Hits %d != %d", a.Hits, b.Hits)
	case a.Pruned != b.Pruned:
		return fmt.Sprintf("Pruned %d != %d", a.Pruned, b.Pruned)
	case a.TrueHits != b.TrueHits:
		return fmt.Sprintf("TrueHits %d != %d", a.TrueHits, b.TrueHits)
	case a.Remaining != b.Remaining:
		return fmt.Sprintf("Remaining %d != %d", a.Remaining, b.Remaining)
	case a.Fetched != b.Fetched:
		return fmt.Sprintf("Fetched %d != %d", a.Fetched, b.Fetched)
	case a.PageReads != b.PageReads:
		return fmt.Sprintf("PageReads %d != %d", a.PageReads, b.PageReads)
	case a.UsedLUT != b.UsedLUT:
		return fmt.Sprintf("UsedLUT %v != %v", a.UsedLUT, b.UsedLUT)
	}
	return ""
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedSearchBitIdentical is the tentpole's contract: for every shard
// count, layout and cache method, the scatter-gather engine returns the same
// ids in the same order with the same Pruned/TrueHits/Remaining partition
// and the same I/O charge as the monolithic engine — on a tie-heavy dataset
// where any ordering slip would surface.
func TestShardedSearchBitIdentical(t *testing.T) {
	w := buildTieWorld(t, 1203, 16, 3)
	cfgOf := func(m Method) Config { return Config{Method: m, CacheBytes: 64 << 10, Tau: 6} }
	methods := []Method{HCO, HCW, Exact, MHCR}

	for _, m := range methods {
		ref, err := NewEngine(w.pf, w.prof, candFunc(w.ix), cfgOf(m))
		if err != nil {
			t.Fatal(err)
		}
		for _, layout := range []shard.Layout{shard.RoundRobin, shard.Clustered} {
			for _, n := range []int{1, 2, 3, 7} {
				specs, owner, local := buildShardSpecs(t, w, n, layout)
				se, err := NewShardedEngine(specs, owner, local, w.prof, candFunc(w.ix), cfgOf(m))
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", m, layout, n, err)
				}
				for _, k := range []int{1, 10} {
					for qi, q := range w.qtest {
						wantIDs, wantSt, err := ref.SearchCtx(context.Background(), q, k)
						if err != nil {
							t.Fatal(err)
						}
						gotIDs, gotSt, err := se.SearchCtx(context.Background(), q, k)
						if err != nil {
							t.Fatalf("%s/%s/%d shards, q%d k%d: %v", m, layout, n, qi, k, err)
						}
						if !sameIDs(wantIDs, gotIDs) {
							t.Fatalf("%s/%s/%d shards, q%d k%d: ids %v != %v", m, layout, n, qi, k, gotIDs, wantIDs)
						}
						if d := diffStats(wantSt, gotSt); d != "" {
							t.Fatalf("%s/%s/%d shards, q%d k%d: %s", m, layout, n, qi, k, d)
						}
					}
				}
			}
		}
	}
}

// TestShardedBatchBitIdentical pins the batch path: one cross-query
// coalesced refinement over (shard, unit) ids must read the same pages and
// return the same results as the unsharded batch.
func TestShardedBatchBitIdentical(t *testing.T) {
	w := buildTieWorld(t, 1203, 16, 4)
	cfg := Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6}
	ref, err := NewEngine(w.pf, w.prof, candFunc(w.ix), cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	for _, layout := range []shard.Layout{shard.RoundRobin, shard.Clustered} {
		for _, n := range []int{1, 2, 3, 7} {
			specs, owner, local := buildShardSpecs(t, w, n, layout)
			se, err := NewShardedEngine(specs, owner, local, w.prof, candFunc(w.ix), cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantIDs, wantSts, err := ref.SearchBatchCtx(context.Background(), w.qtest, k)
			if err != nil {
				t.Fatal(err)
			}
			gotIDs, gotSts, err := se.SearchBatchCtx(context.Background(), w.qtest, k)
			if err != nil {
				t.Fatalf("%s/%d shards: %v", layout, n, err)
			}
			var wantPages, gotPages int64
			for j := range w.qtest {
				if !sameIDs(wantIDs[j], gotIDs[j]) {
					t.Fatalf("%s/%d shards, q%d: ids %v != %v", layout, n, j, gotIDs[j], wantIDs[j])
				}
				if d := diffStats(wantSts[j], gotSts[j]); d != "" {
					t.Fatalf("%s/%d shards, q%d: %s", layout, n, j, d)
				}
				wantPages += wantSts[j].PageReads
				gotPages += gotSts[j].PageReads
			}
			if wantPages != gotPages {
				t.Fatalf("%s/%d shards: ΣPageReads %d != %d", layout, n, gotPages, wantPages)
			}
		}
	}
}

// TestShardedAggregatesAttribution checks that per-shard statistic blocks
// partition the global aggregate: candidate, hit and fetch totals across
// shards equal the router's own accounting.
func TestShardedAggregatesAttribution(t *testing.T) {
	w := buildWorld(t, 1100, 16, 5)
	specs, owner, local := buildShardSpecs(t, w, 3, shard.RoundRobin)
	se, err := NewShardedEngine(specs, owner, local, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.qtest {
		if _, _, err := se.Search(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	g := se.Aggregate()
	var sumCands, sumHits, sumFetched, sumPages, sumPruned, sumTrue, sumRem int64
	for _, sa := range se.ShardAggregates() {
		sumCands += sa.Agg.Candidates
		sumHits += sa.Agg.Hits
		sumFetched += sa.Agg.Fetched
		sumPages += sa.Agg.PageReads
		sumPruned += sa.Agg.Pruned
		sumTrue += sa.Agg.TrueHits
		sumRem += sa.Agg.Remaining
	}
	if sumCands != g.Candidates || sumHits != g.Hits || sumFetched != g.Fetched || sumPages != g.PageReads {
		t.Fatalf("shard sums (cands %d hits %d fetched %d pages %d) != global (%d %d %d %d)",
			sumCands, sumHits, sumFetched, sumPages, g.Candidates, g.Hits, g.Fetched, g.PageReads)
	}
	if sumPruned != g.Pruned || sumTrue != g.TrueHits || sumRem != g.Remaining {
		t.Fatalf("shard partition sums (pruned %d true %d rem %d) != global (%d %d %d)",
			sumPruned, sumTrue, sumRem, g.Pruned, g.TrueHits, g.Remaining)
	}
}

// TestShardedSnapshotRoundTrip saves a sharded engine as a version-2
// snapshot and reloads it over the same layout; the reload must serve
// bit-identically. Cross-loading v1/v2 through the wrong entry point must
// fail with a descriptive error.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	w := buildWorld(t, 1100, 16, 6)
	for _, m := range []Method{HCO, Exact, MHCR} {
		cfg := Config{Method: m, CacheBytes: 64 << 10, Tau: 6}
		specs, owner, local := buildShardSpecs(t, w, 3, shard.Clustered)
		se, err := NewShardedEngine(specs, owner, local, w.prof, candFunc(w.ix), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := se.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadEngine(w.pf, w.ds, candFunc(w.ix), bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("LoadEngine accepted a sharded (v2) snapshot")
		}
		loaded, err := LoadShardedEngine(specs, owner, local, candFunc(w.ix), bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for qi, q := range w.qtest {
			wantIDs, wantSt, err := se.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			gotIDs, gotSt, err := loaded.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(wantIDs, gotIDs) {
				t.Fatalf("%s q%d: loaded ids %v != %v", m, qi, gotIDs, wantIDs)
			}
			if d := diffStats(wantSt, gotSt); d != "" {
				t.Fatalf("%s q%d: loaded stats differ: %s", m, qi, d)
			}
		}

		// A v1 snapshot through the sharded loader must also fail clearly.
		var v1 bytes.Buffer
		eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.WriteSnapshot(&v1); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadShardedEngine(specs, owner, local, candFunc(w.ix), bytes.NewReader(v1.Bytes())); err == nil {
			t.Fatal("LoadShardedEngine accepted a single-engine (v1) snapshot")
		}
	}
}

// TestShardedMaintainerRebuildDuringSearches hammers concurrent searches
// against one shard's RCU rebuild (run under -race in CI): the swap must
// never disturb in-flight queries or the other shards, and results must stay
// correct (the same set as before the rebuild, since the workload is
// unchanged).
func TestShardedMaintainerRebuildDuringSearches(t *testing.T) {
	w := buildWorld(t, 1203, 16, 9)
	specs, owner, local := buildShardSpecs(t, w, 3, shard.RoundRobin)
	gate := make(chan struct{})
	m, err := NewShardedMaintainer(specs, owner, local, w.prof, candFunc(w.ix), 10,
		Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6},
		MaintainOptions{RebuildGate: gate})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Seed every shard's drift window so the rebuild has a workload.
	for _, q := range w.qtest {
		if _, _, err := m.Search(q, 10); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := w.qtest[(g+i)%len(w.qtest)]
				if _, _, err := m.Search(q, 10); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}(g)
	}

	if !m.RebuildShardAsync(1) {
		t.Fatal("shard 1 rebuild did not launch")
	}
	close(gate) // release the parked build under full search load

	deadline := time.After(10 * time.Second)
	for m.ShardStats()[1].Rebuilds == 0 {
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-deadline:
			t.Fatal("shard 1 rebuild did not complete")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	st := m.ShardStats()
	if st[1].Rebuilds != 1 || st[0].Rebuilds != 0 || st[2].Rebuilds != 0 {
		t.Fatalf("rebuild counts = [%d %d %d], want [0 1 0]", st[0].Rebuilds, st[1].Rebuilds, st[2].Rebuilds)
	}
	if st[1].LastRebuildWall <= 0 || st[1].LastRebuildAt.IsZero() {
		t.Fatalf("shard 1 last-rebuild telemetry missing: wall=%v at=%v", st[1].LastRebuildWall, st[1].LastRebuildAt)
	}
	// Post-rebuild searches still serve correct results.
	for _, q := range w.qtest {
		ids, _, err := m.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		checkKNN(t, w, q, ids, 10)
	}
}

// TestShardedMaintainerForceRebuildStats exercises the synchronous per-shard
// rebuild seam and the aggregate Stats rollup (wall clock + timestamp).
func TestShardedMaintainerForceRebuildStats(t *testing.T) {
	w := buildWorld(t, 1100, 16, 11)
	specs, owner, local := buildShardSpecs(t, w, 3, shard.RoundRobin)
	m, err := NewShardedMaintainer(specs, owner, local, w.prof, candFunc(w.ix), 10,
		Config{Method: HCO, CacheBytes: 64 << 10, Tau: 6}, MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.ForceShardRebuild(2); err == nil {
		t.Fatal("ForceShardRebuild with an empty window did not fail")
	}
	for _, q := range w.qtest {
		if _, _, err := m.Search(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	before := time.Now()
	if err := m.ForceShardRebuild(2); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rebuilds != 1 || st.RebuildErrors != 0 {
		t.Fatalf("aggregate stats = %+v, want 1 rebuild", st)
	}
	if st.LastRebuildWall <= 0 {
		t.Fatalf("aggregate wall = %v, want > 0", st.LastRebuildWall)
	}
	if st.LastRebuildAt.Before(before) {
		t.Fatalf("aggregate timestamp %v predates the rebuild start %v", st.LastRebuildAt, before)
	}
	per := m.ShardStats()
	if per[2].Rebuilds != 1 || per[0].Rebuilds != 0 || per[1].Rebuilds != 0 {
		t.Fatalf("per-shard rebuilds = [%d %d %d], want [0 0 1]", per[0].Rebuilds, per[1].Rebuilds, per[2].Rebuilds)
	}
	// The rebuilt shard serves from a shard-local histogram, so per-query
	// stats may shift — but result correctness is non-negotiable.
	for _, q := range w.qtest {
		ids, _, err := m.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		checkKNN(t, w, q, ids, 10)
	}
}
