package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"exploitbit"
	"exploitbit/internal/core"
)

// AdaptiveReport records the adaptive-τ scenario (BENCH_6.json): a Zipf
// workload whose hot set collapses onto a handful of queries mid-run, served
// by a static-τ maintainer and by one with the Section 4 drift watchdog
// armed. Both see identical traffic and end with an equally fresh cache
// (the static engine is rebuilt from the same post-drift window), so the
// measured PageReads/C_refine gap is purely the retuned code length.
type AdaptiveReport struct {
	GeneratedAt string `json:"generated_at"`
	K           int    `json:"k"`
	BudgetBytes int64  `json:"budget_bytes"`
	InitialTau  int    `json:"initial_tau"`

	RetuneThreshold float64 `json:"retune_threshold"`
	RetuneWindows   int     `json:"retune_windows"`

	// Retunes is how many watchdog rebuilds the adaptive engine installed
	// during the drift phase (≥ 1 or the scenario errors out).
	Retunes int `json:"retunes"`

	// Improvement is the relative PageReads cut of the adaptive row over the
	// static row on the post-drift hot set.
	Improvement float64 `json:"page_reads_improvement"`

	Rows []AdaptiveRow `json:"rows"`
}

// AdaptiveRow is one engine's measured cost on the post-drift hot set.
type AdaptiveRow struct {
	Name         string  `json:"name"`
	Tau          int     `json:"tau"`
	Retunes      int     `json:"retunes"`
	AvgPageReads float64 `json:"avg_page_reads"`
	AvgRemaining float64 `json:"avg_remaining"` // measured C_refine
	RhoHit       float64 `json:"rho_hit"`
}

// RunAdaptive measures static-τ vs adaptive-τ refinement cost under a
// drifting Zipf workload and writes the report as indented JSON to jsonPath
// (skipped when empty), echoing a summary to w.
func RunAdaptive(w io.Writer, env *Env, jsonPath string) (*AdaptiveReport, error) {
	const k = 5
	const budget = int64(8 << 10)

	// The drift world: a broad, flat workload trains the system (every one of
	// 400 distinct queries equally likely — the capacity-bound regime where a
	// small τ wins); mid-run the traffic collapses onto a Zipf-skewed hot set
	// of 8 queries that fits the cache even at the domain's maximum useful τ.
	// That is the regime shift where re-tuning pays the most.
	ds := exploitbit.Generate(exploitbit.DatasetConfig{
		Name: "adaptive-drift", N: 3000, Dim: 12, Clusters: 10, Std: 0.03,
		Ndom: 256, Seed: 97, ValueCoherence: 0.7,
	})
	logA := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 400, Length: 401, ZipfS: 1.05, Perturb: 0.005, Seed: 104,
	})
	logB := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 8, Length: 256, ZipfS: 1.3, Perturb: 0.005, Seed: 205,
	})
	wlA := logA.Pool          // uniform pass over the distinct trained queries
	drifted := logB.Queries() // Zipf arrivals over the new hot set
	hot := logB.Pool

	sys, err := exploitbit.Open(ds, wlA, exploitbit.Options{Dir: env.Dir, Tio: env.Tio, WorkloadK: k})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	// Serve the model's own recommendation for the trained workload, so only
	// genuine drift — never a mistuned start — can justify a retune.
	initialTau := sys.OptimalTau(budget)
	cfg := core.Config{Method: exploitbit.HCO, CacheBytes: budget, Tau: initialTau}
	opt := exploitbit.MaintainOptions{WindowSize: 16, MinQueriesBetweenRebuilds: 16}
	aopt := opt
	aopt.AdaptiveTau = true
	aopt.RetuneThreshold = 0.10
	aopt.RetuneWindows = 2

	static, err := sys.Maintained(cfg, opt)
	if err != nil {
		return nil, err
	}
	defer static.Close()
	adaptive, err := sys.Maintained(cfg, aopt)
	if err != nil {
		return nil, err
	}
	defer adaptive.Close()

	feed := func(m *exploitbit.Maintainer, pool [][]float32, n int) error {
		for i := 0; i < n; i++ {
			if _, _, err := m.Search(pool[i%len(pool)], k); err != nil {
				return err
			}
		}
		return nil
	}

	// Phase A: both engines serve the trained workload.
	if err := feed(static, wlA, 64); err != nil {
		return nil, err
	}
	if err := feed(adaptive, wlA, 64); err != nil {
		return nil, err
	}

	// Phase B: the hot set shifts; drive the adaptive engine until the
	// watchdog's retune rebuild lands.
	deadline := time.Now().Add(60 * time.Second)
	for adaptive.Stats().Retunes == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: adaptive watchdog never retuned (stats %+v)", adaptive.Stats())
		}
		if err := feed(adaptive, drifted, 16); err != nil {
			return nil, err
		}
	}
	for adaptive.Stats().RebuildInFlight {
		time.Sleep(time.Millisecond)
	}

	// The static engine gets the same drifted traffic and an equally fresh
	// cache from its own (pure hot-set) window — at the frozen τ.
	if err := feed(static, drifted, 200); err != nil {
		return nil, err
	}
	for static.Stats().RebuildInFlight {
		time.Sleep(time.Millisecond)
	}
	if err := static.ForceRebuild(k); err != nil {
		return nil, err
	}

	measure := func(name string, m *exploitbit.Maintainer) (AdaptiveRow, error) {
		eng := m.Engine()
		var agg core.Aggregate
		for i := 0; i < 64; i++ {
			_, st, err := eng.Search(hot[i%len(hot)], k)
			if err != nil {
				return AdaptiveRow{}, err
			}
			agg.Add(st)
		}
		return AdaptiveRow{
			Name:         name,
			Tau:          m.Stats().Tau,
			Retunes:      m.Stats().Retunes,
			AvgPageReads: agg.AvgPageReads(),
			AvgRemaining: agg.AvgRemaining(),
			RhoHit:       agg.HitRatio(),
		}, nil
	}

	rep := &AdaptiveReport{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		K:               k,
		BudgetBytes:     budget,
		InitialTau:      initialTau,
		RetuneThreshold: aopt.RetuneThreshold,
		RetuneWindows:   aopt.RetuneWindows,
		Retunes:         adaptive.Stats().Retunes,
	}
	for _, e := range []struct {
		name string
		m    *exploitbit.Maintainer
	}{{"static", static}, {"adaptive", adaptive}} {
		row, err := measure(e.name, e.m)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(w, "adaptive: %-8s τ=%d retunes=%d  %7.1f pages/q  %7.1f C_refine  ρ_hit=%.2f\n",
			row.Name, row.Tau, row.Retunes, row.AvgPageReads, row.AvgRemaining, row.RhoHit)
	}
	if s := rep.Rows[0].AvgPageReads; s > 0 {
		rep.Improvement = (s - rep.Rows[1].AvgPageReads) / s
	}
	fmt.Fprintf(w, "adaptive: retune cut PageReads by %.0f%% on the drifted hot set\n", rep.Improvement*100)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return nil, err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "adaptive: report written to %s\n", jsonPath)
	}
	return rep, nil
}
