package histogram

import (
	"fmt"
	"math/bits"
)

// MD is the multi-dimensional histogram of Section 3.6.2 (mHC-R): space is
// partitioned into bounding rectangles (in this library, the leaf MBRs of an
// STR-bulk-loaded R-tree), and a point's approximate representation is just
// the identifier of its enclosing rectangle. Appendix B explains why this
// loses to the global histogram in high dimensions — the experiments here
// reproduce exactly that collapse.
type MD struct {
	lo, hi [][]float32 // per-bucket MBR corners, raw coordinate space
	assign []int32     // point id -> bucket id
}

// NewMD builds an MD histogram from bucket rectangles and the point→bucket
// assignment. Rectangles must all share a dimensionality.
func NewMD(lo, hi [][]float32, assign []int) (*MD, error) {
	if len(lo) == 0 || len(lo) != len(hi) {
		return nil, fmt.Errorf("histogram: MD needs matching, non-empty rectangle lists")
	}
	d := len(lo[0])
	for i := range lo {
		if len(lo[i]) != d || len(hi[i]) != d {
			return nil, fmt.Errorf("histogram: MD rectangle %d has wrong dimensionality", i)
		}
		for j := 0; j < d; j++ {
			if lo[i][j] > hi[i][j] {
				return nil, fmt.Errorf("histogram: MD rectangle %d inverted in dim %d", i, j)
			}
		}
	}
	m := &MD{lo: lo, hi: hi, assign: make([]int32, len(assign))}
	for p, b := range assign {
		if b < 0 || b >= len(lo) {
			return nil, fmt.Errorf("histogram: MD assignment of point %d to bucket %d out of range", p, b)
		}
		m.assign[p] = int32(b)
	}
	return m, nil
}

// B returns the number of rectangles.
func (m *MD) B() int { return len(m.lo) }

// Dim returns the rectangle dimensionality.
func (m *MD) Dim() int { return len(m.lo[0]) }

// CodeLen returns the bits per point: one bucket identifier.
func (m *MD) CodeLen() int {
	if m.B() <= 1 {
		return 1
	}
	return bits.Len(uint(m.B() - 1))
}

// BucketOf returns the bucket containing point id.
func (m *MD) BucketOf(pointID int) int { return int(m.assign[pointID]) }

// Rect returns the MBR of bucket b. The returned slices alias internal
// storage and must not be modified.
func (m *MD) Rect(b int) (lo, hi []float32) { return m.lo[b], m.hi[b] }

// SpaceBytes reports the rectangle-table footprint (2·d float32 per bucket),
// the reason Table 3 shows mHC-R occupying ~1.2 MB where HC-* take 8 KB.
func (m *MD) SpaceBytes() int { return m.B() * m.Dim() * 8 }
