package shard

import (
	"reflect"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
)

func testDS(t *testing.T, n, dim int) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Config{
		Name: "shard-test", N: n, Dim: dim, Clusters: 4, Std: 0.05,
		Skew: 1.2, Ndom: 256, Seed: 5,
	})
}

// checkValid asserts the partition is a bijection: every global id owned by
// exactly one shard, Local/Shards mutually inverse, sizes summing to n.
func checkValid(t *testing.T, p *Partition, n int) {
	t.Helper()
	if len(p.Owner) != n || len(p.Local) != n {
		t.Fatalf("owner/local cover %d/%d ids, want %d", len(p.Owner), len(p.Local), n)
	}
	total := 0
	for s, ids := range p.Shards {
		total += len(ids)
		for l, g := range ids {
			if p.Owner[g] != int32(s) {
				t.Fatalf("shard %d holds global %d but Owner says %d", s, g, p.Owner[g])
			}
			if p.Local[g] != int32(l) {
				t.Fatalf("global %d has local %d, Shards says %d", g, p.Local[g], l)
			}
		}
	}
	if total != n {
		t.Fatalf("shards hold %d points, want %d", total, n)
	}
}

func TestShardBuildRoundRobinValidAndDeterministic(t *testing.T) {
	ds := testDS(t, 1203, 16) // 4096/64 = 64 points per unit; 19 units
	for _, n := range []int{1, 2, 3, 7} {
		a, err := Build(ds, n, RoundRobin, disk.DefaultPageSize)
		if err != nil {
			t.Fatalf("Build(%d): %v", n, err)
		}
		checkValid(t, a, ds.Len())
		b, err := Build(ds, n, RoundRobin, disk.DefaultPageSize)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round-robin partition with %d shards is not deterministic", n)
		}
	}
}

func TestShardBuildClusteredValidAndDeterministic(t *testing.T) {
	ds := testDS(t, 1203, 16)
	for _, n := range []int{2, 3, 7} {
		a, err := Build(ds, n, Clustered, disk.DefaultPageSize)
		if err != nil {
			t.Fatalf("Build(%d): %v", n, err)
		}
		checkValid(t, a, ds.Len())
		b, err := Build(ds, n, Clustered, disk.DefaultPageSize)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("clustered partition with %d shards is not deterministic", n)
		}
	}
}

// TestUnitGranularity asserts whole fetch units stay together: all points of
// a full unit land on the same shard at consecutive local ids, so local page
// boundaries align with global ones and batch coalescing sees the same page
// count sharded and unsharded.
func TestShardUnitGranularity(t *testing.T) {
	ds := testDS(t, 1203, 16)
	unitSize := disk.PointsPerUnit(ds.Dim, disk.DefaultPageSize)
	if unitSize != 64 {
		t.Fatalf("unit size = %d, want 64 (dim 16, 4096B pages)", unitSize)
	}
	for _, layout := range []Layout{RoundRobin, Clustered} {
		p, err := Build(ds, 3, layout, disk.DefaultPageSize)
		if err != nil {
			t.Fatal(err)
		}
		if p.UnitSize != unitSize {
			t.Fatalf("%s: partition unit size %d, want %d", layout, p.UnitSize, unitSize)
		}
		units := (ds.Len() + unitSize - 1) / unitSize
		for u := 0; u < units; u++ {
			lo, hi := u*unitSize, min((u+1)*unitSize, ds.Len())
			s := p.Owner[lo]
			for g := lo; g < hi; g++ {
				if p.Owner[g] != s {
					t.Fatalf("%s: unit %d split across shards %d and %d", layout, u, s, p.Owner[g])
				}
				if g > lo && p.Local[g] != p.Local[g-1]+1 {
					t.Fatalf("%s: unit %d not at consecutive local ids (%d then %d)",
						layout, u, p.Local[g-1], p.Local[g])
				}
			}
		}
	}
}

// TestPartialUnitLast asserts the trailing partial unit sits at the end of
// its shard's local order: anywhere else it would shift the start of the
// next unit off a local page boundary.
func TestShardPartialUnitLast(t *testing.T) {
	ds := testDS(t, 1203, 16) // 1203 = 18*64 + 51: unit 18 is partial
	unitSize := disk.PointsPerUnit(ds.Dim, disk.DefaultPageSize)
	lastUnitStart := (ds.Len() / unitSize) * unitSize
	for _, layout := range []Layout{RoundRobin, Clustered} {
		for _, n := range []int{2, 3, 7} {
			p, err := Build(ds, n, layout, disk.DefaultPageSize)
			if err != nil {
				t.Fatal(err)
			}
			s := p.Owner[lastUnitStart]
			want := int32(len(p.Shards[s]) - (ds.Len() - lastUnitStart))
			if p.Local[lastUnitStart] != want {
				t.Fatalf("%s/%d shards: partial unit starts at local %d, want %d (end of shard %d)",
					layout, n, p.Local[lastUnitStart], want, s)
			}
		}
	}
}

func TestShardBuildErrors(t *testing.T) {
	ds := testDS(t, 130, 16) // 3 units (64+64+2)
	if _, err := Build(ds, 0, RoundRobin, disk.DefaultPageSize); err == nil {
		t.Fatal("Build with 0 shards did not fail")
	}
	if _, err := Build(ds, 4, RoundRobin, disk.DefaultPageSize); err == nil {
		t.Fatal("Build with more shards than fetch units did not fail")
	}
	if _, err := Build(ds, 2, Layout("zigzag"), disk.DefaultPageSize); err == nil {
		t.Fatal("Build with unknown layout did not fail")
	}
	if _, err := Build(ds, 3, RoundRobin, disk.DefaultPageSize); err != nil {
		t.Fatalf("Build with shards == units failed: %v", err)
	}
}

func TestShardSubDataset(t *testing.T) {
	ds := testDS(t, 400, 16)
	p, err := Build(ds, 3, Clustered, disk.DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < p.N; s++ {
		sub := p.SubDataset(ds, s)
		if sub.Len() != len(p.Shards[s]) || sub.Dim != ds.Dim {
			t.Fatalf("shard %d sub-dataset is %dx%d, want %dx%d",
				s, sub.Len(), sub.Dim, len(p.Shards[s]), ds.Dim)
		}
		for l, g := range p.Shards[s] {
			want, got := ds.Point(int(g)), sub.Point(l)
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("shard %d local %d differs from global %d at dim %d", s, l, g, j)
				}
			}
		}
	}
}
