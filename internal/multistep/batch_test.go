package multistep

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"exploitbit/internal/vec"
)

// batchWorld synthesizes real vectors partitioned into fetch units, so the
// batch scheduler's own distance computations can be checked against the
// per-query paths.
type batchWorld struct {
	dim   int
	pts   map[int32][]float32
	group map[int32]int32
	ids   map[int32][]int32
}

func makeBatchWorld(rng *rand.Rand, nGroups, perGroup, dim int) *batchWorld {
	w := &batchWorld{
		dim:   dim,
		pts:   map[int32][]float32{},
		group: map[int32]int32{},
		ids:   map[int32][]int32{},
	}
	id := int32(0)
	for g := int32(0); g < int32(nGroups); g++ {
		for i := 0; i < perGroup; i++ {
			p := make([]float32, dim)
			for d := range p {
				p[d] = rng.Float32() * 10
			}
			w.pts[id] = p
			w.group[id] = g
			w.ids[g] = append(w.ids[g], id)
			id++
		}
	}
	return w
}

func (w *batchWorld) randQuery(rng *rand.Rand) []float32 {
	q := make([]float32, w.dim)
	for d := range q {
		q[d] = rng.Float32() * 10
	}
	return q
}

// batchFetch counts unit loads; the returned slices are fresh per call, as
// the BatchFetch contract requires.
func (w *batchWorld) batchFetch(loads *int) BatchFetch {
	return func(unit int32, item int) ([]int32, [][]float32, error) {
		*loads++
		ids := append([]int32(nil), w.ids[unit]...)
		pts := make([][]float32, len(ids))
		for i, id := range ids {
			pts[i] = w.pts[id]
		}
		return ids, pts, nil
	}
}

// groupFetchFor adapts the world to the per-query GroupFetch for query q.
func (w *batchWorld) groupFetchFor(q []float32, loads *int) GroupFetch {
	return func(g int32) ([]int32, []float64, error) {
		*loads++
		ids := w.ids[g]
		sq := make([]float64, len(ids))
		for i, id := range ids {
			sq[i] = vec.SqDist(q, w.pts[id])
		}
		return ids, sq, nil
	}
}

// TestSearchBatchSqMatchesPerQuery runs random tree-style batches
// (OwnOnly=false) and checks that every query's batch results are identical
// to its solo SearchGroupsSq results, while total unit loads never exceed —
// and with shared candidates undercut — the per-query sum.
func TestSearchBatchSqMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		w := makeBatchWorld(rng, 2+rng.Intn(6), 1+rng.Intn(8), 4)
		nq := 1 + rng.Intn(5)
		k := 1 + rng.Intn(6)

		items := make([]BatchQuery, nq)
		for j := range items {
			q := w.randQuery(rng)
			var seeds, pending []GroupCandidate
			skip := map[int32]bool{}
			nextSeed := int32(100000 + 1000*j)
			for id := range w.pts {
				switch rng.Intn(4) {
				case 0:
					seeds = append(seeds, GroupCandidate{ID: nextSeed, Group: -1, LBSq: rng.Float64() * 100})
					nextSeed++
				case 1, 2:
					d2 := vec.SqDist(q, w.pts[id])
					pending = append(pending, GroupCandidate{ID: id, Group: w.group[id], LBSq: d2 * rng.Float64()})
				default:
					if rng.Intn(5) == 0 {
						skip[id] = true
					}
				}
			}
			items[j] = BatchQuery{Q: q, Seeds: seeds, Pending: pending, K: k, Skip: skip}
		}

		batchLoads := 0
		got, reported, err := SearchBatchSq(items, w.batchFetch(&batchLoads))
		if err != nil {
			t.Fatal(err)
		}
		if reported != batchLoads {
			t.Fatalf("trial %d: reported %d loads, fetch saw %d", trial, reported, batchLoads)
		}

		soloSum := 0
		for j, it := range items {
			var sc Scratch
			soloLoads := 0
			want, _, err := sc.SearchGroupsSq(it.Seeds, it.Pending, it.K, it.Skip, w.groupFetchFor(it.Q, &soloLoads), nil)
			if err != nil {
				t.Fatal(err)
			}
			soloSum += soloLoads
			if len(got[j]) != len(want) {
				t.Fatalf("trial %d query %d: %d results, want %d", trial, j, len(got[j]), len(want))
			}
			for i := range want {
				if got[j][i].ID != want[i].ID {
					t.Fatalf("trial %d query %d rank %d: id %d, want %d", trial, j, i, got[j][i].ID, want[i].ID)
				}
				if math.Abs(got[j][i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("trial %d query %d rank %d: dist %v, want %v", trial, j, i, got[j][i].Dist, want[i].Dist)
				}
			}
		}
		if batchLoads > soloSum {
			t.Fatalf("trial %d: batch loaded %d units, per-query sum is %d", trial, batchLoads, soloSum)
		}
	}
}

// TestSearchBatchSqCoalesces floods every query with zero-lower-bound
// candidates over every unit: solo searches each read every unit, the batch
// reads each unit exactly once.
func TestSearchBatchSqCoalesces(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const nGroups, nq = 5, 4
	w := makeBatchWorld(rng, nGroups, 6, 4)

	items := make([]BatchQuery, nq)
	for j := range items {
		q := w.randQuery(rng)
		var pending []GroupCandidate
		for id := range w.pts {
			pending = append(pending, GroupCandidate{ID: id, Group: w.group[id], LBSq: 0})
		}
		items[j] = BatchQuery{Q: q, Pending: pending, K: 3}
	}

	batchLoads := 0
	_, _, err := SearchBatchSq(items, w.batchFetch(&batchLoads))
	if err != nil {
		t.Fatal(err)
	}
	if batchLoads != nGroups {
		t.Fatalf("batch loaded %d units, want one per unit (%d)", batchLoads, nGroups)
	}
	soloSum := 0
	for _, it := range items {
		var sc Scratch
		if _, _, err := sc.SearchGroupsSq(it.Seeds, it.Pending, it.K, it.Skip, w.groupFetchFor(it.Q, &soloSum), nil); err != nil {
			t.Fatal(err)
		}
	}
	if soloSum != nGroups*nq {
		t.Fatalf("per-query sum loaded %d units, want %d", soloSum, nGroups*nq)
	}
}

// TestSearchBatchSqOwnOnly checks the flat-engine mode: distribution is
// restricted to a query's own pending identifiers, so a shared page never
// leaks another query's points into the selection, and the k results are
// the k smallest exact distances among the query's own candidates.
func TestSearchBatchSqOwnOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		w := makeBatchWorld(rng, 2+rng.Intn(5), 2+rng.Intn(6), 4)
		nq := 1 + rng.Intn(4)
		k := 1 + rng.Intn(5)

		items := make([]BatchQuery, nq)
		ownIDs := make([]map[int32]float64, nq) // id → exact squared distance
		for j := range items {
			q := w.randQuery(rng)
			elig := map[int32]float64{}
			var pending []GroupCandidate
			for id := range w.pts {
				if rng.Intn(2) == 0 {
					continue // not this query's candidate
				}
				d2 := vec.SqDist(q, w.pts[id])
				pending = append(pending, GroupCandidate{ID: id, Group: w.group[id], LBSq: d2 * rng.Float64()})
				elig[id] = d2
			}
			items[j] = BatchQuery{Q: q, Pending: pending, K: k, OwnOnly: true}
			ownIDs[j] = elig
		}

		loads := 0
		got, _, err := SearchBatchSq(items, w.batchFetch(&loads))
		if err != nil {
			t.Fatal(err)
		}
		for j := range items {
			want := bruteTopK(ownIDs[j], k)
			if len(got[j]) != len(want) {
				t.Fatalf("trial %d query %d: %d results, want %d", trial, j, len(got[j]), len(want))
			}
			for i, r := range got[j] {
				if _, mine := ownIDs[j][int32(r.ID)]; !mine {
					t.Fatalf("trial %d query %d: foreign id %d leaked into results", trial, j, r.ID)
				}
				if math.Abs(r.Dist-math.Sqrt(want[i])) > 1e-9 {
					t.Fatalf("trial %d query %d rank %d: dist %v, want %v", trial, j, i, r.Dist, math.Sqrt(want[i]))
				}
			}
		}
	}
}

// TestSearchBatchSqOptimalStop seeds every query to saturation: distant
// pending candidates must not trigger any unit load.
func TestSearchBatchSqOptimalStop(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	w := makeBatchWorld(rng, 3, 5, 4)
	items := make([]BatchQuery, 3)
	for j := range items {
		q := w.randQuery(rng)
		seeds := []GroupCandidate{{ID: 1000, Group: -1, LBSq: 0}, {ID: 1001, Group: -1, LBSq: 0}}
		var pending []GroupCandidate
		for id := range w.pts {
			pending = append(pending, GroupCandidate{ID: id, Group: w.group[id], LBSq: vec.SqDist(q, w.pts[id]) + 1e6})
		}
		items[j] = BatchQuery{Q: q, Seeds: seeds, Pending: pending, K: 2}
	}
	loads := 0
	got, _, err := SearchBatchSq(items, w.batchFetch(&loads))
	if err != nil {
		t.Fatal(err)
	}
	if loads != 0 {
		t.Fatalf("loaded %d units despite full seed coverage", loads)
	}
	for j := range got {
		if len(got[j]) != 2 {
			t.Fatalf("query %d returned %d results, want 2", j, len(got[j]))
		}
	}
}

// TestSearchBatchSqEdgeCases: k < 1 yields no results and no loads; an
// empty batch is fine; fetch errors surface wrapped.
func TestSearchBatchSqEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	w := makeBatchWorld(rng, 2, 3, 4)

	loads := 0
	got, n, err := SearchBatchSq([]BatchQuery{{Q: w.randQuery(rng), K: 0}}, w.batchFetch(&loads))
	if err != nil || n != 0 || got[0] != nil {
		t.Fatalf("k=0: got %v, %d loads, err %v", got, n, err)
	}

	if got, _, err := SearchBatchSq(nil, w.batchFetch(&loads)); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}

	boom := errors.New("disk gone")
	items := []BatchQuery{{
		Q:       w.randQuery(rng),
		Pending: []GroupCandidate{{ID: 0, Group: w.group[0], LBSq: 0}},
		K:       1,
	}}
	_, _, err = SearchBatchSq(items, func(unit int32, item int) ([]int32, [][]float32, error) {
		return nil, nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("fetch error not propagated: %v", err)
	}
}
