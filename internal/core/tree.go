package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"exploitbit/internal/bounds"
	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/leafstore"
	"exploitbit/internal/multistep"
	"exploitbit/internal/vec"
)

// LeafIndex is the in-memory part of a tree-based index (Section 3.6.1):
// the leaf partition (point ids per leaf) and, per query, a conservative
// lower bound on the distance to any point of each leaf. iDistance, VP-tree
// and the STR R-tree all satisfy it.
type LeafIndex interface {
	Leaves() [][]int32
	LeafLowerBounds(q []float32) []float64
}

// TreeConfig selects how leaf nodes are cached.
type TreeConfig struct {
	// Method: Exact caches raw leaf vectors; HCO (or any HC-*) caches
	// approximate representations of the leaf's points; NoCache disables
	// caching.
	Method Method
	// CacheBytes is the cache budget CS.
	CacheBytes int64
	// Tau is the code length for approximate leaf caching (default 8).
	Tau int
	// SmoothEps as in Config.
	SmoothEps float64
}

// exactLeaf is the payload of the EXACT leaf cache.
type exactLeaf struct {
	pts [][]float32 // same order as the leaf directory's ids
}

// approxLeaf is the payload of the histogram leaf cache: packed codes per
// point, same order as the directory.
type approxLeaf struct {
	words []uint64 // count × codec.Words()
}

// TreeEngine runs cached kNN search over a tree index per Section 3.6.1:
// leaf nodes are visited in ascending lower-bound order; cached leaves are
// examined in RAM (exact distances, or per-point bounds that tighten ub_k
// and defer fetching), uncached leaves are loaded from disk.
type TreeEngine struct {
	ds    *dataset.Dataset
	ix    LeafIndex
	store *leafstore.Store
	cfg   TreeConfig

	codec  encoding.Codec
	table  *bounds.Table
	ghist  *histogram.Histogram
	exactC *cache.Cache[exactLeaf]
	apprxC *cache.Cache[approxLeaf]

	aggMu sync.Mutex
	agg   Aggregate
}

// NewTreeEngine builds the cached tree engine. Leaf access frequencies are
// collected by replaying the workload wl through uncached searches (the
// construction procedure of Section 3.6.1), and the HC-O histogram is built
// from the workload's k nearest neighbors.
func NewTreeEngine(ds *dataset.Dataset, ix LeafIndex, store *leafstore.Store, wl [][]float32, k int, cfg TreeConfig) (*TreeEngine, error) {
	if err := cfg.Method.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Method {
	case NoCache, Exact, HCW, HCD, HCV, HCO:
	default:
		return nil, fmt.Errorf("core: tree caching does not support method %s", cfg.Method)
	}
	if cfg.Tau < 1 {
		cfg.Tau = 8
	}
	if cfg.SmoothEps == 0 {
		cfg.SmoothEps = 0.01
	}
	e := &TreeEngine{ds: ds, ix: ix, store: store, cfg: cfg}

	if cfg.Method == NoCache {
		return e, nil
	}

	// Replay the workload in memory: count leaf accesses (HFF frequency)
	// and collect each query's k nearest points (the QR multiset for HC-O).
	leafFreq := make(map[int]int)
	var qr [][]float32
	for _, q := range wl {
		visited, nn := e.replay(q, k)
		for _, li := range visited {
			leafFreq[li]++
		}
		qr = append(qr, nn...)
	}
	ranked := cache.RankByFrequency(leafFreq)

	leaves := ix.Leaves()
	switch cfg.Method {
	case Exact:
		// Capacity in leaves: raw vectors, budget split by average leaf bits.
		itemBits := e.avgLeafBits(32 * ds.Dim)
		capacity := cache.CapacityForBudget(cfg.CacheBytes, itemBits)
		e.exactC = cache.New[exactLeaf](capacity, cache.HFF)
		e.exactC.FillHFF(ranked, func(li int) exactLeaf {
			ids := leaves[li]
			pts := make([][]float32, len(ids))
			for i, id := range ids {
				pts[i] = ds.Point(int(id))
			}
			return exactLeaf{pts: pts}
		})
	default: // HC-* approximate leaf caching
		dom := ds.Domain
		b := histogram.MaxBucketsForCodeLen(cfg.Tau, dom.Ndom)
		switch cfg.Method {
		case HCW:
			e.ghist = histogram.EquiWidth(dom.Ndom, b)
		case HCD:
			e.ghist = histogram.EquiDepth(histogram.DataFrequency(ds, dom), b)
		case HCV:
			e.ghist = histogram.VOptimal(histogram.DataFrequency(ds, dom), b)
		case HCO:
			fp := histogram.WorkloadFrequency(qr, dom)
			histogram.Smooth(fp, histogram.DataFrequency(ds, dom), cfg.SmoothEps)
			e.ghist = histogram.KNNOptimal(fp, b)
		}
		e.codec = encoding.NewCodec(ds.Dim, cfg.Tau)
		e.table = bounds.NewTable(e.ghist, dom, ds.Dim)
		itemBits := e.avgLeafBits(e.codec.ItemBits() / 1) // per-point packed bits
		capacity := cache.CapacityForBudget(cfg.CacheBytes, itemBits)
		e.apprxC = cache.New[approxLeaf](capacity, cache.HFF)
		codes := make([]int, ds.Dim)
		e.apprxC.FillHFF(ranked, func(li int) approxLeaf {
			ids := leaves[li]
			words := make([]uint64, len(ids)*e.codec.Words())
			for i, id := range ids {
				p := ds.Point(int(id))
				for j, v := range p {
					codes[j] = e.ghist.Bucket(dom.Bin(float64(v)))
				}
				e.codec.Encode(codes, words[i*e.codec.Words():(i+1)*e.codec.Words()])
			}
			return approxLeaf{words: words}
		})
	}
	return e, nil
}

// avgLeafBits estimates the cache cost of one leaf at perPointBits.
func (e *TreeEngine) avgLeafBits(perPointBits int) int {
	leaves := e.ix.Leaves()
	if len(leaves) == 0 {
		return perPointBits
	}
	total := 0
	for _, l := range leaves {
		total += len(l)
	}
	avg := (total*perPointBits + len(leaves) - 1) / len(leaves)
	if avg < 1 {
		avg = 1
	}
	return avg
}

// replay performs an in-memory exact search, returning the visited leaves
// and the k nearest points (used only during construction).
func (e *TreeEngine) replay(q []float32, k int) (visited []int, nn [][]float32) {
	lbs := e.ix.LeafLowerBounds(q)
	order := argsortByValue(lbs)
	top := vec.NewTopK(k)
	for _, li := range order {
		if top.Full() && lbs[li] >= top.Root() {
			break
		}
		visited = append(visited, li)
		for _, id := range e.ix.Leaves()[li] {
			top.Push(vec.Dist(q, e.ds.Point(int(id))), int(id))
		}
	}
	ids, _ := top.Results()
	for _, id := range ids {
		nn = append(nn, e.ds.Point(id))
	}
	return visited, nn
}

func argsortByValue(v []float64) []int {
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if v[order[a]] != v[order[b]] {
			return v[order[a]] < v[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// Aggregate returns accumulated statistics.
func (e *TreeEngine) Aggregate() Aggregate {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	return e.agg
}

// ResetStats clears accumulated statistics.
func (e *TreeEngine) ResetStats() {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	e.agg = Aggregate{}
}

// pendingCand is a cached approximate point awaiting possible refinement.
type pendingCand struct {
	id     int32
	leaf   int32
	lb, ub float64
}

// knownCand is a candidate whose exact distance is already in hand (from an
// exact-cached or disk-loaded leaf).
type knownCand struct {
	id int32
	d  float64
}

// Search runs the cached tree kNN search of Section 3.6.1 and returns the
// identifiers of the exact k nearest points. Like Algorithm 1, approximate
// candidates whose upper bound beats the k-th lower bound are declared
// results without ever fetching their leaf — the identifiers are the answer,
// per Definition 3's remark.
func (e *TreeEngine) Search(q []float32, k int) ([]int, QueryStats, error) {
	var st QueryStats
	t0 := time.Now()
	lbs := e.ix.LeafLowerBounds(q)
	order := argsortByValue(lbs)
	st.GenTime = time.Since(t0)

	t1 := time.Now()
	io0 := e.store.Stats().PageReads
	ubTop := vec.NewTopK(k)   // k-th smallest known upper bound, for node cutoff
	var known []knownCand     // candidates with exact distances
	var pending []pendingCand // cached points deferred on bounds
	leaves := e.ix.Leaves()

	loadLeaf := func(li int) ([]int32, [][]float32, error) {
		ids, pts, err := e.store.Load(li)
		if err != nil {
			return nil, nil, err
		}
		st.Fetched += len(ids)
		return ids, pts, nil
	}

	for _, li := range order {
		if ubTop.Full() && lbs[li] >= ubTop.Root() {
			// No remaining leaf can contain one of the k nearest: stop
			// generating candidates.
			break
		}
		st.Candidates += len(leaves[li])
		examined := false
		if e.exactC != nil {
			if leafPts, ok := e.exactC.Get(li); ok {
				st.Hits += len(leafPts.pts)
				for i, id := range leaves[li] {
					d := vec.Dist(q, leafPts.pts[i])
					known = append(known, knownCand{id: id, d: d})
					ubTop.Push(d, int(id))
				}
				examined = true
			}
		} else if e.apprxC != nil {
			if al, ok := e.apprxC.Get(li); ok {
				st.Hits += len(leaves[li])
				w := e.codec.Words()
				for i, id := range leaves[li] {
					lb, ub := e.table.BoundsPacked(q, al.words[i*w:(i+1)*w], e.codec)
					if lb < lbs[li] {
						lb = lbs[li] // node bound can be tighter
					}
					ubTop.Push(ub, int(id))
					pending = append(pending, pendingCand{id: id, leaf: int32(li), lb: lb, ub: ub})
				}
				examined = true
			}
		}
		if !examined {
			ids, pts, err := loadLeaf(li)
			if err != nil {
				return nil, st, err
			}
			for i, id := range ids {
				d := vec.Dist(q, pts[i])
				known = append(known, knownCand{id: id, d: d})
				ubTop.Push(d, int(id))
			}
		}
	}

	// Candidate reduction (Algorithm 1 lines 7–13) over known ∪ pending.
	allLB := make([]float64, 0, len(known)+len(pending))
	allUB := make([]float64, 0, len(known)+len(pending))
	for _, c := range known {
		allLB = append(allLB, c.d)
		allUB = append(allUB, c.d)
	}
	for _, c := range pending {
		allLB = append(allLB, c.lb)
		allUB = append(allUB, c.ub)
	}
	lbk := multistep.KthSmallest(allLB, k)
	ubk := multistep.KthSmallest(allUB, k)

	var results []int
	resultSet := make(map[int32]bool)
	liveKnown := known[:0]
	for _, c := range known {
		if c.d > ubk {
			st.Pruned++
		} else {
			liveKnown = append(liveKnown, c)
		}
	}
	livePending := pending[:0]
	for _, c := range pending {
		switch {
		case c.lb > ubk:
			st.Pruned++
		case c.ub < lbk:
			st.TrueHits++ // a guaranteed result: never fetch its leaf
			results = append(results, int(c.id))
			resultSet[c.id] = true
		default:
			livePending = append(livePending, c)
		}
	}
	st.Remaining = len(livePending)
	st.ReduceTime = time.Since(t1)

	// Refinement: known candidates compete for the open slots at no cost;
	// pending ones are resolved in ascending lower-bound order, loading a
	// leaf at most once and consuming all its exact distances (the
	// node-level tightening of Section 3.6.1).
	t2 := time.Now()
	kNeed := k - len(results)
	if kNeed > 0 {
		top := vec.NewTopK(kNeed)
		for _, c := range liveKnown {
			top.Push(c.d, int(c.id))
		}
		sort.Slice(livePending, func(a, b int) bool {
			if livePending[a].lb != livePending[b].lb {
				return livePending[a].lb < livePending[b].lb
			}
			return livePending[a].id < livePending[b].id
		})
		loaded := make(map[int32]bool)
		for _, pc := range livePending {
			if loaded[pc.leaf] {
				continue
			}
			if top.Full() && pc.lb >= top.Root() {
				break // sorted by lb: nothing later can improve
			}
			ids, pts, err := loadLeaf(int(pc.leaf))
			if err != nil {
				return nil, st, err
			}
			loaded[pc.leaf] = true
			for i, id := range ids {
				if !resultSet[id] {
					top.Push(vec.Dist(q, pts[i]), int(id))
				}
			}
		}
		ids, _ := top.Results()
		results = append(results, ids...)
	}
	st.RefineTime = time.Since(t2)
	st.PageReads = e.store.Stats().PageReads - io0
	st.SimulatedIO = time.Duration(st.PageReads) * e.store.Tio()

	e.aggMu.Lock()
	e.agg.Add(st)
	e.aggMu.Unlock()
	return results, st, nil
}
