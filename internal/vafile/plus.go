package vafile

import (
	"fmt"
	"math"
	"sort"

	"exploitbit/internal/dataset"
	"exploitbit/internal/klt"
)

// PlusParams configures the VA+-file (Ferhatosmanoglu, Tuncel, Agrawal,
// El Abbadi — CIKM 2000), the non-uniform variant the paper skips in
// footnote 10. Three upgrades over the plain VA-file: the data is rotated
// into the KLT eigenbasis (decorrelating dimensions), approximation bits are
// allocated non-uniformly (more bits to higher-variance dimensions), and
// each dimension's grid is quantile-based on the rotated marginal.
type PlusParams struct {
	// TotalBits is the bit budget per point (default 6·d, matching the
	// plain VA-file's footprint at BitsPerDim=6).
	TotalBits int
	// MaxBitsPerDim caps any single dimension (default 12).
	MaxBitsPerDim int
}

// PlusIndex is a built VA+-file.
type PlusIndex struct {
	n, dim int
	tr     *klt.Transform
	bits   []int        // bits per rotated dimension (0 = dimension dropped)
	off    []int        // bit offset of each dimension's code
	words  int          // words per encoded point
	edges  [][]float64  // per-dim bucket edges, len 2^bits[j]+1 (nil when bits=0)
	minmax [][2]float64 // per-dim rotated value range (for 0-bit dims)
	approx []uint64
}

// BuildPlus constructs the VA+-file over ds. The KLT fit is O(n·d² + d³);
// keep d moderate (the very reason the paper skipped VA+ for 960-d SOGOU).
func BuildPlus(ds *dataset.Dataset, p PlusParams) (*PlusIndex, error) {
	n, d := ds.Len(), ds.Dim
	if p.TotalBits <= 0 {
		p.TotalBits = 6 * d
	}
	if p.MaxBitsPerDim <= 0 {
		p.MaxBitsPerDim = 12
	}
	tr, err := klt.Fit(ds)
	if err != nil {
		return nil, fmt.Errorf("vafile: fitting KLT: %w", err)
	}

	// Rotate the dataset (transient copy; only the codes are kept).
	rot := make([]float32, n*d)
	for i := 0; i < n; i++ {
		tr.Apply(ds.Point(i), rot[i*d:(i+1)*d])
	}

	// Greedy bit allocation: each extra bit goes to the dimension with the
	// largest remaining quantization error, modeled as λ_j / 4^bits_j.
	bits := make([]int, d)
	for spent := 0; spent < p.TotalBits; spent++ {
		best, bestGain := -1, 0.0
		for j := 0; j < d; j++ {
			if bits[j] >= p.MaxBitsPerDim {
				continue
			}
			gain := tr.Lambda[j] / math.Pow(4, float64(bits[j]))
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		if best < 0 {
			break
		}
		bits[best]++
	}

	ix := &PlusIndex{
		n: n, dim: d, tr: tr, bits: bits,
		off:    make([]int, d),
		edges:  make([][]float64, d),
		minmax: make([][2]float64, d),
	}
	total := 0
	for j := 0; j < d; j++ {
		ix.off[j] = total
		total += bits[j]
	}
	ix.words = (total + 63) / 64
	if ix.words == 0 {
		ix.words = 1
	}

	// Quantile grids per dimension on the rotated marginals.
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			col[i] = float64(rot[i*d+j])
		}
		sort.Float64s(col)
		ix.minmax[j] = [2]float64{col[0], col[n-1]}
		if bits[j] == 0 {
			continue
		}
		cells := 1 << bits[j]
		edges := make([]float64, cells+1)
		edges[0] = col[0]
		for c := 1; c < cells; c++ {
			edges[c] = col[c*n/cells]
		}
		edges[cells] = col[n-1]
		// Quantile edges can repeat on discrete data; nudge monotone.
		for c := 1; c <= cells; c++ {
			if edges[c] <= edges[c-1] {
				edges[c] = math.Nextafter(edges[c-1], math.Inf(1))
			}
		}
		ix.edges[j] = edges
	}

	// Encode every point.
	ix.approx = make([]uint64, n*ix.words)
	for i := 0; i < n; i++ {
		w := ix.approx[i*ix.words : (i+1)*ix.words]
		for j := 0; j < d; j++ {
			if bits[j] == 0 {
				continue
			}
			c := ix.cellOf(j, float64(rot[i*d+j]))
			setBits(w, ix.off[j], bits[j], uint64(c))
		}
	}
	return ix, nil
}

// cellOf locates the grid cell of value v in dimension j.
func (ix *PlusIndex) cellOf(j int, v float64) int {
	edges := ix.edges[j]
	// First edge index with edges[i] > v, minus one.
	lo, hi := 1, len(edges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

func setBits(w []uint64, off, width int, v uint64) {
	word, sh := off/64, uint(off%64)
	w[word] |= v << sh
	if sh+uint(width) > 64 {
		w[word+1] |= v >> (64 - sh)
	}
}

func getBits(w []uint64, off, width int) uint64 {
	word, sh := off/64, uint(off%64)
	v := w[word] >> sh
	if sh+uint(width) > 64 {
		v |= w[word+1] << (64 - sh)
	}
	return v & (1<<uint(width) - 1)
}

// Bits returns the per-dimension bit allocation (diagnostics).
func (ix *PlusIndex) Bits() []int { return append([]int(nil), ix.bits...) }

// ApproxBytes returns the approximation array footprint.
func (ix *PlusIndex) ApproxBytes() int { return len(ix.approx) * 8 }

// Candidates performs the VA+ filtering scan: bounds are computed in the
// rotated space (the KLT is an isometry, so Euclidean bounds transfer
// directly) and candidates are returned sorted by lower bound, guaranteed to
// contain the exact kNN.
func (ix *PlusIndex) Candidates(q []float32, k int) Result {
	if len(q) != ix.dim {
		panic(fmt.Sprintf("vafile: query dim %d != %d", len(q), ix.dim))
	}
	if k < 1 {
		k = 1
	}
	rq := ix.tr.Apply(q, nil)

	lbs := make([]float64, ix.n)
	ubs := make([]float64, ix.n)
	ubk := newKMin(k)
	for i := 0; i < ix.n; i++ {
		w := ix.approx[i*ix.words : (i+1)*ix.words]
		var sLo, sUp float64
		for j := 0; j < ix.dim; j++ {
			var lo, hi float64
			if ix.bits[j] == 0 {
				lo, hi = ix.minmax[j][0], ix.minmax[j][1]
			} else {
				c := int(getBits(w, ix.off[j], ix.bits[j]))
				lo, hi = ix.edges[j][c], ix.edges[j][c+1]
			}
			qj := float64(rq[j])
			dl, du := qj-lo, hi-qj
			a, b := math.Abs(dl), math.Abs(du)
			far := a
			if b > far {
				far = b
			}
			sUp += far * far
			if dl < 0 {
				sLo += dl * dl
			} else if du < 0 {
				sLo += du * du
			}
		}
		lbs[i] = math.Sqrt(sLo)
		ubs[i] = math.Sqrt(sUp)
		ubk.push(ubs[i])
	}
	bound := ubk.kth()
	var res Result
	for i := 0; i < ix.n; i++ {
		if lbs[i] <= bound {
			res.IDs = append(res.IDs, i)
			res.LBs = append(res.LBs, lbs[i])
			res.UBs = append(res.UBs, ubs[i])
		}
	}
	sort.Sort(&res)
	res.Dmax = bound
	return res
}
