package bench

import (
	"fmt"
	"io"
	"time"

	"exploitbit"
	"exploitbit/internal/core"
	"exploitbit/internal/vafile"
)

func init() {
	register("ext-vaplus", "Extension: VA+-file (KLT + non-uniform bits) vs plain VA-file", extVAPlus)
	register("ext-join", "Extension: cached kNN join (the paper's future work)", extJoin)
	register("ext-maintain", "Extension: workload drift and automatic cache rebuild (Section 3.5)", extMaintain)
}

func extVAPlus(w io.Writer, env *Env) error {
	// Moderate dimensionality so the O(d³) KLT stays cheap.
	s := env.Scale
	ds := exploitbit.Generate(exploitbit.DatasetConfig{
		Name: "aniso", N: s.NNusw, Dim: 48, Clusters: 20,
		Std: 0.05, Skew: 1.8, Ndom: 1024, Seed: 111, ValueCoherence: 0.7,
	})
	log := genLogFor(ds, s)
	wl, qtest := log.Split(s.QTest)
	_ = wl

	plain := vafile.Build(ds, vafile.Params{BitsPerDim: 4})
	plus, err := vafile.BuildPlus(ds, vafile.PlusParams{TotalBits: 4 * ds.Dim})
	if err != nil {
		return err
	}
	var nPlain, nPlus int
	for _, q := range qtest {
		nPlain += len(plain.Candidates(q, s.K).IDs)
		nPlus += len(plus.Candidates(q, s.K).IDs)
	}
	tw := table(w)
	fmt.Fprintln(tw, "index\tbits/point\tavg_candidates")
	fmt.Fprintf(tw, "VA-file (uniform 4b)\t%d\t%.1f\n", 4*ds.Dim, float64(nPlain)/float64(len(qtest)))
	fmt.Fprintf(tw, "VA+-file (KLT)\t%d\t%.1f\n", 4*ds.Dim, float64(nPlus)/float64(len(qtest)))
	bits := plus.Bits()
	fmt.Fprintf(tw, "# VA+ bit allocation (first 10 eigen-dims): %v\n", bits[:10])
	fmt.Fprintln(tw, "# expected shape: VA+ filters harder at equal bits — why the paper singles it out (and why KLT cost made them skip it)")
	return tw.Flush()
}

func extJoin(w io.Writer, env *Env) error {
	lab := env.Lab("NUS-WIDE")
	probes := lab.WL[:min(200, len(lab.WL))]
	tw := table(w)
	fmt.Fprintln(tw, "method\tprobes\tIO(points)\tsimIO+cpu(s)")
	for _, m := range []exploitbit.Method{exploitbit.NoCache, exploitbit.HCO} {
		eng, err := lab.Sys.Engine(m, lab.DefaultCS, lab.DefaultTau)
		if err != nil {
			return err
		}
		res, err := exploitbit.KNNJoin(eng, probes, env.Scale.K)
		if err != nil {
			return err
		}
		total := res.Stats.SimulatedIO + res.Stats.GenTime + res.Stats.ReduceTime + res.Stats.RefineTime
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\n", m, len(probes), res.Stats.Fetched, total.Seconds())
	}
	fmt.Fprintln(tw, "# expected shape: the cache absorbs the join's probe I/O almost entirely (probe set == workload)")
	return tw.Flush()
}

func extMaintain(w io.Writer, env *Env) error {
	lab := env.Lab("NUS-WIDE")
	// Train on the first half of the pool, then drift to fresh queries far
	// from the trained region by reusing test queries from another dataset
	// region: approximate drift by reversing the dataset order for probes.
	m, err := lab.Sys.Maintained(coreConfig(exploitbit.Exact, lab.DefaultCS, 0),
		exploitbit.MaintainOptions{WindowSize: 64, DegradeFactor: 0.85, MinQueriesBetweenRebuilds: 64})
	if err != nil {
		return err
	}
	run := func(qs [][]float32, n int) float64 {
		var hits, cands int64
		for i := 0; i < n; i++ {
			_, st, err := m.Search(qs[i%len(qs)], env.Scale.K)
			if err != nil {
				panic(err)
			}
			hits += int64(st.Hits)
			cands += int64(st.Candidates)
		}
		if cands == 0 {
			return 0
		}
		return float64(hits) / float64(cands)
	}
	// A drifted query population: 60 recurring queries the original
	// workload never issued (temporal locality persists — the popular
	// content changed, not the skew).
	drifted := make([][]float32, 60)
	for i := range drifted {
		drifted[i] = lab.DS.Point(lab.DS.Len() - 1 - (i*7)%lab.DS.Len())
	}
	// Rebuilds are launched in the background off the search path; wait for
	// the in-flight one to swap in before measuring the recovered ratio.
	waitIdle := func() {
		for m.Stats().RebuildInFlight {
			time.Sleep(time.Millisecond)
		}
	}
	tw := table(w)
	fmt.Fprintln(tw, "phase\thit_ratio\trebuilds")
	fmt.Fprintf(tw, "trained workload\t%.3f\t%d\n", run(lab.WL, 128), m.Rebuilds())
	driftRatio := run(drifted, 400)
	waitIdle()
	fmt.Fprintf(tw, "after drift\t%.3f\t%d\n", driftRatio, m.Rebuilds())
	fmt.Fprintf(tw, "post-rebuild\t%.3f\t%d\n", run(drifted, 128), m.Rebuilds())
	st := m.Stats()
	fmt.Fprintf(tw, "# rebuilds: %d completed, %d failed (searches never block on a rebuild)\n", st.Rebuilds, st.RebuildErrors)
	fmt.Fprintln(tw, "# expected shape: hit ratio collapses under drift, a rebuild fires, and the ratio recovers")
	return tw.Flush()
}

func coreConfig(m exploitbit.Method, cs int64, tau int) core.Config {
	return core.Config{Method: m, CacheBytes: cs, Tau: tau}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
