package rtree

import (
	"math/rand"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

func testDS(n, dim int, seed int64) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 4, Std: 0.05, Seed: seed})
}

func TestBuildSTRPartition(t *testing.T) {
	ds := testDS(500, 8, 1)
	ix := BuildSTR(ds, 16, 2)
	if got := len(ix.Leaves()); got < 14 || got > 18 {
		t.Fatalf("leaf count %d far from requested 16", got)
	}
	seen := make([]bool, ds.Len())
	for _, leaf := range ix.Leaves() {
		for _, id := range leaf {
			if seen[id] {
				t.Fatalf("point %d duplicated", id)
			}
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("point %d lost", id)
		}
	}
}

func TestMBRsContainMembers(t *testing.T) {
	ds := testDS(300, 6, 2)
	ix := BuildSTR(ds, 10, 2)
	for li, leaf := range ix.Leaves() {
		lo, hi := ix.MBR(li)
		for _, id := range leaf {
			p := ds.Point(int(id))
			for j, v := range p {
				if v < lo[j] || v > hi[j] {
					t.Fatalf("leaf %d point %d dim %d outside MBR", li, id, j)
				}
			}
		}
	}
}

func TestAssignmentMatchesLeaves(t *testing.T) {
	ds := testDS(200, 4, 3)
	ix := BuildSTR(ds, 8, 2)
	assign := ix.Assignment(ds.Len())
	for li, leaf := range ix.Leaves() {
		for _, id := range leaf {
			if assign[id] != li {
				t.Fatalf("point %d assigned to %d, lives in %d", id, assign[id], li)
			}
		}
	}
	lo, hi := ix.MBRs()
	if len(lo) != len(ix.Leaves()) || len(hi) != len(lo) {
		t.Fatal("MBRs length mismatch")
	}
}

func TestLeafLowerBoundsValid(t *testing.T) {
	ds := testDS(300, 6, 4)
	ix := BuildSTR(ds, 12, 3)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 6)
		for j := range q {
			q[j] = rng.Float32()
		}
		lbs := ix.LeafLowerBounds(q)
		for li, leaf := range ix.Leaves() {
			for _, id := range leaf {
				if d := vec.Dist(q, ds.Point(int(id))); d < lbs[li]-1e-6 {
					t.Fatalf("leaf %d lb %v > member dist %v", li, lbs[li], d)
				}
			}
		}
	}
}

func TestSTRTilesLowDimensions(t *testing.T) {
	// In 2-d, STR should produce spatially compact leaves: the average MBR
	// area must be far below the full domain area.
	ds := testDS(1000, 2, 6)
	ix := BuildSTR(ds, 25, 2)
	var area float64
	for li := range ix.Leaves() {
		lo, hi := ix.MBR(li)
		area += float64(hi[0]-lo[0]) * float64(hi[1]-lo[1])
	}
	if avg := area / float64(len(ix.Leaves())); avg > 0.2 {
		t.Fatalf("average 2-d leaf MBR area %v too large (no tiling?)", avg)
	}
}

func TestHighDimMBRsDegenerate(t *testing.T) {
	// Appendix B's point: in high dimensions the per-dimension MBR widths
	// approach the full domain, making mHC-R bounds useless. Verify the
	// average width in untiled dimensions is large.
	ds := testDS(1000, 50, 7)
	ix := BuildSTR(ds, 32, 2)
	var width float64
	var count int
	for li := range ix.Leaves() {
		lo, hi := ix.MBR(li)
		for j := 5; j < 50; j++ { // dims beyond the tiling prefix
			width += float64(hi[j] - lo[j])
			count++
		}
	}
	if avg := width / float64(count); avg < 0.2 {
		t.Fatalf("high-dim MBRs suspiciously tight: %v", avg)
	}
}

func TestEdgeCases(t *testing.T) {
	ds := testDS(5, 3, 8)
	ix := BuildSTR(ds, 100, 2) // more leaves than points
	if len(ix.Leaves()) != 5 {
		t.Fatalf("leaf count %d, want clamp to 5", len(ix.Leaves()))
	}
	ix = BuildSTR(ds, 0, 0) // degenerate params
	if len(ix.Leaves()) != 1 {
		t.Fatalf("want single leaf, got %d", len(ix.Leaves()))
	}
}
