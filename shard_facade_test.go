package exploitbit

import (
	"bytes"
	"testing"

	"exploitbit/internal/core"
)

// shardedPair opens the same dataset and workload twice — once unsharded,
// once with n shards — so the two facades can be compared query-for-query.
func shardedPair(t testing.TB, n int, layout ShardLayout) (*System, *System, [][]float32) {
	t.Helper()
	ds := Generate(DatasetConfig{Name: "shardfacade", N: 1200, Dim: 10, Clusters: 5, Std: 0.05, Ndom: 256, Seed: 41})
	log := GenLog(ds, LogConfig{PoolSize: 80, Length: 400, ZipfS: 1.4, Perturb: 0.005, Seed: 42})
	wl, qtest := log.Split(10)
	flat, err := Open(ds, wl, Options{Tio: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { flat.Close() })
	sys, err := Open(ds, wl, Options{Tio: 0, Shards: n, ShardLayout: layout})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if sys.Shards() != n {
		t.Fatalf("Shards() = %d, want %d", sys.Shards(), n)
	}
	return flat, sys, qtest
}

// TestShardedFacadeBitIdentical drives the public API end to end: a system
// opened with Options.Shards must answer every query with the same ids and
// I/O charge as the unsharded system.
func TestShardedFacadeBitIdentical(t *testing.T) {
	for _, layout := range []ShardLayout{RoundRobin, Clustered} {
		layout := layout
		t.Run(string(layout), func(t *testing.T) {
			flat, sys, qtest := shardedPair(t, 3, layout)
			eng, err := flat.Engine(HCO, 32<<10, 6)
			if err != nil {
				t.Fatal(err)
			}
			se, err := sys.ShardedEngine(HCO, 32<<10, 6)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range qtest {
				want, wst, err := eng.Search(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				got, gst, err := se.Search(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) != len(got) {
					t.Fatalf("q%d: %d ids, want %d", qi, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("q%d rank %d: id %d, want %d", qi, i, got[i], want[i])
					}
				}
				if wst.Fetched != gst.Fetched || wst.PageReads != gst.PageReads ||
					wst.Pruned != gst.Pruned || wst.TrueHits != gst.TrueHits {
					t.Fatalf("q%d: stats diverged: %+v vs %+v", qi, gst, wst)
				}
			}
			aggs := se.ShardAggregates()
			if len(aggs) != 3 {
				t.Fatalf("%d shard aggregate blocks, want 3", len(aggs))
			}
		})
	}
}

// TestShardedFacadeSnapshot round-trips a sharded engine through the
// public Save/Load pair and checks the reload serves identically.
func TestShardedFacadeSnapshot(t *testing.T) {
	_, sys, qtest := shardedPair(t, 3, RoundRobin)
	se, err := sys.ShardedEngine(HCO, 32<<10, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveShardedEngine(se, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := sys.LoadShardedEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qtest[:5] {
		a, sa, err := se.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, sb, err := loaded.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) || sa.Fetched != sb.Fetched || sa.PageReads != sb.PageReads {
			t.Fatalf("loaded sharded engine diverged: %v/%v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("loaded sharded engine diverged at rank %d: %d != %d", i, b[i], a[i])
			}
		}
	}
}

// TestShardedFacadeMaintained exercises the maintained sharded path through
// the facade: searches serve, a forced rebuild lands, stats reflect it.
func TestShardedFacadeMaintained(t *testing.T) {
	_, sys, qtest := shardedPair(t, 2, RoundRobin)
	m, err := sys.MaintainedSharded(core.Config{Method: HCO, CacheBytes: 32 << 10, Tau: 6, SmoothEps: 0.01}, MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, q := range qtest {
		ids, _, err := m.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 5 {
			t.Fatalf("%d results", len(ids))
		}
	}
	if err := m.ForceShardRebuild(0); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Rebuilds != 1 || st.LastRebuildAt.IsZero() {
		t.Fatalf("maintain stats after forced rebuild: %+v", st)
	}
}

// TestShardedFacadeErrors pins the facade's misuse errors: sharding is
// incompatible with a custom ordering, and sharded constructors demand a
// sharded Open.
func TestShardedFacadeErrors(t *testing.T) {
	ds := Generate(DatasetConfig{Name: "sharderr", N: 300, Dim: 6, Clusters: 3, Ndom: 256, Seed: 43})
	log := GenLog(ds, LogConfig{PoolSize: 20, Length: 60, Perturb: 0.01, Seed: 44})
	wl, _ := log.Split(5)
	if _, err := Open(ds, wl, Options{Shards: 2, Ordering: []int{0}}); err == nil {
		t.Fatal("Open accepted Shards together with Ordering")
	}
	sys, err := Open(ds, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.ShardedEngine(HCO, 32<<10, 6); err == nil {
		t.Fatal("ShardedEngine worked without Options.Shards")
	}
	if _, err := sys.LoadShardedEngine(bytes.NewReader(nil)); err == nil {
		t.Fatal("LoadShardedEngine worked without Options.Shards")
	}
}
