package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"exploitbit"
)

// ShardsReport records the shard-scaling scenario (BENCH_5.json): the same
// dataset, workload and HC-O configuration served unsharded and through the
// scatter-gather router at several shard counts, under a fixed parallel
// query load. Results are bit-identical across rows by construction (the
// Identical column re-checks it against the 1-shard baseline), so the rows
// compare pure serving wall-clock.
type ShardsReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Workers     int    `json:"workers"`
	K           int    `json:"k"`
	Ops         int    `json:"ops"`

	Rows []ShardsRow `json:"rows"`
}

// ShardsRow is one shard count's wall-clock under the parallel load.
type ShardsRow struct {
	Shards    int     `json:"shards"`
	WallNs    int64   `json:"wall_ns"`
	QPS       float64 `json:"qps"`
	Identical bool    `json:"identical_to_unsharded"`
}

// shardCounts are the row configurations; 1 is the unsharded baseline.
var shardCounts = []int{1, 2, 4}

// RunShards measures parallel-load search wall-clock on the NUS-WIDE
// workload at several shard counts and writes the report as indented JSON to
// jsonPath (skipped when empty), echoing a summary to w. Each row opens its
// own system (sharding is a layout decision made at Open) over the same
// dataset and workload as the shared lab.
func RunShards(w io.Writer, env *Env, jsonPath string) (*ShardsReport, error) {
	lab := env.Lab("NUS-WIDE")
	k := env.Scale.K
	workers := runtime.GOMAXPROCS(0)
	ops := 16 * len(lab.QTest) * workers
	rep := &ShardsReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		K:           k,
		Ops:         ops,
	}

	// The 1-shard baseline answers, for the bit-identity column.
	var baseline [][]int

	for _, n := range shardCounts {
		sys, err := exploitbit.Open(lab.DS, lab.WL, exploitbit.Options{
			Shards: n, Tio: env.Tio, WorkloadK: k,
		})
		if err != nil {
			return nil, err
		}
		var search func(q []float32, kk int, dst []int) ([]int, exploitbit.QueryStats, error)
		if n == 1 {
			eng, err := sys.Engine(exploitbit.HCO, lab.DefaultCS, lab.DefaultTau)
			if err != nil {
				sys.Close()
				return nil, err
			}
			search = eng.SearchInto
		} else {
			se, err := sys.ShardedEngine(exploitbit.HCO, lab.DefaultCS, lab.DefaultTau)
			if err != nil {
				sys.Close()
				return nil, err
			}
			search = se.SearchInto
		}

		row := ShardsRow{Shards: n, Identical: true}
		for qi, q := range lab.QTest {
			ids, _, err := search(q, k, nil)
			if err != nil {
				sys.Close()
				return nil, err
			}
			if n == 1 {
				baseline = append(baseline, ids)
				continue
			}
			if len(ids) != len(baseline[qi]) {
				row.Identical = false
				continue
			}
			for i := range ids {
				if ids[i] != baseline[qi][i] {
					row.Identical = false
					break
				}
			}
		}

		// Best of three parallel-load runs: `workers` goroutines drain a
		// shared counter of `ops` searches over the test queries.
		var wall time.Duration
		for r := 0; r < 3; r++ {
			var next atomic.Int64
			var firstErr atomic.Pointer[error]
			var wg sync.WaitGroup
			start := time.Now()
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					dst := make([]int, 0, k)
					for {
						i := next.Add(1) - 1
						if i >= int64(ops) || firstErr.Load() != nil {
							return
						}
						if _, _, err := search(lab.QTest[int(i)%len(lab.QTest)], k, dst[:0]); err != nil {
							firstErr.CompareAndSwap(nil, &err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if ep := firstErr.Load(); ep != nil {
				sys.Close()
				return nil, *ep
			}
			if d := time.Since(start); r == 0 || d < wall {
				wall = d
			}
		}
		if err := sys.Close(); err != nil {
			return nil, err
		}

		row.WallNs = wall.Nanoseconds()
		if wall > 0 {
			row.QPS = float64(ops) / wall.Seconds()
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(w, "shards: %d shard(s)  %10v wall  %8.0f q/s  identical=%v\n",
			row.Shards, time.Duration(row.WallNs), row.QPS, row.Identical)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return nil, err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "shards: report written to %s\n", jsonPath)
	}
	return rep, nil
}
