package idistance

import (
	"math"
	"sort"

	"exploitbit/internal/btree"
	"exploitbit/internal/dataset"
	"exploitbit/internal/kmeans"
	"exploitbit/internal/vec"
)

// PointIndex is the classic iDistance structure of Jagadish et al.: every
// point keyed by refID·C + dist(p, ref) in a B+-tree, searched by expanding
// a radius around the query and range-scanning the key intervals each
// reference's ring contributes. This is the in-memory exact search path; the
// leaf-based Index + core.TreeEngine pairing is the disk/caching path.
type PointIndex struct {
	ds      *dataset.Dataset
	refs    [][]float32
	tree    *btree.Tree
	c       float64   // key spacing constant, > max distance to any ref
	maxDist []float64 // per-reference ring radius
}

// BuildPointIndex constructs the B+-tree-backed index.
func BuildPointIndex(ds *dataset.Dataset, p Params) *PointIndex {
	p = p.withDefaults(ds.Dim)
	km := kmeans.Run(ds, p.Refs, p.KMeansIters, p.Seed)

	ix := &PointIndex{ds: ds, refs: km.Centers, maxDist: make([]float64, len(km.Centers))}
	dists := make([]float64, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		c := km.Assign[i]
		d := vec.Dist(ds.Point(i), km.Centers[c])
		dists[i] = d
		if d > ix.maxDist[c] {
			ix.maxDist[c] = d
		}
	}
	// Key spacing: strictly larger than any ring radius.
	for _, d := range ix.maxDist {
		if d >= ix.c {
			ix.c = d
		}
	}
	ix.c = ix.c*2 + 1

	// Bulk load sorted (key, id) pairs.
	type kv struct {
		k  float64
		id int32
	}
	pairs := make([]kv, ds.Len())
	for i := range pairs {
		pairs[i] = kv{k: float64(km.Assign[i])*ix.c + dists[i], id: int32(i)}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].k != pairs[b].k {
			return pairs[a].k < pairs[b].k
		}
		return pairs[a].id < pairs[b].id
	})
	keys := make([]float64, len(pairs))
	vals := make([]int32, len(pairs))
	for i, e := range pairs {
		keys[i], vals[i] = e.k, e.id
	}
	ix.tree = btree.BulkLoad(keys, vals)
	return ix
}

// Search returns the exact k nearest neighbors of q by radius expansion:
// starting from a small search radius r, it scans for every reference the
// newly uncovered key interval [dq−r, dq+r] ∩ [0, maxDist], doubling r until
// the k-th best distance is within r (then no unscanned point can improve).
func (ix *PointIndex) Search(q []float32, k int) []int {
	if k < 1 {
		return nil
	}
	nref := len(ix.refs)
	dq := make([]float64, nref)
	minDq := math.Inf(1)
	for i, ref := range ix.refs {
		dq[i] = vec.Dist(q, ref)
		if dq[i] < minDq {
			minDq = dq[i]
		}
	}
	// Explored key window per reference, closed [lo, hi] in ring-distance
	// space; empty until the first scan.
	lo := make([]float64, nref)
	hi := make([]float64, nref)
	explored := make([]bool, nref)

	top := vec.NewTopK(k)
	scan := func(ref int, from, to float64) {
		if from > to {
			return
		}
		base := float64(ref) * ix.c
		ix.tree.Range(base+from, base+to, func(key float64, id int32) bool {
			top.Push(vec.Dist(q, ix.ds.Point(int(id))), int(id))
			return true
		})
	}

	r := minDq/8 + 1e-9
	for {
		for i := 0; i < nref; i++ {
			newLo := math.Max(0, dq[i]-r)
			newHi := math.Min(ix.maxDist[i], dq[i]+r)
			if newLo > newHi {
				continue // ring does not intersect the search annulus
			}
			if !explored[i] {
				scan(i, newLo, newHi)
				lo[i], hi[i] = newLo, newHi
				explored[i] = true
				continue
			}
			if newLo < lo[i] {
				scan(i, newLo, math.Nextafter(lo[i], math.Inf(-1)))
				lo[i] = newLo
			}
			if newHi > hi[i] {
				scan(i, math.Nextafter(hi[i], math.Inf(1)), newHi)
				hi[i] = newHi
			}
		}
		if top.Full() && top.Root() <= r {
			break
		}
		// All rings fully explored: nothing left to scan.
		done := true
		for i := 0; i < nref; i++ {
			if !explored[i] || lo[i] > 0 || hi[i] < ix.maxDist[i] {
				done = false
				break
			}
		}
		if done {
			break
		}
		r *= 2
	}
	ids, _ := top.Results()
	return ids
}
