// Sharded scatter-gather execution of Algorithm 1. The dataset is split
// into N shard units (internal/shard decides membership); each unit owns a
// full Engine over its local id space — its own point file, candidate
// filter and cache — while the quantization model (histogram, bounds table,
// codec) is built once over the global profile and shared by pointer, and
// each HFF cache holds exactly the shard-local slice of the global HFF
// ranking. The router runs Phase 1 once, scatters candidates to their
// owners, scores every engaged shard concurrently with the running k-th
// upper bound exchanged through a crossBound cell, gathers the per-shard
// bound states back into the global candidate order, and runs one global
// lb_k/ub_k selection, partition and Seidl–Kriegel refinement.
//
// Bit-identity with the unsharded engine, piece by piece:
//   - Phase 1 is the same single index probe, so the candidate list — and,
//     because scatter records each candidate's original position and the
//     gather writes scored states back to it, the candidate *order* seen by
//     selection and partition — is identical.
//   - Every shard scores through the shared model, and each shard's HFF
//     cache content is the global content intersected with the shard, so
//     each candidate's (hit, lbSq, ubSq) triple is identical.
//   - The bound exchange only tightens early-abandonment thresholds, which
//     slabReduceRange proves output-invariant.
//   - Refinement runs one global schedule over the merged survivors; only
//     the fetch is routed to the owning shard's file. Shard files share the
//     parent's dimensionality and page size, so PagesPerPoint matches and
//     the fetch multiset — hence Fetched and ΣPageReads — matches. In the
//     batch path, the unit-granular partitioner keeps whole fetch units
//     together and local page boundaries aligned with global ones, so units
//     biject with global pages and cross-query coalescing reads the same
//     number of units.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/multistep"
	"exploitbit/internal/vec"
)

// ShardSpec describes one shard unit to the sharded constructors: its point
// file, its sub-dataset (both in local id space) and the local→global id
// map (the shard's members in local order).
type ShardSpec struct {
	PF        *disk.PointFile
	DS        *dataset.Dataset
	GlobalIDs []int32
}

// shardUnit is one shard's mutable slot inside the router. The engine
// pointer is RCU-swapped by the sharded maintainer; the point file and id
// maps are immutable for the system's lifetime, so an in-flight query keeps
// fetching from the same file no matter how often the cache rebuilds.
type shardUnit struct {
	eng       atomic.Pointer[Engine]
	pf        *disk.PointFile
	globalIDs []int32

	// agg survives engine swaps, unlike the per-engine aggregate.
	agg atomicAggregate

	// quarantined marks a shard whose storage failed permanently: under
	// degraded serving its candidates are skipped without touching the file
	// until a rebuild clears the flag. fetchFailures counts the permanent
	// fetch failures that put (and keep) it there.
	quarantined   atomic.Bool
	fetchFailures atomic.Int64
}

// shardFanThreshold is the global candidate count above which shard scoring
// fans out to one goroutine per engaged shard. Below it the shards are
// scored sequentially on the caller — results are bit-identical either way,
// and small queries should not pay goroutine startup N times.
const shardFanThreshold = 2048

// ShardedEngine runs Algorithm 1 scatter-gather across shard units. It is
// safe for concurrent use under the same rules as Engine.
type ShardedEngine struct {
	cands CandidateFunc
	cfg   Config

	owner []int32 // global id → shard
	local []int32 // global id → local id
	units []*shardUnit

	// unitBase[s] offsets shard s's local PageOf values into one global
	// fetch-unit id space for batch coalescing; unitBase[N] caps the range.
	unitBase []int32

	pagesPer int
	tio      time.Duration

	// degradedOK allows queries to complete over surviving shards when a
	// shard's storage fails permanently (results flagged Degraded). Off, a
	// failed shard fails every query that touches it.
	degradedOK atomic.Bool

	scratch sync.Pool
	agg     atomicAggregate
}

// NewShardedEngine builds the shared model once from the global profile,
// then a full engine per shard over the shard's point file with the
// shard-local slice of the global HFF content (LRU budgets are split
// proportionally to shard size).
func NewShardedEngine(specs []ShardSpec, owner, local []int32, prof *Profile, cands CandidateFunc, cfg Config) (*ShardedEngine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: sharded engine needs at least one shard")
	}
	n := prof.DS.Len()
	if len(owner) != n || len(local) != n {
		return nil, fmt.Errorf("core: owner/local maps cover %d/%d ids, dataset has %d", len(owner), len(local), n)
	}
	total := 0
	for s, spec := range specs {
		if spec.PF == nil || spec.DS == nil {
			return nil, fmt.Errorf("core: shard %d is missing its point file or dataset", s)
		}
		if len(spec.GlobalIDs) != spec.DS.Len() {
			return nil, fmt.Errorf("core: shard %d id map covers %d of %d points", s, len(spec.GlobalIDs), spec.DS.Len())
		}
		total += spec.DS.Len()
	}
	if total != n {
		return nil, fmt.Errorf("core: shards hold %d points, dataset has %d", total, n)
	}

	model, content, capacity, err := newModel(prof, cfg)
	if err != nil {
		return nil, err
	}

	se := &ShardedEngine{
		cands:    cands,
		cfg:      model.cfg, // withDefaults applied, CVA τ recorded
		owner:    owner,
		local:    local,
		pagesPer: specs[0].PF.PagesPerPoint(),
		tio:      specs[0].PF.Tio(),
	}

	// The shard-local slices of the global HFF content, preserving the
	// global rank order inside each shard.
	localContent := make([][]int, len(specs))
	for _, g := range content {
		s := owner[g]
		localContent[s] = append(localContent[s], int(local[g]))
	}
	lruCaps := splitCapacity(capacity, specs)

	for s, spec := range specs {
		e := &Engine{
			ds:             spec.DS,
			pf:             spec.PF,
			cands:          se.ShardCandidates(s),
			cfg:            model.cfg,
			codec:          model.codec,
			table:          model.table,
			ghist:          model.ghist,
			phist:          model.phist,
			md:             model.md,
			histSpaceBytes: model.histSpaceBytes,
			histBuildTime:  model.histBuildTime,
			globalIDs:      spec.GlobalIDs,
		}
		capS := len(localContent[s])
		if model.cfg.Policy == cache.LRU {
			capS = lruCaps[s]
		}
		e.fillCache(localContent[s], capS)
		e.finalize()
		u := &shardUnit{pf: spec.PF, globalIDs: spec.GlobalIDs}
		u.eng.Store(e)
		se.units = append(se.units, u)
	}

	se.unitBase = make([]int32, len(specs)+1)
	for s, spec := range specs {
		maxPage, err := spec.PF.PageOf(spec.DS.Len() - 1)
		if err != nil {
			return nil, err
		}
		se.unitBase[s+1] = se.unitBase[s] + int32(maxPage) + 1
	}

	se.scratch.New = func() any { return newRouterScratch(se) }
	return se, nil
}

// splitCapacity divides an LRU item budget across shards proportionally to
// shard size, handing leftover slots to the lowest-numbered shards.
func splitCapacity(capacity int, specs []ShardSpec) []int {
	total := 0
	for _, spec := range specs {
		total += spec.DS.Len()
	}
	caps := make([]int, len(specs))
	used := 0
	for s, spec := range specs {
		caps[s] = capacity * spec.DS.Len() / total
		used += caps[s]
	}
	for s := 0; used < capacity && s < len(caps); s++ {
		caps[s]++
		used++
	}
	return caps
}

// ShardCandidates returns the global candidate generator filtered to shard
// s, with ids translated to the shard's local space — what a standalone
// engine over that shard would see. The sharded maintainer profiles rebuild
// windows through it.
func (se *ShardedEngine) ShardCandidates(s int) CandidateFunc {
	return func(q []float32, k int) ([]int, float64) {
		ids, dmax := se.cands(q, k)
		var out []int
		for _, g := range ids {
			if se.owner[g] == int32(s) {
				out = append(out, int(se.local[g]))
			}
		}
		return out, dmax
	}
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.units) }

// Engine returns shard s's current engine (the RCU slot's value at call
// time).
func (se *ShardedEngine) Engine(s int) *Engine { return se.units[s].eng.Load() }

// swapEngine installs a freshly built engine into shard s. Callers (the
// sharded maintainer) must build eng over the same point file and id map.
func (se *ShardedEngine) swapEngine(s int, eng *Engine) { se.units[s].eng.Store(eng) }

// SetDegradedOK enables (or disables) degraded-mode serving: completing
// queries over surviving shards when a shard's storage fails permanently.
func (se *ShardedEngine) SetDegradedOK(ok bool) { se.degradedOK.Store(ok) }

// DegradedOK reports whether degraded-mode serving is enabled.
func (se *ShardedEngine) DegradedOK() bool { return se.degradedOK.Load() }

// Quarantine marks shard s failed: under degraded serving its candidates are
// skipped without touching its storage.
func (se *ShardedEngine) Quarantine(s int) { se.units[s].quarantined.Store(true) }

// ClearQuarantine returns shard s to service (after a successful rebuild).
func (se *ShardedEngine) ClearQuarantine(s int) { se.units[s].quarantined.Store(false) }

// Quarantined reports whether shard s is quarantined.
func (se *ShardedEngine) Quarantined(s int) bool { return se.units[s].quarantined.Load() }

// SetRetry installs the transient-fault retry policy on every shard's
// backing device.
func (se *ShardedEngine) SetRetry(rp disk.RetryPolicy) {
	for _, u := range se.units {
		u.pf.SetRetry(rp)
	}
}

// DiskStats sums the device counters (including fault-handling activity)
// across every shard's point file.
func (se *ShardedEngine) DiskStats() disk.Stats {
	var t disk.Stats
	for _, u := range se.units {
		s := u.pf.Stats()
		t.PageReads += s.PageReads
		t.PageWrites += s.PageWrites
		t.Retries += s.Retries
		t.TransientErrors += s.TransientErrors
		t.PermanentErrors += s.PermanentErrors
	}
	return t
}

// CacheCapacity sums the per-shard cache capacities.
func (se *ShardedEngine) CacheCapacity() int {
	t := 0
	for s := range se.units {
		t += se.Engine(s).CacheCapacity()
	}
	return t
}

// CacheLen sums the per-shard cached item counts.
func (se *ShardedEngine) CacheLen() int {
	t := 0
	for s := range se.units {
		t += se.Engine(s).CacheLen()
	}
	return t
}

// HistogramSpaceBytes reports the shared model's histogram footprint (the
// model is built once; shards reference it).
func (se *ShardedEngine) HistogramSpaceBytes() int { return se.Engine(0).HistogramSpaceBytes() }

// Aggregate returns the accumulated cross-shard statistics.
func (se *ShardedEngine) Aggregate() Aggregate { return se.agg.Load() }

// ResetStats clears the global and per-shard accumulated statistics.
func (se *ShardedEngine) ResetStats() {
	se.agg.Reset()
	for _, u := range se.units {
		u.agg.Reset()
	}
}

// ShardAggregate is one shard's statistics block for /stats and /metrics.
type ShardAggregate struct {
	Shard         int
	Points        int
	CachedItems   int
	CacheCapacity int
	Agg           Aggregate

	// Quarantined reports the shard's current fault state; FetchFailures the
	// permanent fetch failures observed on it.
	Quarantined   bool
	FetchFailures int64
}

// ShardAggregates snapshots every shard's accumulated statistics.
func (se *ShardedEngine) ShardAggregates() []ShardAggregate {
	out := make([]ShardAggregate, len(se.units))
	for s, u := range se.units {
		e := u.eng.Load()
		out[s] = ShardAggregate{
			Shard:         s,
			Points:        e.ds.Len(),
			CachedItems:   e.CacheLen(),
			CacheCapacity: e.CacheCapacity(),
			Agg:           u.agg.Load(),
			Quarantined:   u.quarantined.Load(),
			FetchFailures: u.fetchFailures.Load(),
		}
	}
	return out
}

// routerScratch is the pooled per-query working set of the sharded search:
// the global candidate states, the per-shard scatter lists, the per-query
// engine snapshot, and the refinement buffers. Mirrors searchScratch.
type routerScratch struct {
	se  *ShardedEngine
	st  QueryStats
	ctx context.Context

	reduceScratch

	sids    [][]int      // per-shard local candidate ids
	pos     [][]int32    // per-shard original candidate positions
	engs    []*Engine    // per-query RCU snapshot of every shard engine
	shardSt []QueryStats // per-shard slice of this query's statistics
	errs    []error      // per-shard scoring errors
	xb      crossBound

	// Degraded-mode state, snapshotted per query: quar is each shard's
	// quarantine flag at scatter time, failed marks shards this query is
	// serving around (quarantined shards it touched, plus shards that failed
	// permanently mid-query).
	degradedOK bool
	quar       []bool
	failed     []bool

	fetchBuf []float32
	codes    []int

	// mergeIDs holds the tombstone-filtered Phase-1 ids of a merged search;
	// candidate funcs may return shared slices, so filtering never happens in
	// place.
	mergeIDs []int

	mcands    []multistep.Candidate
	rbuf      []multistep.Result
	msc       multistep.Scratch
	exactByID map[int32][]float32
	fetch     multistep.Fetch
}

func newRouterScratch(se *ShardedEngine) *routerScratch {
	n := len(se.units)
	rs := &routerScratch{
		se:            se,
		reduceScratch: newReduceScratch(),
		sids:          make([][]int, n),
		pos:           make([][]int32, n),
		engs:          make([]*Engine, n),
		shardSt:       make([]QueryStats, n),
		errs:          make([]error, n),
		quar:          make([]bool, n),
		failed:        make([]bool, n),
		fetchBuf:      make([]float32, se.units[0].pf.Dim()),
		codes:         make([]int, se.units[0].pf.Dim()),
		exactByID:     make(map[int32][]float32),
	}
	rs.fetch = rs.fetchPoint
	return rs
}

func (se *ShardedEngine) getScratch() *routerScratch {
	return se.scratch.Get().(*routerScratch)
}

func (se *ShardedEngine) putScratch(rs *routerScratch) {
	rs.ctx = nil
	se.scratch.Put(rs)
}

// failShard records a permanent storage failure on shard s: the query serves
// around it from here on, and the shard is quarantined so later queries skip
// it without touching the broken file until a rebuild clears the flag.
func (rs *routerScratch) failShard(s int) {
	rs.failed[s] = true
	u := rs.se.units[s]
	u.fetchFailures.Add(1)
	u.quarantined.Store(true)
}

// fetchPoint is the sharded Phase-3 fetch: global ids are routed to the
// owning shard's file, charging I/O both globally and to the shard. A
// candidate owned by a failed shard is dropped from the schedule (degraded
// mode); a fetch that fails permanently fails its shard the same way.
func (rs *routerScratch) fetchPoint(id int) ([]float32, error) {
	if len(rs.exactByID) > 0 {
		if p, ok := rs.exactByID[int32(id)]; ok {
			return p, nil // EXACT cache hit: RAM, no I/O
		}
	}
	if err := rs.ctx.Err(); err != nil {
		return nil, err
	}
	se := rs.se
	s := se.owner[id]
	if rs.failed[s] {
		return nil, fmt.Errorf("core: shard %d failed: %w", s, multistep.ErrSkipCandidate)
	}
	e := rs.engs[s]
	lid := int(se.local[id])
	p, err := e.pf.FetchCtx(rs.ctx, lid, rs.fetchBuf)
	if err != nil {
		if rs.degradedOK && disk.IsPermanent(err) {
			rs.failShard(int(s))
			return nil, fmt.Errorf("core: shard %d failed (%v): %w", s, err, multistep.ErrSkipCandidate)
		}
		return nil, &ShardError{Shard: int(s), Err: err}
	}
	rs.st.Fetched++
	rs.st.PageReads += int64(se.pagesPer)
	rs.shardSt[s].Fetched++
	rs.shardSt[s].PageReads += int64(se.pagesPer)
	if e.cfg.Policy == cache.LRU {
		e.admitLRU(lid, p, rs.codes)
	}
	return p, nil
}

// phase12 is the scatter-gather counterpart of Engine.phase12: one global
// Phase 1, concurrent per-shard Phase-2 scoring with bound exchange, then
// global selection and partition over the gathered states. A non-nil mg
// folds the live-ingest overlay in exactly as Engine.phase12 does: masked
// base candidates never scatter, and surviving delta points are scored
// exactly into the tail of the global candidate states.
func (se *ShardedEngine) phase12(ctx context.Context, rs *routerScratch, q []float32, k int, dst []int, mg *Merge) ([]int, []candState, error) {
	st := &rs.st

	// Phase 1 once, globally: every shard prunes against candidates of the
	// same probe, and the candidate order is the unsharded one.
	t0 := time.Now()
	ids, dmax := se.cands(q, k)
	st.GenTime = time.Since(t0)
	st.Dmax = dmax

	nExtra := 0
	if mg != nil {
		if mg.Deleted != nil {
			rs.mergeIDs = rs.mergeIDs[:0]
			for _, id := range ids {
				if !mg.Deleted(int32(id)) {
					rs.mergeIDs = append(rs.mergeIDs, id)
				}
			}
			ids = rs.mergeIDs
		}
		horizon := int32(len(se.owner))
		for i := range mg.Extra {
			if mg.extraLive(&mg.Extra[i], horizon) {
				nExtra++
			}
		}
	}
	st.Candidates = len(ids) + nExtra

	t1 := time.Now()
	engaged := 0
	for s, u := range se.units {
		rs.engs[s] = u.eng.Load() // one RCU snapshot per query per shard
		rs.sids[s] = rs.sids[s][:0]
		rs.pos[s] = rs.pos[s][:0]
		rs.shardSt[s] = QueryStats{}
		rs.errs[s] = nil
		rs.quar[s] = u.quarantined.Load()
		rs.failed[s] = false
	}
	// cs is sized before the scatter so quarantined shards' candidate slots
	// can be neutralized in place (the scratch is pooled — a stale slot would
	// otherwise hold a previous query's state). Delta extras fill the tail
	// beyond the scattered base candidates.
	rs.cs = grow(rs.cs, len(ids)+nExtra)
	inf := math.Inf(1)
	for i, g := range ids {
		s := se.owner[g]
		if rs.quar[s] {
			// Quarantined owner: refuse the query unless degraded serving is
			// on; under it, neutralize the candidate (+Inf bounds prune it or
			// route it to the skip path) and flag the shard as served-around.
			if !rs.degradedOK {
				return nil, nil, &ShardError{Shard: int(s), Err: ErrShardQuarantined}
			}
			rs.failed[s] = true
			rs.cs[i] = candState{id: int32(g), leaf: -1, lbSq: inf, ubSq: inf}
			continue
		}
		if len(rs.sids[s]) == 0 {
			engaged++
		}
		rs.sids[s] = append(rs.sids[s], int(se.local[g]))
		rs.pos[s] = append(rs.pos[s], int32(i))
	}
	rs.xb.reset()

	run := func(s int) error {
		e := rs.engs[s]
		sc := e.getScratch()
		defer e.putScratch(sc)
		sc.ctx = ctx
		sc.st = QueryStats{}
		sids := rs.sids[s]
		sc.cs = grow(sc.cs, len(sids))
		// The LUT gate sees the global candidate count so every shard makes
		// the same build-vs-scan choice the unsharded engine would.
		lut := e.queryLUT(q, len(ids), sc)
		sc.st.UsedLUT = lut != nil
		workers := e.reduceWorkers(len(sids))
		sc.st.ReduceWorkers = workers
		var err error
		switch {
		case e.slab != nil && !e.cfg.EagerFetchMisses:
			err = e.reduceSlab(ctx, q, sids, sc.cs, lut, k, workers, sc, &rs.xb)
		case workers > 1:
			err = e.reduceParallel(ctx, q, sids, sc.cs, lut, workers, &sc.st)
		default:
			err = e.reduceSerial(ctx, q, sids, sc.cs, lut, sc)
		}
		if err != nil {
			return err
		}
		// Gather: write each scored state back to its original global
		// position, translating the id to global space.
		gids := se.units[s].globalIDs
		for i := range sids {
			c := sc.cs[i]
			c.id = gids[c.id]
			rs.cs[rs.pos[s][i]] = c
		}
		sc.st.Candidates = len(sids)
		rs.shardSt[s] = sc.st
		return nil
	}

	if engaged > 1 && len(ids) >= shardFanThreshold {
		var wg sync.WaitGroup
		for s := range se.units {
			if len(rs.sids[s]) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				rs.errs[s] = run(s)
			}(s)
		}
		wg.Wait()
	} else {
		for s := range se.units {
			if len(rs.sids[s]) == 0 {
				continue
			}
			rs.errs[s] = run(s)
		}
	}
	for s, err := range rs.errs {
		if err == nil {
			continue
		}
		if rs.degradedOK && disk.IsPermanent(err) {
			// The shard's storage died mid-scoring (eager-fetch path): fail
			// it, neutralize its candidate slots, and serve on.
			rs.failShard(s)
			for _, p := range rs.pos[s] {
				rs.cs[p] = candState{id: int32(ids[p]), leaf: -1, lbSq: inf, ubSq: inf}
			}
			rs.shardSt[s] = QueryStats{}
			continue
		}
		return nil, nil, &ShardError{Shard: s, Err: err}
	}

	for s := range se.units {
		st.Hits += rs.shardSt[s].Hits
		st.Fetched += rs.shardSt[s].Fetched // eager-fetch ablation path
		st.PageReads += rs.shardSt[s].PageReads
		if rs.shardSt[s].UsedLUT {
			st.UsedLUT = true
		}
	}
	st.ReduceWorkers = engaged

	if nExtra > 0 {
		// Delta points: exact distance in RAM, lb = ub = d², no I/O, no
		// owning shard yet — they join the global selection but are excluded
		// from the per-shard attribution below (their ids lie beyond the
		// owner map).
		horizon := int32(len(se.owner))
		j := len(ids)
		for i := range mg.Extra {
			ex := &mg.Extra[i]
			if !mg.extraLive(ex, horizon) {
				continue
			}
			d2 := vec.SqDist(q, ex.Vec)
			rs.cs[j] = candState{id: ex.ID, leaf: -1, lbSq: d2, ubSq: d2, exactPt: ex.Vec}
			j++
		}
		st.Hits += nExtra
	}

	// Global selection over the gathered states — the same values in the
	// same order as the unsharded engine's kthBoundsSq sees.
	cs := rs.cs[:len(ids)+nExtra]
	lbkSq, ubkSq := rs.kthBoundsSq(cs, k)

	// Attribute the partition per shard before partitionCandidates compacts
	// cs in place, using the same predicates in the same order. Only base
	// candidates attribute — extras carry ids outside the owner map.
	for i := range cs[:len(ids)] {
		c := &cs[i]
		sst := &rs.shardSt[se.owner[c.id]]
		switch {
		case c.lbSq > ubkSq:
			sst.Pruned++
		case !se.cfg.NoTrueHitDetection && !c.known && c.ubSq < lbkSq:
			sst.TrueHits++
		default:
			sst.Remaining++
		}
	}

	results, remaining := partitionCandidates(cs, lbkSq, ubkSq, se.cfg.NoTrueHitDetection, st, dst)
	st.Remaining = len(remaining)
	st.ReduceTime = time.Since(t1)
	return results, remaining, nil
}

// Search runs the scatter-gather Algorithm 1; see Engine.Search.
func (se *ShardedEngine) Search(q []float32, k int) ([]int, QueryStats, error) {
	return se.SearchIntoCtx(context.Background(), q, k, nil)
}

// SearchCtx is Search under a request context; see Engine.SearchCtx.
func (se *ShardedEngine) SearchCtx(ctx context.Context, q []float32, k int) ([]int, QueryStats, error) {
	return se.SearchIntoCtx(ctx, q, k, nil)
}

// SearchInto is Search appending result identifiers to dst.
func (se *ShardedEngine) SearchInto(q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return se.SearchIntoCtx(context.Background(), q, k, dst)
}

// SearchIntoCtx is the sharded SearchInto under a request context. Results
// are bit-identical to the unsharded engine's.
func (se *ShardedEngine) SearchIntoCtx(ctx context.Context, q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return se.searchMergedIntoCtxStats(ctx, q, k, dst, nil, nil)
}

// SearchMergedIntoCtx is SearchIntoCtx with the live-ingest overlay folded
// into the scatter-gather pipeline; see Merge.
func (se *ShardedEngine) SearchMergedIntoCtx(ctx context.Context, q []float32, k int, dst []int, mg *Merge) ([]int, QueryStats, error) {
	return se.searchMergedIntoCtxStats(ctx, q, k, dst, nil, mg)
}

// searchIntoCtxStats is SearchIntoCtx that additionally copies the query's
// per-shard statistics into perShard (len Shards()) when non-nil — the
// sharded maintainer feeds its per-shard drift windows from them.
func (se *ShardedEngine) searchIntoCtxStats(ctx context.Context, q []float32, k int, dst []int, perShard []QueryStats) ([]int, QueryStats, error) {
	return se.searchMergedIntoCtxStats(ctx, q, k, dst, perShard, nil)
}

// searchMergedIntoCtxStats is the full scatter-gather pipeline with both the
// per-shard statistics sink and the optional live-ingest overlay.
func (se *ShardedEngine) searchMergedIntoCtxStats(ctx context.Context, q []float32, k int, dst []int, perShard []QueryStats, mg *Merge) ([]int, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	rs := se.getScratch()
	defer se.putScratch(rs)
	rs.ctx = ctx
	rs.st = QueryStats{}
	rs.degradedOK = se.degradedOK.Load()
	st := &rs.st

	results, remaining, err := se.phase12(ctx, rs, q, k, dst, mg)
	if err != nil {
		return nil, rs.st, err
	}

	// Phase 3: one global refinement schedule — identical candidate order
	// and bounds, with only the fetch routed to the owning shard.
	if err := ctx.Err(); err != nil {
		return nil, rs.st, err
	}
	t2 := time.Now()
	kNeed := k - st.TrueHits
	if kNeed > 0 && len(remaining) > 0 {
		rs.mcands = grow(rs.mcands, len(remaining))
		clear(rs.exactByID)
		for i, c := range remaining {
			rs.mcands[i] = multistep.Candidate{ID: int(c.id), LB: c.lbSq, UB: c.ubSq}
			if c.exactPt != nil {
				rs.exactByID[c.id] = c.exactPt
			}
		}
		refined, _, err := rs.msc.SearchSq(q, rs.mcands, kNeed, rs.fetch, rs.rbuf[:0])
		if err != nil {
			return nil, rs.st, err
		}
		rs.rbuf = refined[:0]
		for _, r := range refined {
			results = append(results, r.ID)
		}
	}
	st.RefineTime = time.Since(t2)
	st.SimulatedIO = time.Duration(st.PageReads) * se.tio
	for s := range se.units {
		if rs.failed[s] {
			st.Degraded = true
			st.FailedShards = append(st.FailedShards, s)
		}
	}

	se.agg.Add(rs.st)
	for s := range se.units {
		if rs.shardSt[s].Candidates > 0 || rs.shardSt[s].Fetched > 0 {
			rs.shardSt[s].SimulatedIO = time.Duration(rs.shardSt[s].PageReads) * se.tio
			se.units[s].agg.Add(rs.shardSt[s])
		}
	}
	if perShard != nil {
		copy(perShard, rs.shardSt)
	}
	return results, rs.st, nil
}

// SearchBatch is the sharded batch search; see SearchBatchCtx.
func (se *ShardedEngine) SearchBatch(qs [][]float32, k int) ([][]int, []QueryStats, error) {
	return se.SearchBatchCtx(context.Background(), qs, k)
}

// SearchBatchCtx is Engine.SearchBatchCtx scatter-gathered across shards:
// per-query Phase 1+2 through the router, then one cross-query coalesced
// refinement whose fetch units are (shard, local unit) pairs. Because the
// partitioner is fetch-unit granular, those units biject with the unsharded
// file's pages and per-query PageReads match the unsharded batch exactly.
func (se *ShardedEngine) SearchBatchCtx(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error) {
	return se.searchBatchCtxStats(ctx, qs, k, nil)
}

// searchBatchCtxStats is SearchBatchCtx that additionally copies per-query
// per-shard statistics into perShard (perShard[j][s], len(qs) × Shards())
// when non-nil.
func (se *ShardedEngine) searchBatchCtxStats(ctx context.Context, qs [][]float32, k int, perShard [][]QueryStats) ([][]int, []QueryStats, error) {
	if len(qs) == 0 {
		return nil, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	n := len(qs)
	degradedOK := se.degradedOK.Load()
	rss := make([]*routerScratch, n)
	for j := range rss {
		rss[j] = se.getScratch()
		rss[j].ctx = ctx
		rss[j].st = QueryStats{}
		rss[j].degradedOK = degradedOK
	}
	defer func() {
		for _, rs := range rss {
			se.putScratch(rs)
		}
	}()

	results := make([][]int, n)
	remainings := make([][]candState, n)
	if err := batchFan(n, func(j int) error {
		var err error
		results[j], remainings[j], err = se.phase12(ctx, rss[j], qs[j], k, nil, nil)
		return err
	}); err != nil {
		return nil, nil, err
	}

	// Assemble the coalesced refinement over (shard, local unit) ids.
	t2 := time.Now()
	items := make([]multistep.BatchQuery, n)
	pageIDs := make(map[int32][]int)         // unit → local ids to decode
	onPage := make(map[int32]map[int32]bool) // dedup guard for pageIDs
	for j := range qs {
		var seeds, pending []multistep.GroupCandidate
		for _, c := range remainings[j] {
			if c.exactPt != nil {
				seeds = append(seeds, multistep.GroupCandidate{ID: c.id, Group: -1, LBSq: c.lbSq})
				continue
			}
			s := se.owner[c.id]
			if rss[j].failed[s] {
				continue // neutralized candidate of a failed shard
			}
			lid := int(se.local[c.id])
			page, err := se.units[s].pf.PageOf(lid)
			if err != nil {
				return nil, nil, err
			}
			u := se.unitBase[s] + int32(page)
			pending = append(pending, multistep.GroupCandidate{ID: c.id, Group: u, LBSq: c.lbSq})
			seen := onPage[u]
			if seen == nil {
				seen = make(map[int32]bool)
				onPage[u] = seen
			}
			if !seen[c.id] {
				seen[c.id] = true
				pageIDs[u] = append(pageIDs[u], lid)
			}
		}
		items[j] = multistep.BatchQuery{
			Q: qs[j], Seeds: seeds, Pending: pending,
			K: k - rss[j].st.TrueHits, OwnOnly: true,
		}
	}

	// failBatchShard marks shard s failed for every query of the batch: a
	// unit read serves all demanders, so its failure degrades all of them.
	failBatchShard := func(s int) {
		se.units[s].fetchFailures.Add(1)
		se.units[s].quarantined.Store(true)
		for _, rs := range rss {
			rs.failed[s] = true
		}
	}
	fetch := func(unit int32, item int) ([]int32, [][]float32, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		s := se.shardOfUnit(unit)
		if rss[item].failed[s] {
			return nil, nil, fmt.Errorf("core: shard %d failed: %w", s, multistep.ErrSkipCandidate)
		}
		e := rss[item].engs[s]
		lids := pageIDs[unit]
		pts := make([][]float32, len(lids))
		if err := e.pf.FetchOnPageCtx(ctx, int(unit-se.unitBase[s]), lids, pts); err != nil {
			if degradedOK && disk.IsPermanent(err) {
				failBatchShard(s)
				return nil, nil, fmt.Errorf("core: shard %d failed (%v): %w", s, err, multistep.ErrSkipCandidate)
			}
			return nil, nil, &ShardError{Shard: s, Err: err}
		}
		rs := rss[item]
		rs.st.Fetched += len(lids)
		rs.st.PageReads += int64(se.pagesPer)
		rs.shardSt[s].Fetched += len(lids)
		rs.shardSt[s].PageReads += int64(se.pagesPer)
		if e.cfg.Policy == cache.LRU {
			for i, lid := range lids {
				e.admitLRU(lid, pts[i], rs.codes)
			}
		}
		gids := se.units[s].globalIDs
		out := make([]int32, len(lids))
		for i, lid := range lids {
			out[i] = gids[lid]
		}
		return out, pts, nil
	}
	refined, _, err := multistep.SearchBatchSq(items, fetch)
	if err != nil {
		return nil, nil, err
	}

	share := time.Since(t2) / time.Duration(n)
	sts := make([]QueryStats, n)
	for j := range qs {
		for _, r := range refined[j] {
			results[j] = append(results[j], r.ID)
		}
		rs := rss[j]
		rs.st.RefineTime = share
		rs.st.SimulatedIO = time.Duration(rs.st.PageReads) * se.tio
		for s := range se.units {
			if rs.failed[s] {
				rs.st.Degraded = true
				rs.st.FailedShards = append(rs.st.FailedShards, s)
			}
		}
		se.agg.Add(rs.st)
		for s := range se.units {
			if rs.shardSt[s].Candidates > 0 || rs.shardSt[s].Fetched > 0 {
				rs.shardSt[s].SimulatedIO = time.Duration(rs.shardSt[s].PageReads) * se.tio
				se.units[s].agg.Add(rs.shardSt[s])
			}
		}
		if perShard != nil {
			copy(perShard[j], rs.shardSt)
		}
		sts[j] = rs.st
	}
	return results, sts, nil
}

// shardOfUnit inverts the unitBase offsets: the shard whose unit id range
// contains unit.
func (se *ShardedEngine) shardOfUnit(unit int32) int {
	// sort.Search over the N+1 fence array: first s with unitBase[s+1] > unit.
	return sort.Search(len(se.units), func(s int) bool { return se.unitBase[s+1] > unit })
}
