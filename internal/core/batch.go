// Batch search: Phase-2 reduction for every query of a burst in parallel on
// the shared core, then one cross-query coalesced refinement through
// multistep.SearchBatchSq. Correlated queries' surviving candidates land on
// overlapping data-file pages (or tree leaves); refining them together reads
// each unit once for the whole batch instead of once per query, while each
// query keeps its own Seidl–Kriegel-optimal schedule and termination — the
// batch returns exactly what per-query SearchCtx calls would.
//
// Statistics attribution: a unit's read is charged (Fetched, PageReads) to
// the query whose schedule demanded it first; queries served from the shared
// unit cache pay nothing. Per-query PageReads therefore sum to the batch's
// physical reads, and that sum is at most — on overlapping workloads,
// strictly below — the sum of the same queries searched one at a time.
// RefineTime is the batch's refinement wall clock split evenly across the
// batch (refinement is a joint computation with no per-query attribution).

package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"exploitbit/internal/cache"
	"exploitbit/internal/multistep"
)

// SearchBatch runs Algorithm 1 for a batch of queries with cross-query
// coalesced refinement. See SearchBatchCtx.
func (e *Engine) SearchBatch(qs [][]float32, k int) ([][]int, []QueryStats, error) {
	return e.SearchBatchCtx(context.Background(), qs, k)
}

// SearchBatchCtx searches every query of qs for its k nearest, reading each
// data-file page at most once across the whole batch during refinement.
// Results and statistics are positional (results[i] answers qs[i]); each
// query's result identifiers match a standalone SearchCtx of the same query.
// A canceled ctx abandons the batch at the next check point — between
// scoring strides, before refinement, and before every page read.
func (e *Engine) SearchBatchCtx(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error) {
	if len(qs) == 0 {
		return nil, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	n := len(qs)
	scs := make([]*searchScratch, n)
	for j := range scs {
		scs[j] = e.getScratch()
		scs[j].ctx = ctx
		scs[j].st = QueryStats{}
	}
	defer func() {
		for _, sc := range scs {
			e.putScratch(sc)
		}
	}()

	// Phases 1+2 for every query, fanned across the batch: each query scores
	// on its own scratch, so workers share nothing but the immutable caches.
	results := make([][]int, n)
	remainings := make([][]candState, n)
	if err := batchFan(n, func(j int) error {
		var err error
		results[j], remainings[j], err = e.phase12(ctx, scs[j], qs[j], k, nil, nil)
		return err
	}); err != nil {
		return nil, nil, err
	}

	// Assemble the coalesced refinement: pending candidates grouped by their
	// data-file page, with one deduplicated decode list per page.
	t2 := time.Now()
	items := make([]multistep.BatchQuery, n)
	pageIDs := make(map[int32][]int)         // page → ids to decode when it loads
	onPage := make(map[int32]map[int32]bool) // dedup guard for pageIDs
	for j := range qs {
		var seeds, pending []multistep.GroupCandidate
		for _, c := range remainings[j] {
			if c.exactPt != nil {
				// EXACT cache hit: distance already in hand, zero I/O.
				seeds = append(seeds, multistep.GroupCandidate{ID: c.id, Group: -1, LBSq: c.lbSq})
				continue
			}
			page, err := e.pf.PageOf(int(c.id))
			if err != nil {
				return nil, nil, err
			}
			u := int32(page)
			pending = append(pending, multistep.GroupCandidate{ID: c.id, Group: u, LBSq: c.lbSq})
			seen := onPage[u]
			if seen == nil {
				seen = make(map[int32]bool)
				onPage[u] = seen
			}
			if !seen[c.id] {
				seen[c.id] = true
				pageIDs[u] = append(pageIDs[u], int(c.id))
			}
		}
		// OwnOnly: a page holds arbitrary points; only this query's own
		// candidates carry bounds for it, so only they may enter its top-k.
		items[j] = multistep.BatchQuery{
			Q: qs[j], Seeds: seeds, Pending: pending,
			K: k - scs[j].st.TrueHits, OwnOnly: true,
		}
	}

	fetch := func(unit int32, item int) ([]int32, [][]float32, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		ids := pageIDs[unit]
		pts := make([][]float32, len(ids))
		if err := e.pf.FetchOnPageCtx(ctx, int(unit), ids, pts); err != nil {
			return nil, nil, err
		}
		st := &scs[item].st
		st.Fetched += len(ids)
		st.PageReads += int64(e.pf.PagesPerPoint())
		if e.cfg.Policy == cache.LRU {
			for i, id := range ids {
				e.admitLRU(id, pts[i], scs[item].codes)
			}
		}
		out := make([]int32, len(ids))
		for i, id := range ids {
			out[i] = int32(id)
		}
		return out, pts, nil
	}
	refined, _, err := multistep.SearchBatchSq(items, fetch)
	if err != nil {
		return nil, nil, err
	}

	share := time.Since(t2) / time.Duration(n)
	sts := make([]QueryStats, n)
	for j := range qs {
		for _, r := range refined[j] {
			results[j] = append(results[j], r.ID)
		}
		st := &scs[j].st
		st.RefineTime = share
		st.SimulatedIO = time.Duration(st.PageReads) * e.pf.Tio()
		e.agg.Add(*st)
		sts[j] = *st
	}
	return results, sts, nil
}

// SearchBatch is the tree-engine batch search. See the TreeEngine
// SearchBatchCtx.
func (e *TreeEngine) SearchBatch(qs [][]float32, k int) ([][]int, []QueryStats, error) {
	return e.SearchBatchCtx(context.Background(), qs, k)
}

// SearchBatchCtx searches every query of qs for its k nearest over the tree
// index, loading each leaf at most once across the whole batch during
// refinement. Phase 2's own leaf loads (uncached leaves visited in bound
// order) remain per-query; the coalescing applies to Phase 3, where the
// bulk of correlated batches' I/O overlaps. Results match standalone
// SearchCtx calls query for query.
func (e *TreeEngine) SearchBatchCtx(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error) {
	if len(qs) == 0 {
		return nil, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	n := len(qs)
	scs := make([]*treeScratch, n)
	for j := range scs {
		scs[j] = e.getScratch()
		scs[j].ctx = ctx
		scs[j].st = QueryStats{}
		scs[j].q = qs[j]
	}
	defer func() {
		for _, sc := range scs {
			e.putScratch(sc)
		}
	}()

	results := make([][]int, n)
	if err := batchFan(n, func(j int) error {
		var err error
		results[j], err = e.phase12(ctx, scs[j], qs[j], k, nil)
		return err
	}); err != nil {
		return nil, nil, err
	}

	t2 := time.Now()
	items := make([]multistep.BatchQuery, n)
	for j := range qs {
		sc := scs[j]
		clear(sc.skip)
		for _, id := range results[j] {
			sc.skip[int32(id)] = true
		}
		// Every resident of a visited leaf is one of this query's candidates,
		// so the whole leaf feeds the selection (OwnOnly false), exactly as in
		// the per-query SearchGroupsSq.
		items[j] = multistep.BatchQuery{
			Q: qs[j], Seeds: sc.seeds, Pending: sc.pend,
			K: k - sc.st.TrueHits, Skip: sc.skip,
		}
	}
	fetch := func(unit int32, item int) ([]int32, [][]float32, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return e.loadLeaf(int(unit), &scs[item].st)
	}
	refined, _, err := multistep.SearchBatchSq(items, fetch)
	if err != nil {
		return nil, nil, err
	}

	share := time.Since(t2) / time.Duration(n)
	sts := make([]QueryStats, n)
	for j := range qs {
		for _, r := range refined[j] {
			results[j] = append(results[j], r.ID)
		}
		st := &scs[j].st
		st.RefineTime = share
		st.SimulatedIO = time.Duration(st.PageReads) * e.store.Tio()
		e.agg.Add(*st)
		sts[j] = *st
	}
	return results, sts, nil
}

// SearchBatch is the maintained batch search. See the Maintainer
// SearchBatchCtx.
func (m *Maintainer) SearchBatch(qs [][]float32, k int) ([][]int, []QueryStats, error) {
	return m.SearchBatchCtx(context.Background(), qs, k)
}

// SearchBatchCtx runs the batch through the current engine and folds every
// served query into the drift window, launching a background rebuild when
// the window trips — the same maintenance semantics as per-query SearchCtx,
// applied per batch member.
func (m *Maintainer) SearchBatchCtx(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error) {
	results, sts, err := m.eng.Load().SearchBatchCtx(ctx, qs, k)
	if err != nil {
		return nil, nil, err
	}
	for i, q := range qs {
		// launchRebuild is CAS-guarded, so repeated triggers within one batch
		// start at most one rebuild (and launchEvaluate at most one window
		// evaluation).
		sig := m.recordQuery(q, sts[i])
		if sig.rebuildWL != nil {
			m.launchRebuild(sig.rebuildWL, k, m.curTau(), false)
		}
		if sig.evalWL != nil {
			m.launchEvaluate(sig.obsHit, sig.obsRefine, sig.evalWL, k)
		}
	}
	return results, sts, nil
}

// batchFan runs work(j) for every j in [0,n) across min(GOMAXPROCS, n)
// workers and returns the first error by index order. Cancellation is the
// work function's business: each query polls its request context inside
// phase12.
func batchFan(n int, work func(j int) error) error {
	errs := make([]error, n)
	workers := min(runtime.GOMAXPROCS(0), n)
	if workers < 2 {
		for j := 0; j < n; j++ {
			errs[j] = work(j)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= n {
						return
					}
					errs[j] = work(j)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
