// Benchmarks regenerating every table and figure of the paper (one target
// per exhibit) plus the ablation studies of DESIGN.md §5. Each benchmark
// runs the corresponding internal/bench experiment at the Quick scale;
// fixtures (datasets, indexes, workload profiles) are built once and shared.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Paper-vs-measured notes live in EXPERIMENTS.md; the same experiments can
// be run with readable output via `go run ./cmd/ebc-bench -all`.
package exploitbit_test

import (
	"io"
	"os"
	"sync"
	"testing"

	"exploitbit/internal/bench"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *bench.Env
	benchDir     string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if benchEnv != nil {
		benchEnv.Close()
	}
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	os.Exit(code)
}

func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		dir, err := os.MkdirTemp("", "exploitbit-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		benchDir = dir
		benchEnv = bench.NewEnv(bench.Quick, dir)
	})
	return benchEnv
}

func runExperiment(b *testing.B, id string) {
	env := sharedEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(io.Discard, env, id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01_RefinementBottleneck(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig02_QueryLogSkew(b *testing.B)           { runExperiment(b, "fig2") }
func BenchmarkFig06_HistogramEffectiveness(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig08_CachingPolicy(b *testing.B)          { runExperiment(b, "fig8") }
func BenchmarkFig09_FileOrdering(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkTable3_HistogramCategories(b *testing.B)   { runExperiment(b, "tab3") }
func BenchmarkFig10_CVAvsHCD(b *testing.B)               { runExperiment(b, "fig10") }
func BenchmarkFig11_EarlyPruningPower(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12_CostModelAccuracy(b *testing.B)      { runExperiment(b, "fig12") }
func BenchmarkTable4_RefinementTimes(b *testing.B)       { runExperiment(b, "tab4") }
func BenchmarkFig13_CacheSize(b *testing.B)              { runExperiment(b, "fig13") }
func BenchmarkFig14_ResultSize(b *testing.B)             { runExperiment(b, "fig14") }
func BenchmarkFig15_CodeLength(b *testing.B)             { runExperiment(b, "fig15") }
func BenchmarkFig16_ExactIndexes(b *testing.B)           { runExperiment(b, "fig16") }
func BenchmarkAblation_Lemma3Cutoff(b *testing.B)        { runExperiment(b, "abl-lemma3") }
func BenchmarkAblation_PrefixSums(b *testing.B)          { runExperiment(b, "abl-upsilon") }
func BenchmarkAblation_TrueResultDetection(b *testing.B) { runExperiment(b, "abl-truehit") }
func BenchmarkAblation_BitPacking(b *testing.B)          { runExperiment(b, "abl-bitpack") }
func BenchmarkAblation_EagerFetch(b *testing.B)          { runExperiment(b, "abl-eagerfetch") }
func BenchmarkExtension_VAPlus(b *testing.B)             { runExperiment(b, "ext-vaplus") }
func BenchmarkExtension_KNNJoin(b *testing.B)            { runExperiment(b, "ext-join") }
func BenchmarkExtension_Maintenance(b *testing.B)        { runExperiment(b, "ext-maintain") }
