package bounds

import (
	"math"
	"math/rand"
	"testing"

	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/vec"
)

// paperSetup recreates the running example of Figures 4–5 and Table 1:
// domain [0..31] with unit bins, equi-width histogram with 4 buckets (τ=2).
func paperSetup() (*histogram.Histogram, vec.Domain) {
	return histogram.EquiWidth(32, 4), vec.NewDomain(0, 32, 32)
}

func TestPaperTable1Bounds(t *testing.T) {
	h, dom := paperSetup()
	tab := NewTable(h, dom, 2)
	q := []float32{9, 11}
	// Code arrays of p1..p4 from Figure 5c. The paper's Table 1 treats an
	// integer bucket [l..u] as ending exactly at u; our real-valued model
	// conservatively extends each bucket to the bin edge u+1 (a raw value of
	// 7.9 discretizes to 7), so the expected numbers below are Table 1
	// recomputed under that edge model. They bracket the paper's: every
	// lower bound is ≤ Table 1's and every upper bound ≥ Table 1's.
	cases := []struct {
		codes            []int
		wantLB, wantUB   float64 // our edge model
		paperLB, paperUB float64 // Table 1
	}{
		{[]int{0, 2}, 5.10, 15.81, 5.39, 15.00},
		{[]int{1, 2}, 5.00, 14.76, 5.00, 13.42},
		{[]int{2, 3}, 14.76, 25.81, 14.76, 24.41},
		{[]int{3, 0}, 15.30, 25.50, 15.52, 24.60},
	}
	for i, c := range cases {
		lb, ub := tab.Bounds(q, c.codes)
		if math.Abs(lb-c.wantLB) > 0.01 || math.Abs(ub-c.wantUB) > 0.01 {
			t.Errorf("p%d: bounds = [%.2f, %.2f], want [%.2f, %.2f]", i+1, lb, ub, c.wantLB, c.wantUB)
		}
		if lb > c.paperLB+0.01 || ub < c.paperUB-0.01 {
			t.Errorf("p%d: bounds [%.2f, %.2f] do not bracket Table 1's [%.2f, %.2f]", i+1, lb, ub, c.paperLB, c.paperUB)
		}
	}
	// The paper's pruning conclusion must survive the edge model: with k=1,
	// ub_k = min over candidates of dist⁺; p3 and p4 have lb above it.
	ubk := math.Inf(1)
	lbs := make([]float64, len(cases))
	for i, c := range cases {
		lb, ub := tab.Bounds(q, c.codes)
		lbs[i] = lb
		if ub < ubk {
			ubk = ub
		}
	}
	// p4 is strictly prunable; p3's lb exactly ties the (inflated) ub_k in
	// the edge model — Algorithm 1 keeps it, which is conservative and safe.
	if !(lbs[2] >= ubk-1e-9 && lbs[3] > ubk) {
		t.Errorf("p3/p4 should be (weakly) prunable: lbs=%v ubk=%v", lbs, ubk)
	}
	if lbs[0] > ubk || lbs[1] > ubk {
		t.Errorf("p1/p2 must survive pruning: lbs=%v ubk=%v", lbs, ubk)
	}
}

func TestBoundsSandwichProperty(t *testing.T) {
	// The defining invariant: dist⁻(q,p′) ≤ dist(q,p) ≤ dist⁺(q,p′) for
	// every point, query and histogram. Property-tested over random inputs.
	rng := rand.New(rand.NewSource(3))
	dom := vec.NewDomain(0, 1, 64)
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(20)
		b := 2 + rng.Intn(30)
		f := make([]float64, 64)
		for i := range f {
			f[i] = rng.Float64()
		}
		var h *histogram.Histogram
		switch trial % 3 {
		case 0:
			h = histogram.EquiWidth(64, b)
		case 1:
			h = histogram.EquiDepth(f, b)
		default:
			h = histogram.KNNOptimal(f, b)
		}
		tab := NewTable(h, dom, dim)
		p := make([]float32, dim)
		q := make([]float32, dim)
		codes := make([]int, dim)
		for j := range p {
			p[j] = rng.Float32()
			q[j] = rng.Float32()
			codes[j] = h.Bucket(dom.Bin(float64(p[j])))
		}
		lb, ub := tab.Bounds(q, codes)
		d := vec.Dist(q, p)
		if lb > d+1e-9 {
			t.Fatalf("trial %d: lb %v > dist %v", trial, lb, d)
		}
		if ub < d-1e-9 {
			t.Fatalf("trial %d: ub %v < dist %v", trial, ub, d)
		}
	}
}

func TestBoundsPackedMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dom := vec.NewDomain(0, 1, 256)
	h := histogram.EquiWidth(256, 32)
	dim := 17
	tab := NewTable(h, dom, dim)
	codec := encoding.NewCodec(dim, h.CodeLen())
	for trial := 0; trial < 50; trial++ {
		q := make([]float32, dim)
		codes := make([]int, dim)
		for j := range q {
			q[j] = rng.Float32()
			codes[j] = rng.Intn(h.B())
		}
		words := codec.Encode(codes, nil)
		lb1, ub1 := tab.Bounds(q, codes)
		lb2, ub2 := tab.BoundsPacked(q, words, codec)
		if lb1 != lb2 || ub1 != ub2 {
			t.Fatalf("packed bounds differ: (%v,%v) vs (%v,%v)", lb1, ub1, lb2, ub2)
		}
	}
}

func TestPerDimBoundsSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dom := vec.NewDomain(0, 1, 32)
	dim := 6
	freqs := make([][]float64, dim)
	for j := range freqs {
		freqs[j] = make([]float64, 32)
		for i := range freqs[j] {
			freqs[j][i] = rng.Float64()
		}
	}
	pd := histogram.BuildPerDim(freqs, 8, func(f []float64, b int) *histogram.Histogram {
		return histogram.KNNOptimal(f, b)
	})
	tab := NewTablePerDim(pd, dom)
	if tab.Dim() != dim {
		t.Fatalf("Dim = %d", tab.Dim())
	}
	for trial := 0; trial < 100; trial++ {
		p := make([]float32, dim)
		q := make([]float32, dim)
		codes := make([]int, dim)
		for j := range p {
			p[j] = rng.Float32()
			q[j] = rng.Float32()
			codes[j] = pd.H[j].Bucket(dom.Bin(float64(p[j])))
		}
		lb, ub := tab.Bounds(q, codes)
		d := vec.Dist(q, p)
		if lb > d+1e-9 || ub < d-1e-9 {
			t.Fatalf("per-dim sandwich broken: lb=%v d=%v ub=%v", lb, d, ub)
		}
	}
}

func TestTighterHistogramTightensBounds(t *testing.T) {
	// More buckets can only shrink the gap ub-lb (on average it must).
	rng := rand.New(rand.NewSource(6))
	dom := vec.NewDomain(0, 1, 256)
	coarse := NewTable(histogram.EquiWidth(256, 4), dom, 8)
	fine := NewTable(histogram.EquiWidth(256, 64), dom, 8)
	hC := histogram.EquiWidth(256, 4)
	hF := histogram.EquiWidth(256, 64)
	var gapC, gapF float64
	for trial := 0; trial < 200; trial++ {
		p := make([]float32, 8)
		q := make([]float32, 8)
		cc := make([]int, 8)
		cf := make([]int, 8)
		for j := range p {
			p[j] = rng.Float32()
			q[j] = rng.Float32()
			bin := dom.Bin(float64(p[j]))
			cc[j] = hC.Bucket(bin)
			cf[j] = hF.Bucket(bin)
		}
		lbC, ubC := coarse.Bounds(q, cc)
		lbF, ubF := fine.Bounds(q, cf)
		gapC += ubC - lbC
		gapF += ubF - lbF
	}
	if gapF >= gapC {
		t.Fatalf("finer histogram did not tighten bounds: %v vs %v", gapF, gapC)
	}
}

func TestErrNormAndLemma1(t *testing.T) {
	// Lemma 1: dist⁺(c) − dist(c) ≤ ‖ε(c)‖.
	rng := rand.New(rand.NewSource(7))
	dom := vec.NewDomain(0, 1, 128)
	h := histogram.EquiDepth(randFreq(rng, 128), 16)
	dim := 10
	tab := NewTable(h, dom, dim)
	for trial := 0; trial < 200; trial++ {
		p := make([]float32, dim)
		q := make([]float32, dim)
		codes := make([]int, dim)
		for j := range p {
			p[j] = rng.Float32()
			q[j] = rng.Float32()
			codes[j] = h.Bucket(dom.Bin(float64(p[j])))
		}
		_, ub := tab.Bounds(q, codes)
		d := vec.Dist(q, p)
		if ub-d > tab.ErrNorm(codes)+1e-9 {
			t.Fatalf("Lemma 1 violated: ub-d=%v > errNorm=%v", ub-d, tab.ErrNorm(codes))
		}
	}
}

func randFreq(rng *rand.Rand, n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = rng.Float64()
	}
	return f
}

func TestRectBounds(t *testing.T) {
	lo := []float32{0, 0}
	hi := []float32{1, 1}
	// Query inside: lb 0, ub = distance to far corner.
	lb, ub := Rect([]float32{0.25, 0.25}, lo, hi)
	if lb != 0 {
		t.Fatalf("inside lb = %v", lb)
	}
	want := math.Sqrt(0.75*0.75 + 0.75*0.75)
	if math.Abs(ub-want) > 1e-9 {
		t.Fatalf("inside ub = %v, want %v", ub, want)
	}
	// Query outside.
	lb, ub = Rect([]float32{2, 0.5}, lo, hi)
	if math.Abs(lb-1) > 1e-9 {
		t.Fatalf("outside lb = %v, want 1", lb)
	}
	if math.Abs(ub-math.Sqrt(4+0.25)) > 1e-9 {
		t.Fatalf("outside ub = %v", ub)
	}
	// RectMin agrees with Rect's lower bound.
	if m := RectMin([]float32{2, 0.5}, lo, hi); math.Abs(m-lb) > 1e-12 {
		t.Fatalf("RectMin = %v != %v", m, lb)
	}
}

func TestRectSandwichProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(10)
		lo := make([]float32, dim)
		hi := make([]float32, dim)
		p := make([]float32, dim)
		q := make([]float32, dim)
		for j := 0; j < dim; j++ {
			a, b := rng.Float32(), rng.Float32()
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
			p[j] = a + (b-a)*rng.Float32() // p inside rect
			q[j] = rng.Float32() * 2
		}
		lb, ub := Rect(q, lo, hi)
		d := vec.Dist(q, p)
		if lb > d+1e-6 || ub < d-1e-6 {
			t.Fatalf("rect sandwich broken: lb=%v d=%v ub=%v", lb, d, ub)
		}
		if m := RectMin(q, lo, hi); math.Abs(m-lb) > 1e-9 {
			t.Fatalf("RectMin mismatch")
		}
	}
}
