package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"exploitbit/internal/bounds"
	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/multistep"
	"exploitbit/internal/rtree"
	"exploitbit/internal/vec"
)

// Config selects a caching method and its knobs.
type Config struct {
	Method Method
	// CacheBytes is the cache size CS.
	CacheBytes int64
	// Tau is the code length τ (bits per dimension). Ignored by NoCache and
	// Exact. Default 8. Use costmodel.OptimalTau to auto-tune (Section 4.2).
	Tau int
	// Policy is the replacement policy (default HFF; Figure 8).
	Policy cache.Policy
	// SmoothEps blends a sliver of the data distribution into F′ before
	// Algorithm 2 so buckets stay sane where the workload is silent
	// (default 0.01; 0 disables).
	SmoothEps float64
	// STRSortDims controls mHC-R's R-tree tiling depth (default 2).
	STRSortDims int
	// NoTrueHitDetection disables Algorithm 1's true-result detection
	// (Case ii), for the ablation bench.
	NoTrueHitDetection bool
	// EagerFetchMisses implements footnote 6: fetch cache misses from disk
	// immediately during candidate reduction so they tighten lb_k and ub_k.
	// The paper argues this rarely pays off; the ablation bench measures it.
	EagerFetchMisses bool
}

func (c Config) withDefaults() Config {
	if c.Tau < 1 {
		c.Tau = 8
	}
	if c.SmoothEps < 0 {
		c.SmoothEps = 0
	}
	if c.STRSortDims < 1 {
		c.STRSortDims = 2
	}
	return c
}

// Engine executes Algorithm 1 over one dataset, point file, candidate index
// and cache configuration.
type Engine struct {
	ds    *dataset.Dataset
	pf    *disk.PointFile
	cands CandidateFunc
	cfg   Config

	// Approximate-point machinery (HC-*, iHC-*, C-VA).
	codec  encoding.Codec
	table  *bounds.Table
	approx *cache.Cache[[]uint64]
	ghist  *histogram.Histogram
	phist  *histogram.PerDim

	// EXACT baseline.
	exact *cache.Cache[[]float32]

	// mHC-R.
	md      *histogram.MD
	mdCache *cache.Cache[int32]

	// Table 3 bookkeeping.
	histSpaceBytes int
	histBuildTime  time.Duration

	aggMu sync.Mutex
	agg   Aggregate
}

// NewEngine builds an engine: it selects HFF cache content from the profile,
// constructs the method's histogram, and encodes the cached points.
func NewEngine(pf *disk.PointFile, prof *Profile, cands CandidateFunc, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Method.Validate(); err != nil {
		return nil, err
	}
	ds := prof.DS
	e := &Engine{ds: ds, pf: pf, cands: cands, cfg: cfg}
	dom := ds.Domain

	switch cfg.Method {
	case NoCache:
		// Nothing to build.

	case Exact:
		itemBits := 32 * ds.Dim
		capacity := cache.CapacityForBudget(cfg.CacheBytes, itemBits)
		e.exact = cache.New[[]float32](capacity, cfg.Policy)
		if cfg.Policy == cache.HFF {
			e.exact.FillHFF(prof.HFFContent(capacity), func(id int) []float32 {
				return append([]float32(nil), ds.Point(id)...)
			})
		}

	case MHCR:
		numLeaves := 1 << cfg.Tau
		if numLeaves > ds.Len() {
			numLeaves = ds.Len()
		}
		start := time.Now()
		rt := rtree.BuildSTR(ds, numLeaves, cfg.STRSortDims)
		lo, hi := rt.MBRs()
		md, err := histogram.NewMD(lo, hi, rt.Assignment(ds.Len()))
		if err != nil {
			return nil, fmt.Errorf("core: building mHC-R: %w", err)
		}
		e.histBuildTime = time.Since(start)
		e.md = md
		e.histSpaceBytes = md.SpaceBytes()
		capacity := cache.CapacityForBudget(cfg.CacheBytes, md.CodeLen())
		e.mdCache = cache.New[int32](capacity, cfg.Policy)
		if cfg.Policy == cache.HFF {
			e.mdCache.FillHFF(prof.HFFContent(capacity), func(id int) int32 {
				return int32(md.BucketOf(id))
			})
		}

	case CVA:
		// Fit the whole dataset: largest τ whose total footprint fits the
		// budget; fall back to τ=1 with partial coverage if even that is
		// too large.
		tau := 0
		for t := 16; t >= 1; t-- {
			total := int64(ds.Len()) * int64(encoding.NewCodec(ds.Dim, t).ItemBits()) / 8
			if total <= cfg.CacheBytes {
				tau = t
				break
			}
		}
		partial := tau == 0
		if partial {
			tau = 1
		}
		e.cfg.Tau = tau // record the budget-derived τ (snapshots rely on it)
		e.codec = encoding.NewCodec(ds.Dim, tau)
		b := histogram.MaxBucketsForCodeLen(tau, dom.Ndom)
		start := time.Now()
		freqs := histogram.DataFrequencyPerDim(ds, ds.Dim, dom)
		e.phist = histogram.BuildPerDim(freqs, b, func(f []float64, b int) *histogram.Histogram {
			return histogram.EquiDepth(f, b)
		})
		e.histBuildTime = time.Since(start)
		e.histSpaceBytes = e.phist.SpaceBytes()
		e.table = bounds.NewTablePerDim(e.phist, dom)
		capacity := ds.Len()
		if partial {
			capacity = cache.CapacityForBudget(cfg.CacheBytes, e.codec.ItemBits())
		}
		e.approx = cache.New[[]uint64](capacity, cfg.Policy)
		content := prof.HFFContent(capacity)
		if !partial {
			content = allIDs(ds.Len())
		}
		e.approx.FillHFF(content, e.encodedPoint)

	default:
		// The HC-* and iHC-* family.
		e.codec = encoding.NewCodec(ds.Dim, cfg.Tau)
		capacity := cache.CapacityForBudget(cfg.CacheBytes, e.codec.ItemBits())
		content := prof.HFFContent(capacity)
		b := histogram.MaxBucketsForCodeLen(cfg.Tau, dom.Ndom)

		start := time.Now()
		switch cfg.Method {
		case HCW:
			e.ghist = histogram.EquiWidth(dom.Ndom, b)
		case HCD:
			e.ghist = histogram.EquiDepth(histogram.DataFrequency(ds, dom), b)
		case HCV:
			e.ghist = histogram.VOptimal(histogram.DataFrequency(ds, dom), b)
		case HCO:
			fp := histogram.WorkloadFrequency(prof.QRPoints(CachedSet(content)), dom)
			histogram.Smooth(fp, histogram.DataFrequency(ds, dom), cfg.SmoothEps)
			e.ghist = histogram.KNNOptimal(fp, b)
		case IHCW:
			freqs := make([][]float64, ds.Dim)
			for j := range freqs {
				freqs[j] = make([]float64, dom.Ndom)
			}
			e.phist = histogram.BuildPerDim(freqs, b, histogram.EquiWidthBuilder)
		case IHCD:
			e.phist = histogram.BuildPerDim(histogram.DataFrequencyPerDim(ds, ds.Dim, dom), b,
				func(f []float64, b int) *histogram.Histogram { return histogram.EquiDepth(f, b) })
		case IHCO:
			fps := histogram.WorkloadFrequencyPerDim(prof.QRPoints(CachedSet(content)), ds.Dim, dom)
			base := histogram.DataFrequencyPerDim(ds, ds.Dim, dom)
			for j := range fps {
				histogram.Smooth(fps[j], base[j], cfg.SmoothEps)
			}
			e.phist = histogram.BuildPerDim(fps, b,
				func(f []float64, b int) *histogram.Histogram { return histogram.KNNOptimal(f, b) })
		}
		e.histBuildTime = time.Since(start)

		if e.ghist != nil {
			e.histSpaceBytes = e.ghist.SpaceBytes()
			e.table = bounds.NewTable(e.ghist, dom, ds.Dim)
		} else {
			e.histSpaceBytes = e.phist.SpaceBytes()
			e.table = bounds.NewTablePerDim(e.phist, dom)
		}
		e.approx = cache.New[[]uint64](capacity, cfg.Policy)
		if cfg.Policy == cache.HFF {
			e.approx.FillHFF(content, e.encodedPoint)
		}
	}
	return e, nil
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// encodedPoint encodes dataset point id under the engine's histogram(s).
func (e *Engine) encodedPoint(id int) []uint64 {
	return e.encodeVector(e.ds.Point(id), make([]int, e.ds.Dim), nil)
}

// encodeVector quantizes p through the histogram(s) into codes (scratch,
// len Dim) and packs it into dst (nil allocates).
func (e *Engine) encodeVector(p []float32, codes []int, dst []uint64) []uint64 {
	dom := e.ds.Domain
	for j, v := range p {
		bin := dom.Bin(float64(v))
		if e.ghist != nil {
			codes[j] = e.ghist.Bucket(bin)
		} else {
			codes[j] = e.phist.H[j].Bucket(bin)
		}
	}
	return e.codec.Encode(codes, dst)
}

// HistogramSpaceBytes reports the histogram footprint (Table 3).
func (e *Engine) HistogramSpaceBytes() int { return e.histSpaceBytes }

// HistogramBuildTime reports the histogram construction time (Table 3).
func (e *Engine) HistogramBuildTime() time.Duration { return e.histBuildTime }

// CacheCapacity returns the item capacity of the active cache.
func (e *Engine) CacheCapacity() int {
	switch {
	case e.approx != nil:
		return e.approx.Capacity()
	case e.exact != nil:
		return e.exact.Capacity()
	case e.mdCache != nil:
		return e.mdCache.Capacity()
	}
	return 0
}

// CacheLen returns the number of cached items.
func (e *Engine) CacheLen() int {
	switch {
	case e.approx != nil:
		return e.approx.Len()
	case e.exact != nil:
		return e.exact.Len()
	case e.mdCache != nil:
		return e.mdCache.Len()
	}
	return 0
}

// Aggregate returns the accumulated statistics since the last Reset.
func (e *Engine) Aggregate() Aggregate {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	return e.agg
}

// ResetStats clears accumulated statistics.
func (e *Engine) ResetStats() {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	e.agg = Aggregate{}
}

// candState is Phase 2's per-candidate bookkeeping.
type candState struct {
	id      int32
	lb, ub  float64
	exactPt []float32 // non-nil for EXACT cache hits
	hit     bool
}

// Search runs Algorithm 1 and returns the identifiers of the k nearest
// candidates of q (the paper returns identifiers, not vectors) plus the
// query statistics.
//
// Search is safe for concurrent use: the HFF cache is immutable after
// construction, the LRU cache locks internally, disk counters are atomic,
// and all per-query scratch is local. Reported per-phase timings are CPU
// time of this goroutine's query only.
func (e *Engine) Search(q []float32, k int) ([]int, QueryStats, error) {
	var st QueryStats
	fetchBuf := make([]float32, e.ds.Dim)

	// Phase 1: candidate generation.
	t0 := time.Now()
	ids, dmax := e.cands(q, k)
	st.GenTime = time.Since(t0)
	st.Candidates = len(ids)
	st.Dmax = dmax

	// Phase 2: candidate reduction — no I/O by construction.
	t1 := time.Now()
	cs := make([]candState, len(ids))
	lbs := make([]float64, len(ids))
	ubs := make([]float64, len(ids))
	for i, id := range ids {
		c := candState{id: int32(id), lb: 0, ub: math.Inf(1)}
		switch {
		case e.approx != nil:
			if words, ok := e.approx.Get(id); ok {
				c.lb, c.ub = e.table.BoundsPacked(q, words, e.codec)
				c.hit = true
			}
		case e.exact != nil:
			if p, ok := e.exact.Get(id); ok {
				d := vec.Dist(q, p)
				c.lb, c.ub = d, d
				c.exactPt = p
				c.hit = true
			}
		case e.mdCache != nil:
			if b, ok := e.mdCache.Get(id); ok {
				lo, hi := e.md.Rect(int(b))
				c.lb, c.ub = bounds.Rect(q, lo, hi)
				c.hit = true
			}
		}
		if c.hit {
			st.Hits++
		} else if e.cfg.EagerFetchMisses {
			p, err := e.pf.Fetch(id, fetchBuf)
			if err != nil {
				return nil, st, err
			}
			st.Fetched++
			st.PageReads += int64(e.pf.PagesPerPoint())
			d := vec.Dist(q, p)
			c.lb, c.ub = d, d
			c.exactPt = append([]float32(nil), p...)
		}
		cs[i] = c
		lbs[i] = c.lb
		ubs[i] = c.ub
	}
	lbk := multistep.KthSmallest(lbs, k)
	ubk := multistep.KthSmallest(ubs, k)

	var results []int // true results detected without I/O
	remaining := cs[:0]
	for _, c := range cs {
		switch {
		case c.lb > ubk:
			st.Pruned++ // early pruning: cannot be among the k nearest
		case !e.cfg.NoTrueHitDetection && c.ub < lbk:
			st.TrueHits++ // must be a result; no fetch needed
			results = append(results, int(c.id))
		default:
			remaining = append(remaining, c)
		}
	}
	st.Remaining = len(remaining)
	st.ReduceTime = time.Since(t1)

	// Phase 3: multi-step refinement of the remaining candidates.
	t2 := time.Now()
	kNeed := k - len(results)
	if kNeed > 0 && len(remaining) > 0 {
		cands := make([]multistep.Candidate, len(remaining))
		exactByID := make(map[int][]float32)
		for i, c := range remaining {
			cands[i] = multistep.Candidate{ID: int(c.id), LB: c.lb, UB: c.ub}
			if c.exactPt != nil {
				exactByID[int(c.id)] = c.exactPt
			}
		}
		fetch := func(id int) ([]float32, error) {
			if p, ok := exactByID[id]; ok {
				return p, nil // EXACT cache hit: RAM, no I/O
			}
			p, err := e.pf.Fetch(id, fetchBuf)
			if err != nil {
				return nil, err
			}
			st.Fetched++
			st.PageReads += int64(e.pf.PagesPerPoint())
			if e.cfg.Policy == cache.LRU {
				e.admitLRU(id, p)
			}
			return p, nil
		}
		refined, _, err := multistep.Search(q, cands, kNeed, fetch)
		if err != nil {
			return nil, st, err
		}
		for _, r := range refined {
			results = append(results, r.ID)
		}
	}
	st.RefineTime = time.Since(t2)
	st.SimulatedIO = time.Duration(st.PageReads) * e.pf.Tio()

	e.aggMu.Lock()
	e.agg.Add(st)
	e.aggMu.Unlock()
	return results, st, nil
}

// admitLRU inserts a freshly fetched point into a dynamic cache.
func (e *Engine) admitLRU(id int, p []float32) {
	switch {
	case e.approx != nil:
		e.approx.Put(id, e.encodeVector(p, make([]int, e.ds.Dim), nil))
	case e.exact != nil:
		e.exact.Put(id, append([]float32(nil), p...))
	case e.mdCache != nil:
		e.mdCache.Put(id, int32(e.md.BucketOf(id)))
	}
}
