package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/lsh"
	"exploitbit/internal/vec"
)

// world bundles a test dataset, point file, index and workload profile.
type world struct {
	ds    *dataset.Dataset
	pf    *disk.PointFile
	ix    *lsh.Index
	prof  *Profile
	wl    [][]float32
	qtest [][]float32
}

func buildWorld(t testing.TB, n, dim int, seed int64) *world {
	t.Helper()
	ds := dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 6, Std: 0.05, Ndom: 256, Seed: seed})
	pf, err := disk.BuildPointFile(filepath.Join(t.TempDir(), "pf"), ds, nil, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	ix := lsh.Build(ds, lsh.Params{Seed: seed + 1, MaxM: 48})
	log := dataset.GenLog(ds, dataset.LogConfig{PoolSize: 60, Length: 400, ZipfS: 1.4, Perturb: 0.005, Seed: seed + 2})
	wl, qtest := log.Split(20)
	prof := BuildProfile(ds, candFunc(ix), wl, 10)
	return &world{ds: ds, pf: pf, ix: ix, prof: prof, wl: wl, qtest: qtest}
}

func candFunc(ix *lsh.Index) CandidateFunc {
	return func(q []float32, k int) ([]int, float64) {
		r := ix.Candidates(q, k)
		return r.IDs, r.Dmax
	}
}

// knnOfCandidates is the ground truth Algorithm 1 must reproduce: the k
// nearest points of q among the candidate set.
func knnOfCandidates(ds *dataset.Dataset, q []float32, ids []int, k int) []float64 {
	ds2 := make([]float64, len(ids))
	for i, id := range ids {
		ds2[i] = vec.Dist(q, ds.Point(id))
	}
	sort.Float64s(ds2)
	if len(ds2) > k {
		ds2 = ds2[:k]
	}
	return ds2
}

func TestSearchPreservesResultQualityAllMethods(t *testing.T) {
	w := buildWorld(t, 1500, 12, 1)
	k := 10
	for _, m := range AllMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
				Method: m, CacheBytes: 64 << 10, Tau: 6,
			})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range w.qtest {
				ids, dmax := candFunc(w.ix)(q, k)
				want := knnOfCandidates(w.ds, q, ids, k)
				got, st, err := eng.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
				}
				gd := make([]float64, len(got))
				for i, id := range got {
					gd[i] = vec.Dist(q, w.ds.Point(id))
				}
				sort.Float64s(gd)
				for i := range want {
					if math.Abs(gd[i]-want[i]) > 1e-9 {
						t.Fatalf("query %d rank %d: dist %v, want %v (method %s)", qi, i, gd[i], want[i], m)
					}
				}
				if st.Remaining > st.Candidates {
					t.Fatalf("remaining %d > candidates %d", st.Remaining, st.Candidates)
				}
				_ = dmax
			}
		})
	}
}

func TestNoCacheFetchesEverything(t *testing.T) {
	w := buildWorld(t, 800, 8, 2)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: NoCache})
	if err != nil {
		t.Fatal(err)
	}
	q := w.qtest[0]
	_, st, err := eng.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 0 || st.Pruned != 0 || st.TrueHits != 0 {
		t.Fatalf("NO-CACHE should not hit/prune: %+v", st)
	}
	if st.Fetched != st.Candidates {
		t.Fatalf("NO-CACHE fetched %d of %d candidates", st.Fetched, st.Candidates)
	}
	if st.Remaining != st.Candidates {
		t.Fatalf("NO-CACHE remaining %d != candidates %d", st.Remaining, st.Candidates)
	}
}

func TestExactCacheHitsAvoidIO(t *testing.T) {
	w := buildWorld(t, 800, 8, 3)
	// Budget large enough to cache every candidate ever seen.
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: Exact, CacheBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// A workload query whose candidates are all hot should need no I/O.
	q := w.wl[0]
	_, st, err := eng.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != st.Candidates {
		t.Fatalf("full EXACT cache: %d hits of %d candidates", st.Hits, st.Candidates)
	}
	if st.Fetched != 0 || st.PageReads != 0 {
		t.Fatalf("full EXACT cache still fetched %d points / %d pages", st.Fetched, st.PageReads)
	}
}

func TestHistogramCacheReducesIO(t *testing.T) {
	// The paper's regime: a cache far smaller than the candidate working
	// set, so EXACT caching misses often while the histogram cache (8× more
	// items per byte at τ=6, d=16 → 128 vs 512 bits) retains coverage.
	w := buildWorld(t, 2000, 16, 4)
	budget := int64(10 << 10)
	none, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: NoCache})
	if err != nil {
		t.Fatal(err)
	}
	hco, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: budget, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: Exact, CacheBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.qtest {
		for _, e := range []*Engine{none, hco, exact} {
			if _, _, err := e.Search(q, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	ioNone := none.Aggregate().AvgIO()
	ioHCO := hco.Aggregate().AvgIO()
	ioExact := exact.Aggregate().AvgIO()
	if ioHCO >= ioNone {
		t.Fatalf("HC-O I/O %v not below NO-CACHE %v", ioHCO, ioNone)
	}
	if ioHCO >= ioExact {
		t.Fatalf("HC-O I/O %v not below EXACT %v at equal budget", ioHCO, ioExact)
	}
	if hr := hco.Aggregate().HitRatio(); hr <= exact.Aggregate().HitRatio() {
		t.Fatalf("HC-O hit ratio %v should beat EXACT %v (8x more items fit)", hr, exact.Aggregate().HitRatio())
	}
}

func TestHCOBeatsHCWOnIO(t *testing.T) {
	w := buildWorld(t, 2000, 16, 5)
	budget := int64(48 << 10)
	mk := func(m Method) *Engine {
		e, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: m, CacheBytes: budget, Tau: 6})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	hcw, hco := mk(HCW), mk(HCO)
	for _, q := range w.qtest {
		if _, _, err := hcw.Search(q, 10); err != nil {
			t.Fatal(err)
		}
		if _, _, err := hco.Search(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	if o, wI := hco.Aggregate().AvgIO(), hcw.Aggregate().AvgIO(); o > wI {
		t.Fatalf("HC-O I/O %v above HC-W %v", o, wI)
	}
}

func TestLRUWarmsUp(t *testing.T) {
	w := buildWorld(t, 800, 8, 6)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: Exact, CacheBytes: 1 << 22, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	// LRU starts empty.
	if eng.CacheLen() != 0 {
		t.Fatalf("LRU cache pre-filled with %d items", eng.CacheLen())
	}
	q := w.qtest[0]
	_, cold, err := eng.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := eng.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hits != 0 {
		t.Fatalf("cold query hit %d", cold.Hits)
	}
	if warm.Hits == 0 {
		t.Fatal("repeat query missed entirely despite LRU inserts")
	}
	if warm.Fetched >= cold.Fetched && cold.Fetched > 0 {
		t.Fatalf("repeat query fetched %d, cold %d", warm.Fetched, cold.Fetched)
	}
}

func TestTrueHitDetectionAblation(t *testing.T) {
	w := buildWorld(t, 1500, 12, 7)
	on, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 1 << 20, Tau: 8})
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCO, CacheBytes: 1 << 20, Tau: 8, NoTrueHitDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	var hitsOn int64
	for _, q := range w.qtest {
		_, so, err := on.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		_, sf, err := off.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		hitsOn += int64(so.TrueHits)
		if sf.TrueHits != 0 {
			t.Fatal("ablated engine still detected true hits")
		}
	}
	// Results must stay exact either way (covered by the quality test);
	// detection should fire at least sometimes on a warm cache.
	if hitsOn == 0 {
		t.Log("note: no true hits detected in this configuration")
	}
}

func TestCVAFitsWholeDataset(t *testing.T) {
	w := buildWorld(t, 500, 16, 8)
	// Budget comfortably holds all 500 points at some τ ≥ 1.
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: CVA, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if eng.CacheLen() != w.ds.Len() {
		t.Fatalf("C-VA cached %d of %d points", eng.CacheLen(), w.ds.Len())
	}
	_, st, err := eng.Search(w.qtest[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != st.Candidates {
		t.Fatalf("C-VA with full coverage missed: %d/%d", st.Hits, st.Candidates)
	}
}

func TestCVAPartialBudget(t *testing.T) {
	w := buildWorld(t, 500, 16, 9)
	// 500 points × 16 dims × 1 bit = 1000 bytes minimum; give less.
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: CVA, CacheBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if eng.CacheLen() >= w.ds.Len() {
		t.Fatalf("partial C-VA cached everything (%d)", eng.CacheLen())
	}
	if _, _, err := eng.Search(w.qtest[0], 5); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRejectsUnknownMethod(t *testing.T) {
	w := buildWorld(t, 100, 4, 10)
	if _, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: Method("bogus")}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestAggregateAccumulates(t *testing.T) {
	w := buildWorld(t, 500, 8, 11)
	eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: HCD, CacheBytes: 1 << 18, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.qtest[:5] {
		if _, _, err := eng.Search(q, 5); err != nil {
			t.Fatal(err)
		}
	}
	agg := eng.Aggregate()
	if agg.Queries != 5 {
		t.Fatalf("Queries = %d", agg.Queries)
	}
	if agg.AvgCandidates() <= 0 {
		t.Fatal("no candidates recorded")
	}
	if agg.HitRatio() < 0 || agg.HitRatio() > 1 {
		t.Fatalf("hit ratio %v", agg.HitRatio())
	}
	eng.ResetStats()
	if eng.Aggregate().Queries != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestProfileInternals(t *testing.T) {
	w := buildWorld(t, 500, 8, 12)
	p := w.prof
	if p.AvgCandSize <= 0 || p.AvgDmax <= 0 {
		t.Fatalf("profile averages: %v %v", p.AvgCandSize, p.AvgDmax)
	}
	fs := p.FreqSorted()
	if !sort.IsSorted(sort.Reverse(sort.IntSlice(fs))) {
		t.Fatal("FreqSorted not descending")
	}
	// HFF content is a prefix of the ranking.
	content := p.HFFContent(3)
	for i := range content {
		if content[i] != p.Ranked[i] {
			t.Fatal("HFFContent not a ranking prefix")
		}
	}
	if len(p.HFFContent(1<<30)) != len(p.Ranked) {
		t.Fatal("oversized HFFContent should return everything")
	}
	// QR respects the cached predicate.
	qr := p.QRPoints(func(id int) bool { return false })
	if len(qr) != 0 {
		t.Fatalf("QR over empty cache has %d points", len(qr))
	}
	qrAll := p.QRPoints(nil)
	if len(qrAll) == 0 || len(qrAll) > len(p.WL)*p.K {
		t.Fatalf("QR size %d implausible", len(qrAll))
	}
}

func TestZipfWorkloadCacheable(t *testing.T) {
	// Sanity for the whole premise: with a Zipf workload, a cache holding
	// 25% of distinct candidates should serve well over 25% of lookups.
	w := buildWorld(t, 1500, 12, 13)
	capacity := len(w.prof.Ranked) / 4
	hr := hitRatioAt(w.prof, capacity)
	if hr < 0.4 {
		t.Fatalf("hit ratio %v at 25%% capacity — workload not skewed enough", hr)
	}
}

func hitRatioAt(p *Profile, capacity int) float64 {
	fs := p.FreqSorted()
	var top, total int64
	for i, f := range fs {
		total += int64(f)
		if i < capacity {
			top += int64(f)
		}
	}
	return float64(top) / float64(total)
}

func TestQuickSearchInvarianceAcrossConfigs(t *testing.T) {
	// Property: for ANY cache configuration (method, τ, budget), Search
	// returns the same distance profile as the uncached reference — the
	// paper's central no-quality-loss guarantee. Randomized configs.
	w := buildWorld(t, 900, 8, 91)
	ref, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{Method: NoCache})
	if err != nil {
		t.Fatal(err)
	}
	methods := AllMethods()
	check := func(mIdx, tauRaw uint8, budgetRaw uint32, qIdx uint8) bool {
		m := methods[int(mIdx)%len(methods)]
		tau := 1 + int(tauRaw)%12
		budget := int64(budgetRaw % (1 << 20))
		q := w.qtest[int(qIdx)%len(w.qtest)]
		eng, err := NewEngine(w.pf, w.prof, candFunc(w.ix), Config{
			Method: m, CacheBytes: budget, Tau: tau,
		})
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		k := 5
		got, _, err := eng.Search(q, k)
		if err != nil {
			t.Logf("search failed: %v", err)
			return false
		}
		want, _, err := ref.Search(q, k)
		if err != nil {
			t.Logf("reference failed: %v", err)
			return false
		}
		gd := distProfile(w.ds, q, got)
		wd := distProfile(w.ds, q, want)
		if len(gd) != len(wd) {
			return false
		}
		for i := range gd {
			if math.Abs(gd[i]-wd[i]) > 1e-9 {
				t.Logf("method %s tau %d budget %d: rank %d %v vs %v", m, tau, budget, i, gd[i], wd[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(92))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func distProfile(ds *dataset.Dataset, q []float32, ids []int) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = vec.Dist(q, ds.Point(id))
	}
	sort.Float64s(out)
	return out
}
