package ingest

import (
	"context"
	"math"
	"strings"
	"testing"

	"exploitbit/internal/core"
)

// stubSearcher records the overlay each merged search was handed.
type stubSearcher struct{ last *core.Merge }

func (s *stubSearcher) SearchMergedIntoCtx(ctx context.Context, q []float32, k int, dst []int, mg *core.Merge) ([]int, core.QueryStats, error) {
	s.last = mg
	return nil, core.QueryStats{}, nil
}

func openLiveFixture(t *testing.T) (*Live, *stubSearcher) {
	t.Helper()
	fold := foldFixture(2, 0)
	s := &stubSearcher{}
	l, err := Open(Config{
		Dir:      t.TempDir(),
		Fsync:    FsyncNone,
		Searcher: s,
		Fold:     fold,
		BaseN:    fold.Len(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, s
}

// TestOverlayTombstoneSnapshotStable pins the Merge.Deleted contract: the
// overlay handed to one search must keep answering from the tombstone set as
// it was when the search started. The engine counts surviving extras in one
// pass and fills them in a second; a Delete published in between must not
// make the passes disagree (that left uninitialized scratch entries in the
// candidate set and returned phantom ids).
func TestOverlayTombstoneSnapshotStable(t *testing.T) {
	l, _ := openLiveFixture(t)
	ctx := context.Background()
	id, err := l.Insert(ctx, []float32{1, 1})
	if err != nil {
		t.Fatal(err)
	}

	mg := l.overlay()
	if mg == nil || mg.Deleted == nil {
		t.Fatalf("overlay %+v, want non-nil with a Deleted mask", mg)
	}
	if mg.Deleted(0) || mg.Deleted(int32(id)) {
		t.Fatal("fresh overlay reports tombstones before any delete")
	}

	// A delete landing mid-search must not leak into the snapshot.
	if err := l.Delete(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(ctx, id); err != nil {
		t.Fatal(err)
	}
	if mg.Deleted(0) || mg.Deleted(int32(id)) {
		t.Fatal("overlay tombstone view changed mid-search")
	}

	// The next search's overlay sees both deletes.
	next := l.overlay()
	if !next.Deleted(0) || !next.Deleted(int32(id)) {
		t.Fatal("new overlay misses committed deletes")
	}
}

// TestInsertRejectsIdOverflow: identifiers are int32 in the engine; the write
// path must fail loudly at the boundary instead of wrapping negative.
func TestInsertRejectsIdOverflow(t *testing.T) {
	l, _ := openLiveFixture(t)
	l.mu.Lock()
	l.nextID = math.MaxInt32 + 1
	l.mu.Unlock()
	if _, err := l.Insert(context.Background(), []float32{1, 1}); err == nil || !strings.Contains(err.Error(), "id space exhausted") {
		t.Fatalf("expected id-space-exhausted error, got %v", err)
	}
	if st := l.Stats(); st.Inserts != 0 || st.DeltaPoints != 0 {
		t.Fatalf("rejected insert leaked into stats: %+v", st)
	}
}
