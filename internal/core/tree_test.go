package core

import (
	"math"
	"path/filepath"
	"sort"
	"testing"

	"exploitbit/internal/dataset"
	"exploitbit/internal/idistance"
	"exploitbit/internal/leafstore"
	"exploitbit/internal/rtree"
	"exploitbit/internal/vec"
	"exploitbit/internal/vptree"
)

// treeWorld bundles a dataset, one of the tree indexes, and its leaf store.
type treeWorld struct {
	ds    *dataset.Dataset
	ix    LeafIndex
	store *leafstore.Store
	wl    [][]float32
	qtest [][]float32
}

func buildTreeWorld(t testing.TB, kind string, n, dim int, seed int64) *treeWorld {
	t.Helper()
	ds := dataset.Generate(dataset.Config{Name: "t", N: n, Dim: dim, Clusters: 6, Std: 0.05, Ndom: 256, Seed: seed})
	var ix LeafIndex
	switch kind {
	case "idistance":
		ix = idistance.Build(ds, idistance.Params{Refs: 8, LeafCapacity: 16, Seed: seed})
	case "vptree":
		ix = vptree.Build(ds, vptree.Params{LeafCapacity: 16, Seed: seed})
	case "rtree":
		ix = rtree.BuildSTR(ds, (n+15)/16, 2)
	default:
		t.Fatalf("unknown tree kind %s", kind)
	}
	store, err := leafstore.Build(filepath.Join(t.TempDir(), "leaves"), ds, ix.Leaves(), 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	log := dataset.GenLog(ds, dataset.LogConfig{PoolSize: 200, Length: 600, ZipfS: 1.3, Perturb: 0.005, Seed: seed + 1})
	wl, qtest := log.Split(15)
	return &treeWorld{ds: ds, ix: ix, store: store, wl: wl, qtest: qtest}
}

func bruteDists(ds *dataset.Dataset, q []float32, k int) []float64 {
	top := vec.NewTopK(k)
	for i := 0; i < ds.Len(); i++ {
		top.Push(vec.Dist(q, ds.Point(i)), i)
	}
	_, dists := top.Results()
	return dists
}

func TestTreeSearchExactAllIndexesAllMethods(t *testing.T) {
	for _, kind := range []string{"idistance", "vptree", "rtree"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			w := buildTreeWorld(t, kind, 1200, 10, 21)
			for _, m := range []Method{NoCache, Exact, HCO} {
				eng, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 10, TreeConfig{
					Method: m, CacheBytes: 256 << 10, Tau: 7,
				})
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range w.qtest {
					ids, _, err := eng.Search(q, 5)
					if err != nil {
						t.Fatal(err)
					}
					want := bruteDists(w.ds, q, 5)
					got := make([]float64, len(ids))
					for i, id := range ids {
						got[i] = vec.Dist(q, w.ds.Point(id))
					}
					sort.Float64s(got)
					if len(got) != len(want) {
						t.Fatalf("%s/%s query %d: %d results", kind, m, qi, len(got))
					}
					for i := range want {
						if math.Abs(got[i]-want[i]) > 1e-9 {
							t.Fatalf("%s/%s query %d rank %d: %v want %v", kind, m, qi, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

func TestTreeCachingReducesIO(t *testing.T) {
	w := buildTreeWorld(t, "idistance", 2000, 12, 22)
	run := func(m Method, budget int64) Aggregate {
		eng, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 10, TreeConfig{Method: m, CacheBytes: budget, Tau: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range w.qtest {
			if _, _, err := eng.Search(q, 10); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Aggregate()
	}
	// ~25% of the dataset's bytes, as in the paper's default setting.
	budget := int64(w.ds.Len()) * int64(w.ds.PointSize()) / 4
	none := run(NoCache, 0)
	exact := run(Exact, budget)
	hco := run(HCO, budget)
	if exact.PageReads >= none.PageReads {
		t.Fatalf("EXACT leaf cache did not reduce I/O: %d vs %d", exact.PageReads, none.PageReads)
	}
	if hco.PageReads >= none.PageReads {
		t.Fatalf("HC-O leaf cache did not reduce I/O: %d vs %d", hco.PageReads, none.PageReads)
	}
	// Figure 16's claim at scarce budget: approximate leaf caching beats
	// exact leaf caching because 32/τ times more leaves fit.
	if hco.PageReads > exact.PageReads {
		t.Fatalf("HC-O leaf cache (%d reads) worse than EXACT (%d reads)", hco.PageReads, exact.PageReads)
	}
}

func TestTreeEngineRejectsBadMethod(t *testing.T) {
	w := buildTreeWorld(t, "vptree", 200, 6, 23)
	if _, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 5, TreeConfig{Method: MHCR}); err == nil {
		t.Fatal("expected rejection of mHC-R for tree engines")
	}
	if _, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 5, TreeConfig{Method: Method("junk")}); err == nil {
		t.Fatal("expected rejection of unknown method")
	}
}

func TestTreeEngineStats(t *testing.T) {
	w := buildTreeWorld(t, "vptree", 800, 8, 24)
	eng, err := NewTreeEngine(w.ds, w.ix, w.store, w.wl, 5, TreeConfig{Method: HCO, CacheBytes: 64 << 10, Tau: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := eng.Search(w.qtest[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates <= 0 {
		t.Fatal("no candidates examined")
	}
	if st.PageReads < 0 || st.Fetched < 0 {
		t.Fatalf("negative I/O: %+v", st)
	}
	eng.ResetStats()
	if eng.Aggregate().Queries != 0 {
		t.Fatal("reset failed")
	}
}
