package exploitbit

import (
	"net/http"

	"exploitbit/internal/server"
)

// engineSearcher adapts an Engine (or Maintainer) to the HTTP handler.
type engineSearcher struct {
	search func(q []float32, k int) ([]int, QueryStats, error)
}

func (s engineSearcher) Search(q []float32, k int) ([]int, server.Stats, error) {
	ids, st, err := s.search(q, k)
	return ids, server.Stats{
		Candidates:  st.Candidates,
		Hits:        st.Hits,
		Pruned:      st.Pruned,
		TrueHits:    st.TrueHits,
		Fetched:     st.Fetched,
		PageReads:   st.PageReads,
		SimulatedIO: st.SimulatedIO,
	}, err
}

// Serve returns an http.Handler exposing the engine:
// POST /search, GET /stats, GET /healthz. Safe for concurrent requests.
func Serve(eng *Engine, dim int) http.Handler {
	return server.New(engineSearcher{search: eng.Search}, dim, 0)
}

// ServeMaintained is Serve over a self-maintaining engine: the cache
// rebuilds itself in the background under workload drift while requests
// flow, and /stats carries a "maintain" object with rebuild counters.
func ServeMaintained(m *Maintainer, dim int) http.Handler {
	h := server.New(engineSearcher{search: m.Search}, dim, 0)
	h.SetRebuildStats(func() server.RebuildStats {
		st := m.Stats()
		return server.RebuildStats{
			Rebuilds:        st.Rebuilds,
			RebuildErrors:   st.RebuildErrors,
			RebuildInFlight: st.RebuildInFlight,
		}
	})
	return h
}
