package vec

import "math"

// TopK maintains the k smallest (distance, id) pairs seen so far. It is a
// bounded max-heap keyed on distance: the root is the current k-th smallest
// distance, so a candidate whose lower bound exceeds Root() can never enter
// the result set. Used by every index's kNN search and by the multi-step
// refinement loop.
type TopK struct {
	k     int
	dists []float64
	ids   []int
}

// NewTopK returns a TopK that keeps the k smallest entries. k must be >= 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("vec: TopK requires k >= 1")
	}
	return &TopK{k: k, dists: make([]float64, 0, k), ids: make([]int, 0, k)}
}

// Reset empties the heap and re-arms it for the k smallest entries, reusing
// the existing storage — the pooled-scratch path of core.Engine relies on
// this to keep steady-state queries allocation-free.
func (t *TopK) Reset(k int) {
	if k < 1 {
		panic("vec: TopK requires k >= 1")
	}
	t.k = k
	if cap(t.dists) < k {
		t.dists = make([]float64, 0, k)
		t.ids = make([]int, 0, k)
	} else {
		t.dists = t.dists[:0]
		t.ids = t.ids[:0]
	}
}

// Len reports how many entries are currently held (<= k).
func (t *TopK) Len() int { return len(t.dists) }

// Full reports whether k entries are held.
func (t *TopK) Full() bool { return len(t.dists) == t.k }

// Root returns the current k-th smallest distance, or +Inf when fewer than k
// entries are held. Using +Inf means "nothing can be pruned yet".
func (t *TopK) Root() float64 {
	if !t.Full() {
		return math.Inf(1)
	}
	return t.dists[0]
}

// Push offers (dist, id). It is a no-op when the heap is full and dist is
// not smaller than the current root.
func (t *TopK) Push(dist float64, id int) {
	if t.Full() {
		if dist >= t.dists[0] {
			return
		}
		t.dists[0], t.ids[0] = dist, id
		t.siftDown(0)
		return
	}
	t.dists = append(t.dists, dist)
	t.ids = append(t.ids, id)
	t.siftUp(len(t.dists) - 1)
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.dists[p] >= t.dists[i] {
			return
		}
		t.swap(p, i)
		i = p
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.dists)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && t.dists[l] > t.dists[m] {
			m = l
		}
		if r < n && t.dists[r] > t.dists[m] {
			m = r
		}
		if m == i {
			return
		}
		t.swap(m, i)
		i = m
	}
}

func (t *TopK) swap(i, j int) {
	t.dists[i], t.dists[j] = t.dists[j], t.dists[i]
	t.ids[i], t.ids[j] = t.ids[j], t.ids[i]
}

// Results returns the held entries sorted by ascending distance.
func (t *TopK) Results() (ids []int, dists []float64) {
	ids = append([]int(nil), t.ids...)
	dists = append([]float64(nil), t.dists...)
	sortByDist(ids, dists)
	return ids, dists
}

// Drain sorts the held entries in place by ascending distance and returns
// the internal slices without copying. The heap invariant is destroyed; call
// Reset before reusing the TopK. The returned slices are only valid until
// the next Push or Reset.
func (t *TopK) Drain() (ids []int, dists []float64) {
	sortByDist(t.ids, t.dists)
	return t.ids, t.dists
}

// sortByDist insertion-sorts parallel slices by distance: k is small
// (typically <= 100).
func sortByDist(ids []int, dists []float64) {
	for i := 1; i < len(dists); i++ {
		d, id := dists[i], ids[i]
		j := i - 1
		for j >= 0 && dists[j] > d {
			dists[j+1], ids[j+1] = dists[j], ids[j]
			j--
		}
		dists[j+1], ids[j+1] = d, id
	}
}
