package bounds

import (
	"math"

	"exploitbit/internal/encoding"
)

// QueryLUT is a per-query distance lookup table — the ADC (asymmetric
// distance computation) trick from product quantization applied to the
// paper's histogram bounds. For every dimension j and bucket code c it
// precomputes the squared lower- and upper-bound contributions of that
// (dimension, bucket) pair to dist⁻(q,·)² and dist⁺(q,·)², so the
// per-candidate bound computation of Phase 2 collapses to code extraction
// plus two table-lookup accumulations: no edge arithmetic, no branches, no
// sqrt.
//
// Building a LUT costs O(dim·B) and pays for itself once the candidate set
// is a small multiple of B; core.Engine gates on that. Contributions are the
// exact float64 terms of Table.BoundsSqPacked summed in the same dimension
// order, so the LUT result is bitwise-identical to the reference — the
// property tests assert equality, not tolerance.
type QueryLUT struct {
	dim int
	b   int       // row stride: max bucket count across dimensions
	lo  []float64 // dim*b squared lower-bound contributions, row j at j*b
	up  []float64 // dim*b squared upper-bound contributions
}

// Dim returns the dimensionality the LUT serves.
func (l *QueryLUT) Dim() int { return l.dim }

// Buckets returns the per-dimension row stride (max bucket count).
func (l *QueryLUT) Buckets() int { return l.b }

// Buckets returns the largest per-dimension bucket count — the B that sizes
// a QueryLUT row and drives the engine's build-vs-scan gate.
func (t *Table) Buckets() int {
	b := 0
	for _, e := range t.loEdge {
		if len(e) > b {
			b = len(e)
		}
	}
	return b
}

// BuildLUT fills (or allocates, when l is nil or undersized) a QueryLUT for
// query q and returns it. The returned LUT is immutable and safe to share
// across goroutines; reusing l across queries makes steady-state builds
// allocation-free.
func (t *Table) BuildLUT(q []float32, l *QueryLUT) *QueryLUT {
	b := t.Buckets()
	if l == nil {
		l = &QueryLUT{}
	}
	l.dim, l.b = t.dim, b
	if need := t.dim * b; cap(l.lo) < need {
		l.lo = make([]float64, need)
		l.up = make([]float64, need)
	} else {
		l.lo = l.lo[:need]
		l.up = l.up[:need]
	}
	for j := 0; j < t.dim; j++ {
		loE, hiE := t.edgesFor(j)
		qj := float64(q[j])
		row := j * b
		for c := range loE {
			lo, up := contrib(qj, loE[c], hiE[c])
			l.lo[row+c] = lo
			l.up[row+c] = up
		}
	}
	return l
}

// BoundsSq computes the squared bounds of an unpacked code array.
func (l *QueryLUT) BoundsSq(codes []int) (lbSq, ubSq float64) {
	var sLo, sUp float64
	row := 0
	for _, code := range codes {
		sLo += l.lo[row+code]
		sUp += l.up[row+code]
		row += l.b
	}
	return sLo, sUp
}

// BoundsSqPacked computes the squared bounds of a packed point. The
// byte-aligned code widths (τ=8, τ=16) take branch-free word-iteration fast
// paths that never cross word boundaries; other widths extract through the
// codec.
func (l *QueryLUT) BoundsSqPacked(words []uint64, c encoding.Codec) (lbSq, ubSq float64) {
	switch c.Tau() {
	case 8:
		return l.boundsSq8(words)
	case 16:
		return l.boundsSq16(words)
	}
	var sLo, sUp float64
	row := 0
	for j := 0; j < l.dim; j++ {
		code := c.At(words, j)
		sLo += l.lo[row+code]
		sUp += l.up[row+code]
		row += l.b
	}
	return sLo, sUp
}

// BoundsSqPackedRange computes the squared bounds of n points packed
// back-to-back in words (stride c.Words() words per point), filling the first
// n entries of lbs and ubs. It is the batch form of BoundsSqPacked the tree
// engine uses to score a whole cached leaf through one LUT.
func (l *QueryLUT) BoundsSqPackedRange(words []uint64, n int, c encoding.Codec, lbs, ubs []float64) {
	w := c.Words()
	for i := 0; i < n; i++ {
		lbs[i], ubs[i] = l.BoundsSqPacked(words[i*w:(i+1)*w], c)
	}
}

// LowerSqPacked computes only the squared lower bound of a packed point —
// the cheap half the fused Phase-2 kernel runs for every candidate before
// deciding whether the upper bound is still needed. Terms and order match
// BoundsSqPacked's lbSq exactly, so results are bitwise-identical.
func (l *QueryLUT) LowerSqPacked(words []uint64, c encoding.Codec) (lbSq float64) {
	return l.LowerSqPackedThresh(words, c, math.Inf(1))
}

// LowerSqPackedThresh is LowerSqPacked with scan abandonment: contributions
// are non-negative, so once the partial sum exceeds thr the verdict is sealed
// and the rest of the scan is skipped, returning the partial sum (see
// Table.LowerSqPackedThresh for the contract).
func (l *QueryLUT) LowerSqPackedThresh(words []uint64, c encoding.Codec, thr float64) (lbSq float64) {
	switch c.Tau() {
	case 8:
		return l.lowerSqThresh8(words, thr)
	case 16:
		return l.lowerSqThresh16(words, thr)
	}
	var sLo float64
	row := 0
	for j := 0; j < l.dim; j++ {
		sLo += l.lo[row+c.At(words, j)]
		row += l.b
		if sLo > thr {
			return sLo
		}
	}
	return sLo
}

// UpperSqPacked computes only the squared upper bound of a packed point,
// bitwise-identical to BoundsSqPacked's ubSq.
func (l *QueryLUT) UpperSqPacked(words []uint64, c encoding.Codec) (ubSq float64) {
	switch c.Tau() {
	case 8:
		return l.upperSq8(words)
	case 16:
		return l.upperSq16(words)
	}
	var sUp float64
	row := 0
	for j := 0; j < l.dim; j++ {
		sUp += l.up[row+c.At(words, j)]
		row += l.b
	}
	return sUp
}

// lowerSqThresh8 accumulates the lower bound for τ=8 (eight codes per word),
// abandoning once the partial sum exceeds thr.
func (l *QueryLUT) lowerSqThresh8(words []uint64, thr float64) (lbSq float64) {
	var sLo float64
	row, j := 0, 0
	for _, w := range words {
		for k := 0; k < 8 && j < l.dim; k++ {
			sLo += l.lo[row+int(w&0xFF)]
			w >>= 8
			row += l.b
			j++
			if sLo > thr {
				return sLo
			}
		}
	}
	return sLo
}

// upperSq8 accumulates the upper bound for τ=8.
func (l *QueryLUT) upperSq8(words []uint64) (ubSq float64) {
	var sUp float64
	row, j := 0, 0
	for _, w := range words {
		for k := 0; k < 8 && j < l.dim; k++ {
			sUp += l.up[row+int(w&0xFF)]
			w >>= 8
			row += l.b
			j++
		}
	}
	return sUp
}

// lowerSqThresh16 accumulates the lower bound for τ=16 (four codes per
// word), abandoning once the partial sum exceeds thr.
func (l *QueryLUT) lowerSqThresh16(words []uint64, thr float64) (lbSq float64) {
	var sLo float64
	row, j := 0, 0
	for _, w := range words {
		for k := 0; k < 4 && j < l.dim; k++ {
			sLo += l.lo[row+int(w&0xFFFF)]
			w >>= 16
			row += l.b
			j++
			if sLo > thr {
				return sLo
			}
		}
	}
	return sLo
}

// upperSq16 accumulates the upper bound for τ=16.
func (l *QueryLUT) upperSq16(words []uint64) (ubSq float64) {
	var sUp float64
	row, j := 0, 0
	for _, w := range words {
		for k := 0; k < 4 && j < l.dim; k++ {
			sUp += l.up[row+int(w&0xFFFF)]
			w >>= 16
			row += l.b
			j++
		}
	}
	return sUp
}

// boundsSq8 accumulates bounds for τ=8: eight codes per word, one byte each.
func (l *QueryLUT) boundsSq8(words []uint64) (lbSq, ubSq float64) {
	var sLo, sUp float64
	row, j := 0, 0
	for _, w := range words {
		for k := 0; k < 8 && j < l.dim; k++ {
			code := int(w & 0xFF)
			w >>= 8
			sLo += l.lo[row+code]
			sUp += l.up[row+code]
			row += l.b
			j++
		}
	}
	return sLo, sUp
}

// boundsSq16 accumulates bounds for τ=16: four codes per word.
func (l *QueryLUT) boundsSq16(words []uint64) (lbSq, ubSq float64) {
	var sLo, sUp float64
	row, j := 0, 0
	for _, w := range words {
		for k := 0; k < 4 && j < l.dim; k++ {
			code := int(w & 0xFFFF)
			w >>= 16
			sLo += l.lo[row+code]
			sUp += l.up[row+code]
			row += l.b
			j++
		}
	}
	return sLo, sUp
}
