package bench

import (
	"fmt"
	"io"
	"time"

	"exploitbit"
)

func init() {
	register("fig12", "Cost model accuracy: estimated vs measured I/O of HC-W across τ", fig12)
	register("tab4", "Refinement time at default τ and at optimal τ*", tab4)
	register("fig13", "Response time vs cache size", fig13)
	register("fig14", "Response time vs result size k", fig14)
	register("fig15", "Effect of code length τ (SOGOU): hit·prune, I/O, refinement time", fig15)
	register("fig16", "Exact kNN indexes (iDistance, VA-file, VP-tree): EXACT vs HC-O", fig16)
}

var tauSweep = []int{4, 5, 6, 7, 8, 9, 10, 12}

func fig12(w io.Writer, env *Env) error {
	tw := table(w)
	fmt.Fprintln(tw, "dataset\ttau\testimated_IO\tmeasured_IO")
	for _, name := range labNames {
		lab := env.Lab(name)
		in := lab.Sys.CostInputs(lab.DefaultCS)
		for _, tau := range tauSweep {
			eng, err := lab.Sys.Engine(exploitbit.HCW, lab.DefaultCS, tau)
			if err != nil {
				return err
			}
			agg := lab.RunQueries(eng, env.Scale.K)
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\n", name, tau, in.EstimatedCrefine(tau), agg.AvgIO())
		}
	}
	fmt.Fprintln(tw, "# expected shape: estimated curve tracks measured; model's best τ near the measured optimum (Fig 12)")
	return tw.Flush()
}

func tab4(w io.Writer, env *Env) error {
	methods := []exploitbit.Method{
		exploitbit.Exact, exploitbit.HCW, exploitbit.HCV, exploitbit.HCD, exploitbit.HCO,
	}
	tw := table(w)
	fmt.Fprintln(tw, "dataset\tmethod\tdefault_Trefine(s)\toptimal_Trefine(s)\ttau*")
	for _, name := range labNames {
		lab := env.Lab(name)
		for _, m := range methods {
			def, err := lab.Sys.Engine(m, lab.DefaultCS, lab.DefaultTau)
			if err != nil {
				return err
			}
			defAgg := lab.RunQueries(def, env.Scale.K)
			bestT, bestTau := defAgg.AvgRefinement(), lab.DefaultTau
			if m != exploitbit.Exact { // EXACT has no τ
				for _, tau := range tauSweep {
					if tau == lab.DefaultTau {
						continue
					}
					eng, err := lab.Sys.Engine(m, lab.DefaultCS, tau)
					if err != nil {
						return err
					}
					agg := lab.RunQueries(eng, env.Scale.K)
					if r := agg.AvgRefinement(); r < bestT {
						bestT, bestTau = r, tau
					}
				}
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\n", name, m, secs(defAgg.AvgRefinement()), secs(bestT), bestTau)
		}
	}
	fmt.Fprintln(tw, "# expected shape: HC-O < HC-D < HC-V/HC-W << EXACT; HC-O vs EXACT ≈ an order of magnitude (Table 4)")
	return tw.Flush()
}

func fig13(w io.Writer, env *Env) error {
	methods := []exploitbit.Method{
		exploitbit.NoCache, exploitbit.Exact, exploitbit.CVA,
		exploitbit.HCW, exploitbit.HCD, exploitbit.HCO,
	}
	tw := table(w)
	header := "dataset\tcache_frac"
	for _, m := range methods {
		header += "\t" + string(m)
	}
	fmt.Fprintln(tw, header+"\t(avg response s)")
	for _, name := range labNames {
		lab := env.Lab(name)
		fileBytes := int64(lab.DS.Len()) * int64(lab.DS.PointSize())
		for _, frac := range []float64{0.05, 0.1, 0.2, 0.33, 0.45} {
			cs := int64(float64(fileBytes) * frac)
			row := fmt.Sprintf("%s\t%.2f", name, frac)
			for _, m := range methods {
				eng, err := lab.Sys.Engine(m, cs, lab.Sys.OptimalTau(cs))
				if err != nil {
					return err
				}
				agg := lab.RunQueries(eng, env.Scale.K)
				row += fmt.Sprintf("\t%s", secs(agg.AvgResponse()))
			}
			fmt.Fprintln(tw, row)
		}
	}
	fmt.Fprintln(tw, "# expected shape: HC-* reach their floor near 1/3 of the file size; HC-O best throughout (Fig 13)")
	return tw.Flush()
}

func fig14(w io.Writer, env *Env) error {
	methods := []exploitbit.Method{
		exploitbit.CVA, exploitbit.HCW, exploitbit.HCD, exploitbit.HCO,
	}
	tw := table(w)
	header := "dataset\tk"
	for _, m := range methods {
		header += "\t" + string(m)
	}
	fmt.Fprintln(tw, header+"\t(avg response s)")
	for _, name := range labNames {
		lab := env.Lab(name)
		engines := make([]*exploitbit.Engine, len(methods))
		for i, m := range methods {
			eng, err := lab.Sys.Engine(m, lab.DefaultCS, lab.DefaultTau)
			if err != nil {
				return err
			}
			engines[i] = eng
		}
		for _, k := range []int{1, 10, 25, 50, 100} {
			row := fmt.Sprintf("%s\t%d", name, k)
			for _, eng := range engines {
				agg := lab.RunQueries(eng, k)
				row += fmt.Sprintf("\t%s", secs(agg.AvgResponse()))
			}
			fmt.Fprintln(tw, row)
		}
	}
	fmt.Fprintln(tw, "# expected shape: time rises with k; HC-O best, then HC-D, then HC-W (Fig 14)")
	return tw.Flush()
}

func fig15(w io.Writer, env *Env) error {
	lab := env.Lab("SOGOU")
	methods := []exploitbit.Method{exploitbit.HCW, exploitbit.HCD, exploitbit.HCO}
	tw := table(w)
	fmt.Fprintln(tw, "method\ttau\thit_x_prune\tavg_Crefine\trefine(s)")
	for _, m := range methods {
		for _, tau := range tauSweep {
			eng, err := lab.Sys.Engine(m, lab.DefaultCS, tau)
			if err != nil {
				return err
			}
			agg := lab.RunQueries(eng, env.Scale.K)
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.1f\t%s\n", m, tau,
				agg.HitRatio()*agg.PruneRatio(), agg.AvgRemaining(), secs(agg.AvgRefinement()))
		}
	}
	fmt.Fprintln(tw, "# expected shape: interior optimum in τ; HC-O most robust at small τ (Fig 15)")
	return tw.Flush()
}

func fig16(w io.Writer, env *Env) error {
	s := env.Scale
	ds := exploitbit.ImgNetLike(s.NImgn/2, 102)
	log := genLogFor(ds, s)
	wl, qtest := log.Split(s.QTest)
	budget := int64(float64(ds.Len()*ds.PointSize()) * s.CacheFrac)
	ks := []int{10, 50, 100}

	tw := table(w)
	fmt.Fprintln(tw, "index\tk\tEXACT_resp(s)\tHC-O_resp(s)\tspeedup")

	run := func(index string, search func(m exploitbit.Method) (func(q []float32, k int) (time.Duration, error), error)) error {
		exact, err := search(exploitbit.Exact)
		if err != nil {
			return err
		}
		hco, err := search(exploitbit.HCO)
		if err != nil {
			return err
		}
		for _, k := range ks {
			var tE, tO time.Duration
			for _, q := range qtest {
				d, err := exact(q, k)
				if err != nil {
					return err
				}
				tE += d
				d, err = hco(q, k)
				if err != nil {
					return err
				}
				tO += d
			}
			n := time.Duration(len(qtest))
			sp := 0.0
			if tO > 0 {
				sp = tE.Seconds() / tO.Seconds()
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%.1fx\n", index, k, secs(tE/n), secs(tO/n), sp)
		}
		return nil
	}

	// iDistance and VP-tree: the Section 3.6.1 leaf-cache adaptation.
	for _, kind := range []exploitbit.TreeKind{exploitbit.IDistance, exploitbit.VPTree} {
		ts, err := exploitbit.OpenTree(ds, kind, wl, exploitbit.TreeOptions{Tio: env.Tio, WorkloadK: s.K, Seed: 7})
		if err != nil {
			return err
		}
		err = run(string(kind), func(m exploitbit.Method) (func(q []float32, k int) (time.Duration, error), error) {
			eng, err := ts.Engine(m, budget, s.Tau)
			if err != nil {
				return nil, err
			}
			dst := make([]int, 0, 128)
			return func(q []float32, k int) (time.Duration, error) {
				var st exploitbit.QueryStats
				var err error
				dst, st, err = eng.SearchInto(q, k, dst[:0])
				return st.ResponseTime(), err
			}, nil
		})
		ts.Close()
		if err != nil {
			return err
		}
	}

	// VA-file: a candidate-generating index; caching applies to point fetches.
	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{Index: exploitbit.VAFile, Tio: env.Tio, WorkloadK: s.K})
	if err != nil {
		return err
	}
	defer sys.Close()
	err = run("va-file", func(m exploitbit.Method) (func(q []float32, k int) (time.Duration, error), error) {
		eng, err := sys.Engine(m, budget, s.Tau)
		if err != nil {
			return nil, err
		}
		dst := make([]int, 0, 128)
		return func(q []float32, k int) (time.Duration, error) {
			var st exploitbit.QueryStats
			var err error
			dst, st, err = eng.SearchInto(q, k, dst[:0])
			return st.ResponseTime(), err
		}, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(tw, "# expected shape: HC-O at or below EXACT on every index, widening with k (Fig 16)")
	return tw.Flush()
}
