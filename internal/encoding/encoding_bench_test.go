package encoding

import (
	"math/rand"
	"testing"
)

func benchCodes(dim, tau int) []int {
	rng := rand.New(rand.NewSource(1))
	codes := make([]int, dim)
	maxCode := (1 << tau) - 1
	for i := range codes {
		codes[i] = rng.Intn(maxCode + 1)
	}
	return codes
}

func BenchmarkEncode150d10b(b *testing.B) {
	c := NewCodec(150, 10)
	codes := benchCodes(150, 10)
	dst := make([]uint64, c.Words())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(codes, dst)
	}
}

func BenchmarkDecode150d10b(b *testing.B) {
	c := NewCodec(150, 10)
	words := c.Encode(benchCodes(150, 10), nil)
	dst := make([]int, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decode(words, dst)
	}
}

func BenchmarkAt960d8b(b *testing.B) {
	c := NewCodec(960, 8)
	words := c.Encode(benchCodes(960, 8), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.At(words, i%960)
	}
}
