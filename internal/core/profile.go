package core

import (
	"sort"

	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
	"exploitbit/internal/vec"
)

// CandidateFunc is Phase 1: an index I reporting candidate identifiers for a
// query (Definition 4), plus the index's distance guarantee Dmax for the
// cost model (c·R·w for C2LSH, ub_k for VA-file filtering).
type CandidateFunc func(q []float32, k int) (ids []int, dmax float64)

// Profile is the offline digest of a query workload WL against an index:
// everything cache construction and the cost model need, computed once and
// shared across all methods and parameter settings of an experiment.
type Profile struct {
	K  int         // the k the workload was profiled at
	WL [][]float32 // the workload queries
	DS *dataset.Dataset

	CandSets [][]int32   // per-workload-query candidate identifiers
	Freq     map[int]int // candidate frequency: freq(p) = |{q∈WL : p∈C(q)}|
	Ranked   []int       // point ids by descending frequency (HFF order)

	AvgCandSize float64
	AvgDmax     float64
}

// BuildProfile runs every workload query through the index and digests the
// results. This is the expensive, once-per-(dataset,index) step.
func BuildProfile(ds *dataset.Dataset, cands CandidateFunc, wl [][]float32, k int) *Profile {
	p := &Profile{K: k, WL: wl, DS: ds, Freq: make(map[int]int)}
	var sumCands, sumDmax float64
	for _, q := range wl {
		ids, dmax := cands(q, k)
		set := make([]int32, len(ids))
		for i, id := range ids {
			set[i] = int32(id)
			p.Freq[id]++
		}
		p.CandSets = append(p.CandSets, set)
		sumCands += float64(len(ids))
		sumDmax += dmax
	}
	if len(wl) > 0 {
		p.AvgCandSize = sumCands / float64(len(wl))
		p.AvgDmax = sumDmax / float64(len(wl))
	}
	p.Ranked = cache.RankByFrequency(p.Freq)
	return p
}

// FreqSorted returns the workload frequencies in descending order — the f_i
// sequence of Theorem 1's hit-ratio analysis.
func (p *Profile) FreqSorted() []int {
	out := make([]int, len(p.Ranked))
	for i, id := range p.Ranked {
		out[i] = p.Freq[id]
	}
	return out
}

// QRPoints materializes the multiset QR of Eqn 2 restricted to a cache
// content: for each workload query, its K nearest candidates among cached
// (the b^q_1..b^q_k whose upper bounds define ub_k). The offline build has
// the dataset in memory, so exact distances substitute for dist⁺ — the
// standard surrogate, exact up to the ε the histogram is being built to
// minimize. cached == nil means "all candidates eligible" (used before any
// capacity decision, and by tree-index construction).
func (p *Profile) QRPoints(cached func(id int) bool) [][]float32 {
	var qr [][]float32
	for qi, q := range p.WL {
		top := vec.NewTopK(p.K)
		for _, id := range p.CandSets[qi] {
			if cached != nil && !cached(int(id)) {
				continue
			}
			top.Push(vec.Dist(q, p.DS.Point(int(id))), int(id))
		}
		ids, _ := top.Results()
		for _, id := range ids {
			qr = append(qr, p.DS.Point(id))
		}
	}
	return qr
}

// HFFContent returns the ids the HFF policy admits for a given capacity:
// the capacity most frequent candidates.
func (p *Profile) HFFContent(capacity int) []int {
	if capacity >= len(p.Ranked) {
		return p.Ranked
	}
	return p.Ranked[:capacity]
}

// CachedSet builds a membership predicate over an id list.
func CachedSet(ids []int) func(id int) bool {
	set := make(map[int]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(id int) bool { return set[id] }
}

// TopCandidates returns, for diagnostics and Figure 2 style plots, the
// frequency of the r-th most popular candidate for each rank r.
func (p *Profile) TopCandidates() []int {
	freqs := p.FreqSorted()
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	return freqs
}
