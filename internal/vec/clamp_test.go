package vec

import (
	"math"
	"testing"
)

// TestBinOutOfDomainClampsToBoundary is the live-ingest regression: inserted
// points may carry coordinates outside the profiled domain, and their HFF
// codes must land in the boundary buckets rather than index out of range.
func TestBinOutOfDomainClampsToBoundary(t *testing.T) {
	d := NewDomain(0, 10, 16)
	cases := []struct {
		v    float64
		want int
	}{
		{-0.001, 0},
		{-1e30, 0},
		{math.Inf(-1), 0},
		{math.NaN(), 0},
		{10.0, 15},
		{10.5, 15},
		{1e30, 15},
		{math.Inf(1), 15},
	}
	for _, tc := range cases {
		if got := d.Bin(tc.v); got != tc.want {
			t.Errorf("Bin(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestClampPinsIntoDomain(t *testing.T) {
	d := NewDomain(-2, 3, 8)
	cases := []struct {
		v, want float64
	}{
		{-5, -2},
		{-2, -2},
		{0.5, 0.5},
		{3, 3},
		{7, 3},
		{math.Inf(1), 3},
		{math.Inf(-1), -2},
		{math.NaN(), -2},
	}
	for _, tc := range cases {
		if got := d.Clamp(tc.v); got != tc.want {
			t.Errorf("Clamp(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestClampPoint(t *testing.T) {
	d := NewDomain(0, 1, 4)
	p := []float32{0.25, -3, 0.75, 9, float32(math.NaN())}
	if !d.ClampPoint(p) {
		t.Fatal("ClampPoint reported no change")
	}
	want := []float32{0.25, 0, 0.75, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("coordinate %d: %v, want %v", i, p[i], want[i])
		}
	}
	// Every clamped coordinate now bins inside the domain, the guarantee the
	// conservative distance bounds rest on.
	for _, v := range p {
		if b := d.Bin(float64(v)); b < 0 || b >= d.Ndom {
			t.Fatalf("Bin(%v) = %d outside [0,%d)", v, b, d.Ndom)
		}
	}
	q := []float32{0.1, 0.9}
	if d.ClampPoint(q) {
		t.Fatal("ClampPoint changed an in-domain point")
	}
}
