// ebc-inspect prints cache-planning diagnostics for a dataset: the workload
// profile (candidate frequencies and their skew), the cost model's view of
// every code length τ at a budget, and the bucket structure the optimal kNN
// histogram would build. Use it to choose a cache size and τ before
// deploying, or to understand why a cache is under-performing.
//
//	ebc-gen -preset nuswide -n 10000 -o nw.ebds
//	ebc-inspect -data nw.ebds -cache 4MiB
package main

import (
	"flag"
	"fmt"
	"os"

	"exploitbit"
	"exploitbit/internal/cliutil"
	"exploitbit/internal/histogram"
)

func main() {
	var (
		data    = flag.String("data", "", "EBDS dataset file (required)")
		cacheSz = flag.String("cache", "16MiB", "cache budget to analyze")
		k       = flag.Int("k", 10, "result size to profile at")
		wlLen   = flag.Int("wl", 2000, "workload length")
		pool    = flag.Int("pool", 500, "distinct workload queries")
		seed    = flag.Int64("seed", 7, "log seed")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "ebc-inspect: -data is required")
		os.Exit(2)
	}
	ds, err := exploitbit.LoadDataset(*data)
	if err != nil {
		fail(err)
	}
	cs, err := cliutil.ParseBytes(*cacheSz)
	if err != nil {
		fail(fmt.Errorf("bad -cache: %w", err))
	}

	qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: *pool, Length: *wlLen, ZipfS: 1.3, Perturb: 0.005, Seed: *seed,
	})
	wl := qlog.Queries()
	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{WorkloadK: *k})
	if err != nil {
		fail(err)
	}
	defer sys.Close()

	prof := sys.Profile
	fileBytes := int64(ds.Len()) * int64(ds.PointSize())
	fmt.Printf("dataset %q: %d points x %d dims (%.1f MB); cache budget %s (%.1f%% of file)\n\n",
		ds.Name, ds.Len(), ds.Dim, float64(fileBytes)/(1<<20), *cacheSz, 100*float64(cs)/float64(fileBytes))

	fmt.Printf("workload: %d queries, avg |C(q)| = %.1f, distinct candidates = %d, Dmax ≈ %.3f\n",
		len(wl), prof.AvgCandSize, len(prof.Ranked), prof.AvgDmax)
	fs := prof.FreqSorted()
	var total int64
	for _, f := range fs {
		total += int64(f)
	}
	fmt.Println("candidate popularity (coverage of lookups by the hottest X% of candidates):")
	for _, pct := range []int{1, 5, 10, 25, 50} {
		n := len(fs) * pct / 100
		var top int64
		for _, f := range fs[:n] {
			top += int64(f)
		}
		fmt.Printf("  top %2d%% (%6d items): %5.1f%%\n", pct, n, 100*float64(top)/float64(total))
	}

	in := sys.CostInputs(cs)
	best, est := in.OptimalTau()
	fmt.Printf("\ncost model at %s (Section 4):\n", *cacheSz)
	fmt.Printf("  %-4s %10s %10s %10s %12s\n", "tau", "capacity", "hit_ratio", "rho_ref", "est_Crefine")
	for tau := 2; tau <= 14; tau += 2 {
		mark := " "
		if tau == best {
			mark = "*"
		}
		fmt.Printf("  %-3d%s %10d %10.3f %10.3f %12.1f\n", tau, mark,
			in.CapacityForTau(tau), in.HitRatioForTau(tau), in.RefineRatioForTau(tau), est[tau-1])
	}
	fmt.Printf("  optimal tau = %d\n", best)

	// Algorithm 2's histogram at the chosen τ: bucket-width distribution.
	qr := prof.QRPoints(nil)
	fp := histogram.WorkloadFrequency(qr, ds.Domain)
	histogram.Smooth(fp, histogram.DataFrequency(ds, ds.Domain), 0.01)
	// Show the bucket structure at the planning τ and, if that saturates
	// the domain (one value per bucket), also at a scarce τ where the
	// workload-aware allocation is visible.
	taus := []int{best}
	if 1<<best >= ds.Domain.Ndom {
		taus = append(taus, 6)
	}
	for _, tau := range taus {
		b := histogram.MaxBucketsForCodeLen(tau, ds.Domain.Ndom)
		h := histogram.KNNOptimal(fp, b)
		fmt.Printf("\nHC-O histogram at tau=%d: %d buckets over %d domain values\n", tau, h.B(), ds.Domain.Ndom)
		widths := make([]int, h.B())
		for i := 0; i < h.B(); i++ {
			lo, hi := h.Interval(i)
			widths[i] = hi - lo + 1
		}
		fmt.Printf("  bucket widths: min=%d median=%d max=%d\n",
			minInt(widths), medianInt(widths), maxInt(widths))
		fmt.Printf("  metric M3 = %.0f (vs equi-width %.0f, equi-depth %.0f)\n",
			histogram.M3(h, fp),
			histogram.M3(histogram.EquiWidth(ds.Domain.Ndom, b), fp),
			histogram.M3(histogram.EquiDepth(histogram.DataFrequency(ds, ds.Domain), b), fp))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ebc-inspect:", err)
	os.Exit(1)
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func medianInt(xs []int) int {
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	return s[len(s)/2]
}
