// ebc-bench regenerates the paper's tables and figures (and the ablation
// studies) on the scaled synthetic fixtures. Examples:
//
//	ebc-bench -list
//	ebc-bench -exp fig11
//	ebc-bench -all -scale full -out results.txt
//	ebc-bench -perf BENCH_1.json
//	ebc-bench -slab BENCH_4.json -cpuprofile slab.prof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"exploitbit/internal/bench"
)

// main only parses profiling flags and exits with run's code — the defers
// that flush profiles live in run, where os.Exit cannot skip them.
func main() {
	var (
		exp        = flag.String("exp", "", "experiment id to run (fig1..fig16, tab3, tab4, abl-*)")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiments and exit")
		scale      = flag.String("scale", "quick", "fixture scale: quick | full")
		out        = flag.String("out", "", "write output to file instead of stdout")
		dir        = flag.String("dir", "", "directory for disk files (default: temp)")
		perf       = flag.String("perf", "", "run the fast-path perf suite and write the JSON report to this path")
		batch      = flag.String("batch", "", "run the batch-search coalescing scenario and write the JSON report to this path")
		slab       = flag.String("slab", "", "run the slab-vs-map Phase-2 scenario and write the JSON report to this path")
		shards     = flag.String("shards", "", "run the shard-scaling scenario and write the JSON report to this path")
		adaptive   = flag.String("adaptive", "", "run the static-vs-adaptive-τ drift scenario and write the JSON report to this path")
		ingest     = flag.String("ingest", "", "run the mixed read/write live-ingest scenario and write the JSON report to this path")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the run to this path")
	)
	flag.Parse()

	os.Exit(run(*exp, *all, *list, *scale, *out, *dir, *perf, *batch, *slab, *shards, *adaptive, *ingest, *cpuprofile, *memprofile))
}

func run(exp string, all, list bool, scale, out, dir, perf, batch, slab, shards, adaptive, ingest, cpuprofile, memprofile string) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "ebc-bench:", err)
		return 1
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ebc-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ebc-bench:", err)
			}
		}()
	}

	if list {
		for _, ex := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", ex.ID, ex.Title)
		}
		return 0
	}

	var sc bench.Scale
	switch scale {
	case "quick":
		sc = bench.Quick
	case "full":
		sc = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "ebc-bench: unknown scale %q (quick|full)\n", scale)
		return 2
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	env := bench.NewEnv(sc, dir)
	defer env.Close()

	var err error
	switch {
	case perf != "":
		_, err = bench.RunPerf(w, env, perf)
	case batch != "":
		_, err = bench.RunBatch(w, env, batch)
	case slab != "":
		_, err = bench.RunSlab(w, env, slab)
	case shards != "":
		_, err = bench.RunShards(w, env, shards)
	case adaptive != "":
		_, err = bench.RunAdaptive(w, env, adaptive)
	case ingest != "":
		_, err = bench.RunIngest(w, env, ingest)
	case all:
		err = bench.RunAll(w, env)
	case exp != "":
		err = bench.Run(w, env, exp)
	default:
		fmt.Fprintln(os.Stderr, "ebc-bench: pass -exp <id>, -all, -perf <path>, -batch <path>, -slab <path>, -shards <path>, -adaptive <path>, -ingest <path>, or -list")
		return 2
	}
	if err != nil {
		return fail(err)
	}
	return 0
}
