// ebc-serve runs the cached kNN engine as an HTTP service over an EBDS
// dataset, with optional self-maintenance (automatic cache rebuilds under
// workload drift). Example:
//
//	ebc-gen -preset nuswide -n 20000 -o nw.ebds
//	ebc-serve -data nw.ebds -method HC-O -cache 16MiB -addr :8080
//	curl -s localhost:8080/search -d '{"vector":[...150 floats...],"k":10}'
//	curl -s localhost:8080/metrics
//
// The server is production-shaped: read/write/idle timeouts and a header
// cap guard the listener, an admission gate sheds load with 503 once
// -max-inflight searches are in flight, and SIGINT/SIGTERM drain in-flight
// requests (bounded by -drain-timeout) before exiting 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"exploitbit"
	"exploitbit/internal/cliutil"
	"exploitbit/internal/core"
)

func main() {
	var (
		data     = flag.String("data", "", "EBDS dataset file (required)")
		logFile  = flag.String("log", "", "EBQL query log for cache construction (default: generated)")
		method   = flag.String("method", "HC-O", "caching method")
		cacheSz  = flag.String("cache", "16MiB", "cache size")
		k        = flag.Int("k", 10, "profiling k")
		addr     = flag.String("addr", ":8080", "listen address")
		maintain = flag.Bool("maintain", false, "enable automatic cache rebuilds under workload drift")

		adaptiveTau     = flag.Bool("adaptive-tau", false, "with -maintain: arm the cost-model drift watchdog, re-tuning tau when the model predicts a cheaper code length for the live workload")
		retuneThreshold = flag.Float64("retune-threshold", 0.10, "minimum predicted relative C_refine improvement before a window counts toward a retune")
		retuneWindows   = flag.Int("retune-windows", 3, "consecutive over-threshold windows required before a retune rebuild fires")

		shards      = flag.Int("shards", 1, "serve through this many scatter-gather shard units (1 = unsharded)")
		shardLayout = flag.String("shard-layout", string(exploitbit.RoundRobin), "shard partitioning: round-robin or clustered")

		walDir           = flag.String("wal-dir", "", "enable live ingest: write-ahead log directory for POST /insert and /delete (replayed at startup; implies -maintain when unsharded)")
		walFsync         = flag.String("wal-fsync", "always", "WAL durability: always (fsync per record) or none")
		compactThreshold = flag.Int("compact-threshold", 4096, "delta points that trigger background compaction into the point file (unsharded live ingest only)")

		ioRetries      = flag.Int("io-retries", 3, "transient storage read failures retried per page before the error surfaces (0 = no retry)")
		ioRetryBackoff = flag.Duration("io-retry-backoff", time.Millisecond, "initial retry backoff, doubled per attempt (jittered, capped at 100x)")
		degradedOK     = flag.Bool("degraded-ok", false, "sharded only: serve around a permanently failed shard (responses flagged degraded) instead of failing queries that need it")

		maxInFlight  = flag.Int("max-inflight", 64, "admission limit: concurrent searches before 503")
		maxK         = flag.Int("max-k", 1000, "largest k accepted by /search")
		maxBatch     = flag.Int("max-batch", 64, "largest vector count accepted by /search/batch")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "http.Server ReadTimeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
		maxHeader    = flag.Int("max-header-bytes", 64<<10, "http.Server MaxHeaderBytes")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
		pprofAddr    = flag.String("pprof-addr", "", "listen address for net/http/pprof (e.g. localhost:6060); disabled when empty")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "ebc-serve: -data is required")
		os.Exit(2)
	}

	ds, err := exploitbit.LoadDataset(*data)
	if err != nil {
		log.Fatal("ebc-serve: ", err)
	}
	cs, err := cliutil.ParseBytes(*cacheSz)
	if err != nil {
		log.Fatal("ebc-serve: bad -cache: ", err)
	}

	var wl [][]float32
	if *logFile != "" {
		qlog, err := exploitbit.LoadLog(*logFile)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		wl = qlog.Queries()
	} else {
		qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
			PoolSize: 500, Length: 2000, ZipfS: 1.3, Perturb: 0.005, Seed: 7,
		})
		wl = qlog.Queries()
	}

	opt := exploitbit.Options{
		WorkloadK: *k, Shards: *shards, ShardLayout: exploitbit.ShardLayout(*shardLayout),
	}
	rp := exploitbit.RetryPolicy{}
	if *ioRetries > 0 {
		rp = exploitbit.RetryPolicy{
			MaxRetries: *ioRetries,
			Backoff:    *ioRetryBackoff,
			MaxBackoff: 100 * *ioRetryBackoff,
		}
	}
	if *degradedOK && *shards <= 1 {
		log.Printf("ebc-serve: -degraded-ok has no effect without -shards > 1")
	}
	if *adaptiveTau && !*maintain {
		log.Printf("ebc-serve: -adaptive-tau has no effect without -maintain")
	}
	sopt := exploitbit.ServeOptions{MaxK: *maxK, MaxInFlight: *maxInFlight, MaxBatch: *maxBatch}
	mopt := exploitbit.MaintainOptions{
		AdaptiveTau:     *adaptiveTau,
		RetuneThreshold: *retuneThreshold,
		RetuneWindows:   *retuneWindows,
	}

	var handler http.Handler
	var drainMaintainer func() // set when a maintainer needs closing after drain
	var tau int
	if *walDir != "" {
		// Live ingest: recover the WAL, open over the folded dataset, serve
		// writes alongside merged searches.
		fsync, err := exploitbit.ParseFsyncMode(*walFsync)
		if err != nil {
			log.Fatal("ebc-serve: bad -wal-fsync: ", err)
		}
		if *shards > 1 {
			log.Printf("ebc-serve: sharded live ingest serves writes and merged searches, but background compaction is disabled (restart recovery folds the WAL instead)")
		} else if !*maintain {
			log.Printf("ebc-serve: -wal-dir implies -maintain (compaction folds the delta through the maintainer's background rebuild)")
		}
		log.Printf("ebc-serve: dataset %q (%d x %d-d); recovering WAL %q, building index and profiling %d workload queries…",
			ds.Name, ds.Len(), ds.Dim, *walDir, len(wl))
		cfg := core.Config{Method: exploitbit.Method(*method), CacheBytes: cs, SmoothEps: 0.01}
		ls, err := exploitbit.OpenLive(ds, wl, opt, cfg, mopt, exploitbit.LiveOptions{
			WalDir:           *walDir,
			Fsync:            fsync,
			CompactThreshold: *compactThreshold,
		})
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		ls.Sys.SetRetry(rp)
		if rec := ls.Recovery; rec.Records > 0 || rec.CheckpointPoints > 0 {
			log.Printf("ebc-serve: recovered %d checkpoint points + %d WAL records (%d tombstones, %d bytes torn tail truncated)",
				rec.CheckpointPoints, rec.Records, len(rec.Tombs), rec.TruncatedBytes)
		}
		if ls.ShardedMaintainer != nil {
			ls.ShardedMaintainer.Sharded().SetDegradedOK(*degradedOK)
		}
		drainMaintainer = func() { ls.Close() }
		handler = exploitbit.ServeLive(ls, sopt)
	} else {
		log.Printf("ebc-serve: dataset %q (%d x %d-d); building index and profiling %d workload queries…",
			ds.Name, ds.Len(), ds.Dim, len(wl))
		sys, err := exploitbit.Open(ds, wl, opt)
		if err != nil {
			log.Fatal("ebc-serve: ", err)
		}
		defer sys.Close()
		sys.SetRetry(rp)

		tau = sys.OptimalTau(cs)
		cfg := core.Config{Method: exploitbit.Method(*method), CacheBytes: cs, Tau: tau, SmoothEps: 0.01}
		switch {
		case *shards > 1 && *maintain:
			m, err := sys.MaintainedSharded(cfg, mopt)
			if err != nil {
				log.Fatal("ebc-serve: ", err)
			}
			m.Sharded().SetDegradedOK(*degradedOK)
			drainMaintainer = m.Close
			handler = exploitbit.ServeShardedMaintainedWith(m, ds.Dim, sopt)
		case *shards > 1:
			se, err := sys.ShardedEngineWith(cfg)
			if err != nil {
				log.Fatal("ebc-serve: ", err)
			}
			se.SetDegradedOK(*degradedOK)
			handler = exploitbit.ServeShardedWith(se, ds.Dim, sopt)
		case *maintain:
			m, err := sys.Maintained(cfg, mopt)
			if err != nil {
				log.Fatal("ebc-serve: ", err)
			}
			drainMaintainer = m.Close
			handler = exploitbit.ServeMaintainedWith(m, ds.Dim, sopt)
		default:
			eng, err := sys.Engine(exploitbit.Method(*method), cs, tau)
			if err != nil {
				log.Fatal("ebc-serve: ", err)
			}
			handler = exploitbit.ServeWith(eng, ds.Dim, sopt)
		}
	}

	srv := &http.Server{
		Addr:           *addr,
		Handler:        handler,
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,
		IdleTimeout:    *idleTimeout,
		MaxHeaderBytes: *maxHeader,
	}

	if *pprofAddr != "" {
		// Profiling stays off the serving listener: its own mux on its own
		// port, opt-in only, so the debug surface is never exposed by default.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("ebc-serve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("ebc-serve: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *walDir != "" {
		log.Printf("ebc-serve: %s cache, %s budget, %d shard(s), live ingest on %q; listening on %s (max %d in-flight requests)",
			*method, *cacheSz, *shards, *walDir, *addr, *maxInFlight)
	} else {
		log.Printf("ebc-serve: %s cache, %s budget, tau=%d, %d shard(s); listening on %s (max %d in-flight searches)",
			*method, *cacheSz, tau, *shards, *addr, *maxInFlight)
	}

	select {
	case err := <-errc:
		// The listener died on its own (port in use, …): nothing to drain.
		log.Fatal("ebc-serve: ", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills us
		log.Printf("ebc-serve: signal received; draining in-flight requests (budget %s)", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("ebc-serve: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("ebc-serve: serve: %v", err)
		}
		if drainMaintainer != nil {
			// After the listener has drained: no new searches can arrive, so
			// no new rebuild can launch, and Close waits out any in flight.
			drainMaintainer()
		}
		log.Printf("ebc-serve: drained; exiting")
	}
}
