package cache

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"exploitbit/internal/encoding"
)

// TestSlabRoundTripAllTaus is the slab encode/decode property test: for every
// code width τ in 1..16, random code arrays packed into the arena through the
// codec come back bit-exact through SlotOf + Words + Decode. This pins the
// slab's addressing arithmetic (stride windows, dense slot index) against the
// encoding package's ground truth.
func TestSlabRoundTripAllTaus(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for tau := 1; tau <= 16; tau++ {
		dim := 1 + rng.Intn(48)
		codec := encoding.NewCodec(dim, tau)
		universe := 200
		n := 50
		want := make(map[int][]int, n)
		var ids []int
		for len(want) < n {
			id := rng.Intn(universe)
			if _, dup := want[id]; dup {
				continue
			}
			codes := make([]int, dim)
			for j := range codes {
				codes[j] = rng.Intn(1 << tau)
			}
			want[id] = codes
			ids = append(ids, id)
		}
		s := BuildSlab(universe, codec.Words(), n, ids, func(id int, dst []uint64) {
			codec.Encode(want[id], dst)
		})
		if s.Len() != n || s.Stride() != codec.Words() {
			t.Fatalf("tau=%d: len=%d stride=%d, want %d/%d", tau, s.Len(), s.Stride(), n, codec.Words())
		}
		decoded := make([]int, dim)
		for id, codes := range want {
			slot := s.SlotOf(id)
			if slot < 0 {
				t.Fatalf("tau=%d: admitted id %d missing", tau, id)
			}
			codec.Decode(s.Words(slot), decoded)
			for j := range codes {
				if decoded[j] != codes[j] {
					t.Fatalf("tau=%d id=%d dim=%d: decoded %d, want %d", tau, id, j, decoded[j], codes[j])
				}
			}
		}
		// Absent and out-of-range ids resolve to no slot.
		for _, id := range []int{-1, universe, universe + 7} {
			if s.SlotOf(id) >= 0 || s.Contains(id) {
				t.Fatalf("tau=%d: out-of-range id %d resolved", tau, id)
			}
		}
	}
}

// TestVarSlabRoundTrip does the same for the variable-stride slab: each key's
// window must hold exactly the words its fill wrote, addressed by the prefix
// offsets, including zero-length items.
func TestVarSlabRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	universe := 64
	sizes := make([]int, universe)
	for k := range sizes {
		sizes[k] = rng.Intn(5) // zero-length items are legal (an empty leaf)
	}
	keys := rng.Perm(universe)[:40]
	v := BuildVarSlab(universe, 40, keys,
		func(key int) int { return sizes[key] },
		func(key int, dst []uint64) {
			for i := range dst {
				dst[i] = uint64(key)<<32 | uint64(i)
			}
		})
	for _, key := range keys {
		w, ok := v.Peek(key)
		if !ok || len(w) != sizes[key] {
			t.Fatalf("key %d: got %d words ok=%v, want %d", key, len(w), ok, sizes[key])
		}
		for i, word := range w {
			if word != uint64(key)<<32|uint64(i) {
				t.Fatalf("key %d word %d corrupted: %#x", key, i, word)
			}
		}
	}
	if st := v.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek touched stats: %+v", st)
	}
	if _, ok := v.Lookup(keys[0]); !ok {
		t.Fatal("Lookup missed an admitted key")
	}
	v.Lookup(-5)
	if st := v.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("Lookup stats wrong: %+v", st)
	}
}

// TestSlabStatsBulk pins the bulk statistics contract Phase 2 relies on.
func TestSlabStatsBulk(t *testing.T) {
	s := BuildSlab(10, 1, 4, []int{1, 2, 3}, func(int, []uint64) {})
	s.AddStats(5, 2)
	s.AddStats(0, 0) // no-op must not disturb counters
	if st := s.Stats(); st.Hits != 5 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	s.ResetStats()
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

// checkAdmission verifies every admitKeys invariant against its inputs:
// the dense index and the admitted list are mutually consistent, admission
// respects capacity, order, first-occurrence-wins and the universe range.
func checkAdmission(t *testing.T, universe, capacity int, keys []int, slots []int32, admitted []int32) {
	t.Helper()
	if len(slots) != universe {
		t.Fatalf("index length %d != universe %d", len(slots), universe)
	}
	if capacity >= 0 && len(admitted) > capacity {
		t.Fatalf("admitted %d > capacity %d", len(admitted), capacity)
	}
	for slot, id := range admitted {
		if id < 0 || int(id) >= universe {
			t.Fatalf("slot %d holds out-of-range id %d", slot, id)
		}
		if slots[id] != int32(slot) {
			t.Fatalf("id %d: index says slot %d, admitted list says %d", id, slots[id], slot)
		}
	}
	admittedCount := 0
	for id, slot := range slots {
		if slot < 0 {
			continue
		}
		admittedCount++
		if int(slot) >= len(admitted) || admitted[slot] != int32(id) {
			t.Fatalf("index maps id %d to slot %d, which holds %v", id, slot, admitted)
		}
	}
	if admittedCount != len(admitted) {
		t.Fatalf("index has %d admitted ids, list has %d", admittedCount, len(admitted))
	}
	// Replay: admission order must be first occurrence of each admitted key.
	var replay []int32
	seen := make(map[int]bool)
	for _, k := range keys {
		if capacity >= 0 && len(replay) >= capacity {
			break
		}
		if k < 0 || k >= universe || seen[k] {
			continue
		}
		seen[k] = true
		replay = append(replay, int32(k))
	}
	if len(replay) != len(admitted) {
		t.Fatalf("replay admitted %d, slab admitted %d", len(replay), len(admitted))
	}
	for i := range replay {
		if replay[i] != admitted[i] {
			t.Fatalf("slot %d: replay id %d, slab id %d", i, replay[i], admitted[i])
		}
	}
}

// FuzzSlotIndex feeds admitKeys adversarial key lists — duplicates,
// out-of-range ids, over-capacity floods — and checks the dense index
// invariants hold for every input.
func FuzzSlotIndex(f *testing.F) {
	f.Add(uint16(8), uint16(4), []byte{0, 0, 0, 1, 0, 2, 0, 1, 0, 7})       // dup id 1
	f.Add(uint16(4), uint16(8), []byte{0, 9, 0, 1, 255, 255, 0, 0})         // out of range high and negative-ish
	f.Add(uint16(16), uint16(0), []byte{0, 1, 0, 2})                        // zero capacity admits nothing
	f.Add(uint16(3), uint16(3), []byte{0, 0, 0, 0, 0, 1, 0, 2, 0, 2, 0, 1}) // all dups
	f.Fuzz(func(t *testing.T, u, c uint16, raw []byte) {
		universe := int(u) % 1024
		capacity := int(c) % 1024
		keys := make([]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			// Signed 16-bit so the corpus can reach negative keys.
			keys = append(keys, int(int16(binary.BigEndian.Uint16(raw[i:]))))
		}
		slots, admitted := admitKeys(universe, capacity, keys)
		checkAdmission(t, universe, capacity, keys, slots, admitted)

		// The built slab must agree with the raw admission: every admitted id
		// round-trips through SlotOf and carries its own id stamped in the
		// arena window, so no two ids share a window.
		s := BuildSlab(universe, 2, capacity, keys, func(id int, dst []uint64) {
			dst[0] = uint64(id)
			dst[1] = ^uint64(id)
		})
		if s.Len() != len(admitted) {
			t.Fatalf("slab len %d != admitted %d", s.Len(), len(admitted))
		}
		for _, id := range admitted {
			w := s.Words(s.SlotOf(int(id)))
			if w[0] != uint64(id) || w[1] != ^uint64(id) {
				t.Fatalf("id %d window holds %#x/%#x", id, w[0], w[1])
			}
		}
	})
}
