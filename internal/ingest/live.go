// Live ties the write path together: validated, clamped inserts and
// idempotent deletes go WAL-first then into the delta index; searches run
// merged Algorithm 1 over the base engine with the delta folded in; and a
// background compactor folds the delta into the append-extended point file
// through one ordinary RCU rebuild — the same non-blocking queue drift
// rebuilds, adaptive-τ retunes and quarantine recoveries go through.

package ingest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"exploitbit/internal/core"
	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/vec"
)

// ErrUnknownID marks a delete of an identifier no insert ever produced.
var ErrUnknownID = errors.New("ingest: unknown point id")

// Searcher is the read side Live serves through: any engine that can run a
// merged Algorithm 1 search. *core.Engine, *core.Maintainer,
// *core.ShardedEngine and *core.ShardedMaintainer all implement it.
type Searcher interface {
	SearchMergedIntoCtx(ctx context.Context, q []float32, k int, dst []int, mg *core.Merge) ([]int, core.QueryStats, error)
}

// Compactor launches one non-blocking RCU rebuild over a folded dataset.
// *core.Maintainer implements it; a nil Compactor disables compaction (the
// delta and WAL then grow until restart — the sharded deployment's mode, see
// DESIGN.md §16).
type Compactor interface {
	CompactRebuild(k int, prepare func() (*dataset.Dataset, core.CandidateFunc, error), onDone func(installed bool)) bool
}

// Config assembles a Live system.
type Config struct {
	// Dir is the WAL directory (segments + checkpoint).
	Dir string
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncMode
	// Searcher serves merged searches. Required.
	Searcher Searcher
	// Compactor runs compaction rebuilds; nil disables compaction.
	Compactor Compactor
	// PF is the base point file compaction appends to. Required when
	// Compactor is set.
	PF *disk.PointFile
	// Fold is the current folded dataset (base file + recovered points) the
	// searcher was built over. Required.
	Fold *dataset.Dataset
	// BaseN is the length of the immutable base dataset file — constant
	// across restarts, the id origin of every checkpoint. Required
	// (0 is valid only for an empty base).
	BaseN int
	// BuildCands rebuilds the Phase-1 candidate index over a folded dataset
	// during compaction. Required when Compactor is set.
	BuildCands func(ds *dataset.Dataset) core.CandidateFunc
	// Encode quantizes a new point through the live engine's histogram into
	// an HFF code for the delta index; nil (or a nil return) records no code.
	Encode func(p []float32) []uint64
	// K is the workload-profile k compaction rebuilds use (default 10).
	K int
	// CompactThreshold is the delta point count that triggers compaction
	// (default 4096; ignored without a Compactor).
	CompactThreshold int
	// TombstoneRatio triggers compaction when tombstones taken since the
	// last compaction exceed this fraction of the fold (default 0.25).
	TombstoneRatio float64
}

func (cfg Config) withDefaults() Config {
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncAlways
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.CompactThreshold <= 0 {
		cfg.CompactThreshold = 4096
	}
	if cfg.TombstoneRatio <= 0 {
		cfg.TombstoneRatio = 0.25
	}
	return cfg
}

// Stats snapshots the live write path for /stats, /metrics and benchmarks.
type Stats struct {
	WalBytes             int64 `json:"wal_bytes"`
	WalSegments          int   `json:"wal_segments"`
	DeltaPoints          int   `json:"delta_points"`
	Tombstones           int   `json:"tombstones"`
	Points               int   `json:"points"` // live points: folded + delta − tombstones
	Inserts              int64 `json:"inserts"`
	Deletes              int64 `json:"deletes"`
	Compactions          int64 `json:"compactions"`
	CompactionErrors     int64 `json:"compaction_errors"`
	CompactInFlight      bool  `json:"compact_in_flight"`
	ReplayedRecords      int   `json:"replayed_records"`
	ReplayTruncatedBytes int64 `json:"replay_truncated_bytes"`
}

// compactSnap carries one compaction's prepared state from prepare to onDone.
// At most one compaction is in flight (the maintainer's rebuild CAS), so a
// single slot suffices.
type compactSnap struct {
	newFold    *dataset.Dataset
	coveredSeq uint64
	tombsAtCut int64
}

// Live is the live-ingest subsystem over one searcher.
type Live struct {
	cfg   Config
	dom   vec.Domain
	wal   *WAL
	delta *Delta

	// mu serializes writes so WAL record order equals identifier order.
	mu           sync.Mutex
	nextID       int64
	pendingTombs int64 // deletes since the last successful compaction

	// fold is the current folded dataset; touched only by the compaction
	// chain (prepare → onDone), which the rebuild CAS serializes.
	fold  *dataset.Dataset
	foldN atomic.Int64
	snap  *compactSnap

	inserts     atomic.Int64
	deletes     atomic.Int64
	compactions atomic.Int64
	compactErrs atomic.Int64
	compacting  atomic.Bool

	replayRecords   int
	replayTruncated int64

	closed atomic.Bool
}

// Open wires a Live over an already recovered and constructed system: call
// Recover first, build the fold and the searcher over it, then Open with the
// RecoverResult (nil means a fresh directory was already confirmed empty).
func Open(cfg Config, rec *RecoverResult) (*Live, error) {
	cfg = cfg.withDefaults()
	if cfg.Searcher == nil {
		return nil, fmt.Errorf("ingest: Config.Searcher is required")
	}
	if cfg.Fold == nil {
		return nil, fmt.Errorf("ingest: Config.Fold is required")
	}
	if cfg.Compactor != nil && (cfg.PF == nil || cfg.BuildCands == nil) {
		return nil, fmt.Errorf("ingest: Compactor requires PF and BuildCands")
	}
	if cfg.BaseN < 0 || cfg.BaseN > cfg.Fold.Len() {
		return nil, fmt.Errorf("ingest: BaseN %d out of range [0,%d]", cfg.BaseN, cfg.Fold.Len())
	}
	var tombs map[int64]struct{}
	startSeq := uint64(1)
	if rec != nil {
		if cfg.BaseN+len(rec.Points) != cfg.Fold.Len() {
			return nil, fmt.Errorf("ingest: fold has %d points, recovery says %d", cfg.Fold.Len(), cfg.BaseN+len(rec.Points))
		}
		tombs = rec.Tombs
		startSeq = rec.NextSeq
	}
	wal, err := OpenWAL(cfg.Dir, cfg.Fold.Dim, startSeq, cfg.Fsync)
	if err != nil {
		return nil, err
	}
	l := &Live{
		cfg:   cfg,
		dom:   cfg.Fold.Domain,
		wal:   wal,
		delta: NewDelta(tombs),
		fold:  cfg.Fold,
	}
	l.nextID = int64(cfg.Fold.Len())
	l.foldN.Store(int64(cfg.Fold.Len()))
	if rec != nil {
		l.replayRecords = rec.Records
		l.replayTruncated = rec.TruncatedBytes
	}
	return l, nil
}

// Insert admits one point: the vector is copied, clamped into the dataset's
// value domain (out-of-domain coordinates land on boundary buckets, so HFF
// codes stay valid and bounds conservative), logged, and added to the delta
// index. Returns the point's permanent identifier.
func (l *Live) Insert(ctx context.Context, v []float32) (int, error) {
	if l.closed.Load() {
		return 0, fmt.Errorf("ingest: closed")
	}
	if len(v) != l.fold.Dim {
		return 0, fmt.Errorf("ingest: insert dim %d, dataset dim %d", len(v), l.fold.Dim)
	}
	p := make([]float32, len(v))
	copy(p, v)
	l.dom.ClampPoint(p)
	var code []uint64
	if l.cfg.Encode != nil {
		code = l.cfg.Encode(p)
	}
	l.mu.Lock()
	id := l.nextID
	if id > math.MaxInt32 {
		l.mu.Unlock()
		return 0, fmt.Errorf("ingest: point id space exhausted (%d ids, max %d)", id, math.MaxInt32)
	}
	if err := l.wal.AppendInsert(uint64(id), p); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.delta.Add(int32(id), p, code)
	l.nextID++
	l.inserts.Add(1)
	l.maybeCompactLocked()
	l.mu.Unlock()
	return int(id), nil
}

// Delete tombstones a point. Idempotent: deleting an already deleted point
// succeeds without touching the WAL. Deleting an identifier no insert ever
// produced fails with ErrUnknownID.
func (l *Live) Delete(ctx context.Context, id int) error {
	if l.closed.Load() {
		return fmt.Errorf("ingest: closed")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if id < 0 || int64(id) >= l.nextID {
		return fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	if l.delta.Deleted(int32(id)) {
		return nil
	}
	if err := l.wal.AppendDelete(uint64(id)); err != nil {
		return err
	}
	l.delta.Delete(int64(id))
	l.deletes.Add(1)
	l.pendingTombs++
	l.maybeCompactLocked()
	return nil
}

// Search runs a merged Algorithm 1 search: base candidates with tombstones
// masked, delta points scored exactly, one shared k-th-bound reduction.
// Results are id-identical to an engine rebuilt over the folded dataset.
func (l *Live) Search(ctx context.Context, q []float32, k int, dst []int) ([]int, core.QueryStats, error) {
	return l.cfg.Searcher.SearchMergedIntoCtx(ctx, q, k, dst, l.overlay())
}

// overlay builds the merge overlay for one search, or nil when the delta is
// empty and nothing is tombstoned (the exact base fast path). The tombstone
// set is snapshotted once: Merge.Deleted must stay stable for the duration of
// the search (the engine counts surviving extras in one pass and fills them
// in another), and the copy-on-write map a Delete published in between would
// make the two passes disagree.
func (l *Live) overlay() *core.Merge {
	extra := l.delta.Snapshot()
	tombs := l.delta.TombSet()
	if len(extra) == 0 && len(tombs) == 0 {
		return nil
	}
	deleted := func(id int32) bool {
		_, dead := tombs[int64(id)]
		return dead
	}
	return &core.Merge{Deleted: deleted, Extra: extra}
}

// maybeCompactLocked launches a compaction when the delta or the tombstone
// backlog crosses its threshold. Caller holds l.mu. Losing the rebuild CAS
// (a drift rebuild or retune is running) is fine: the next write retries.
func (l *Live) maybeCompactLocked() {
	if l.cfg.Compactor == nil || l.compacting.Load() {
		return
	}
	dp := l.delta.Len()
	tombTrig := float64(l.pendingTombs) >= l.cfg.TombstoneRatio*float64(l.foldN.Load())
	if dp < l.cfg.CompactThreshold && !(l.pendingTombs > 0 && tombTrig) {
		return
	}
	if l.cfg.Compactor.CompactRebuild(l.cfg.K, l.prepare, l.onDone) {
		l.compacting.Store(true)
	}
}

// prepare runs on the maintainer's rebuild goroutine, off the search and
// write paths: cut a consistent snapshot (delta prefix + sealed WAL horizon),
// extend the point file, assemble the folded dataset, persist the cumulative
// checkpoint, and rebuild the candidate index.
func (l *Live) prepare() (*dataset.Dataset, core.CandidateFunc, error) {
	l.mu.Lock()
	pts := l.delta.Snapshot()
	tombs := l.delta.TombSet()
	tombsAtCut := l.pendingTombs
	covered, err := l.wal.Rotate()
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}

	// Append at the fold's current end. A compaction that failed after the
	// append left orphan slots past the fold; retrying at the same position
	// overwrites them, keeping id == slot.
	at := l.fold.Len()
	vecs := make([][]float32, len(pts))
	for i := range pts {
		if int(pts[i].ID) != at+i {
			return nil, nil, fmt.Errorf("ingest: delta id %d at snapshot index %d, want %d", pts[i].ID, i, at+i)
		}
		vecs[i] = pts[i].Vec
	}
	if err := l.cfg.PF.Append(at, vecs); err != nil {
		return nil, nil, fmt.Errorf("ingest: compaction append: %w", err)
	}

	data := make([]float32, 0, (at+len(pts))*l.fold.Dim)
	data = append(data, l.fold.Data()...)
	for _, p := range pts {
		data = append(data, p.Vec...)
	}
	newFold := dataset.New(l.fold.Name, l.fold.Dim, data, l.dom)

	// Durability order: checkpoint first, segment retirement later (onDone).
	// A crash in between replays covered segments as no-ops (they are
	// skipped wholesale by their sequence numbers).
	if err := writeCheckpoint(l.cfg.Dir, newFold, l.cfg.BaseN, tombs, covered); err != nil {
		return nil, nil, err
	}
	cands := l.cfg.BuildCands(newFold)
	if cands == nil {
		return nil, nil, fmt.Errorf("ingest: candidate index rebuild over %d-point fold failed", newFold.Len())
	}
	l.snap = &compactSnap{newFold: newFold, coveredSeq: covered, tombsAtCut: tombsAtCut}
	return newFold, cands, nil
}

// onDone finishes a compaction after the maintainer installed (or failed to
// build) the new engine. On install the delta prefix the new engine now owns
// is pruned and the covered WAL segments are retired; merged searches racing
// the swap stay correct either way, because extras below the new engine's
// horizon are skipped inside the engine.
func (l *Live) onDone(installed bool) {
	snap := l.snap
	l.snap = nil
	defer l.compacting.Store(false)
	if !installed || snap == nil {
		l.compactErrs.Add(1)
		return
	}
	horizon := int32(snap.newFold.Len())
	l.mu.Lock()
	l.fold = snap.newFold
	l.foldN.Store(int64(snap.newFold.Len()))
	l.delta.Prune(horizon)
	l.pendingTombs -= snap.tombsAtCut
	l.mu.Unlock()
	if err := l.wal.RemoveThrough(snap.coveredSeq); err != nil {
		// The checkpoint covers these segments; leaving them behind costs
		// only disk space and a skip at the next recovery.
		l.compactErrs.Add(1)
		return
	}
	l.compactions.Add(1)
}

// NumPoints reports the current live point count (fold + delta − tombstones).
func (l *Live) NumPoints() int {
	l.mu.Lock()
	n := l.nextID
	l.mu.Unlock()
	return int(n) - l.delta.Tombstones()
}

// Stats snapshots the write path.
func (l *Live) Stats() Stats {
	bytes, segs := l.wal.Stats()
	l.mu.Lock()
	next := l.nextID
	l.mu.Unlock()
	return Stats{
		WalBytes:             bytes,
		WalSegments:          segs,
		DeltaPoints:          l.delta.Len(),
		Tombstones:           l.delta.Tombstones(),
		Points:               int(next) - l.delta.Tombstones(),
		Inserts:              l.inserts.Load(),
		Deletes:              l.deletes.Load(),
		Compactions:          l.compactions.Load(),
		CompactionErrors:     l.compactErrs.Load(),
		CompactInFlight:      l.compacting.Load(),
		ReplayedRecords:      l.replayRecords,
		ReplayTruncatedBytes: l.replayTruncated,
	}
}

// ForceCompact launches a compaction regardless of thresholds (test and
// operations hook). Returns false when compaction is disabled or a rebuild
// is already running.
func (l *Live) ForceCompact() bool {
	if l.cfg.Compactor == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.compacting.Load() {
		return false
	}
	if l.cfg.Compactor.CompactRebuild(l.cfg.K, l.prepare, l.onDone) {
		l.compacting.Store(true)
		return true
	}
	return false
}

// Close stops admitting writes and closes the WAL. The caller drains the
// maintainer (and any in-flight compaction with it) separately.
func (l *Live) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wal.Close()
}
