// Package klt implements the Karhunen–Loève Transform: the data's covariance
// matrix is diagonalized with a cyclic Jacobi eigensolver and points are
// rotated into the eigenbasis, decorrelating dimensions and concentrating
// variance in the leading ones. The VA+-file (Ferhatosmanoglu et al., CIKM
// 2000) — which the paper skips because "KLT is not scalable for huge
// matrices" (footnote 10) — applies it before allocating approximation bits
// per dimension; this package makes that comparator available as an
// extension at dimensionalities where O(d³) is acceptable.
package klt

import (
	"fmt"
	"math"
)

// pointSource abstracts the dataset.
type pointSource interface {
	Len() int
	Point(i int) []float32
}

// Transform is a fitted KLT: the data mean and the orthonormal eigenbasis,
// ordered by descending eigenvalue (variance).
type Transform struct {
	Mean   []float64
	Basis  [][]float64 // Basis[j] is the j-th eigenvector (row)
	Lambda []float64   // eigenvalues (variances along Basis[j]), descending
}

// Fit computes the covariance of src and diagonalizes it. It panics on an
// empty source and errors if Jacobi fails to converge (practically
// impossible for symmetric input).
func Fit(src pointSource) (*Transform, error) {
	n := src.Len()
	if n == 0 {
		return nil, fmt.Errorf("klt: empty source")
	}
	d := len(src.Point(0))

	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range src.Point(i) {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	// Covariance (dense, symmetric).
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		p := src.Point(i)
		for j := range row {
			row[j] = float64(p[j]) - mean[j]
		}
		for a := 0; a < d; a++ {
			ra := row[a]
			cva := cov[a]
			for b := a; b < d; b++ {
				cva[b] += ra * row[b]
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			cov[a][b] /= float64(n)
			cov[b][a] = cov[a][b]
		}
	}

	vals, vecs, err := Jacobi(cov, 64)
	if err != nil {
		return nil, err
	}
	// Order by descending eigenvalue.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < d; i++ {
		m := i
		for j := i + 1; j < d; j++ {
			if vals[order[j]] > vals[order[m]] {
				m = j
			}
		}
		order[i], order[m] = order[m], order[i]
	}
	t := &Transform{Mean: mean, Basis: make([][]float64, d), Lambda: make([]float64, d)}
	for i, oi := range order {
		t.Lambda[i] = vals[oi]
		// Eigenvector oi is column oi of vecs.
		v := make([]float64, d)
		for r := 0; r < d; r++ {
			v[r] = vecs[r][oi]
		}
		t.Basis[i] = v
	}
	return t, nil
}

// Jacobi diagonalizes symmetric matrix a (destructively) with cyclic Jacobi
// rotations, returning eigenvalues and the matrix of eigenvectors (columns).
// maxSweeps bounds the outer iterations.
func Jacobi(a [][]float64, maxSweeps int) ([]float64, [][]float64, error) {
	d := len(a)
	v := make([][]float64, d)
	for i := range v {
		v[i] = make([]float64, d)
		v[i][i] = 1
	}
	if d == 1 {
		return []float64{a[0][0]}, v, nil
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				off += a[p][q] * a[p][q]
			}
		}
		if off < 1e-22*float64(d*d) {
			vals := make([]float64, d)
			for i := range vals {
				vals[i] = a[i][i]
			}
			return vals, v, nil
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q.
				for i := 0; i < d; i++ {
					aip, aiq := a[i][p], a[i][q]
					a[i][p] = c*aip - s*aiq
					a[i][q] = s*aip + c*aiq
				}
				for i := 0; i < d; i++ {
					api, aqi := a[p][i], a[q][i]
					a[p][i] = c*api - s*aqi
					a[q][i] = s*api + c*aqi
				}
				for i := 0; i < d; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("klt: Jacobi did not converge in %d sweeps", maxSweeps)
}

// Apply rotates point p into the eigenbasis (mean-centered), writing into
// dst (len d; nil allocates).
func (t *Transform) Apply(p []float32, dst []float32) []float32 {
	d := len(t.Mean)
	if len(p) != d {
		panic(fmt.Sprintf("klt: point dim %d != transform dim %d", len(p), d))
	}
	if dst == nil {
		dst = make([]float32, d)
	}
	for j := 0; j < d; j++ {
		var s float64
		bj := t.Basis[j]
		for i := 0; i < d; i++ {
			s += bj[i] * (float64(p[i]) - t.Mean[i])
		}
		dst[j] = float32(s)
	}
	return dst
}
